package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand (and v2) functions that build an
// explicitly seeded generator instead of touching process-global
// state. They stay legal — though internal/stats.NewRNG is the house
// RNG — because passing a seed is exactly the discipline the analyzer
// exists to enforce.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// GlobalRand forbids the global math/rand functions and process-seeded
// sources.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: `forbid global math/rand functions in favor of explicitly seeded RNGs

rand.Intn, rand.Float64, rand.Shuffle, … draw from a process-global
source that is auto-seeded and shared across goroutines: two runs of
the same spec produce different numbers, and two goroutines race for
the stream. Every random draw in simulation code must come from an
explicitly seeded generator — internal/stats.NewRNG is the house one —
threaded through the call path.`,
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || randConstructors[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are fine
			}
			pass.Reportf(id.Pos(),
				"rand.%s uses the process-global auto-seeded source; use internal/stats' seeded RNG (or an explicit rand.New(rand.NewSource(seed)))",
				fn.Name())
			return true
		})
	}
}
