package analysis

import (
	"go/ast"
	"go/types"
)

// SyncErr flags discarded errors from the durability-critical file
// operations.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: `flag discarded errors from Sync, Close, Rename, and Chtimes

The archive/dsweep crash-consistency protocol is only as strong as its
weakest unchecked error: a swallowed fsync or rename failure silently
converts "committed" into "maybe committed", and a buffered writer
reports its flush failure from Close. Calling one of these as a bare
statement (or under defer/go) drops the error invisibly; check it, or
make the drop auditable with an explicit "_ =" assignment.`,
	Run: runSyncErr,
}

// syncErrMethods are the method names whose error result must not be
// dropped, on any receiver type: these are the seams the failpoint
// rules inject faults into under the archive writer.
var syncErrMethods = map[string]bool{
	"Close": true,
	"Sync":  true,
}

// syncErrOSFuncs are the package os functions under the same rule.
var syncErrOSFuncs = map[string]bool{
	"Rename":  true,
	"Chtimes": true,
}

func runSyncErr(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = s.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = s.Call
				how = "discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := callee(pass.Pkg.Info, call)
			if fn == nil || !returnsError(fn) {
				return true
			}
			sig := fn.Type().(*types.Signature)
			fix := syncErrFix(n, call)
			switch {
			case sig.Recv() != nil && syncErrMethods[fn.Name()]:
				pass.ReportFixf(call.Pos(), call.End(), fix,
					"error from %s %s; a dropped %s error is a hole in the durability protocol — check it or assign it to _ explicitly",
					fn.Name(), how, fn.Name())
			case sig.Recv() == nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && syncErrOSFuncs[fn.Name()]:
				pass.ReportFixf(call.Pos(), call.End(), fix,
					"error from os.%s %s; check it or assign it to _ explicitly",
					fn.Name(), how)
			}
			return true
		})
	}
}

// syncErrFix builds the mechanical rewrite that makes the error drop
// explicit: a bare statement gains "_ = "; a deferred call is wrapped
// in a closure that discards the error visibly. A go statement has no
// one-line rewrite (the caller must decide where the error goes), so
// it gets no fix.
func syncErrFix(stmt ast.Node, call *ast.CallExpr) *SuggestedFix {
	switch stmt.(type) {
	case *ast.ExprStmt:
		return &SuggestedFix{
			Message: "make the error drop explicit with _ =",
			Edits: []TextEdit{
				{Pos: call.Pos(), End: call.Pos(), NewText: "_ = "},
			},
		}
	case *ast.DeferStmt:
		return &SuggestedFix{
			Message: "wrap the deferred call so the error drop is explicit",
			Edits: []TextEdit{
				{Pos: call.Pos(), End: call.Pos(), NewText: "func() { _ = "},
				{Pos: call.End(), End: call.End(), NewText: " }()"},
			},
		}
	}
	return nil
}

// callee resolves a call expression to the called named function or
// method, nil for builtins, conversions, and function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
