package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the comment marker all pomvet directives start with.
const prefix = "//pomvet:"

// AllocFreeDirective marks a function whose body the allocfree
// analyzer must prove free of allocating constructs.
const AllocFreeDirective = "//pomvet:allocfree"

// allowRange is a declaration-scoped suppression: an allow directive
// in a declaration's doc comment silences the analyzer across the
// whole declaration.
type allowRange struct {
	file       string
	start, end int // line range, inclusive
	analyzer   string
}

// directives holds one package's parsed //pomvet: comments.
type directives struct {
	// lines maps file -> line -> analyzers allowed on that line.
	lines map[string]map[int]map[string]bool
	// ranges are declaration-scoped suppressions.
	ranges []allowRange
	// problems are malformed directives, reported as findings.
	problems []Finding
}

// allows reports whether a finding by the named analyzer at pos is
// silenced by a directive.
func (d *directives) allows(analyzer string, pos token.Position) bool {
	if byLine, ok := d.lines[pos.Filename]; ok {
		if set, ok := byLine[pos.Line]; ok && set[analyzer] {
			return true
		}
	}
	for _, r := range d.ranges {
		if r.analyzer == analyzer && r.file == pos.Filename &&
			r.start <= pos.Line && pos.Line <= r.end {
			return true
		}
	}
	return false
}

// parseDirectives scans every comment of the package for //pomvet:
// directives. An allow directive written as a trailing comment (or on
// the line just above the offending one) targets that line; written in
// a declaration's doc comment it targets the whole declaration. The
// reason is mandatory — an unexplained suppression is itself a
// finding — and so is naming a real analyzer.
func parseDirectives(pkg *Package, known map[string]bool) *directives {
	d := &directives{lines: make(map[string]map[int]map[string]bool)}
	for _, file := range pkg.Files {
		declOf := docRanges(pkg.Fset, file)
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				d.parse(pkg, c, declOf[group], known)
			}
		}
	}
	return d
}

// parse handles one directive comment. declRange is the enclosing
// declaration's line range when the comment is a doc comment, nil
// otherwise.
func (d *directives) parse(pkg *Package, c *ast.Comment, declRange *[2]int, known map[string]bool) {
	pos := pkg.Fset.Position(c.Pos())
	body := strings.TrimPrefix(c.Text, prefix)
	fields := strings.Fields(body)
	verb := ""
	if len(fields) > 0 {
		verb = fields[0]
	}
	switch verb {
	case "allocfree":
		// Consumed by the allocfree analyzer via the doc comment; only
		// the syntax is validated here.
		if len(fields) > 1 {
			d.problem(pos, "//pomvet:allocfree takes no arguments")
		}
	case "allow":
		if len(fields) < 2 {
			d.problem(pos, "//pomvet:allow needs an analyzer name and a reason")
			return
		}
		name := fields[1]
		if !known[name] {
			d.problem(pos, "//pomvet:allow names unknown analyzer %q", name)
			return
		}
		if len(fields) < 3 {
			d.problem(pos, "//pomvet:allow %s is missing its mandatory reason", name)
			return
		}
		if declRange != nil {
			d.ranges = append(d.ranges, allowRange{
				file: pos.Filename, start: declRange[0], end: declRange[1], analyzer: name,
			})
			return
		}
		d.allowLine(pos.Filename, pos.Line, name)
		d.allowLine(pos.Filename, pos.Line+1, name)
	default:
		d.problem(pos, "unknown directive %q", strings.TrimRight(prefix+verb, " "))
	}
}

// allowLine records a line-scoped suppression.
func (d *directives) allowLine(file string, line int, analyzer string) {
	byLine := d.lines[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		d.lines[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = make(map[string]bool)
		byLine[line] = set
	}
	set[analyzer] = true
}

// problem records a malformed directive as an unsuppressable finding.
func (d *directives) problem(pos token.Position, format string, args ...any) {
	d.problems = append(d.problems, Finding{
		Analyzer: "pomvet",
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// docRanges maps each declaration doc-comment group to the line span
// of its declaration, so doc-level allow directives can cover whole
// functions (the lease and keepalive clocks) instead of single lines.
// Inside a grouped var/const/type declaration, a spec's own doc
// comment scopes to that spec alone — the siblings stay guarded.
func docRanges(fset *token.FileSet, file *ast.File) map[*ast.CommentGroup]*[2]int {
	out := make(map[*ast.CommentGroup]*[2]int)
	span := func(doc *ast.CommentGroup, n ast.Node) {
		if doc != nil {
			out[doc] = &[2]int{fset.Position(n.Pos()).Line, fset.Position(n.End()).Line}
		}
	}
	for _, decl := range file.Decls {
		switch n := decl.(type) {
		case *ast.FuncDecl:
			span(n.Doc, n)
		case *ast.GenDecl:
			span(n.Doc, n)
			for _, s := range n.Specs {
				switch s := s.(type) {
				case *ast.ValueSpec:
					span(s.Doc, s)
				case *ast.TypeSpec:
					span(s.Doc, s)
				}
			}
		}
	}
	return out
}
