package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// An Analyzer is one determinism check. Run inspects a package through
// the Pass and reports findings; the driver owns suppression and
// ordering.
type Analyzer struct {
	// Name is the analyzer's flag and suppression-directive name.
	Name string
	// Doc is a one-paragraph description; the first line is the CLI
	// flag help text.
	Doc string
	// Run inspects pass.Files and calls pass.Reportf for each finding.
	Run func(*Pass)
}

// A Finding is one diagnostic at a source position.
type Finding struct {
	// Analyzer is the reporting analyzer's name (or "pomvet" for
	// directive syntax errors).
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"pos"`
	// End is the exclusive end of the flagged source range; zero when
	// the analyzer reported a point position only.
	End token.Position `json:"end"`
	// Message describes the violation and the sanctioned idiom.
	Message string `json:"message"`
	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding; cmd/pomvet -fix applies it.
	Fix *Fix `json:"fix,omitempty"`
}

// String formats the finding the way compilers do, so editors and CI
// log scrapers pick it up: file:line:col: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Program holds the cross-package facts one Run shares between
// passes: the call graph, lazily computed per-function escape facts,
// transitive allocation facts, the //pomvet:allocfree annotation set,
// and each package's parsed directives (so a suppression in a callee's
// package silences the facts derived from that callee).
type Program struct {
	// Pkgs are the packages under analysis.
	Pkgs []*Package
	// Graph is the static call graph over every loaded function body.
	Graph *CallGraph

	fset      *token.FileSet
	dirs      map[*Package]*directives
	annotated map[funcID]bool
	flows     map[funcID]*flowResult
	escMemo   map[string]*Escape
	escDone   map[string]bool
	allocMemo map[funcID]*allocChain
	allocDone map[funcID]bool
}

// newProgram builds the shared facts for one Run.
func newProgram(pkgs []*Package, known map[string]bool) *Program {
	p := &Program{
		Pkgs:      pkgs,
		Graph:     buildCallGraph(pkgs),
		dirs:      make(map[*Package]*directives),
		annotated: make(map[funcID]bool),
		flows:     make(map[funcID]*flowResult),
		escMemo:   make(map[string]*Escape),
		escDone:   make(map[string]bool),
		allocMemo: make(map[funcID]*allocChain),
		allocDone: make(map[funcID]bool),
	}
	if len(pkgs) > 0 {
		p.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		p.dirs[pkg] = parseDirectives(pkg, known)
	}
	for id, node := range p.Graph.nodes {
		if isAllocFreeAnnotated(node.Decl) { //pomvet:allow maprange building a set is order-independent
			p.annotated[id] = true
		}
	}
	return p
}

// flowFacts returns (computing on first use) the local escape facts of
// the node's parameters: roots are the reference-carrying parameters,
// in signature order, with nil holes for basic-typed and unnamed ones.
func (p *Program) flowFacts(node *FuncNode) *flowResult {
	if fr, ok := p.flows[node.ID]; ok {
		return fr
	}
	roots := paramObjects(node.Pkg, node.Decl)
	fr := analyzeFlow(node.Pkg, node.Decl.Type, node.Decl.Body, roots)
	p.flows[node.ID] = fr
	return fr
}

// paramObjects resolves a declaration's parameter objects in signature
// order. Parameters that cannot carry a reference (basic types) or
// cannot be referenced (unnamed) are nil.
func paramObjects(pkg *Package, fn *ast.FuncDecl) []types.Object {
	return fieldParamObjects(pkg, fn.Type.Params)
}

// paramEscape decides whether parameter i of the named function
// escapes, chasing forwarded arguments through the call graph to a
// fixpoint. Functions without a loaded body never escape here: an
// interface method or stdlib call re-enters the audited contract.
func (p *Program) paramEscape(id funcID, i int, seen map[string]bool) *Escape {
	key := id + "#" + strconv.Itoa(i)
	if p.escDone[key] {
		return p.escMemo[key]
	}
	if seen[key] {
		return nil // cycle: assume no escape along the back edge
	}
	seen[key] = true
	node := p.Graph.Node(id)
	if node == nil {
		p.escDone[key] = true
		return nil
	}
	fr := p.flowFacts(node)
	if i >= len(fr.escapes) {
		p.escDone[key] = true
		return nil
	}
	esc := fr.escapes[i]
	if esc == nil {
		for _, d := range fr.deps[i] {
			sub := p.paramEscape(d.callee, d.param, seen)
			if sub == nil {
				continue
			}
			esc = &Escape{
				Kind: EscapeCall,
				Pos:  d.pos,
				Detail: fmt.Sprintf("forwarded to %s, whose parameter %s is %s at %s",
					shortFuncName(d.calleeFn), calleeParamName(d.calleeFn, d.param),
					sub.Kind, p.fset.Position(sub.Pos)),
			}
			break
		}
	}
	p.escMemo[key], p.escDone[key] = esc, true
	return esc
}

// shortFuncName renders a function for diagnostics without the full
// import path noise: pkg.Func or (pkg.Type).Method.
func shortFuncName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeParamName names a callee parameter for diagnostics.
func calleeParamName(fn *types.Func, i int) string {
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && i < sig.Params().Len() {
			if name := sig.Params().At(i).Name(); name != "" {
				return name
			}
		}
	}
	return "#" + strconv.Itoa(i)
}

// A Pass connects one analyzer to one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	prog     *Program
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, token.NoPos, nil, format, args...)
}

// ReportRangef records a finding spanning [pos, end).
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	p.report(pos, end, nil, format, args...)
}

// ReportFixf records a finding spanning [pos, end) that carries a
// suggested fix.
func (p *Pass) ReportFixf(pos, end token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.report(pos, end, fix, format, args...)
}

func (p *Pass) report(pos, end token.Pos, fix *SuggestedFix, format string, args ...any) {
	f := Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	if end.IsValid() {
		f.End = p.Pkg.Fset.Position(end)
	}
	if fix != nil {
		f.Fix = fix.resolve(p.Pkg.Fset)
	}
	*p.findings = append(*p.findings, f)
}

// Run applies the analyzers to every package, drops findings silenced
// by a well-formed //pomvet:allow directive, appends diagnostics for
// malformed directives, and returns everything sorted by position.
// Directive diagnostics ride under the pseudo-analyzer name "pomvet"
// and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	// Directive validity must not depend on which analyzers are
	// enabled: a run with -wallclock=false still accepts the tree's
	// //pomvet:allow wallclock annotations.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog := newProgram(pkgs, known)
	var all []Finding
	for _, pkg := range pkgs {
		dirs := prog.dirs[pkg]
		var raw []Finding
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, prog: prog, findings: &raw})
		}
		for _, f := range raw {
			if !dirs.allows(f.Analyzer, f.Pos) {
				all = append(all, f)
			}
		}
		all = append(all, dirs.problems...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}
