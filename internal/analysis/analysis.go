package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one determinism check. Run inspects a package through
// the Pass and reports findings; the driver owns suppression and
// ordering.
type Analyzer struct {
	// Name is the analyzer's flag and suppression-directive name.
	Name string
	// Doc is a one-paragraph description; the first line is the CLI
	// flag help text.
	Doc string
	// Run inspects pass.Files and calls pass.Reportf for each finding.
	Run func(*Pass)
}

// A Finding is one diagnostic at a source position.
type Finding struct {
	// Analyzer is the reporting analyzer's name (or "pomvet" for
	// directive syntax errors).
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"pos"`
	// Message describes the violation and the sanctioned idiom.
	Message string `json:"message"`
}

// String formats the finding the way compilers do, so editors and CI
// log scrapers pick it up: file:line:col: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Pass connects one analyzer to one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to every package, drops findings silenced
// by a well-formed //pomvet:allow directive, appends diagnostics for
// malformed directives, and returns everything sorted by position.
// Directive diagnostics ride under the pseudo-analyzer name "pomvet"
// and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	// Directive validity must not depend on which analyzers are
	// enabled: a run with -wallclock=false still accepts the tree's
	// //pomvet:allow wallclock annotations.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Finding
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg, known)
		var raw []Finding
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, findings: &raw})
		}
		for _, f := range raw {
			if !dirs.allows(f.Analyzer, f.Pos) {
				all = append(all, f)
			}
		}
		all = append(all, dirs.problems...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}
