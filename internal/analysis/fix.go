package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// A TextEdit replaces the source range [Pos, End) with NewText. Edits
// are expressed in token positions at report time and resolved to file
// offsets when the finding is recorded.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// A SuggestedFix is a mechanical rewrite that resolves a finding,
// attached by the analyzer at report time.
type SuggestedFix struct {
	// Message says what the fix does, imperatively ("make the error
	// drop explicit with _ =").
	Message string
	// Edits are the replacements; they must not overlap.
	Edits []TextEdit
}

// resolve converts the fix to file coordinates for serialization and
// application.
func (sf *SuggestedFix) resolve(fset *token.FileSet) *Fix {
	fix := &Fix{Message: sf.Message}
	for _, e := range sf.Edits {
		fix.Edits = append(fix.Edits, FixEdit{
			File:    fset.Position(e.Pos).Filename,
			Start:   fset.Position(e.Pos),
			End:     fset.Position(e.End),
			NewText: e.NewText,
		})
	}
	return fix
}

// A Fix is a suggested rewrite in resolved file coordinates — the form
// findings carry in JSON output and the form ApplyFixes consumes.
type Fix struct {
	// Message says what the fix does.
	Message string `json:"message"`
	// Edits are the text replacements.
	Edits []FixEdit `json:"edits"`
}

// A FixEdit is one text replacement: the bytes at [Start.Offset,
// End.Offset) of File become NewText.
type FixEdit struct {
	File    string         `json:"file"`
	Start   token.Position `json:"start"`
	End     token.Position `json:"end"`
	NewText string         `json:"newText"`
}

// ApplyFixes collects every fix carried by the findings and computes
// the fixed content of each affected file, reading current content
// from disk. Overlapping edits are an error (no analyzer should
// produce them; refusing beats corrupting source). The returned map
// holds only files whose content actually changes.
//
// Applying is idempotent by construction: a fixed file no longer
// produces the finding, so a second run proposes no edits.
func ApplyFixes(findings []Finding) (map[string][]byte, error) {
	byFile := make(map[string][]FixEdit)
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	fixed := make(map[string][]byte)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %v", err)
		}
		out, err := applyEdits(file, src, byFile[file])
		if err != nil {
			return nil, err
		}
		if string(out) != string(src) {
			fixed[file] = out
		}
	}
	return fixed, nil
}

// WriteFixes writes fixed file contents back to disk.
func WriteFixes(fixed map[string][]byte) error {
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, fixed[f], 0o644); err != nil {
			return fmt.Errorf("analysis: writing fixes: %v", err)
		}
	}
	return nil
}

// applyEdits splices the edits into src, back to front.
func applyEdits(file string, src []byte, edits []FixEdit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start.Offset != edits[j].Start.Offset {
			return edits[i].Start.Offset < edits[j].Start.Offset
		}
		return edits[i].End.Offset < edits[j].End.Offset
	})
	// Drop exact duplicates (two findings can legitimately suggest the
	// same edit), then refuse real overlaps.
	uniq := edits[:0]
	for i, e := range edits {
		if i > 0 {
			prev := uniq[len(uniq)-1]
			if e == prev {
				continue
			}
			if e.Start.Offset < prev.End.Offset {
				return nil, fmt.Errorf("analysis: overlapping fixes in %s at offsets %d and %d",
					file, prev.Start.Offset, e.Start.Offset)
			}
		}
		uniq = append(uniq, e)
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		e := uniq[i]
		if e.Start.Offset < 0 || e.End.Offset > len(src) || e.Start.Offset > e.End.Offset {
			return nil, fmt.Errorf("analysis: fix edit out of range in %s (%d..%d of %d bytes)",
				file, e.Start.Offset, e.End.Offset, len(src))
		}
		src = append(src[:e.Start.Offset], append([]byte(e.NewText), src[e.End.Offset:]...)...)
	}
	return src, nil
}
