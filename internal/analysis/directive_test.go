package analysis

import (
	"strings"
	"testing"
)

// TestDirectiveParsing loads the directive fixture — a package of
// malformed and well-formed //pomvet: comments — and checks that each
// malformed directive is itself a finding, that a rejected suppression
// does not silence the underlying diagnostic, and that the one
// well-formed allow does.
func TestDirectiveParsing(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/directive")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, All())

	wantProblems := []string{
		`//pomvet:allow wallclock is missing its mandatory reason`,
		`//pomvet:allow names unknown analyzer "clock"`,
		`unknown directive "//pomvet:silence"`,
		`//pomvet:allocfree takes no arguments`,
	}
	var problems, clocks []Finding
	for _, f := range findings {
		switch f.Analyzer {
		case "pomvet":
			problems = append(problems, f)
		case "wallclock":
			clocks = append(clocks, f)
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if len(problems) != len(wantProblems) {
		t.Errorf("got %d directive problems, want %d:\n%v", len(problems), len(wantProblems), problems)
	}
	for _, want := range wantProblems {
		found := false
		for _, p := range problems {
			if strings.Contains(p.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive problem containing %q", want)
		}
	}
	// Three clock reads sit under rejected directives and must still be
	// reported; the fourth, under the well-formed allow, must not.
	if len(clocks) != 3 {
		t.Errorf("got %d wallclock findings, want 3 (a rejected suppression must not silence):\n%v",
			len(clocks), clocks)
	}
}

// TestDirectiveScopes pins the scoping rules through the scope
// fixture: doc-level allows cover whole declarations on value and
// pointer receivers alike, a spec-level doc allow inside a grouped
// var declaration covers only its spec, and a group-level doc allow
// covers every spec. The fixture's want comments mark the findings
// that must survive.
func TestDirectiveScopes(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/scope")
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, pkgs, Run(pkgs, []*Analyzer{WallClock}))
}

// TestDirectivesValidWhenAnalyzerDisabled pins that disabling an
// analyzer does not turn its existing suppressions into unknown-name
// problems: the wallclock fixture's //pomvet:allow wallclock
// annotations must stay valid under a syncerr-only run.
func TestDirectivesValidWhenAnalyzerDisabled(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, []*Analyzer{SyncErr}) {
		t.Errorf("unexpected finding with wallclock disabled: %s", f)
	}
}
