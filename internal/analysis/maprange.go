package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange forbids map iteration with order-dependent effects.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: `forbid map iteration whose effects depend on iteration order

Go randomizes map iteration order per run, so any observable effect
that differs between orders — appending values, writing rows to a
sink, building an error message, accumulating floats — makes output
differ run to run. Order-insensitive bodies stay legal: collecting
keys into a slice that is sorted right after the loop (the sorted-keys
idiom), writing into another map keyed by the loop key, deleting keys,
integer accumulation, and setting constant flags. Everything else must
iterate sorted keys instead.`,
	Run: runMapRange,
}

func runMapRange(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if rng, ok := stmt.(*ast.RangeStmt); ok && isMapRange(pass, rng) {
					checkMapRange(pass, rng, list[i+1:])
				}
			}
			return true
		})
	}
}

// isMapRange reports whether rng iterates a map.
func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// mapRangeCheck carries the state of checking one map-range body.
type mapRangeCheck struct {
	pass      *Pass
	rng       *ast.RangeStmt
	keyObj    types.Object      // the loop key variable, nil when blank/absent
	following []ast.Stmt        // statements after the loop in its block
	okCalls   map[ast.Node]bool // calls sanctioned by an allowed assignment
}

// checkMapRange validates the body of one map iteration.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, following []ast.Stmt) {
	c := &mapRangeCheck{
		pass:      pass,
		rng:       rng,
		following: following,
		okCalls:   make(map[ast.Node]bool),
	}
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		if rng.Tok == token.DEFINE {
			c.keyObj = pass.Pkg.Info.Defs[id]
		} else {
			c.keyObj = pass.Pkg.Info.Uses[id]
		}
	}
	c.walk(rng.Body)
}

// walk inspects a statement tree, reporting order-dependent effects.
func (c *mapRangeCheck) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own (with its own
			// sorted-after context); don't double-report its body.
			if n != c.rng && isMapRange(c.pass, n) {
				return false
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "channel send inside map iteration delivers values in random order; iterate sorted keys")
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "goroutine started inside map iteration; iterate sorted keys")
		case *ast.DeferStmt:
			c.pass.Reportf(n.Pos(), "defer inside map iteration runs in random order; iterate sorted keys")
		case *ast.ReturnStmt:
			c.checkReturn(n)
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkAssign vets one assignment inside the loop body.
func (c *mapRangeCheck) checkAssign(as *ast.AssignStmt) {
	info := c.pass.Pkg.Info
	for i, lhs := range as.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" || c.isLoopLocal(l, as.Tok) {
				continue
			}
			if c.checkOuterIdentAssign(as, i, l) {
				continue
			}
		case *ast.IndexExpr:
			// Writing another map at the loop key touches each slot once,
			// so order cannot matter; any other index target can collide.
			if xt := info.TypeOf(l.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap && c.isLoopKey(l.Index) {
					continue
				}
			}
		}
		c.pass.Reportf(lhs.Pos(),
			"assignment to %s inside map iteration depends on iteration order; iterate sorted keys (or //pomvet:allow maprange <reason>)",
			exprString(lhs))
	}
}

// checkOuterIdentAssign vets an assignment to a variable declared
// outside the loop, returning true when it is order-insensitive.
func (c *mapRangeCheck) checkOuterIdentAssign(as *ast.AssignStmt, i int, l *ast.Ident) bool {
	info := c.pass.Pkg.Info
	var rhs ast.Expr
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		lt := info.TypeOf(l)
		if lt == nil {
			return false
		}
		t, ok := lt.Underlying().(*types.Basic)
		if ok && t.Info()&types.IsInteger != 0 {
			return true // integer accumulation commutes exactly
		}
		if ok && t.Info()&types.IsFloat != 0 {
			c.pass.Reportf(as.Pos(),
				"floating-point accumulation into %s inside map iteration is order-dependent (fp addition does not commute bitwise); iterate sorted keys", l.Name)
			return true // already reported, skip the generic message
		}
	case token.ASSIGN:
		if rhs == nil {
			return false
		}
		if tv, ok := info.Types[rhs]; ok && tv.Value != nil {
			return true // setting a constant is idempotent across orders
		}
		if c.isKeyAppend(l, rhs) {
			if !c.sortedAfter(l) {
				c.pass.Reportf(c.rng.Pos(),
					"map keys collected into %s are never sorted; sort them right after the loop for a deterministic order", l.Name)
			}
			return true
		}
	}
	return false
}

// isKeyAppend reports whether rhs is `append(dst, key)` — the
// collect-keys half of the sorted-keys idiom.
func (c *mapRangeCheck) isKeyAppend(dst *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != 0 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := c.pass.Pkg.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || c.pass.Pkg.Info.Uses[arg0] != c.pass.Pkg.Info.ObjectOf(dst) {
		return false
	}
	if !c.isLoopKey(call.Args[1]) {
		return false
	}
	c.okCalls[call] = true
	return true
}

// sortedAfter reports whether some statement after the loop sorts the
// slice held by obj's variable.
func (c *mapRangeCheck) sortedAfter(slice *ast.Ident) bool {
	obj := c.pass.Pkg.Info.ObjectOf(slice)
	info := c.pass.Pkg.Info
	for _, stmt := range c.following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isLoopKey reports whether e is exactly the loop's key variable.
func (c *mapRangeCheck) isLoopKey(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.keyObj != nil && c.pass.Pkg.Info.Uses[id] == c.keyObj
}

// isLoopLocal reports whether the assigned ident is declared inside
// the loop (including the key/value variables), so its lifetime is one
// iteration and order cannot be observed through it.
func (c *mapRangeCheck) isLoopLocal(id *ast.Ident, tok token.Token) bool {
	info := c.pass.Pkg.Info
	obj := info.ObjectOf(id)
	if obj == nil {
		// A := definition of a genuinely new variable inside the body.
		return tok == token.DEFINE
	}
	return c.rng.Pos() <= obj.Pos() && obj.Pos() < c.rng.End()
}

// checkReturn vets a return inside the loop: returning a value picked
// by iteration order is the classic nondeterministic-error bug.
func (c *mapRangeCheck) checkReturn(ret *ast.ReturnStmt) {
	info := c.pass.Pkg.Info
	for _, res := range ret.Results {
		if tv, ok := info.Types[res]; ok && tv.Value != nil {
			continue // constant results don't reveal which key triggered
		}
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		c.pass.Reportf(ret.Pos(),
			"return inside map iteration yields a value chosen by random order (%s); iterate sorted keys", exprString(res))
		return
	}
}

// checkCall vets a call inside the loop body. Builtins that cannot
// observe order (len, cap, min, max), conversions, and deletes are
// fine — delete commutes because removals of distinct keys are
// independent. Any other call may write to a sink, build an error, or
// otherwise leak iteration order.
func (c *mapRangeCheck) checkCall(call *ast.CallExpr) {
	if c.okCalls[call] {
		return
	}
	info := c.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "delete", "real", "imag", "complex":
				return
			case "append":
				return // owned by the assignment checks
			}
			c.pass.Reportf(call.Pos(),
				"call to %s inside map iteration may have order-dependent effects; iterate sorted keys (or //pomvet:allow maprange <reason>)", b.Name())
			return
		}
	}
	c.pass.Reportf(call.Pos(),
		"call to %s inside map iteration may have order-dependent effects; iterate sorted keys (or //pomvet:allow maprange <reason>)",
		exprString(call.Fun))
}
