package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllocFree rejects allocating constructs inside functions annotated
// //pomvet:allocfree.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: `reject allocating constructs in functions annotated //pomvet:allocfree

The RHS, solver-step, sink-row, and event-heap hot paths are pinned
allocation-free at runtime by PERFORMANCE.md's AllocsPerRun tests;
this is their static twin. Inside an annotated function the analyzer
flags make/new, append (it may grow), closures, go statements, map and
slice literals, &composite escapes, string concatenation and
string<->[]byte conversions, and calls into the formatting packages
(fmt, errors, strconv, sort, log). The annotation covers one function
body: callees must earn their own annotation, and the runtime pins
remain the end-to-end check.`,
	Run: runAllocFree,
}

// allocHeavyPkgs are stdlib packages whose entry points allocate by
// design (formatting, boxing into any/interface arguments).
var allocHeavyPkgs = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"strconv": true,
	"sort":    true,
	"log":     true,
}

func runAllocFree(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isAllocFreeAnnotated(fn) {
				continue
			}
			checkAllocFree(pass, fn)
		}
	}
}

// isAllocFreeAnnotated reports whether the function's doc comment
// carries the //pomvet:allocfree directive.
func isAllocFreeAnnotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == AllocFreeDirective ||
			strings.HasPrefix(c.Text, AllocFreeDirective+" ") {
			return true
		}
	}
	return false
}

// checkAllocFree walks one annotated function body and reports every
// construct that can reach the allocator.
func checkAllocFree(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkAllocFreeCall(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //pomvet:allocfree but contains a closure (captures escape to the heap)", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //pomvet:allocfree but starts a goroutine", name)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is //pomvet:allocfree but builds a map literal", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is //pomvet:allocfree but builds a slice literal", name)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //pomvet:allocfree but takes the address of a composite literal (escapes to the heap)", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t, ok := info.Types[n].Type.Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "%s is //pomvet:allocfree but concatenates strings", name)
				}
			}
		}
		return true
	})
}

// checkAllocFreeCall classifies one call inside an annotated body.
func checkAllocFreeCall(pass *Pass, name string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is //pomvet:allocfree but calls %s", name, b.Name())
			case "append":
				pass.Reportf(call.Pos(), "%s is //pomvet:allocfree but calls append (growth allocates)", name)
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && allocHeavyPkgs[fn.Pkg().Path()] {
			pass.Reportf(call.Pos(), "%s is //pomvet:allocfree but calls %s.%s (formats/allocates)",
				name, fn.Pkg().Name(), fn.Name())
			return
		}
	}
	// Conversions between strings and byte/rune slices copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.Types[call.Args[0]].Type.Underlying()
		if stringsSliceConv(dst, src) || stringsSliceConv(src, dst) {
			pass.Reportf(call.Pos(), "%s is //pomvet:allocfree but converts between string and byte/rune slice (copies)", name)
		}
	}
}

// stringsSliceConv reports whether a is a string and b a []byte or
// []rune.
func stringsSliceConv(a, b types.Type) bool {
	ab, ok := a.(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	bs, ok := b.(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := bs.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune ||
		eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}
