package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree rejects allocating constructs inside functions annotated
// //pomvet:allocfree.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: `reject allocating constructs in functions annotated //pomvet:allocfree

The RHS, solver-step, sink-row, and event-heap hot paths are pinned
allocation-free at runtime by PERFORMANCE.md's AllocsPerRun tests;
this is their static twin. Inside an annotated function the analyzer
flags make/new, append (it may grow), closures, go statements, map and
slice literals, &composite escapes, string concatenation and
string<->[]byte conversions, and calls into the formatting packages
(fmt, errors, strconv, sort, log). The annotation covers one function
body; allocflow extends the guarantee through the call graph.`,
	Run: runAllocFree,
}

// AllocFlow propagates allocation-freedom through the call graph.
var AllocFlow = &Analyzer{
	Name: "allocflow",
	Doc: `propagate //pomvet:allocfree transitively through the call graph

allocfree proves one body clean; this analyzer closes the loophole a
helper opens: an annotated function calling an unannotated one is
analyzed through that callee's own body, and its callees', until the
chain either stays clean, reaches another annotation (audited at its
own site), or hits an allocating construct — which is reported at the
call site in the annotated function, with the chain and the offending
position. A stray append three helpers down no longer slips past the
static twin of the AllocsPerRun pins. Callees without loaded bodies
(stdlib beyond the known formatting packages, interface methods,
function values) are trusted; the runtime pins remain the end-to-end
check.`,
	Run: runAllocFlow,
}

// allocHeavyPkgs are stdlib packages whose entry points allocate by
// design (formatting, boxing into any/interface arguments).
var allocHeavyPkgs = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"strconv": true,
	"sort":    true,
	"log":     true,
}

// An allocSite is one allocating construct found in a function body.
type allocSite struct {
	pos token.Pos
	// what completes the sentence "<fn> is //pomvet:allocfree but
	// <what>" — also reused in allocflow chains.
	what string
}

func runAllocFree(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isAllocFreeAnnotated(fn) {
				continue
			}
			for _, site := range allocSitesIn(pass.Pkg, fn.Body) {
				pass.Reportf(site.pos, "%s is //pomvet:allocfree but %s", fn.Name.Name, site.what)
			}
		}
	}
}

func runAllocFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isAllocFreeAnnotated(fn) {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			node := pass.prog.Graph.Node(obj.FullName())
			if node == nil {
				continue
			}
			reported := make(map[funcID]bool)
			for _, cs := range node.Calls {
				if pass.prog.annotated[cs.Callee] || reported[cs.Callee] {
					continue // audited at its own declaration
				}
				chain := pass.prog.allocChain(cs.Callee, make(map[funcID]bool))
				if chain == nil {
					continue
				}
				reported[cs.Callee] = true
				detail := chain.site.what
				if len(chain.path) > 1 {
					detail += " in " + chain.path[len(chain.path)-1]
				}
				pass.ReportRangef(cs.Call.Pos(), cs.Call.End(),
					"%s is //pomvet:allocfree but calls %s, which can allocate: %s (at %s)",
					fn.Name.Name, strings.Join(chain.path, " → "),
					detail, pass.Pkg.Fset.Position(chain.site.pos))
			}
		}
	}
}

// An allocChain is a call path from an unannotated callee down to a
// concrete allocating construct.
type allocChain struct {
	// path holds the short names of the functions along the way,
	// outermost first.
	path []string
	// site is the allocating construct at the end of the path.
	site allocSite
}

// allocChain finds (and memoizes) the first allocating construct
// reachable from the named function through unannotated callees with
// loaded bodies. Alloc sites suppressed by //pomvet:allow allocfree or
// allocflow directives in their own package do not count — a reasoned
// warm-up append stays sanctioned for every caller.
func (p *Program) allocChain(id funcID, seen map[funcID]bool) *allocChain {
	if p.allocDone[id] {
		return p.allocMemo[id]
	}
	if seen[id] {
		return nil
	}
	seen[id] = true
	node := p.Graph.Node(id)
	if node == nil || p.annotated[id] {
		p.allocDone[id] = true
		return nil
	}
	name := shortFuncName(node.Fn)
	var chain *allocChain
	for _, site := range allocSitesIn(node.Pkg, node.Decl.Body) {
		if p.allowedAt(node.Pkg, site.pos) {
			continue
		}
		chain = &allocChain{path: []string{name}, site: site}
		break
	}
	if chain == nil {
		for _, cs := range node.Calls {
			if p.annotated[cs.Callee] {
				continue
			}
			sub := p.allocChain(cs.Callee, seen)
			if sub == nil {
				continue
			}
			chain = &allocChain{path: append([]string{name}, sub.path...), site: sub.site}
			break
		}
	}
	p.allocMemo[id], p.allocDone[id] = chain, true
	return chain
}

// allowedAt reports whether an allocation fact at pos is silenced by
// an allocfree or allocflow allow directive in its own package.
func (p *Program) allowedAt(pkg *Package, pos token.Pos) bool {
	d := p.dirs[pkg]
	if d == nil {
		return false
	}
	position := pkg.Fset.Position(pos)
	return d.allows("allocfree", position) || d.allows("allocflow", position)
}

// isAllocFreeAnnotated reports whether the function's doc comment
// carries the //pomvet:allocfree directive.
func isAllocFreeAnnotated(fn *ast.FuncDecl) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == AllocFreeDirective ||
			strings.HasPrefix(c.Text, AllocFreeDirective+" ") {
			return true
		}
	}
	return false
}

// allocSitesIn walks one function body and collects every construct
// that can reach the allocator, in source order.
func allocSitesIn(pkg *Package, body *ast.BlockStmt) []allocSite {
	var sites []allocSite
	info := pkg.Info
	add := func(pos token.Pos, what string) {
		sites = append(sites, allocSite{pos: pos, what: what})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			allocCallSite(pkg, n, add)
		case *ast.FuncLit:
			add(n.Pos(), "contains a closure (captures escape to the heap)")
		case *ast.GoStmt:
			add(n.Pos(), "starts a goroutine")
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				add(n.Pos(), "builds a map literal")
			case *types.Slice:
				add(n.Pos(), "builds a slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					add(n.Pos(), "takes the address of a composite literal (escapes to the heap)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.Types[n].Type.Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					add(n.Pos(), "concatenates strings")
				}
			}
		}
		return true
	})
	return sites
}

// allocCallSite classifies one call.
func allocCallSite(pkg *Package, call *ast.CallExpr, add func(token.Pos, string)) {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				add(call.Pos(), "calls "+b.Name())
			case "append":
				add(call.Pos(), "calls append (growth allocates)")
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && allocHeavyPkgs[fn.Pkg().Path()] {
			add(call.Pos(), "calls "+fn.Pkg().Name()+"."+fn.Name()+" (formats/allocates)")
			return
		}
	}
	// Conversions between strings and byte/rune slices copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.Types[call.Args[0]].Type.Underlying()
		if stringsSliceConv(dst, src) || stringsSliceConv(src, dst) {
			add(call.Pos(), "converts between string and byte/rune slice (copies)")
		}
	}
}

// stringsSliceConv reports whether a is a string and b a []byte or
// []rune.
func stringsSliceConv(a, b types.Type) bool {
	ab, ok := a.(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	bs, ok := b.(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := bs.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune ||
		eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}
