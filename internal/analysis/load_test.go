package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMissingExports pins the pre-flight classification: dependencies
// without export data are reported, targets (checked from source) and
// unsafe (never has export data) are not.
func TestMissingExports(t *testing.T) {
	listed := []listedPkg{
		{ImportPath: "repro/internal/sim", Dir: "x"},                      // target, no export: fine
		{ImportPath: "unsafe", Standard: true, DepOnly: true},             // never has export data
		{ImportPath: "fmt", Standard: true, DepOnly: true, Export: "f.a"}, // healthy dep
		{ImportPath: "repro/internal/core", DepOnly: true},                // broken dep
		{ImportPath: "errors", Standard: true, DepOnly: true},             // broken stdlib dep
	}
	got := missingExports(listed)
	want := []string{"repro/internal/core", "errors"}
	if len(got) != len(want) {
		t.Fatalf("missingExports = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missingExports = %v, want %v", got, want)
		}
	}
}

// TestLoadBrokenTree pins the degradation path end to end: loading a
// module that does not compile fails with an error that carries the
// compiler's message instead of an opaque importer failure.
func TestLoadBrokenTree(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module broken\n\ngo 1.24\n")
	write("dep/dep.go", "package dep\n\nfunc F() int { return \"not an int\" }\n")
	write("top/top.go", "package top\n\nimport \"broken/dep\"\n\nvar _ = dep.F()\n")

	_, err := Load(dir, "./top")
	if err == nil {
		t.Fatal("Load succeeded on a tree that does not compile")
	}
	msg := err.Error()
	if !strings.Contains(msg, "dep") {
		t.Errorf("error does not name the broken package:\n%s", msg)
	}
}
