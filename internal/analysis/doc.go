// Package analysis is the engine behind cmd/pomvet: a stdlib-only
// (go/ast + go/parser + go/types + `go list`) vet-style framework that
// machine-checks the source-level discipline the repo's
// bitwise-reproducibility guarantees rest on. Every determinism pin in
// the test suite — parallel RHS evaluation equal to serial, resumed
// archives identical to uninterrupted runs, distributed fleets merging
// file-for-file equal to a serial sweep — holds only as long as the
// code avoids a handful of innocent-looking constructs; the analyzers
// here reject those constructs at lint time instead of waiting for a
// probabilistic test failure.
//
// Five analyzers ship with the framework:
//
//   - maprange: map iteration whose body has order-dependent effects
//     (appends, sink writes, calls, error construction, float
//     accumulation) must go through the collect-keys-then-sort idiom.
//   - wallclock: time.Now / time.Since / timers are forbidden —
//     simulated time comes from the solver. The sanctioned wall-clock
//     sites (dsweep lease expiry, sweep tmp keepalive, retry backoff)
//     carry in-source //pomvet:allow annotations.
//   - globalrand: the global math/rand functions and process-seeded
//     sources are forbidden in favor of internal/stats' explicitly
//     seeded RNG.
//   - syncerr: a discarded error from Sync / Close / Rename / Chtimes
//     on a durability path is a silent hole in the crash-consistency
//     protocol; errors must be checked or visibly assigned away.
//   - allocfree: functions annotated //pomvet:allocfree (the RHS,
//     step, sink-row, and event-heap hot paths) must contain no
//     allocating constructs — the static twin of PERFORMANCE.md's
//     AllocsPerRun pins.
//
// Suppression is per-site and reviewable: `//pomvet:allow <analyzer>
// <reason>` on the offending line (or the line above, or in the
// enclosing declaration's doc comment) silences one analyzer there;
// the reason is mandatory and malformed directives are themselves
// diagnostics. Packages are loaded through `go list -export -deps
// -json` and type-checked against the toolchain's export data, so the
// checker needs no dependencies beyond the standard library and a
// working `go` tool.
package analysis
