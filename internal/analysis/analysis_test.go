package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// TestFixtures runs each analyzer over its golden fixture package and
// compares the findings against the fixture's // want `regexp`
// comments. A finding with no want, or a want with no finding, fails —
// so weakening detection breaks this test.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{MapRange, "maprange"},
		{WallClock, "wallclock"},
		{GlobalRand, "globalrand"},
		{SyncErr, "syncerr"},
		{AllocFree, "allocfree"},
		{AllocFlow, "allocflow"},
		{SinkRetain, "sinkretain"},
		{CtxLeak, "ctxleak"},
		{SyncErr, "fix"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			pkgs, err := Load(".", "./testdata/src/"+tc.fixture)
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, pkgs, Run(pkgs, []*Analyzer{tc.analyzer}))
		})
	}
}

// TestRepoIsClean is pomvet's own acceptance gate: the full repository
// must be free of findings under every analyzer. When this fails,
// either fix the violation or annotate the site with a reasoned
// //pomvet:allow — silencing the analyzer is not an option, because
// the fixtures above pin its detection strength.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole tree")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("%s", f)
	}
}

// wantSpec is one expectation parsed from a // want comment: a finding
// on this line whose message matches re.
type wantSpec struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantLitRE extracts the backquoted patterns of a want comment.
var wantLitRE = regexp.MustCompile("`([^`]+)`")

// collectWants parses the // want `regexp` comments out of the loaded
// fixture files. A single comment may carry several patterns when one
// line produces several findings.
func collectWants(t *testing.T, pkgs []*Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lits := wantLitRE.FindAllStringSubmatch(rest, -1)
					if len(lits) == 0 {
						t.Fatalf("%s:%d: want comment without a backquoted pattern: %s",
							pos.Filename, pos.Line, c.Text)
					}
					for _, m := range lits {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						}
						wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkWants matches findings against wants one-to-one.
func checkWants(t *testing.T, pkgs []*Package, findings []Finding) {
	t.Helper()
	wants := collectWants(t, pkgs)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line &&
				w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
