package analysis

import (
	"go/ast"
	"go/types"
)

// All returns the repo's analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		MapRange, WallClock, GlobalRand, SyncErr,
		AllocFree, AllocFlow, SinkRetain, CtxLeak,
	}
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
