package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLeak flags goroutines whose loops no cancellation can reach.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc: `flag goroutines running unbounded loops with no cancellation path

The lease heartbeats, keepalive refreshers, and worker pools that keep
distributed sweeps alive are long-lived goroutines; one launched
without a cancellation path outlives its run, keeps ticking against
the wall clock, and pins its captures forever. An unbounded loop
(for {} — or for range over a timer channel, which never closes)
inside a go statement must be exitable on demand: a receive from
ctx.Done() or a stop channel, a range over a closable work channel, or
a ctx.Err() check, paired with a return or break. Ticker and timer
channels do not count — they always deliver and never close. The check
follows the call graph: go w.loop(ctx) is analyzed through loop's
body, and a helper's loop three calls down still needs its exit.`,
	Run: runCtxLeak,
}

// ctxLeakDepth bounds the call-graph descent from a go statement: a
// leak more than a few calls deep is better reported when its own
// package launches it directly.
const ctxLeakDepth = 4

func runCtxLeak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if leak := pass.prog.goroutineLeak(pass.Pkg, g.Call, make(map[funcID]bool), ctxLeakDepth); leak != nil {
				where := ""
				if leak.via != "" {
					where = " in " + leak.via
				}
				pass.ReportRangef(g.Pos(), g.Call.End(),
					"goroutine runs an unbounded loop%s (%s) with no cancellation path: add a ctx.Done()/stop-channel case that returns, or range over a closable channel (timer channels never close)",
					where, pass.Pkg.Fset.Position(leak.pos))
			}
			return true
		})
	}
}

// goroutineLeak decides whether launching call as a goroutine leaks:
// the launched body (a function literal, or a resolved declaration's
// body followed through the call graph) contains an unbounded loop
// with no cancellation path.
type leakInfo struct {
	pos token.Pos
	via string // function name holding the loop, "" for the literal itself
}

func (p *Program) goroutineLeak(pkg *Package, call *ast.CallExpr, seen map[funcID]bool, depth int) *leakInfo {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return p.bodyLeak(pkg, lit.Body, "", seen, depth)
	}
	fn := callee(pkg.Info, call)
	if fn == nil {
		return nil
	}
	return p.funcLeak(fn, seen, depth)
}

// funcLeak checks a resolved function's body for an unexitable loop.
func (p *Program) funcLeak(fn *types.Func, seen map[funcID]bool, depth int) *leakInfo {
	if depth <= 0 {
		return nil
	}
	id := fn.FullName()
	if seen[id] {
		return nil
	}
	seen[id] = true
	node := p.Graph.Node(id)
	if node == nil {
		return nil // no loaded body (stdlib, interface): nothing to prove
	}
	return p.bodyLeak(node.Pkg, node.Decl.Body, shortFuncName(fn), seen, depth)
}

// bodyLeak scans one body: a leaky loop directly in it wins; otherwise
// the calls it makes are followed (a goroutine whose whole body is
// w.run(ctx) leaks iff run does).
func (p *Program) bodyLeak(pkg *Package, body *ast.BlockStmt, via string, seen map[funcID]bool, depth int) *leakInfo {
	var leak *leakInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if leak != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs only if called; its go statements are visited separately
		case *ast.GoStmt:
			return false // a nested goroutine is its own launch site
		case *ast.ForStmt:
			// Only loops that block (receive, select, sleep) are
			// long-lived in the leak sense; a for {} that always
			// progresses to a return (a retry scan) is not waiting on
			// anything cancellation could interrupt.
			if n.Cond == nil && loopBlocks(pkg, n.Body) && !loopHasCancel(pkg, n.Body) {
				leak = &leakInfo{pos: n.Pos(), via: via}
				return false
			}
		case *ast.RangeStmt:
			if isChanRange(pkg, n) && isTimerChan(pkg, n.X) {
				leak = &leakInfo{pos: n.Pos(), via: via}
				return false
			}
		}
		return true
	})
	if leak != nil {
		return leak
	}
	// Follow the static calls: a helper's loop needs an exit too.
	var sites []CallSite
	collectCalls(pkg.Info, body, &sites)
	for _, cs := range sites {
		if l := p.funcLeak(cs.CalleeFn, seen, depth-1); l != nil {
			return l
		}
	}
	return nil
}

// loopHasCancel reports whether an unbounded loop body contains a
// cancellation path: a receive from a non-timer channel (ctx.Done(),
// a stop channel, a closable work channel) or a ctx.Err() check,
// paired with a statement that exits the loop (return or break).
// Nested function literals are skipped — a cancellation check inside a
// callback does not stop this loop.
func loopHasCancel(pkg *Package, body *ast.BlockStmt) bool {
	var receive, exit bool
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isTimerChan(pkg, n.X) {
				receive = true
			}
		case *ast.RangeStmt:
			if isChanRange(pkg, n) && !isTimerChan(pkg, n.X) {
				receive = true
			}
		case *ast.CallExpr:
			if isCtxErrCall(pkg, n) {
				receive = true
			}
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exit = true
			}
		}
		return true
	})
	return receive && exit
}

// loopBlocks reports whether the loop body contains a blocking wait: a
// channel receive (timer or not), a range over a channel, a select, or
// a time.Sleep call. A loop that never blocks is CPU-bound and
// terminates or livelocks on its own logic — not a cancellation leak.
func loopBlocks(pkg *Package, body *ast.BlockStmt) bool {
	var blocks bool
	ast.Inspect(body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocks = true
			}
		case *ast.RangeStmt:
			if isChanRange(pkg, n) {
				blocks = true
			}
		case *ast.SelectStmt:
			blocks = true
		case *ast.CallExpr:
			if fn := callee(pkg.Info, n); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				blocks = true
			}
		}
		return true
	})
	return blocks
}

// isChanRange reports whether the range statement iterates a channel.
func isChanRange(pkg *Package, n *ast.RangeStmt) bool {
	if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}
	return false
}

// isTimerChan reports whether expr is a channel that always delivers
// and never closes: time.Ticker.C / time.Timer.C, or the result of
// time.After / time.Tick. Receiving from one proves liveness, not
// cancellability.
func isTimerChan(pkg *Package, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
					(obj.Name() == "Ticker" || obj.Name() == "Timer")
			}
		}
	case *ast.CallExpr:
		if fn := callee(pkg.Info, e); fn != nil {
			return fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				(fn.Name() == "After" || fn.Name() == "Tick")
		}
	}
	return false
}

// isCtxErrCall reports whether call is ctx.Err() on a context.Context.
func isCtxErrCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Err" {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
