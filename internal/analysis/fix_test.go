package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// loadFixFixture loads the fix fixture package and returns its syncerr
// findings.
func loadFixFixture(t *testing.T, dir string, patterns ...string) []Finding {
	t.Helper()
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, []*Analyzer{SyncErr})
}

// TestFixGolden applies the suggested fixes of the fix fixture and
// compares the result byte-for-byte against fix.go.golden.
func TestFixGolden(t *testing.T) {
	findings := loadFixFixture(t, ".", "./testdata/src/fix")
	if len(findings) == 0 {
		t.Fatal("fix fixture produced no findings")
	}
	fixed, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixes touch %d files, want 1", len(fixed))
	}
	for path, out := range fixed {
		golden, err := os.ReadFile(path + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, golden) {
			t.Errorf("fixed %s does not match golden:\n--- fixed ---\n%s\n--- golden ---\n%s",
				path, out, golden)
		}
	}
}

// TestFixIdempotent re-analyzes the golden (already fixed) source in a
// throwaway module: the unfixable go statement may still be reported,
// but no finding may carry a fix — a second -fix run must be a no-op.
func TestFixIdempotent(t *testing.T) {
	golden, err := os.ReadFile("testdata/src/fix/fix.go.golden")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixtest\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), golden, 0o644); err != nil {
		t.Fatal(err)
	}
	findings := loadFixFixture(t, dir, "./...")
	for _, f := range findings {
		if f.Fix != nil {
			t.Errorf("fixed source still proposes a fix: %s", f)
		}
	}
	fixed, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 0 {
		t.Errorf("second fix pass would rewrite %d file(s), want 0", len(fixed))
	}
}

// TestFixOverlapRefused pins the safety property: overlapping edits
// are an error, not a corrupted splice.
func TestFixOverlapRefused(t *testing.T) {
	src := []byte("hello world")
	_, err := applyEdits("x.go", src, []FixEdit{
		{File: "x.go", Start: offset(0), End: offset(5), NewText: "a"},
		{File: "x.go", Start: offset(3), End: offset(8), NewText: "b"},
	})
	if err == nil {
		t.Fatal("overlapping edits accepted")
	}
}

// TestFixDuplicateEditsCollapse pins dedup: two findings suggesting
// the identical edit apply it once.
func TestFixDuplicateEditsCollapse(t *testing.T) {
	src := []byte("f()")
	out, err := applyEdits("x.go", src, []FixEdit{
		{File: "x.go", Start: offset(0), End: offset(0), NewText: "_ = "},
		{File: "x.go", Start: offset(0), End: offset(0), NewText: "_ = "},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "_ = f()" {
		t.Errorf("got %q, want %q", got, "_ = f()")
	}
}

// offset builds a token.Position carrying only the byte offset, which
// is all applyEdits consumes.
func offset(n int) (p token.Position) {
	p.Offset = n
	return p
}
