package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcID names a function uniquely across every package of one Load:
// types.Func.FullName() — "repro/internal/stats.PhaseSpread" for
// package functions, "(*repro/internal/sim.SpreadAccumulator).Sample"
// for methods. String keys are essential: a package loaded from source
// and the same package seen through export data produce distinct
// *types.Func pointers for the same function, but identical FullNames.
type funcID = string

// A CallSite is one static call recorded in the graph.
type CallSite struct {
	// Callee identifies the called function; it may name a function
	// whose body was not loaded (stdlib, interface method).
	Callee funcID
	// CalleeFn is the type-checker's object for the callee.
	CalleeFn *types.Func
	// Call is the call expression in the caller's body.
	Call *ast.CallExpr
}

// A FuncNode is one function with a loaded body: a declaration in one
// of the analyzed packages.
type FuncNode struct {
	// ID is the node's graph key.
	ID funcID
	// Fn is the declared function or method.
	Fn *types.Func
	// Decl is the declaration carrying the body.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Calls are the static calls in the body, in source order. Calls
	// inside nested function literals are excluded: a literal's body
	// runs when the closure is invoked, not when the enclosing
	// function does, and the escape/alloc rules account for the
	// closure itself at its creation site.
	Calls []CallSite
}

// A CallGraph indexes every function body loaded in one Run and the
// static calls between them. Interface dispatch and calls through
// function values have no body to resolve to and appear only as call
// sites; the analyzers built on the graph (allocflow, sinkretain)
// treat such callees as re-entering the audited contract rather than
// guessing at their behavior.
type CallGraph struct {
	nodes map[funcID]*FuncNode
}

// Node returns the graph node for id, nil when no loaded package
// declares it.
func (g *CallGraph) Node(id funcID) *FuncNode { return g.nodes[id] }

// buildCallGraph walks every function declaration of the loaded
// packages and records its static calls.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[funcID]*FuncNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{ID: obj.FullName(), Fn: obj, Decl: fn, Pkg: pkg}
				collectCalls(pkg.Info, fn.Body, &node.Calls)
				g.nodes[node.ID] = node
			}
		}
	}
	return g
}

// collectCalls appends the static calls under n, skipping nested
// function literals (see FuncNode.Calls).
func collectCalls(info *types.Info, n ast.Node, out *[]CallSite) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if fn := callee(info, n); fn != nil {
				*out = append(*out, CallSite{Callee: fn.FullName(), CalleeFn: fn, Call: n})
			}
		}
		return true
	})
}

// enclosingFunc returns the ID of the smallest declared function whose
// body contains pos in pkg, and its node, or "" when pos is not inside
// a declared function body.
func enclosingFunc(pkg *Package, pos token.Pos) (funcID, *ast.FuncDecl) {
	for _, file := range pkg.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Body.Pos() <= pos && pos <= fn.Body.End() {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					return obj.FullName(), fn
				}
			}
		}
	}
	return "", nil
}
