package analysis

import (
	"go/ast"
	"go/types"
)

// SinkRetain flags sink implementations that retain their reused row
// or params buffers.
var SinkRetain = &Analyzer{
	Name: "sinkretain",
	Doc: `flag Sink/SampleFunc implementations that retain their reused row buffer

The whole streaming stack hands sample rows and param slices to
Sink.Sample, Push, and SampleFunc callbacks from reused buffers: the
slice is valid only for the duration of the call, and retaining the
header aliases memory the solver overwrites on the next step — the
corruption is silent and the bitwise-determinism pins cannot see it.
The analyzer runs the escape lattice over every method named Sample or
Push with a slice parameter and every function wired into a SampleFunc
field: a slice that is assigned to a field, stored into a retained
element, appended as a header, sent on a channel, captured by an
escaping closure, returned, or forwarded to a callee that does any of
those, is a finding. Copy the data out (copy, or append of elements)
instead of keeping the header, or annotate a sanctioned retention with
//pomvet:allow sinkretain <reason>.`,
	Run: runSinkRetain,
}

// sinkMethodNames are the method names bound by the buffer-reuse
// contract, whatever the receiver.
var sinkMethodNames = map[string]bool{
	"Sample": true,
	"Push":   true,
}

// sinkFieldNames are the struct fields whose function values receive
// reused rows (ode.SolveOptions.SampleFunc and friends).
var sinkFieldNames = map[string]bool{
	"SampleFunc": true,
}

func runSinkRetain(pass *Pass) {
	// Contract methods: every Sample/Push declaration with at least
	// one slice parameter.
	checked := make(map[*ast.FuncDecl]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || !sinkMethodNames[fn.Name.Name] {
				continue
			}
			checked[fn] = true
			pass.checkSinkDecl(fn)
		}
	}
	// SampleFunc wiring: function literals (and references to declared
	// functions) assigned into a SampleFunc field or composite-literal
	// key.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sinkFieldNames[sel.Sel.Name] {
						pass.checkSinkValue(n.Rhs[i], checked)
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && sinkFieldNames[key.Name] {
					pass.checkSinkValue(n.Value, checked)
				}
			}
			return true
		})
	}
}

// checkSinkValue analyzes the function wired into a SampleFunc slot: a
// literal in place, or a declaration in this package referenced by
// name.
func (pass *Pass) checkSinkValue(expr ast.Expr, checked map[*ast.FuncDecl]bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		roots := fieldParamObjects(pass.Pkg, e.Type.Params)
		fr := analyzeFlow(pass.Pkg, e.Type, e.Body, roots)
		pass.reportRetention("SampleFunc", fr, roots)
		pass.reportForwarded("SampleFunc", fr, roots)
	case *ast.Ident, *ast.SelectorExpr:
		fn := identFunc(pass.Pkg.Info, e)
		if fn == nil {
			return
		}
		node := pass.prog.Graph.Node(fn.FullName())
		if node == nil || node.Pkg != pass.Pkg || checked[node.Decl] {
			return
		}
		checked[node.Decl] = true
		pass.checkSinkDecl(node.Decl)
	}
}

// identFunc resolves a plain or selector function reference.
func identFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkSinkDecl runs the escape analysis over one contract method or
// function and reports every slice parameter that escapes.
func (pass *Pass) checkSinkDecl(fn *ast.FuncDecl) {
	obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	node := pass.prog.Graph.Node(obj.FullName())
	if node == nil {
		return
	}
	roots := paramObjects(pass.Pkg, fn)
	fr := pass.prog.flowFacts(node)
	pass.reportRetention(shortFuncName(obj), fr, roots)
	// Interprocedural step for the deps the local facts left open.
	pass.reportForwarded(shortFuncName(obj), fr, roots)
}

// reportRetention reports local escapes of slice roots.
func (pass *Pass) reportRetention(name string, fr *flowResult, roots []types.Object) {
	for i, esc := range fr.escapes {
		if esc == nil || i >= len(roots) || roots[i] == nil || !isSliceObj(roots[i]) {
			continue
		}
		detail := ""
		if esc.Detail != "" {
			detail = " (" + esc.Detail + ")"
		}
		pass.ReportRangef(esc.Pos, esc.Pos,
			"%s retains its reused buffer %s: %s%s — rows and params are overwritten after the call; copy the elements out, or annotate a sanctioned retention with //pomvet:allow sinkretain <reason>",
			name, roots[i].Name(), esc.Kind, detail)
	}
}

// reportForwarded resolves the open forwarding deps through the
// program fixpoint and reports the ones that retain.
func (pass *Pass) reportForwarded(name string, fr *flowResult, roots []types.Object) {
	for i, deps := range fr.deps {
		if fr.escapes[i] != nil || i >= len(roots) || roots[i] == nil || !isSliceObj(roots[i]) {
			continue
		}
		for _, d := range deps {
			sub := pass.prog.paramEscape(d.callee, d.param, make(map[string]bool))
			if sub == nil {
				continue
			}
			pass.ReportRangef(d.pos, d.pos,
				"%s retains its reused buffer %s: forwarded to %s, whose parameter %s is %s at %s — copy the elements out, or annotate a sanctioned retention with //pomvet:allow sinkretain <reason>",
				name, roots[i].Name(), shortFuncName(d.calleeFn),
				calleeParamName(d.calleeFn, d.param), sub.Kind,
				pass.Pkg.Fset.Position(sub.Pos))
			break // one finding per root
		}
	}
}

// fieldParamObjects resolves a parameter list's objects, mirroring
// paramObjects for function literals.
func fieldParamObjects(pkg *Package, params *ast.FieldList) []types.Object {
	var roots []types.Object
	if params == nil {
		return roots
	}
	for _, field := range params.List {
		if len(field.Names) == 0 {
			roots = append(roots, nil)
			continue
		}
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && isBasic(obj.Type()) {
				obj = nil
			}
			roots = append(roots, obj)
		}
	}
	return roots
}

// isSliceObj reports whether the object's type is a slice.
func isSliceObj(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}
