package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset maps token positions to file locations (shared across all
	// packages of one Load call).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in go list order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load lists the packages matching patterns (relative to dir), parses
// their non-test Go files with comments, and type-checks them against
// the toolchain's compiled export data. Test files are deliberately
// excluded: tests are allowed to use wall clocks, global randomness,
// and allocation — the invariants guard production code paths.
//
// The loader shells out to `go list -export -deps -json`, so it needs
// a working go tool and a tree that builds, and nothing else: no
// module dependencies, no network.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var listed, targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, p)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if missing := missingExports(listed); len(missing) > 0 {
		return nil, fmt.Errorf(
			"analysis: go list produced no export data for %s — the tree probably does not compile; run `go build ./...` first and fix what it reports",
			strings.Join(missing, ", "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q — run `go build ./...` first", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// missingExports returns the import paths of dependency packages that
// should have export data but do not. Target packages are type-checked
// from source and need none of their own; "unsafe" never has export
// data by design. A non-empty result means `go list -export` could not
// (or did not) compile a dependency — the caller turns that into a
// "run go build first" error instead of failing later with an opaque
// importer lookup.
func missingExports(listed []listedPkg) []string {
	var missing []string
	for _, p := range listed {
		if p.Export != "" || p.ImportPath == "unsafe" {
			continue
		}
		if !p.DepOnly && !p.Standard {
			continue // target: checked from source
		}
		missing = append(missing, p.ImportPath)
	}
	return missing
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, t listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
