// Package allocflow is the golden fixture for the allocflow analyzer:
// a //pomvet:allocfree function calling an unannotated helper is
// analyzed through the helper's body (and its callees); an allocating
// construct anywhere down the chain is reported at the annotated call
// site. Annotated callees are audited at their own declarations and
// cut the chain; allow directives in the callee's package sanction a
// site for every caller.
package allocflow

// hot calls an unannotated helper that allocates directly.
//
//pomvet:allocfree
func hot(xs []float64) float64 {
	return total(xs) // want `hot is //pomvet:allocfree but calls allocflow.total, which can allocate: calls make`
}

func total(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	var s float64
	for _, v := range tmp {
		s += v
	}
	return s
}

// hot2 reaches the allocation two calls down.
//
//pomvet:allocfree
func hot2(xs []float64) float64 {
	return outer(xs) // want `hot2 is //pomvet:allocfree but calls allocflow.outer → allocflow.inner, which can allocate: calls append \(growth allocates\) in allocflow.inner`
}

func outer(xs []float64) float64 {
	return inner(xs)
}

func inner(xs []float64) float64 {
	var ys []float64
	ys = append(ys, xs...)
	return float64(len(ys))
}

// clean calls only annotated and alloc-free helpers; no finding.
//
//pomvet:allocfree
func clean(xs []float64) float64 {
	return dot(xs, xs) + scale(xs)
}

// dot is annotated: audited at its own declaration, chain cut here.
//
//pomvet:allocfree
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// scale is unannotated but genuinely alloc-free: followed and clean.
func scale(xs []float64) float64 {
	var s float64
	for i := range xs {
		s += 2 * xs[i]
	}
	return s
}

// warm calls a helper whose allocation carries a reasoned allow in its
// own package: sanctioned for every caller.
//
//pomvet:allocfree
func warm(xs []float64) float64 {
	return pooled(xs)
}

func pooled(xs []float64) float64 {
	buf := make([]float64, len(xs)) //pomvet:allow allocflow pool warm-up, amortized across calls
	copy(buf, xs)
	return buf[0]
}
