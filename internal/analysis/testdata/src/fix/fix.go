// Package fix is the golden fixture for the -fix engine: each syncerr
// finding below carries a suggested rewrite, and fix.go.golden is the
// byte-exact result of applying them. The go statement has no
// mechanical rewrite and must survive unfixed.
package fix

import "os"

func flush(f *os.File) {
	f.Sync()  // want `error from Sync discarded`
	f.Close() // want `error from Close discarded`
}

func closeLater(f *os.File) {
	defer f.Close() // want `error from Close discarded by defer`
}

func closeAsync(f *os.File) {
	go f.Close() // want `error from Close discarded by go`
}

func move(a, b string) {
	os.Rename(a, b) // want `error from os.Rename discarded`
}
