// Package wallclock is the golden fixture for the wallclock analyzer:
// reads of the ambient clock are findings unless a reasoned
// //pomvet:allow annotation sanctions the site.
package wallclock

import "time"

// stamp reads the ambient clock.
func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

// wait schedules against it.
func wait(d time.Duration) {
	time.Sleep(d) // want `time.Sleep reads the wall clock`
}

// elapsed measures with it.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

// ticker builds a timer off it.
func ticker(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `time.NewTicker reads the wall clock`
}

// span is fine: Duration arithmetic never reads the clock.
func span(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// epoch is fine: construction from an explicit instant.
func epoch() time.Time {
	return time.Unix(0, 0)
}

// meter is sanctioned across its whole body by a doc-scoped allow.
//
//pomvet:allow wallclock fixture exercises declaration-scoped suppression
func meter(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// tick is sanctioned at one line only; the next clock read still
// fires.
func tick(t0 time.Time) (time.Duration, time.Time) {
	//pomvet:allow wallclock fixture exercises line-scoped suppression
	d := time.Since(t0)
	return d, time.Now() // want `time.Now reads the wall clock`
}
