// Package maprange is the golden fixture for the maprange analyzer:
// order-dependent effects inside map iteration are findings, the
// sanctioned order-insensitive idioms are not.
package maprange

import (
	"fmt"
	"sort"
)

// sumFloats accumulates floats over random iteration order — the
// bitwise-noncommutativity case gets its own message.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation into s`
	}
	return s
}

// countInts is legal: integer accumulation commutes exactly.
func countInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sortedKeys is the sanctioned sorted-keys idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys collects keys but never sorts them.
func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `map keys collected into keys are never sorted`
		keys = append(keys, k)
	}
	return keys
}

// printValues leaks iteration order through a sink call.
func printValues(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `call to fmt.Println inside map iteration`
	}
}

// appendValues builds a slice in random order.
func appendValues(m map[string]int, dst []int) []int {
	for _, v := range m {
		dst = append(dst, v) // want `assignment to dst inside map iteration`
	}
	return dst
}

// transfer writes another map at the loop key: each slot is written
// exactly once, so order cannot matter.
func transfer(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// firstValue returns a value picked by random order — the classic
// nondeterministic-error bug.
func firstValue(errs map[string]error) error {
	for _, err := range errs {
		return err // want `return inside map iteration`
	}
	return nil
}

// drain deletes while iterating, which the spec sanctions.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// sends delivers values in random order.
func sends(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

// closeAll defers in random order; both the defer and the deferred
// call are reported.
func closeAll(m map[string]func()) {
	for _, f := range m {
		defer f() // want `defer inside map iteration` `call to f inside map iteration`
	}
}

// loopLocals is legal: variables defined inside the body live one
// iteration, so order cannot be observed through them.
func loopLocals(m map[string]int) {
	for _, v := range m {
		x := v * 2
		_ = x
	}
}
