// Package globalrand is the golden fixture for the globalrand
// analyzer: draws from the process-global auto-seeded source are
// findings; explicitly seeded generators are the sanctioned form.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// draw uses the process-global source.
func draw() int {
	return rand.Intn(6) // want `rand.Intn uses the process-global auto-seeded source`
}

// shuffle does too.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the process-global auto-seeded source`
}

// drawV2 hits the v2 global source as well.
func drawV2() int {
	return randv2.IntN(6) // want `rand.IntN uses the process-global auto-seeded source`
}

// seeded builds an explicit generator: the discipline the analyzer
// exists to enforce, so constructors and methods stay legal.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// seededV2 does the same through the v2 API.
func seededV2(a, b uint64) uint64 {
	r := randv2.New(randv2.NewPCG(a, b))
	return r.Uint64()
}
