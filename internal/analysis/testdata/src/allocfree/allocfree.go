// Package allocfree is the golden fixture for the allocfree analyzer:
// inside a //pomvet:allocfree function every construct that can reach
// the allocator is a finding; unannotated functions allocate freely.
package allocfree

import "fmt"

// dot is annotated and genuinely alloc-free.
//
//pomvet:allocfree
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// grow is annotated but calls make and append.
//
//pomvet:allocfree
func grow(xs []int) []int {
	ys := make([]int, 0, len(xs)) // want `grow is //pomvet:allocfree but calls make`
	for _, x := range xs {
		ys = append(ys, x) // want `grow is //pomvet:allocfree but calls append`
	}
	return ys
}

// format is annotated but calls into the formatting packages.
//
//pomvet:allocfree
func format(x int) {
	fmt.Println(x) // want `format is //pomvet:allocfree but calls fmt.Println`
}

// capture is annotated but builds a closure.
//
//pomvet:allocfree
func capture(x int) func() int {
	return func() int { return x } // want `capture is //pomvet:allocfree but contains a closure`
}

// concat is annotated but concatenates strings.
//
//pomvet:allocfree
func concat(a, b string) string {
	return a + b // want `concat is //pomvet:allocfree but concatenates strings`
}

// convert is annotated but copies through a conversion.
//
//pomvet:allocfree
func convert(s string) []byte {
	return []byte(s) // want `convert is //pomvet:allocfree but converts between string and byte/rune slice`
}

// literal is annotated but builds a slice literal.
//
//pomvet:allocfree
func literal() []int {
	return []int{1, 2, 3} // want `literal is //pomvet:allocfree but builds a slice literal`
}

// point anchors the composite-escape case.
type point struct{ x, y int }

// escape is annotated but lets a composite literal escape.
//
//pomvet:allocfree
func escape() *point {
	return &point{1, 2} // want `escape is //pomvet:allocfree but takes the address of a composite literal`
}

// launch is annotated but starts a goroutine.
//
//pomvet:allocfree
func launch(ch chan int) {
	go send(ch) // want `launch is //pomvet:allocfree but starts a goroutine`
}

// send feeds launch's goroutine.
func send(ch chan int) { ch <- 1 }

// suppressed documents a sanctioned warm-up allocation with a
// reasoned line-scoped allow.
//
//pomvet:allocfree
func suppressed(xs []int, x int) []int {
	return append(xs, x) //pomvet:allow allocfree fixture exercises suppression of an amortized warm-up growth
}

// unannotated may allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}
