// Package sinkretain is the golden fixture for the sinkretain
// analyzer: Sample/Push methods and SampleFunc callbacks receive
// reused row buffers; retaining the slice header past the call is a
// finding, copying the elements out is the sanctioned idiom.
package sinkretain

// RetainingSink is the seeded retained-row sink: it keeps the header.
type RetainingSink struct {
	last []float64
}

// Sample stores the reused row, aliasing memory the solver overwrites.
func (s *RetainingSink) Sample(t float64, y []float64) {
	s.last = y // want `RetainingSink.Sample retains its reused buffer y: assigned to a field`
}

// CopySink copies the elements out — the sanctioned idiom.
type CopySink struct {
	rows [][]float64
}

// Sample takes a snapshot of the row; no header survives the call.
func (s *CopySink) Sample(t float64, y []float64) {
	r := make([]float64, len(y))
	copy(r, y)
	s.rows = append(s.rows, r)
}

// AppendSink appends the header itself instead of a copy.
type AppendSink struct {
	rows [][]float64
}

// Sample retains through the append.
func (s *AppendSink) Sample(t float64, y []float64) {
	s.rows = append(s.rows, y) // want `AppendSink.Sample retains its reused buffer y`
}

// ChanSink ships the row to a consumer that runs after the call.
type ChanSink struct {
	ch chan []float64
}

// Push retains through the channel send.
func (s *ChanSink) Push(y []float64) {
	s.ch <- y // want `ChanSink.Push retains its reused buffer y: sent on a channel`
}

// GoSink hands the row to a goroutine that may outlive the call.
type GoSink struct{}

// Sample retains through the goroutine argument.
func (s *GoSink) Sample(t float64, y []float64) {
	go consume(y) // want `GoSink.Sample retains its reused buffer y: passed to a goroutine`
}

func consume(y []float64) {}

// RetainingStore is an unexported helper that keeps whatever it is
// handed; forwarding a row into it is the interprocedural case.
type RetainingStore struct {
	last []float64
}

func (st *RetainingStore) keep(y []float64) {
	st.last = y
}

// ForwardSink retains by forwarding the row to a retaining callee.
type ForwardSink struct {
	dst *RetainingStore
}

// Sample retains one call away.
func (s *ForwardSink) Sample(t float64, y []float64) {
	s.dst.keep(y) // want `ForwardSink.Sample retains its reused buffer y: forwarded to RetainingStore.keep`
}

// SubsliceSink aliases the buffer through a subslice before storing.
type SubsliceSink struct {
	head []float64
}

// Sample retains through the alias.
func (s *SubsliceSink) Sample(t float64, y []float64) {
	h := y[:2]
	s.head = h // want `SubsliceSink.Sample retains its reused buffer y`
}

// SanctionedSink retains deliberately, with a reasoned allow: its
// caller passes a fresh slice per call, outside the reuse contract.
type SanctionedSink struct {
	last []float64
}

// Sample is annotated; no finding.
func (s *SanctionedSink) Sample(t float64, y []float64) {
	s.last = y //pomvet:allow sinkretain the test harness passes a fresh slice per call
}

// ScalarSink reads values out of the row — never a finding.
type ScalarSink struct {
	sum float64
}

// Sample reads basic elements; element reads carry no mark.
func (s *ScalarSink) Sample(t float64, y []float64) {
	for _, v := range y {
		s.sum += v
	}
}

// Options mirrors ode.SolveOptions: SampleFunc receives reused rows.
type Options struct {
	SampleFunc func(t float64, y []float64)
}

var captured []float64

// wireLiteral wires a retaining literal into a SampleFunc field.
func wireLiteral() Options {
	return Options{
		SampleFunc: func(t float64, y []float64) {
			captured = y // want `SampleFunc retains its reused buffer y: assigned to a field`
		},
	}
}

// keepRow is a declared function wired into a SampleFunc slot; the
// analyzer follows the reference to its declaration.
func keepRow(t float64, y []float64) {
	captured = y // want `sinkretain.keepRow retains its reused buffer y: assigned to a field`
}

// wireAssign wires keepRow by name.
func wireAssign(o *Options) {
	o.SampleFunc = keepRow
}

// wireClean wires a copying literal; no finding.
func wireClean(o *Options) {
	var sum float64
	o.SampleFunc = func(t float64, y []float64) {
		for _, v := range y {
			sum += v
		}
	}
	_ = sum
}
