// Package syncerr is the golden fixture for the syncerr analyzer:
// dropping the error from Sync, Close, Rename, or Chtimes as a bare
// statement (or under defer/go) is a finding; checking it or assigning
// it to _ explicitly is not.
package syncerr

import (
	"os"
	"time"
)

// drop discards a Close error as a bare statement.
func drop(f *os.File) {
	f.Close() // want `error from Close discarded`
}

// deferDrop discards under defer — the buffered-writer flush-failure
// hole.
func deferDrop(f *os.File) {
	defer f.Close() // want `error from Close discarded by defer`
}

// goDrop discards on a goroutine.
func goDrop(f *os.File) {
	go f.Sync() // want `error from Sync discarded by go`
}

// syncDrop discards the fsync result that the commit protocol depends
// on.
func syncDrop(f *os.File) {
	f.Sync() // want `error from Sync discarded`
}

// renameDrop discards the atomic-publish step's error.
func renameDrop(a, b string) {
	os.Rename(a, b) // want `error from os.Rename discarded`
}

// touchDrop discards an os.Chtimes error. The zero time.Time is a
// fixture placeholder, not a clock read.
func touchDrop(p string) {
	var epoch time.Time
	os.Chtimes(p, epoch, epoch) // want `error from os.Chtimes discarded`
}

// acknowledged drops are auditable, not findings.
func acknowledged(f *os.File) {
	_ = f.Close()
}

// wrapped is the sanctioned read-only close idiom.
func wrapped(f *os.File) {
	defer func() { _ = f.Close() }()
}

// checked is the real fix.
func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// latch has an error-free Close: nothing to drop.
type latch struct{ ch chan struct{} }

// Close signals completion; it cannot fail.
func (l *latch) Close() { close(l.ch) }

// closeLatch is fine: no error result to discard.
func closeLatch(l *latch) {
	l.Close()
}
