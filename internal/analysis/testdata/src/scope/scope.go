// Package scope is the golden fixture for directive scoping: a
// doc-comment allow covers its whole declaration whether the receiver
// is a value or a pointer, and inside a grouped var declaration a
// spec-level doc allow covers that spec alone.
package scope

import "time"

// Stamper exercises receiver forms.
type Stamper struct {
	at time.Time
}

// Mark is doc-allowed on a pointer receiver: the whole body is
// covered.
//
//pomvet:allow wallclock scope fixture, deliberate clock read
func (s *Stamper) Mark() {
	s.at = time.Now()
	s.at = s.at.Add(time.Since(s.at))
}

// Snapshot is doc-allowed on a value receiver: same coverage.
//
//pomvet:allow wallclock scope fixture, deliberate clock read
func (s Stamper) Snapshot() time.Time {
	return time.Now()
}

// Bare has no allow; its clock read must still be reported.
func (s *Stamper) Bare() {
	s.at = time.Now() // want `time.Now reads the wall clock`
}

var (
	// started is captured once at process start, deliberately.
	//
	//pomvet:allow wallclock scope fixture, captured once at init
	started = time.Now()

	// sibling sits in the same group but has no allow of its own.
	sibling = time.Now() // want `time.Now reads the wall clock`
)

// grouped pins that a group-level doc allow still covers every spec.
//
//pomvet:allow wallclock scope fixture, whole group sanctioned
var (
	first  = time.Now()
	second = time.Now()
)
