// Package ctxleak is the golden fixture for the ctxleak analyzer: a
// goroutine running an unbounded blocking loop must have a
// cancellation path — a non-timer receive or ctx.Err() check paired
// with an exit. Timer channels always deliver and never close, so
// they prove liveness, not cancellability.
package ctxleak

import (
	"context"
	"time"
)

func beat()             {}
func use(int)           {}
func tryClaim(int) bool { return false }
func prepare()          {}

// leakyHeartbeat is the seeded leaked heartbeat: the ticker loop has
// no way out.
func leakyHeartbeat() {
	t := time.NewTicker(time.Second)
	go func() { // want `goroutine runs an unbounded loop \(.*\) with no cancellation path`
		for {
			<-t.C
			beat()
		}
	}()
}

// goodHeartbeat pairs the tick with a ctx.Done() case that returns.
func goodHeartbeat(ctx context.Context) {
	t := time.NewTicker(time.Second)
	go func() {
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				beat()
			}
		}
	}()
}

// tickForever ranges a timer channel, which never closes.
func tickForever() {
	go func() { // want `goroutine runs an unbounded loop \(.*\) with no cancellation path`
		for range time.Tick(time.Second) {
			beat()
		}
	}()
}

// drainJobs ranges a closable work channel: close(jobs) ends it.
func drainJobs(jobs chan int) {
	go func() {
		for j := range jobs {
			use(j)
		}
	}()
}

// claimLoop spins a retry scan that always progresses to a return —
// it never blocks, so cancellation has nothing to interrupt.
func claimLoop() {
	go func() {
		for id := 0; ; id++ {
			if tryClaim(id) {
				return
			}
		}
	}()
}

// Worker's loops are reached through the call graph.
type Worker struct {
	stop chan struct{}
}

// loop is cancellable: the ctx.Done() case returns.
func (w *Worker) loop(ctx context.Context) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}

// watch is cancellable through its stop channel.
func (w *Worker) watch() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			beat()
		}
	}
}

// spin sleeps forever with no exit.
func (w *Worker) spin() {
	for {
		time.Sleep(time.Second)
		beat()
	}
}

// run buries the leaky loop one call deeper.
func (w *Worker) run() {
	prepare()
	w.spin()
}

// launch exercises the call-graph descent: loop and watch are clean,
// spin leaks directly, run leaks through spin.
func launch(ctx context.Context, w *Worker) {
	go w.loop(ctx)
	go w.watch()
	go w.spin() // want `goroutine runs an unbounded loop in Worker.spin \(.*\) with no cancellation path`
	go w.run()  // want `goroutine runs an unbounded loop in Worker.spin \(.*\) with no cancellation path`
}
