// Package directive is the fixture for //pomvet: directive parsing:
// malformed directives are findings in their own right, a rejected
// suppression must not silence the underlying diagnostic, and a
// well-formed allow must.
package directive

import "time"

// missingReason's directive names an analyzer but omits the mandatory
// reason, so both the directive and the clock read surface.
func missingReason() time.Time {
	//pomvet:allow wallclock
	return time.Now()
}

// unknownAnalyzer's directive names no real analyzer.
func unknownAnalyzer() time.Time {
	//pomvet:allow clock skew is fine here
	return time.Now()
}

// unknownVerb is not a directive pomvet knows.
//
//pomvet:silence wallclock
func unknownVerb() time.Time {
	return time.Now()
}

// wellFormed is fully suppressed by a reasoned doc-scoped allow.
//
//pomvet:allow wallclock fixture documents the one sanctioned form
func wellFormed() time.Time {
	return time.Now()
}

// argsOnAllocFree passes arguments to the no-argument directive.
//
//pomvet:allocfree because it is hot
func argsOnAllocFree(a, b float64) float64 {
	return a + b
}
