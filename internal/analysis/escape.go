package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// An EscapeKind classifies how a value outlives the function call it
// was handed to — the lattice the interprocedural analyzers reason in.
type EscapeKind string

const (
	// EscapeField: the value was assigned to a struct field reachable
	// beyond the call (receiver field, pointer target, package var).
	EscapeField EscapeKind = "assigned to a field"
	// EscapeStore: the value was stored into a slice or map element,
	// or through a pointer, that the analysis cannot prove local.
	EscapeStore EscapeKind = "stored into a retained element"
	// EscapeAppend: the slice header itself was appended into another
	// slice (append(dst, y) without spreading the elements).
	EscapeAppend EscapeKind = "appended into a retained slice"
	// EscapeChannel: the value was sent on a channel; the receiver
	// runs after the call returns.
	EscapeChannel EscapeKind = "sent on a channel"
	// EscapeReturn: the value (or an alias of its backing array) was
	// returned to the caller.
	EscapeReturn EscapeKind = "returned"
	// EscapeClosure: the value was captured by a closure that itself
	// escapes (stored, launched as a goroutine, or returned).
	EscapeClosure EscapeKind = "captured by an escaping closure"
	// EscapeGoroutine: the value was passed to (or captured by) a
	// goroutine, which may outlive the call.
	EscapeGoroutine EscapeKind = "passed to a goroutine"
	// EscapeCall: the value was forwarded to a callee whose own
	// parameter escapes — the interprocedural step.
	EscapeCall EscapeKind = "forwarded to a retaining callee"
)

// An Escape is one proven route by which a tracked value outlives its
// call.
type Escape struct {
	// Kind is the lattice point.
	Kind EscapeKind
	// Pos is the escaping statement or expression.
	Pos token.Pos
	// Detail narrates the route, including the interprocedural chain
	// when Kind is EscapeCall.
	Detail string
}

// A flowDep records that a tracked root was forwarded as an argument
// to a resolvable callee: whether it escapes there is decided by the
// program-level fixpoint (Program.paramEscape), not locally.
type flowDep struct {
	callee   funcID
	calleeFn *types.Func
	param    int
	pos      token.Pos
}

// flowResult is one function body's local escape facts: per root, the
// earliest local escape (nil if none) and the calls the root's value
// was forwarded through.
type flowResult struct {
	escapes []*Escape
	deps    [][]flowDep
}

// flowWalker tracks value aliases through one function body. The
// analysis closes over assignments, slicing, and closure captures
// until a fixpoint: any local that can alias a root's backing array
// carries the root's mark, and every marked value reaching a
// non-local store, channel send, return, header append, or escaping
// closure is an escape. Element reads and writes of basic type (a
// float out of a row) never carry a mark — copying data out of the
// buffer is exactly the sanctioned idiom.
type flowWalker struct {
	pkg     *Package
	roots   []types.Object
	results map[types.Object]bool   // named result variables
	tracked map[types.Object]uint64 // object -> bitmask of aliased roots
	lits    map[*ast.FuncLit]uint64 // closure -> bitmask of captured roots
	res     *flowResult
	changed bool
}

// analyzeFlow computes the local escape facts of body for the given
// root objects (typically reference-typed parameters). ftype supplies
// the function's result fields so assignments to named results count
// as returns; it may be nil.
func analyzeFlow(pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt, roots []types.Object) *flowResult {
	w := &flowWalker{
		pkg:     pkg,
		roots:   roots,
		results: make(map[types.Object]bool),
		tracked: make(map[types.Object]uint64),
		lits:    make(map[*ast.FuncLit]uint64),
		res: &flowResult{
			escapes: make([]*Escape, len(roots)),
			deps:    make([][]flowDep, len(roots)),
		},
	}
	if ftype != nil && ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					w.results[obj] = true
				}
			}
		}
	}
	for i, obj := range roots {
		if obj != nil {
			w.tracked[obj] |= 1 << uint(i)
		}
	}
	// Alias chains (z := y; q := z[1:]) and closure captures converge
	// in a few rounds; bodies are small, so iterate to fixpoint.
	for {
		w.changed = false
		w.walk(body)
		if !w.changed {
			break
		}
	}
	return w.res
}

// mark sets root bits on an object, noting growth for the fixpoint.
func (w *flowWalker) mark(obj types.Object, mask uint64) {
	if obj == nil || mask == 0 {
		return
	}
	if w.tracked[obj]&mask != mask {
		w.tracked[obj] |= mask
		w.changed = true
	}
}

// escape records an escape for every root in mask, keeping the
// earliest position per root so diagnostics are deterministic.
func (w *flowWalker) escape(mask uint64, kind EscapeKind, pos token.Pos, detail string) {
	for i := range w.roots {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if cur := w.res.escapes[i]; cur == nil || pos < cur.Pos {
			w.res.escapes[i] = &Escape{Kind: kind, Pos: pos, Detail: detail}
		}
	}
}

// dep records a forwarding edge for every root in mask.
func (w *flowWalker) dep(mask uint64, callee funcID, calleeFn *types.Func, param int, pos token.Pos) {
	for i := range w.roots {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		dup := false
		for _, d := range w.res.deps[i] {
			if d.callee == callee && d.param == param && d.pos == pos {
				dup = true
				break
			}
		}
		if !dup {
			w.res.deps[i] = append(w.res.deps[i], flowDep{
				callee: callee, calleeFn: calleeFn, param: param, pos: pos,
			})
		}
	}
}

// maskOf reports which roots expr can alias. Sub-slices, conversions
// between slice types, append results, &y[i], non-basic index reads,
// and composite literals holding the value all preserve aliasing;
// basic element reads, string conversions (they copy), and everything
// else clear it. Function literals carry the mask of their captures.
func (w *flowWalker) maskOf(expr ast.Expr) uint64 {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			return w.tracked[obj]
		}
	case *ast.ParenExpr:
		return w.maskOf(e.X)
	case *ast.SliceExpr:
		return w.maskOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if ix, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				return w.maskOf(ix.X) // &y[i] points into y's backing array
			}
			return w.maskOf(e.X)
		}
	case *ast.IndexExpr:
		// y[i]: a basic element (a float out of a row) is a copy; a
		// reference element (a [][]float64's row) aliases caller data.
		if t := w.typeOf(e); t != nil && !isBasic(t) {
			return w.maskOf(e.X)
		}
	case *ast.CompositeLit:
		var m uint64
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			m |= w.maskOf(elt)
		}
		return m
	case *ast.FuncLit:
		return w.lits[e]
	case *ast.CallExpr:
		// append(dst, ...) returns an alias of dst.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return w.maskOf(e.Args[0])
			}
		}
		// A conversion keeps the backing array when both sides are
		// slices (T(y) for a named slice type); string<->[]byte copies.
		if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if _, dst := tv.Type.Underlying().(*types.Slice); dst {
				if at := w.typeOf(e.Args[0]); at != nil {
					if _, src := at.Underlying().(*types.Slice); src {
						return w.maskOf(e.Args[0])
					}
				}
			}
		}
	}
	return 0
}

// objOf resolves an identifier to its object.
func (w *flowWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return w.pkg.Info.Defs[id]
}

// typeOf returns expr's type, or nil.
func (w *flowWalker) typeOf(expr ast.Expr) types.Type {
	if tv, ok := w.pkg.Info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// isBasic reports whether t's underlying type is basic — reads of such
// elements copy the value and cannot retain a buffer.
func isBasic(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

// isLocalVar reports whether obj is a variable bound inside the
// function (parameters and value receivers included — Go rebinds them
// locally). Such a variable is a carrier: storing an alias in it is
// not an escape by itself, and it spreads the mark instead.
func (w *flowWalker) isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false // package variable
	}
	return true
}

// walk dispatches one pass over a statement tree.
func (w *flowWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, name := range n.Names {
					lhs[i] = name
				}
				w.assign(lhs, n.Values)
			}
		case *ast.RangeStmt:
			// for _, v := range rows: v aliases an element; only
			// reference elements carry the mark.
			if m := w.maskOf(n.X); m != 0 && n.Value != nil {
				if t := w.typeOf(n.Value); t != nil && !isBasic(t) {
					if id, ok := n.Value.(*ast.Ident); ok {
						w.mark(w.objOf(id), m)
					}
				}
			}
		case *ast.SendStmt:
			if m := w.maskOf(n.Value); m != 0 {
				w.escape(m, EscapeChannel, n.Pos(), "")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if m := w.maskOf(res); m != 0 {
					w.escape(m, EscapeReturn, res.Pos(), "")
				}
			}
		case *ast.GoStmt:
			w.goStmt(n)
		case *ast.CallExpr:
			w.call(n)
		case *ast.FuncLit:
			w.funcLit(n)
			return false // funcLit walks the body itself
		}
		return true
	})
}

// assign handles one (possibly parallel) assignment.
func (w *flowWalker) assign(lhs, rhs []ast.Expr) {
	for i, r := range rhs {
		m := w.maskOf(r)
		if m == 0 || i >= len(lhs) {
			continue
		}
		_, viaClosure := ast.Unparen(r).(*ast.FuncLit)
		w.store(lhs[i], m, viaClosure, r.Pos())
	}
}

// store routes a marked value into an lvalue.
func (w *flowWalker) store(dst ast.Expr, mask uint64, viaClosure bool, pos token.Pos) {
	kind := func(k EscapeKind) EscapeKind {
		if viaClosure {
			return EscapeClosure
		}
		return k
	}
	switch d := ast.Unparen(dst).(type) {
	case *ast.Ident:
		if d.Name == "_" {
			return
		}
		obj := w.objOf(d)
		if obj == nil {
			return
		}
		if w.results[obj] {
			w.escape(mask, kind(EscapeReturn), pos, "assigned to named result "+d.Name)
			return
		}
		if w.isLocalVar(obj) {
			w.mark(obj, mask)
			return
		}
		w.escape(mask, kind(EscapeField), pos, "assigned to package variable "+d.Name)
	case *ast.SelectorExpr:
		// s.f = y: if the selector chain is rooted at a local struct
		// *value*, the local becomes the carrier; a pointer, map, or
		// receiver-field target is reachable after the call returns.
		if w.localValueChain(d) {
			w.mark(w.objOf(chainRoot(d)), mask)
			return
		}
		w.escape(mask, kind(EscapeField), pos, "assigned to "+exprString(d))
	case *ast.IndexExpr:
		if w.localValueChain(d) {
			w.mark(w.objOf(chainRoot(d)), mask)
			return
		}
		w.escape(mask, kind(EscapeStore), pos, "stored into "+exprString(d))
	case *ast.StarExpr:
		w.escape(mask, kind(EscapeStore), pos, "stored through pointer "+exprString(d))
	}
}

// localValueChain reports whether the selector/index chain is rooted
// at a local variable through value types only (no pointer, map, or
// slice hop) — a store through such a chain stays in the frame, and
// the root local becomes the mark carrier.
func (w *flowWalker) localValueChain(e ast.Expr) bool {
	root := chainRoot(e)
	if root == nil {
		return false
	}
	obj := w.objOf(root)
	if obj == nil || !w.isLocalVar(obj) || w.results[obj] {
		return false
	}
	// Every hop from the root up to (but excluding) the full lvalue
	// must be a value type: x.f[i].g is local iff x, x.f, x.f[i] are
	// all non-reference values rooted at a local.
	for cur := ast.Unparen(e); ; {
		var inner ast.Expr
		switch x := cur.(type) {
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.Ident:
			return true
		default:
			return false
		}
		inner = ast.Unparen(inner)
		if t := w.typeOf(inner); t != nil {
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Map, *types.Slice, *types.Interface:
				return false
			}
		} else {
			return false
		}
		cur = inner
	}
}

// chainRoot returns the identifier at the base of a selector/index
// chain (a in a.b[i].c), or nil.
func chainRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// call handles append/copy specially, then records forwarding deps for
// marked arguments of resolvable calls. Unresolvable callees —
// interface methods, function values — are the audited contract
// re-entering itself (a Tee fanning rows out to more sinks) and do not
// escape here; their concrete implementations are analyzed at their
// own declarations.
func (w *flowWalker) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			w.builtinCall(b, call)
			return
		}
	}
	fn := callee(w.pkg.Info, call)
	for i, arg := range call.Args {
		m := w.maskOf(arg)
		if m == 0 || fn == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 {
			continue
		}
		p := i
		if sig.Variadic() && p >= sig.Params().Len()-1 {
			p = sig.Params().Len() - 1
		}
		if p >= sig.Params().Len() {
			continue
		}
		w.dep(m, fn.FullName(), fn, p, arg.Pos())
	}
}

// builtinCall handles append and copy.
func (w *flowWalker) builtinCall(b *types.Builtin, call *ast.CallExpr) {
	switch b.Name() {
	case "append":
		for i, arg := range call.Args[1:] {
			m := w.maskOf(arg)
			if m == 0 {
				continue
			}
			if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
				// append(dst, y...) copies y's elements; that retains
				// nothing when the elements are basic values.
				if t := w.typeOf(arg); t != nil {
					if s, ok := t.Underlying().(*types.Slice); ok && isBasic(s.Elem()) {
						continue
					}
				}
			}
			w.escape(m, EscapeAppend, arg.Pos(), "")
		}
	case "copy":
		if len(call.Args) == 2 {
			// copy(dst, y) copies elements: harmless for basic element
			// types, retention when the elements are themselves
			// references (copying [][]float64 copies row headers).
			if m := w.maskOf(call.Args[1]); m != 0 {
				if t := w.typeOf(call.Args[1]); t != nil {
					if s, ok := t.Underlying().(*types.Slice); ok && !isBasic(s.Elem()) {
						w.escape(m, EscapeStore, call.Args[1].Pos(),
							"reference elements copied into "+exprString(call.Args[0]))
					}
				}
			}
		}
	}
}

// goStmt marks goroutine-launched values: arguments and closure
// captures outlive the call by construction.
func (w *flowWalker) goStmt(g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if m := w.lits[lit]; m != 0 {
			w.escape(m, EscapeGoroutine, g.Pos(), "captured by the goroutine's closure")
		}
	}
	for _, arg := range g.Call.Args {
		if m := w.maskOf(arg); m != 0 {
			w.escape(m, EscapeGoroutine, arg.Pos(), "")
		}
	}
}

// funcLit accumulates the closure's captured roots and walks its body:
// a field store or channel send inside the closure escapes the capture
// just as it would in the enclosing body, but a plain return only
// leaves the closure, so EscapeReturns recorded strictly inside the
// literal are rolled back.
func (w *flowWalker) funcLit(lit *ast.FuncLit) {
	var captured uint64
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pkg.Info.Uses[id]; obj != nil {
				captured |= w.tracked[obj]
			}
		}
		return true
	})
	if w.lits[lit]&captured != captured {
		w.lits[lit] |= captured
		w.changed = true
	}
	saved := append([]*Escape(nil), w.res.escapes...)
	w.walk(lit.Body)
	for i, esc := range w.res.escapes {
		if esc != nil && esc.Kind == EscapeReturn &&
			lit.Body.Pos() <= esc.Pos && esc.Pos <= lit.Body.End() {
			w.res.escapes[i] = saved[i]
		}
	}
}
