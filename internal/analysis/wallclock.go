package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or schedule
// against the machine's wall clock. Monotonic or not, none of them may
// influence simulation state: simulated time comes from the solver,
// and two runs of the same spec must not diverge because one host was
// slower. Construction helpers like time.Duration arithmetic,
// time.Unix, or formatting are fine — it is the *reading* of the
// ambient clock that breaks reproducibility.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// WallClock forbids reading the wall clock outside explicitly
// annotated sites.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: `forbid wall-clock reads (time.Now, time.Since, timers) in simulation code

Simulated time must come from the solver; wall-clock reads make output
depend on host speed and scheduling. The sanctioned uses — dsweep
lease expiry, sweep tmp-keepalive aging, retry backoff, progress
meters — carry //pomvet:allow wallclock annotations at the site.`,
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFunc := obj.(*types.Func); isFunc && wallClockFuncs[obj.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s reads the wall clock; simulated time must come from the solver (or annotate the site: //pomvet:allow wallclock <reason>)",
					obj.Name())
			}
			return true
		})
	}
}
