// Package trace records and analyzes per-rank execution timelines of the
// simulated MPI programs — the role Intel Trace Analyzer (ITAC) plays in
// the paper. A trace is a list of state spans per rank (computation vs.
// communication/waiting, matching the white/red coloring of the paper's
// Fig. 2 insets) plus per-iteration completion timestamps. The analysis
// routines extract the quantities the paper reads off its traces: idle
// wave arrival times and propagation speed, per-rank waiting time, and
// the skew structure of computational wavefronts.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// SpanKind classifies what a rank was doing during a span.
type SpanKind int

const (
	// SpanCompute is useful computation (white in ITAC traces).
	SpanCompute SpanKind = iota
	// SpanComm is communication including blocked waiting (red).
	SpanComm
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if k == SpanCompute {
		return "compute"
	}
	return "comm"
}

// Span is one contiguous state interval of one rank.
type Span struct {
	Kind       SpanKind
	Start, End float64
}

// Duration returns the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Trace is a complete execution record of an N-rank program.
type Trace struct {
	// Spans[r] is rank r's timeline in increasing time order.
	Spans [][]Span
	// IterEnds[r][k] is the time rank r finished iteration k.
	IterEnds [][]float64
	// End is the completion time of the whole run (makespan).
	End float64
}

// NewTrace returns an empty trace for n ranks.
func NewTrace(n int) *Trace {
	return &Trace{
		Spans:    make([][]Span, n),
		IterEnds: make([][]float64, n),
	}
}

// N returns the number of ranks.
func (t *Trace) N() int { return len(t.Spans) }

// Reserve pre-sizes rank r's span and iteration storage so recording in a
// hot loop (the cluster engine) appends without growing slices.
func (t *Trace) Reserve(r, nSpans, nIters int) {
	if cap(t.Spans[r]) < nSpans {
		s := make([]Span, len(t.Spans[r]), nSpans)
		copy(s, t.Spans[r])
		t.Spans[r] = s
	}
	if cap(t.IterEnds[r]) < nIters {
		e := make([]float64, len(t.IterEnds[r]), nIters)
		copy(e, t.IterEnds[r])
		t.IterEnds[r] = e
	}
}

// Record appends a span to rank r, merging it with the previous span when
// contiguous and of the same kind. Zero-length spans are dropped.
func (t *Trace) Record(r int, kind SpanKind, start, end float64) {
	if end <= start {
		return
	}
	spans := t.Spans[r]
	if n := len(spans); n > 0 && spans[n-1].Kind == kind && spans[n-1].End >= start-1e-12 {
		spans[n-1].End = end
		t.Spans[r] = spans
	} else {
		t.Spans[r] = append(spans, Span{Kind: kind, Start: start, End: end})
	}
	if end > t.End {
		t.End = end
	}
}

// MarkIterEnd records that rank r completed an iteration at time ts.
func (t *Trace) MarkIterEnd(r int, ts float64) {
	t.IterEnds[r] = append(t.IterEnds[r], ts)
	if ts > t.End {
		t.End = ts
	}
}

// Validate checks the structural invariants: spans sorted, non-overlapping
// and nonnegative, iteration marks increasing.
func (t *Trace) Validate() error {
	for r, spans := range t.Spans {
		prev := math.Inf(-1)
		for i, s := range spans {
			if s.End < s.Start {
				return fmt.Errorf("trace: rank %d span %d negative", r, i)
			}
			if s.Start < prev-1e-9 {
				return fmt.Errorf("trace: rank %d span %d overlaps previous", r, i)
			}
			prev = s.End
		}
		for i := 1; i < len(t.IterEnds[r]); i++ {
			if t.IterEnds[r][i] < t.IterEnds[r][i-1] {
				return fmt.Errorf("trace: rank %d iteration marks not increasing", r)
			}
		}
	}
	return nil
}

// TimeInState sums the time rank r spent in the given state.
func (t *Trace) TimeInState(r int, kind SpanKind) float64 {
	var sum float64
	for _, s := range t.Spans[r] {
		if s.Kind == kind {
			sum += s.Duration()
		}
	}
	return sum
}

// CommFractions returns each rank's communication time fraction.
func (t *Trace) CommFractions() []float64 {
	out := make([]float64, t.N())
	for r := range out {
		comm := t.TimeInState(r, SpanComm)
		comp := t.TimeInState(r, SpanCompute)
		if tot := comm + comp; tot > 0 {
			out[r] = comm / tot
		}
	}
	return out
}

// StateAt returns rank r's state at time ts, defaulting to SpanComm
// (waiting) in gaps.
func (t *Trace) StateAt(r int, ts float64) SpanKind {
	spans := t.Spans[r]
	idx := sort.Search(len(spans), func(i int) bool { return spans[i].End > ts })
	if idx < len(spans) && spans[idx].Start <= ts {
		return spans[idx].Kind
	}
	return SpanComm
}

// Progress returns rank r's continuous iteration progress at time ts:
// the number of completed iterations, linearly interpolated inside the
// current iteration. This is the trace-side analogue of the oscillator
// phase θ_i/2π.
func (t *Trace) Progress(r int, ts float64) float64 {
	ends := t.IterEnds[r]
	if len(ends) == 0 {
		return 0
	}
	idx := sort.Search(len(ends), func(i int) bool { return ends[i] > ts })
	if idx == len(ends) {
		return float64(len(ends))
	}
	var prevEnd float64
	if idx > 0 {
		prevEnd = ends[idx-1]
	}
	if ends[idx] <= prevEnd {
		return float64(idx)
	}
	frac := (ts - prevEnd) / (ends[idx] - prevEnd)
	if frac < 0 {
		frac = 0
	}
	return float64(idx) + frac
}

// WaveMeasurement is the result of idle-wave front extraction from a
// trace.
type WaveMeasurement struct {
	// Origin is the injected rank.
	Origin int
	// Arrival[r] is the first time rank r showed an excess wait after the
	// injection (NaN when the wave never reached it).
	Arrival []float64
	// Speed is the front speed in ranks per second.
	Speed float64
	// SpeedRanksPerIter is the speed expressed in ranks per average
	// undisturbed iteration duration.
	SpeedRanksPerIter float64
	// R2 is the goodness of the rank-vs-arrival fit.
	R2 float64
	// Reached counts ranks with a detected arrival.
	Reached int
}

// MeasureIdleWave extracts the idle wave launched by a delay injected at
// rank origin at time t0: for every rank it finds the first communication
// span after t0 that exceeds the pre-injection baseline wait by more than
// threshold seconds, then fits distance-vs-arrival. periodic controls
// ring-distance wrapping; iterDur converts the speed to ranks/iteration
// (pass the undisturbed iteration time).
func (t *Trace) MeasureIdleWave(origin int, t0, threshold, iterDur float64, periodic bool) (WaveMeasurement, error) {
	n := t.N()
	if origin < 0 || origin >= n {
		return WaveMeasurement{}, errors.New("trace: origin out of range")
	}
	wm := WaveMeasurement{Origin: origin, Arrival: make([]float64, n)}
	for r := 0; r < n; r++ {
		wm.Arrival[r] = math.NaN()
		// Baseline: the longest comm span strictly before t0.
		var base float64
		for _, s := range t.Spans[r] {
			if s.End > t0 {
				break
			}
			if s.Kind == SpanComm && s.Duration() > base {
				base = s.Duration()
			}
		}
		for _, s := range t.Spans[r] {
			if s.End <= t0 || s.Kind != SpanComm {
				continue
			}
			if s.Duration() > base+threshold {
				start := s.Start
				if start < t0 {
					start = t0
				}
				wm.Arrival[r] = start
				break
			}
		}
	}
	var xs, ys []float64
	for r := 0; r < n; r++ {
		if r == origin || math.IsNaN(wm.Arrival[r]) {
			continue
		}
		d := r - origin
		if d < 0 {
			d = -d
		}
		if periodic && n-d < d {
			d = n - d
		}
		xs = append(xs, wm.Arrival[r])
		ys = append(ys, float64(d))
		wm.Reached++
	}
	if len(xs) < 3 {
		return wm, errors.New("trace: idle wave reached too few ranks")
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return wm, err
	}
	wm.Speed = math.Abs(fit.Slope)
	wm.R2 = fit.R2
	if iterDur > 0 {
		wm.SpeedRanksPerIter = wm.Speed * iterDur
	}
	return wm, nil
}

// DesyncMeasurement quantifies the computational-wavefront structure of a
// trace over an observation window.
type DesyncMeasurement struct {
	// Skew[r] is rank r's mean iteration-progress offset (in iterations)
	// relative to rank 0 over the window.
	Skew []float64
	// Spread is max skew − min skew: the trace analogue of the
	// oscillator phase spread.
	Spread float64
	// MeanAbsAdjacent is the mean |skew difference| between adjacent
	// ranks — near zero in lockstep, finite in a wavefront.
	MeanAbsAdjacent float64
}

// MeasureDesync samples iteration progress on a uniform grid of nSamples
// points over [w0, w1] and reports the skew structure.
func (t *Trace) MeasureDesync(w0, w1 float64, nSamples int) (DesyncMeasurement, error) {
	if w1 <= w0 || nSamples < 1 {
		return DesyncMeasurement{}, errors.New("trace: invalid desync window")
	}
	n := t.N()
	dm := DesyncMeasurement{Skew: make([]float64, n)}
	for k := 0; k < nSamples; k++ {
		ts := w0 + (w1-w0)*float64(k)/float64(nSamples)
		p0 := t.Progress(0, ts)
		for r := 0; r < n; r++ {
			dm.Skew[r] += t.Progress(r, ts) - p0
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for r := range dm.Skew {
		dm.Skew[r] /= float64(nSamples)
		if dm.Skew[r] < lo {
			lo = dm.Skew[r]
		}
		if dm.Skew[r] > hi {
			hi = dm.Skew[r]
		}
	}
	dm.Spread = hi - lo
	for r := 1; r < n; r++ {
		dm.MeanAbsAdjacent += math.Abs(dm.Skew[r] - dm.Skew[r-1])
	}
	if n > 1 {
		dm.MeanAbsAdjacent /= float64(n - 1)
	}
	return dm, nil
}

// MeanIterationTime returns the average iteration duration of rank r over
// its recorded iterations (0 when fewer than 2 marks exist).
func (t *Trace) MeanIterationTime(r int) float64 {
	ends := t.IterEnds[r]
	if len(ends) < 2 {
		return 0
	}
	return (ends[len(ends)-1] - ends[0]) / float64(len(ends)-1)
}

// Utilization summarizes one rank's time budget.
type Utilization struct {
	Rank            int
	Compute, Comm   float64
	ComputeFraction float64
}

// UtilizationReport returns the per-rank time budget of the trace —
// the summary table ITAC shows next to the timeline.
func (t *Trace) UtilizationReport() []Utilization {
	out := make([]Utilization, t.N())
	for r := range out {
		comp := t.TimeInState(r, SpanCompute)
		comm := t.TimeInState(r, SpanComm)
		u := Utilization{Rank: r, Compute: comp, Comm: comm}
		if tot := comp + comm; tot > 0 {
			u.ComputeFraction = comp / tot
		}
		out[r] = u
	}
	return out
}
