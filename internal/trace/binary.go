package trace

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of a Trace, used to embed traces in archive records
// (internal/archive). Floats are stored as raw IEEE-754 bits, so a
// round trip is bitwise-exact — unlike the diff-friendly CSV form,
// which goes through decimal formatting. Layout (little-endian):
//
//	nRanks u32
//	per rank: nSpans u32 · (kind u8 · start f64 · end f64)×nSpans
//	per rank: nIters u32 · f64×nIters
//	end f64

// AppendBinary appends the binary encoding of the trace to buf and
// returns the extended slice.
func (t *Trace) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.N()))
	for _, spans := range t.Spans {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(spans)))
		for _, s := range spans {
			buf = append(buf, byte(s.Kind))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Start))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.End))
		}
	}
	for _, ends := range t.IterEnds {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ends)))
		for _, ts := range ends {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ts))
		}
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.End))
}

// DecodeBinary parses a trace encoded by AppendBinary. Corrupt input —
// truncated sections, impossible counts, unknown span kinds — returns
// an error, never a panic.
func DecodeBinary(b []byte) (*Trace, error) {
	off := 0
	u32 := func(what string) (uint32, error) {
		if off+4 > len(b) {
			return 0, fmt.Errorf("trace: truncated binary trace reading %s", what)
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	f64 := func(what string) (float64, error) {
		if off+8 > len(b) {
			return 0, fmt.Errorf("trace: truncated binary trace reading %s", what)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v, nil
	}
	nRanks, err := u32("rank count")
	if err != nil {
		return nil, err
	}
	// Each rank needs at least its two count words; reject counts that
	// could not fit in the remaining bytes before allocating.
	if int(nRanks) > len(b)/8+1 {
		return nil, fmt.Errorf("trace: rank count %d exceeds payload", nRanks)
	}
	t := NewTrace(int(nRanks))
	for r := 0; r < int(nRanks); r++ {
		nSpans, err := u32("span count")
		if err != nil {
			return nil, err
		}
		if off+17*int(nSpans) > len(b) {
			return nil, fmt.Errorf("trace: rank %d span count %d exceeds payload", r, nSpans)
		}
		if nSpans > 0 {
			t.Spans[r] = make([]Span, nSpans)
		}
		for k := range t.Spans[r] {
			kind := b[off]
			off++
			if kind != byte(SpanCompute) && kind != byte(SpanComm) {
				return nil, fmt.Errorf("trace: rank %d span %d: unknown kind %d", r, k, kind)
			}
			start, err1 := f64("span start")
			end, err2 := f64("span end")
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: truncated binary trace in rank %d spans", r)
			}
			t.Spans[r][k] = Span{Kind: SpanKind(kind), Start: start, End: end}
		}
	}
	for r := 0; r < int(nRanks); r++ {
		nIters, err := u32("iteration count")
		if err != nil {
			return nil, err
		}
		if off+8*int(nIters) > len(b) {
			return nil, fmt.Errorf("trace: rank %d iteration count %d exceeds payload", r, nIters)
		}
		if nIters > 0 {
			t.IterEnds[r] = make([]float64, nIters)
		}
		for k := range t.IterEnds[r] {
			ts, err := f64("iteration mark")
			if err != nil {
				return nil, err
			}
			t.IterEnds[r][k] = ts
		}
	}
	if t.End, err = f64("makespan"); err != nil {
		return nil, err
	}
	if off != len(b) {
		return nil, fmt.Errorf("trace: %d trailing bytes after binary trace", len(b)-off)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
