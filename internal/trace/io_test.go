package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := NewTrace(3)
	orig.Record(0, SpanCompute, 0, 1.5)
	orig.Record(0, SpanComm, 1.5, 2)
	orig.Record(1, SpanCompute, 0, 2)
	orig.Record(2, SpanComm, 0.25, 0.75)
	orig.MarkIterEnd(0, 2)
	orig.MarkIterEnd(0, 4)
	orig.MarkIterEnd(1, 2)

	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 {
		t.Fatalf("N = %d", back.N())
	}
	for r := 0; r < 3; r++ {
		if len(back.Spans[r]) != len(orig.Spans[r]) {
			t.Fatalf("rank %d spans: %d vs %d", r, len(back.Spans[r]), len(orig.Spans[r]))
		}
		for i, s := range orig.Spans[r] {
			b := back.Spans[r][i]
			if b.Kind != s.Kind || math.Abs(b.Start-s.Start) > 1e-15 || math.Abs(b.End-s.End) > 1e-15 {
				t.Errorf("rank %d span %d: %+v vs %+v", r, i, b, s)
			}
		}
		if len(back.IterEnds[r]) != len(orig.IterEnds[r]) {
			t.Errorf("rank %d iters: %d vs %d", r, len(back.IterEnds[r]), len(orig.IterEnds[r]))
		}
	}
	if back.End != orig.End {
		t.Errorf("End = %v vs %v", back.End, orig.End)
	}
}

func TestCSVRoundTripPreservesAnalysis(t *testing.T) {
	orig := buildWaveTrace(10)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w1, err1 := orig.MeasureIdleWave(2, 10, 0.5, 1, false)
	w2, err2 := back.MeasureIdleWave(2, 10, 0.5, 1, false)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(w1.Speed-w2.Speed) > 1e-12 {
		t.Errorf("wave speed changed through round trip: %v vs %v", w1.Speed, w2.Speed)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty", ""},
		{"header only", "record,rank,a,b,c\n"},
		{"bad rank", "record,rank,a,b,c\nspan,x,compute,0,1\n"},
		{"bad kind", "record,rank,a,b,c\nspan,0,magic,0,1\n"},
		{"bad span times", "record,rank,a,b,c\nspan,0,compute,zero,1\n"},
		{"bad record", "record,rank,a,b,c\nblob,0,compute,0,1\n"},
		{"bad iter", "record,rank,a,b,c\niter,0,x,1,\n"},
		{"overlapping", "record,rank,a,b,c\nspan,0,compute,0,2\nspan,0,comm,1,3\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestReadCSVNegativeRank is the regression test for the negative-rank
// panic: a row with rank -1 alongside a valid rank passed the first-pass
// scan (only the maximum rank was tracked) and then indexed t.Spans[-1]
// in the second pass. It must be rejected with an error, not a panic.
func TestReadCSVNegativeRank(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"negative span rank", "record,rank,a,b,c\nspan,0,compute,0,1\nspan,-1,comm,0,1\n"},
		{"negative iter rank", "record,rank,a,b,c\nspan,0,compute,0,1\niter,-3,0,1,\n"},
		{"all ranks negative", "record,rank,a,b,c\nspan,-1,compute,0,1\n"},
	}
	for _, c := range cases {
		tr, err := ReadCSV(strings.NewReader(c.data))
		if err == nil {
			t.Errorf("%s: want error, got trace with %d ranks", c.name, tr.N())
		}
	}
}
