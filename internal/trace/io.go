package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV serializes the trace as CSV with one row per span plus one row
// per iteration mark:
//
//	span,<rank>,<kind>,<start>,<end>
//	iter,<rank>,<index>,<time>
//
// The format is line-oriented and diff-friendly so traces can be archived
// next to experiment outputs and inspected with standard tools — the role
// of ITAC's trace files.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"record", "rank", "a", "b", "c"}); err != nil {
		return err
	}
	for r, spans := range t.Spans {
		for _, s := range spans {
			err := cw.Write([]string{
				"span",
				strconv.Itoa(r),
				s.Kind.String(),
				strconv.FormatFloat(s.Start, 'g', -1, 64),
				strconv.FormatFloat(s.End, 'g', -1, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	for r, ends := range t.IterEnds {
		for k, ts := range ends {
			err := cw.Write([]string{
				"iter",
				strconv.Itoa(r),
				strconv.Itoa(k),
				strconv.FormatFloat(ts, 'g', -1, 64),
				"",
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The rank count is inferred
// from the data.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	maxRank := -1
	for _, row := range rows[1:] {
		rank, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: bad rank %q: %w", row[1], err)
		}
		if rank < 0 {
			return nil, fmt.Errorf("trace: negative rank %d", rank)
		}
		if rank > maxRank {
			maxRank = rank
		}
	}
	if maxRank < 0 {
		return nil, fmt.Errorf("trace: no records")
	}
	t := NewTrace(maxRank + 1)
	type iterMark struct {
		k  int
		ts float64
	}
	iters := make([][]iterMark, maxRank+1)
	for i, row := range rows[1:] {
		rank, _ := strconv.Atoi(row[1])
		switch row[0] {
		case "span":
			var kind SpanKind
			switch row[2] {
			case "compute":
				kind = SpanCompute
			case "comm":
				kind = SpanComm
			default:
				return nil, fmt.Errorf("trace: row %d: unknown kind %q", i+2, row[2])
			}
			start, err1 := strconv.ParseFloat(row[3], 64)
			end, err2 := strconv.ParseFloat(row[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: row %d: bad span times", i+2)
			}
			t.Spans[rank] = append(t.Spans[rank], Span{Kind: kind, Start: start, End: end})
			if end > t.End {
				t.End = end
			}
		case "iter":
			k, err1 := strconv.Atoi(row[2])
			ts, err2 := strconv.ParseFloat(row[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: row %d: bad iter mark", i+2)
			}
			iters[rank] = append(iters[rank], iterMark{k: k, ts: ts})
			if ts > t.End {
				t.End = ts
			}
		default:
			return nil, fmt.Errorf("trace: row %d: unknown record %q", i+2, row[0])
		}
	}
	for r, marks := range iters {
		sort.Slice(marks, func(a, b int) bool { return marks[a].k < marks[b].k })
		for _, m := range marks {
			t.IterEnds[r] = append(t.IterEnds[r], m.ts)
		}
	}
	for r := range t.Spans {
		sort.SliceStable(t.Spans[r], func(a, b int) bool {
			return t.Spans[r][a].Start < t.Spans[r][b].Start
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
