package trace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randTrace builds a random but structurally valid trace: per rank,
// contiguous alternating spans and increasing iteration marks.
func randTrace(rng *rand.Rand) *Trace {
	n := 1 + rng.Intn(5)
	t := NewTrace(n)
	for r := 0; r < n; r++ {
		at := rng.Float64()
		kind := SpanKind(rng.Intn(2))
		for s := 0; s < rng.Intn(6); s++ {
			d := 0.1 + rng.Float64()
			t.Record(r, kind, at, at+d)
			at += d
			kind = 1 - kind // alternate so Record never merges
		}
		mark := rng.Float64()
		for k := 0; k < rng.Intn(4); k++ {
			mark += rng.Float64()
			t.MarkIterEnd(r, mark)
		}
	}
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		orig := randTrace(rng)
		back, err := DecodeBinary(orig.AppendBinary(nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("trial %d: round trip changed the trace:\n%+v\nvs\n%+v", trial, orig, back)
		}
	}
}

func TestBinaryRoundTripExactFloats(t *testing.T) {
	orig := NewTrace(1)
	start := math.Nextafter(1.0/3.0, 1) // not representable in short decimal
	orig.Record(0, SpanCompute, start, start+math.Pi)
	orig.MarkIterEnd(0, start+math.Pi)
	back, err := DecodeBinary(orig.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Spans[0][0]; math.Float64bits(got.Start) != math.Float64bits(start) ||
		math.Float64bits(got.End) != math.Float64bits(start+math.Pi) {
		t.Errorf("span floats not bitwise-preserved: %+v", got)
	}
}

// TestDecodeBinaryCorrupt feeds truncations and mutations of a valid
// encoding to the decoder: every damaged input must error, never panic.
func TestDecodeBinaryCorrupt(t *testing.T) {
	orig := randTrace(rand.New(rand.NewSource(3)))
	good := orig.AppendBinary(nil)
	if _, err := DecodeBinary(good); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeBinary(good[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(good))
		}
	}
	if _, err := DecodeBinary(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A huge rank count must be rejected before allocation.
	huge := append([]byte{0xff, 0xff, 0xff, 0x7f}, good[4:]...)
	if _, err := DecodeBinary(huge); err == nil {
		t.Error("oversized rank count accepted")
	}
}
