package trace

import (
	"math"
	"testing"
)

func TestRecordMergesContiguous(t *testing.T) {
	tr := NewTrace(2)
	tr.Record(0, SpanCompute, 0, 1)
	tr.Record(0, SpanCompute, 1, 2) // merges
	tr.Record(0, SpanComm, 2, 3)
	tr.Record(0, SpanCompute, 3, 3) // zero-length dropped
	if len(tr.Spans[0]) != 2 {
		t.Fatalf("spans = %v", tr.Spans[0])
	}
	if tr.Spans[0][0].Duration() != 2 {
		t.Errorf("merged span duration = %v", tr.Spans[0][0].Duration())
	}
	if tr.End != 3 {
		t.Errorf("End = %v", tr.End)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	tr := NewTrace(1)
	tr.Spans[0] = []Span{{SpanCompute, 0, 2}, {SpanComm, 1, 3}}
	if err := tr.Validate(); err == nil {
		t.Error("want overlap error")
	}
	tr2 := NewTrace(1)
	tr2.Spans[0] = []Span{{SpanCompute, 2, 1}}
	if err := tr2.Validate(); err == nil {
		t.Error("want negative-span error")
	}
	tr3 := NewTrace(1)
	tr3.IterEnds[0] = []float64{2, 1}
	if err := tr3.Validate(); err == nil {
		t.Error("want non-increasing iteration error")
	}
}

func TestTimeInStateAndFractions(t *testing.T) {
	tr := NewTrace(1)
	tr.Record(0, SpanCompute, 0, 3)
	tr.Record(0, SpanComm, 3, 4)
	if tr.TimeInState(0, SpanCompute) != 3 {
		t.Error("compute time wrong")
	}
	if tr.TimeInState(0, SpanComm) != 1 {
		t.Error("comm time wrong")
	}
	if f := tr.CommFractions()[0]; f != 0.25 {
		t.Errorf("comm fraction = %v", f)
	}
}

func TestStateAt(t *testing.T) {
	tr := NewTrace(1)
	tr.Record(0, SpanCompute, 0, 1)
	tr.Record(0, SpanComm, 1, 2)
	if tr.StateAt(0, 0.5) != SpanCompute {
		t.Error("StateAt(0.5)")
	}
	if tr.StateAt(0, 1.5) != SpanComm {
		t.Error("StateAt(1.5)")
	}
	if tr.StateAt(0, 99) != SpanComm {
		t.Error("gap should default to comm")
	}
}

func TestProgressInterpolation(t *testing.T) {
	tr := NewTrace(1)
	tr.MarkIterEnd(0, 1)
	tr.MarkIterEnd(0, 2)
	tr.MarkIterEnd(0, 4)
	if p := tr.Progress(0, 0.5); p != 0.5 {
		t.Errorf("Progress(0.5) = %v", p)
	}
	if p := tr.Progress(0, 1.5); p != 1.5 {
		t.Errorf("Progress(1.5) = %v", p)
	}
	if p := tr.Progress(0, 3); p != 2.5 {
		t.Errorf("Progress(3) = %v", p)
	}
	if p := tr.Progress(0, 10); p != 3 {
		t.Errorf("Progress(10) = %v (clamp)", p)
	}
	var empty Trace
	_ = empty
	tr2 := NewTrace(1)
	if tr2.Progress(0, 1) != 0 {
		t.Error("no-iteration Progress must be 0")
	}
}

func TestMeanIterationTime(t *testing.T) {
	tr := NewTrace(1)
	tr.MarkIterEnd(0, 1)
	tr.MarkIterEnd(0, 3)
	tr.MarkIterEnd(0, 5)
	if got := tr.MeanIterationTime(0); got != 2 {
		t.Errorf("MeanIterationTime = %v", got)
	}
	tr2 := NewTrace(1)
	tr2.MarkIterEnd(0, 1)
	if tr2.MeanIterationTime(0) != 0 {
		t.Error("single mark must give 0")
	}
}

// buildWaveTrace synthesizes a trace where a delay at rank 2 at t=10
// produces excess waits hitting rank 2+d at time 10+d (speed 1 rank/s).
func buildWaveTrace(n int) *Trace {
	tr := NewTrace(n)
	for r := 0; r < n; r++ {
		// Regular pre-injection pattern: 0.8 compute / 0.2 comm cycles.
		for k := 0; k < 10; k++ {
			t0 := float64(k)
			tr.Record(r, SpanCompute, t0, t0+0.8)
			tr.Record(r, SpanComm, t0+0.8, t0+1)
		}
		d := r - 2
		if d < 0 {
			d = -d
		}
		arr := 10 + float64(d)
		// Excess wait of 1.5s at arrival.
		tr.Record(r, SpanCompute, 10, arr)
		tr.Record(r, SpanComm, arr, arr+1.5)
	}
	return tr
}

func TestMeasureIdleWave(t *testing.T) {
	tr := buildWaveTrace(12)
	wm, err := tr.MeasureIdleWave(2, 10, 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Reached < 10 {
		t.Errorf("reached = %d", wm.Reached)
	}
	if math.Abs(wm.Speed-1) > 0.05 {
		t.Errorf("speed = %v, want ≈ 1 rank/s", wm.Speed)
	}
	if wm.R2 < 0.98 {
		t.Errorf("R2 = %v", wm.R2)
	}
	if math.Abs(wm.SpeedRanksPerIter-wm.Speed) > 1e-12 {
		t.Error("ranks/iter conversion with iterDur=1 must equal speed")
	}
}

func TestMeasureIdleWaveErrors(t *testing.T) {
	tr := NewTrace(4)
	if _, err := tr.MeasureIdleWave(9, 0, 0.1, 1, false); err == nil {
		t.Error("want origin range error")
	}
	if _, err := tr.MeasureIdleWave(0, 0, 0.1, 1, false); err == nil {
		t.Error("want too-few-ranks error on empty trace")
	}
}

func TestMeasureDesyncLockstepVsWavefront(t *testing.T) {
	// Lockstep: all ranks end iterations at the same times.
	n := 8
	lock := NewTrace(n)
	for r := 0; r < n; r++ {
		for k := 1; k <= 20; k++ {
			lock.MarkIterEnd(r, float64(k))
		}
	}
	dm, err := lock.MeasureDesync(10, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Spread > 1e-9 || dm.MeanAbsAdjacent > 1e-9 {
		t.Errorf("lockstep skew: %+v", dm)
	}

	// Wavefront: rank r lags r·0.3 iterations behind.
	wave := NewTrace(n)
	for r := 0; r < n; r++ {
		off := 0.3 * float64(r)
		for k := 1; k <= 30; k++ {
			wave.MarkIterEnd(r, float64(k)+off)
		}
	}
	dm2, err := wave.MeasureDesync(10, 25, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantSpread := 0.3 * float64(n-1)
	if math.Abs(dm2.Spread-wantSpread) > 0.1 {
		t.Errorf("wavefront spread = %v, want ≈ %v", dm2.Spread, wantSpread)
	}
	if math.Abs(dm2.MeanAbsAdjacent-0.3) > 0.05 {
		t.Errorf("adjacent skew = %v, want ≈ 0.3", dm2.MeanAbsAdjacent)
	}
	if _, err := wave.MeasureDesync(5, 5, 10); err == nil {
		t.Error("want invalid-window error")
	}
}

func TestUtilizationReport(t *testing.T) {
	tr := NewTrace(2)
	tr.Record(0, SpanCompute, 0, 3)
	tr.Record(0, SpanComm, 3, 4)
	rep := tr.UtilizationReport()
	if len(rep) != 2 {
		t.Fatalf("ranks = %d", len(rep))
	}
	if rep[0].Compute != 3 || rep[0].Comm != 1 || rep[0].ComputeFraction != 0.75 {
		t.Errorf("rank 0 utilization = %+v", rep[0])
	}
	if rep[1].ComputeFraction != 0 {
		t.Errorf("idle rank fraction = %v", rep[1].ComputeFraction)
	}
}
