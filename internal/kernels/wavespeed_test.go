package kernels

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// measureUpwardWave injects a delay near the low end of a chain so the
// two-sided fit is dominated by the upward-traveling branch, and returns
// the fitted speed in ranks/iteration.
func measureUpwardWave(t *testing.T, offsets []int, msgBytes float64) float64 {
	t.Helper()
	const n = 36
	const iters = 240
	const origin = 2
	const delayIter = 40
	tp, err := topology.Stencil(n, offsets, false)
	if err != nil {
		t.Fatal(err)
	}
	k := Pisolver()
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), msgBytes, iters)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cluster.NewSim(cluster.Meggie((n+9)/10), progs, cluster.Options{
		Delays: []cluster.DelayInjection{{Rank: origin, Iter: delayIter, Extra: 10 * k.CoreSeconds}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	iterDur := tr.MeanIterationTime(0)
	tDelay := tr.IterEnds[origin][delayIter-1]
	wm, err := tr.MeasureIdleWave(origin, tDelay, 0.5*iterDur, iterDur, false)
	if err != nil {
		t.Fatal(err)
	}
	return wm.SpeedRanksPerIter
}

// TestAnalyticWaveSpeedPrediction validates the WaveSpeeds predictor
// against the discrete-event simulator for three stencils.
func TestAnalyticWaveSpeedPrediction(t *testing.T) {
	cases := []struct {
		offsets []int
	}{
		{[]int{-1, 1}},
		{[]int{-2, -1, 1}},
		{[]int{-3, -1, 1}},
	}
	for _, c := range cases {
		tp, err := topology.Stencil(36, c.offsets, false)
		if err != nil {
			t.Fatal(err)
		}
		up, _ := tp.WaveSpeeds(topology.Eager)
		got := measureUpwardWave(t, c.offsets, 1024)
		if math.Abs(got-up)/up > 0.2 {
			t.Errorf("stencil %v: DES speed %.2f, analytic %.0f ranks/iter",
				c.offsets, got, up)
		}
	}
}

func TestWaveSpeedsPredictor(t *testing.T) {
	tp, _ := topology.Stencil(10, []int{-2, -1, 1}, true)
	up, down := tp.WaveSpeeds(topology.Eager)
	if up != 2 || down != 1 {
		t.Errorf("eager speeds = %v/%v, want 2/1", up, down)
	}
	up, down = tp.WaveSpeeds(topology.Rendezvous)
	if up != 2 || down != 2 {
		t.Errorf("rendezvous speeds = %v/%v, want 2/2", up, down)
	}
	one, _ := topology.Stencil(10, []int{1}, true)
	up, down = one.WaveSpeeds(topology.Eager)
	if up != 0 || down != 1 {
		t.Errorf("one-sided eager speeds = %v/%v, want 0/1", up, down)
	}
	up, down = one.WaveSpeeds(topology.Rendezvous)
	if up != 1 || down != 1 {
		t.Errorf("one-sided rendezvous speeds = %v/%v, want 1/1", up, down)
	}
}
