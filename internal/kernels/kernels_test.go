package kernels

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestKernelCalibration(t *testing.T) {
	s := STREAM()
	if bw := s.DemandBandwidth(); math.Abs(bw-13e9)/13e9 > 1e-9 {
		t.Errorf("STREAM demand = %v, want 13 GB/s", bw)
	}
	sch := Schoenauer()
	if bw := sch.DemandBandwidth(); math.Abs(bw-7.5e9)/7.5e9 > 1e-9 {
		t.Errorf("Schoenauer demand = %v, want 7.5 GB/s", bw)
	}
	pi := Pisolver()
	if bw := pi.DemandBandwidth(); bw > 1e6 {
		t.Errorf("PISOLVER demand = %v, want negligible", bw)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"STREAM", "stream", "schoenauer", "pisolver"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("want error for unknown kernel")
	}
	if len(All()) != 3 {
		t.Error("All must return the three paper kernels")
	}
}

func TestSTREAMSaturatesEarly(t *testing.T) {
	pts, err := SocketScalability(cluster.Meggie(1), STREAM(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	// Single core: ~13 GB/s; plateau at the 53 GB/s socket limit.
	if math.Abs(pts[0].BandwidthMBs-13000) > 200 {
		t.Errorf("1-core bandwidth = %v MB/s, want ≈ 13000", pts[0].BandwidthMBs)
	}
	if math.Abs(pts[9].BandwidthMBs-53000) > 1500 {
		t.Errorf("10-core bandwidth = %v MB/s, want ≈ 53000", pts[9].BandwidthMBs)
	}
	// Saturation by ≈ 4-5 cores (Fig. 1b shape).
	sat := SaturationPoint(pts, 0.95)
	if sat < 4 || sat > 5 {
		t.Errorf("STREAM saturation at %d cores, want 4-5", sat)
	}
}

func TestSchoenauerSaturatesLater(t *testing.T) {
	pts, err := SocketScalability(cluster.Meggie(1), Schoenauer(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	satStream := SaturationPoint(mustPoints(t, STREAM()), 0.95)
	satSch := SaturationPoint(pts, 0.95)
	if satSch <= satStream {
		t.Errorf("Schoenauer saturates at %d, STREAM at %d — paper wants later", satSch, satStream)
	}
	if satSch < 7 || satSch > 8 {
		t.Errorf("Schoenauer saturation at %d cores, want 7-8", satSch)
	}
}

func TestPisolverScalesLinearly(t *testing.T) {
	pts, err := SocketScalability(cluster.Meggie(1), Pisolver(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep time must not grow with core count (no bottleneck).
	for _, p := range pts {
		if math.Abs(p.TimePerSweep-pts[0].TimePerSweep)/pts[0].TimePerSweep > 1e-6 {
			t.Errorf("PISOLVER sweep time at %d cores = %v, want constant %v",
				p.Processes, p.TimePerSweep, pts[0].TimePerSweep)
		}
	}
	if sat := SaturationPoint(pts, 0.95); sat != 0 {
		t.Errorf("PISOLVER reported saturation at %d, want none", sat)
	}
}

func mustPoints(t *testing.T, k Kernel) []ScalabilityPoint {
	t.Helper()
	pts, err := SocketScalability(cluster.Meggie(1), k, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestSocketScalabilityValidation(t *testing.T) {
	if _, err := SocketScalability(cluster.Meggie(1), STREAM(), 0, 3); err == nil {
		t.Error("want error for maxProcs < 1")
	}
	if _, err := SocketScalability(cluster.Meggie(1), STREAM(), 99, 3); err == nil {
		t.Error("want error for maxProcs > cores")
	}
	if _, err := SocketScalability(cluster.Meggie(1), STREAM(), 4, 0); err == nil {
		t.Error("want error for iters < 1")
	}
}

func TestSaturationPointEdgeCases(t *testing.T) {
	if SaturationPoint(nil, 0.95) != 0 {
		t.Error("empty curve must have no saturation")
	}
}

func TestMachinePresets(t *testing.T) {
	m := cluster.Meggie(4)
	if err := m.Validate(); err != nil {
		t.Errorf("Meggie preset invalid: %v", err)
	}
	if m.CoresPerSocket != 10 {
		t.Error("Meggie is a 10-core Broadwell")
	}
	sng := cluster.SuperMUCNG(2)
	if err := sng.Validate(); err != nil {
		t.Errorf("SuperMUC-NG preset invalid: %v", err)
	}
	if sng.CoresPerSocket != 24 {
		t.Error("SuperMUC-NG is a 24-core Skylake")
	}
}

// TestPlacementAblation: spreading memory-bound ranks round-robin across
// sockets doubles the available bandwidth relative to block placement —
// the placement lever for the Fig. 1(b) bottleneck.
func TestPlacementAblation(t *testing.T) {
	k := STREAM()
	run := func(p cluster.Placement) float64 {
		mc := cluster.Meggie(2)
		mc.Placement = p
		progs := make([]cluster.Program, 10)
		for r := range progs {
			progs[r] = cluster.Program{
				Body:  []cluster.Instr{cluster.Compute{Seconds: k.CoreSeconds, Bytes: k.Bytes}},
				Iters: 3,
			}
		}
		sim, err := cluster.NewSim(mc, progs, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	block := run(cluster.Block)   // 10 ranks on socket 0: 53 GB/s total
	rr := run(cluster.RoundRobin) // 5+5: 106 GB/s total
	speedup := block / rr
	if speedup < 1.8 || speedup > 2.2 {
		t.Errorf("round-robin speedup = %.2f, want ≈ 2 (bandwidth doubling)", speedup)
	}
}
