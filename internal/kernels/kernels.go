// Package kernels models the paper's three MPI micro-benchmarks (§4) as
// analytic workloads for the cluster simulator:
//
//   - PISOLVER: midpoint-rule quadrature of ∫4/(1+x²)dx — pure arithmetic,
//     negligible memory traffic, perfectly resource-scalable;
//   - STREAM triad A(:)=B(:)+s*C(:): strongly memory-bound, saturates the
//     socket bandwidth with a few cores;
//   - "slow" Schönauer triad A(:)=B(:)+cos(C(:)/D(:)): the low-throughput
//     cosine and floating-point division lower the per-core bandwidth
//     demand, shifting the saturation point to a higher core count.
//
// A kernel is characterized by its per-core execution speed and the memory
// traffic per iteration sweep; the interplay with the socket bandwidth
// model of package cluster reproduces the scalability curves of Fig. 1(b).
package kernels

import (
	"fmt"

	"repro/internal/cluster"
)

// Kernel describes one micro-benchmark workload per sweep (one outer
// iteration of the bulk-synchronous loop).
type Kernel struct {
	// Name labels the kernel.
	Name string
	// CoreSeconds is the nominal single-core execution time of one sweep
	// when memory bandwidth is unlimited (in-cache execution speed).
	CoreSeconds float64
	// Bytes is the memory traffic of one sweep (working sets are chosen
	// ≥ 10× LLC, so every sweep moves its full traffic, §4).
	Bytes float64
}

// DemandBandwidth returns the kernel's standalone per-core bandwidth draw
// (bytes/s): Bytes divided by the standalone sweep duration.
func (k Kernel) DemandBandwidth() float64 {
	d := k.StandaloneSeconds()
	if d <= 0 {
		return 0
	}
	return k.Bytes / d
}

// StandaloneSeconds returns the sweep duration with the socket to itself.
// The cluster model stretches compute phases only through bandwidth
// sharing, so the standalone duration equals CoreSeconds (the per-core
// demand must be calibrated below the single-core achievable bandwidth).
func (k Kernel) StandaloneSeconds() float64 { return k.CoreSeconds }

// Workload converts the kernel to the cluster simulator's workload type.
func (k Kernel) Workload() cluster.Workload {
	return cluster.Workload{Seconds: k.CoreSeconds, Bytes: k.Bytes}
}

// The paper's working sets: arrays of 20 M double-precision elements per
// rank (≥ 10× the 25 MB Broadwell LLC).
const sweepElements = 20e6

// STREAM returns the STREAM triad kernel calibrated for the Meggie socket:
// 32 bytes/element (read B, read C, write-allocate + write A) at a
// per-core demand of ≈ 13 GB/s, so a 53 GB/s socket saturates at ≈ 4
// cores, matching Fig. 1(b).
func STREAM() Kernel {
	bytes := 32.0 * sweepElements // 640 MB per sweep
	perCore := 13e9
	return Kernel{Name: "STREAM", CoreSeconds: bytes / perCore, Bytes: bytes}
}

// Schoenauer returns the "slow" Schönauer triad: 40 bytes/element (four
// arrays) but throttled by cos and FP division to a per-core demand of
// ≈ 7.5 GB/s, so saturation moves out to ≈ 7 cores (Fig. 1b).
func Schoenauer() Kernel {
	bytes := 40.0 * sweepElements // 800 MB per sweep
	perCore := 7.5e9
	return Kernel{Name: "SlowSchoenauer", CoreSeconds: bytes / perCore, Bytes: bytes}
}

// Pisolver returns the PISOLVER kernel: 500 M midpoint-rule steps of pure
// arithmetic. Per-sweep time is scaled down to keep simulated experiments
// short; memory traffic is negligible (loop counters and one accumulator).
func Pisolver() Kernel {
	return Kernel{Name: "PISOLVER", CoreSeconds: 50e-3, Bytes: 1e3}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, error) {
	switch name {
	case "STREAM", "stream":
		return STREAM(), nil
	case "SlowSchoenauer", "schoenauer", "slow-schoenauer":
		return Schoenauer(), nil
	case "PISOLVER", "pisolver":
		return Pisolver(), nil
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// All returns the three paper kernels in Fig. 1(b) order.
func All() []Kernel {
	return []Kernel{STREAM(), Schoenauer(), Pisolver()}
}

// ScalabilityPoint is one (processes, aggregate bandwidth) sample of the
// socket scaling curve.
type ScalabilityPoint struct {
	// Processes is the rank count on the socket.
	Processes int
	// BandwidthMBs is the achieved aggregate memory bandwidth in MB/s
	// (the unit of Fig. 1b).
	BandwidthMBs float64
	// TimePerSweep is the observed mean sweep duration.
	TimePerSweep float64
}

// SocketScalability runs k = 1…maxProcs ranks of the kernel on one socket
// of the machine (no inter-rank communication — pure bandwidth scaling,
// as in the paper's saturation measurement) and reports the aggregate
// bandwidth for each k.
func SocketScalability(mc cluster.MachineConfig, k Kernel, maxProcs, iters int) ([]ScalabilityPoint, error) {
	if maxProcs < 1 || maxProcs > mc.CoresPerSocket {
		return nil, fmt.Errorf("kernels: maxProcs %d out of 1..%d", maxProcs, mc.CoresPerSocket)
	}
	if iters < 1 {
		return nil, fmt.Errorf("kernels: need at least one iteration")
	}
	out := make([]ScalabilityPoint, 0, maxProcs)
	for procs := 1; procs <= maxProcs; procs++ {
		progs := make([]cluster.Program, procs)
		for r := range progs {
			progs[r] = cluster.Program{
				Body:  []cluster.Instr{cluster.Compute{Seconds: k.CoreSeconds, Bytes: k.Bytes}},
				Iters: iters,
			}
		}
		sim, err := cluster.NewSim(mc, progs, cluster.Options{})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run()
		if err != nil {
			return nil, err
		}
		bw := res.AggregateBandwidth(0)
		out = append(out, ScalabilityPoint{
			Processes:    procs,
			BandwidthMBs: bw / 1e6,
			TimePerSweep: res.Makespan / float64(iters),
		})
	}
	return out, nil
}

// SaturationPoint returns the smallest process count whose aggregate
// bandwidth is within frac (e.g. 0.95) of the curve's maximum, or 0 when
// the curve never flattens (scalable kernel).
func SaturationPoint(points []ScalabilityPoint, frac float64) int {
	if len(points) == 0 {
		return 0
	}
	max := points[0].BandwidthMBs
	for _, p := range points {
		if p.BandwidthMBs > max {
			max = p.BandwidthMBs
		}
	}
	last := points[len(points)-1].BandwidthMBs
	if last < 0.9*max || max <= 0 {
		return 0
	}
	// Scalable kernels keep growing linearly: detect via last/first ratio.
	first := points[0].BandwidthMBs
	if first > 0 && last/first > 0.9*float64(points[len(points)-1].Processes) {
		return 0
	}
	for _, p := range points {
		if p.BandwidthMBs >= frac*max {
			return p.Processes
		}
	}
	return 0
}
