package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDisabledSitePassesThrough(t *testing.T) {
	defer Reset()
	if act := Eval("nope", 7); !act.Pass() {
		t.Fatalf("disabled site returned non-pass action %+v", act)
	}
	if Hits("nope") != 0 {
		t.Fatalf("disabled site counted hits")
	}
}

func TestFailAtHitsExactlyOnce(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("s", FailAt(3, boom))
	for hit := 1; hit <= 5; hit++ {
		act := Eval("s", 0)
		if hit == 3 {
			if act.Err != boom {
				t.Fatalf("hit %d: got %+v, want err boom", hit, act)
			}
		} else if !act.Pass() {
			t.Fatalf("hit %d: got %+v, want pass", hit, act)
		}
	}
	if got := Hits("s"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
	Disable("s")
	if !Eval("s", 0).Pass() {
		t.Fatal("disabled site still injecting")
	}
}

func TestFailAtDefaultsToErrInjected(t *testing.T) {
	defer Reset()
	Enable("s", FailAt(1, nil))
	if act := Eval("s", 0); !errors.Is(act.Err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", act.Err)
	}
}

func TestTearAndCrashRules(t *testing.T) {
	defer Reset()
	Enable("tear", TearAt(2, 13, nil))
	if act := Eval("tear", 100); !act.Pass() {
		t.Fatalf("hit 1 should pass, got %+v", act)
	}
	act := Eval("tear", 100)
	if !act.Tear || act.TearAt != 13 || act.Err == nil || act.Crash {
		t.Fatalf("tear action = %+v", act)
	}

	Enable("crash", CrashTornAt(1, 4))
	act = Eval("crash", 100)
	if !act.Crash || !act.Tear || act.TearAt != 4 {
		t.Fatalf("crash action = %+v", act)
	}
}

func TestAsCrash(t *testing.T) {
	c := &Crashed{Site: "x"}
	if got, ok := AsCrash(any(c)); !ok || got != c {
		t.Fatal("AsCrash failed on the panic value itself")
	}
	wrapped := fmt.Errorf("sweep: shard 3: %w", c)
	if got, ok := AsCrash(wrapped); !ok || got.Site != "x" {
		t.Fatal("AsCrash failed on a wrapping error")
	}
	if _, ok := AsCrash(errors.New("plain")); ok {
		t.Fatal("AsCrash matched a plain error")
	}
	if _, ok := AsCrash("random panic"); ok {
		t.Fatal("AsCrash matched a random panic value")
	}
}

// TestConcurrentEval hammers one site from many goroutines; the
// counter must account for every hit (run under -race in CI).
func TestConcurrentEval(t *testing.T) {
	defer Reset()
	Enable("c", Observe())
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Eval("c", i)
			}
		}()
	}
	wg.Wait()
	if got := Hits("c"); got != goroutines*per {
		t.Fatalf("Hits = %d, want %d", got, goroutines*per)
	}
}
