// Package failpoint is a deterministic fault-injection registry for
// crash-consistency testing. Instrumented seams (the write / sync /
// rename path under the archive Writer, for instance) call Eval with a
// site name on every operation; a test Enables a Rule at that site to
// return errors, tear a write after N bytes, or simulate the process
// dying at the k-th operation. With no rule enabled a seam costs one
// atomic load, so the hooks stay compiled into production code.
//
// Determinism is the point: rules are driven by per-site hit counters,
// not by time or randomness, so "crash at the 90th archive write" is
// the same crash on every run — which is what lets chaos tests pin
// their recovered output bitwise against an undisturbed run.
//
// A Crash action panics with *Crashed. Harnesses that simulate process
// death recover it with AsCrash and must abandon the faulted unit
// without any cleanup — no rollback, no flush, no rename — exactly as
// a killed process would.
package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Action tells an instrumented seam what to do on one hit. The zero
// Action is a pass-through.
type Action struct {
	// Err, when non-nil, is reported by the seam as the operation's
	// failure (after the optional tear). The operation's effect is
	// suppressed apart from the torn bytes.
	Err error
	// Tear makes a write seam persist only the first TearAt bytes of
	// the buffer before failing — a torn write. Ignored by non-write
	// seams.
	Tear bool
	// TearAt is the number of leading bytes a torn write persists.
	TearAt int
	// Crash makes the seam panic with *Crashed after the optional
	// tear, simulating the process dying mid-operation.
	Crash bool
}

// Pass reports whether the action is a no-op pass-through.
func (a Action) Pass() bool { return a.Err == nil && !a.Tear && !a.Crash }

// Rule decides the action for one hit of a site. hit counts from 1
// since the rule was enabled; n is the operation size in bytes (0 when
// size is meaningless for the seam). Rules run under the registry lock
// and must not call back into this package.
type Rule func(hit, n int) Action

// Crashed is the panic value of a Crash action. It implements error so
// harnesses can thread it through error returns after recovering it.
type Crashed struct {
	// Site is the seam that crashed.
	Site string
}

func (c *Crashed) Error() string {
	return fmt.Sprintf("failpoint: simulated crash at %s", c.Site)
}

// AsCrash reports whether a recovered panic value (or an error chain)
// is a simulated crash, and returns it.
func AsCrash(r any) (*Crashed, bool) {
	if c, ok := r.(*Crashed); ok {
		return c, true
	}
	if err, ok := r.(error); ok {
		var c *Crashed
		if errors.As(err, &c) {
			return c, true
		}
	}
	return nil, false
}

// ErrInjected is the error injected by rules that were not given a
// specific one.
var ErrInjected = errors.New("failpoint: injected fault")

type site struct {
	rule Rule
	hits int
}

var (
	mu      sync.Mutex
	sites   = map[string]*site{}
	enabled atomic.Int32 // fast-path gate: number of enabled sites
)

// Enable installs rule at the named site, resetting the site's hit
// counter. Enabling a nil rule just counts hits (see Observe).
func Enable(name string, rule Rule) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		enabled.Add(1)
	}
	sites[name] = &site{rule: rule}
}

// Disable removes the rule at the named site. The site's hit count is
// discarded; read it with Hits first.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		enabled.Add(-1)
	}
}

// Reset disables every site. Tests defer it to keep the global
// registry from leaking rules across test cases.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name := range sites {
		delete(sites, name)
	}
	enabled.Store(0)
}

// Hits returns the number of Eval calls the named site has seen since
// its rule was enabled (0 when not enabled).
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.hits
	}
	return 0
}

// Eval is called by instrumented seams with the operation size n. It
// counts the hit and returns the enabled rule's action, or a
// pass-through when the site has no rule.
func Eval(name string, n int) Action {
	if enabled.Load() == 0 {
		return Action{}
	}
	mu.Lock()
	defer mu.Unlock()
	s, ok := sites[name]
	if !ok {
		return Action{}
	}
	s.hits++
	if s.rule == nil {
		return Action{}
	}
	return s.rule(s.hits, n)
}

// Observe returns a rule that never injects — it only counts hits, for
// asserting that a seam was exercised (e.g. "Close synced the parent
// directory exactly once").
func Observe() Rule {
	return func(int, int) Action { return Action{} }
}

// FailAt returns a rule injecting err (ErrInjected when nil) on the
// k-th hit and passing through otherwise.
func FailAt(k int, err error) Rule {
	if err == nil {
		err = ErrInjected
	}
	return func(hit, _ int) Action {
		if hit == k {
			return Action{Err: err}
		}
		return Action{}
	}
}

// TearAt returns a rule that, on the k-th hit, persists only the first
// byteN bytes of the write and then fails with err (ErrInjected when
// nil).
func TearAt(k, byteN int, err error) Rule {
	if err == nil {
		err = ErrInjected
	}
	return func(hit, _ int) Action {
		if hit == k {
			return Action{Err: err, Tear: true, TearAt: byteN}
		}
		return Action{}
	}
}

// CrashAt returns a rule simulating process death at the k-th hit.
func CrashAt(k int) Rule {
	return func(hit, _ int) Action {
		if hit == k {
			return Action{Crash: true}
		}
		return Action{}
	}
}

// CrashTornAt returns a rule that, on the k-th hit, persists only the
// first byteN bytes of the write and then simulates process death —
// the classic torn-write-then-power-loss failure.
func CrashTornAt(k, byteN int) Rule {
	return func(hit, _ int) Action {
		if hit == k {
			return Action{Crash: true, Tear: true, TearAt: byteN}
		}
		return Action{}
	}
}
