// Package dsweep scales sweep.RunArchive across processes: a
// fault-tolerant coordinator/worker runtime in which the only shared
// state is the archive directory itself. There is no network protocol
// and no coordinator process to keep alive — the control plane is a
// handful of small files with carefully chosen atomicity, which is
// what makes the runtime tolerate workers that die at any instruction.
//
// # Protocol
//
// The sweep of N points is cut into fixed point-index ranges of
// RangeSize (the unit of work, lease, and commit). The first worker to
// arrive publishes the plan (plan.json, create-exclusive via
// link(2)); every later worker loads and validates it, so all workers
// agree on the range boundaries forever after.
//
// Each range moves through three states, all encoded in the leases/
// subdirectory:
//
//	unclaimed:  no lease file            → claim by create-exclusive
//	leased:     range-NNNNNN.lease holds → owner heartbeats a fresh
//	            {worker, nonce, expiry}    expiry; anyone may steal the
//	                                       lease once the expiry passes
//	done:       range-NNNNNN.done exists → terminal; never re-run
//
// A claim is an atomic create-exclusive; a steal atomically replaces
// the expired lease and then reads it back, so of many racing stealers
// exactly one sees its own {worker, nonce} and proceeds. A worker that
// dies simply stops heartbeating: its lease expires and the range is
// re-leased — work-stealing for stragglers falls out of the same rule,
// since a stalled worker past its TTL is indistinguishable from a dead
// one and loses the range. Expiry is one-way: once it passes, even the
// lease's own holder cannot renew (a stealer may be replacing the file
// that instant, and a renew racing the steal could leave two owners) —
// ownership must be provably continuous or it is gone.
//
// The owner of a range runs sweep.ArchiveRun over exactly [lo, hi),
// writing per-worker shards into the shared directory. Data-plane
// safety rests on the archive's own invariants: shards appear only via
// atomic rename, resume-by-index-scan skips points already committed
// by a previous owner, and every worker's shard run is fenced — a
// BeforeSeal check re-reads the lease at the last moment and aborts
// the commit if ownership was lost, while cancellation (lease lost
// mid-range) discards rather than seals, so two owners can never
// publish the same point.
//
// Because record payloads depend only on (index, params, fn), the
// merged result of any execution — any worker count, any interleaving
// of crashes, torn writes, and re-leases — is bitwise-identical
// record-for-record to an uninterrupted serial sweep.RunArchive. The
// chaos test in this package pins exactly that.
//
// Merge compacts a fleet's shards into a canonical archive (records in
// ascending index order, deterministic shard packing), so two merged
// archives of the same spec are identical file-for-file; Equal and
// Missing are the verification half of that step. cmd/pomsim
// (-coordinate / -workers-distributed) and cmd/pomread (-merge /
// -compare) are the CLI faces of this package; ARCHITECTURE.md has the
// diagram and PERFORMANCE.md the tuning notes.
//
// The runtime assumes the directory is shared with POSIX rename/link
// atomicity and that clocks across workers agree to within a fraction
// of the lease TTL — the usual single-cluster shared-filesystem
// deployment.
package dsweep
