package dsweep

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"repro/internal/archive"
)

// DefaultMergeShardSize is how many records a canonical merged shard
// holds when the caller does not choose.
const DefaultMergeShardSize = 1024

// MergeStats summarizes one Merge call.
type MergeStats struct {
	// Points is the number of records merged.
	Points int
	// Shards is the number of canonical shards written.
	Shards int
}

// Merge compacts the shards of srcDir into a canonical archive in
// dstDir: records in ascending point order, packed perShard to a shard
// (0 = DefaultMergeShardSize). Because the layout depends only on the
// record set, two archives holding the same records — however many
// workers, crashes, and re-leases produced them — merge to archives
// that are identical file-for-file.
//
// When srcDir carries a distributed-sweep plan, Merge refuses to run
// until every planned point is present, so a half-finished sweep can
// never masquerade as a complete canonical archive. dstDir must not
// already contain shards.
//
// Merge writes the archive default codec (delta); it re-encodes as it
// goes, so the file-for-file guarantee holds even when the sources mix
// record generations. MergeWith chooses the output codec explicitly.
func Merge(srcDir, dstDir string, perShard int) (MergeStats, error) {
	return MergeWith(srcDir, dstDir, perShard, archive.CodecDefault)
}

// MergeWith is Merge with an explicit output codec for the canonical
// shards.
func MergeWith(srcDir, dstDir string, perShard int, codec archive.Codec) (MergeStats, error) {
	var stats MergeStats
	if perShard <= 0 {
		perShard = DefaultMergeShardSize
	}
	if existing, err := filepath.Glob(archive.ShardPattern(dstDir)); err != nil {
		return stats, fmt.Errorf("dsweep: %w", err)
	} else if len(existing) > 0 {
		return stats, fmt.Errorf("dsweep: merge target %s already holds %d shard(s)", dstDir, len(existing))
	}
	src, err := archive.OpenDir(srcDir)
	if err != nil {
		return stats, fmt.Errorf("dsweep: opening %s: %w", srcDir, err)
	}
	defer func() { _ = src.Close() }() // read-only close
	switch plan, err := LoadPlan(srcDir); {
	case err == nil:
		missing := missingIn(src, plan.N)
		if len(missing) > 0 {
			return stats, fmt.Errorf("dsweep: %s is incomplete: %d of %d planned points missing (first: %d)",
				srcDir, len(missing), plan.N, missing[0])
		}
	case errors.Is(err, fs.ErrNotExist):
		// A plain (non-distributed) archive has no plan; merge it as-is.
	default:
		return stats, err
	}
	indices := src.Indices()
	for lo := 0; lo < len(indices); lo += perShard {
		hi := lo + perShard
		if hi > len(indices) {
			hi = len(indices)
		}
		w, err := archive.CreateWith(dstDir, stats.Shards, codec)
		if err != nil {
			return stats, fmt.Errorf("dsweep: %w", err)
		}
		for _, idx := range indices[lo:hi] {
			rec, err := src.Read(idx)
			if err != nil {
				_ = w.Abort()
				return stats, fmt.Errorf("dsweep: %w", err)
			}
			if err := w.Append(rec); err != nil {
				_ = w.Abort()
				return stats, fmt.Errorf("dsweep: %w", err)
			}
		}
		if err := w.Close(); err != nil {
			return stats, fmt.Errorf("dsweep: sealing merged shard: %w", err)
		}
		stats.Shards++
	}
	stats.Points = len(indices)
	return stats, nil
}

// Missing returns the point indices of 0..n-1 absent from the archive
// in dir, in ascending order.
func Missing(dir string, n int) ([]int, error) {
	a, err := archive.OpenDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dsweep: opening %s: %w", dir, err)
	}
	defer func() { _ = a.Close() }() // read-only close
	return missingIn(a, n), nil
}

func missingIn(a *archive.Archive, n int) []int {
	var missing []int
	for i := 0; i < n; i++ {
		if !a.Has(uint64(i)) {
			missing = append(missing, i)
		}
	}
	return missing
}

// Equal verifies that the archives in aDir and bDir hold exactly the
// same records: the same point-index set and, for every point,
// byte-identical canonical payloads — the codec-independent raw
// encoding, so a delta-compressed archive compares equal to a raw or
// POMARC1 archive of the same records. It reports the first difference
// found; nil means the archives are equivalent regardless of shard
// layout or record codec.
func Equal(aDir, bDir string) error {
	a, err := archive.OpenDir(aDir)
	if err != nil {
		return fmt.Errorf("dsweep: opening %s: %w", aDir, err)
	}
	defer func() { _ = a.Close() }() // read-only close
	b, err := archive.OpenDir(bDir)
	if err != nil {
		return fmt.Errorf("dsweep: opening %s: %w", bDir, err)
	}
	defer func() { _ = b.Close() }() // read-only close
	for _, idx := range a.Indices() {
		if !b.Has(idx) {
			return fmt.Errorf("dsweep: point %d is in %s but not %s", idx, aDir, bDir)
		}
	}
	for _, idx := range b.Indices() {
		if !a.Has(idx) {
			return fmt.Errorf("dsweep: point %d is in %s but not %s", idx, bDir, aDir)
		}
	}
	for _, idx := range a.Indices() {
		ra, err := a.ReadCanonical(idx)
		if err != nil {
			return fmt.Errorf("dsweep: %w", err)
		}
		rb, err := b.ReadCanonical(idx)
		if err != nil {
			return fmt.Errorf("dsweep: %w", err)
		}
		if !bytes.Equal(ra, rb) {
			return fmt.Errorf("dsweep: point %d differs between %s and %s", idx, aDir, bDir)
		}
	}
	return nil
}
