package dsweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// ErrLeaseLost reports that a worker no longer owns the lease it is
// heartbeating: the range was stolen after the lease expired (or the
// lease file vanished). The worker must stop publishing for that range
// immediately.
var ErrLeaseLost = errors.New("dsweep: lease lost")

// leaseBody is the JSON content of a lease file — the single source of
// truth for who owns a range and until when.
type leaseBody struct {
	Worker  string `json:"worker"`
	Nonce   int64  `json:"nonce"`
	Range   int    `json:"range"`
	Expires int64  `json:"expires_unix_nano"`
}

// leasePath returns the lease file of range r.
func leasePath(dir string, r int) string {
	return filepath.Join(leaseDir(dir), fmt.Sprintf("range-%06d.lease", r))
}

// donePath returns the terminal completion marker of range r.
func donePath(dir string, r int) string {
	return filepath.Join(leaseDir(dir), fmt.Sprintf("range-%06d.done", r))
}

// isDone reports whether range r has its completion marker.
func isDone(dir string, r int) bool {
	_, err := os.Stat(donePath(dir, r))
	return err == nil
}

// lease is one held range lease.
type lease struct {
	dir    string
	r      int
	worker string
	nonce  int64
	ttl    time.Duration
}

// body serializes the lease with a fresh expiry.
//
//pomvet:allow wallclock lease expiry is wall-clock by design: liveness of a worker on another machine can only be judged by real elapsed time, never by simulated time
func (l *lease) body() ([]byte, error) {
	b, err := json.Marshal(leaseBody{
		Worker:  l.worker,
		Nonce:   l.nonce,
		Range:   l.r,
		Expires: time.Now().Add(l.ttl).UnixNano(),
	})
	if err != nil {
		return nil, fmt.Errorf("dsweep: %w", err)
	}
	return append(b, '\n'), nil
}

// readLease parses the lease file of range r. A missing file returns
// fs.ErrNotExist; a torn or garbled file returns ok=false with the
// file's mtime so callers can expire it by age.
func readLease(dir string, r int) (body leaseBody, mtime time.Time, ok bool, err error) {
	path := leasePath(dir, r)
	fi, err := os.Stat(path)
	if err != nil {
		return leaseBody{}, time.Time{}, false, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return leaseBody{}, fi.ModTime(), false, err
	}
	if jsonErr := json.Unmarshal(data, &body); jsonErr != nil {
		return leaseBody{}, fi.ModTime(), false, nil
	}
	return body, fi.ModTime(), true, nil
}

// nonceSeq feeds per-process-unique lease nonces.
// (Worker ids distinguish processes; nonces distinguish re-claims by
// the same worker, so a stale self-owned lease is never mistaken for
// the current one.)
var nonceSeq = &tmpSeq

// tryClaim attempts to take the lease of range r: by create-exclusive
// when unclaimed, or by atomically replacing an expired (or unreadable
// and TTL-old) lease — the steal path that re-leases dead workers'
// ranges. It returns (nil, false, nil) when the range is owned by a
// live worker or the steal race was lost.
//
//pomvet:allow wallclock steal decisions compare the holder's wall-clock expiry (and a torn lease's file age) against real time; no simulated clock exists across processes
func tryClaim(dir string, r int, worker string, ttl time.Duration) (_ *lease, stolen bool, err error) {
	l := &lease{dir: dir, r: r, worker: worker, nonce: nonceSeq.Add(1), ttl: ttl}
	data, err := l.body()
	if err != nil {
		return nil, false, err
	}
	path := leasePath(dir, r)
	switch err := createExclusive(path, data); {
	case err == nil:
		return l, false, nil
	case !errors.Is(err, fs.ErrExist):
		return nil, false, fmt.Errorf("dsweep: claiming range %d: %w", r, err)
	}
	// The range is leased; steal only if the holder's expiry has
	// passed (a garbled lease expires by file age instead).
	body, mtime, ok, err := readLease(dir, r)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return nil, false, nil // released between our create and read; next scan retries
	case err != nil:
		return nil, false, fmt.Errorf("dsweep: reading lease of range %d: %w", r, err)
	case ok && time.Now().UnixNano() < body.Expires:
		return nil, false, nil // live holder
	case !ok && time.Since(mtime) < ttl:
		return nil, false, nil // torn mid-replace just now; give the writer time
	}
	// Expired: replace atomically, then read back — of N racing
	// stealers exactly one sees its own (worker, nonce) and wins.
	if err := replaceFile(path, data); err != nil {
		return nil, false, fmt.Errorf("dsweep: stealing range %d: %w", r, err)
	}
	got, _, ok, err := readLease(dir, r)
	if err != nil || !ok || got.Worker != worker || got.Nonce != l.nonce {
		return nil, false, nil // another stealer won
	}
	return l, true, nil
}

// renew extends the held lease's expiry. It fails with ErrLeaseLost
// when the lease is no longer this worker's — or is this worker's but
// already expired, since past the expiry a stealer may be replacing it
// concurrently — and the holder must treat that as immediately fatal
// for the range. Heartbeating at a fraction of the TTL (Config's
// default is TTL/4) keeps honest renewals far from the boundary.
//
//pomvet:allow wallclock the expired-lease refusal compares the lease's wall-clock expiry against real time; renewal liveness is inherently wall-clock
func (l *lease) renew() error {
	got, _, ok, err := readLease(l.dir, l.r)
	if errors.Is(err, fs.ErrNotExist) {
		return ErrLeaseLost
	}
	if err != nil {
		return fmt.Errorf("dsweep: renewing range %d: %w", l.r, err)
	}
	if !ok || got.Worker != l.worker || got.Nonce != l.nonce {
		return ErrLeaseLost
	}
	if time.Now().UnixNano() >= got.Expires {
		// Ownership is only continuous while the expiry holds. Once it
		// has passed, a stealer may legitimately be replacing the file
		// this very instant — renewing over it could leave both sides
		// passing read-backs and believing they own the range. An
		// expired lease is therefore unrenewable even by its own holder.
		return ErrLeaseLost
	}
	data, err := l.body()
	if err != nil {
		return err
	}
	if err := replaceFile(leasePath(l.dir, l.r), data); err != nil {
		return fmt.Errorf("dsweep: renewing range %d: %w", l.r, err)
	}
	// Read-back closes the replace/steal race: if a stealer's rename
	// landed after ours, the file is theirs and we lost.
	got, _, ok, err = readLease(l.dir, l.r)
	if err != nil || !ok || got.Worker != l.worker || got.Nonce != l.nonce {
		return ErrLeaseLost
	}
	return nil
}

// check verifies the lease is still held and unexpired — the fencing
// probe run just before a shard commit.
//
//pomvet:allow wallclock commit fencing must judge lease expiry in real time; a stolen range is detected by the wall clock having passed the lease's expiry
func (l *lease) check() error {
	got, _, ok, err := readLease(l.dir, l.r)
	if err != nil || !ok || got.Worker != l.worker || got.Nonce != l.nonce {
		return ErrLeaseLost
	}
	if time.Now().UnixNano() >= got.Expires {
		return ErrLeaseLost
	}
	return nil
}

// release removes the lease if (and only if) it is still this
// worker's; a lease lost to a stealer is left strictly alone.
func (l *lease) release() {
	got, _, ok, err := readLease(l.dir, l.r)
	if err != nil || !ok || got.Worker != l.worker || got.Nonce != l.nonce {
		return
	}
	_ = os.Remove(leasePath(l.dir, l.r))
}

// markDone publishes the terminal completion marker of range r. The
// marker appearing twice is fine (a resumed range completes again with
// zero new points); create-exclusive keeps the first marker.
func markDone(dir string, r int, worker string) error {
	body := fmt.Sprintf("{\"worker\": %q, \"range\": %d}\n", worker, r)
	err := createExclusive(donePath(dir, r), []byte(body))
	if err == nil || errors.Is(err, fs.ErrExist) {
		return nil
	}
	return fmt.Errorf("dsweep: marking range %d done: %w", r, err)
}
