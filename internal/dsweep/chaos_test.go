package dsweep

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/failpoint"
	"repro/internal/sweep"
)

// TestChaosFleetMatchesSerialBitwise is the acceptance harness of the
// distributed runtime: four in-process workers share one directory
// while fault injection kills two of them mid-write (one with a torn
// shard) and poisons a third's writes with a transient error. The
// survivors must re-lease the dead workers' ranges after TTL expiry
// and finish the sweep — and the merged result must be
// bitwise-identical, file-for-file, to the merge of an uninterrupted
// serial sweep.RunArchive of the same spec.
func TestChaosFleetMatchesSerialBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos test")
	}
	// Run the whole harness once per record codec. The serial reference
	// always writes the archive default (delta), so the raw subtest
	// additionally pins cross-codec canonicalization: a raw fleet and a
	// delta serial sweep merge to file-for-file identical archives.
	for _, codec := range []archive.Codec{archive.CodecDelta, archive.CodecRaw} {
		t.Run(codec.String(), func(t *testing.T) {
			chaosFleetMatchesSerial(t, codec)
		})
	}
}

func chaosFleetMatchesSerial(t *testing.T, codec archive.Codec) {
	defer failpoint.Reset()
	const (
		n         = 200
		rangeSize = 10
		ttl       = 1200 * time.Millisecond
		heartbeat = 100 * time.Millisecond
		poll      = 150 * time.Millisecond
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Reference first, before any fault rule exists: an uninterrupted
	// serial archive of the same sweep.
	refDir := t.TempDir()
	if _, err := sweep.RunArchive(ctx, refDir, n, 1, testGen, testPoint); err != nil {
		t.Fatal(err)
	}

	// The chaos schedule keys off the global write-seam hit counter,
	// which interleaves every worker's writes: hit 60 kills whichever
	// worker gets there first, hit 220 kills a second (the first is
	// already dead), and hit 400 hands a third a transient write error
	// (which fails that worker's run but releases its lease cleanly).
	failpoint.Enable(archive.SiteWrite, func(hit, _ int) failpoint.Action {
		switch hit {
		case 60:
			return failpoint.Action{Crash: true}
		case 220:
			return failpoint.Action{Crash: true, Tear: true, TearAt: 7}
		case 400:
			return failpoint.Action{Err: failpoint.ErrInjected}
		}
		return failpoint.Action{}
	})

	chaosDir := t.TempDir()
	const fleet = 4
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		stats    = make([]Stats, fleet)
		errs     = make([]error, fleet)
		relaunch int
	)
	run := func(w int, id string) {
		defer wg.Done()
		s, err := Run(ctx, Config{
			Dir: chaosDir, N: n, RangeSize: rangeSize,
			TTL: ttl, Heartbeat: heartbeat, Poll: poll, WorkerID: id,
			Codec: codec,
		}, testGen, testPoint)
		mu.Lock()
		stats[w] = Stats{
			Ranges:    s.Ranges,
			Leased:    stats[w].Leased + s.Leased,
			Stolen:    stats[w].Stolen + s.Stolen,
			Completed: stats[w].Completed + s.Completed,
			Lost:      stats[w].Lost + s.Lost,
			Archived:  stats[w].Archived + s.Archived,
			Skipped:   stats[w].Skipped + s.Skipped,
			Shards:    stats[w].Shards + s.Shards,
		}
		errs[w] = err
		mu.Unlock()
	}
	wg.Add(fleet)
	for w := 0; w < fleet; w++ {
		go run(w, fmt.Sprintf("chaos-%c", 'a'+w))
	}
	wg.Wait()

	var crashes, injected, finished int
	for w, err := range errs {
		switch {
		case err == nil:
			finished++
		default:
			var c *failpoint.Crashed
			if errors.As(err, &c) {
				crashes++
			} else if errors.Is(err, failpoint.ErrInjected) {
				injected++
			} else {
				t.Fatalf("worker %d failed for an unexpected reason: %v", w, err)
			}
		}
	}
	if crashes != 2 {
		t.Fatalf("%d workers crashed, want 2 (errors: %v)", crashes, errs)
	}
	if injected != 1 {
		t.Fatalf("%d workers hit the injected error, want 1 (errors: %v)", injected, errs)
	}
	if finished != fleet-3 {
		t.Fatalf("%d workers finished cleanly, want %d", finished, fleet-3)
	}
	var stolen int
	for _, s := range stats {
		stolen += s.Stolen
	}
	if stolen == 0 {
		t.Fatalf("no range was re-leased from a dead worker; stats = %+v", stats)
	}

	// One surviving worker is not enough to declare the sweep done —
	// Run returns when every range has its marker, so re-join with a
	// fresh worker to mop up anything the last failure stranded.
	failpoint.Reset()
	for done := false; !done; {
		missing, err := Missing(chaosDir, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) == 0 {
			done = true
			continue
		}
		relaunch++
		if relaunch > 3 {
			t.Fatalf("sweep still missing %d points after %d mop-up workers", len(missing), relaunch)
		}
		wg.Add(1)
		go run(0, "chaos/mopup")
		wg.Wait()
	}

	// The invariant: merge both archives canonically and compare the
	// results byte-for-byte. Any duplicate point, lost record, or
	// torn-write leak into a sealed shard shows up here.
	refMerged := filepath.Join(t.TempDir(), "ref")
	chaosMerged := filepath.Join(t.TempDir(), "chaos")
	if _, err := Merge(refDir, refMerged, 64); err != nil {
		t.Fatal(err)
	}
	mstats, err := Merge(chaosDir, chaosMerged, 64)
	if err != nil {
		t.Fatal(err)
	}
	if mstats.Points != n {
		t.Fatalf("chaos merge holds %d points, want %d", mstats.Points, n)
	}
	if err := Equal(chaosMerged, refMerged); err != nil {
		t.Fatalf("chaos and serial archives differ: %v", err)
	}
	compareDirsBitwise(t, chaosMerged, refMerged)
}

// TestLostLeaseWorkerNeverDuplicates pins the fencing half of the
// protocol: a worker whose lease is stolen mid-range (because it
// stalled past the TTL) must discard its shard, so the thief's records
// are the only copy and the archive never holds a point twice.
func TestLostLeaseWorkerNeverDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent lease test")
	}
	dir := t.TempDir()
	const n, rangeSize = 6, 6
	const ttl = 150 * time.Millisecond
	if _, err := Coordinate(dir, n, rangeSize); err != nil {
		t.Fatal(err)
	}
	l, _, err := tryClaim(dir, 0, "staller", ttl)
	if err != nil || l == nil {
		t.Fatal(err)
	}

	// The stalling worker archives its whole range but pauses past the
	// TTL before its shard can seal; the thief steals the lease and
	// redoes the range in the meantime.
	stall := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		run := sweep.ArchiveRun{
			Dir: dir, Lo: 0, Hi: n, Workers: 1,
			DiscardOnCancel: true,
			BeforeSeal: func() error {
				close(stall)
				<-release
				return l.check()
			},
		}
		_, err := run.Run(context.Background(), testGen, testPoint)
		done <- err
	}()

	<-stall
	time.Sleep(ttl + 50*time.Millisecond)
	thief, stolen, err := tryClaim(dir, 0, "thief", ttl)
	if err != nil || thief == nil || !stolen {
		t.Fatalf("steal failed: lease=%v stolen=%v err=%v", thief, stolen, err)
	}
	if _, err := (sweep.ArchiveRun{Dir: dir, Lo: 0, Hi: n, Workers: 1, BeforeSeal: thief.check}).
		Run(context.Background(), testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err == nil || !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stalled worker's run = %v, want the fencing rejection", err)
	}

	// The directory must open cleanly (OpenDir errors on duplicate
	// indices) and hold exactly the thief's n records.
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatalf("archive corrupt after fenced seal: %v", err)
	}
	defer a.Close()
	if a.Len() != n {
		t.Fatalf("archive holds %d points, want %d", a.Len(), n)
	}
}
