package dsweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/failpoint"
	"repro/internal/retry"
	"repro/internal/sweep"
)

// Config parameterizes one distributed-sweep worker.
type Config struct {
	// Dir is the shared archive directory.
	Dir string
	// N is the total sweep point count (indices 0..N-1).
	N int
	// RangeSize is the points-per-lease granularity (default 64). All
	// workers of one directory must agree; Coordinate enforces it.
	RangeSize int
	// TTL is how long a lease lives without renewal before anyone may
	// steal it (default 5s). It bounds the time a dead worker blocks
	// its range.
	TTL time.Duration
	// Heartbeat is the renewal period (default TTL/4). It must leave
	// several renewal attempts per TTL, or a briefly stalled worker
	// forfeits live work.
	Heartbeat time.Duration
	// Poll is how long to wait between lease scans when every
	// remaining range is held by a live worker (default TTL/2).
	Poll time.Duration
	// RangeWorkers is the goroutine count of each in-range
	// sweep.ArchiveRun (default 1; raise it to use more cores per
	// leased range).
	RangeWorkers int
	// Retry shapes the backoff around transient control-plane
	// filesystem errors (lease renewal). Zero-value fields take the
	// retry package defaults.
	Retry retry.Policy
	// WorkerID names this worker in lease files. It must be unique
	// across the fleet; empty derives host+pid.
	WorkerID string
	// Codec selects the record codec of the shards this worker writes.
	// The zero value is the archive default (delta compression). Workers
	// of one fleet may disagree — POMARC2 records are self-describing,
	// and Merge canonicalizes the mix — but matching codecs keep the
	// pre-merge archives byte-comparable.
	Codec archive.Codec
}

// DefaultRangeSize is the points-per-lease granularity when the
// config does not choose.
const DefaultRangeSize = 64

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.RangeSize <= 0 {
		c.RangeSize = DefaultRangeSize
	}
	if c.TTL <= 0 {
		c.TTL = 5 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.TTL / 4
	}
	if c.Poll <= 0 {
		c.Poll = c.TTL / 2
	}
	if c.RangeWorkers <= 0 {
		c.RangeWorkers = 1
	}
	if c.WorkerID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.WorkerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return c
}

// Stats summarizes one worker's share of a distributed sweep.
type Stats struct {
	// Ranges is the plan's total range count.
	Ranges int
	// Leased counts the ranges this worker claimed fresh.
	Leased int
	// Stolen counts the ranges this worker re-leased from an expired
	// holder.
	Stolen int
	// Completed counts the ranges this worker drove to their done
	// marker.
	Completed int
	// Lost counts the leases this worker forfeited (TTL expiry while
	// stalled, or a stolen heartbeat).
	Lost int
	// Archived, Skipped, and Shards aggregate the underlying
	// sweep.ArchiveStats across completed ranges.
	Archived, Skipped, Shards int
}

// Run joins the distributed sweep over dir as one worker and returns
// when every range is done, the context ends, or a genuine sweep error
// (a failing point function, an injected crash) stops this worker.
// Many Run calls — across goroutines or machines — cooperate through
// the lease files alone; see the package comment for the protocol.
func Run(ctx context.Context, cfg Config, gen func(i int) []float64, fn sweep.ArchivePointFunc) (Stats, error) {
	cfg = cfg.withDefaults()
	var stats Stats
	plan, err := Coordinate(cfg.Dir, cfg.N, cfg.RangeSize)
	if err != nil {
		return stats, err
	}
	ranges := plan.Ranges()
	stats.Ranges = ranges
	// Start each worker's scan at a different range so a fleet
	// arriving together fans out instead of fighting over range 0.
	h := fnv.New32a()
	h.Write([]byte(cfg.WorkerID))
	start := int(h.Sum32() % uint32(ranges))
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		progressed := false
		allDone := true
		for k := 0; k < ranges; k++ {
			r := (start + k) % ranges
			if isDone(cfg.Dir, r) {
				continue
			}
			allDone = false
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			l, stolen, err := tryClaim(cfg.Dir, r, cfg.WorkerID, cfg.TTL)
			if err != nil {
				return stats, err
			}
			if l == nil {
				continue // live holder (or lost a steal race)
			}
			if stolen {
				stats.Stolen++
			} else {
				stats.Leased++
			}
			st, err := runRange(ctx, cfg, plan, l, gen, fn)
			switch {
			case err == nil:
				// Aggregate the range's work only when it committed: a
				// lost or failed range aborted its shards under
				// DiscardOnCancel, so counting them would report points
				// that were discarded and redone by other workers.
				stats.Archived += st.Archived
				stats.Skipped += st.Skipped
				stats.Shards += st.Shards
				stats.Completed++
				progressed = true
			case errors.Is(err, ErrLeaseLost):
				// Someone stole the range out from under us; its
				// records were discarded, the thief redoes them.
				stats.Lost++
			default:
				// A genuine failure (point error, injected crash,
				// canceled context) stops this worker. The lease is
				// deliberately left in place — exactly what a killed
				// process would leave — so it expires and the range is
				// re-leased by a survivor.
				return stats, err
			}
		}
		if allDone {
			return stats, nil
		}
		if !progressed {
			// Every open range is held by a live worker: wait for a
			// done marker or an expiry.
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			//pomvet:allow wallclock polling for another process's done marker or lease expiry is real-time coordination, not simulation state
			case <-time.After(cfg.Poll):
			}
		}
	}
}

// runRange archives the leased range under a heartbeat, then publishes
// its done marker and releases the lease. The heartbeat goroutine
// cancels the in-flight ArchiveRun the moment the lease cannot be
// proven ours, and the run itself is configured to discard (not seal)
// on cancellation and to fence every seal with a last-moment lease
// check — the two hooks that keep a stolen range from ever holding a
// point twice.
func runRange(ctx context.Context, cfg Config, plan Plan, l *lease, gen func(i int) []float64, fn sweep.ArchivePointFunc) (sweep.ArchiveStats, error) {
	lo, hi := plan.Bounds(l.r)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var lost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		//pomvet:allow wallclock heartbeat renewal must tick in real time so the lease's wall-clock expiry never lapses under a live worker
		t := time.NewTicker(cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-t.C:
			}
			err := cfg.Retry.Do(rctx, func() error {
				err := l.renew()
				if errors.Is(err, ErrLeaseLost) {
					return retry.Permanent(err)
				}
				return err
			})
			if err == nil {
				continue
			}
			if rctx.Err() != nil && !errors.Is(err, ErrLeaseLost) {
				return // the range run ended first; not a lost lease
			}
			// Stolen, vanished, or unrenewable past all retries:
			// either way ownership cannot be proven, so the only safe
			// move is to stop publishing immediately.
			lost.Store(true)
			cancel()
			return
		}
	}()

	run := sweep.ArchiveRun{
		Dir:     cfg.Dir,
		Lo:      lo,
		Hi:      hi,
		Workers: cfg.RangeWorkers,
		// The lease TTL bounds how long a dead worker's tmp litter
		// lingers. Safe for arbitrarily slow points: a live run freshens
		// its open tmps' mtimes from well inside the TTL, so only a
		// writer that actually died lets its tmp age out.
		StaleTmpAfter:   cfg.TTL,
		DiscardOnCancel: true,
		BeforeSeal:      l.check,
		Codec:           cfg.Codec,
	}
	st, err := run.Run(rctx, gen, fn)
	cancel()
	<-hbDone

	if err != nil {
		var c *failpoint.Crashed
		if errors.As(err, &c) {
			// Simulated process death: leave lease, litter, and all —
			// recovery is the surviving workers' job. (Checked before
			// the lost flag: a crashed worker is dead, not demoted.)
			return st, err
		}
	}
	if lost.Load() {
		return st, fmt.Errorf("dsweep: range %d: %w", l.r, ErrLeaseLost)
	}
	if err != nil {
		if errors.Is(err, ErrLeaseLost) {
			return st, fmt.Errorf("dsweep: range %d: %w", l.r, ErrLeaseLost)
		}
		l.release()
		return st, err
	}
	if err := markDone(cfg.Dir, l.r, cfg.WorkerID); err != nil {
		l.release()
		return st, err
	}
	l.release()
	return st, nil
}
