package dsweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/sweep"
)

// testGen / testPoint mirror the sweep package's test fixtures: a
// deterministic record per point, so any two archives of the same
// points are bitwise-comparable.
func testGen(i int) []float64 { return []float64{float64(i), 0.5 * float64(i)} }

func testPoint(_ context.Context, i int, params []float64, rec *archive.RecordWriter) error {
	rec.Begin(2, 3)
	for k := 0; k < 3; k++ {
		t := float64(k)
		rec.Sample(t, []float64{params[0] + t, params[1] - t})
	}
	return rec.Finish([]float64{float64(i), -float64(i)}, nil)
}

func TestPlanGeometry(t *testing.T) {
	p := Plan{N: 25, RangeSize: 10}
	if p.Ranges() != 3 {
		t.Fatalf("Ranges() = %d, want 3", p.Ranges())
	}
	cases := []struct{ r, lo, hi int }{{0, 0, 10}, {1, 10, 20}, {2, 20, 25}}
	for _, c := range cases {
		if lo, hi := p.Bounds(c.r); lo != c.lo || hi != c.hi {
			t.Errorf("Bounds(%d) = [%d, %d), want [%d, %d)", c.r, lo, hi, c.lo, c.hi)
		}
	}
}

func TestCoordinatePublishJoinRefuse(t *testing.T) {
	dir := t.TempDir()
	p1, err := Coordinate(dir, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Coordinate(dir, 100, 10)
	if err != nil {
		t.Fatalf("joining an identical plan must succeed: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("plans differ: %+v vs %+v", p1, p2)
	}
	if _, err := Coordinate(dir, 100, 20); err == nil {
		t.Fatal("joining with a different range size must be refused")
	}
	if _, err := Coordinate(dir, 50, 10); err == nil {
		t.Fatal("joining with a different point count must be refused")
	}
	if _, err := Coordinate(dir, 0, 10); err == nil {
		t.Fatal("a zero-point plan must be refused")
	}
}

func TestLeaseClaimStealRenewRelease(t *testing.T) {
	dir := t.TempDir()
	const ttl = 60 * time.Millisecond
	if _, err := Coordinate(dir, 100, 10); err != nil {
		t.Fatal(err)
	}

	la, stolen, err := tryClaim(dir, 3, "worker-a", ttl)
	if err != nil || la == nil || stolen {
		t.Fatalf("fresh claim: lease=%v stolen=%v err=%v", la, stolen, err)
	}
	// A live lease cannot be taken.
	if lb, _, err := tryClaim(dir, 3, "worker-b", ttl); err != nil || lb != nil {
		t.Fatalf("claim of a live lease: lease=%v err=%v", lb, err)
	}
	if err := la.renew(); err != nil {
		t.Fatalf("renew of a held lease: %v", err)
	}
	if err := la.check(); err != nil {
		t.Fatalf("check of a held lease: %v", err)
	}

	// Once the holder stops renewing past the TTL, the range is
	// stealable — the dead-worker re-lease path.
	time.Sleep(ttl + 20*time.Millisecond)
	lb, stolen, err := tryClaim(dir, 3, "worker-b", ttl)
	if err != nil || lb == nil || !stolen {
		t.Fatalf("steal of an expired lease: lease=%v stolen=%v err=%v", lb, stolen, err)
	}
	// The original holder must now be fenced out everywhere.
	if err := la.renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder's renew = %v, want ErrLeaseLost", err)
	}
	if err := la.check(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder's check = %v, want ErrLeaseLost", err)
	}
	// ... and its release must not disturb the thief's lease.
	la.release()
	if err := lb.check(); err != nil {
		t.Fatalf("thief's lease damaged by stale release: %v", err)
	}
	lb.release()
	if _, err := os.Stat(leasePath(dir, 3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("release by the holder must remove the lease file")
	}
}

// TestRenewRefusesExpiredLease pins the ownership-continuity rule: a
// holder that stalls past its own TTL must not renew the expired lease
// even while nobody has stolen it yet, because a stealer may be
// replacing the file at that very moment — a renew racing the steal
// could leave both sides passing their read-backs, and the doubly-owned
// range would commit duplicate points.
func TestRenewRefusesExpiredLease(t *testing.T) {
	dir := t.TempDir()
	const ttl = 50 * time.Millisecond
	if _, err := Coordinate(dir, 10, 5); err != nil {
		t.Fatal(err)
	}
	l, stolen, err := tryClaim(dir, 0, "staller", ttl)
	if err != nil || l == nil || stolen {
		t.Fatalf("fresh claim: lease=%v stolen=%v err=%v", l, stolen, err)
	}
	time.Sleep(ttl + 20*time.Millisecond)
	if err := l.renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew across the expiry boundary = %v, want ErrLeaseLost", err)
	}
	// The forfeited range is stealable as usual — including by the
	// demoted holder itself, under a fresh nonce.
	l2, stolen, err := tryClaim(dir, 0, "staller", ttl)
	if err != nil || l2 == nil || !stolen {
		t.Fatalf("re-claim after forfeit: lease=%v stolen=%v err=%v", l2, stolen, err)
	}
	if err := l2.renew(); err != nil {
		t.Fatalf("renew of the re-claimed lease: %v", err)
	}
	// ...while the stale first lease stays fenced out everywhere.
	if err := l.check(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale lease's check = %v, want ErrLeaseLost", err)
	}
}

func TestGarbledLeaseExpiresByAge(t *testing.T) {
	dir := t.TempDir()
	const ttl = 50 * time.Millisecond
	if _, err := Coordinate(dir, 10, 5); err != nil {
		t.Fatal(err)
	}
	// A torn lease file (e.g. a writer died mid-replace before the
	// scratch protocol existed, or disk corruption) must not wedge its
	// range forever.
	if err := os.WriteFile(leasePath(dir, 0), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if l, _, err := tryClaim(dir, 0, "w", ttl); err != nil || l != nil {
		t.Fatalf("young garbled lease must not be stolen yet: lease=%v err=%v", l, err)
	}
	time.Sleep(ttl + 20*time.Millisecond)
	l, stolen, err := tryClaim(dir, 0, "w", ttl)
	if err != nil || l == nil || !stolen {
		t.Fatalf("old garbled lease must be stolen: lease=%v stolen=%v err=%v", l, stolen, err)
	}
}

func TestMarkDoneIsTerminalAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	if _, err := Coordinate(dir, 10, 5); err != nil {
		t.Fatal(err)
	}
	if isDone(dir, 1) {
		t.Fatal("fresh range reported done")
	}
	if err := markDone(dir, 1, "worker-a"); err != nil {
		t.Fatal(err)
	}
	if err := markDone(dir, 1, "worker-b"); err != nil {
		t.Fatalf("second markDone must be a no-op, got %v", err)
	}
	if !isDone(dir, 1) {
		t.Fatal("marked range not reported done")
	}
	// The first marker wins and is preserved.
	data, err := os.ReadFile(donePath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "worker-a") {
		t.Fatalf("done marker rewritten by the loser: %s", data)
	}
}

func TestSingleWorkerRunCompletes(t *testing.T) {
	dir := t.TempDir()
	const n = 30
	stats, err := Run(context.Background(), Config{
		Dir: dir, N: n, RangeSize: 8, TTL: time.Second, WorkerID: "solo",
	}, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ranges != 4 || stats.Completed != 4 || stats.Leased != 4 || stats.Stolen != 0 {
		t.Fatalf("stats = %+v, want 4 ranges leased and completed", stats)
	}
	if stats.Archived != n {
		t.Fatalf("archived %d points, want %d", stats.Archived, n)
	}
	missing, err := Missing(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing points after a completed run: %v", missing)
	}
	for r := 0; r < 4; r++ {
		if !isDone(dir, r) {
			t.Errorf("range %d has no done marker", r)
		}
		if _, err := os.Stat(leasePath(dir, r)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("range %d's lease not released", r)
		}
	}
	// Joining a finished sweep is a fast no-op.
	stats, err = Run(context.Background(), Config{
		Dir: dir, N: n, RangeSize: 8, TTL: time.Second, WorkerID: "late",
	}, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 0 || stats.Leased != 0 {
		t.Fatalf("late joiner redid work: %+v", stats)
	}
}

func TestMergeCanonicalizesAndEqualVerifies(t *testing.T) {
	src := t.TempDir()
	const n = 37
	// A messy source layout: many small shards from a parallel run.
	if _, err := sweep.RunArchive(context.Background(), src, n, 5, testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "merged")
	stats, err := Merge(src, dst, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != n || stats.Shards != 4 {
		t.Fatalf("merge stats = %+v, want %d points in 4 shards", stats, n)
	}
	if err := Equal(src, dst); err != nil {
		t.Fatalf("merged archive differs from source: %v", err)
	}
	// Merging into a non-empty target is refused.
	if _, err := Merge(src, dst, 10); err == nil {
		t.Fatal("merge over an existing archive must be refused")
	}
	// Canonical layout: merging the merged archive reproduces it
	// file-for-file.
	dst2 := filepath.Join(t.TempDir(), "merged2")
	if _, err := Merge(dst, dst2, 10); err != nil {
		t.Fatal(err)
	}
	compareDirsBitwise(t, dst, dst2)
}

func TestMergeRefusesIncompleteSweep(t *testing.T) {
	dir := t.TempDir()
	if _, err := Coordinate(dir, 20, 5); err != nil {
		t.Fatal(err)
	}
	// Archive only range [0, 5) of the 20-point plan.
	run := sweep.ArchiveRun{Dir: dir, Lo: 0, Hi: 5, Workers: 1}
	if _, err := run.Run(context.Background(), testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	_, err := Merge(dir, filepath.Join(t.TempDir(), "out"), 0)
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("err = %v, want an incompleteness refusal", err)
	}
	missing, err := Missing(dir, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 15 || missing[0] != 5 {
		t.Fatalf("missing = %v, want 5..19", missing)
	}
}

// compareDirsBitwise asserts two archive directories hold exactly the
// same shard files with exactly the same bytes.
func compareDirsBitwise(t *testing.T, aDir, bDir string) {
	t.Helper()
	an, err := filepath.Glob(archive.ShardPattern(aDir))
	if err != nil {
		t.Fatal(err)
	}
	bn, err := filepath.Glob(archive.ShardPattern(bDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(an) != len(bn) {
		t.Fatalf("shard counts differ: %d vs %d", len(an), len(bn))
	}
	for k := range an {
		if filepath.Base(an[k]) != filepath.Base(bn[k]) {
			t.Fatalf("shard names differ: %s vs %s", an[k], bn[k])
		}
		da, err := os.ReadFile(an[k])
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(bn[k])
		if err != nil {
			t.Fatal(err)
		}
		if string(da) != string(db) {
			t.Fatalf("shard %s differs byte-for-byte", filepath.Base(an[k]))
		}
	}
}
