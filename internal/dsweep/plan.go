package dsweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Plan is the one piece of state every worker must agree on: the sweep
// size and how it is cut into lease ranges. It is published once into
// the shared directory and validated by every joiner.
type Plan struct {
	// N is the total number of sweep points (indices 0..N-1).
	N int `json:"points"`
	// RangeSize is the number of points per lease range.
	RangeSize int `json:"range_size"`
}

// Ranges returns the number of lease ranges the plan defines.
func (p Plan) Ranges() int { return (p.N + p.RangeSize - 1) / p.RangeSize }

// Bounds returns the half-open point-index range [lo, hi) of range r.
func (p Plan) Bounds(r int) (lo, hi int) {
	lo = r * p.RangeSize
	hi = lo + p.RangeSize
	if hi > p.N {
		hi = p.N
	}
	return lo, hi
}

const planName = "plan.json"

// planPath returns the plan file of a sweep directory.
func planPath(dir string) string { return filepath.Join(dir, planName) }

// leaseDir returns the control-plane subdirectory of a sweep directory.
func leaseDir(dir string) string { return filepath.Join(dir, "leases") }

// Coordinate publishes the sweep plan into dir, or joins the one
// already there. The first caller wins an atomic create-exclusive and
// becomes the (one-shot) coordinator; every other caller loads the
// published plan and fails loudly if it disagrees with the requested
// geometry — two fleets with different plans must never interleave in
// one directory.
func Coordinate(dir string, n, rangeSize int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("dsweep: plan needs a positive point count, got %d", n)
	}
	if rangeSize <= 0 {
		return Plan{}, fmt.Errorf("dsweep: plan needs a positive range size, got %d", rangeSize)
	}
	if err := os.MkdirAll(leaseDir(dir), 0o755); err != nil {
		return Plan{}, fmt.Errorf("dsweep: %w", err)
	}
	want := Plan{N: n, RangeSize: rangeSize}
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return Plan{}, fmt.Errorf("dsweep: %w", err)
	}
	err = createExclusive(planPath(dir), append(data, '\n'))
	if err == nil {
		return want, nil
	}
	if !errors.Is(err, fs.ErrExist) {
		return Plan{}, fmt.Errorf("dsweep: publishing plan: %w", err)
	}
	got, err := LoadPlan(dir)
	if err != nil {
		return Plan{}, err
	}
	if got != want {
		return Plan{}, fmt.Errorf("dsweep: %s already plans %d points in ranges of %d; refusing to join with %d/%d",
			dir, got.N, got.RangeSize, n, rangeSize)
	}
	return got, nil
}

// LoadPlan reads the published plan of a sweep directory.
func LoadPlan(dir string) (Plan, error) {
	data, err := os.ReadFile(planPath(dir))
	if err != nil {
		return Plan{}, fmt.Errorf("dsweep: loading plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("dsweep: parsing %s: %w", planPath(dir), err)
	}
	if p.N <= 0 || p.RangeSize <= 0 {
		return Plan{}, fmt.Errorf("dsweep: %s holds an invalid plan %+v", planPath(dir), p)
	}
	return p, nil
}

// tmpSeq makes scratch-file names unique within the process.
var tmpSeq atomic.Int64

// scratchName returns a unique sibling scratch path for path.
func scratchName(path string) string {
	return fmt.Sprintf("%s.w%d.%d", path, os.Getpid(), tmpSeq.Add(1))
}

// createExclusive atomically creates path with the given content: the
// file either appears complete or not at all, and a racing creator
// loses with fs.ErrExist. Implemented as write-to-scratch + link(2),
// because link — unlike rename — fails on an existing target.
func createExclusive(path string, data []byte) error {
	tmp := scratchName(path)
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, path); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fs.ErrExist
		}
		return err
	}
	return syncDir(filepath.Dir(path))
}

// replaceFile atomically replaces path with the given content via
// write-to-scratch + rename. The last of several racing replacers
// wins; callers that need single ownership read the file back and
// check it is theirs.
func replaceFile(path string, data []byte) error {
	tmp := scratchName(path)
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it, so the content is
// on disk before any link/rename makes the name visible.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		_ = os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one worth reporting
		_ = os.Remove(path)
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory, making creates and renames inside it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
