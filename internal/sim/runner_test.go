package sim

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestEvenChunks(t *testing.T) {
	b := EvenChunks(10, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 10 {
		t.Fatalf("bounds = %v", b)
	}
	for c := 0; c < 4; c++ {
		if b[c+1] < b[c] {
			t.Fatalf("bounds not monotone: %v", b)
		}
	}
	// More workers than rows collapses to one row per chunk.
	b = EvenChunks(3, 8)
	if len(b) != 4 || b[3] != 3 {
		t.Fatalf("clamped bounds = %v", b)
	}
}

// prefixOf builds a CSR-style prefix from per-row weights.
func prefixOf(weights []int32) []int32 {
	p := make([]int32, len(weights)+1)
	for i, w := range weights {
		p[i+1] = p[i] + w
	}
	return p
}

func TestWeightedChunksBalance(t *testing.T) {
	// A pathological profile: one fat row region. Even chunking would give
	// one worker nearly all nonzeros; weighted chunking must not.
	weights := make([]int32, 64)
	for i := range weights {
		weights[i] = 1
	}
	for i := 0; i < 8; i++ {
		weights[i] = 100 // first 8 rows hold ~93% of the weight
	}
	prefix := prefixOf(weights)
	workers := 4
	b := WeightedChunks(prefix, workers)
	if len(b) != workers+1 || b[0] != 0 || b[workers] != 64 {
		t.Fatalf("bounds = %v", b)
	}
	total := float64(prefix[len(prefix)-1])
	worst := 0.0
	for c := 0; c < workers; c++ {
		if b[c+1] <= b[c] {
			t.Fatalf("empty or inverted chunk %d: %v", c, b)
		}
		share := float64(prefix[b[c+1]]-prefix[b[c]]) / total
		if share > worst {
			worst = share
		}
	}
	// Perfect balance is 0.25; even row chunking would put ~0.94 of the
	// weight on worker 0. Require the weighted split to stay close to fair
	// (one fat row can exceed a share by at most its own weight).
	if worst > 0.40 {
		t.Errorf("worst worker share = %v of total weight, want near 1/%d; bounds %v", worst, workers, b)
	}

	// Uniform weights reduce to (nearly) even chunks.
	uw := make([]int32, 12)
	for i := range uw {
		uw[i] = 3
	}
	b = WeightedChunks(prefixOf(uw), 3)
	want := EvenChunks(12, 3)
	for c := range b {
		if b[c] != want[c] {
			t.Errorf("uniform weighted bounds %v, want even %v", b, want)
			break
		}
	}
}

// TestWeightedChunksHubRowKeepsEveryWorkerBusy is the regression test
// for the empty-chunk bug: a single hub row holding more than one
// worker's share of the weight used to leave the cumulative weight past
// several targets at once, emitting a zero-width chunk that idled its
// pool goroutine on every RHS call.
func TestWeightedChunksHubRowKeepsEveryWorkerBusy(t *testing.T) {
	// Row 1 holds 100 of 104 nonzeros; pre-fix bounds were [0,2,2,3,5].
	prefix := []int32{0, 1, 101, 102, 103, 104}
	b := WeightedChunks(prefix, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 5 {
		t.Fatalf("bounds = %v", b)
	}
	for c := 0; c < 4; c++ {
		if b[c+1] <= b[c] {
			t.Fatalf("chunk %d is empty: bounds %v", c, b)
		}
	}
}

func TestWeightedChunksDegenerate(t *testing.T) {
	// All-zero weights fall back to even chunking.
	b := WeightedChunks(make([]int32, 9), 4) // 8 rows, zero weight
	if len(b) != 5 || b[4] != 8 {
		t.Fatalf("zero-weight bounds = %v", b)
	}
	for c := 0; c < 4; c++ {
		if b[c+1] <= b[c] {
			t.Fatalf("zero-weight chunking starves a worker: %v", b)
		}
	}
	// workers > rows clamps.
	b = WeightedChunks(prefixOf([]int32{5, 1}), 7)
	if len(b) != 3 || b[2] != 2 {
		t.Fatalf("clamped bounds = %v", b)
	}
}

// TestRunnerCoversAllRowsOnce checks the dispatch: every row is evaluated
// exactly once per Run, across restarts.
func TestRunnerCoversAllRowsOnce(t *testing.T) {
	const n = 37
	var hits [n]atomic.Int32
	r := NewRunner(EvenChunks(n, 5), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	if r.Chunks() != 5 {
		t.Fatalf("chunks = %d", r.Chunks())
	}
	r.Run()
	r.Close()
	r.Run() // restart after Close
	r.Close()
	for i := range hits {
		if got := hits[i].Load(); got != 2 {
			t.Fatalf("row %d evaluated %d times, want 2", i, got)
		}
	}
}

// TestRunnerChunkingIsBitwiseIrrelevant is the NUMA-balance pin: the same
// row-disjoint reduction evaluated under even chunks, weighted chunks,
// and serially produces bit-for-bit identical output.
func TestRunnerChunkingIsBitwiseIrrelevant(t *testing.T) {
	const n = 129
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Sin(float64(3*i+1)) * 1e3
	}
	eval := func(dst []float64) func(lo, hi int) {
		return func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = math.Sqrt(math.Abs(in[i])) + 0.5*in[i]
			}
		}
	}
	serial := make([]float64, n)
	eval(serial)(0, n)

	weights := make([]int32, n)
	for i := range weights {
		weights[i] = int32(1 + (i*i)%17)
	}
	for _, bounds := range [][]int{
		EvenChunks(n, 6),
		WeightedChunks(prefixOf(weights), 6),
	} {
		out := make([]float64, n)
		r := NewRunner(bounds, eval(out))
		r.Run()
		r.Close()
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(serial[i]) {
				t.Fatalf("bounds %v: row %d differs from serial", bounds, i)
			}
		}
	}
}

// TestChunksEmptyRowRange pins the degenerate inputs: no rows (or a
// nil/empty prefix) yields a single empty chunk instead of a
// divide-by-zero or index panic.
func TestChunksEmptyRowRange(t *testing.T) {
	for name, b := range map[string][]int{
		"even n=0":           EvenChunks(0, 4),
		"even n<0":           EvenChunks(-3, 2),
		"weighted nil":       WeightedChunks(nil, 4),
		"weighted empty":     WeightedChunks([]int32{}, 4),
		"weighted one-entry": WeightedChunks([]int32{0}, 4),
	} {
		if len(b) != 2 || b[0] != 0 || b[1] != 0 {
			t.Errorf("%s: bounds = %v, want [0 0]", name, b)
		}
	}
}
