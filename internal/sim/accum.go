package sim

import (
	"errors"
	"math"

	"repro/internal/ode"
	"repro/internal/stats"
)

// finalWindow replicates the asymptotic-window start index used by the
// materialized report paths (core.Result.AsymptoticSpread and friends):
// the last finalFraction of n samples, clamped to at least the final
// sample.
func finalWindow(n int, finalFraction float64) int {
	start := n - int(float64(n)*finalFraction)
	if start < 0 {
		start = 0
	}
	if start >= n {
		start = n - 1
	}
	return start
}

// SpreadAccumulator computes the phase-spread metrics of a run online:
// per-sample it evaluates the same stats.PhaseSpread as the materialized
// SpreadTimeline, and its Asymptotic value reproduces AsymptoticSpread
// bit-for-bit (same additions in the same order).
type SpreadAccumulator struct {
	// FinalFraction sets the asymptotic averaging window; 0 means 0.15
	// (the window the report paths use).
	FinalFraction float64
	// KeepTimeline retains the full per-sample spread series in Timeline —
	// O(nSamples) memory, for plots and the bitwise pinning tests. Leave
	// false in sweeps.
	KeepTimeline bool
	// Timeline is the retained series when KeepTimeline is set.
	Timeline []float64

	start, k   int
	sum        float64
	final, max float64
}

// Begin implements Sink.
func (a *SpreadAccumulator) Begin(_, nSamples int) {
	ff := a.FinalFraction
	if ff == 0 {
		ff = 0.15
	}
	a.start = finalWindow(nSamples, ff)
	a.k, a.sum, a.final, a.max = 0, 0, 0, 0
	a.Timeline = a.Timeline[:0]
}

// Sample implements Sink.
//
//pomvet:allocfree
func (a *SpreadAccumulator) Sample(_ float64, theta []float64) {
	s := stats.PhaseSpread(theta)
	if a.KeepTimeline {
		a.Timeline = append(a.Timeline, s) //pomvet:allow allocfree opt-in timeline retention; off on the sweep hot path
	}
	if s > a.max {
		a.max = s
	}
	a.final = s
	if a.k >= a.start {
		a.sum += s
	}
	a.k++
}

// Final returns the spread at the last sample.
func (a *SpreadAccumulator) Final() float64 { return a.final }

// Max returns the largest spread seen.
func (a *SpreadAccumulator) Max() float64 { return a.max }

// Asymptotic returns the mean spread over the final window — equal to
// AsymptoticSpread(FinalFraction) on the same materialized run.
func (a *SpreadAccumulator) Asymptotic() float64 {
	if a.k <= a.start {
		return 0
	}
	return a.sum / float64(a.k-a.start)
}

// OrderAccumulator computes the Kuramoto order parameter r(t) online —
// per-sample identical to the materialized OrderTimeline, and its
// Asymptotic value reproduces kuramoto.Result.AsymptoticOrder
// bit-for-bit (same additions in the same order over the same window).
type OrderAccumulator struct {
	// FinalFraction sets the asymptotic averaging window; 0 means 0.15.
	FinalFraction float64
	// KeepTimeline retains the full r(t) series (see SpreadAccumulator).
	KeepTimeline bool
	// Timeline is the retained series when KeepTimeline is set.
	Timeline []float64

	start, k   int
	sum        float64
	final, min float64
	seen       bool
}

// Begin implements Sink.
func (a *OrderAccumulator) Begin(_, nSamples int) {
	ff := a.FinalFraction
	if ff == 0 {
		ff = 0.15
	}
	a.start = finalWindow(nSamples, ff)
	a.k, a.sum = 0, 0
	a.final, a.min, a.seen = 0, math.Inf(1), false
	a.Timeline = a.Timeline[:0]
}

// Sample implements Sink.
//
//pomvet:allocfree
func (a *OrderAccumulator) Sample(_ float64, theta []float64) {
	r, _ := stats.OrderParameter(theta)
	if a.KeepTimeline {
		a.Timeline = append(a.Timeline, r) //pomvet:allow allocfree opt-in timeline retention; off on the sweep hot path
	}
	if r < a.min {
		a.min = r
	}
	a.final = r
	a.seen = true
	if a.k >= a.start {
		a.sum += r
	}
	a.k++
}

// Final returns r at the last sample.
func (a *OrderAccumulator) Final() float64 { return a.final }

// Min returns the lowest r seen (0 when no samples arrived).
func (a *OrderAccumulator) Min() float64 {
	if !a.seen {
		return 0
	}
	return a.min
}

// Asymptotic returns the mean order parameter over the final window —
// the r∞ the Kuramoto bifurcation diagram plots against K.
func (a *OrderAccumulator) Asymptotic() float64 {
	if a.k <= a.start {
		return 0
	}
	return a.sum / float64(a.k-a.start)
}

// ResyncDetector finds the resynchronization time online: the first sample
// time at which the phase spread drops below Eps and stays below it for
// the rest of the run — exactly the materialized ResyncTime(Eps), computed
// forward by tracking the start of the current below-Eps run.
type ResyncDetector struct {
	// Eps is the spread threshold (the report paths use 0.1).
	Eps float64

	at   float64
	have bool
}

// Begin implements Sink.
func (d *ResyncDetector) Begin(int, int) { d.have = false }

// Sample implements Sink.
func (d *ResyncDetector) Sample(t float64, theta []float64) {
	if stats.PhaseSpread(theta) >= d.Eps {
		d.have = false
	} else if !d.have {
		d.have, d.at = true, t
	}
}

// ResyncTime returns the detected resynchronization time, or an error when
// the system never resynchronized.
func (d *ResyncDetector) ResyncTime() (float64, error) {
	if !d.have {
		return 0, errors.New("sim: system did not resynchronize")
	}
	return d.at, nil
}

// GapAccumulator time-averages the adjacent phase gaps θ_{i+1} − θ_i over
// the final window — bit-for-bit the materialized AsymptoticGaps.
type GapAccumulator struct {
	// FinalFraction sets the averaging window; 0 means 0.15.
	FinalFraction float64

	start, k, count int
	sums            []float64
}

// Begin implements Sink.
func (a *GapAccumulator) Begin(n, nSamples int) {
	ff := a.FinalFraction
	if ff == 0 {
		ff = 0.15
	}
	a.start = finalWindow(nSamples, ff)
	a.k, a.count = 0, 0
	w := n - 1
	if w < 0 {
		w = 0
	}
	if cap(a.sums) < w {
		a.sums = make([]float64, w)
	}
	a.sums = a.sums[:w]
	for i := range a.sums {
		a.sums[i] = 0
	}
}

// Sample implements Sink.
func (a *GapAccumulator) Sample(_ float64, theta []float64) {
	if a.k >= a.start {
		for i := 1; i < len(theta) && i-1 < len(a.sums); i++ {
			a.sums[i-1] += theta[i] - theta[i-1]
		}
		a.count++
	}
	a.k++
}

// Gaps returns the time-averaged adjacent gaps over the final window.
func (a *GapAccumulator) Gaps() []float64 {
	out := make([]float64, len(a.sums))
	if a.count == 0 {
		return out
	}
	for i, s := range a.sums {
		out[i] = s / float64(a.count)
	}
	return out
}

// MeanAbsGap returns the mean |gap| of the averaged gaps, the settled
// wavefront summary the report paths print.
func (a *GapAccumulator) MeanAbsGap() float64 {
	gaps := a.Gaps()
	if len(gaps) == 0 {
		return 0
	}
	var sum float64
	for _, g := range gaps {
		sum += math.Abs(g)
	}
	return sum / float64(len(gaps))
}

// LockAccumulator decides asymptotic frequency locking online — the
// streaming counterpart of core.Result.FrequencyLocked, retaining only
// the window-start row and the final row instead of the trajectory. The
// mean frequency of each component over the final window is the secant
// (y(t_end) − y(t_start)) / Δt; the system is locked when the frequency
// range is within a relative tolerance of its midpoint. Locked(tol)
// reproduces FrequencyLocked(FinalFraction, tol) on the same run exactly.
type LockAccumulator struct {
	// FinalFraction sets the averaging window; 0 means 0.2 (the report
	// default).
	FinalFraction float64

	n, k, start int
	t0, t1      float64
	y0, y1      []float64
}

// Begin implements Sink.
func (a *LockAccumulator) Begin(n, nSamples int) {
	a.n = n
	a.k = 0
	ff := a.FinalFraction
	if ff == 0 {
		ff = 0.2
	}
	// FrequencyLocked clamps the window start to n−2 so the secant always
	// spans at least one sample interval (finalWindow clamps to n−1).
	a.start = nSamples - int(float64(nSamples)*ff)
	if a.start < 0 {
		a.start = 0
	}
	if a.start >= nSamples-1 {
		a.start = nSamples - 2
	}
	if cap(a.y0) < n {
		a.y0 = make([]float64, n)
		a.y1 = make([]float64, n)
	}
	a.y0, a.y1 = a.y0[:n], a.y1[:n]
}

// Sample implements Sink.
func (a *LockAccumulator) Sample(t float64, theta []float64) {
	if a.k == a.start {
		a.t0 = t
		copy(a.y0, theta)
	}
	a.t1 = t
	copy(a.y1, theta)
	a.k++
}

// Locked reports whether all components share the same mean frequency
// over the final window, to within tol (relative).
func (a *LockAccumulator) Locked(tol float64) bool {
	if a.k < 3 || a.k <= a.start {
		return false
	}
	dt := a.t1 - a.t0
	if dt <= 0 {
		return false
	}
	lo := (a.y1[0] - a.y0[0]) / dt
	hi := lo
	for i := 1; i < a.n; i++ {
		f := (a.y1[i] - a.y0[i]) / dt
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	mid := (lo + hi) / 2
	if mid == 0 {
		return hi-lo == 0
	}
	return (hi-lo)/math.Abs(mid) <= tol
}

// Summary is the O(N) reduction of one streamed run: everything the batch
// report paths need, without a single retained trajectory row.
type Summary struct {
	// FinalSpread, MaxSpread, and AsymptoticSpread are the phase-spread
	// metrics (AsymptoticSpread over the final-fraction window).
	FinalSpread, MaxSpread, AsymptoticSpread float64
	// FinalOrder and MinOrder are the Kuramoto order-parameter metrics.
	FinalOrder, MinOrder float64
	// Resynced reports whether the spread settled below the resync
	// threshold; ResyncTime is the settling time when it did.
	Resynced   bool
	ResyncTime float64
	// Gaps are the time-averaged adjacent gaps over the final window and
	// MeanAbsGap their mean magnitude.
	Gaps       []float64
	MeanAbsGap float64
	// Stats reports the solver work.
	Stats ode.Stats
}

// RunSummary streams a run through the standard accumulator set and
// returns the O(N) summary. resyncEps 0 selects 0.1 and finalFraction 0
// selects 0.15 — the thresholds the materialized report paths use. It
// works for any System: a Kuramoto coupling scan and a continuum
// relaxation study summarize through exactly the code path the POM uses.
func RunSummary(sys System, tEnd float64, nSamples int, resyncEps, finalFraction float64) (*Summary, error) {
	return RunSummaryTo(sys, tEnd, nSamples, resyncEps, finalFraction)
}

// RunSummaryTo is RunSummary with extra sinks teed into the same single
// pass over the sample stream — the hook archive-mode sweeps use to
// persist the full trajectory (an archive.RecordWriter is a Sink) while
// the standard summary accumulates. The extra sinks see exactly the
// rows the accumulators see, in the same order.
func RunSummaryTo(sys System, tEnd float64, nSamples int, resyncEps, finalFraction float64, extra ...Sink) (*Summary, error) {
	if resyncEps == 0 {
		resyncEps = 0.1
	}
	spread := &SpreadAccumulator{FinalFraction: finalFraction}
	order := &OrderAccumulator{FinalFraction: finalFraction}
	resync := &ResyncDetector{Eps: resyncEps}
	gaps := &GapAccumulator{FinalFraction: finalFraction}
	sinks := append([]Sink{spread, order, resync, gaps}, extra...)
	st, err := RunStream(sys, tEnd, nSamples, Tee(sinks...))
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		FinalSpread:      spread.Final(),
		MaxSpread:        spread.Max(),
		AsymptoticSpread: spread.Asymptotic(),
		FinalOrder:       order.Final(),
		MinOrder:         order.Min(),
		Gaps:             gaps.Gaps(),
		MeanAbsGap:       gaps.MeanAbsGap(),
		Stats:            st,
	}
	if rt, err := resync.ResyncTime(); err == nil {
		sum.Resynced, sum.ResyncTime = true, rt
	}
	return sum, nil
}

// Vector flattens the scalar summary metrics into a fixed-layout float
// vector — the metrics section of an archive record. The layout is
// stable: [FinalSpread, MaxSpread, AsymptoticSpread, FinalOrder,
// MinOrder, resynced (0/1), ResyncTime, MeanAbsGap].
func (s *Summary) Vector() []float64 {
	resynced := 0.0
	if s.Resynced {
		resynced = 1
	}
	return []float64{
		s.FinalSpread, s.MaxSpread, s.AsymptoticSpread,
		s.FinalOrder, s.MinOrder,
		resynced, s.ResyncTime, s.MeanAbsGap,
	}
}
