package sim_test

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"sort"
	"testing"

	"repro/internal/archive"
	"repro/internal/continuum"
	"repro/internal/kuramoto"
	"repro/internal/sim"
)

// The buffer-scribble regression tests pin the Sink buffer-reuse
// contract at runtime, complementing the sinkretain static check:
// Sample's row slice is valid only for the duration of the call, so
// every in-tree sink must end in an identical state whether its rows
// arrived in fresh slices or in one buffer overwritten with NaN after
// each call. A retained header drags the scribble into the state and
// the comparison fails.

const (
	scribbleWidth = 6
	scribbleRows  = 24
)

// fillRow writes the deterministic row k into dst.
func fillRow(dst []float64, k int) {
	for i := range dst {
		dst[i] = math.Sin(float64(k)*0.7 + float64(i)*1.3)
	}
}

// driveScribbled feeds every row from one reused buffer, scribbling it
// with NaN after each call — the adversarial version of the solver's
// reuse pattern.
func driveScribbled(s sim.Sink) {
	buf := make([]float64, scribbleWidth)
	s.Begin(scribbleWidth, scribbleRows)
	for k := 0; k < scribbleRows; k++ {
		fillRow(buf, k)
		s.Sample(float64(k)*0.5, buf)
		for i := range buf {
			buf[i] = math.NaN()
		}
	}
}

// driveFresh feeds the same rows, each in its own slice.
func driveFresh(s sim.Sink) {
	s.Begin(scribbleWidth, scribbleRows)
	for k := 0; k < scribbleRows; k++ {
		row := make([]float64, scribbleWidth)
		fillRow(row, k)
		s.Sample(float64(k)*0.5, row)
	}
}

// TestSinksSurviveBufferScribble drives every in-memory sink both ways
// and requires bit-identical final state (reflect.DeepEqual sees the
// unexported fields; any retained NaN-scribbled slice differs).
func TestSinksSurviveBufferScribble(t *testing.T) {
	sinks := map[string]func() sim.Sink{
		"spread":        func() sim.Sink { return &sim.SpreadAccumulator{KeepTimeline: true} },
		"order":         func() sim.Sink { return &sim.OrderAccumulator{} },
		"resync":        func() sim.Sink { return &sim.ResyncDetector{Eps: 0.1} },
		"gap":           func() sim.Sink { return &sim.GapAccumulator{} },
		"lock":          func() sim.Sink { return &sim.LockAccumulator{} },
		"slip-counter":  func() sim.Sink { return &kuramoto.SlipCounter{} },
		"front-tracker": func() sim.Sink { return &continuum.FrontTracker{} },
		"tee-of-spread": func() sim.Sink { return sim.Tee(&sim.SpreadAccumulator{}, &sim.OrderAccumulator{}) },
	}
	names := make([]string, 0, len(sinks))
	for name := range sinks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mk := sinks[name]
		scribbled, fresh := mk(), mk()
		driveScribbled(scribbled)
		driveFresh(fresh)
		if !reflect.DeepEqual(scribbled, fresh) {
			t.Errorf("%s: state differs after buffer scribble — the sink retains its row buffer:\nscribbled: %+v\nfresh:     %+v",
				name, scribbled, fresh)
		}
	}
}

// TestRecordWriterSurvivesBufferScribble drives the archive record
// writer both ways and requires byte-identical shards: rows are
// encoded during Sample, so a scribbled buffer must leave no trace on
// disk. The params slice handed to Writer.Begin is scribbled too.
func TestRecordWriterSurvivesBufferScribble(t *testing.T) {
	writeShard := func(dir string, scribble bool) []byte {
		t.Helper()
		w, err := archive.Create(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		params := []float64{1.5, -2.25}
		rw, err := w.Begin(7, params)
		if err != nil {
			t.Fatal(err)
		}
		if scribble {
			params[0], params[1] = math.NaN(), math.NaN()
			driveScribbled(rw)
		} else {
			driveFresh(rw)
		}
		if err := rw.Finish([]float64{3.5}, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(w.Path())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	scribbled := writeShard(t.TempDir(), true)
	fresh := writeShard(t.TempDir(), false)
	if !bytes.Equal(scribbled, fresh) {
		t.Error("shard bytes differ after buffer scribble — the record writer retains a caller slice")
	}
}
