package sim

import (
	"math"
	"testing"

	"repro/internal/ode"
)

// osc is a minimal test system: n uncoupled rotators with a weak
// nonlinear coupling to the mean, so trajectories are smooth but not
// trivially linear.
type osc struct {
	n        int
	released int
	solver   Solver
}

func (o *osc) Dim() int { return o.n }

func (o *osc) InitialState() []float64 {
	y0 := make([]float64, o.n)
	for i := range y0 {
		y0[i] = 0.1 * float64(i)
	}
	return y0
}

func (o *osc) Eval(_ float64, y, dydt []float64) {
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i := range y {
		dydt[i] = 1 + 0.1*float64(i) + 0.05*math.Sin(mean-y[i])
	}
}

func (o *osc) Solver() Solver { return o.solver }

func (o *osc) Release() { o.released++ }

// lagSys is a scalar DDE y' = -y(t-1), the textbook delayed decay.
type lagSys struct{}

func (lagSys) Dim() int                { return 1 }
func (lagSys) InitialState() []float64 { return []float64{1} }
func (lagSys) Eval(_ float64, _, dydt []float64) {
	dydt[0] = 0 // never called: MaxDelay > 0 routes to EvalDelayed
}
func (lagSys) MaxDelay() float64 { return 1 }
func (lagSys) EvalDelayed(t float64, y []float64, past ode.Past, dydt []float64) {
	dydt[0] = -past.Eval(0, t-1)
}

// TestRunStreamMatchesRun pins the core streaming invariant at the sim
// layer: the rows streamed to a sink are bit-for-bit the rows Run
// materializes, for both the ODE and the DDE path.
func TestRunStreamMatchesRun(t *testing.T) {
	systems := map[string]System{
		"ode": &osc{n: 5},
		"dde": lagSys{},
	}
	for name, sys := range systems {
		res, err := Run(sys, 10, 41)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var ts []float64
		var ys [][]float64
		_, err = RunStream(sys, 10, 41, SinkFunc(func(tt float64, y []float64) {
			ts = append(ts, tt)
			ys = append(ys, append([]float64(nil), y...))
		}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ts) != len(res.Ts) {
			t.Fatalf("%s: %d streamed rows vs %d materialized", name, len(ts), len(res.Ts))
		}
		for k := range ts {
			if math.Float64bits(ts[k]) != math.Float64bits(res.Ts[k]) {
				t.Fatalf("%s: sample time %d differs: %v vs %v", name, k, ts[k], res.Ts[k])
			}
			for i := range ys[k] {
				if math.Float64bits(ys[k][i]) != math.Float64bits(res.Ys[k][i]) {
					t.Fatalf("%s: row %d component %d differs: %v vs %v",
						name, k, i, ys[k][i], res.Ys[k][i])
				}
			}
		}
	}
}

// TestRunReleasesSystem checks the resource contract: Release is called
// exactly once per Run/RunStream invocation, success or not.
func TestRunReleasesSystem(t *testing.T) {
	o := &osc{n: 3}
	if _, err := Run(o, 5, 11); err != nil {
		t.Fatal(err)
	}
	if o.released != 1 {
		t.Fatalf("released %d times after Run, want 1", o.released)
	}
	if _, err := RunStream(o, 5, 11, SinkFunc(func(float64, []float64) {})); err != nil {
		t.Fatal(err)
	}
	if o.released != 2 {
		t.Fatalf("released %d times after RunStream, want 2", o.released)
	}
	// Error paths release too — a pooled system rejected by a bad
	// argument inside a sweep loop must not leak its workers.
	if _, err := Run(o, -1, 11); err == nil {
		t.Fatal("want error for negative tEnd")
	}
	if o.released != 3 {
		t.Fatalf("released %d times after failed Run, want 3", o.released)
	}
	if _, err := RunStream(o, 5, 11, nil); err == nil {
		t.Fatal("want error for nil sink")
	}
	if o.released != 4 {
		t.Fatalf("released %d times after failed RunStream, want 4", o.released)
	}
}

// TestRunStreamValidation covers the argument checks.
func TestRunStreamValidation(t *testing.T) {
	o := &osc{n: 2}
	if _, err := RunStream(o, 1, 5, nil); err == nil {
		t.Error("want error for nil sink")
	}
	if _, err := RunStream(o, 0, 5, SinkFunc(func(float64, []float64) {})); err == nil {
		t.Error("want error for tEnd <= 0")
	}
	if _, err := Run(o, 0, 5); err == nil {
		t.Error("want error for tEnd <= 0")
	}
}

// TestTunedSolverIsHonored pins that a system's Solver settings reach the
// integrator: a crude tolerance does measurably less work than a tight
// one.
func TestTunedSolverIsHonored(t *testing.T) {
	tight := &osc{n: 4, solver: Solver{Atol: 1e-12, Rtol: 1e-12}}
	crude := &osc{n: 4, solver: Solver{Atol: 1e-3, Rtol: 1e-3}}
	rt, err := Run(tight, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(crude, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Evals <= rc.Stats.Evals {
		t.Errorf("tight tolerance did %d evals, crude %d — settings not honored",
			rt.Stats.Evals, rc.Stats.Evals)
	}
	// Hmax cap: with Hmax = 0.01 a 20-unit run needs ≥ 2000 steps.
	capped := &osc{n: 4, solver: Solver{Hmax: 0.01}}
	rcap, err := Run(capped, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rcap.Stats.Steps < 2000 {
		t.Errorf("Hmax-capped run took %d steps, want >= 2000", rcap.Stats.Steps)
	}
}

// TestRunSummaryMatchesAccumulators checks the convenience reduction
// against hand-run accumulators over the same stream.
func TestRunSummaryMatchesAccumulators(t *testing.T) {
	o := &osc{n: 6}
	sum, err := RunSummary(o, 15, 61, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	spread := &SpreadAccumulator{}
	order := &OrderAccumulator{}
	if _, err := RunStream(o, 15, 61, Tee(spread, order)); err != nil {
		t.Fatal(err)
	}
	if sum.FinalSpread != spread.Final() || sum.AsymptoticSpread != spread.Asymptotic() {
		t.Errorf("spread mismatch: %+v vs final=%v asym=%v", sum, spread.Final(), spread.Asymptotic())
	}
	if sum.FinalOrder != order.Final() || sum.MinOrder != order.Min() {
		t.Errorf("order mismatch: %+v vs final=%v min=%v", sum, order.Final(), order.Min())
	}
	v := sum.Vector()
	if len(v) != 8 || v[0] != sum.FinalSpread || v[7] != sum.MeanAbsGap {
		t.Errorf("vector layout wrong: %v", v)
	}
}

// TestOrderAccumulatorAsymptoticWindow pins the Asymptotic window against
// the materialized forward sum it replaces (kuramoto.Result.
// AsymptoticOrder): same start index, same addition order.
func TestOrderAccumulatorAsymptoticWindow(t *testing.T) {
	o := &osc{n: 5}
	acc := &OrderAccumulator{FinalFraction: 0.25, KeepTimeline: true}
	if _, err := RunStream(o, 12, 33, acc); err != nil {
		t.Fatal(err)
	}
	n := len(acc.Timeline)
	start := n - int(float64(n)*0.25)
	var want float64
	for k := start; k < n; k++ {
		want += acc.Timeline[k]
	}
	want /= float64(n - start)
	if got := acc.Asymptotic(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("Asymptotic = %v, want %v (bitwise)", got, want)
	}
}
