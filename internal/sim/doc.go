// Package sim is the unified simulation runtime shared by every model
// family in the repository. The POM core (core.Model), the Kuramoto
// baseline (kuramoto.Model), the continuum field (continuum.Field), the
// linear-stability scan replay (linstab.Scan), and the cluster trace
// facade (cluster.TraceSystem) all implement the System contract and
// route their integrations through Run / RunStream here. One runtime
// means one implementation of the sample-plan machinery, the
// streaming-sink protocol, the accumulator set, and the
// worker-pool/chunking logic — and everything built on top
// (sweep.RunReduce, sweep.RunArchive, the scenario registry, cmd/pomsim)
// works uniformly over any family.
//
// # The contract
//
// A System is a fixed-dimension state with an initial condition and a
// right-hand side (Dim, InitialState, Eval). Three optional extensions
// refine the runtime's behavior:
//
//   - Delayed: systems whose right-hand side reads the solution history
//     integrate with the DDE driver (EvalDelayed + MaxDelay);
//   - Tuned: systems override the default solver tolerances and step cap
//     (the POM caps the step at a quarter period so piecewise-constant
//     noise cells are never stepped over);
//   - Releaser: systems holding resources (worker pools, scratch arenas)
//     are released exactly once per run, success or error, so sweeps can
//     build thousands of systems without leaks.
//
// # Streaming
//
// Run materializes a trajectory; RunStream emits the identical rows to a
// Sink from reused buffers, so memory is independent of the sample
// count. The accumulator sinks (SpreadAccumulator, OrderAccumulator,
// ResyncDetector, GapAccumulator, LockAccumulator) reduce a stream to
// O(N) summaries pinned bit-for-bit against their materialized
// counterparts; RunSummary / RunSummaryTo bundle them into the standard
// Summary, optionally teeing extra sinks (an archive.RecordWriter, a
// continuum.FrontTracker, a kuramoto.SlipCounter) into the same single
// pass. Bitwise determinism is the load-bearing invariant: streamed rows
// equal materialized rows, parallel right-hand sides equal serial ones,
// and resumed archives equal uninterrupted ones.
//
// # Parallelism
//
// Runner owns a persistent worker pool for row-parallel right-hand
// sides; WeightedChunks balances chunks by CSR nonzeros so irregular
// topologies load workers evenly. Any chunking is bit-for-bit identical
// to serial evaluation.
//
// The architecture mirrors inference-sim's ClusterSimulator /
// DeploymentConfig split: declarative per-family configs (package
// scenario) build a System, and a single simulator core owns
// integration, determinism, and statistics. ARCHITECTURE.md draws the
// full stack; SCENARIOS.md documents the JSON surface.
package sim
