package sim

// Runner is the persistent worker pool behind row-parallel right-hand
// sides (core.Config.Workers). It owns a fixed contiguous chunking of the
// row range [0, n) and a fixed evaluation function; Run dispatches one
// chunk index per worker over a channel and waits for the matching
// completions, so a steady-state evaluation performs no allocations.
// Per-call arguments (t, y, dydt) are staged by the owning system before
// dispatch — the evaluation closure is created once, at construction.
//
// Determinism: the chunk boundaries are fixed at construction and every
// chunk must write a disjoint output range while reading only shared
// inputs, so the floating-point result is bit-for-bit identical to a
// serial evaluation no matter how the chunks are interleaved — and, for
// the same reason, independent of the chunk boundaries themselves (even
// vs. nnz-weighted chunking produce identical bits).
type Runner struct {
	bounds []int
	eval   func(lo, hi int)
	jobs   chan int
	done   chan struct{}
}

// NewRunner builds a runner over the given chunk bounds (len(bounds)-1
// chunks; bounds must be non-decreasing) evaluating eval(lo, hi) per
// chunk. Worker goroutines start lazily on the first Run.
func NewRunner(bounds []int, eval func(lo, hi int)) *Runner {
	if len(bounds) < 2 {
		panic("sim: NewRunner needs at least one chunk")
	}
	if eval == nil {
		panic("sim: NewRunner needs an evaluation function")
	}
	return &Runner{bounds: bounds, eval: eval}
}

// Chunks returns the number of chunks (= worker goroutines).
func (r *Runner) Chunks() int { return len(r.bounds) - 1 }

// Run evaluates every chunk on the pool and blocks until all are done,
// lazily (re)starting the worker goroutines after construction or Close.
func (r *Runner) Run() {
	if r.jobs == nil {
		r.start()
	}
	n := r.Chunks()
	for c := 0; c < n; c++ {
		r.jobs <- c
	}
	for c := 0; c < n; c++ {
		<-r.done
	}
}

// start launches one goroutine per chunk. Run is only ever called from
// one goroutine at a time (the ODE solver), so no locking is needed. The
// workers capture the channels as locals: Close overwrites the struct
// fields, and a field read from a draining worker would race with it.
//
//pomvet:allow allocflow pool (re)start is a one-time warm-up; steady-state Run is alloc-free
func (r *Runner) start() {
	n := r.Chunks()
	jobs := make(chan int, n)
	done := make(chan struct{}, n)
	r.jobs, r.done = jobs, done
	for w := 0; w < n; w++ {
		go func() {
			for c := range jobs {
				r.eval(r.bounds[c], r.bounds[c+1])
				done <- struct{}{}
			}
		}()
	}
}

// Close stops the worker goroutines. It is safe to call repeatedly, and
// the pool restarts transparently if Run is called again afterwards.
func (r *Runner) Close() {
	if r.jobs != nil {
		close(r.jobs)
		r.jobs = nil
	}
}

// EvenChunks splits the row range [0, n) into `workers` contiguous chunks
// of (nearly) equal row count: bounds[c] = c·n/workers. This is the right
// chunking when every row costs the same. n ≤ 0 yields the single empty
// chunk [0, 0) rather than a divide-by-zero panic.
func EvenChunks(n, workers int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	bounds := make([]int, workers+1)
	for c := 0; c <= workers; c++ {
		bounds[c] = c * n / workers
	}
	return bounds
}

// WeightedChunks splits the row range [0, n) into `workers` contiguous
// chunks balanced by the CSR-style prefix array (prefix[i] is the
// cumulative weight of rows < i, so prefix has n+1 entries and
// prefix[i+1]−prefix[i] is row i's weight — topology.FlatNeighbors.RowPtr
// verbatim). Chunk c ends at the first row whose cumulative weight
// reaches (c+1)/workers of the total, so for irregular topologies every
// worker carries a near-equal share of the nonzeros instead of a
// near-equal share of the rows. With a uniform weight profile the bounds
// coincide with EvenChunks. The chunking only moves work between
// workers; per-row arithmetic is untouched, so results are bit-for-bit
// identical to even chunking (pinned by TestWeightedChunksBitwise).
func WeightedChunks(prefix []int32, workers int) []int {
	n := len(prefix) - 1
	if n <= 0 { // nil/empty prefix: one empty chunk, like EvenChunks
		return []int{0, 0}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	bounds := make([]int, workers+1)
	bounds[workers] = n
	total := int64(prefix[n] - prefix[0])
	if total <= 0 {
		// Degenerate (empty or all-empty-row) profile: fall back to even
		// row counts so no worker is starved by accident of the weights.
		return EvenChunks(n, workers)
	}
	b := 0
	for c := 1; c < workers; c++ {
		// bounds[c] is the smallest row index whose cumulative weight
		// covers c shares of the total, clamped so every chunk — before
		// and after this boundary — keeps at least one row (workers ≤ n).
		// The lower clamp must be strict against the previous bound: a
		// single hub row heavier than one share would otherwise leave the
		// cumulative weight past several targets at once and emit empty
		// chunks. Both clamps are always satisfiable because
		// bounds[c-1] ≤ n-(workers-c+1) implies bounds[c-1]+1 ≤ maxB.
		target := total * int64(c) / int64(workers)
		for b < n && int64(prefix[b]-prefix[0]) < target {
			b++
		}
		bc := b
		if bc <= bounds[c-1] {
			bc = bounds[c-1] + 1
		}
		if maxB := n - (workers - c); bc > maxB {
			bc = maxB
		}
		bounds[c] = bc
	}
	return bounds
}
