package sim

// Sink consumes the sample rows of a streaming integration in time order.
// RunStream drives a sink instead of materializing Result.Ys, so a sweep
// over many parameter points holds O(N) accumulator state per point
// rather than a full trajectory — the memory model that makes
// million-scenario batch sweeps feasible (see PERFORMANCE.md).
type Sink interface {
	// Begin is called once before the first sample with the state width n
	// and the total number of rows the run will emit.
	Begin(n, nSamples int)
	// Sample consumes one row: the state at time t. y is reused between
	// calls and must not be retained.
	Sample(t float64, y []float64)
}

// SinkFunc adapts a plain callback (e.g. a row writer) to the Sink
// interface with a no-op Begin.
type SinkFunc func(t float64, y []float64)

// Begin implements Sink.
func (SinkFunc) Begin(int, int) {}

// Sample implements Sink.
func (f SinkFunc) Sample(t float64, y []float64) { f(t, y) }

// multiSink fans one sample stream out to several sinks.
type multiSink []Sink

// Begin implements Sink.
func (ms multiSink) Begin(n, nSamples int) {
	for _, s := range ms {
		s.Begin(n, nSamples)
	}
}

// Sample implements Sink.
func (ms multiSink) Sample(t float64, y []float64) {
	for _, s := range ms {
		s.Sample(t, y)
	}
}

// Tee combines several sinks into one that replays every row to each, in
// order — the standard way to run multiple accumulators over one pass.
func Tee(sinks ...Sink) Sink { return multiSink(sinks) }
