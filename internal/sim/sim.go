package sim

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/ode"
)

// System is the common runtime contract of a dynamical model family: a
// fixed-dimension state, an initial condition, and a right-hand side.
// A System is integrated by Run or RunStream; it is not required to be
// safe for concurrent use (sweeps build one System per point).
type System interface {
	// Dim returns the state dimension N.
	Dim() int
	// InitialState returns y(0). The runtime copies it before integrating,
	// so implementations may return an internal slice.
	InitialState() []float64
	// Eval writes the right-hand side dy/dt at (t, y) into dydt. Both
	// slices have length Dim; implementations must not retain them.
	Eval(t float64, y, dydt []float64)
}

// Delayed is implemented by systems whose right-hand side reads the
// solution history (delay differential equations). When MaxDelay returns
// a positive value the runtime integrates with the DDE driver and calls
// EvalDelayed instead of Eval.
type Delayed interface {
	System
	// MaxDelay bounds the largest delay the right-hand side will request;
	// 0 or negative selects the plain ODE path.
	MaxDelay() float64
	// EvalDelayed is Eval with access to the dense-output history.
	EvalDelayed(t float64, y []float64, past ode.Past, dydt []float64)
}

// Solver carries the per-system solver settings.
type Solver struct {
	// Atol and Rtol are the error tolerances; 0 selects 1e-8 / 1e-6.
	Atol, Rtol float64
	// Hmax caps the step size; 0 means no cap beyond the interval.
	Hmax float64
}

// Tuned is implemented by systems that override the default solver
// settings (the POM caps the step at a quarter period so piecewise-
// constant noise cells are never stepped over).
type Tuned interface {
	Solver() Solver
}

// Releaser is implemented by systems that hold resources — worker pools,
// scratch arenas — which should be returned when an integration finishes.
// Run and RunStream call Release exactly once per invocation, on success
// and on error alike, so a System dropped after a run leaks nothing even
// without an explicit close (sweeps build thousands of systems).
type Releaser interface {
	Release()
}

// Result is a completed, materialized integration: the trajectory rows
// plus the solver work statistics.
type Result struct {
	// Ts are the sample times.
	Ts []float64
	// Ys[k] is the state at Ts[k].
	Ys [][]float64
	// Stats reports the solver work.
	Stats ode.Stats
}

// Run integrates the system from t = 0 to tEnd, materializing nSamples
// uniform samples (both endpoints included).
func Run(sys System, tEnd float64, nSamples int) (*Result, error) {
	res, err := integrate(sys, tEnd, nSamples, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Ts: res.Ts, Ys: res.Ys, Stats: res.Stats}, nil
}

// release returns the system's resources if it participates in the
// Releaser contract.
func release(sys System) {
	if r, ok := sys.(Releaser); ok {
		r.Release()
	}
}

// RunStream integrates the system like Run but emits the nSamples uniform
// sample rows to sink as they are produced instead of materializing them:
// the run's memory is independent of nSamples, which is what makes
// million-point sweeps with per-point trajectories feasible. The rows
// streamed to the sink are bit-for-bit the rows Run would store.
func RunStream(sys System, tEnd float64, nSamples int, sink Sink) (ode.Stats, error) {
	if sink == nil {
		release(sys)
		return ode.Stats{}, errors.New("sim: nil sink")
	}
	if tEnd <= 0 {
		release(sys)
		return ode.Stats{}, errors.New("sim: tEnd must be positive")
	}
	if nSamples < 2 {
		nSamples = 2
	}
	sink.Begin(sys.Dim(), nSamples)
	res, err := integrate(sys, tEnd, nSamples, sink.Sample)
	if err != nil {
		return ode.Stats{}, err
	}
	return res.Stats, nil
}

// integrate runs the solver over [0, tEnd] with nSamples uniform samples.
// A nil sample callback materializes the trajectory in the result; a
// non-nil callback receives each row as it is produced (from a reused
// buffer) and the result carries only the work statistics. The two paths
// produce bitwise-identical sample times and rows.
func integrate(sys System, tEnd float64, nSamples int, sample func(t float64, y []float64)) (*ode.Result, error) {
	// Registered before any validation: the Releaser contract promises a
	// Release per invocation on every path, including argument errors — a
	// pooled system rejected by a bad tEnd inside a sweep loop must not
	// leak its worker goroutines.
	defer release(sys)
	if tEnd <= 0 {
		return nil, errors.New("sim: tEnd must be positive")
	}
	if nSamples < 2 {
		nSamples = 2
	}
	var sv Solver
	if t, ok := sys.(Tuned); ok {
		sv = t.Solver()
	}
	if sv.Atol == 0 {
		sv.Atol = 1e-8
	}
	if sv.Rtol == 0 {
		sv.Rtol = 1e-6
	}
	solver := ode.NewDOPRI5(sv.Atol, sv.Rtol)
	solver.Hmax = sv.Hmax
	// Materialized runs hand the solver the explicit Linspace grid (it
	// sizes the output arena); streaming runs use the equivalent virtual
	// plan so the run allocates nothing proportional to nSamples. The two
	// produce bitwise-identical sample times.
	var samples []float64
	sampleAt := func(k int) float64 { return 0 }
	if sample == nil {
		samples = mathx.Linspace(0, tEnd, nSamples)
	} else {
		step := tEnd / float64(nSamples-1)
		last := nSamples - 1
		sampleAt = func(k int) float64 {
			if k == last {
				return tEnd // avoid accumulated rounding, like Linspace
			}
			return float64(k) * step
		}
	}
	y0 := append([]float64(nil), sys.InitialState()...)
	if len(y0) != sys.Dim() {
		return nil, fmt.Errorf("sim: initial state has %d entries, system dimension is %d", len(y0), sys.Dim())
	}

	var res *ode.Result
	var err error
	if d, ok := sys.(Delayed); ok && d.MaxDelay() > 0 {
		res, err = solver.SolveDDE(
			d.EvalDelayed,
			y0, 0, tEnd,
			ode.DDEOptions{
				SampleTs: samples, SampleAt: sampleAt, NSamples: nSamples,
				SampleFunc: sample, MaxDelay: d.MaxDelay(),
			},
		)
	} else {
		res, err = solver.Solve(
			sys.Eval,
			y0, 0, tEnd,
			ode.SolveOptions{
				SampleTs: samples, SampleAt: sampleAt, NSamples: nSamples,
				SampleFunc: sample,
			},
		)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: integration failed: %w", err)
	}
	return res, nil
}
