package cluster

import (
	"math"
	"testing"

	"repro/internal/topology"
)

// engineAllocs returns the average allocation count of one full
// simulation (construction + run) of the given iteration count.
func engineAllocs(t *testing.T, iters int, msgBytes float64) float64 {
	t.Helper()
	tp, err := topology.NextNeighbor(16, true)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BulkSynchronous(tp, Workload{Seconds: 1e-3, Bytes: 1e6}, msgBytes, iters)
	if err != nil {
		t.Fatal(err)
	}
	mc := Meggie(2)
	var runErr error
	// Take the minimum over a few measurements: one-off runtime-internal
	// allocations (lazily grown size classes, GC bookkeeping) otherwise
	// show up as spurious ±1 noise on an exact comparison.
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		allocs := testing.AllocsPerRun(5, func() {
			sim, err := NewSim(mc, progs, Options{})
			if err != nil {
				runErr = err
				return
			}
			if _, err := sim.Run(); err != nil {
				runErr = err
			}
		})
		if allocs < best {
			best = allocs
		}
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return best
}

// TestEngineSteadyStateZeroAllocs asserts the pooled event engine's
// performance invariant: once warm (event heap at peak size, request and
// task free lists populated, trace storage reserved), additional
// iterations allocate nothing. It measures two runs that differ only in
// iteration count; the difference is the cost of the extra iterations.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name     string
		msgBytes float64
	}{
		{"eager", 1024},
		{"rendezvous", 1 << 20}, // above the 16 KiB eager threshold
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := engineAllocs(t, 50, tc.msgBytes)
			long := engineAllocs(t, 100, tc.msgBytes)
			perIter := (long - base) / 50
			if perIter != 0 {
				t.Fatalf("cluster engine allocates %v objects per iteration in steady state "+
					"(50 iters: %v allocs, 100 iters: %v allocs), want 0", perIter, base, long)
			}
		})
	}
}
