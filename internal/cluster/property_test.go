package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// randomMatchedPrograms builds a random but deadlock-free program set:
// a random symmetric stencil, random compute workloads, random message
// sizes spanning the eager/rendezvous boundary.
func randomMatchedPrograms(rng *stats.RNG) ([]Program, *topology.Topology) {
	n := 4 + rng.Intn(12)
	offsets := []int{-1, 1}
	if rng.Float64() < 0.4 && n > 5 {
		offsets = append(offsets, -2, 2)
	}
	tp, err := topology.Stencil(n, offsets, rng.Float64() < 0.5)
	if err != nil {
		panic(err)
	}
	msg := float64(int64(64) << rng.Intn(12)) // 64 B … 128 KiB: crosses the eager cutoff
	work := Workload{
		Seconds: 1e-4 + rng.Float64()*1e-3,
		Bytes:   rng.Float64() * 2e7,
	}
	iters := 5 + rng.Intn(20)
	progs, err := BulkSynchronous(tp, work, msg, iters)
	if err != nil {
		panic(err)
	}
	return progs, tp
}

// TestPropertyRandomProgramsComplete fuzzes the engine: every random
// matched bulk-synchronous program must complete without deadlock, with a
// structurally valid trace and all iterations accounted for.
func TestPropertyRandomProgramsComplete(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		progs, _ := randomMatchedPrograms(rng)
		opts := Options{}
		if rng.Float64() < 0.5 {
			opts.Delays = []DelayInjection{{
				Rank:  rng.Intn(len(progs)),
				Iter:  rng.Intn(progs[0].Iters),
				Extra: rng.Float64() * 0.01,
			}}
		}
		sim, err := NewSim(testMachine(), progs, opts)
		if err != nil {
			t.Logf("seed %d: NewSim: %v", seed, err)
			return false
		}
		res, err := sim.Run()
		if err != nil {
			t.Logf("seed %d: Run: %v", seed, err)
			return false
		}
		if err := res.Trace.Validate(); err != nil {
			t.Logf("seed %d: trace invalid: %v", seed, err)
			return false
		}
		for r := range progs {
			if len(res.Trace.IterEnds[r]) != progs[r].Iters {
				t.Logf("seed %d: rank %d finished %d of %d iterations",
					seed, r, len(res.Trace.IterEnds[r]), progs[r].Iters)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyMakespanLowerBound: the makespan can never beat the serial
// compute time of the busiest rank at full speed.
func TestPropertyMakespanLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		progs, _ := randomMatchedPrograms(rng)
		sim, err := NewSim(testMachine(), progs, Options{})
		if err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		var maxSerial float64
		for _, p := range progs {
			var per float64
			for _, in := range p.Body {
				if c, ok := in.(Compute); ok {
					per += c.Seconds
				}
			}
			if s := per * float64(p.Iters); s > maxSerial {
				maxSerial = s
			}
		}
		return res.Makespan >= maxSerial-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySocketBytesConservation: the bytes a socket processes must
// equal the total memory traffic of the ranks placed on it.
func TestPropertySocketBytesConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		progs, _ := randomMatchedPrograms(rng)
		mc := testMachine()
		sim, err := NewSim(mc, progs, Options{})
		if err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		want := make([]float64, mc.Sockets)
		for r, p := range progs {
			var per float64
			for _, in := range p.Body {
				if c, ok := in.(Compute); ok {
					per += c.Bytes
				}
			}
			want[mc.SocketOf(r)] += per * float64(p.Iters)
		}
		for s := range want {
			if math.Abs(res.SocketBytes[s]-want[s]) > 1e-3*math.Max(want[s], 1) {
				t.Logf("seed %d: socket %d bytes %v, want %v",
					seed, s, res.SocketBytes[s], want[s])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDelayMonotone: in a contention-free (compute-bound) program
// injecting a delay can only increase the makespan. The restriction is
// essential — on a bandwidth-saturated socket a delay can desynchronize
// the compute phases, reduce contention, and *shorten* the run: the
// bottleneck-evasion effect of Afzal et al. (TPDS 2022), demonstrated in
// TestDelayCanImproveBottleneckedRun below.
func TestPropertyDelayMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		progs, _ := randomMatchedPrograms(rng)
		for r := range progs {
			for i, in := range progs[r].Body {
				if c, ok := in.(Compute); ok {
					c.Bytes = 0 // contention-free
					progs[r].Body[i] = c
				}
			}
		}
		run := func(opts Options) float64 {
			sim, err := NewSim(testMachine(), progs, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res.Makespan
		}
		base := run(Options{})
		delayed := run(Options{Delays: []DelayInjection{{
			Rank:  rng.Intn(len(progs)),
			Iter:  rng.Intn(progs[0].Iters),
			Extra: 0.005,
		}}})
		return delayed >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTraceCoversMakespan: every rank's spans must end at (or
// before) the makespan and the state timeline must account for nearly the
// whole run (compute + comm ≈ finish time of that rank).
func TestPropertyTraceCoversMakespan(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		progs, _ := randomMatchedPrograms(rng)
		sim, err := NewSim(testMachine(), progs, Options{})
		if err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		for r := range progs {
			spans := res.Trace.Spans[r]
			if len(spans) == 0 {
				return false
			}
			last := spans[len(spans)-1].End
			if last > res.Makespan+1e-9 {
				t.Logf("seed %d: rank %d spans exceed makespan", seed, r)
				return false
			}
			busy := res.Trace.TimeInState(r, trace.SpanCompute) +
				res.Trace.TimeInState(r, trace.SpanComm)
			// The timeline may have small gaps at instruction boundaries
			// but must cover the rank's active time within 1%.
			if busy > last+1e-9 || busy < 0.99*last-1e-9 {
				t.Logf("seed %d: rank %d busy %v of %v", seed, r, busy, last)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDelayCanImproveBottleneckedRun documents the bottleneck-evasion
// effect that makes the naive delay-monotonicity property false on
// saturated sockets: the fuzzer found seeds where an injected delay
// desynchronizes the compute phases, lowers the bandwidth contention, and
// finishes the run *earlier*. This is the paper's central motivation for
// the desynchronizing potential (and the subject of its companion paper
// "Making applications faster by asynchronous execution").
func TestDelayCanImproveBottleneckedRun(t *testing.T) {
	// The seed below reproduces the effect found by quick.Check.
	rng := stats.NewRNG(0x830fe623e56bfa9f)
	progs, _ := randomMatchedPrograms(rng)
	run := func(opts Options) float64 {
		sim, err := NewSim(testMachine(), progs, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	base := run(Options{})
	delayed := run(Options{Delays: []DelayInjection{{
		Rank:  rng.Intn(len(progs)),
		Iter:  rng.Intn(progs[0].Iters),
		Extra: 0.005,
	}}})
	if delayed >= base {
		t.Skipf("bottleneck evasion not reproduced on this configuration (base %v, delayed %v)",
			base, delayed)
	}
	t.Logf("bottleneck evasion: delay shortened the run %.6fs -> %.6fs", base, delayed)
}
