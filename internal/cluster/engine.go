package cluster

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/trace"
)

// evKind discriminates the scheduled simulation actions. Events carry
// their payload inline instead of a closure, so scheduling never
// allocates: the heap is a flat []event and the dispatch in Run is a
// switch.
type evKind uint8

const (
	// evResume unblocks rank and continues its interpreter.
	evResume evKind = iota
	// evDeliverEager delivers an eager payload on channel ch.
	evDeliverEager
	// evRendezvousDone completes req's transfer and resumes the blocked
	// sender rank.
	evRendezvousDone
	// evFinishCompute finishes task if its version still matches ver
	// (stale finish events superseded by a rebalance are skipped).
	evFinishCompute
)

// event is one scheduled simulation action, stored by value in the heap.
type event struct {
	t    float64
	seq  int64
	kind evKind
	rank *rankState
	req  *request
	task *computeTask
	ver  int64
	ch   int32
}

// eventHeap is a 4-ary min-heap of events ordered by (time, insertion
// sequence) for determinism. It is value-typed: push and pop move event
// structs within one backing array, with no per-event boxing and no
// interface{} round-trips.
//
// The (t, seq) key is a strict total order — seq is unique per event —
// so heap arity is pure memory layout: every correct min-heap pops the
// identical event sequence (pinned by TestEventHeapMatchesBinaryReference).
// The 4-ary node halves the tree depth, all four children are adjacent
// in memory, and both sifts move the hole instead of swapping — one
// 64-byte event copy per level rather than three. See PERFORMANCE.md
// for the measured events/s.
type eventHeap []event

//pomvet:allocfree
func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// lessEvent orders an out-of-array event against a stored one — the
// hole-based sifts compare the moving element without writing it back
// at every level.
//
//pomvet:allocfree
func lessEvent(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

//pomvet:allocfree
func (h *eventHeap) push(e event) {
	*h = append(*h, e) //pomvet:allow allocfree backing array is pre-sized by the engine; growth is amortized warm-up, and the AllocsPerRun pin proves the steady state
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !lessEvent(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = e
}

//pomvet:allocfree
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	e := q[n]      // the displaced tail event, sifted down from the root
	q[n] = event{} // clear pointers for the GC
	q = q[:n]
	*h = q
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		small := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, small) {
				small = c
			}
		}
		if !lessEvent(q[small], e) {
			break
		}
		q[i] = q[small]
		i = small
	}
	if n > 0 {
		q[i] = e
	}
	return top
}

// DelayInjection adds extra scalar work to one rank in one iteration —
// the paper's one-off disturbance that launches an idle wave.
type DelayInjection struct {
	// Rank is the disturbed rank.
	Rank int
	// Iter is the zero-based iteration receiving the extra work.
	Iter int
	// Extra is the additional nominal compute time (s).
	Extra float64
}

// Options configures a simulation run.
type Options struct {
	// Delays lists one-off delay injections.
	Delays []DelayInjection
	// ComputeNoise, when non-nil, returns extra nominal compute seconds
	// for (rank, iteration) — fine-grained system noise. It must be
	// deterministic.
	ComputeNoise func(rank, iter int) float64
	// MaxTime aborts runs exceeding this simulated time (0 = 1e9 s).
	MaxTime float64
}

// Result is a completed simulation.
type Result struct {
	// Trace is the full execution record.
	Trace *trace.Trace
	// Makespan is the completion time of the slowest rank.
	Makespan float64
	// SocketBytes[s] is the memory traffic socket s processed.
	SocketBytes []float64
	// Events counts processed simulation events.
	Events int
}

// AggregateBandwidth returns the average memory bandwidth of socket s over
// the run (bytes/s).
func (r *Result) AggregateBandwidth(s int) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.SocketBytes[s] / r.Makespan
}

// request is a posted non-blocking receive. Requests are recycled through
// the simulator's free list once retired by a Wait/Waitall.
type request struct {
	owner *rankState
	done  bool
}

// channel carries messages between one ordered rank pair, FIFO. The
// ordered pairs are static (every Send/Irecv target is literal in the
// program bodies), so NewSim packs the used pairs into a CSR-style edge
// array — O(edges) memory instead of a map or an O(n²) dense matrix —
// and lookup is a binary search over a rank's few partners. The queue
// slices keep their capacity across iterations (pops shift in place).
type channel struct {
	// arrived holds eager payload arrival times not yet matched.
	arrived []float64
	// recvs holds posted, unmatched receive requests.
	recvs []*request
	// sends holds blocked rendezvous senders (with message size).
	sends []rendezvousSend
}

// rendezvousSend is a sender blocked in the handshake.
type rendezvousSend struct {
	r     *rankState
	bytes float64
}

// computeTask is a running compute phase on a socket. Tasks are recycled
// through the simulator's free list; version survives recycling so stale
// finish events can never match a reused task.
type computeTask struct {
	r          *rankState
	remaining  float64 // nominal seconds left
	demand     float64 // bytes/s while running at nominal speed
	rate       float64 // current progress rate in (0, 1]
	lastUpdate float64
	version    int64
}

// socketState tracks the compute tasks sharing one socket's bandwidth.
type socketState struct {
	tasks     []*computeTask
	bytesDone float64
}

// rankState is one simulated MPI process.
type rankState struct {
	id         int
	prog       Program
	pc         int
	iter       int
	pending    []*request
	waiting    bool // blocked in Waitall
	waitingOne bool // blocked in Wait (oldest request)
	inBarrier  bool
	done       bool
	blockStart float64
	blockKind  trace.SpanKind
}

// Sim is the discrete-event simulator state.
type Sim struct {
	mc             MachineConfig
	opts           Options
	now            float64
	seq            int64
	events         eventHeap
	ranks          []*rankState
	sockets        []*socketState
	chanStart      []int32   // per-from-rank offsets into chanTo/chans
	chanTo         []int32   // destination rank of each edge, sorted per from
	chans          []channel // one per used ordered (from, to) pair
	tr             *trace.Trace
	barrier        []*rankState
	allreduce      []*rankState
	allreduceBytes float64
	nEvents        int
	delays         map[[2]int]float64
	makespan       float64

	// Free lists and scratch keeping the steady-state event loop
	// allocation-free.
	freeReqs  []*request
	freeTasks []*computeTask
	order     []*computeTask // rebalanceSocket sort scratch
}

// NewSim validates inputs and builds a simulator for the given per-rank
// programs. len(progs) ranks are placed block-wise onto the machine's
// sockets; the machine must have enough cores.
func NewSim(mc MachineConfig, progs []Program, opts Options) (*Sim, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	n := len(progs)
	if n < 1 {
		return nil, errors.New("cluster: no programs")
	}
	if n > mc.Cores() {
		return nil, fmt.Errorf("cluster: %d ranks exceed %d cores", n, mc.Cores())
	}
	s := &Sim{
		mc:     mc,
		opts:   opts,
		tr:     trace.NewTrace(n),
		delays: make(map[[2]int]float64),
	}
	s.buildChannels(progs)
	for _, d := range opts.Delays {
		if d.Rank < 0 || d.Rank >= n {
			return nil, fmt.Errorf("cluster: delay rank %d out of range", d.Rank)
		}
		s.delays[[2]int{d.Rank, d.Iter}] += d.Extra
	}
	s.ranks = make([]*rankState, n)
	for i := range s.ranks {
		if progs[i].Iters < 1 || len(progs[i].Body) == 0 {
			return nil, fmt.Errorf("cluster: rank %d has an empty program", i)
		}
		s.ranks[i] = &rankState{id: i, prog: progs[i]}
		// Pre-size the trace so recording in the event loop never grows a
		// slice: at most one span per instruction per iteration (merging
		// only reduces the count) and one mark per iteration.
		s.tr.Reserve(i, progs[i].Iters*(len(progs[i].Body)+1)+1, progs[i].Iters)
	}
	s.sockets = make([]*socketState, mc.Sockets)
	for i := range s.sockets {
		s.sockets[i] = &socketState{}
	}
	s.barrier = make([]*rankState, 0, n)
	s.allreduce = make([]*rankState, 0, n)
	return s, nil
}

// scheduleResume enqueues an unblock of r at time t.
func (s *Sim) scheduleResume(t float64, r *rankState) {
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: evResume, rank: r})
}

// scheduleEager enqueues an eager payload delivery on channel ci at t.
func (s *Sim) scheduleEager(t float64, ci int32) {
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: evDeliverEager, ch: ci})
}

// scheduleRendezvousDone enqueues the completion of req's transfer and
// the resumption of the blocked sender at t.
func (s *Sim) scheduleRendezvousDone(t float64, req *request, sender *rankState) {
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: evRendezvousDone, req: req, rank: sender})
}

// scheduleFinish enqueues task's completion at t, tagged with its current
// version so a later rebalance invalidates it.
func (s *Sim) scheduleFinish(t float64, task *computeTask) {
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: evFinishCompute, task: task, ver: task.version})
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	maxTime := s.opts.MaxTime
	if maxTime <= 0 {
		maxTime = 1e9
	}
	for _, r := range s.ranks {
		s.step(r)
	}
	for len(s.events) > 0 {
		e := s.events.pop()
		if e.t < s.now-1e-9 {
			return nil, fmt.Errorf("cluster: time went backwards (%g after %g)", e.t, s.now)
		}
		if e.t > s.now {
			s.now = e.t
		}
		if s.now > maxTime {
			return nil, fmt.Errorf("cluster: exceeded MaxTime %g", maxTime)
		}
		s.nEvents++
		switch e.kind {
		case evResume:
			s.resume(e.rank)
		case evDeliverEager:
			s.deliverEager(&s.chans[e.ch])
		case evRendezvousDone:
			s.completeRequest(e.req)
			s.resume(e.rank)
		case evFinishCompute:
			if e.task.version == e.ver {
				s.finishCompute(e.task)
			}
		}
	}
	for _, r := range s.ranks {
		if !r.done {
			return nil, fmt.Errorf("cluster: deadlock — rank %d blocked at t=%g (pc=%d iter=%d)",
				r.id, s.now, r.pc, r.iter)
		}
	}
	res := &Result{
		Trace:       s.tr,
		Makespan:    s.makespan,
		SocketBytes: make([]float64, len(s.sockets)),
		Events:      s.nEvents,
	}
	for i, sock := range s.sockets {
		res.SocketBytes[i] = sock.bytesDone
	}
	if err := s.tr.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// --- object pools ------------------------------------------------------

// newRequest takes a request from the free list (or allocates one) and
// initializes it for owner.
func (s *Sim) newRequest(owner *rankState) *request {
	if n := len(s.freeReqs); n > 0 {
		q := s.freeReqs[n-1]
		s.freeReqs = s.freeReqs[:n-1]
		q.owner, q.done = owner, false
		return q
	}
	return &request{owner: owner}
}

// freeRequest recycles a retired request. No event may reference it
// afterwards (the rendezvous completion event fires before a request can
// be retired by Wait/Waitall).
func (s *Sim) freeRequest(q *request) {
	q.owner = nil
	s.freeReqs = append(s.freeReqs, q)
}

// newTask takes a compute task from the free list (or allocates one). The
// version counter survives recycling, so finish events scheduled against
// a previous incarnation can never match.
func (s *Sim) newTask() *computeTask {
	if n := len(s.freeTasks); n > 0 {
		t := s.freeTasks[n-1]
		s.freeTasks = s.freeTasks[:n-1]
		return t
	}
	return &computeTask{}
}

// freeTask invalidates outstanding finish events and recycles the task.
func (s *Sim) freeTask(t *computeTask) {
	t.version++
	t.r = nil
	s.freeTasks = append(s.freeTasks, t)
}

// step runs rank r's interpreter from its current position until the rank
// blocks or finishes.
func (s *Sim) step(r *rankState) {
	for !r.done {
		if r.pc == len(r.prog.Body) {
			r.pc = 0
			r.iter++
			s.tr.MarkIterEnd(r.id, s.now)
			if r.iter >= r.prog.Iters {
				r.done = true
				if s.now > s.makespan {
					s.makespan = s.now
				}
				return
			}
		}
		switch in := r.prog.Body[r.pc].(type) {
		case Compute:
			s.startCompute(r, in)
			return
		case Send:
			if !s.startSend(r, in) {
				return // blocked (rendezvous handshake or eager overhead)
			}
		case Irecv:
			s.postIrecv(r, in)
			r.pc++
		case Waitall:
			if !s.tryCompleteWaitall(r) {
				return
			}
		case Wait:
			if !s.tryCompleteWait(r) {
				return
			}
		case Barrier:
			s.enterBarrier(r)
			return
		case Allreduce:
			s.enterAllreduce(r, in.Bytes)
			return
		default:
			panic(fmt.Sprintf("cluster: unknown instruction %T", r.prog.Body[r.pc]))
		}
	}
}

// resume records the blocked span and continues the rank past the
// instruction at pc.
func (s *Sim) resume(r *rankState) {
	s.tr.Record(r.id, r.blockKind, r.blockStart, s.now)
	r.pc++
	s.step(r)
}

// block marks r blocked on the current instruction.
func (s *Sim) block(r *rankState, kind trace.SpanKind) {
	r.blockStart = s.now
	r.blockKind = kind
}

// --- compute handling -------------------------------------------------

// startCompute begins a compute phase for r on its socket.
func (s *Sim) startCompute(r *rankState, in Compute) {
	dur := in.Seconds
	if extra, ok := s.delays[[2]int{r.id, r.iter}]; ok {
		dur += extra
	}
	if s.opts.ComputeNoise != nil {
		dur += s.opts.ComputeNoise(r.id, r.iter)
	}
	if dur <= 0 {
		dur = 1e-12
	}
	task := s.newTask()
	task.r = r
	task.remaining = dur
	task.demand = in.Bytes / dur
	task.rate = 1
	task.lastUpdate = s.now
	s.block(r, trace.SpanCompute)
	sock := s.sockets[s.mc.SocketOf(r.id)]
	s.advanceSocket(sock)
	sock.tasks = append(sock.tasks, task)
	s.rebalanceSocket(sock)
}

// advanceSocket accrues progress of all running tasks up to now.
func (s *Sim) advanceSocket(sock *socketState) {
	for _, t := range sock.tasks {
		dt := s.now - t.lastUpdate
		if dt > 0 {
			t.remaining -= dt * t.rate
			if t.remaining < 0 {
				t.remaining = 0
			}
			sock.bytesDone += t.demand * t.rate * dt
			t.lastUpdate = s.now
		}
	}
}

// rebalanceSocket recomputes max-min fair rates and reschedules finish
// events. Callers must advanceSocket first.
func (s *Sim) rebalanceSocket(sock *socketState) {
	if len(sock.tasks) == 0 {
		return
	}
	// Max-min fair bandwidth allocation (water-filling) over the tasks in
	// ascending demand order. The scratch slice and the in-place stable
	// insertion sort avoid sort.SliceStable's per-call closure and
	// reflection swaps; sockets host at most a few dozen tasks.
	order := append(s.order[:0], sock.tasks...)
	s.order = order
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].demand < order[j-1].demand; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	remB := s.mc.SocketBandwidth
	remK := len(order)
	for _, t := range order {
		share := remB / float64(remK)
		if t.demand <= share {
			t.rate = 1
			remB -= t.demand
		} else {
			t.rate = share / t.demand
			remB -= share
		}
		remK--
	}
	// Reschedule finish events with version-based cancellation.
	for _, t := range order {
		t.version++
		s.scheduleFinish(s.now+t.remaining/t.rate, t)
	}
}

// finishCompute completes a task and resumes its rank.
func (s *Sim) finishCompute(task *computeTask) {
	sock := s.sockets[s.mc.SocketOf(task.r.id)]
	s.advanceSocket(sock)
	for i, t := range sock.tasks {
		if t == task {
			sock.tasks = append(sock.tasks[:i], sock.tasks[i+1:]...)
			break
		}
	}
	s.rebalanceSocket(sock)
	r := task.r
	s.freeTask(task)
	s.resume(r)
}

// --- communication handling -------------------------------------------

// buildChannels packs the ordered (from, to) pairs the programs can use
// into the CSR-style edge arrays. Targets are literal in the instruction
// stream, so the set is complete; out-of-range targets are left to the
// interpreter's panics.
func (s *Sim) buildChannels(progs []Program) {
	n := len(progs)
	dests := make([][]int32, n)
	add := func(from, to int) {
		if from >= 0 && from < n && to >= 0 && to < n && from != to {
			dests[from] = append(dests[from], int32(to))
		}
	}
	for r, pg := range progs {
		for _, in := range pg.Body {
			switch v := in.(type) {
			case Send:
				add(r, v.To)
			case Irecv:
				add(v.From, r)
			}
		}
	}
	s.chanStart = make([]int32, n+1)
	for from, ds := range dests {
		slices.Sort(ds)
		ds = slices.Compact(ds)
		dests[from] = ds
		s.chanStart[from+1] = s.chanStart[from] + int32(len(ds))
	}
	edges := int(s.chanStart[n])
	s.chanTo = make([]int32, 0, edges)
	for _, ds := range dests {
		s.chanTo = append(s.chanTo, ds...)
	}
	s.chans = make([]channel, edges)
}

// chanIdx returns the edge index of the ordered (from, to) channel via a
// binary search over from's sorted partner list.
func (s *Sim) chanIdx(from, to int) int32 {
	lo, hi := s.chanStart[from], s.chanStart[from+1]
	t := int32(to)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.chanTo[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.chanStart[from+1] && s.chanTo[lo] == t {
		return lo
	}
	panic(fmt.Sprintf("cluster: no channel %d -> %d declared by the programs", from, to))
}

// transferTime returns latency + size/bandwidth for a message between the
// given ranks, using the faster intra-node parameters when both ranks
// share a node.
func (s *Sim) transferTime(from, to int, bytes float64) float64 {
	lat, bw := s.mc.NetLatency, s.mc.NetBandwidth
	if s.mc.SameNode(from, to) {
		if s.mc.IntraNodeLatency > 0 {
			lat = s.mc.IntraNodeLatency
		}
		if s.mc.IntraNodeBandwidth > 0 {
			bw = s.mc.IntraNodeBandwidth
		}
	}
	return lat + bytes/bw
}

// interNodeTransferTime is the worst-case (network) transfer time, used
// for collectives that necessarily cross nodes.
func (s *Sim) interNodeTransferTime(bytes float64) float64 {
	return s.mc.NetLatency + bytes/s.mc.NetBandwidth
}

// popFront removes and returns the oldest element of a FIFO queue,
// shifting in place so the slice keeps its capacity across iterations
// and zeroing the vacated slot so pooled pointers don't linger.
func popFront[T any](q *[]T) T {
	v := (*q)[0]
	copy(*q, (*q)[1:])
	last := len(*q) - 1
	var zero T
	(*q)[last] = zero
	*q = (*q)[:last]
	return v
}

// startSend executes a Send. It returns true when the instruction
// completed synchronously (never: both protocols block at least briefly),
// false when the rank blocked.
func (s *Sim) startSend(r *rankState, in Send) bool {
	if in.To < 0 || in.To >= len(s.ranks) || in.To == r.id {
		panic(fmt.Sprintf("cluster: rank %d sends to invalid rank %d", r.id, in.To))
	}
	ci := s.chanIdx(r.id, in.To)
	c := &s.chans[ci]
	if in.Bytes <= s.mc.EagerThreshold {
		// Eager: payload is shipped immediately; the sender only pays the
		// posting overhead.
		s.scheduleEager(s.now+s.transferTime(r.id, in.To, in.Bytes), ci)
		s.block(r, trace.SpanComm)
		s.scheduleResume(s.now+s.mc.SendOverhead, r)
		return false
	}
	// Rendezvous: wait for a matching posted receive, then transfer.
	s.block(r, trace.SpanComm)
	if len(c.recvs) > 0 {
		req := popFront(&c.recvs)
		s.scheduleRendezvousDone(s.now+s.transferTime(r.id, in.To, in.Bytes), req, r)
	} else {
		c.sends = append(c.sends, rendezvousSend{r: r, bytes: in.Bytes})
	}
	return false
}

// deliverEager handles an eager payload arriving at the receiver.
func (s *Sim) deliverEager(c *channel) {
	if len(c.recvs) > 0 {
		req := popFront(&c.recvs)
		s.completeRequest(req)
		return
	}
	c.arrived = append(c.arrived, s.now)
}

// postIrecv posts a non-blocking receive for r.
func (s *Sim) postIrecv(r *rankState, in Irecv) {
	if in.From < 0 || in.From >= len(s.ranks) || in.From == r.id {
		panic(fmt.Sprintf("cluster: rank %d receives from invalid rank %d", r.id, in.From))
	}
	req := s.newRequest(r)
	r.pending = append(r.pending, req)
	c := &s.chans[s.chanIdx(in.From, r.id)]
	switch {
	case len(c.arrived) > 0:
		// Eager payload already here: completes immediately.
		popFront(&c.arrived)
		req.done = true
	case len(c.sends) > 0:
		// A rendezvous sender is blocked on us: start the transfer now.
		snd := popFront(&c.sends)
		s.scheduleRendezvousDone(s.now+s.transferTime(in.From, r.id, snd.bytes), req, snd.r)
	default:
		c.recvs = append(c.recvs, req)
	}
}

// completeRequest marks a receive done and wakes its owner if the owner
// was blocked in Waitall (all requests complete) or Wait (oldest request
// complete).
func (s *Sim) completeRequest(req *request) {
	req.done = true
	r := req.owner
	switch {
	case r.waiting && allDone(r.pending):
		r.waiting = false
		s.retireAll(r)
		s.resume(r)
	case r.waitingOne && len(r.pending) > 0 && r.pending[0].done:
		r.waitingOne = false
		s.freeRequest(popFront(&r.pending))
		s.resume(r)
	}
}

// retireAll recycles every (completed) pending request of r.
func (s *Sim) retireAll(r *rankState) {
	for _, q := range r.pending {
		s.freeRequest(q)
	}
	r.pending = r.pending[:0]
}

// tryCompleteWaitall returns true when all requests are already complete
// (Waitall falls through); otherwise it blocks the rank.
func (s *Sim) tryCompleteWaitall(r *rankState) bool {
	if allDone(r.pending) {
		s.retireAll(r)
		r.pc++
		return true
	}
	r.waiting = true
	s.block(r, trace.SpanComm)
	return false
}

// tryCompleteWait handles the single-request MPI_Wait: retire the oldest
// request if complete, otherwise block until it is. An MPI_Wait with no
// outstanding request is a no-op (matching MPI_REQUEST_NULL semantics).
func (s *Sim) tryCompleteWait(r *rankState) bool {
	if len(r.pending) == 0 {
		r.pc++
		return true
	}
	if r.pending[0].done {
		s.freeRequest(popFront(&r.pending))
		r.pc++
		return true
	}
	r.waitingOne = true
	s.block(r, trace.SpanComm)
	return false
}

func allDone(reqs []*request) bool {
	for _, q := range reqs {
		if !q.done {
			return false
		}
	}
	return true
}

// enterBarrier blocks r until every rank has arrived.
func (s *Sim) enterBarrier(r *rankState) {
	s.block(r, trace.SpanComm)
	r.inBarrier = true
	s.barrier = append(s.barrier, r)
	if len(s.barrier) == len(s.ranks) {
		release := s.now + s.mc.NetLatency
		for _, w := range s.barrier {
			w.inBarrier = false
			s.scheduleResume(release, w)
		}
		s.barrier = s.barrier[:0]
	}
}

// enterAllreduce blocks r until every rank has contributed, then releases
// all of them after the reduce+broadcast tree cost
// 2·⌈log₂N⌉·(latency + bytes/bandwidth).
func (s *Sim) enterAllreduce(r *rankState, bytes float64) {
	s.block(r, trace.SpanComm)
	s.allreduce = append(s.allreduce, r)
	if bytes > s.allreduceBytes {
		s.allreduceBytes = bytes
	}
	if len(s.allreduce) == len(s.ranks) {
		depth := 0
		for 1<<depth < len(s.ranks) {
			depth++
		}
		cost := 2 * float64(depth) * s.interNodeTransferTime(s.allreduceBytes)
		release := s.now + cost
		for _, w := range s.allreduce {
			s.scheduleResume(release, w)
		}
		s.allreduce = s.allreduce[:0]
		s.allreduceBytes = 0
	}
}
