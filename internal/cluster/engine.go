package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// event is one scheduled simulation action.
type event struct {
	t   float64
	seq int64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence) for determinism.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// DelayInjection adds extra scalar work to one rank in one iteration —
// the paper's one-off disturbance that launches an idle wave.
type DelayInjection struct {
	// Rank is the disturbed rank.
	Rank int
	// Iter is the zero-based iteration receiving the extra work.
	Iter int
	// Extra is the additional nominal compute time (s).
	Extra float64
}

// Options configures a simulation run.
type Options struct {
	// Delays lists one-off delay injections.
	Delays []DelayInjection
	// ComputeNoise, when non-nil, returns extra nominal compute seconds
	// for (rank, iteration) — fine-grained system noise. It must be
	// deterministic.
	ComputeNoise func(rank, iter int) float64
	// MaxTime aborts runs exceeding this simulated time (0 = 1e9 s).
	MaxTime float64
}

// Result is a completed simulation.
type Result struct {
	// Trace is the full execution record.
	Trace *trace.Trace
	// Makespan is the completion time of the slowest rank.
	Makespan float64
	// SocketBytes[s] is the memory traffic socket s processed.
	SocketBytes []float64
	// Events counts processed simulation events.
	Events int
}

// AggregateBandwidth returns the average memory bandwidth of socket s over
// the run (bytes/s).
func (r *Result) AggregateBandwidth(s int) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.SocketBytes[s] / r.Makespan
}

// request is a posted non-blocking receive.
type request struct {
	owner *rankState
	done  bool
}

// chanKey identifies the ordered (from, to) message channel.
type chanKey struct{ from, to int }

// channel carries messages between one ordered rank pair, FIFO.
type channel struct {
	// arrived holds eager payload arrival times not yet matched.
	arrived []float64
	// recvs holds posted, unmatched receive requests.
	recvs []*request
	// sends holds blocked rendezvous senders (with message size).
	sends []*rendezvousSend
}

// rendezvousSend is a sender blocked in the handshake.
type rendezvousSend struct {
	r     *rankState
	bytes float64
}

// computeTask is a running compute phase on a socket.
type computeTask struct {
	r          *rankState
	remaining  float64 // nominal seconds left
	demand     float64 // bytes/s while running at nominal speed
	rate       float64 // current progress rate in (0, 1]
	lastUpdate float64
	version    int64
}

// socketState tracks the compute tasks sharing one socket's bandwidth.
type socketState struct {
	tasks     []*computeTask
	bytesDone float64
}

// rankState is one simulated MPI process.
type rankState struct {
	id         int
	prog       Program
	pc         int
	iter       int
	pending    []*request
	waiting    bool // blocked in Waitall
	waitingOne bool // blocked in Wait (oldest request)
	inBarrier  bool
	done       bool
	blockStart float64
	blockKind  trace.SpanKind
}

// Sim is the discrete-event simulator state.
type Sim struct {
	mc             MachineConfig
	opts           Options
	now            float64
	seq            int64
	events         eventHeap
	ranks          []*rankState
	sockets        []*socketState
	chans          map[chanKey]*channel
	tr             *trace.Trace
	barrier        []*rankState
	allreduce      []*rankState
	allreduceBytes float64
	nEvents        int
	delays         map[[2]int]float64
	makespan       float64
}

// NewSim validates inputs and builds a simulator for the given per-rank
// programs. len(progs) ranks are placed block-wise onto the machine's
// sockets; the machine must have enough cores.
func NewSim(mc MachineConfig, progs []Program, opts Options) (*Sim, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	n := len(progs)
	if n < 1 {
		return nil, errors.New("cluster: no programs")
	}
	if n > mc.Cores() {
		return nil, fmt.Errorf("cluster: %d ranks exceed %d cores", n, mc.Cores())
	}
	s := &Sim{
		mc:     mc,
		opts:   opts,
		chans:  make(map[chanKey]*channel),
		tr:     trace.NewTrace(n),
		delays: make(map[[2]int]float64),
	}
	for _, d := range opts.Delays {
		if d.Rank < 0 || d.Rank >= n {
			return nil, fmt.Errorf("cluster: delay rank %d out of range", d.Rank)
		}
		s.delays[[2]int{d.Rank, d.Iter}] += d.Extra
	}
	s.ranks = make([]*rankState, n)
	for i := range s.ranks {
		if progs[i].Iters < 1 || len(progs[i].Body) == 0 {
			return nil, fmt.Errorf("cluster: rank %d has an empty program", i)
		}
		s.ranks[i] = &rankState{id: i, prog: progs[i]}
	}
	s.sockets = make([]*socketState, mc.Sockets)
	for i := range s.sockets {
		s.sockets[i] = &socketState{}
	}
	return s, nil
}

// schedule enqueues fn at time t.
func (s *Sim) schedule(t float64, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{t: t, seq: s.seq, fn: fn})
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	maxTime := s.opts.MaxTime
	if maxTime <= 0 {
		maxTime = 1e9
	}
	for _, r := range s.ranks {
		s.step(r)
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.t < s.now-1e-9 {
			return nil, fmt.Errorf("cluster: time went backwards (%g after %g)", e.t, s.now)
		}
		if e.t > s.now {
			s.now = e.t
		}
		if s.now > maxTime {
			return nil, fmt.Errorf("cluster: exceeded MaxTime %g", maxTime)
		}
		s.nEvents++
		e.fn()
	}
	for _, r := range s.ranks {
		if !r.done {
			return nil, fmt.Errorf("cluster: deadlock — rank %d blocked at t=%g (pc=%d iter=%d)",
				r.id, s.now, r.pc, r.iter)
		}
	}
	res := &Result{
		Trace:       s.tr,
		Makespan:    s.makespan,
		SocketBytes: make([]float64, len(s.sockets)),
		Events:      s.nEvents,
	}
	for i, sock := range s.sockets {
		res.SocketBytes[i] = sock.bytesDone
	}
	if err := s.tr.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// step runs rank r's interpreter from its current position until the rank
// blocks or finishes.
func (s *Sim) step(r *rankState) {
	for !r.done {
		if r.pc == len(r.prog.Body) {
			r.pc = 0
			r.iter++
			s.tr.MarkIterEnd(r.id, s.now)
			if r.iter >= r.prog.Iters {
				r.done = true
				if s.now > s.makespan {
					s.makespan = s.now
				}
				return
			}
		}
		switch in := r.prog.Body[r.pc].(type) {
		case Compute:
			s.startCompute(r, in)
			return
		case Send:
			if !s.startSend(r, in) {
				return // blocked (rendezvous handshake or eager overhead)
			}
		case Irecv:
			s.postIrecv(r, in)
			r.pc++
		case Waitall:
			if !s.tryCompleteWaitall(r) {
				return
			}
		case Wait:
			if !s.tryCompleteWait(r) {
				return
			}
		case Barrier:
			s.enterBarrier(r)
			return
		case Allreduce:
			s.enterAllreduce(r, in.Bytes)
			return
		default:
			panic(fmt.Sprintf("cluster: unknown instruction %T", r.prog.Body[r.pc]))
		}
	}
}

// resume records the blocked span and continues the rank past the
// instruction at pc.
func (s *Sim) resume(r *rankState) {
	s.tr.Record(r.id, r.blockKind, r.blockStart, s.now)
	r.pc++
	s.step(r)
}

// block marks r blocked on the current instruction.
func (s *Sim) block(r *rankState, kind trace.SpanKind) {
	r.blockStart = s.now
	r.blockKind = kind
}

// --- compute handling -------------------------------------------------

// startCompute begins a compute phase for r on its socket.
func (s *Sim) startCompute(r *rankState, in Compute) {
	dur := in.Seconds
	if extra, ok := s.delays[[2]int{r.id, r.iter}]; ok {
		dur += extra
	}
	if s.opts.ComputeNoise != nil {
		dur += s.opts.ComputeNoise(r.id, r.iter)
	}
	if dur <= 0 {
		dur = 1e-12
	}
	task := &computeTask{
		r:          r,
		remaining:  dur,
		demand:     in.Bytes / dur,
		rate:       1,
		lastUpdate: s.now,
	}
	s.block(r, trace.SpanCompute)
	sock := s.sockets[s.mc.SocketOf(r.id)]
	s.advanceSocket(sock)
	sock.tasks = append(sock.tasks, task)
	s.rebalanceSocket(sock)
}

// advanceSocket accrues progress of all running tasks up to now.
func (s *Sim) advanceSocket(sock *socketState) {
	for _, t := range sock.tasks {
		dt := s.now - t.lastUpdate
		if dt > 0 {
			t.remaining -= dt * t.rate
			if t.remaining < 0 {
				t.remaining = 0
			}
			sock.bytesDone += t.demand * t.rate * dt
			t.lastUpdate = s.now
		}
	}
}

// rebalanceSocket recomputes max-min fair rates and reschedules finish
// events. Callers must advanceSocket first.
func (s *Sim) rebalanceSocket(sock *socketState) {
	if len(sock.tasks) == 0 {
		return
	}
	// Max-min fair bandwidth allocation (water-filling).
	order := make([]*computeTask, len(sock.tasks))
	copy(order, sock.tasks)
	sort.SliceStable(order, func(i, j int) bool { return order[i].demand < order[j].demand })
	remB := s.mc.SocketBandwidth
	remK := len(order)
	for _, t := range order {
		share := remB / float64(remK)
		if t.demand <= share {
			t.rate = 1
			remB -= t.demand
		} else {
			t.rate = share / t.demand
			remB -= share
		}
		remK--
	}
	// Reschedule finish events with version-based cancellation.
	for _, t := range order {
		t.version++
		v := t.version
		task := t
		finish := s.now + t.remaining/t.rate
		s.schedule(finish, func() {
			if task.version != v {
				return // superseded by a later rebalance
			}
			s.finishCompute(task)
		})
	}
}

// finishCompute completes a task and resumes its rank.
func (s *Sim) finishCompute(task *computeTask) {
	sock := s.sockets[s.mc.SocketOf(task.r.id)]
	s.advanceSocket(sock)
	for i, t := range sock.tasks {
		if t == task {
			sock.tasks = append(sock.tasks[:i], sock.tasks[i+1:]...)
			break
		}
	}
	s.rebalanceSocket(sock)
	s.resume(task.r)
}

// --- communication handling -------------------------------------------

func (s *Sim) chanFor(from, to int) *channel {
	key := chanKey{from, to}
	c := s.chans[key]
	if c == nil {
		c = &channel{}
		s.chans[key] = c
	}
	return c
}

// transferTime returns latency + size/bandwidth for a message between the
// given ranks, using the faster intra-node parameters when both ranks
// share a node.
func (s *Sim) transferTime(from, to int, bytes float64) float64 {
	lat, bw := s.mc.NetLatency, s.mc.NetBandwidth
	if s.mc.SameNode(from, to) {
		if s.mc.IntraNodeLatency > 0 {
			lat = s.mc.IntraNodeLatency
		}
		if s.mc.IntraNodeBandwidth > 0 {
			bw = s.mc.IntraNodeBandwidth
		}
	}
	return lat + bytes/bw
}

// interNodeTransferTime is the worst-case (network) transfer time, used
// for collectives that necessarily cross nodes.
func (s *Sim) interNodeTransferTime(bytes float64) float64 {
	return s.mc.NetLatency + bytes/s.mc.NetBandwidth
}

// startSend executes a Send. It returns true when the instruction
// completed synchronously (never: both protocols block at least briefly),
// false when the rank blocked.
func (s *Sim) startSend(r *rankState, in Send) bool {
	if in.To < 0 || in.To >= len(s.ranks) || in.To == r.id {
		panic(fmt.Sprintf("cluster: rank %d sends to invalid rank %d", r.id, in.To))
	}
	c := s.chanFor(r.id, in.To)
	if in.Bytes <= s.mc.EagerThreshold {
		// Eager: payload is shipped immediately; the sender only pays the
		// posting overhead.
		arrival := s.now + s.transferTime(r.id, in.To, in.Bytes)
		s.schedule(arrival, func() { s.deliverEager(c) })
		s.block(r, trace.SpanComm)
		s.schedule(s.now+s.mc.SendOverhead, func() { s.resume(r) })
		return false
	}
	// Rendezvous: wait for a matching posted receive, then transfer.
	s.block(r, trace.SpanComm)
	if len(c.recvs) > 0 {
		req := c.recvs[0]
		c.recvs = c.recvs[1:]
		doneAt := s.now + s.transferTime(r.id, in.To, in.Bytes)
		s.schedule(doneAt, func() {
			s.completeRequest(req)
			s.resume(r)
		})
	} else {
		c.sends = append(c.sends, &rendezvousSend{r: r, bytes: in.Bytes})
	}
	return false
}

// deliverEager handles an eager payload arriving at the receiver.
func (s *Sim) deliverEager(c *channel) {
	if len(c.recvs) > 0 {
		req := c.recvs[0]
		c.recvs = c.recvs[1:]
		s.completeRequest(req)
		return
	}
	c.arrived = append(c.arrived, s.now)
}

// postIrecv posts a non-blocking receive for r.
func (s *Sim) postIrecv(r *rankState, in Irecv) {
	if in.From < 0 || in.From >= len(s.ranks) || in.From == r.id {
		panic(fmt.Sprintf("cluster: rank %d receives from invalid rank %d", r.id, in.From))
	}
	req := &request{owner: r}
	r.pending = append(r.pending, req)
	c := s.chanFor(in.From, r.id)
	switch {
	case len(c.arrived) > 0:
		// Eager payload already here: completes immediately.
		c.arrived = c.arrived[1:]
		req.done = true
	case len(c.sends) > 0:
		// A rendezvous sender is blocked on us: start the transfer now.
		snd := c.sends[0]
		c.sends = c.sends[1:]
		doneAt := s.now + s.transferTime(in.From, r.id, snd.bytes)
		sender := snd.r
		s.schedule(doneAt, func() {
			s.completeRequest(req)
			s.resume(sender)
		})
	default:
		c.recvs = append(c.recvs, req)
	}
}

// completeRequest marks a receive done and wakes its owner if the owner
// was blocked in Waitall (all requests complete) or Wait (oldest request
// complete).
func (s *Sim) completeRequest(req *request) {
	req.done = true
	r := req.owner
	switch {
	case r.waiting && allDone(r.pending):
		r.waiting = false
		r.pending = r.pending[:0]
		s.resume(r)
	case r.waitingOne && len(r.pending) > 0 && r.pending[0].done:
		r.waitingOne = false
		r.pending = r.pending[1:]
		s.resume(r)
	}
}

// tryCompleteWaitall returns true when all requests are already complete
// (Waitall falls through); otherwise it blocks the rank.
func (s *Sim) tryCompleteWaitall(r *rankState) bool {
	if allDone(r.pending) {
		r.pending = r.pending[:0]
		r.pc++
		return true
	}
	r.waiting = true
	s.block(r, trace.SpanComm)
	return false
}

// tryCompleteWait handles the single-request MPI_Wait: retire the oldest
// request if complete, otherwise block until it is. An MPI_Wait with no
// outstanding request is a no-op (matching MPI_REQUEST_NULL semantics).
func (s *Sim) tryCompleteWait(r *rankState) bool {
	if len(r.pending) == 0 {
		r.pc++
		return true
	}
	if r.pending[0].done {
		r.pending = r.pending[1:]
		r.pc++
		return true
	}
	r.waitingOne = true
	s.block(r, trace.SpanComm)
	return false
}

func allDone(reqs []*request) bool {
	for _, q := range reqs {
		if !q.done {
			return false
		}
	}
	return true
}

// enterBarrier blocks r until every rank has arrived.
func (s *Sim) enterBarrier(r *rankState) {
	s.block(r, trace.SpanComm)
	r.inBarrier = true
	s.barrier = append(s.barrier, r)
	if len(s.barrier) == len(s.ranks) {
		release := s.now + s.mc.NetLatency
		waiters := s.barrier
		s.barrier = nil
		for _, w := range waiters {
			w.inBarrier = false
			ww := w
			s.schedule(release, func() { s.resume(ww) })
		}
	}
}

// enterAllreduce blocks r until every rank has contributed, then releases
// all of them after the reduce+broadcast tree cost
// 2·⌈log₂N⌉·(latency + bytes/bandwidth).
func (s *Sim) enterAllreduce(r *rankState, bytes float64) {
	s.block(r, trace.SpanComm)
	s.allreduce = append(s.allreduce, r)
	if bytes > s.allreduceBytes {
		s.allreduceBytes = bytes
	}
	if len(s.allreduce) == len(s.ranks) {
		depth := 0
		for 1<<depth < len(s.ranks) {
			depth++
		}
		cost := 2 * float64(depth) * s.interNodeTransferTime(s.allreduceBytes)
		release := s.now + cost
		waiters := s.allreduce
		s.allreduce = nil
		s.allreduceBytes = 0
		for _, w := range waiters {
			ww := w
			s.schedule(release, func() { s.resume(ww) })
		}
	}
}
