package cluster

import (
	"math/rand"
	"testing"
)

// binaryRefHeap is a straight copy of the engine's previous binary-heap
// sift logic, kept as the reference implementation for the arity pin.
type binaryRefHeap []event

func (h binaryRefHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *binaryRefHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *binaryRefHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// TestEventHeapMatchesBinaryReference pins that the 4-ary event heap
// pops the exact event sequence the old binary heap popped. The (t,
// seq) key is a strict total order, so this must hold for any mix of
// pushes and pops — including heavy timestamp ties, where only seq
// breaks the order.
func TestEventHeapMatchesBinaryReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var quad eventHeap
	var bin binaryRefHeap
	seq := int64(0)
	push := func() {
		seq++
		// Coarse timestamps force frequent ties; the engine's real
		// streams are tie-heavy too (barrier releases, eager bursts).
		e := event{t: float64(rng.Intn(50)) * 0.125, seq: seq, kind: evKind(rng.Intn(4)), ch: int32(seq)}
		quad.push(e)
		bin.push(e)
	}
	popBoth := func() {
		a, b := quad.pop(), bin.pop()
		if a != b {
			t.Fatalf("pop diverged: 4-ary gave (t=%g seq=%d), binary gave (t=%g seq=%d)",
				a.t, a.seq, b.t, b.seq)
		}
	}
	// Interleaved churn at varying fill levels, then full drain.
	for round := 0; round < 200; round++ {
		for i, n := 0, rng.Intn(20); i < n; i++ {
			push()
		}
		for i, n := 0, rng.Intn(15); i < n && len(quad) > 0; i++ {
			popBoth()
		}
	}
	for len(quad) > 0 {
		popBoth()
	}
	if len(bin) != 0 {
		t.Fatalf("reference heap still holds %d events", len(bin))
	}
}
