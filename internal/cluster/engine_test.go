package cluster

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

// testMachine is a small deterministic machine: 4 sockets × 4 cores,
// 10 GB/s sockets, fast network.
func testMachine() MachineConfig {
	return MachineConfig{
		Name:            "test",
		Sockets:         4,
		CoresPerSocket:  4,
		SocketBandwidth: 10e9,
		NetLatency:      1e-6,
		NetBandwidth:    10e9,
		EagerThreshold:  16384,
		SendOverhead:    1e-7,
	}
}

func TestValidation(t *testing.T) {
	mc := testMachine()
	if _, err := NewSim(mc, nil, Options{}); err == nil {
		t.Error("want error for no programs")
	}
	progs := make([]Program, 99)
	if _, err := NewSim(mc, progs, Options{}); err == nil {
		t.Error("want error for too many ranks")
	}
	if _, err := NewSim(mc, []Program{{}}, Options{}); err == nil {
		t.Error("want error for empty program")
	}
	bad := mc
	bad.SocketBandwidth = 0
	if _, err := NewSim(bad, []Program{{Body: []Instr{Compute{Seconds: 1}}, Iters: 1}}, Options{}); err == nil {
		t.Error("want machine validation error")
	}
	if _, err := NewSim(mc, []Program{{Body: []Instr{Compute{Seconds: 1}}, Iters: 1}},
		Options{Delays: []DelayInjection{{Rank: 5}}}); err == nil {
		t.Error("want delay rank range error")
	}
}

func TestSingleRankComputeOnly(t *testing.T) {
	progs := []Program{{
		Body:  []Instr{Compute{Seconds: 0.5, Bytes: 1e9}},
		Iters: 4,
	}}
	sim, err := NewSim(testMachine(), progs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 1e9 bytes / 0.5s = 2 GB/s demand < 10 GB/s socket: never throttled.
	if math.Abs(res.Makespan-2.0) > 1e-9 {
		t.Errorf("makespan = %v, want 2.0", res.Makespan)
	}
	if len(res.Trace.IterEnds[0]) != 4 {
		t.Errorf("iterations recorded = %d", len(res.Trace.IterEnds[0]))
	}
	if got := res.Trace.TimeInState(0, trace.SpanCompute); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("compute time = %v", got)
	}
	if math.Abs(res.SocketBytes[0]-4e9) > 1 {
		t.Errorf("socket bytes = %v", res.SocketBytes[0])
	}
}

func TestBandwidthSaturationSharing(t *testing.T) {
	// Two ranks on one socket, each demanding 8 GB/s on a 10 GB/s socket:
	// fair share 5 GB/s each → rate 5/8 → duration 1.6× nominal.
	progs := make([]Program, 2)
	for r := range progs {
		progs[r] = Program{
			Body:  []Instr{Compute{Seconds: 1, Bytes: 8e9}},
			Iters: 1,
		}
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0 / 5.0
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	// Aggregate bandwidth must equal the socket limit.
	if bw := res.AggregateBandwidth(0); math.Abs(bw-10e9) > 1e6 {
		t.Errorf("aggregate bandwidth = %v, want 10 GB/s", bw)
	}
}

func TestMaxMinFairnessMixedDemands(t *testing.T) {
	// One light task (1 GB/s) and one heavy task (20 GB/s) on 10 GB/s:
	// light runs at full speed, heavy gets 9 GB/s → rate 0.45.
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 1, Bytes: 1e9}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 1, Bytes: 20e9}}, Iters: 1},
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Light task finishes at t=1. After that the heavy task has the socket
	// to itself but its demand still exceeds 10 GB/s → rate 0.5.
	// Heavy progress in [0,1]: rate 9/20 = 0.45 → 0.55 work left → 1.1 s.
	want := 1 + 0.55/0.5
	if math.Abs(res.Makespan-want) > 1e-6 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestSocketsAreIndependent(t *testing.T) {
	// Ranks 0..3 on socket 0, rank 4 alone on socket 1: rank 4 must be
	// unaffected by socket 0's saturation.
	progs := make([]Program, 5)
	for r := range progs {
		progs[r] = Program{
			Body:  []Instr{Compute{Seconds: 1, Bytes: 8e9}},
			Iters: 1,
		}
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rank 4's span must be exactly 1 s.
	spans := res.Trace.Spans[4]
	if len(spans) != 1 || math.Abs(spans[0].Duration()-1) > 1e-9 {
		t.Errorf("lone-socket rank spans = %v", spans)
	}
	// Socket 0 with 4×8 GB/s demand on 10 GB/s: 3.2× stretch.
	if math.Abs(res.Makespan-3.2) > 1e-6 {
		t.Errorf("makespan = %v, want 3.2", res.Makespan)
	}
}

func TestEagerMessagePingPong(t *testing.T) {
	// Rank 0 sends to rank 1; both compute briefly first.
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 0.1, Bytes: 0}, Send{To: 1, Bytes: 1024}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 0.1, Bytes: 0}, Irecv{From: 0, Bytes: 1024}, Waitall{}}, Iters: 1},
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	mc := testMachine()
	wantArrival := 0.1 + mc.SendOverhead + 0 // sender done after overhead
	_ = wantArrival
	// Receiver completes at compute end + transfer (latency + size/bw)
	// since the message was sent at t=0.1.
	wantEnd := 0.1 + mc.NetLatency + 1024/mc.NetBandwidth
	if math.Abs(res.Makespan-wantEnd) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, wantEnd)
	}
}

func TestEagerUnexpectedMessage(t *testing.T) {
	// Sender fires before the receiver posts: the payload waits in the
	// unexpected queue and the late Irecv completes instantly.
	progs := []Program{
		{Body: []Instr{Send{To: 1, Bytes: 512}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 0.5, Bytes: 0}, Irecv{From: 0, Bytes: 512}, Waitall{}}, Iters: 1},
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-0.5) > 1e-6 {
		t.Errorf("makespan = %v, want 0.5 (no extra wait)", res.Makespan)
	}
}

func TestRendezvousBlocksUntilRecv(t *testing.T) {
	mc := testMachine()
	big := mc.EagerThreshold * 4
	progs := []Program{
		{Body: []Instr{Send{To: 1, Bytes: big}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 1, Bytes: 0}, Irecv{From: 0, Bytes: big}, Waitall{}}, Iters: 1},
	}
	sim, _ := NewSim(mc, progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Sender blocks from t=0 until the recv posts at t=1, then transfers.
	want := 1 + mc.NetLatency + big/mc.NetBandwidth
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	// Sender's comm span must cover the whole blocking interval.
	if got := res.Trace.TimeInState(0, trace.SpanComm); math.Abs(got-want) > 1e-9 {
		t.Errorf("sender comm time = %v, want %v", got, want)
	}
}

func TestRendezvousRecvFirst(t *testing.T) {
	mc := testMachine()
	big := mc.EagerThreshold * 4
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 1, Bytes: 0}, Send{To: 1, Bytes: big}}, Iters: 1},
		{Body: []Instr{Irecv{From: 0, Bytes: big}, Waitall{}}, Iters: 1},
	}
	sim, _ := NewSim(mc, progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + mc.NetLatency + big/mc.NetBandwidth
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 0.2, Bytes: 0}, Barrier{}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 1.0, Bytes: 0}, Barrier{}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 0.1, Bytes: 0}, Barrier{}}, Iters: 1},
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + testMachine().NetLatency
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	// The fast ranks waited in comm state.
	if w := res.Trace.TimeInState(2, trace.SpanComm); w < 0.8 {
		t.Errorf("rank 2 wait = %v, want ≈ 0.9", w)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A receive with no matching send must be reported, not hang.
	progs := []Program{
		{Body: []Instr{Irecv{From: 1, Bytes: 8}, Waitall{}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 0.1, Bytes: 0}}, Iters: 1},
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	if _, err := sim.Run(); err == nil {
		t.Fatal("want deadlock error")
	}
}

func TestDelayInjectionStretchesOneIteration(t *testing.T) {
	progs := []Program{{
		Body:  []Instr{Compute{Seconds: 0.1, Bytes: 0}},
		Iters: 10,
	}}
	sim, _ := NewSim(testMachine(), progs, Options{
		Delays: []DelayInjection{{Rank: 0, Iter: 5, Extra: 1}},
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2.0) > 1e-9 {
		t.Errorf("makespan = %v, want 2.0 (10×0.1 + 1)", res.Makespan)
	}
}

func TestComputeNoiseHook(t *testing.T) {
	progs := []Program{{
		Body:  []Instr{Compute{Seconds: 0.1, Bytes: 0}},
		Iters: 4,
	}}
	sim, _ := NewSim(testMachine(), progs, Options{
		ComputeNoise: func(rank, iter int) float64 { return 0.05 },
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-0.6) > 1e-9 {
		t.Errorf("makespan = %v, want 0.6", res.Makespan)
	}
}

func TestBulkSynchronousRoundTrip(t *testing.T) {
	// A full bulk-synchronous run on a ring: no deadlock, every rank
	// completes all iterations, trace validates.
	tp, err := topology.NextNeighbor(8, true)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BulkSynchronous(tp, Workload{Seconds: 1e-3, Bytes: 0}, 1024, 20)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(testMachine(), progs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if got := len(res.Trace.IterEnds[r]); got != 20 {
			t.Errorf("rank %d iterations = %d, want 20", r, got)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBulkSynchronousAsymmetricStencil(t *testing.T) {
	// d = −2, −1, +1 must produce matched sends/recvs (no deadlock).
	tp, err := topology.NextPlusNextNext(10, true)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BulkSynchronous(tp, Workload{Seconds: 1e-3, Bytes: 0}, 512, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every rank posts 3 recvs; sends must also number 3 per rank
	// (reverse neighbors of the ring stencil).
	for r, p := range progs {
		sends, recvs := 0, 0
		for _, in := range p.Body {
			switch in.(type) {
			case Send:
				sends++
			case Irecv:
				recvs++
			}
		}
		if sends != 3 || recvs != 3 {
			t.Errorf("rank %d: %d sends, %d recvs, want 3/3", r, sends, recvs)
		}
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		tp, _ := topology.NextNeighbor(12, true)
		progs, _ := BulkSynchronous(tp, Workload{Seconds: 2e-3, Bytes: 1e7}, 1024, 30)
		sim, _ := NewSim(testMachine(), progs, Options{
			Delays: []DelayInjection{{Rank: 3, Iter: 10, Extra: 0.05}},
		})
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if run() != run() {
		t.Error("simulation is not deterministic")
	}
}

func TestBulkSynchronousValidation(t *testing.T) {
	tp, _ := topology.NextNeighbor(4, true)
	if _, err := BulkSynchronous(tp, Workload{Seconds: 1}, 8, 0); err == nil {
		t.Error("want error for zero iterations")
	}
	if _, err := BulkSynchronous(tp, Workload{Seconds: 0}, 8, 5); err == nil {
		t.Error("want error for zero compute time")
	}
}
