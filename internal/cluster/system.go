package cluster

import (
	"errors"
	"sort"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TraceSystem adapts a completed discrete-event simulation to the
// unified sim.System contract, so cluster experiments ride the same
// streaming / sweep / archive / scenario stack as the ODE families:
// sweep.RunReduce reduces cluster sweeps online, sweep.RunArchive
// persists and resumes them bitwise, and cmd/pomsim runs them from a
// scenario JSON.
//
// The facade replays the trace as a phase field: rank i's state is
// θ_i(t) = 2π · p_i(t), where p_i is the continuous iteration progress
// (trace.Progress — completed iterations, linearly interpolated within
// the current iteration), the exact trace-side analogue of the
// oscillator phase. Eval exposes the piecewise-constant progress rate,
// so the ODE runtime reconstructs the progress curves to solver
// accuracy; in the bulk-synchronous steady state the rate is constant
// and the replay is exact. The shared sinks then read naturally: phase
// spread is 2π × the iteration-skew spread, the gap accumulator
// measures the computational wavefront in units of 2π·iterations, and
// an archive record stores the full skew evolution.
//
// A TraceSystem is read-only over the trace and deterministic: records
// archived from it depend only on the trace, never on worker count —
// the property sweep.RunArchive's bitwise resume relies on.
type TraceSystem struct {
	iterEnds [][]float64
	end      float64
	hmax     float64
}

// NewTraceSystem wraps a completed execution trace. The trace must hold
// at least one rank and one iteration mark; ranks that recorded no
// marks replay as flat (zero-rate) phases.
func NewTraceSystem(tr *trace.Trace) (*TraceSystem, error) {
	if tr == nil {
		return nil, errors.New("cluster: nil trace")
	}
	if tr.N() == 0 {
		return nil, errors.New("cluster: trace has no ranks")
	}
	marks := 0
	minMean := 0.0
	for _, e := range tr.IterEnds {
		marks += len(e)
		if len(e) >= 2 {
			mean := (e[len(e)-1] - e[0]) / float64(len(e)-1)
			if mean > 0 && (minMean == 0 || mean < minMean) {
				minMean = mean
			}
		}
	}
	if marks == 0 || tr.End <= 0 {
		return nil, errors.New("cluster: trace has no iteration marks")
	}
	// The step cap: half the fastest rank's mean iteration time, so the
	// solver never skips an entire iteration's rate plateau; traces with
	// single-iteration ranks only fall back to a quarter of the makespan.
	hmax := tr.End / 4
	if minMean > 0 {
		hmax = minMean / 2
	}
	return &TraceSystem{iterEnds: tr.IterEnds, end: tr.End, hmax: hmax}, nil
}

// System wraps the result's trace as a sim.System — the facade cluster
// scenario sweeps integrate through.
func (r *Result) System() (*TraceSystem, error) { return NewTraceSystem(r.Trace) }

// Dim implements sim.System.
func (s *TraceSystem) Dim() int { return len(s.iterEnds) }

// InitialState implements sim.System: every rank starts at phase 0.
func (s *TraceSystem) InitialState() []float64 {
	return make([]float64, len(s.iterEnds))
}

// Eval implements sim.System: dθ_i/dt = 2π · (iteration rate of rank i
// at time t), the exact derivative of the interpolated trace progress.
// Ranks past their last iteration (and degenerate zero-length
// iterations) hold at zero rate, so the phase field freezes at
// 2π·iters once the program completes.
func (s *TraceSystem) Eval(t float64, _, dydt []float64) {
	for i, ends := range s.iterEnds {
		dydt[i] = 0
		idx := sort.Search(len(ends), func(k int) bool { return ends[k] > t })
		if idx == len(ends) {
			continue
		}
		var prev float64
		if idx > 0 {
			prev = ends[idx-1]
		}
		if dur := ends[idx] - prev; dur > 0 {
			dydt[i] = mathx.TwoPi / dur
		}
	}
}

// Solver implements sim.Tuned: rate plateaus are replayed data, not a
// stiff flow — relaxed tolerances with the step capped below the
// fastest iteration time (see NewTraceSystem).
func (s *TraceSystem) Solver() sim.Solver {
	return sim.Solver{Atol: 1e-6, Rtol: 1e-6, Hmax: s.hmax}
}

// End returns the trace makespan — the natural run length.
func (s *TraceSystem) End() float64 { return s.end }

// SuggestTEnd reports the trace makespan as the natural t_end for specs
// that leave the run length unset (the scenario layer's suggestion
// hook: the makespan is only known after the event simulation ran).
func (s *TraceSystem) SuggestTEnd() float64 { return s.end }
