package cluster

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// traceSystemResult runs a small disturbed bulk-synchronous program and
// returns its result (12 ranks, 30 iterations, one delay injection that
// launches an idle wave).
func traceSystemResult(t *testing.T) *Result {
	t.Helper()
	tp, err := topology.NextNeighbor(12, true)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BulkSynchronous(tp, Workload{Seconds: 0.05, Bytes: 1e3}, 1024, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(Meggie(2), progs, Options{
		Delays: []DelayInjection{{Rank: 6, Iter: 10, Extra: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTraceSystemReplaysProgress pins the facade against the trace: the
// integrated phases match 2π × trace.Progress at every sample to solver
// accuracy, the field freezes at 2π·iters, and the natural run length is
// the makespan.
func TestTraceSystemReplaysProgress(t *testing.T) {
	res := traceSystemResult(t)
	sys, err := res.System()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dim() != 12 {
		t.Fatalf("dim = %d", sys.Dim())
	}
	if sys.SuggestTEnd() != res.Makespan || sys.End() != res.Makespan {
		t.Fatalf("SuggestTEnd = %v, makespan %v", sys.SuggestTEnd(), res.Makespan)
	}

	out, err := sim.Run(sys, res.Makespan, 121)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k, row := range out.Ys {
		for i, th := range row {
			want := res.Trace.Progress(i, out.Ts[k])
			if d := math.Abs(th/mathx.TwoPi - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Fatalf("replayed progress deviates by %v iterations", worst)
	}
	final := out.Ys[len(out.Ys)-1]
	for i, th := range final {
		if math.Abs(th/mathx.TwoPi-30) > 0.02 {
			t.Fatalf("rank %d final progress %v, want 30", i, th/mathx.TwoPi)
		}
	}
}

// TestTraceSystemStreamsSkew drives the shared accumulators over the
// facade: the injected delay shows up as a transient phase-spread
// excursion well above the steady-state skew.
func TestTraceSystemStreamsSkew(t *testing.T) {
	res := traceSystemResult(t)
	sys, err := res.System()
	if err != nil {
		t.Fatal(err)
	}
	spread := &sim.SpreadAccumulator{}
	if _, err := sim.RunStream(sys, res.Makespan, 201, spread); err != nil {
		t.Fatal(err)
	}
	// The 0.5 s injection at 0.05 s/iter stalls rank 6 by ≈ 10
	// iterations, but the idle wave stalls its neighbors too, so the
	// max-min spread peaks at a few iterations — still far above the
	// sub-iteration steady-state skew.
	if spread.Max() < mathx.TwoPi*3 {
		t.Errorf("max spread %v rad, want a clear delay excursion", spread.Max())
	}
	if spread.Max() > mathx.TwoPi*15 {
		t.Errorf("max spread %v rad implausibly large", spread.Max())
	}
}

// TestTraceSystemDeterministic re-runs the whole pipeline and compares
// streamed rows bitwise — the property archive resume relies on.
func TestTraceSystemDeterministic(t *testing.T) {
	collect := func() []float64 {
		res := traceSystemResult(t)
		sys, err := res.System()
		if err != nil {
			t.Fatal(err)
		}
		var rows []float64
		if _, err := sim.RunStream(sys, res.Makespan, 61, sim.SinkFunc(func(_ float64, y []float64) {
			rows = append(rows, y...)
		})); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("row lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("replay not deterministic at %d", i)
		}
	}
}

// TestNewTraceSystemValidation covers the error paths.
func TestNewTraceSystemValidation(t *testing.T) {
	if _, err := NewTraceSystem(nil); err == nil {
		t.Error("nil trace: want error")
	}
	if _, err := NewTraceSystem(trace.NewTrace(0)); err == nil {
		t.Error("zero ranks: want error")
	}
	if _, err := NewTraceSystem(trace.NewTrace(3)); err == nil {
		t.Error("no iteration marks: want error")
	}
}
