package cluster

import (
	"fmt"

	"repro/internal/topology"
)

// Instr is one MPI program instruction. Programs are straight-line
// per-iteration bodies executed by the engine's interpreter; this keeps
// the discrete-event core single-threaded and deterministic.
type Instr interface{ isInstr() }

// Compute models a computation phase with a nominal single-core duration
// and the memory traffic it moves. On a bandwidth-saturated socket the
// phase is stretched according to max-min fair sharing.
type Compute struct {
	// Seconds is the nominal duration with the socket to itself.
	Seconds float64
	// Bytes is the memory traffic of the phase; Bytes/Seconds is the
	// bandwidth demand while running.
	Bytes float64
}

func (Compute) isInstr() {}

// Send is a blocking MPI_Send to an absolute rank. Under the eager
// protocol it returns after the send overhead; under rendezvous it blocks
// until the matching receive is posted and the transfer completes.
type Send struct {
	// To is the destination rank.
	To int
	// Bytes is the message size.
	Bytes float64
}

func (Send) isInstr() {}

// Irecv posts a non-blocking MPI_Irecv from an absolute rank; completion
// is observed by a later Waitall.
type Irecv struct {
	// From is the source rank.
	From int
	// Bytes is the message size.
	Bytes float64
}

func (Irecv) isInstr() {}

// Waitall blocks until every outstanding request of the rank completes
// (MPI_Waitall over all posted Irecvs and pending rendezvous sends).
type Waitall struct{}

func (Waitall) isInstr() {}

// Wait blocks until the *oldest* outstanding request completes and
// retires it (MPI_Wait issued per request) — the separate-waits mode
// whose κ = Σ|d| rule the paper contrasts with the grouped Waitall's
// κ = max|d|.
type Wait struct{}

func (Wait) isInstr() {}

// Barrier is a global MPI_Barrier.
type Barrier struct{}

func (Barrier) isInstr() {}

// Allreduce is a global reduction of the given payload size, modeled as a
// synchronization of all ranks plus a 2·⌈log₂N⌉ tree traversal cost
// (reduce + broadcast) — the collective whose relaxation the paper's
// companion work [1] studies.
type Allreduce struct {
	// Bytes is the reduced payload size.
	Bytes float64
}

func (Allreduce) isInstr() {}

// Program is the per-rank executable: Body runs Iters times.
type Program struct {
	// Body is the per-iteration instruction sequence.
	Body []Instr
	// Iters is the iteration count.
	Iters int
}

// Workload describes the per-iteration compute phase of one rank.
type Workload struct {
	// Seconds is the nominal single-core compute time per iteration.
	Seconds float64
	// Bytes is the memory traffic per iteration.
	Bytes float64
}

// BulkSynchronous builds the paper's toy-code structure for every rank:
// per iteration one Compute phase followed by an exchange with all
// topology partners (Irecv from each, Send to each, one grouped Waitall) —
// MPI_Irecv / MPI_Send / MPI_Waitall with short messages, §4.
func BulkSynchronous(tp *topology.Topology, work Workload, msgBytes float64, iters int) ([]Program, error) {
	return BulkSynchronousWaits(tp, work, msgBytes, iters, true)
}

// BulkSynchronousWaits is BulkSynchronous with an explicit wait mode:
// grouped issues one MPI_Waitall over all requests (κ = max|d|), ungrouped
// one MPI_Wait per request in posting order (κ = Σ|d|).
func BulkSynchronousWaits(tp *topology.Topology, work Workload, msgBytes float64, iters int, grouped bool) ([]Program, error) {
	if iters < 1 {
		return nil, fmt.Errorf("cluster: need at least one iteration")
	}
	if work.Seconds <= 0 {
		return nil, fmt.Errorf("cluster: compute phase must take time")
	}
	neighbors := tp.Neighbors()
	progs := make([]Program, tp.N)
	for r := 0; r < tp.N; r++ {
		var body []Instr
		body = append(body, Compute{Seconds: work.Seconds, Bytes: work.Bytes})
		nRecvs := 0
		for _, nb := range neighbors[r] {
			body = append(body, Irecv{From: nb, Bytes: msgBytes})
			nRecvs++
		}
		// Matching sends: partner j receives from i when T_ji = 1; with a
		// symmetric stencil this equals T_ij. For asymmetric stencils
		// (e.g. d = −2) rank i must send to every rank that lists i.
		for _, dst := range reverseNeighbors(tp, r) {
			body = append(body, Send{To: dst, Bytes: msgBytes})
		}
		if grouped {
			body = append(body, Waitall{})
		} else {
			for w := 0; w < nRecvs; w++ {
				body = append(body, Wait{})
			}
		}
		progs[r] = Program{Body: body, Iters: iters}
	}
	return progs, nil
}

// reverseNeighbors returns the ranks that receive from r (rows j with
// T_jr = 1), in ascending order.
func reverseNeighbors(tp *topology.Topology, r int) []int {
	var out []int
	for j := 0; j < tp.N; j++ {
		if tp.T.At(j, r) != 0 {
			out = append(out, j)
		}
	}
	return out
}
