// Package cluster is a deterministic discrete-event simulator of
// MPI-parallel bulk-synchronous programs on a cluster — the validation
// substrate that replaces the paper's Meggie/SuperMUC-NG hardware runs.
// It models:
//
//   - a machine of nodes × sockets × cores with a per-socket shared memory
//     bandwidth: concurrent memory-bound compute phases on one socket share
//     the socket bandwidth with max-min fairness, reproducing the
//     saturation curves of Fig. 1(b) and the bottleneck-evasion physics
//     behind desynchronization;
//   - MPI point-to-point semantics: MPI_Send/MPI_Irecv/MPI_Wait(all) with
//     eager and rendezvous protocols, message latency and link bandwidth;
//   - per-rank bulk-synchronous programs (compute–communicate cycles),
//     one-off delay injection, and per-iteration compute noise;
//   - full execution traces (package trace) in the role of ITAC.
//
// All simulation is single-threaded and bit-for-bit reproducible.
package cluster

import "fmt"

// MachineConfig describes the simulated hardware.
type MachineConfig struct {
	// Name labels the preset.
	Name string
	// Sockets is the total socket count; ranks fill sockets in order.
	Sockets int
	// CoresPerSocket bounds the ranks placed on one socket.
	CoresPerSocket int
	// SocketBandwidth is the saturated memory bandwidth per socket
	// (bytes/s).
	SocketBandwidth float64
	// NetLatency is the inter-node point-to-point message latency (s).
	NetLatency float64
	// NetBandwidth is the per-message transfer bandwidth (bytes/s).
	NetBandwidth float64
	// SocketsPerNode groups sockets into nodes; 0 means every socket is
	// its own node. Messages between ranks on the same node use
	// IntraNodeLatency and IntraNodeBandwidth.
	SocketsPerNode int
	// IntraNodeLatency is the same-node message latency (s); 0 falls back
	// to NetLatency.
	IntraNodeLatency float64
	// IntraNodeBandwidth is the same-node transfer bandwidth (bytes/s);
	// 0 falls back to NetBandwidth.
	IntraNodeBandwidth float64
	// EagerThreshold is the message size (bytes) up to which the eager
	// protocol is used; larger messages use rendezvous.
	EagerThreshold float64
	// SendOverhead is the CPU time consumed by posting a send (s).
	SendOverhead float64
	// Placement selects how ranks map to sockets.
	Placement Placement
}

// Placement is the rank-to-socket mapping policy.
type Placement int

const (
	// Block fills socket 0 first (ranks 0…c−1), then socket 1, … — the
	// default MPI process placement the paper's runs use.
	Block Placement = iota
	// RoundRobin scatters consecutive ranks across sockets, which spreads
	// memory-bound neighbors over different bandwidth domains.
	RoundRobin
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "block"
}

// Validate reports configuration errors.
func (mc MachineConfig) Validate() error {
	switch {
	case mc.Sockets < 1:
		return fmt.Errorf("cluster: need at least one socket")
	case mc.CoresPerSocket < 1:
		return fmt.Errorf("cluster: need at least one core per socket")
	case mc.SocketBandwidth <= 0:
		return fmt.Errorf("cluster: socket bandwidth must be positive")
	case mc.NetLatency < 0 || mc.NetBandwidth <= 0:
		return fmt.Errorf("cluster: invalid network parameters")
	case mc.SendOverhead < 0:
		return fmt.Errorf("cluster: negative send overhead")
	}
	return nil
}

// Cores returns the total core count.
func (mc MachineConfig) Cores() int { return mc.Sockets * mc.CoresPerSocket }

// SocketOf returns the socket hosting the given rank under the configured
// placement policy.
func (mc MachineConfig) SocketOf(rank int) int {
	if mc.Placement == RoundRobin {
		return rank % mc.Sockets
	}
	return rank / mc.CoresPerSocket
}

// NodeOf returns the node hosting the given rank.
func (mc MachineConfig) NodeOf(rank int) int {
	spn := mc.SocketsPerNode
	if spn <= 0 {
		spn = 1
	}
	return mc.SocketOf(rank) / spn
}

// SameNode reports whether two ranks share a node.
func (mc MachineConfig) SameNode(a, b int) bool { return mc.NodeOf(a) == mc.NodeOf(b) }

// Meggie returns the paper's primary benchmark system: a fat-tree
// Omni-Path cluster with dual-socket nodes of ten-core Intel Xeon
// "Broadwell" E5-2630v4 CPUs (2.2 GHz). The effective per-socket STREAM
// bandwidth is calibrated to the ≈53 GB/s plateau of Fig. 1(b) (the
// nominal DDR4 peak is 68 GB/s).
func Meggie(sockets int) MachineConfig {
	return MachineConfig{
		Name:               "Meggie",
		Sockets:            sockets,
		CoresPerSocket:     10,
		SocketBandwidth:    53e9,
		NetLatency:         1.5e-6, // Omni-Path small-message latency
		NetBandwidth:       12.5e9, // 100 Gbit/s
		SocketsPerNode:     2,      // dual-socket nodes
		IntraNodeLatency:   0.4e-6, // shared-memory transport
		IntraNodeBandwidth: 20e9,
		EagerThreshold:     16384, // typical PSM2 eager cutoff
		SendOverhead:       0.3e-6,
	}
}

// SuperMUCNG returns the paper's second system (artifact appendix):
// dual-socket 24-core Skylake SP 8174 nodes with a fat-tree Omni-Path
// interconnect.
func SuperMUCNG(sockets int) MachineConfig {
	return MachineConfig{
		Name:               "SuperMUC-NG",
		Sockets:            sockets,
		CoresPerSocket:     24,
		SocketBandwidth:    100e9,
		NetLatency:         1.5e-6,
		NetBandwidth:       12.5e9,
		SocketsPerNode:     2,
		IntraNodeLatency:   0.4e-6,
		IntraNodeBandwidth: 25e9,
		EagerThreshold:     16384,
		SendOverhead:       0.3e-6,
	}
}
