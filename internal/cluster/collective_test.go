package cluster

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

func TestWaitSingleRequest(t *testing.T) {
	// Rank 1 posts two Irecvs and waits them one at a time; the first
	// message arrives late, the second early.
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 1, Bytes: 0}, Send{To: 1, Bytes: 64}}, Iters: 1},
		{Body: []Instr{
			Irecv{From: 0, Bytes: 64},
			Irecv{From: 2, Bytes: 64},
			Wait{}, Wait{},
		}, Iters: 1},
		{Body: []Instr{Send{To: 1, Bytes: 64}}, Iters: 1},
	}
	sim, err := NewSim(testMachine(), progs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 finishes when the slow first message arrives (t ≈ 1).
	want := 1 + testMachine().SendOverhead
	if math.Abs(res.Makespan-want) > 1e-3 {
		t.Errorf("makespan = %v, want ≈ %v", res.Makespan, want)
	}
}

func TestWaitWithNoRequestsIsNoop(t *testing.T) {
	progs := []Program{{
		Body:  []Instr{Compute{Seconds: 0.1, Bytes: 0}, Wait{}},
		Iters: 3,
	}}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-0.3) > 1e-9 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestSeparateWaitsCompleteBulkSync(t *testing.T) {
	tp, err := topology.NextPlusNextNext(12, true)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BulkSynchronousWaits(tp, Workload{Seconds: 1e-3}, 256, 15, false)
	if err != nil {
		t.Fatal(err)
	}
	// Body must contain one Wait per Irecv and no Waitall.
	waits, waitalls, recvs := 0, 0, 0
	for _, in := range progs[0].Body {
		switch in.(type) {
		case Wait:
			waits++
		case Waitall:
			waitalls++
		case Irecv:
			recvs++
		}
	}
	if waitalls != 0 || waits != recvs || recvs != 3 {
		t.Fatalf("waits=%d waitalls=%d recvs=%d", waits, waitalls, recvs)
	}
	sim, err := NewSim(testMachine(), progs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		if len(res.Trace.IterEnds[r]) != 15 {
			t.Errorf("rank %d iterations = %d", r, len(res.Trace.IterEnds[r]))
		}
	}
}

func TestAllreduceSynchronizesWithTreeCost(t *testing.T) {
	mc := testMachine()
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 0.3, Bytes: 0}, Allreduce{Bytes: 8}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 1.0, Bytes: 0}, Allreduce{Bytes: 8}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 0.5, Bytes: 0}, Allreduce{Bytes: 8}}, Iters: 1},
	}
	sim, _ := NewSim(mc, progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// N = 3 → depth 2; cost = 2·2·(latency + 8/bw); release after the
	// slowest rank arrives at t = 1.
	cost := 4 * (mc.NetLatency + 8/mc.NetBandwidth)
	want := 1 + cost
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	// Fast ranks spent the slack in comm state.
	if w := res.Trace.TimeInState(0, trace.SpanComm); w < 0.69 {
		t.Errorf("rank 0 wait = %v, want ≈ 0.7", w)
	}
}

func TestAllreduceRepeats(t *testing.T) {
	// The collective state must reset between iterations.
	progs := make([]Program, 4)
	for r := range progs {
		progs[r] = Program{
			Body:  []Instr{Compute{Seconds: 0.1, Bytes: 0}, Allreduce{Bytes: 8}},
			Iters: 5,
		}
	}
	sim, _ := NewSim(testMachine(), progs, Options{})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if len(res.Trace.IterEnds[r]) != 5 {
			t.Errorf("rank %d iterations = %d", r, len(res.Trace.IterEnds[r]))
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	mc := testMachine()
	mc.Placement = RoundRobin
	if mc.SocketOf(0) != 0 || mc.SocketOf(1) != 1 || mc.SocketOf(4) != 0 {
		t.Error("round-robin mapping wrong")
	}
	if mc.Placement.String() != "round-robin" || (Block).String() != "block" {
		t.Error("Placement strings")
	}
	// Two heavy ranks: under block placement they share socket 0 and are
	// throttled; under round robin they land on different sockets and run
	// at full speed.
	progs := []Program{
		{Body: []Instr{Compute{Seconds: 1, Bytes: 8e9}}, Iters: 1},
		{Body: []Instr{Compute{Seconds: 1, Bytes: 8e9}}, Iters: 1},
	}
	runWith := func(p Placement) float64 {
		m := testMachine()
		m.Placement = p
		sim, err := NewSim(m, progs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	block := runWith(Block)
	rr := runWith(RoundRobin)
	if math.Abs(rr-1) > 1e-9 {
		t.Errorf("round-robin makespan = %v, want 1 (no sharing)", rr)
	}
	if block <= rr {
		t.Errorf("block %v must be slower than round-robin %v", block, rr)
	}
}

func TestNodeHierarchy(t *testing.T) {
	mc := Meggie(4) // 2 nodes of 2 sockets
	if mc.NodeOf(0) != 0 || mc.NodeOf(19) != 0 {
		t.Error("ranks 0-19 must be on node 0")
	}
	if mc.NodeOf(20) != 1 {
		t.Error("rank 20 must be on node 1")
	}
	if !mc.SameNode(0, 19) || mc.SameNode(19, 20) {
		t.Error("SameNode wrong")
	}
	// No SocketsPerNode: every socket its own node.
	flat := testMachine()
	if flat.SameNode(0, 4) {
		t.Error("flat machine: different sockets are different nodes")
	}
	if !flat.SameNode(0, 1) {
		t.Error("flat machine: same socket is the same node")
	}
}

func TestIntraNodeMessagesAreFaster(t *testing.T) {
	mc := Meggie(4)
	run := func(to int) float64 {
		progs := make([]Program, to+1)
		for r := range progs {
			progs[r] = Program{Body: []Instr{Compute{Seconds: 1e-6}}, Iters: 1}
		}
		progs[0] = Program{Body: []Instr{Send{To: to, Bytes: 8192}}, Iters: 1}
		progs[to] = Program{Body: []Instr{Irecv{From: 0, Bytes: 8192}, Waitall{}}, Iters: 1}
		sim, err := NewSim(mc, progs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	intra := run(15) // rank 15: socket 1, node 0 (same node as rank 0)
	inter := run(25) // rank 25: socket 2, node 1
	if intra >= inter {
		t.Errorf("intra-node message (%v) not faster than inter-node (%v)", intra, inter)
	}
}
