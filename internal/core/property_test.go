package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/stats"
	"repro/internal/topology"
)

// TestPropertyMeanPhaseConserved: for a symmetric topology and an odd
// potential, the coupling terms cancel pairwise, so the mean phase grows
// exactly at the natural frequency ω regardless of the configuration:
// d/dt Σθ_i = N·ω. This is the model's conservation law.
func TestPropertyMeanPhaseConserved(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(12)
		tp, err := topology.NextNeighbor(n, true)
		if err != nil {
			return false
		}
		pots := []potential.Potential{
			potential.Tanh{},
			potential.NewDesync(0.5 + 2*rng.Float64()),
			potential.KuramotoSine{},
		}
		pot := pots[rng.Intn(len(pots))]
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Uniform(-2, 2)
		}
		cfg := Config{
			N:             n,
			TComp:         0.7,
			TComm:         0.3,
			Potential:     pot,
			Topology:      tp,
			Init:          CustomPhases,
			InitialPhases: init,
			Atol:          1e-10,
			Rtol:          1e-9,
		}
		m, err := New(cfg)
		if err != nil {
			return false
		}
		tEnd := 5.0
		res, err := m.Run(tEnd, 6)
		if err != nil {
			return false
		}
		mean0 := mathx.Mean(init)
		meanEnd := mathx.Mean(res.FinalPhases())
		want := mean0 + m.Omega()*tEnd
		if math.Abs(meanEnd-want) > 1e-5 {
			t.Logf("seed %d (%s, n=%d): mean phase %v, want %v",
				seed, pot.Name(), n, meanEnd, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTranslationInvariance: shifting every initial phase by the
// same constant shifts the whole trajectory by that constant (the global
// phase symmetry whose Goldstone mode linstab finds).
func TestPropertyTranslationInvariance(t *testing.T) {
	f := func(seed uint64, rawShift float64) bool {
		shift := math.Mod(rawShift, 10)
		if math.IsNaN(shift) {
			return true
		}
		rng := stats.NewRNG(seed)
		n := 6
		tp, err := topology.NextNeighbor(n, false)
		if err != nil {
			return false
		}
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Uniform(-1, 1)
		}
		run := func(offset float64) []float64 {
			shifted := make([]float64, n)
			for i := range shifted {
				shifted[i] = init[i] + offset
			}
			cfg := Config{
				N: n, TComp: 0.8, TComm: 0.2,
				Potential:     potential.NewDesync(1.5),
				Topology:      tp,
				Init:          CustomPhases,
				InitialPhases: shifted,
				Atol:          1e-10, Rtol: 1e-9,
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(8, 3)
			if err != nil {
				t.Fatal(err)
			}
			return res.FinalPhases()
		}
		a := run(0)
		b := run(shift)
		for i := range a {
			if math.Abs((b[i]-a[i])-shift) > 1e-5 {
				t.Logf("seed %d: component %d shifted by %v, want %v",
					seed, i, b[i]-a[i], shift)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterminism: identical configurations produce bit-identical
// trajectories, including under both noise channels.
func TestPropertyDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := baseConfig(t, 10)
		cfg.LocalNoise = noiseForDeterminism()
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(20, 41)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalPhases()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("component %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPropertySpreadNonNegative: the spread timeline is nonnegative and
// zero only in perfect lockstep.
func TestPropertySpreadNonNegative(t *testing.T) {
	cfg := baseConfig(t, 8)
	cfg.Init = RandomPhases
	cfg.PerturbSeed = 9
	cfg.PerturbAmp = 0.5
	m, _ := New(cfg)
	res, err := m.Run(30, 61)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range res.SpreadTimeline() {
		if s < 0 {
			t.Fatalf("negative spread at sample %d: %v", k, s)
		}
	}
}

// noiseForDeterminism builds the composite noise used by the determinism
// property.
func noiseForDeterminism() noise.Local {
	return noise.Sum{
		noise.Delay{Rank: 3, Start: 5, Duration: 1, Extra: 20},
		noise.Jitter{Dist: noise.Gaussian, Amp: 0.05, Refresh: 1, Seed: 77},
	}
}
