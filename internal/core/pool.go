package core

// rhsPool is the persistent worker pool behind Config.Workers. The
// goroutines are started on the first parallel right-hand-side call and
// then reused for every subsequent call: a dispatch sends one chunk index
// per worker over a channel and waits for the matching completions, so a
// steady-state evaluation performs no allocations. The per-call arguments
// (t, y, dydt) are staged in the owning Model's cur* fields before
// dispatch.
//
// Determinism: the chunk boundaries are fixed at model construction and
// every chunk writes a disjoint dydt (and scratch-buffer) range while
// reading only the shared y, so the floating-point result is bit-for-bit
// identical to the serial evaluation no matter how the chunks are
// interleaved.
type rhsPool struct {
	jobs chan int
	done chan struct{}
}

// ensurePool lazily starts the worker goroutines. rhs is only ever called
// from one goroutine at a time (the ODE solver), so no locking is needed.
func (m *Model) ensurePool() *rhsPool {
	if m.pool == nil {
		p := &rhsPool{
			jobs: make(chan int, m.nw),
			done: make(chan struct{}, m.nw),
		}
		for w := 0; w < m.nw; w++ {
			go func() {
				for c := range p.jobs {
					m.rhsRange(m.curT, m.curY, m.curDydt, m.bounds[c], m.bounds[c+1])
					p.done <- struct{}{}
				}
			}()
		}
		m.pool = p
	}
	return m.pool
}

// run evaluates all chunks on the pool and blocks until every chunk is
// done.
func (p *rhsPool) run() {
	n := cap(p.jobs)
	for c := 0; c < n; c++ {
		p.jobs <- c
	}
	for c := 0; c < n; c++ {
		<-p.done
	}
}

// Close stops the worker goroutines of a Workers > 1 model. It is safe to
// call on any model (serial models have no pool) and the pool restarts
// transparently if the model is used again afterwards.
func (m *Model) Close() {
	if m.pool != nil {
		close(m.pool.jobs)
		m.pool = nil
	}
}
