package core

import (
	"math"
	"testing"

	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// baseConfig returns a small scalable-program configuration used by many
// tests: 16 oscillators, ±1 ring, tanh potential, one-second period.
func baseConfig(t *testing.T, n int) Config {
	t.Helper()
	tp, err := topology.NextNeighbor(n, true)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		N:         n,
		TComp:     0.8,
		TComm:     0.2,
		Potential: potential.Tanh{},
		Topology:  tp,
	}
}

func TestNewValidation(t *testing.T) {
	good := baseConfig(t, 8)
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.N = 1
	if _, err := New(bad); err == nil {
		t.Error("want error for N < 2")
	}
	bad = good
	bad.TComp, bad.TComm = 0, 0
	if _, err := New(bad); err == nil {
		t.Error("want error for zero period")
	}
	bad = good
	bad.Potential = nil
	if _, err := New(bad); err == nil {
		t.Error("want error for nil potential")
	}
	bad = good
	bad.Topology = nil
	if _, err := New(bad); err == nil {
		t.Error("want error for nil topology")
	}
	bad = good
	bad.N = 12 // topology still has 8
	if _, err := New(bad); err == nil {
		t.Error("want error for topology size mismatch")
	}
	bad = good
	bad.Init = CustomPhases
	bad.InitialPhases = []float64{1, 2}
	if _, err := New(bad); err == nil {
		t.Error("want error for wrong InitialPhases length")
	}
}

func TestDerivedQuantities(t *testing.T) {
	cfg := baseConfig(t, 10)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != 1 {
		t.Errorf("Period = %v", m.Period())
	}
	if math.Abs(m.Omega()-2*math.Pi) > 1e-12 {
		t.Errorf("Omega = %v", m.Omega())
	}
	// v_p = βκ/period = 1·2/1 = 2 for eager, ±1, separate waits.
	if m.Vp() != 2 {
		t.Errorf("Vp = %v, want 2", m.Vp())
	}
	// Default gain N → effective coupling = v_p.
	if m.Coupling() != 2 {
		t.Errorf("Coupling = %v, want 2", m.Coupling())
	}
	cfg.Gain = 1
	m2, _ := New(cfg)
	if got := m2.Coupling(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("literal Eq.2 coupling = %v, want 0.2", got)
	}
	cfg.CouplingOverride = 7
	m3, _ := New(cfg)
	if m3.Vp() != 7 {
		t.Errorf("override Vp = %v", m3.Vp())
	}
}

func TestFreeOscillatorsAdvanceAtOmega(t *testing.T) {
	// Zero coupling → each phase grows exactly linearly at ω.
	cfg := baseConfig(t, 6)
	cfg.CouplingOverride = 1e-300 // effectively zero but valid
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for k, tt := range res.Ts {
		for i, th := range res.Theta[k] {
			want := m.Omega() * tt
			if math.Abs(th-want) > 1e-5 {
				t.Fatalf("free oscillator %d at t=%v: θ=%v, want %v", i, tt, th, want)
			}
		}
	}
}

func TestSynchronizedStateIsInvariantUnderTanh(t *testing.T) {
	// Lockstep is a fixed point of the coupled dynamics for odd
	// potentials: identical phases stay identical.
	cfg := baseConfig(t, 12)
	m, _ := New(cfg)
	res, err := m.Run(10, 21)
	if err != nil {
		t.Fatal(err)
	}
	final := res.FinalPhases()
	for i := 1; i < len(final); i++ {
		if math.Abs(final[i]-final[0]) > 1e-6 {
			t.Fatalf("lockstep broke under tanh without noise: %v", final)
		}
	}
}

func TestResyncAfterPerturbationTanh(t *testing.T) {
	// A perturbed scalable system must snap back into sync (§5.2.1).
	cfg := baseConfig(t, 16)
	cfg.Init = CustomPhases
	cfg.InitialPhases = make([]float64, 16)
	cfg.InitialPhases[5] = -2.5 // rank 5 starts behind (delayed)
	m, _ := New(cfg)
	res, err := m.Run(40, 201)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := res.ResyncTime(0.05)
	if err != nil {
		t.Fatalf("system did not resynchronize: %v", err)
	}
	if rt <= 0 || rt >= 40 {
		t.Errorf("resync time = %v", rt)
	}
	spread := res.SpreadTimeline()
	if spread[0] < 2 {
		t.Errorf("initial spread = %v, want ≈ 2.5", spread[0])
	}
	if last := spread[len(spread)-1]; last > 0.05 {
		t.Errorf("final spread = %v, want < 0.05", last)
	}
}

func TestDesyncFormsWavefront(t *testing.T) {
	// A bottlenecked system with a slight disturbance must develop a
	// computational wavefront: adjacent gaps at the potential's stable
	// zero 2σ/3 (§5.2.2). Open chain so the tilted state is admissible.
	sigma := 1.5
	n := 12
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		N:           n,
		TComp:       0.8,
		TComm:       0.2,
		Potential:   potential.NewDesync(sigma),
		Topology:    tp,
		Init:        RandomPhases,
		PerturbSeed: 3,
		PerturbAmp:  0.05,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(300, 601)
	if err != nil {
		t.Fatal(err)
	}
	gaps := res.AsymptoticGaps(0.1)
	want := 2 * sigma / 3
	for i, g := range gaps {
		if math.Abs(math.Abs(g)-want) > 0.12 {
			t.Errorf("gap %d = %v, want ±%v (wavefront)", i, g, want)
		}
	}
	if !res.FrequencyLocked(0.2, 1e-3) {
		t.Error("wavefront state must be frequency-locked")
	}
}

func TestDesyncLockstepUnstable(t *testing.T) {
	// Starting *exactly* synchronized with a tiny perturbation, the
	// desynchronizing potential must blow the disturbance up rather than
	// damp it (§5.2.2: "any slight disturbance blows up").
	n := 10
	tp, _ := topology.NextNeighbor(n, false)
	cfg := Config{
		N:           n,
		TComp:       1,
		TComm:       0,
		Potential:   potential.NewDesync(2),
		Topology:    tp,
		Init:        RandomPhases,
		PerturbSeed: 11,
		PerturbAmp:  0.01,
	}
	m, _ := New(cfg)
	res, err := m.Run(200, 401)
	if err != nil {
		t.Fatal(err)
	}
	spread := res.SpreadTimeline()
	if spread[len(spread)-1] < 10*spread[0] {
		t.Errorf("perturbation did not grow: initial %v, final %v",
			spread[0], spread[len(spread)-1])
	}
}

func TestDesynchronizedInitHoldsSteady(t *testing.T) {
	// Starting in the developed wavefront, the system stays there.
	n := 8
	sigma := 1.2
	tp, _ := topology.NextNeighbor(n, false)
	cfg := Config{
		N:         n,
		TComp:     1,
		TComm:     0,
		Potential: potential.NewDesync(sigma),
		Topology:  tp,
		Init:      Desynchronized,
	}
	m, _ := New(cfg)
	res, err := m.Run(50, 101)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * sigma / 3
	for _, g := range res.AsymptoticGaps(0.2) {
		if math.Abs(g-want) > 0.05 {
			t.Errorf("gap drifted from wavefront: %v, want %v", g, want)
		}
	}
}

func TestOneOffDelayLaunchesIdleWave(t *testing.T) {
	// The paper's Fig. 2 core phenomenon: a one-off delay at rank 5
	// ripples outward through next-neighbor dependencies.
	n := 24
	cfg := baseConfig(t, n)
	cfg.LocalNoise = noise.Delay{Rank: 5, Start: 5, Duration: 2, Extra: 50}
	m, _ := New(cfg)
	res, err := m.Run(60, 601)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := res.MeasureWave(5, 5, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Reached < n/2 {
		t.Errorf("wave reached only %d of %d ranks", wf.Reached, n)
	}
	if wf.Speed <= 0 {
		t.Errorf("wave speed = %v, want > 0", wf.Speed)
	}
	if wf.R2 < 0.6 {
		t.Errorf("wave front fit R2 = %v, want a recognizable front", wf.R2)
	}
	// Neighbors must be hit before distant ranks.
	t6, t12 := wf.ArrivalTime[6], wf.ArrivalTime[17]
	if !math.IsNaN(t6) && !math.IsNaN(t12) && t6 >= t12 {
		t.Errorf("arrival not ordered: rank6 %v, rank17 %v", t6, t12)
	}
	// And the system must eventually resynchronize (scalable program).
	if _, err := res.ResyncTime(0.1); err != nil {
		t.Errorf("no resync after idle wave: %v", err)
	}
}

func TestWaveSpeedGrowsWithCoupling(t *testing.T) {
	// §5.1.1: the larger βκ, the faster the wave.
	speed := func(couple float64) float64 {
		cfg := baseConfig(t, 24)
		cfg.CouplingOverride = couple
		cfg.LocalNoise = noise.Delay{Rank: 12, Start: 5, Duration: 2, Extra: 50}
		m, _ := New(cfg)
		res, err := m.Run(80, 801)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := res.MeasureWave(12, 5, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		return wf.SpeedRanksPerPeriod
	}
	s1 := speed(1)
	s4 := speed(4)
	if s4 <= s1 {
		t.Errorf("speed(βκ=4) = %v not above speed(βκ=1) = %v", s4, s1)
	}
}

func TestNormalizedPhasesLaggerBaseline(t *testing.T) {
	cfg := baseConfig(t, 8)
	cfg.Init = CustomPhases
	cfg.InitialPhases = []float64{0, 0, -1, 0, 0, 0, 0, 0}
	m, _ := New(cfg)
	res, err := m.Run(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.NormalizedPhases() {
		minv := row[0]
		for _, v := range row {
			if v < minv {
				minv = v
			}
		}
		if math.Abs(minv) > 1e-12 {
			t.Fatalf("lagger baseline not zero: %v", row)
		}
		for _, v := range row {
			if v < 0 {
				t.Fatalf("normalized phase below lagger: %v", row)
			}
		}
	}
}

func TestInteractionNoiseDDEPath(t *testing.T) {
	// With τ > 0 the DDE path runs; dynamics stay bounded and sync still
	// occurs for tanh coupling with a small constant lag.
	cfg := baseConfig(t, 10)
	cfg.Init = RandomPhases
	cfg.PerturbSeed = 5
	cfg.PerturbAmp = 0.3
	cfg.InteractionNoise = noise.ConstantLag{Lag: 0.05}
	m, _ := New(cfg)
	res, err := m.Run(30, 151)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.SpreadTimeline(); s[len(s)-1] > 0.1 {
		t.Errorf("delayed-coupling system failed to sync: spread %v", s[len(s)-1])
	}
}

func TestLocalNoiseJitterKeepsSystemBounded(t *testing.T) {
	cfg := baseConfig(t, 12)
	cfg.LocalNoise = noise.Jitter{Dist: noise.Gaussian, Amp: 0.05, Refresh: 1, Seed: 8}
	m, _ := New(cfg)
	res, err := m.Run(50, 101)
	if err != nil {
		t.Fatal(err)
	}
	// Under small noise, the tanh coupling keeps the spread small.
	if s := res.AsymptoticSpread(0.3); s > 1 {
		t.Errorf("noisy spread = %v, want < 1", s)
	}
}

func TestRunErrors(t *testing.T) {
	m, _ := New(baseConfig(t, 4))
	if _, err := m.Run(0, 10); err == nil {
		t.Error("want error for tEnd <= 0")
	}
}

func TestPotentialTimeline(t *testing.T) {
	cfg := baseConfig(t, 4)
	cfg.Init = CustomPhases
	cfg.InitialPhases = []float64{0, 1, 0, 0}
	m, _ := New(cfg)
	res, err := m.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.PotentialTimeline(0, 1)
	if len(pt) != 3 {
		t.Fatalf("timeline length %d", len(pt))
	}
	if math.Abs(pt[0]-math.Tanh(1)) > 1e-9 {
		t.Errorf("V at t=0: %v, want tanh(1)", pt[0])
	}
}

func TestFrequencyTimeline(t *testing.T) {
	cfg := baseConfig(t, 4)
	m, _ := New(cfg)
	res, err := m.Run(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	ft := res.FrequencyTimeline()
	if len(ft) != 8 {
		t.Fatalf("frequency rows = %d", len(ft))
	}
	for _, row := range ft {
		for _, f := range row {
			if math.Abs(f-2*math.Pi) > 1e-3 {
				t.Fatalf("undisturbed frequency %v, want 2π", f)
			}
		}
	}
}
