// Package core implements the physical oscillator model (POM) of the
// paper — its primary contribution. Each of the N MPI processes is an
// oscillator whose phase θ_i advances by 2π per compute–communicate cycle;
// the processes are coupled through a sparse topology matrix T and an
// interaction potential V (Eq. 2):
//
//	dθ_i/dt = 2π/(t_comp + t_comm + ζ_i(t))
//	        + (v_p·G/N) · Σ_j T_ij · V(θ_j(t−τ_ij(t)) − θ_i(t))
//
// with process-local noise ζ_i(t), interaction noise τ_ij(t), coupling
// strength v_p = β·κ/(t_comp+t_comm), and a dimensionless gain G (see
// Config.Gain). The system is integrated with the adaptive Dormand–Prince
// solver (delay-capable when τ ≠ 0), exactly as the paper's MATLAB
// artifact uses ode45.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/noise"
	"repro/internal/ode"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/topology"
)

// InitialCondition selects the starting phase configuration (§3.2: the
// MATLAB tool allows synchronized and desynchronized initial conditions).
type InitialCondition int

const (
	// Synchronized starts all oscillators at θ = 0 (lockstep).
	Synchronized InitialCondition = iota
	// Desynchronized starts with uniform phase gaps of one stable-zero
	// width between adjacent oscillators (the developed wavefront).
	Desynchronized
	// RandomPhases starts with small random perturbations around zero.
	RandomPhases
	// CustomPhases uses Config.InitialPhases verbatim.
	CustomPhases
)

// Config fully parameterizes a POM run — the paper emphasizes that the
// model has a small number of parameters, all exposed here.
type Config struct {
	// N is the number of oscillators (MPI processes).
	N int
	// TComp and TComm are the compute and communicate phase durations; the
	// natural period is their sum and the natural frequency 2π/period.
	TComp, TComm float64
	// Potential is the interaction potential V.
	Potential potential.Potential
	// Topology is the dependency structure T_ij.
	Topology *topology.Topology
	// Protocol sets β (eager 1, rendezvous 2).
	Protocol topology.Protocol
	// WaitMode sets the κ aggregation rule (Σ|d| vs max|d|).
	WaitMode topology.WaitMode
	// CouplingOverride, when > 0, replaces v_p = βκ/period.
	CouplingOverride float64
	// Gain is the dimensionless coupling gain G; 0 means the default N
	// (per-partner pull of strength v_p, which makes βκ = 1 the paper's
	// "minimum idle wave speed" case). Set Gain = 1 for the literal 1/N
	// Kuramoto normalization of Eq. (2).
	Gain float64
	// LocalNoise is ζ_i(t); nil means silent.
	LocalNoise noise.Local
	// InteractionNoise is τ_ij(t); nil means no delays.
	InteractionNoise noise.Interaction
	// Init selects the starting condition.
	Init InitialCondition
	// InitialPhases is used when Init == CustomPhases.
	InitialPhases []float64
	// PerturbSeed seeds the RandomPhases perturbation.
	PerturbSeed uint64
	// PerturbAmp is the RandomPhases amplitude (radians); 0 means 0.1.
	PerturbAmp float64
	// Atol and Rtol are solver tolerances; 0 selects 1e-8 / 1e-6.
	Atol, Rtol float64
	// Workers is the number of goroutines evaluating the right-hand side,
	// chunked over contiguous oscillator ranges; 0 or 1 means serial.
	// Parallel evaluation is bit-for-bit identical to serial evaluation:
	// every oscillator's coupling sum is accumulated in the same order
	// regardless of the chunking. Worth using from roughly N ≥ 512.
	// With Workers > 1 the LocalNoise.Zeta and Potential batch methods
	// are called concurrently from pool goroutines, so custom
	// implementations must be safe for concurrent use (the built-in
	// noises and potentials are stateless and qualify).
	Workers int
}

// Model is a configured POM system ready to integrate. A Model is not
// safe for concurrent use; parallelism happens inside the right-hand
// side via Config.Workers.
type Model struct {
	cfg    Config
	period float64
	omega  float64
	vp     float64
	gain   float64
	k      float64 // effective per-partner coupling v_p·G/N

	// Hot-path state: the flat CSR neighbor arrays, the batched potential,
	// and one scratch slot per directed edge. rhs gathers phase
	// differences into dbuf (indexed exactly like flat.Cols), evaluates
	// the potential over the packed buffer in one call, and reduces per
	// row — no per-pair interface dispatch and no steady-state
	// allocations.
	flat  topology.FlatNeighbors
	batch potential.Batch
	dbuf  []float64
	rows  []int32 // rows[p] = owning oscillator of edge p (gather loop)

	// Parallel dispatch (Workers > 1): nw fixed chunk bounds over
	// oscillator rows — balanced by nonzeros per row (sim.WeightedChunks
	// over the CSR RowPtr), so irregular topologies load workers evenly —
	// and a persistent sim.Runner pool. The per-call arguments are staged
	// in cur* fields so dispatch sends only a chunk index over a channel.
	nw      int
	runner  *sim.Runner
	curT    float64
	curY    []float64
	curDydt []float64
}

// New validates the configuration and builds a model.
func New(cfg Config) (*Model, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("core: need N >= 2, got %d", cfg.N)
	}
	if cfg.TComp < 0 || cfg.TComm < 0 || cfg.TComp+cfg.TComm <= 0 {
		return nil, errors.New("core: need tComp + tComm > 0 with nonnegative parts")
	}
	if cfg.Potential == nil {
		return nil, errors.New("core: nil potential")
	}
	if cfg.Topology == nil {
		return nil, errors.New("core: nil topology")
	}
	if cfg.Topology.N != cfg.N {
		return nil, fmt.Errorf("core: topology has %d ranks, config %d", cfg.Topology.N, cfg.N)
	}
	if cfg.Init == CustomPhases && len(cfg.InitialPhases) != cfg.N {
		return nil, fmt.Errorf("core: InitialPhases has %d entries, want %d", len(cfg.InitialPhases), cfg.N)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative Workers %d", cfg.Workers)
	}
	m := &Model{cfg: cfg}
	m.period = cfg.TComp + cfg.TComm
	m.omega = mathx.TwoPi / m.period
	if cfg.CouplingOverride > 0 {
		m.vp = cfg.CouplingOverride
	} else {
		m.vp = cfg.Topology.Coupling(cfg.Protocol, cfg.WaitMode, cfg.TComp, cfg.TComm)
	}
	m.gain = cfg.Gain
	if m.gain == 0 {
		m.gain = float64(cfg.N)
	}
	m.k = m.vp * m.gain / float64(cfg.N)
	m.flat = cfg.Topology.Flat()
	m.batch = potential.BatchOf(cfg.Potential)
	m.dbuf = make([]float64, m.flat.NNZ())
	m.rows = make([]int32, m.flat.NNZ())
	for i := 0; i < cfg.N; i++ {
		for p := m.flat.RowPtr[i]; p < m.flat.RowPtr[i+1]; p++ {
			m.rows[p] = int32(i)
		}
	}
	m.nw = cfg.Workers
	if m.nw < 1 {
		m.nw = 1
	}
	if m.nw > cfg.N {
		m.nw = cfg.N
	}
	if m.nw > 1 {
		// Chunk rows by nonzero count, not row count: on irregular
		// topologies (hubs, power-law stencils) even row chunks would give
		// one worker most of the edges. Any contiguous chunking yields
		// bit-for-bit the serial result (disjoint dydt/dbuf ranges,
		// per-row accumulation order fixed), so balance is free.
		m.runner = sim.NewRunner(
			sim.WeightedChunks(m.flat.RowPtr, m.nw),
			func(lo, hi int) { m.rhsRange(m.curT, m.curY, m.curDydt, lo, hi) },
		)
	}
	return m, nil
}

// Period returns the natural compute–communicate period.
func (m *Model) Period() float64 { return m.period }

// Omega returns the natural angular frequency 2π/period.
func (m *Model) Omega() float64 { return m.omega }

// Coupling returns the effective per-partner coupling strength
// v_p·G/N used in the right-hand side.
func (m *Model) Coupling() float64 { return m.vp * m.gain / float64(m.cfg.N) }

// Vp returns the paper's coupling strength v_p = βκ/period (or the
// override).
func (m *Model) Vp() float64 { return m.vp }

// N returns the number of oscillators.
func (m *Model) N() int { return m.cfg.N }

// initialState builds θ(0) according to the configured initial condition.
func (m *Model) initialState() []float64 {
	y0 := make([]float64, m.cfg.N)
	switch m.cfg.Init {
	case Desynchronized:
		gap := 0.0
		if a, ok := m.cfg.Potential.(potential.Analyzable); ok {
			gap = a.StableZero()
		}
		for i := range y0 {
			y0[i] = float64(i) * gap
		}
	case RandomPhases:
		amp := m.cfg.PerturbAmp
		if amp == 0 {
			amp = 0.1
		}
		for i := range y0 {
			// Deterministic hash-based perturbation (no shared RNG state).
			u := hashUnit(m.cfg.PerturbSeed, i)
			y0[i] = amp * (2*u - 1)
		}
	case CustomPhases:
		copy(y0, m.cfg.InitialPhases)
	}
	return y0
}

// hashUnit maps (seed, i) to a deterministic uniform in [0, 1).
//
//pomvet:allocfree
func hashUnit(seed uint64, i int) float64 {
	z := seed ^ 0x9e3779b97f4a7c15
	z ^= uint64(i+1) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// zeta returns ζ_i(t), guarded so the instantaneous period stays positive.
//
//pomvet:allocfree
func (m *Model) zeta(i int, t float64) float64 {
	if m.cfg.LocalNoise == nil {
		return 0
	}
	z := m.cfg.LocalNoise.Zeta(i, t)
	if z < -0.9*m.period {
		z = -0.9 * m.period
	}
	return z
}

// rhs writes the Eq. (2) right-hand side. past is nil for the pure-ODE
// path (no interaction noise); then partner phases are read from y.
//
//pomvet:allocfree
func (m *Model) rhs(t float64, y []float64, past ode.Past, dydt []float64) {
	if past != nil && m.cfg.InteractionNoise != nil {
		m.rhsDelayed(t, y, past, dydt)
		return
	}
	if m.nw > 1 {
		m.curT, m.curY, m.curDydt = t, y, dydt
		m.runner.Run()
		m.curY, m.curDydt = nil, nil
		return
	}
	m.rhsRange(t, y, dydt, 0, m.cfg.N)
}

// Close stops the worker goroutines of a Workers > 1 model. It is safe to
// call on any model (serial models have no pool) and the pool restarts
// transparently if the model is used again afterwards.
func (m *Model) Close() {
	if m.runner != nil {
		m.runner.Close()
	}
}

// EvalRHS evaluates the delay-free Eq. (2) right-hand side at time t into
// dydt; both slices must have length N. (Interaction-noise delays need
// the solution history and are only active inside Run.) It is exported
// for benchmarks and external integrators.
func (m *Model) EvalRHS(t float64, y, dydt []float64) { m.rhs(t, y, nil, dydt) }

// rhsRange evaluates the delay-free right-hand side for oscillator rows
// [lo, hi): gather the phase differences of the block into the packed
// scratch buffer, evaluate the potential over the block in one batched
// call, then reduce each row. Chunks touch disjoint dbuf/dydt ranges, so
// pool workers can run this concurrently without synchronization.
//
//pomvet:allocfree
func (m *Model) rhsRange(t float64, y, dydt []float64, lo, hi int) {
	rowPtr, cols, rows, buf := m.flat.RowPtr, m.flat.Cols, m.rows, m.dbuf
	b0, b1 := rowPtr[lo], rowPtr[hi]
	for p := b0; p < b1; p++ {
		buf[p] = y[cols[p]] - y[rows[p]]
	}
	m.batch.EvalInto(buf[b0:b1], buf[b0:b1])
	k := m.k
	if m.cfg.LocalNoise == nil {
		for i := lo; i < hi; i++ {
			var c float64
			for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
				c += buf[p]
			}
			dydt[i] = m.omega + k*c
		}
		return
	}
	for i := lo; i < hi; i++ {
		var c float64
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			c += buf[p]
		}
		dydt[i] = mathx.TwoPi/(m.period+m.zeta(i, t)) + k*c
	}
}

// rhsDelayed is the DDE path: partner phases older than t are read from
// the dense-output history. Delays are per-pair and time-dependent, so
// this path stays scalar; it still walks the flat CSR arrays.
//
//pomvet:allocfree
func (m *Model) rhsDelayed(t float64, y []float64, past ode.Past, dydt []float64) {
	rowPtr, cols := m.flat.RowPtr, m.flat.Cols
	inoise := m.cfg.InteractionNoise
	k := m.k
	for i := range y {
		freq := mathx.TwoPi / (m.period + m.zeta(i, t))
		var coupling float64
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			j := int(cols[p])
			thj := y[j]
			if tau := inoise.Tau(i, j, t); tau > 0 {
				thj = past.Eval(j, t-tau)
			}
			coupling += m.cfg.Potential.Eval(thj - y[i])
		}
		dydt[i] = freq + k*coupling
	}
}

// Result is a completed POM integration.
type Result struct {
	// Ts are the sample times.
	Ts []float64
	// Theta[k][i] is oscillator i's (unwrapped) phase at Ts[k].
	Theta [][]float64
	// Stats reports the solver work.
	Stats ode.Stats
	// Model echoes the integrated model.
	Model *Model
}

// The solver loop, sample-plan machinery, and sink protocol live in the
// shared sim runtime; Model participates by implementing sim.System (plus
// the Delayed, Tuned, and Releaser extensions). Run, RunStream, and
// RunSummary are thin shims over sim.Run / sim.RunStream and produce
// bit-for-bit the output the pre-sim bespoke loop produced.

// Dim implements sim.System.
func (m *Model) Dim() int { return m.cfg.N }

// InitialState implements sim.System: θ(0) under the configured initial
// condition.
func (m *Model) InitialState() []float64 { return m.initialState() }

// Eval implements sim.System: the delay-free Eq. (2) right-hand side.
func (m *Model) Eval(t float64, y, dydt []float64) { m.rhs(t, y, nil, dydt) }

// EvalDelayed implements sim.Delayed: partner phases older than t are
// read from the dense-output history.
func (m *Model) EvalDelayed(t float64, y []float64, past ode.Past, dydt []float64) {
	m.rhs(t, y, past, dydt)
}

// MaxDelay implements sim.Delayed; a positive bound routes the
// integration through the DDE driver.
func (m *Model) MaxDelay() float64 {
	if m.cfg.InteractionNoise == nil {
		return 0
	}
	return m.cfg.InteractionNoise.Max()
}

// Solver implements sim.Tuned. The step is capped at a quarter period:
// the noise channels are piecewise-constant on cells of about one
// period, and an unconstrained controller would otherwise grow the step
// so large in quiescent phases that a one-off delay window falls between
// stage evaluations and is silently skipped.
func (m *Model) Solver() sim.Solver {
	return sim.Solver{Atol: m.cfg.Atol, Rtol: m.cfg.Rtol, Hmax: 0.25 * m.period}
}

// Release implements sim.Releaser: the worker pool restarts lazily on
// the next parallel rhs call, so releasing it after every run means a
// Model dropped after Run leaks no goroutines even without an explicit
// Close (sweeps build thousands of models). Direct EvalRHS users keep
// the pool across calls and own the Close.
func (m *Model) Release() {
	if m.nw > 1 {
		m.Close()
	}
}

// Run integrates the model from t = 0 to tEnd, sampling nSamples points
// uniformly (including both endpoints).
func (m *Model) Run(tEnd float64, nSamples int) (*Result, error) {
	if tEnd <= 0 {
		return nil, errors.New("core: tEnd must be positive")
	}
	res, err := sim.Run(m, tEnd, nSamples)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Result{Ts: res.Ts, Theta: res.Ys, Stats: res.Stats, Model: m}, nil
}

// NormalizedPhases returns the paper's standard view (§3.2): θ_i(t) − ω·t,
// shifted so that the lagger (most delayed oscillator at each sample) is
// the baseline at zero. Rows index samples, columns oscillators.
func (r *Result) NormalizedPhases() [][]float64 {
	omega := r.Model.omega
	out := make([][]float64, len(r.Ts))
	for k, th := range r.Theta {
		row := make([]float64, len(th))
		minv := math.Inf(1)
		for i, v := range th {
			row[i] = v - omega*r.Ts[k]
			if row[i] < minv {
				minv = row[i]
			}
		}
		for i := range row {
			row[i] -= minv
		}
		out[k] = row
	}
	return out
}

// PhaseAt returns the phase vector at sample k.
func (r *Result) PhaseAt(k int) []float64 { return r.Theta[k] }

// FinalPhases returns the last sampled phase vector.
func (r *Result) FinalPhases() []float64 {
	if len(r.Theta) == 0 {
		return nil
	}
	return r.Theta[len(r.Theta)-1]
}

// PotentialTimeline returns V(θ_j − θ_i) for a fixed pair (i, j) over all
// samples — the third visualization mode of §3.2.
func (r *Result) PotentialTimeline(i, j int) []float64 {
	out := make([]float64, len(r.Theta))
	for k, th := range r.Theta {
		out[k] = r.Model.cfg.Potential.Eval(th[j] - th[i])
	}
	return out
}
