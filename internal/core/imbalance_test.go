package core

import (
	"math"
	"testing"

	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// TestStaticImbalancePinsTheSystem exercises the §3.1 remark that the
// process-local noise channel "can also serve to model load imbalance":
// one permanently slower rank under the synchronizing potential drags the
// whole chain into frequency lock with a static lag profile centered on
// the slow rank. The locked frequency is pinned exactly by the model's
// conservation law Σθ̇ᵢ = Σωᵢ (symmetric topology, odd potential): it is
// the *average* of the natural frequencies. (A real MPI chain locks to
// the slowest rank instead — blocking receives only pull backwards; the
// tanh potential pulls both ways. This is a genuine, documented deviation
// of the oscillator analogy for static imbalance.)
func TestStaticImbalancePinsTheSystem(t *testing.T) {
	n := 12
	slow := 6
	extra := 0.1 // +10% period on the slow rank
	cfg := baseConfig(t, n)
	cfg.LocalNoise = noise.Imbalance{Extra: map[int]float64{slow: extra}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(200, 401)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrequencyLocked(0.2, 1e-2) {
		t.Fatal("imbalanced system must still frequency-lock (tanh coupling)")
	}
	// Conservation law: the locked frequency is the mean of the natural
	// frequencies.
	ft := res.FrequencyTimeline()
	locked := ft[len(ft)-1][0]
	omegaSlow := 2 * math.Pi / (m.Period() + extra)
	wantLock := (float64(n-1)*m.Omega() + omegaSlow) / float64(n)
	if math.Abs(locked-wantLock) > 1e-3 {
		t.Errorf("locked frequency %v, want mean frequency %v", locked, wantLock)
	}
	// Static profile: the slow rank is the lagger; lag grows toward it.
	norm := res.NormalizedPhases()
	last := norm[len(norm)-1]
	if last[slow] > 1e-6 {
		t.Errorf("slow rank must be the lagger baseline, got %v", last[slow])
	}
	for i := 1; i < n/2-1; i++ {
		// Moving away from the slow rank, the normalized phase (lead over
		// the lagger) must not decrease.
		if last[slow+i+1] < last[slow+i]-1e-6 {
			t.Errorf("lead profile not monotone away from slow rank at %d: %v < %v",
				slow+i, last[slow+i+1], last[slow+i])
		}
	}
}

// TestImbalanceTooStrongForCoupling: when the frequency detuning exceeds
// what the saturated tanh pull can compensate, the slow rank falls behind
// without bound — the analogue of Kuramoto drift above the locking
// threshold. The saturated pull on the slow rank is at most
// 2·k (two partners); detuning beyond that cannot lock.
func TestImbalanceTooStrongForCoupling(t *testing.T) {
	n := 8
	slow := 4
	cfg := baseConfig(t, n)
	cfg.CouplingOverride = 0.05 // weak coupling: max pull 2·0.05 = 0.1 rad/s
	// Detuning: ω − 2π/(1+extra) ≈ 2π·extra for small extra; make it ≫ 0.1.
	cfg.LocalNoise = noise.Imbalance{Extra: map[int]float64{slow: 0.5}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(100, 201)
	if err != nil {
		t.Fatal(err)
	}
	spread := res.SpreadTimeline()
	// The spread must keep growing (no lock): final much larger than
	// mid-run.
	mid, last := spread[len(spread)/2], spread[len(spread)-1]
	if last < 1.5*mid {
		t.Errorf("spread stopped growing (%v -> %v) — expected unbounded drift", mid, last)
	}
}

// TestImbalanceWithDesyncPotential: the wavefront still forms around a
// mildly imbalanced rank (robustness of the broken-symmetry state).
func TestImbalanceWithDesyncPotential(t *testing.T) {
	n := 10
	sigma := 1.5
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		N: n, TComp: 0.8, TComm: 0.2,
		Potential:   potential.NewDesync(sigma),
		Topology:    tp,
		Init:        RandomPhases,
		PerturbSeed: 13,
		PerturbAmp:  0.02,
		LocalNoise:  noise.Imbalance{Extra: map[int]float64{3: 0.01}},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(300, 601)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrequencyLocked(0.2, 1e-2) {
		t.Error("mildly imbalanced wavefront must lock")
	}
	gaps := res.AsymptoticGaps(0.1)
	want := 2 * sigma / 3
	for i, g := range gaps {
		if math.Abs(math.Abs(g)-want) > 0.2 {
			t.Errorf("gap %d = %v, want ±%v", i, g, want)
		}
	}
}
