package core

import (
	"math"
	"testing"

	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// streamCase builds one model configuration per (dde, workers) combination
// so the streamed and materialized runs integrate fresh, identical models.
func streamCase(t *testing.T, dde bool, workers int) Config {
	t.Helper()
	tp, err := topology.NextNeighbor(16, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		N:           16,
		TComp:       0.8,
		TComm:       0.2,
		Potential:   potential.NewDesync(1.5),
		Topology:    tp,
		Init:        RandomPhases,
		PerturbSeed: 5,
		PerturbAmp:  0.02,
		LocalNoise:  noise.Delay{Rank: 3, Start: 10, Duration: 1, Extra: 50},
		Workers:     workers,
	}
	if dde {
		cfg.InteractionNoise = noise.ConstantLag{Lag: 0.05}
	}
	return cfg
}

// TestRunStreamMatchesRun pins the streaming contract end to end: for both
// the ODE and the DDE (interaction-noise) solver paths, serial and with a
// worker pool, every accumulator output is bitwise identical to the metric
// computed from the materialized Result.
func TestRunStreamMatchesRun(t *testing.T) {
	const (
		tEnd     = 120.0
		nSamples = 241
		eps      = 0.1
		ff       = 0.15
	)
	for _, tc := range []struct {
		name    string
		dde     bool
		workers int
	}{
		{"ode/workers1", false, 1},
		{"ode/workers4", false, 4},
		{"dde/workers1", true, 1},
		{"dde/workers4", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := streamCase(t, tc.dde, tc.workers)
			mMat, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mMat.Run(tEnd, nSamples)
			if err != nil {
				t.Fatal(err)
			}

			mStr, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			spread := &SpreadAccumulator{FinalFraction: ff, KeepTimeline: true}
			order := &OrderAccumulator{KeepTimeline: true}
			resync := &ResyncDetector{Eps: eps}
			gaps := &GapAccumulator{FinalFraction: ff}
			stats, err := mStr.RunStream(tEnd, nSamples, Tee(spread, order, resync, gaps))
			if err != nil {
				t.Fatal(err)
			}
			if stats != res.Stats {
				t.Errorf("solver stats diverged: streamed %v, materialized %v", stats, res.Stats)
			}

			wantSpread := res.SpreadTimeline()
			if len(spread.Timeline) != len(wantSpread) {
				t.Fatalf("spread timeline length %d, want %d", len(spread.Timeline), len(wantSpread))
			}
			for k := range wantSpread {
				if spread.Timeline[k] != wantSpread[k] {
					t.Fatalf("spread[%d]: streamed %v, materialized %v (not bitwise equal)",
						k, spread.Timeline[k], wantSpread[k])
				}
			}
			wantOrder := res.OrderTimeline()
			for k := range wantOrder {
				if order.Timeline[k] != wantOrder[k] {
					t.Fatalf("order[%d]: streamed %v, materialized %v", k, order.Timeline[k], wantOrder[k])
				}
			}
			if got, want := spread.Asymptotic(), res.AsymptoticSpread(ff); got != want {
				t.Errorf("asymptotic spread: streamed %v, materialized %v", got, want)
			}

			wantRt, wantErr := res.ResyncTime(eps)
			gotRt, gotErr := resync.ResyncTime()
			if (gotErr == nil) != (wantErr == nil) || gotRt != wantRt {
				t.Errorf("resync: streamed (%v, %v), materialized (%v, %v)", gotRt, gotErr, wantRt, wantErr)
			}

			wantGaps := res.AsymptoticGaps(ff)
			gotGaps := gaps.Gaps()
			if len(gotGaps) != len(wantGaps) {
				t.Fatalf("gap width %d, want %d", len(gotGaps), len(wantGaps))
			}
			for i := range wantGaps {
				if gotGaps[i] != wantGaps[i] {
					t.Fatalf("gap[%d]: streamed %v, materialized %v", i, gotGaps[i], wantGaps[i])
				}
			}
		})
	}
}

// TestWaveDetectorMatchesMeasureWave pins the streaming wave-front metric
// against the materialized MeasureWave on the Fig. 2 delay scenario.
func TestWaveDetectorMatchesMeasureWave(t *testing.T) {
	tp, err := topology.NextNeighbor(40, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		N: 40, TComp: 0.8, TComm: 0.2,
		Potential:  potential.Tanh{},
		Topology:   tp,
		LocalNoise: noise.Delay{Rank: 5, Start: 20, Duration: 2.5, Extra: 100},
	}
	const tEnd, nSamples = 200.0, 2001

	mMat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mMat.Run(tEnd, nSamples)
	if err != nil {
		t.Fatal(err)
	}
	want, wantErr := res.MeasureWave(5, 20, 0.15)

	mStr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewWaveDetector(mStr, 5, 20, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mStr.RunStream(tEnd, nSamples, det); err != nil {
		t.Fatal(err)
	}
	got, gotErr := det.Finish()

	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("errors diverged: streamed %v, materialized %v", gotErr, wantErr)
	}
	if got.Origin != want.Origin || got.Reached != want.Reached {
		t.Errorf("front shape: streamed %+v, materialized %+v", got, want)
	}
	if got.Speed != want.Speed || got.SpeedRanksPerPeriod != want.SpeedRanksPerPeriod || got.R2 != want.R2 {
		t.Errorf("fit: streamed (%v, %v, %v), materialized (%v, %v, %v)",
			got.Speed, got.SpeedRanksPerPeriod, got.R2, want.Speed, want.SpeedRanksPerPeriod, want.R2)
	}
	for i := range want.ArrivalTime {
		g, w := got.ArrivalTime[i], want.ArrivalTime[i]
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("arrival[%d]: streamed %v, materialized %v", i, g, w)
		}
	}
	if want.Reached < 10 {
		t.Fatalf("wave reached only %d ranks; scenario too weak to pin the metric", want.Reached)
	}
}

// TestRunSummaryResync checks the convenience reduction on a
// resynchronizing scenario against the materialized report values.
func TestRunSummaryResync(t *testing.T) {
	cfg := baseConfig(t, 16)
	cfg.LocalNoise = noise.Delay{Rank: 3, Start: 10, Duration: 1, Extra: 20}

	mMat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mMat.Run(150, 301)
	if err != nil {
		t.Fatal(err)
	}
	mStr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mStr.RunSummary(150, 301, 0.1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := res.ResyncTime(0.1)
	if err != nil {
		t.Fatalf("scenario must resynchronize: %v", err)
	}
	if !sum.Resynced || sum.ResyncTime != rt {
		t.Errorf("summary resync (%v, %v), materialized %v", sum.Resynced, sum.ResyncTime, rt)
	}
	if got, want := sum.AsymptoticSpread, res.AsymptoticSpread(0.15); got != want {
		t.Errorf("summary asymptotic spread %v, want %v", got, want)
	}
	if sum.Stats != res.Stats {
		t.Errorf("summary stats %v, want %v", sum.Stats, res.Stats)
	}
}

// TestRunSummaryToExtraSinks checks the archive hook: extra sinks teed
// into RunSummaryTo see exactly the rows the accumulators see (count,
// times, and values), and the summary itself is unchanged by their
// presence.
func TestRunSummaryToExtraSinks(t *testing.T) {
	cfg := baseConfig(t, 8)
	cfg.LocalNoise = noise.Delay{Rank: 3, Start: 10, Duration: 1, Extra: 20}
	const tEnd, nSamples = 60.0, 121

	mPlain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mPlain.RunSummary(tEnd, nSamples, 0.1, 0.15)
	if err != nil {
		t.Fatal(err)
	}

	mTee, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	var lastT float64
	var width int
	tap := SinkFunc(func(ts float64, theta []float64) {
		rows++
		lastT = ts
		width = len(theta)
	})
	got, err := mTee.RunSummaryTo(tEnd, nSamples, 0.1, 0.15, tap)
	if err != nil {
		t.Fatal(err)
	}
	if rows != nSamples || lastT != tEnd || width != 8 {
		t.Errorf("extra sink saw %d rows (last t=%v, width %d), want %d rows to t=%v width 8",
			rows, lastT, width, nSamples, tEnd)
	}
	if got.AsymptoticSpread != want.AsymptoticSpread || got.ResyncTime != want.ResyncTime ||
		got.MeanAbsGap != want.MeanAbsGap || got.Stats != want.Stats {
		t.Errorf("extra sinks perturbed the summary: %+v vs %+v", got, want)
	}
}

// TestSummaryVector pins the archive metric layout.
func TestSummaryVector(t *testing.T) {
	s := &Summary{
		FinalSpread: 1, MaxSpread: 2, AsymptoticSpread: 3,
		FinalOrder: 4, MinOrder: 5,
		Resynced: true, ResyncTime: 6, MeanAbsGap: 7,
	}
	want := []float64{1, 2, 3, 4, 5, 1, 6, 7}
	got := s.Vector()
	if len(got) != len(want) {
		t.Fatalf("vector length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("vector[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if v := (&Summary{}).Vector(); v[5] != 0 {
		t.Error("non-resynced flag must encode as 0")
	}
}

// TestRunStreamValidation covers the error paths.
func TestRunStreamValidation(t *testing.T) {
	m, err := New(baseConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunStream(10, 11, nil); err == nil {
		t.Error("want error for nil sink")
	}
	if _, err := m.RunStream(-1, 11, Tee()); err == nil {
		t.Error("want error for non-positive tEnd")
	}
}

// TestAdjacentGapTimelineEmptyRow is the regression test for the
// make-with-negative-length panic: an empty sample row must produce an
// empty gap row, not a crash.
func TestAdjacentGapTimelineEmptyRow(t *testing.T) {
	r := &Result{
		Ts:    []float64{0, 1, 2},
		Theta: [][]float64{{1, 2, 4}, {}, {2, 3, 5}},
	}
	gaps := r.AdjacentGapTimeline()
	if len(gaps) != 3 {
		t.Fatalf("got %d rows, want 3", len(gaps))
	}
	if len(gaps[1]) != 0 {
		t.Errorf("empty sample row must yield an empty gap row, got %v", gaps[1])
	}
	if gaps[0][0] != 1 || gaps[0][1] != 2 || gaps[2][1] != 2 {
		t.Errorf("gap values wrong: %v", gaps)
	}
}

// TestAsymptoticGapsNilModel is the regression test for the nil-Model
// dereference: a hand-built Result (no Model attached) must derive the
// gap width from its sample rows.
func TestAsymptoticGapsNilModel(t *testing.T) {
	r := &Result{
		Ts:    []float64{0, 1},
		Theta: [][]float64{{0, 1, 3}, {0, 2, 6}},
	}
	gaps := r.AsymptoticGaps(1)
	if len(gaps) != 2 {
		t.Fatalf("got %d gaps, want 2", len(gaps))
	}
	if gaps[0] != 1.5 || gaps[1] != 3 {
		t.Errorf("gaps = %v, want [1.5 3]", gaps)
	}
	if out := (&Result{}).AsymptoticGaps(0.5); out != nil {
		t.Errorf("empty result must yield nil gaps, got %v", out)
	}
}
