package core

import (
	"errors"
	"math"

	"repro/internal/ode"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The streaming-sink protocol and the generic online accumulators moved
// to the shared sim runtime (PR 4) so the Kuramoto and continuum
// families stream through the exact same machinery; the names below are
// aliases, so every existing caller — and the archive.RecordWriter Sink
// implementation — keeps compiling and behaving identically. Only the
// POM-specific WaveDetector stays here (it needs the model's topology
// and natural frequency).
type (
	// Sink consumes the sample rows of a streaming integration in time
	// order; see sim.Sink.
	Sink = sim.Sink
	// SinkFunc adapts a plain callback to the Sink interface.
	SinkFunc = sim.SinkFunc
	// SpreadAccumulator computes the phase-spread metrics online.
	SpreadAccumulator = sim.SpreadAccumulator
	// OrderAccumulator computes the Kuramoto order parameter online.
	OrderAccumulator = sim.OrderAccumulator
	// ResyncDetector finds the resynchronization time online.
	ResyncDetector = sim.ResyncDetector
	// GapAccumulator time-averages the adjacent phase gaps online.
	GapAccumulator = sim.GapAccumulator
	// LockAccumulator decides asymptotic frequency locking online.
	LockAccumulator = sim.LockAccumulator
	// Summary is the O(N) reduction of one streamed run.
	Summary = sim.Summary
)

// Tee combines several sinks into one that replays every row to each, in
// order — the standard way to run multiple accumulators over one pass.
func Tee(sinks ...Sink) Sink { return sim.Tee(sinks...) }

// RunStream integrates the model from t = 0 to tEnd like Run, but emits
// the nSamples uniform sample rows to sink as they are produced instead of
// materializing them: the run's memory is independent of nSamples. The
// rows streamed to the sink are bit-for-bit the rows Run would store.
func (m *Model) RunStream(tEnd float64, nSamples int, sink Sink) (ode.Stats, error) {
	if sink == nil {
		return ode.Stats{}, errors.New("core: nil sink")
	}
	if tEnd <= 0 {
		return ode.Stats{}, errors.New("core: tEnd must be positive")
	}
	return sim.RunStream(m, tEnd, nSamples, sink)
}

// RunSummary streams a run through the standard accumulator set and
// returns the O(N) summary. resyncEps 0 selects 0.1 and finalFraction 0
// selects 0.15 — the thresholds the materialized report paths use.
func (m *Model) RunSummary(tEnd float64, nSamples int, resyncEps, finalFraction float64) (*Summary, error) {
	return m.RunSummaryTo(tEnd, nSamples, resyncEps, finalFraction)
}

// RunSummaryTo is RunSummary with extra sinks teed into the same single
// pass over the sample stream — the hook archive-mode sweeps use to
// persist the full trajectory (an archive.RecordWriter is a Sink) while
// the standard summary accumulates. The extra sinks see exactly the
// rows the accumulators see, in the same order.
func (m *Model) RunSummaryTo(tEnd float64, nSamples int, resyncEps, finalFraction float64, extra ...Sink) (*Summary, error) {
	if tEnd <= 0 {
		return nil, errors.New("core: tEnd must be positive")
	}
	return sim.RunSummaryTo(m, tEnd, nSamples, resyncEps, finalFraction, extra...)
}

// WaveDetector measures the idle-wave front launched by a one-off delay
// online — the streaming counterpart of Result.MeasureWave, producing the
// identical WaveFront: the pre-delay baseline lag is tracked sample by
// sample, arrivals are detected forward, and the speed fit runs once in
// Finish.
type WaveDetector struct {
	origin        int
	delayStart    float64
	threshold     float64
	omega, period float64
	periodic      bool

	n       int
	k       int
	frozen  bool
	base    []float64
	arrival []float64
}

// NewWaveDetector builds a wave detector for the model's topology and
// frequency. threshold 0 selects 0.15 rad, as in MeasureWave.
func NewWaveDetector(m *Model, origin int, delayStart, threshold float64) (*WaveDetector, error) {
	if origin < 0 || origin >= m.cfg.N {
		return nil, errors.New("core: wave origin out of range")
	}
	if threshold <= 0 {
		threshold = 0.15
	}
	return &WaveDetector{
		origin:     origin,
		delayStart: delayStart,
		threshold:  threshold,
		omega:      m.omega,
		period:     m.period,
		periodic:   m.cfg.Topology.Periodic,
	}, nil
}

// Begin implements Sink.
func (w *WaveDetector) Begin(n, _ int) {
	w.n = n
	w.k = 0
	w.frozen = false
	if cap(w.base) < n {
		w.base = make([]float64, n)
		w.arrival = make([]float64, n)
	}
	w.base = w.base[:n]
	w.arrival = w.arrival[:n]
	for i := range w.arrival {
		w.arrival[i] = math.NaN()
	}
}

// Sample implements Sink.
func (w *WaveDetector) Sample(t float64, theta []float64) {
	k := w.k
	w.k++
	if !w.frozen {
		if k == 0 || t < w.delayStart {
			// This sample is (so far) the last one before the delay hits:
			// it defines the baseline lag, like MeasureWave's k0 row.
			for i := 0; i < w.n; i++ {
				w.base[i] = w.omega*t - theta[i]
			}
			if k == 0 && t >= w.delayStart {
				w.frozen = true // arrivals scan starts at the next sample
			}
			return
		}
		w.frozen = true
	}
	for i := 0; i < w.n; i++ {
		if !math.IsNaN(w.arrival[i]) {
			continue
		}
		if w.omega*t-theta[i]-w.base[i] > w.threshold {
			w.arrival[i] = t
		}
	}
}

// Finish fits the front speed from the accumulated arrivals and returns
// the WaveFront MeasureWave would compute on the materialized run.
func (w *WaveDetector) Finish() (WaveFront, error) {
	wf := WaveFront{Origin: w.origin, ArrivalTime: append([]float64(nil), w.arrival...)}
	var xs, ys []float64 // x: arrival time, y: distance from origin
	for i := 0; i < w.n; i++ {
		if math.IsNaN(w.arrival[i]) || i == w.origin {
			continue
		}
		d := i - w.origin
		if d < 0 {
			d = -d
		}
		// On a ring the wave can travel both ways; use the shorter arc.
		if w.periodic && w.n-d < d {
			d = w.n - d
		}
		xs = append(xs, w.arrival[i])
		ys = append(ys, float64(d))
		wf.Reached++
	}
	if len(xs) < 3 {
		return wf, errors.New("core: wave reached too few ranks to fit a speed")
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return wf, err
	}
	wf.Speed = math.Abs(fit.Slope)
	wf.SpeedRanksPerPeriod = wf.Speed * w.period
	wf.R2 = fit.R2
	return wf, nil
}
