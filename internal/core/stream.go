package core

import (
	"errors"
	"math"

	"repro/internal/ode"
	"repro/internal/stats"
)

// Sink consumes the sample rows of a streaming integration in time order.
// RunStream drives a sink instead of materializing Result.Theta, so a
// sweep over many parameter points holds O(N) accumulator state per point
// rather than a full trajectory — the memory model that makes
// million-scenario batch sweeps feasible (see PERFORMANCE.md).
type Sink interface {
	// Begin is called once before the first sample with the state width n
	// and the total number of rows the run will emit.
	Begin(n, nSamples int)
	// Sample consumes one row: the oscillator phases at time t. theta is
	// reused between calls and must not be retained.
	Sample(t float64, theta []float64)
}

// SinkFunc adapts a plain callback (e.g. a row writer) to the Sink
// interface with a no-op Begin.
type SinkFunc func(t float64, theta []float64)

// Begin implements Sink.
func (SinkFunc) Begin(int, int) {}

// Sample implements Sink.
func (f SinkFunc) Sample(t float64, theta []float64) { f(t, theta) }

// multiSink fans one sample stream out to several sinks.
type multiSink []Sink

// Begin implements Sink.
func (ms multiSink) Begin(n, nSamples int) {
	for _, s := range ms {
		s.Begin(n, nSamples)
	}
}

// Sample implements Sink.
func (ms multiSink) Sample(t float64, theta []float64) {
	for _, s := range ms {
		s.Sample(t, theta)
	}
}

// Tee combines several sinks into one that replays every row to each, in
// order — the standard way to run multiple accumulators over one pass.
func Tee(sinks ...Sink) Sink { return multiSink(sinks) }

// RunStream integrates the model from t = 0 to tEnd like Run, but emits
// the nSamples uniform sample rows to sink as they are produced instead of
// materializing them: the run's memory is independent of nSamples. The
// rows streamed to the sink are bit-for-bit the rows Run would store.
func (m *Model) RunStream(tEnd float64, nSamples int, sink Sink) (ode.Stats, error) {
	if sink == nil {
		return ode.Stats{}, errors.New("core: nil sink")
	}
	if tEnd <= 0 {
		return ode.Stats{}, errors.New("core: tEnd must be positive")
	}
	if nSamples < 2 {
		nSamples = 2
	}
	sink.Begin(m.cfg.N, nSamples)
	res, err := m.integrate(tEnd, nSamples, sink.Sample)
	if err != nil {
		return ode.Stats{}, err
	}
	return res.Stats, nil
}

// finalWindow replicates the asymptotic-window start index used by
// Result.AsymptoticSpread and Result.AsymptoticGaps: the last
// finalFraction of n samples, clamped to at least the final sample.
func finalWindow(n int, finalFraction float64) int {
	start := n - int(float64(n)*finalFraction)
	if start < 0 {
		start = 0
	}
	if start >= n {
		start = n - 1
	}
	return start
}

// SpreadAccumulator computes the phase-spread metrics of a run online:
// per-sample it evaluates the same stats.PhaseSpread as
// Result.SpreadTimeline, and its Asymptotic value reproduces
// Result.AsymptoticSpread bit-for-bit (same additions in the same order).
type SpreadAccumulator struct {
	// FinalFraction sets the asymptotic averaging window; 0 means 0.15
	// (the window the report paths use).
	FinalFraction float64
	// KeepTimeline retains the full per-sample spread series in Timeline —
	// O(nSamples) memory, for plots and the bitwise pinning tests. Leave
	// false in sweeps.
	KeepTimeline bool
	// Timeline is the retained series when KeepTimeline is set.
	Timeline []float64

	start, k   int
	sum        float64
	final, max float64
}

// Begin implements Sink.
func (a *SpreadAccumulator) Begin(_, nSamples int) {
	ff := a.FinalFraction
	if ff == 0 {
		ff = 0.15
	}
	a.start = finalWindow(nSamples, ff)
	a.k, a.sum, a.final, a.max = 0, 0, 0, 0
	a.Timeline = a.Timeline[:0]
}

// Sample implements Sink.
func (a *SpreadAccumulator) Sample(_ float64, theta []float64) {
	s := stats.PhaseSpread(theta)
	if a.KeepTimeline {
		a.Timeline = append(a.Timeline, s)
	}
	if s > a.max {
		a.max = s
	}
	a.final = s
	if a.k >= a.start {
		a.sum += s
	}
	a.k++
}

// Final returns the spread at the last sample.
func (a *SpreadAccumulator) Final() float64 { return a.final }

// Max returns the largest spread seen.
func (a *SpreadAccumulator) Max() float64 { return a.max }

// Asymptotic returns the mean spread over the final window — equal to
// Result.AsymptoticSpread(FinalFraction) on the same run.
func (a *SpreadAccumulator) Asymptotic() float64 {
	if a.k <= a.start {
		return 0
	}
	return a.sum / float64(a.k-a.start)
}

// OrderAccumulator computes the Kuramoto order parameter r(t) online —
// per-sample identical to Result.OrderTimeline.
type OrderAccumulator struct {
	// KeepTimeline retains the full r(t) series (see SpreadAccumulator).
	KeepTimeline bool
	// Timeline is the retained series when KeepTimeline is set.
	Timeline []float64

	final, min float64
	seen       bool
}

// Begin implements Sink.
func (a *OrderAccumulator) Begin(int, int) {
	a.final, a.min, a.seen = 0, math.Inf(1), false
	a.Timeline = a.Timeline[:0]
}

// Sample implements Sink.
func (a *OrderAccumulator) Sample(_ float64, theta []float64) {
	r, _ := stats.OrderParameter(theta)
	if a.KeepTimeline {
		a.Timeline = append(a.Timeline, r)
	}
	if r < a.min {
		a.min = r
	}
	a.final = r
	a.seen = true
}

// Final returns r at the last sample.
func (a *OrderAccumulator) Final() float64 { return a.final }

// Min returns the lowest r seen (0 when no samples arrived).
func (a *OrderAccumulator) Min() float64 {
	if !a.seen {
		return 0
	}
	return a.min
}

// ResyncDetector finds the resynchronization time online: the first sample
// time at which the phase spread drops below Eps and stays below it for
// the rest of the run — exactly Result.ResyncTime(Eps), computed forward
// by tracking the start of the current below-Eps run.
type ResyncDetector struct {
	// Eps is the spread threshold (the report paths use 0.1).
	Eps float64

	at   float64
	have bool
}

// Begin implements Sink.
func (d *ResyncDetector) Begin(int, int) { d.have = false }

// Sample implements Sink.
func (d *ResyncDetector) Sample(t float64, theta []float64) {
	if stats.PhaseSpread(theta) >= d.Eps {
		d.have = false
	} else if !d.have {
		d.have, d.at = true, t
	}
}

// ResyncTime returns the detected resynchronization time, or an error when
// the system never resynchronized (mirroring Result.ResyncTime).
func (d *ResyncDetector) ResyncTime() (float64, error) {
	if !d.have {
		return 0, errors.New("core: system did not resynchronize")
	}
	return d.at, nil
}

// GapAccumulator time-averages the adjacent phase gaps θ_{i+1} − θ_i over
// the final window — bit-for-bit Result.AsymptoticGaps(FinalFraction).
type GapAccumulator struct {
	// FinalFraction sets the averaging window; 0 means 0.15.
	FinalFraction float64

	start, k, count int
	sums            []float64
}

// Begin implements Sink.
func (a *GapAccumulator) Begin(n, nSamples int) {
	ff := a.FinalFraction
	if ff == 0 {
		ff = 0.15
	}
	a.start = finalWindow(nSamples, ff)
	a.k, a.count = 0, 0
	w := n - 1
	if w < 0 {
		w = 0
	}
	if cap(a.sums) < w {
		a.sums = make([]float64, w)
	}
	a.sums = a.sums[:w]
	for i := range a.sums {
		a.sums[i] = 0
	}
}

// Sample implements Sink.
func (a *GapAccumulator) Sample(_ float64, theta []float64) {
	if a.k >= a.start {
		for i := 1; i < len(theta) && i-1 < len(a.sums); i++ {
			a.sums[i-1] += theta[i] - theta[i-1]
		}
		a.count++
	}
	a.k++
}

// Gaps returns the time-averaged adjacent gaps over the final window.
func (a *GapAccumulator) Gaps() []float64 {
	out := make([]float64, len(a.sums))
	if a.count == 0 {
		return out
	}
	for i, s := range a.sums {
		out[i] = s / float64(a.count)
	}
	return out
}

// MeanAbsGap returns the mean |gap| of the averaged gaps, the settled
// wavefront summary the report paths print.
func (a *GapAccumulator) MeanAbsGap() float64 {
	gaps := a.Gaps()
	if len(gaps) == 0 {
		return 0
	}
	var sum float64
	for _, g := range gaps {
		sum += math.Abs(g)
	}
	return sum / float64(len(gaps))
}

// WaveDetector measures the idle-wave front launched by a one-off delay
// online — the streaming counterpart of Result.MeasureWave, producing the
// identical WaveFront: the pre-delay baseline lag is tracked sample by
// sample, arrivals are detected forward, and the speed fit runs once in
// Finish.
type WaveDetector struct {
	origin        int
	delayStart    float64
	threshold     float64
	omega, period float64
	periodic      bool

	n       int
	k       int
	frozen  bool
	base    []float64
	arrival []float64
}

// NewWaveDetector builds a wave detector for the model's topology and
// frequency. threshold 0 selects 0.15 rad, as in MeasureWave.
func NewWaveDetector(m *Model, origin int, delayStart, threshold float64) (*WaveDetector, error) {
	if origin < 0 || origin >= m.cfg.N {
		return nil, errors.New("core: wave origin out of range")
	}
	if threshold <= 0 {
		threshold = 0.15
	}
	return &WaveDetector{
		origin:     origin,
		delayStart: delayStart,
		threshold:  threshold,
		omega:      m.omega,
		period:     m.period,
		periodic:   m.cfg.Topology.Periodic,
	}, nil
}

// Begin implements Sink.
func (w *WaveDetector) Begin(n, _ int) {
	w.n = n
	w.k = 0
	w.frozen = false
	if cap(w.base) < n {
		w.base = make([]float64, n)
		w.arrival = make([]float64, n)
	}
	w.base = w.base[:n]
	w.arrival = w.arrival[:n]
	for i := range w.arrival {
		w.arrival[i] = math.NaN()
	}
}

// Sample implements Sink.
func (w *WaveDetector) Sample(t float64, theta []float64) {
	k := w.k
	w.k++
	if !w.frozen {
		if k == 0 || t < w.delayStart {
			// This sample is (so far) the last one before the delay hits:
			// it defines the baseline lag, like MeasureWave's k0 row.
			for i := 0; i < w.n; i++ {
				w.base[i] = w.omega*t - theta[i]
			}
			if k == 0 && t >= w.delayStart {
				w.frozen = true // arrivals scan starts at the next sample
			}
			return
		}
		w.frozen = true
	}
	for i := 0; i < w.n; i++ {
		if !math.IsNaN(w.arrival[i]) {
			continue
		}
		if w.omega*t-theta[i]-w.base[i] > w.threshold {
			w.arrival[i] = t
		}
	}
}

// Finish fits the front speed from the accumulated arrivals and returns
// the WaveFront MeasureWave would compute on the materialized run.
func (w *WaveDetector) Finish() (WaveFront, error) {
	wf := WaveFront{Origin: w.origin, ArrivalTime: append([]float64(nil), w.arrival...)}
	var xs, ys []float64 // x: arrival time, y: distance from origin
	for i := 0; i < w.n; i++ {
		if math.IsNaN(w.arrival[i]) || i == w.origin {
			continue
		}
		d := i - w.origin
		if d < 0 {
			d = -d
		}
		// On a ring the wave can travel both ways; use the shorter arc.
		if w.periodic && w.n-d < d {
			d = w.n - d
		}
		xs = append(xs, w.arrival[i])
		ys = append(ys, float64(d))
		wf.Reached++
	}
	if len(xs) < 3 {
		return wf, errors.New("core: wave reached too few ranks to fit a speed")
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return wf, err
	}
	wf.Speed = math.Abs(fit.Slope)
	wf.SpeedRanksPerPeriod = wf.Speed * w.period
	wf.R2 = fit.R2
	return wf, nil
}

// Summary is the O(N) reduction of one streamed run: everything the batch
// report paths need, without a single retained trajectory row.
type Summary struct {
	// FinalSpread, MaxSpread, and AsymptoticSpread are the phase-spread
	// metrics (AsymptoticSpread over the final-fraction window).
	FinalSpread, MaxSpread, AsymptoticSpread float64
	// FinalOrder and MinOrder are the Kuramoto order-parameter metrics.
	FinalOrder, MinOrder float64
	// Resynced reports whether the spread settled below the resync
	// threshold; ResyncTime is the settling time when it did.
	Resynced   bool
	ResyncTime float64
	// Gaps are the time-averaged adjacent gaps over the final window and
	// MeanAbsGap their mean magnitude.
	Gaps       []float64
	MeanAbsGap float64
	// Stats reports the solver work.
	Stats ode.Stats
}

// RunSummary streams a run through the standard accumulator set and
// returns the O(N) summary. resyncEps 0 selects 0.1 and finalFraction 0
// selects 0.15 — the thresholds the materialized report paths use.
func (m *Model) RunSummary(tEnd float64, nSamples int, resyncEps, finalFraction float64) (*Summary, error) {
	return m.RunSummaryTo(tEnd, nSamples, resyncEps, finalFraction)
}

// RunSummaryTo is RunSummary with extra sinks teed into the same single
// pass over the sample stream — the hook archive-mode sweeps use to
// persist the full trajectory (an archive.RecordWriter is a Sink) while
// the standard summary accumulates. The extra sinks see exactly the
// rows the accumulators see, in the same order.
func (m *Model) RunSummaryTo(tEnd float64, nSamples int, resyncEps, finalFraction float64, extra ...Sink) (*Summary, error) {
	if resyncEps == 0 {
		resyncEps = 0.1
	}
	spread := &SpreadAccumulator{FinalFraction: finalFraction}
	order := &OrderAccumulator{}
	resync := &ResyncDetector{Eps: resyncEps}
	gaps := &GapAccumulator{FinalFraction: finalFraction}
	sinks := append([]Sink{spread, order, resync, gaps}, extra...)
	st, err := m.RunStream(tEnd, nSamples, Tee(sinks...))
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		FinalSpread:      spread.Final(),
		MaxSpread:        spread.Max(),
		AsymptoticSpread: spread.Asymptotic(),
		FinalOrder:       order.Final(),
		MinOrder:         order.Min(),
		Gaps:             gaps.Gaps(),
		MeanAbsGap:       gaps.MeanAbsGap(),
		Stats:            st,
	}
	if rt, err := resync.ResyncTime(); err == nil {
		sum.Resynced, sum.ResyncTime = true, rt
	}
	return sum, nil
}

// Vector flattens the scalar summary metrics into a fixed-layout float
// vector — the metrics section of an archive record. The layout is
// stable: [FinalSpread, MaxSpread, AsymptoticSpread, FinalOrder,
// MinOrder, resynced (0/1), ResyncTime, MeanAbsGap].
func (s *Summary) Vector() []float64 {
	resynced := 0.0
	if s.Resynced {
		resynced = 1
	}
	return []float64{
		s.FinalSpread, s.MaxSpread, s.AsymptoticSpread,
		s.FinalOrder, s.MinOrder,
		resynced, s.ResyncTime, s.MeanAbsGap,
	}
}
