package core

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// SpreadTimeline returns the phase spread max θ − min θ of the
// lagger-normalized phases at every sample: the model's global
// desynchronization measure. It decays to ~0 for synchronizing potentials
// and settles at the wavefront plateau for desynchronizing ones.
func (r *Result) SpreadTimeline() []float64 {
	out := make([]float64, len(r.Theta))
	for k, th := range r.Theta {
		out[k] = stats.PhaseSpread(th)
	}
	return out
}

// OrderTimeline returns the Kuramoto order parameter r(t) at every sample.
func (r *Result) OrderTimeline() []float64 {
	out := make([]float64, len(r.Theta))
	for k, th := range r.Theta {
		out[k], _ = stats.OrderParameter(th)
	}
	return out
}

// AdjacentGapTimeline returns θ_{i+1} − θ_i for every adjacent pair at
// every sample (rows: samples; columns: N−1 gaps). In the developed
// computational wavefront all gaps sit at the potential's stable zero.
func (r *Result) AdjacentGapTimeline() [][]float64 {
	out := make([][]float64, len(r.Theta))
	for k, th := range r.Theta {
		if len(th) == 0 {
			// An empty sample row has no adjacent pairs; len(th)-1 would
			// be a negative make length.
			out[k] = []float64{}
			continue
		}
		gaps := make([]float64, len(th)-1)
		for i := 1; i < len(th); i++ {
			gaps[i-1] = th[i] - th[i-1]
		}
		out[k] = gaps
	}
	return out
}

// ResyncTime returns the first sample time at which the phase spread drops
// below eps and stays below it for the rest of the run, or an error when
// the system never resynchronizes. This quantifies the paper's
// "snaps back into a synchronized state" behaviour.
func (r *Result) ResyncTime(eps float64) (float64, error) {
	spread := r.SpreadTimeline()
	idx := -1
	for k := len(spread) - 1; k >= 0; k-- {
		if spread[k] >= eps {
			break
		}
		idx = k
	}
	if idx < 0 {
		return 0, errors.New("core: system did not resynchronize")
	}
	return r.Ts[idx], nil
}

// AsymptoticSpread returns the mean phase spread over the final fraction
// (e.g. 0.2 for the last 20%) of the run: the settled desynchronization
// level of the computational wavefront.
func (r *Result) AsymptoticSpread(finalFraction float64) float64 {
	n := len(r.Theta)
	if n == 0 {
		return 0
	}
	start := n - int(float64(n)*finalFraction)
	if start < 0 {
		start = 0
	}
	if start >= n {
		start = n - 1
	}
	spread := r.SpreadTimeline()
	var sum float64
	for k := start; k < n; k++ {
		sum += spread[k]
	}
	return sum / float64(n-start)
}

// AsymptoticGaps returns the time-averaged adjacent gaps over the final
// fraction of the run.
func (r *Result) AsymptoticGaps(finalFraction float64) []float64 {
	n := len(r.Theta)
	if n == 0 {
		return nil
	}
	start := n - int(float64(n)*finalFraction)
	if start < 0 {
		start = 0
	}
	if start >= n {
		start = n - 1
	}
	// Derive the gap width from the sample rows themselves: a Result built
	// by hand or by a streaming adapter may carry no Model.
	width := len(r.Theta[0]) - 1
	if width < 0 {
		width = 0
	}
	gaps := make([]float64, width)
	for k := start; k < n; k++ {
		th := r.Theta[k]
		for i := 1; i < len(th) && i-1 < len(gaps); i++ {
			gaps[i-1] += th[i] - th[i-1]
		}
	}
	for i := range gaps {
		gaps[i] /= float64(n - start)
	}
	return gaps
}

// WaveFront holds the measured propagation of a one-off delay through the
// oscillator chain.
type WaveFront struct {
	// Origin is the delayed rank.
	Origin int
	// ArrivalTime[i] is the time the disturbance reached rank i (NaN when
	// it never did).
	ArrivalTime []float64
	// Speed is the fitted propagation speed in ranks per time unit
	// (absolute value of the regression slope rank-vs-arrival).
	Speed float64
	// SpeedRanksPerPeriod is Speed × period: the paper's natural unit.
	SpeedRanksPerPeriod float64
	// R2 is the goodness of the linear fit.
	R2 float64
	// Reached is the number of ranks the wave arrived at.
	Reached int
}

// MeasureWave detects the idle-wave front launched by a one-off delay at
// rank origin. Each rank's lag behind undisturbed progress,
// L_i(t) = ω·t − θ_i(t), is zero until the wave reaches it; the arrival
// time is the first sample where L_i grows by more than threshold radians
// over its pre-delay value. The front speed is the regression slope of
// rank distance against arrival time. threshold 0 selects 0.15 rad.
func (r *Result) MeasureWave(origin int, delayStart float64, threshold float64) (WaveFront, error) {
	n := r.Model.cfg.N
	if origin < 0 || origin >= n {
		return WaveFront{}, errors.New("core: wave origin out of range")
	}
	if threshold <= 0 {
		threshold = 0.15
	}
	omega := r.Model.omega

	// Baseline lag right before the delay hits.
	k0 := 0
	for k, t := range r.Ts {
		if t >= delayStart {
			break
		}
		k0 = k
	}
	base := make([]float64, n)
	for i := 0; i < n; i++ {
		base[i] = omega*r.Ts[k0] - r.Theta[k0][i]
	}

	wf := WaveFront{Origin: origin, ArrivalTime: make([]float64, n)}
	for i := range wf.ArrivalTime {
		wf.ArrivalTime[i] = math.NaN()
	}
	for i := 0; i < n; i++ {
		for k := k0 + 1; k < len(r.Ts); k++ {
			lag := omega*r.Ts[k] - r.Theta[k][i]
			if lag-base[i] > threshold {
				wf.ArrivalTime[i] = r.Ts[k]
				break
			}
		}
	}

	var xs, ys []float64 // x: arrival time, y: distance from origin
	for i := 0; i < n; i++ {
		if math.IsNaN(wf.ArrivalTime[i]) || i == origin {
			continue
		}
		d := i - origin
		if d < 0 {
			d = -d
		}
		// On a ring the wave can travel both ways; use the shorter arc.
		if r.Model.cfg.Topology.Periodic && n-d < d {
			d = n - d
		}
		xs = append(xs, wf.ArrivalTime[i])
		ys = append(ys, float64(d))
		wf.Reached++
	}
	if len(xs) < 3 {
		return wf, errors.New("core: wave reached too few ranks to fit a speed")
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return wf, err
	}
	wf.Speed = math.Abs(fit.Slope)
	wf.SpeedRanksPerPeriod = wf.Speed * r.Model.period
	wf.R2 = fit.R2
	return wf, nil
}

// FrequencyTimeline returns the numerically differentiated instantaneous
// frequency of each oscillator (rows: samples−1).
func (r *Result) FrequencyTimeline() [][]float64 {
	if len(r.Ts) < 2 {
		return nil
	}
	out := make([][]float64, len(r.Ts)-1)
	for k := 1; k < len(r.Ts); k++ {
		dt := r.Ts[k] - r.Ts[k-1]
		row := make([]float64, len(r.Theta[k]))
		for i := range row {
			row[i] = (r.Theta[k][i] - r.Theta[k-1][i]) / dt
		}
		out[k-1] = row
	}
	return out
}

// FrequencyLocked reports whether all oscillators share the same mean
// frequency over the final fraction of the run, to within tol (relative).
// Both the resynchronized state and the computational wavefront are
// frequency-locked; free-running noisy oscillators are not.
func (r *Result) FrequencyLocked(finalFraction, tol float64) bool {
	n := len(r.Ts)
	if n < 3 {
		return false
	}
	start := n - int(float64(n)*finalFraction)
	if start < 0 {
		start = 0
	}
	if start >= n-1 {
		start = n - 2
	}
	dt := r.Ts[n-1] - r.Ts[start]
	if dt <= 0 {
		return false
	}
	freqs := make([]float64, r.Model.cfg.N)
	for i := range freqs {
		freqs[i] = (r.Theta[n-1][i] - r.Theta[start][i]) / dt
	}
	lo, hi := freqs[0], freqs[0]
	for _, f := range freqs[1:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	mid := (lo + hi) / 2
	if mid == 0 {
		return hi-lo == 0
	}
	return (hi-lo)/math.Abs(mid) <= tol
}
