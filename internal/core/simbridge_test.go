package core

import (
	"math"
	"testing"

	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Model must satisfy the full sim contract the unified runtime dispatches
// on.
var (
	_ sim.System   = (*Model)(nil)
	_ sim.Delayed  = (*Model)(nil)
	_ sim.Tuned    = (*Model)(nil)
	_ sim.Releaser = (*Model)(nil)
)

// TestLockAccumulatorMatchesFrequencyLocked pins the streaming
// frequency-lock decision against the materialized
// Result.FrequencyLocked over a locked run (imbalanced tanh chain) and
// an unlocked one (drifting weakly coupled chain), across window
// fractions and tolerances.
func TestLockAccumulatorMatchesFrequencyLocked(t *testing.T) {
	tp, err := topology.NextNeighbor(10, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Config{
		"locked": {
			N: 10, TComp: 0.8, TComm: 0.2,
			Potential: potential.Tanh{}, Topology: tp,
			LocalNoise: noise.Imbalance{Extra: map[int]float64{4: 0.05}},
		},
		"drifting": {
			N: 10, TComp: 0.8, TComm: 0.2,
			Potential: potential.Tanh{}, Topology: tp,
			CouplingOverride: 0.05,
			LocalNoise:       noise.Imbalance{Extra: map[int]float64{4: 0.5}},
		},
	}
	for name, cfg := range cases {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(120, 241)
		if err != nil {
			t.Fatal(err)
		}
		for _, ff := range []float64{0.2, 0.5} {
			for _, tol := range []float64{1e-2, 1e-4} {
				m2, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				lock := &LockAccumulator{FinalFraction: ff}
				if _, err := m2.RunStream(120, 241, lock); err != nil {
					t.Fatal(err)
				}
				want := res.FrequencyLocked(ff, tol)
				if got := lock.Locked(tol); got != want {
					t.Errorf("%s ff=%v tol=%v: streamed lock = %v, materialized = %v",
						name, ff, tol, got, want)
				}
			}
		}
	}
}

// TestWeightedChunkWorkersBitwiseOnIrregularTopology is the NUMA-balance
// pin at the model level: on a topology whose nonzeros are concentrated
// in a few hub rows, the nnz-weighted chunking must still produce
// bit-for-bit the serial right-hand side (and hence the even-chunk
// output it replaced, which was pinned serial-identical before).
func TestWeightedChunkWorkersBitwiseOnIrregularTopology(t *testing.T) {
	const n = 96
	rng := stats.NewRNG(7)
	tp, err := topology.Random(n, 0.08, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		N: n, TComp: 0.8, TComm: 0.2,
		Potential: potential.NewDesync(1.3),
		Topology:  tp,
		Init:      RandomPhases, PerturbSeed: 9, PerturbAmp: 0.4,
	}
	serial, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	y := serial.InitialState()
	want := make([]float64, n)
	serial.EvalRHS(0.3, y, want)

	for _, workers := range []int{2, 5, 16} {
		cfg := base
		cfg.Workers = workers
		par, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		par.EvalRHS(0.3, y, got)
		par.Close()
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: rhs[%d] = %v differs from serial %v",
					workers, i, got[i], want[i])
			}
		}
	}
}
