package core

import (
	"math"
	"testing"

	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// perfModel builds an N-oscillator sine-potential ring model for the
// allocation and determinism tests.
func perfModel(t testing.TB, n, workers int, local noise.Local) *Model {
	t.Helper()
	tp, err := topology.NextNeighbor(n, true)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		N: n, TComp: 0.8, TComm: 0.2,
		Potential:  potential.KuramotoSine{},
		Topology:   tp,
		LocalNoise: local,
		Workers:    workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRHSZeroAllocs asserts the performance invariant of the flat-CSR
// right-hand side: zero steady-state allocations, serial and parallel.
func TestRHSZeroAllocs(t *testing.T) {
	const n = 256
	y := make([]float64, n)
	dydt := make([]float64, n)
	for i := range y {
		y[i] = 0.01 * float64(i)
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := perfModel(t, n, tc.workers, nil)
			defer m.Close()
			m.EvalRHS(0, y, dydt) // warm scratch buffers and worker pool
			allocs := testing.AllocsPerRun(100, func() {
				m.EvalRHS(0, y, dydt)
			})
			if allocs != 0 {
				t.Fatalf("EvalRHS allocates %v objects per call in steady state, want 0", allocs)
			}
		})
	}
}

// TestRHSMatchesScalarReference cross-checks the batched evaluation
// against a direct scalar transcription of Eq. (2) for every built-in
// potential shape.
func TestRHSMatchesScalarReference(t *testing.T) {
	const n = 64
	tp, err := topology.Stencil(n, []int{-2, -1, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	pots := []potential.Potential{
		potential.KuramotoSine{},
		potential.Tanh{},
		potential.Linear{},
		potential.NewDesync(1.5),
		potential.Clipped{Inner: potential.Linear{}, Limit: 0.7},
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(0.37 * float64(i))
	}
	for _, p := range pots {
		m, err := New(Config{
			N: n, TComp: 0.8, TComm: 0.2, Potential: p, Topology: tp,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		m.EvalRHS(0, y, got)
		nb := tp.Neighbors()
		k := m.Coupling()
		for i := 0; i < n; i++ {
			var c float64
			for _, j := range nb[i] {
				c += p.Eval(y[j] - y[i])
			}
			want := m.Omega() + k*c
			if got[i] != want {
				t.Fatalf("%s: dydt[%d] = %v, scalar reference %v", p.Name(), i, got[i], want)
			}
		}
	}
}

// TestWorkersDeterminism asserts that parallel right-hand-side evaluation
// reproduces the serial integration bit-for-bit, including under local
// noise.
func TestWorkersDeterminism(t *testing.T) {
	const n = 96
	local := noise.Sum{
		noise.Delay{Rank: n / 2, Start: 5, Duration: 2, Extra: 50},
		noise.Jitter{Dist: noise.Gaussian, Amp: 0.02, Refresh: 1, Seed: 7},
	}
	serial := perfModel(t, n, 1, local)
	parallel := perfModel(t, n, 4, local)
	defer parallel.Close()

	resS, err := serial.Run(40, 201)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := parallel.Run(40, 201)
	if err != nil {
		t.Fatal(err)
	}
	if len(resS.Theta) != len(resP.Theta) {
		t.Fatalf("sample counts differ: %d vs %d", len(resS.Theta), len(resP.Theta))
	}
	for k := range resS.Theta {
		for i := range resS.Theta[k] {
			if resS.Theta[k][i] != resP.Theta[k][i] {
				t.Fatalf("sample %d oscillator %d: serial %v != workers4 %v (diff %g)",
					k, i, resS.Theta[k][i], resP.Theta[k][i],
					resS.Theta[k][i]-resP.Theta[k][i])
			}
		}
	}
	if resS.Stats != resP.Stats {
		t.Fatalf("solver stats diverge: serial %v, workers4 %v", resS.Stats, resP.Stats)
	}
}
