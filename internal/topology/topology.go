// Package topology builds the topology matrices T_ij of the physical
// oscillator model. T_ij = 1 when oscillator (MPI process) i depends on j
// through communication, 0 otherwise (paper Eq. 2 and Fig. 2). The package
// also computes the coupling strength
//
//	v_p = β·κ / (t_comp + t_comm)
//
// where β encodes the message protocol (eager β=1, rendezvous β=2) and κ
// aggregates the communication distances: the sum over all distances, or —
// when all outstanding non-blocking requests are grouped in one
// MPI_Waitall — the longest distance only (paper §3.1, citing the idle
// wave analysis of Afzal et al. 2021).
package topology

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// Protocol selects the MPI point-to-point transfer protocol, which sets the
// β factor of the coupling strength.
type Protocol int

const (
	// Eager sends the payload immediately (small messages); β = 1.
	Eager Protocol = iota
	// Rendezvous requires a handshake with the posted receive (large
	// messages); β = 2.
	Rendezvous
)

// Beta returns the protocol factor β of the coupling strength.
func (p Protocol) Beta() float64 {
	if p == Rendezvous {
		return 2
	}
	return 1
}

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == Rendezvous {
		return "rendezvous"
	}
	return "eager"
}

// WaitMode describes how a rank waits for its outstanding non-blocking
// requests; it selects the κ aggregation rule.
type WaitMode int

const (
	// SeparateWaits issues one MPI_Wait per request: κ = Σ|d|.
	SeparateWaits WaitMode = iota
	// GroupedWaitall groups all requests in one MPI_Waitall: κ = max|d|.
	GroupedWaitall
)

// String implements fmt.Stringer.
func (w WaitMode) String() string {
	if w == GroupedWaitall {
		return "grouped-waitall"
	}
	return "separate-waits"
}

// Topology is a communication topology: the sparse 0/1 matrix T plus the
// stencil metadata needed for the κ rule.
type Topology struct {
	// N is the number of oscillators (MPI processes).
	N int
	// T is the N×N sparse topology matrix.
	T *linalg.CSR
	// Offsets holds the signed communication distances of a stencil
	// topology (empty for irregular topologies).
	Offsets []int
	// Periodic records whether the stencil wraps around (ring) or is an
	// open chain with truncated boundaries.
	Periodic bool
	// Label is a short human-readable description.
	Label string

	// flat holds the packed CSR neighbor arrays, precomputed by the
	// package constructors so Flat() is read-only (safe for concurrent
	// model building over one shared Topology).
	flat FlatNeighbors
}

// Stencil builds the topology in which rank i communicates with ranks
// i+d for each signed offset d (the paper's d = ±1 and d = ±1,−2
// patterns). With periodic = true indices wrap (ring); otherwise
// out-of-range partners are dropped (open chain, the usual MPI boundary).
// Duplicate and zero offsets are rejected.
func Stencil(n int, offsets []int, periodic bool) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 ranks, got %d", n)
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("topology: empty stencil")
	}
	seen := make(map[int]bool, len(offsets))
	for _, d := range offsets {
		if d == 0 {
			return nil, fmt.Errorf("topology: zero offset (self-communication)")
		}
		if seen[d] {
			return nil, fmt.Errorf("topology: duplicate offset %d", d)
		}
		if d <= -n || d >= n {
			return nil, fmt.Errorf("topology: offset %d out of range for n=%d", d, n)
		}
		seen[d] = true
	}
	b := linalg.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for _, d := range offsets {
			j := i + d
			if periodic {
				j = ((j % n) + n) % n
				if j == i {
					continue
				}
			} else if j < 0 || j >= n {
				continue
			}
			b.Add(i, j, 1)
		}
	}
	sorted := append([]int(nil), offsets...)
	sort.Ints(sorted)
	m := b.Build()
	return &Topology{
		N: n, T: m, Offsets: sorted, Periodic: periodic,
		Label: fmt.Sprintf("stencil%v periodic=%v", sorted, periodic),
		flat:  buildFlat(m),
	}, nil
}

// NextNeighbor returns the d = ±1 topology of the paper's Fig. 2 top row.
func NextNeighbor(n int, periodic bool) (*Topology, error) {
	return Stencil(n, []int{-1, 1}, periodic)
}

// NextPlusNextNext returns the d = ±1, −2 topology of Fig. 2 bottom row.
func NextPlusNextNext(n int, periodic bool) (*Topology, error) {
	return Stencil(n, []int{-2, -1, 1}, periodic)
}

// AllToAll returns the full connectivity of the plain Kuramoto model — the
// pattern the paper rejects for parallel programs because it acts like a
// per-period synchronizing barrier.
func AllToAll(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 ranks, got %d", n)
	}
	b := linalg.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.Add(i, j, 1)
			}
		}
	}
	m := b.Build()
	return &Topology{N: n, T: m, Label: "all-to-all", flat: buildFlat(m)}, nil
}

// Torus2D returns a 2-D periodic Cartesian topology (nx×ny ranks, 4-point
// stencil) as used by domain-decomposed halo exchanges.
func Torus2D(nx, ny int) (*Topology, error) {
	return Torus2DRadius(nx, ny, 1)
}

// Torus2DRadius generalizes Torus2D to a von Neumann neighborhood of the
// given coupling radius: rank (x, y) communicates with every distinct
// rank within Manhattan distance ≤ radius on the periodic nx×ny torus
// (radius 1 is the classic 4-point halo stencil, radius 2 adds the
// 8 next-nearest partners, …). On small tori several lattice offsets can
// wrap onto the same rank; duplicates collapse to a single edge so T
// stays a 0/1 matrix. (Normalization note: on a 2-wide torus the two
// wrapped directions reach the same rank, which the pre-radius Torus2D
// summed into a weight-2 entry; it is now one unit edge. The POM
// right-hand side walks neighbor indices and never read the weight, so
// model dynamics are unchanged — only weight-reading consumers such as
// the linstab Jacobian see the normalized value.)
func Torus2DRadius(nx, ny, radius int) (*Topology, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("topology: Torus2D needs nx, ny >= 2")
	}
	if radius < 1 {
		return nil, fmt.Errorf("topology: Torus2D coupling radius must be >= 1, got %d", radius)
	}
	if radius >= nx+ny {
		return nil, fmt.Errorf("topology: Torus2D coupling radius %d exceeds the %dx%d torus", radius, nx, ny)
	}
	n := nx * ny
	b := linalg.NewBuilder(n, n)
	id := func(x, y int) int { return ((y+ny)%ny)*nx + (x+nx)%nx }
	seen := make([]int, n) // seen[j] == i+1 marks edge i→j already added
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					d := abs(dx) + abs(dy)
					if d == 0 || d > radius {
						continue
					}
					nb := id(x+dx, y+dy)
					if nb == i || seen[nb] == i+1 {
						continue
					}
					seen[nb] = i + 1
					b.Add(i, nb, 1)
				}
			}
		}
	}
	m := b.Build()
	label := fmt.Sprintf("torus %dx%d", nx, ny)
	if radius > 1 {
		label = fmt.Sprintf("torus %dx%d r=%d", nx, ny, radius)
	}
	return &Topology{N: n, T: m, Periodic: true, Label: label, flat: buildFlat(m)}, nil
}

// Random returns a symmetric Erdős–Rényi topology where each unordered
// pair is connected with probability p, using the supplied deterministic
// generator. Isolated ranks are permitted (they model free processes).
func Random(n int, p float64, rng *stats.RNG) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 ranks, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: probability %v out of [0,1]", p)
	}
	b := linalg.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	m := b.Build()
	return &Topology{N: n, T: m, Label: fmt.Sprintf("random(p=%g)", p), flat: buildFlat(m)}, nil
}

// Kappa returns the κ distance aggregate for the given wait mode. For
// stencil topologies it follows the paper's rule (Σ|d| or max|d|); for
// irregular topologies it falls back to the mean degree under
// SeparateWaits and 1 under GroupedWaitall, the nearest analogue of
// "distance" for unlabeled graphs.
func (tp *Topology) Kappa(mode WaitMode) float64 {
	if len(tp.Offsets) > 0 {
		switch mode {
		case GroupedWaitall:
			m := 0
			for _, d := range tp.Offsets {
				if a := abs(d); a > m {
					m = a
				}
			}
			return float64(m)
		default:
			s := 0
			for _, d := range tp.Offsets {
				s += abs(d)
			}
			return float64(s)
		}
	}
	if mode == GroupedWaitall {
		return 1
	}
	total := 0
	for i := 0; i < tp.N; i++ {
		total += tp.T.RowNNZ(i)
	}
	return float64(total) / float64(tp.N)
}

// Coupling returns the coupling strength v_p = β·κ/(tComp+tComm) of
// Eq. (2).
func (tp *Topology) Coupling(proto Protocol, mode WaitMode, tComp, tComm float64) float64 {
	period := tComp + tComm
	if period <= 0 {
		panic("topology: Coupling needs tComp + tComm > 0")
	}
	return proto.Beta() * tp.Kappa(mode) / period
}

// Degree returns the number of partners of rank i.
func (tp *Topology) Degree(i int) int { return tp.T.RowNNZ(i) }

// Neighbors returns every rank's partner list.
func (tp *Topology) Neighbors() [][]int { return tp.T.Neighbors() }

// FlatNeighbors is the flat CSR neighbor representation: rank i's partners
// are Cols[RowPtr[i]:RowPtr[i+1]]. Compared to [][]int it stores all
// partner lists in one packed array, so hot loops walk two contiguous
// int32 slices instead of chasing a pointer per rank — the layout the
// oscillator model's right-hand side iterates.
type FlatNeighbors struct {
	// RowPtr has length N+1; RowPtr[0] == 0 and RowPtr[N] == len(Cols).
	RowPtr []int32
	// Cols holds the packed partner indices, row-major, sorted within
	// each row.
	Cols []int32
}

// NNZ returns the total number of directed communication edges.
func (f FlatNeighbors) NNZ() int { return len(f.Cols) }

// MaxDegree returns the largest partner count of any rank.
func (f FlatNeighbors) MaxDegree() int {
	m := 0
	for i := 0; i+1 < len(f.RowPtr); i++ {
		if d := int(f.RowPtr[i+1] - f.RowPtr[i]); d > m {
			m = d
		}
	}
	return m
}

// Flat returns the packed CSR neighbor representation of the topology.
// Constructor-built topologies carry it precomputed; for hand-assembled
// Topology values it is derived on the fly without mutating the receiver,
// so concurrent use of a shared *Topology stays race-free. Callers must
// treat the result as read-only.
func (tp *Topology) Flat() FlatNeighbors {
	if tp.flat.RowPtr != nil {
		return tp.flat
	}
	return buildFlat(tp.T)
}

// buildFlat packs a CSR topology matrix into int32 neighbor arrays.
func buildFlat(t *linalg.CSR) FlatNeighbors {
	rowPtr := t.RowPtr()
	colIdx := t.ColIdx()
	f := FlatNeighbors{
		RowPtr: make([]int32, len(rowPtr)),
		Cols:   make([]int32, len(colIdx)),
	}
	for i, p := range rowPtr {
		f.RowPtr[i] = int32(p)
	}
	for k, j := range colIdx {
		f.Cols[k] = int32(j)
	}
	return f
}

// IsSymmetric reports whether the dependency graph is symmetric
// (every send matched by a reverse dependency).
func (tp *Topology) IsSymmetric() bool { return tp.T.IsSymmetric(0) }

// WaveSpeeds predicts the idle-wave propagation speed of a blocking
// bulk-synchronous program on a stencil topology, in ranks per iteration,
// separately toward higher ranks (up) and lower ranks (down) — the
// simplified form of the analytic idle-wave model of Afzal et al. 2021
// that the paper's coupling strength is motivated by.
//
// Receive dependencies stall rank o−d one iteration after rank o for each
// stencil offset d, so the eager-protocol wave moves at max(−d) upward and
// max(d) downward per iteration. Under the rendezvous protocol the
// blocked handshake also stalls the ranks *sending* to the delayed rank,
// adding the mirrored offsets (the β = 2 effect).
func (tp *Topology) WaveSpeeds(proto Protocol) (up, down float64) {
	for _, d := range tp.Offsets {
		if d < 0 && float64(-d) > up {
			up = float64(-d)
		}
		if d > 0 && float64(d) > down {
			down = float64(d)
		}
		if proto == Rendezvous {
			if d > 0 && float64(d) > up {
				up = float64(d)
			}
			if d < 0 && float64(-d) > down {
				down = float64(-d)
			}
		}
	}
	return up, down
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
