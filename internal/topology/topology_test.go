package topology

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNextNeighborRing(t *testing.T) {
	tp, err := NextNeighbor(5, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if tp.Degree(i) != 2 {
			t.Errorf("rank %d degree = %d, want 2", i, tp.Degree(i))
		}
	}
	if tp.T.At(0, 4) != 1 || tp.T.At(4, 0) != 1 {
		t.Error("ring must wrap around")
	}
	if !tp.IsSymmetric() {
		t.Error("±1 ring must be symmetric")
	}
}

func TestNextNeighborChain(t *testing.T) {
	tp, err := NextNeighbor(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Degree(0) != 1 || tp.Degree(4) != 1 {
		t.Error("chain boundary ranks must have degree 1")
	}
	if tp.Degree(2) != 2 {
		t.Error("interior rank must have degree 2")
	}
	if tp.T.At(0, 4) != 0 {
		t.Error("chain must not wrap")
	}
}

func TestNextPlusNextNext(t *testing.T) {
	tp, err := NextPlusNextNext(10, true)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets −2, −1, +1: degree 3 everywhere on a ring.
	for i := 0; i < 10; i++ {
		if tp.Degree(i) != 3 {
			t.Errorf("rank %d degree = %d, want 3", i, tp.Degree(i))
		}
	}
	if tp.T.At(5, 3) != 1 {
		t.Error("missing −2 partner")
	}
	// Asymmetric stencil: 3 depends on 5? Only via +1/−1/−2 pattern:
	// T[3][4], T[3][2], T[3][1] — so T[3][5] must be 0.
	if tp.T.At(3, 5) != 0 {
		t.Error("d=−2 stencil should not be symmetric")
	}
	if tp.IsSymmetric() {
		t.Error("−2,−1,+1 stencil must be asymmetric")
	}
}

func TestStencilValidation(t *testing.T) {
	if _, err := Stencil(1, []int{1}, true); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := Stencil(4, nil, true); err == nil {
		t.Error("want error for empty stencil")
	}
	if _, err := Stencil(4, []int{0}, true); err == nil {
		t.Error("want error for zero offset")
	}
	if _, err := Stencil(4, []int{1, 1}, true); err == nil {
		t.Error("want error for duplicate offset")
	}
	if _, err := Stencil(4, []int{5}, true); err == nil {
		t.Error("want error for out-of-range offset")
	}
}

func TestAllToAll(t *testing.T) {
	tp, err := AllToAll(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if tp.Degree(i) != 5 {
			t.Errorf("degree = %d, want 5", tp.Degree(i))
		}
		if tp.T.At(i, i) != 0 {
			t.Error("no self-coupling allowed")
		}
	}
	if !tp.IsSymmetric() {
		t.Error("all-to-all must be symmetric")
	}
}

func TestTorus2D(t *testing.T) {
	tp, err := Torus2D(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.N != 12 {
		t.Fatalf("N = %d", tp.N)
	}
	for i := 0; i < tp.N; i++ {
		if tp.Degree(i) != 4 {
			t.Errorf("rank %d degree = %d, want 4", i, tp.Degree(i))
		}
	}
	if !tp.IsSymmetric() {
		t.Error("torus must be symmetric")
	}
	if _, err := Torus2D(1, 5); err == nil {
		t.Error("want error for nx < 2")
	}
}

func TestTorus2DRadius(t *testing.T) {
	// Radius 2 on a large-enough torus: the von Neumann neighborhood has
	// 2r(r+1) = 12 distinct partners, and the matrix stays symmetric.
	tp, err := Torus2DRadius(6, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp.N != 30 {
		t.Fatalf("N = %d", tp.N)
	}
	for i := 0; i < tp.N; i++ {
		if tp.Degree(i) != 12 {
			t.Errorf("rank %d degree = %d, want 12", i, tp.Degree(i))
		}
	}
	if !tp.IsSymmetric() {
		t.Error("torus must be symmetric")
	}

	// Radius 1 must be exactly Torus2D.
	r1, err := Torus2DRadius(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := Torus2D(4, 3)
	for i := 0; i < plain.N; i++ {
		for j := 0; j < plain.N; j++ {
			if r1.T.At(i, j) != plain.T.At(i, j) {
				t.Fatalf("radius-1 torus differs from Torus2D at (%d,%d)", i, j)
			}
		}
	}

	// Small torus: wrapped offsets collapse to one 0/1 edge, never 2.
	small, err := Torus2DRadius(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < small.N; i++ {
		for j := 0; j < small.N; j++ {
			if v := small.T.At(i, j); v != 0 && v != 1 {
				t.Fatalf("T[%d,%d] = %v, want 0 or 1", i, j, v)
			}
			if i == j && small.T.At(i, j) != 0 {
				t.Fatalf("self-edge at rank %d", i)
			}
		}
	}
	if !small.IsSymmetric() {
		t.Error("wrapped torus must stay symmetric")
	}

	if _, err := Torus2DRadius(4, 4, 0); err == nil {
		t.Error("want error for radius < 1")
	}
	if _, err := Torus2DRadius(3, 3, 7); err == nil {
		t.Error("want error for oversized radius")
	}
}

func TestRandomSymmetricAndDeterministic(t *testing.T) {
	r1 := stats.NewRNG(99)
	r2 := stats.NewRNG(99)
	a, err := Random(20, 0.3, r1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Random(20, 0.3, r2)
	if !a.IsSymmetric() {
		t.Error("random topology must be symmetric")
	}
	if a.T.NNZ() != b.T.NNZ() {
		t.Error("same seed must give same topology")
	}
	if _, err := Random(10, 1.5, r1); err == nil {
		t.Error("want error for p > 1")
	}
}

func TestRandomEdgeDensity(t *testing.T) {
	r := stats.NewRNG(7)
	tp, err := Random(100, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 100 * 99 / 2
	got := float64(tp.T.NNZ()) / 2 / float64(pairs)
	if math.Abs(got-0.2) > 0.04 {
		t.Errorf("edge density = %v, want ≈ 0.2", got)
	}
}

func TestKappaRules(t *testing.T) {
	tp, _ := Stencil(10, []int{-2, -1, 1}, true)
	if k := tp.Kappa(SeparateWaits); k != 4 { // |−2|+|−1|+|1|
		t.Errorf("Σ|d| κ = %v, want 4", k)
	}
	if k := tp.Kappa(GroupedWaitall); k != 2 { // max|d|
		t.Errorf("max|d| κ = %v, want 2", k)
	}
	nn, _ := NextNeighbor(10, true)
	if k := nn.Kappa(SeparateWaits); k != 2 {
		t.Errorf("±1 Σ|d| κ = %v, want 2", k)
	}
	if k := nn.Kappa(GroupedWaitall); k != 1 {
		t.Errorf("±1 max|d| κ = %v, want 1", k)
	}
}

func TestKappaIrregularFallback(t *testing.T) {
	tp, _ := AllToAll(5)
	if k := tp.Kappa(GroupedWaitall); k != 1 {
		t.Errorf("grouped κ = %v, want 1", k)
	}
	if k := tp.Kappa(SeparateWaits); k != 4 { // mean degree
		t.Errorf("separate κ = %v, want 4", k)
	}
}

func TestCoupling(t *testing.T) {
	tp, _ := NextNeighbor(8, true)
	// v_p = βκ/period: eager ±1 separate waits → 1·2/period.
	if v := tp.Coupling(Eager, SeparateWaits, 1.5, 0.5); v != 1 {
		t.Errorf("coupling = %v, want 1", v)
	}
	if v := tp.Coupling(Rendezvous, SeparateWaits, 1.5, 0.5); v != 2 {
		t.Errorf("rendezvous coupling = %v, want 2", v)
	}
	if v := tp.Coupling(Eager, GroupedWaitall, 1.5, 0.5); v != 0.5 {
		t.Errorf("grouped coupling = %v, want 0.5", v)
	}
}

func TestCouplingPanics(t *testing.T) {
	tp, _ := NextNeighbor(4, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	tp.Coupling(Eager, SeparateWaits, 0, 0)
}

func TestProtocolAndWaitModeStrings(t *testing.T) {
	if Eager.String() != "eager" || Rendezvous.String() != "rendezvous" {
		t.Error("Protocol strings")
	}
	if Eager.Beta() != 1 || Rendezvous.Beta() != 2 {
		t.Error("Beta values")
	}
	if SeparateWaits.String() == GroupedWaitall.String() {
		t.Error("WaitMode strings must differ")
	}
}

func TestStencilNeighborsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 4 + r.Intn(30)
		offs := []int{1, -1}
		if r.Float64() < 0.5 {
			offs = append(offs, -2)
		}
		tp, err := Stencil(n, offs, true)
		if err != nil {
			return false
		}
		nb := tp.Neighbors()
		for i := range nb {
			if len(nb[i]) != tp.Degree(i) {
				return false
			}
			for _, j := range nb[i] {
				if tp.T.At(i, j) != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
