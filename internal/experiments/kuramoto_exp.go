package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/kuramoto"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// E7Result reproduces the §2.2.2 baseline arguments against the plain
// Kuramoto model.
type E7Result struct {
	// Transition is the order-parameter bifurcation r∞(K).
	Transition []kuramoto.SweepPoint
	// CriticalCoupling is the mean-field K_c for the frequency spread.
	CriticalCoupling float64
	// WeakCouplingSlips counts phase slips at K << K_c — the behaviour the
	// POM potentials forbid.
	WeakCouplingSlips int
	// AllToAllArrivalSpread is the spread (max−min) of idle-wave arrival
	// times under all-to-all coupling in the POM: near zero, because the
	// global coupling acts like a per-period synchronizing barrier and the
	// disturbance reaches every rank at once.
	AllToAllArrivalSpread float64
	// NeighborArrivalSpread is the same quantity under ±1 coupling for
	// contrast (the wave takes ~N/2 periods to cross the ring).
	NeighborArrivalSpread float64
}

// KuramotoBaseline runs the plain-Kuramoto phenomenology the paper argues
// cannot describe parallel programs. The coupling transition sweeps
// through the unified sim runtime (kuramoto.SweepCoupling streams each
// point through the shared OrderAccumulator); only the phase-slip count,
// which needs the full trajectory, still materializes a run.
func KuramotoBaseline(ks []float64) (*E7Result, error) {
	base := kuramoto.Config{N: 150, FreqMean: 0, FreqStd: 1, Seed: 11, SpreadInitial: true}
	trans, err := kuramoto.SweepCoupling(base, ks, 40)
	if err != nil {
		return nil, err
	}
	m, err := kuramoto.New(base)
	if err != nil {
		return nil, err
	}
	res := &E7Result{Transition: trans, CriticalCoupling: m.CriticalCoupling()}

	weak := base
	weak.K = 0.05
	wm, err := kuramoto.New(weak)
	if err != nil {
		return nil, err
	}
	wrun, err := wm.Run(100, 501)
	if err != nil {
		return nil, err
	}
	res.WeakCouplingSlips = wrun.PhaseSlips()

	// All-to-all vs ±1 wave arrival spread in the POM.
	spread := func(tp *topology.Topology) (float64, error) {
		cfg := core.Config{
			N:          tp.N,
			TComp:      0.8,
			TComm:      0.2,
			Potential:  potential.Tanh{},
			Topology:   tp,
			LocalNoise: noise.Delay{Rank: tp.N / 2, Start: 10, Duration: 2, Extra: 100},
		}
		mm, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		out, err := mm.Run(80, 801)
		if err != nil {
			return 0, err
		}
		// The arrival times themselves are the signal here; the linear
		// speed fit legitimately degenerates under all-to-all coupling
		// (every rank is hit in the same instant), so fit errors are
		// ignored as long as arrivals were detected.
		wf, _ := out.MeasureWave(tp.N/2, 10, 0.15)
		lo, hi := math.Inf(1), math.Inf(-1)
		found := 0
		for i, a := range wf.ArrivalTime {
			if i == tp.N/2 || math.IsNaN(a) {
				continue
			}
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
			found++
		}
		if found < 3 {
			return 0, fmt.Errorf("experiments: wave reached only %d ranks", found)
		}
		return hi - lo, nil
	}
	const n = 24
	ata, err := topology.AllToAll(n)
	if err != nil {
		return nil, err
	}
	if res.AllToAllArrivalSpread, err = spread(ata); err != nil {
		return nil, err
	}
	nn, err := topology.NextNeighbor(n, true)
	if err != nil {
		return nil, err
	}
	if res.NeighborArrivalSpread, err = spread(nn); err != nil {
		return nil, err
	}
	return res, nil
}
