package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/stats"
	"repro/internal/topology"
)

// E8 explores the open question of the paper's §6: can the model's noise
// functions describe idle-wave decay? An idle wave in a noise-free
// blocking chain propagates essentially undamped; system noise creates
// idle slack that absorbs part of the wave at every hop, so the wave
// amplitude decays with distance (Markidis et al. 2015; Afzal et al.
// 2019). The experiment launches the same one-off delay under increasing
// background noise in both substrates and fits the exponential decay
// length of the wave amplitude.

// E8Point is one noise-amplitude sample.
type E8Point struct {
	// NoiseAmp is the background noise amplitude as a fraction of the
	// compute phase (MPI side) / period (model side).
	NoiseAmp float64
	// MPIDecayLen is the fitted 1/e decay length in ranks from the
	// traces; +Inf when the wave does not decay measurably.
	MPIDecayLen float64
	// ModelDecayLen is the same from the oscillator model.
	ModelDecayLen float64
	// MPIAmpAt1 and MPIAmpAt10 are the wave amplitudes (excess wait, in
	// units of the iteration duration) at distances 1 and 10.
	MPIAmpAt1, MPIAmpAt10 float64
}

// E8Result is the noise-decay sweep.
type E8Result struct {
	Points []E8Point
}

// NoiseDecay measures idle-wave amplitude decay for the given noise
// amplitudes (fractions; e.g. 0, 0.1, 0.3).
func NoiseDecay(amps []float64) (*E8Result, error) {
	res := &E8Result{}
	for _, amp := range amps {
		pt := E8Point{NoiseAmp: amp}
		if err := mpiNoiseDecay(&pt); err != nil {
			return nil, fmt.Errorf("experiments: E8 MPI amp=%g: %w", amp, err)
		}
		if err := modelNoiseDecay(&pt); err != nil {
			return nil, fmt.Errorf("experiments: E8 model amp=%g: %w", amp, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// fitDecayLength fits amp(d) = A·exp(−d/λ) and returns λ; +Inf when the
// amplitudes do not decrease measurably across the range.
func fitDecayLength(dists, ampsByDist []float64) float64 {
	var xs, ys []float64
	for i, a := range ampsByDist {
		if a > 0 {
			xs = append(xs, dists[i])
			ys = append(ys, math.Log(a))
		}
	}
	if len(xs) < 4 {
		return math.Inf(1)
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil || fit.Slope >= -1e-3 {
		return math.Inf(1)
	}
	return -1 / fit.Slope
}

// mpiNoiseDecay runs the trace side.
func mpiNoiseDecay(pt *E8Point) error {
	const n = 40
	const iters = 300
	const delayIter = 60
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		return err
	}
	k := kernels.Pisolver()
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), 1024, iters)
	if err != nil {
		return err
	}
	opts := cluster.Options{
		Delays: []cluster.DelayInjection{{Rank: n / 2, Iter: delayIter, Extra: 10 * k.CoreSeconds}},
	}
	if pt.NoiseAmp > 0 {
		amp := pt.NoiseAmp * k.CoreSeconds
		opts.ComputeNoise = func(rank, iter int) float64 {
			h := uint64(rank+1)*0x9e3779b97f4a7c15 ^ uint64(iter+1)*0xbf58476d1ce4e5b9
			h = (h ^ (h >> 30)) * 0x94d049bb133111eb
			h ^= h >> 31
			return amp * float64(h>>11) / (1 << 53)
		}
	}
	sim, err := cluster.NewSim(cluster.Meggie((n+9)/10), progs, opts)
	if err != nil {
		return err
	}
	out, err := sim.Run()
	if err != nil {
		return err
	}
	tr := out.Trace
	iterDur := tr.MeanIterationTime(0)
	tDelay := tr.IterEnds[n/2][delayIter-1]

	// Wave amplitude per rank: the largest excess comm span after the
	// injection over the rank's pre-injection baseline.
	amp := make([]float64, n)
	for r := 0; r < n; r++ {
		var base float64
		for _, s := range tr.Spans[r] {
			if s.End > tDelay {
				break
			}
			if s.Kind.String() == "comm" && s.Duration() > base {
				base = s.Duration()
			}
		}
		for _, s := range tr.Spans[r] {
			if s.End <= tDelay || s.Kind.String() != "comm" {
				continue
			}
			if ex := s.Duration() - base; ex > amp[r] {
				amp[r] = ex
			}
		}
	}
	// Average the two sides at each distance, in iteration units.
	var dists, byDist []float64
	maxD := n/2 - 1
	for d := 1; d <= maxD; d++ {
		a := (amp[n/2-d] + amp[n/2+d]) / 2 / iterDur
		if d == 1 {
			pt.MPIAmpAt1 = a
		}
		if d == 10 {
			pt.MPIAmpAt10 = a
		}
		if a <= 0.02 { // below measurement floor: stop the fit range
			break
		}
		dists = append(dists, float64(d))
		byDist = append(byDist, a)
	}
	pt.MPIDecayLen = fitDecayLength(dists, byDist)
	return nil
}

// modelNoiseDecay runs the oscillator-model side.
func modelNoiseDecay(pt *E8Point) error {
	const n = 40
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		return err
	}
	local := noise.Sum{noise.Delay{Rank: n / 2, Start: 20, Duration: 2, Extra: 100}}
	if pt.NoiseAmp > 0 {
		local = append(local, noise.Jitter{
			Dist: noise.UniformSym, Amp: pt.NoiseAmp, Refresh: 1, Seed: 17,
		})
	}
	cfg := core.Config{
		N: n, TComp: 0.8, TComm: 0.2,
		Potential:  potential.Tanh{},
		Topology:   tp,
		LocalNoise: local,
	}
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	out, err := m.Run(150, 1501)
	if err != nil {
		return err
	}

	// Peak lag excess per rank relative to the pre-delay baseline.
	omega := m.Omega()
	k0 := 0
	for k, ts := range out.Ts {
		if ts >= 20 {
			break
		}
		k0 = k
	}
	amp := make([]float64, n)
	base := make([]float64, n)
	for i := 0; i < n; i++ {
		base[i] = omega*out.Ts[k0] - out.Theta[k0][i]
	}
	for k := k0 + 1; k < len(out.Ts); k++ {
		for i := 0; i < n; i++ {
			lag := omega*out.Ts[k] - out.Theta[k][i]
			if ex := lag - base[i]; ex > amp[i] {
				amp[i] = ex
			}
		}
	}
	var dists, byDist []float64
	for d := 1; d <= n/2-1; d++ {
		a := (amp[n/2-d] + amp[n/2+d]) / 2
		if a <= 0.05 {
			break
		}
		dists = append(dists, float64(d))
		byDist = append(byDist, a)
	}
	pt.ModelDecayLen = fitDecayLength(dists, byDist)
	return nil
}
