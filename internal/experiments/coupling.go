package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// E5ModelPoint is one (βκ, wave speed) sample from the oscillator model.
type E5ModelPoint struct {
	// BetaKappa is the coupling aggregate βκ (the model's v_p numerator).
	BetaKappa float64
	// Speed is the idle-wave speed in ranks per period (0 when the wave
	// did not propagate — the free-process case βκ ≈ 0).
	Speed float64
	// R2 is the front fit quality (0 when no wave).
	R2 float64
	// Propagated reports whether a measurable wave formed.
	Propagated bool
}

// E5MPIPoint is one protocol/topology sample from the MPI simulator.
type E5MPIPoint struct {
	Label string
	// BetaKappa is the nominal βκ of the configuration.
	BetaKappa float64
	// Speed is the idle-wave speed in ranks per iteration.
	Speed float64
	// R2 is the fit quality.
	R2 float64
	// Reached counts ranks the wave arrived at. On a unidirectional
	// stencil this separates β = 1 (eager: the delay propagates only to
	// ranks that need the delayed rank's messages) from β = 2
	// (rendezvous: the blocked handshake also stalls senders, so the wave
	// travels both ways).
	Reached int
}

// E5Result reproduces the §5.1.1 claim: idle-wave speed grows with βκ;
// βκ ≈ 0 means free processes, βκ = 1 the slowest wave, large βκ a stiff,
// strongly synchronizing system.
type E5Result struct {
	Model []E5ModelPoint
	MPI   []E5MPIPoint
}

// WaveSpeedVsCoupling sweeps the model coupling and measures front speeds;
// on the MPI side it contrasts eager vs. rendezvous protocol (β = 1 vs 2)
// on the ±1 stencil.
func WaveSpeedVsCoupling(betaKappas []float64) (*E5Result, error) {
	res := &E5Result{}
	const n = 32
	tp, err := topology.NextNeighbor(n, true)
	if err != nil {
		return nil, err
	}
	for _, bk := range betaKappas {
		pt := E5ModelPoint{BetaKappa: bk}
		couple := bk // v_p = βκ/period with period 1
		if couple <= 0 {
			couple = 1e-300 // free processes
		}
		cfg := core.Config{
			N:                n,
			TComp:            0.8,
			TComm:            0.2,
			Potential:        potential.Tanh{},
			Topology:         tp,
			CouplingOverride: couple,
			LocalNoise:       noise.Delay{Rank: n / 2, Start: 10, Duration: 2, Extra: 100},
		}
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		out, err := m.Run(120, 1201)
		if err != nil {
			return nil, err
		}
		if wf, err := out.MeasureWave(n/2, 10, 0.15); err == nil && wf.Reached >= n/3 {
			pt.Speed = wf.SpeedRanksPerPeriod
			pt.R2 = wf.R2
			pt.Propagated = true
		}
		res.Model = append(res.Model, pt)
	}

	// MPI side. On the symmetric ±1 stencil the blocking data dependency
	// caps the wave at 1 rank/iteration regardless of protocol, so the β
	// effect is demonstrated on the unidirectional d=+1 stencil: with
	// eager sends the delay only propagates to the ranks that consume the
	// delayed rank's messages; with rendezvous the handshake also stalls
	// the ranks sending *to* it, doubling the coupled directions (β = 2).
	for _, mode := range []struct {
		label   string
		offsets []int
		bytes   float64
		bk      float64
	}{
		{"eager ±1 (βκ=2)", []int{-1, 1}, 1024, 2},
		{"eager +1 (β=1, one-sided)", []int{1}, 1024, 1},
		{"rendezvous +1 (β=2, two-sided)", []int{1}, 1 << 20, 2},
	} {
		pt, err := mpiWaveSpeed(mode.offsets, mode.bytes, mode.label, mode.bk)
		if err != nil {
			return nil, err
		}
		res.MPI = append(res.MPI, *pt)
	}
	return res, nil
}

// mpiWaveSpeed runs the scalable kernel on a stencil with the given
// message size and measures the idle-wave speed.
func mpiWaveSpeed(offsets []int, msgBytes float64, label string, bk float64) (*E5MPIPoint, error) {
	const n = 32
	const iters = 240
	tp, err := topology.Stencil(n, offsets, false)
	if err != nil {
		return nil, err
	}
	k := kernels.Pisolver()
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), msgBytes, iters)
	if err != nil {
		return nil, err
	}
	delayIter := iters / 6
	sim, err := cluster.NewSim(cluster.Meggie((n+9)/10), progs, cluster.Options{
		Delays: []cluster.DelayInjection{{Rank: n / 2, Iter: delayIter, Extra: 10 * k.CoreSeconds}},
	})
	if err != nil {
		return nil, err
	}
	out, err := sim.Run()
	if err != nil {
		return nil, err
	}
	tr := out.Trace
	iterDur := tr.MeanIterationTime(0)
	tDelay := tr.IterEnds[n/2][delayIter-1]
	wm, err := tr.MeasureIdleWave(n/2, tDelay, 0.5*iterDur, iterDur, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", label, err)
	}
	return &E5MPIPoint{
		Label:     label,
		BetaKappa: bk,
		Speed:     wm.SpeedRanksPerIter,
		R2:        wm.R2,
		Reached:   wm.Reached,
	}, nil
}
