package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// Fig2Params are the shared corner-case parameters of Fig. 2. The paper
// runs 40 MPI processes on 4 Meggie sockets with a one-off delay on the
// 5th process.
type Fig2Params struct {
	// N is the rank count (paper: 40).
	N int
	// Offsets selects the communication stencil (±1 or ±1,−2).
	Offsets []int
	// Scalable selects PISOLVER+tanh (true) or STREAM+desync (false).
	Scalable bool
	// Sigma is the desync potential horizon (used when !Scalable).
	Sigma float64
	// DelayRank and DelayIters: the disturbed rank and the delay length
	// in units of undisturbed iterations/periods.
	DelayRank  int
	DelayIters float64
	// Iters is the MPI simulation iteration count.
	Iters int
	// Periods is the POM integration length in natural periods.
	Periods float64
}

// DefaultFig2 returns the paper's setup for the given stencil and
// scalability class.
func DefaultFig2(offsets []int, scalable bool) Fig2Params {
	return Fig2Params{
		N:          40,
		Offsets:    offsets,
		Scalable:   scalable,
		Sigma:      1.5,
		DelayRank:  5,
		DelayIters: 10,
		Iters:      400,
		// Scalable runs need the idle wave (≈0.3 ranks/period at βκ = 2)
		// to cross the whole 40-rank chain and decay before the
		// asymptotic window; bottlenecked runs settle much faster.
		Periods: 400,
	}
}

// MPIPanel is the trace side of one Fig. 2 panel.
type MPIPanel struct {
	// WaveSpeed is the idle-wave front speed in ranks per iteration.
	WaveSpeed float64
	// WaveR2 is the front fit quality.
	WaveR2 float64
	// WaveReached counts ranks the wave arrived at.
	WaveReached int
	// PreSpread and PostSpread are the iteration-progress spreads before
	// the delay and in the asymptotic state.
	PreSpread, PostSpread float64
	// PostAdjacentSkew is the mean adjacent |skew| in the asymptotic
	// state (≈ 0 lockstep, finite wavefront).
	PostAdjacentSkew float64
	// SocketBandwidthGBs is the achieved socket-0 bandwidth.
	SocketBandwidthGBs float64
	// Makespan is the run duration.
	Makespan float64
}

// ModelPanel is the oscillator-model side of one Fig. 2 panel.
type ModelPanel struct {
	// WaveSpeed is the idle-wave front speed in ranks per period.
	WaveSpeed float64
	// WaveR2 is the front fit quality.
	WaveR2 float64
	// AsymptoticSpread is the settled phase spread (radians).
	AsymptoticSpread float64
	// MeanAbsGap is the mean |adjacent phase gap| in the settled state.
	MeanAbsGap float64
	// StableZero is the potential's analytic settling gap (2σ/3 or 0).
	StableZero float64
	// Resynced reports whether the system returned to lockstep.
	Resynced bool
	// FreqLocked reports asymptotic frequency locking.
	FreqLocked bool
}

// Fig2Row is one complete panel: MPI trace vs. oscillator model.
type Fig2Row struct {
	Label  string
	Params Fig2Params
	MPI    MPIPanel
	Model  ModelPanel
}

// RunFig2Panel produces one panel of Fig. 2: the MPI-simulator trace
// phenomenology side by side with the oscillator-model prediction.
func RunFig2Panel(p Fig2Params) (*Fig2Row, error) {
	label := fmt.Sprintf("d=%v ", p.Offsets)
	if p.Scalable {
		label += "scalable"
	} else {
		label += "bottlenecked"
	}
	row := &Fig2Row{Label: label, Params: p}

	mpi, err := runFig2MPI(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s MPI side: %w", label, err)
	}
	row.MPI = *mpi

	model, err := runFig2Model(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s model side: %w", label, err)
	}
	row.Model = *model
	return row, nil
}

// runFig2MPI simulates the MPI program on the Meggie model and extracts
// the trace metrics.
func runFig2MPI(p Fig2Params) (*MPIPanel, error) {
	tp, err := topology.Stencil(p.N, p.Offsets, false)
	if err != nil {
		return nil, err
	}
	var k kernels.Kernel
	if p.Scalable {
		k = kernels.Pisolver()
	} else {
		k = kernels.STREAM()
	}
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), 1024, p.Iters)
	if err != nil {
		return nil, err
	}
	sockets := (p.N + 9) / 10
	delayIter := p.Iters / 8
	sim, err := cluster.NewSim(cluster.Meggie(sockets), progs, cluster.Options{
		Delays: []cluster.DelayInjection{{
			Rank:  p.DelayRank,
			Iter:  delayIter,
			Extra: p.DelayIters * k.CoreSeconds,
		}},
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	tr := res.Trace
	iterDur := tr.MeanIterationTime(0)
	tDelay := tr.IterEnds[p.DelayRank][delayIter-1]

	panel := &MPIPanel{
		SocketBandwidthGBs: res.AggregateBandwidth(0) / 1e9,
		Makespan:           res.Makespan,
	}
	if wm, err := tr.MeasureIdleWave(p.DelayRank, tDelay, 0.5*iterDur, iterDur, false); err == nil {
		panel.WaveSpeed = wm.SpeedRanksPerIter
		panel.WaveR2 = wm.R2
		panel.WaveReached = wm.Reached
	}
	if dm, err := tr.MeasureDesync(tDelay*0.5, tDelay*0.95, 40); err == nil {
		panel.PreSpread = dm.Spread
	}
	if dm, err := tr.MeasureDesync(res.Makespan*0.75, res.Makespan*0.97, 40); err == nil {
		panel.PostSpread = dm.Spread
		panel.PostAdjacentSkew = dm.MeanAbsAdjacent
	}
	return panel, nil
}

// runFig2Model integrates the matching oscillator model through the
// unified sim runtime: the trajectory streams once through the shared
// accumulator sinks (spread, gaps, resync, frequency lock) plus the wave
// detector, so no Fig. 2 panel ever materializes its 4000-row trajectory.
// Every metric is pinned bit-for-bit to its materialized counterpart by
// the core streaming tests.
func runFig2Model(p Fig2Params) (*ModelPanel, error) {
	tp, err := topology.Stencil(p.N, p.Offsets, false)
	if err != nil {
		return nil, err
	}
	var pot potential.Potential
	if p.Scalable {
		pot = potential.Tanh{}
	} else {
		pot = potential.NewDesync(p.Sigma)
	}
	period := 1.0
	delayStart := p.Periods / 8
	cfg := core.Config{
		N:         p.N,
		TComp:     0.8 * period,
		TComm:     0.2 * period,
		Potential: pot,
		Topology:  tp,
		LocalNoise: noise.Delay{
			Rank:     p.DelayRank,
			Start:    delayStart,
			Duration: p.DelayIters * period / 4,
			Extra:    100 * period,
		},
	}
	if !p.Scalable {
		// The unstable lockstep needs a seed perturbation besides the
		// delay so the wavefront develops over the whole chain.
		cfg.Init = core.RandomPhases
		cfg.PerturbSeed = 1
		cfg.PerturbAmp = 0.02
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	spread := &core.SpreadAccumulator{FinalFraction: 0.15}
	gaps := &core.GapAccumulator{FinalFraction: 0.15}
	resync := &core.ResyncDetector{Eps: 0.1}
	lock := &core.LockAccumulator{FinalFraction: 0.2}
	wave, err := core.NewWaveDetector(m, p.DelayRank, delayStart, 0.15)
	if err != nil {
		return nil, err
	}
	_, err = m.RunStream(p.Periods*period, int(p.Periods)*10+1,
		core.Tee(spread, gaps, resync, lock, wave))
	if err != nil {
		return nil, err
	}

	panel := &ModelPanel{
		AsymptoticSpread: spread.Asymptotic(),
		FreqLocked:       lock.Locked(1e-2),
		MeanAbsGap:       gaps.MeanAbsGap(),
	}
	if a, ok := pot.(potential.Analyzable); ok {
		panel.StableZero = a.StableZero()
	}
	if _, err := resync.ResyncTime(); err == nil {
		panel.Resynced = true
	}
	if wf, err := wave.Finish(); err == nil {
		panel.WaveSpeed = wf.SpeedRanksPerPeriod
		panel.WaveR2 = wf.R2
	}
	return panel, nil
}

// Fig2All runs the four corner cases of Fig. 2 (top/bottom row ×
// left/right column) concurrently — each panel is an independent pair of
// simulations, so they run on the sweep worker pool.
func Fig2All() ([]Fig2Row, error) {
	cases := []Fig2Params{
		DefaultFig2([]int{-1, 1}, true),      // (a)
		DefaultFig2([]int{-1, 1}, false),     // (b)
		DefaultFig2([]int{-2, -1, 1}, true),  // (c)
		DefaultFig2([]int{-2, -1, 1}, false), // (d)
	}
	points, err := sweep.Run(context.Background(), cases, 0,
		func(_ context.Context, p Fig2Params) (Fig2Row, error) {
			row, err := RunFig2Panel(p)
			if err != nil {
				return Fig2Row{}, err
			}
			return *row, nil
		})
	if err != nil {
		return nil, err
	}
	return sweep.Results(points)
}
