package experiments

import (
	"math"
	"testing"
)

func TestNoiseDecay(t *testing.T) {
	res, err := NoiseDecay([]float64{0, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	silent, mid, loud := res.Points[0], res.Points[1], res.Points[2]

	// Noise-free blocking chain: the wave propagates essentially
	// undamped (decay length far beyond the chain, or +Inf).
	if !math.IsInf(silent.MPIDecayLen, 1) && silent.MPIDecayLen < 100 {
		t.Errorf("noise-free MPI decay length = %v, want effectively none", silent.MPIDecayLen)
	}
	if silent.MPIAmpAt1 <= 0 || math.Abs(silent.MPIAmpAt10-silent.MPIAmpAt1) > 0.05*silent.MPIAmpAt1 {
		t.Errorf("noise-free amplitudes must be flat: %v vs %v",
			silent.MPIAmpAt1, silent.MPIAmpAt10)
	}

	// Noise shortens the decay length monotonically (traces).
	if !(mid.MPIDecayLen > loud.MPIDecayLen) {
		t.Errorf("MPI decay lengths not monotone: %v vs %v",
			mid.MPIDecayLen, loud.MPIDecayLen)
	}
	if math.IsInf(loud.MPIDecayLen, 1) {
		t.Error("strong noise must damp the wave")
	}

	// Model: strong noise damps the wave below the intrinsic (diffusive)
	// decay of the silent system — the §6 question answered positively.
	if !(loud.ModelDecayLen < silent.ModelDecayLen) {
		t.Errorf("model decay under strong noise (%v) not below silent (%v)",
			loud.ModelDecayLen, silent.ModelDecayLen)
	}
}

func TestFitDecayLength(t *testing.T) {
	// Synthetic exponential with λ = 5.
	var dists, amps []float64
	for d := 1; d <= 15; d++ {
		dists = append(dists, float64(d))
		amps = append(amps, 3*math.Exp(-float64(d)/5))
	}
	if got := fitDecayLength(dists, amps); math.Abs(got-5) > 1e-6 {
		t.Errorf("decay length = %v, want 5", got)
	}
	// Flat amplitudes → no decay.
	flat := []float64{1, 1, 1, 1, 1}
	if got := fitDecayLength([]float64{1, 2, 3, 4, 5}, flat); !math.IsInf(got, 1) {
		t.Errorf("flat decay length = %v, want +Inf", got)
	}
	// Too few points → +Inf.
	if got := fitDecayLength([]float64{1, 2}, []float64{1, 0.5}); !math.IsInf(got, 1) {
		t.Errorf("short fit = %v, want +Inf", got)
	}
}
