package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// E6SigmaPoint is one σ sample of the interaction-horizon sweep.
type E6SigmaPoint struct {
	Sigma float64
	// MeanAbsGap is the settled adjacent phase gap (model).
	MeanAbsGap float64
	// PredictedGap is the analytic first stable zero 2σ/3.
	PredictedGap float64
	// Spread is the settled total phase spread.
	Spread float64
}

// E6StiffnessPair contrasts the d=±1 and d=±1,−2 bottlenecked panels —
// the §5.2.2 claim of ≈3× faster delay propagation and correspondingly
// smaller phase spread under the stiffer topology.
type E6StiffnessPair struct {
	// MPISpeedRatio is speed(d=±1,−2)/speed(d=±1) from the traces.
	MPISpeedRatio float64
	// ModelGapRatio is meanAbsGap(d=±1,−2)/meanAbsGap(d=±1) from the
	// model: the adjacent-gap magnitude is the sign-pattern-independent
	// measure of the broken-symmetry state's phase spread (the total
	// spread depends on whether the instability selected a tilt or a
	// zigzag). Theory: the ±1 stencil settles at 2σ/3 per gap, the
	// ±1,−2 stencil at σ/3 — ratio 0.5.
	ModelGapRatio float64
	// Rows holds the two underlying panels.
	Rows []Fig2Row
}

// E6Result reproduces the §5.2.2 claims.
type E6Result struct {
	SigmaSweep []E6SigmaPoint
	Stiffness  E6StiffnessPair
}

// StiffnessSweep sweeps the interaction horizon σ (settled gaps must track
// 2σ/3) and contrasts the two bottlenecked topologies of Fig. 2(b, d).
func StiffnessSweep(sigmas []float64) (*E6Result, error) {
	res := &E6Result{}
	const n = 16
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		return nil, err
	}
	for _, sigma := range sigmas {
		cfg := core.Config{
			N:           n,
			TComp:       0.8,
			TComm:       0.2,
			Potential:   potential.NewDesync(sigma),
			Topology:    tp,
			Init:        core.RandomPhases,
			PerturbSeed: 7,
			PerturbAmp:  0.02,
			LocalNoise:  noise.Delay{Rank: 5, Start: 20, Duration: 2, Extra: 100},
		}
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		out, err := m.Run(400, 801)
		if err != nil {
			return nil, err
		}
		gaps := out.AsymptoticGaps(0.1)
		var sum float64
		for _, g := range gaps {
			sum += math.Abs(g)
		}
		res.SigmaSweep = append(res.SigmaSweep, E6SigmaPoint{
			Sigma:        sigma,
			MeanAbsGap:   sum / float64(len(gaps)),
			PredictedGap: 2 * sigma / 3,
			Spread:       out.AsymptoticSpread(0.1),
		})
	}

	// The (b) vs (d) contrast.
	b, err := RunFig2Panel(DefaultFig2([]int{-1, 1}, false))
	if err != nil {
		return nil, err
	}
	d, err := RunFig2Panel(DefaultFig2([]int{-2, -1, 1}, false))
	if err != nil {
		return nil, err
	}
	res.Stiffness.Rows = []Fig2Row{*b, *d}
	if b.MPI.WaveSpeed > 0 {
		res.Stiffness.MPISpeedRatio = d.MPI.WaveSpeed / b.MPI.WaveSpeed
	}
	if b.Model.MeanAbsGap > 0 {
		res.Stiffness.ModelGapRatio = d.Model.MeanAbsGap / b.Model.MeanAbsGap
	}
	return res, nil
}
