package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/kernels"
	"repro/internal/topology"
)

// E9Result gives the trace-side counterpart of the paper's §2.2.2
// argument that all-to-all coupling "acts like a synchronizing barrier in
// each time step": a bulk-synchronous program that ends every iteration
// in an MPI_Allreduce delivers an injected delay to every rank within one
// iteration, whereas the same program with point-to-point neighbor
// exchange carries it as a traveling wave.
type E9Result struct {
	// P2PArrivalSpreadIters is max−min idle-wave arrival across ranks, in
	// iterations, for the ±1 point-to-point program.
	P2PArrivalSpreadIters float64
	// CollectiveArrivalSpreadIters is the same for the Allreduce program.
	CollectiveArrivalSpreadIters float64
	// P2PReached and CollectiveReached count ranks hit by the wave.
	P2PReached, CollectiveReached int
}

// CollectiveBarrier runs both program variants and measures the arrival
// spread of a one-off delay.
func CollectiveBarrier() (*E9Result, error) {
	const n = 32
	const iters = 200
	const delayIter = 40
	k := kernels.Pisolver()

	arrivalSpread := func(progs []cluster.Program) (spreadIters float64, reached int, err error) {
		sim, err := cluster.NewSim(cluster.Meggie((n+9)/10), progs, cluster.Options{
			Delays: []cluster.DelayInjection{{Rank: n / 2, Iter: delayIter, Extra: 10 * k.CoreSeconds}},
		})
		if err != nil {
			return 0, 0, err
		}
		out, err := sim.Run()
		if err != nil {
			return 0, 0, err
		}
		tr := out.Trace
		iterDur := tr.MeanIterationTime(0)
		tDelay := tr.IterEnds[n/2][delayIter-1]
		wm, _ := tr.MeasureIdleWave(n/2, tDelay, 0.5*iterDur, iterDur, false)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, a := range wm.Arrival {
			if i == n/2 || math.IsNaN(a) {
				continue
			}
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
			reached++
		}
		if reached < 3 {
			return 0, reached, fmt.Errorf("experiments: wave reached only %d ranks", reached)
		}
		return (hi - lo) / iterDur, reached, nil
	}

	// Point-to-point variant.
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		return nil, err
	}
	p2p, err := cluster.BulkSynchronous(tp, k.Workload(), 1024, iters)
	if err != nil {
		return nil, err
	}
	res := &E9Result{}
	if res.P2PArrivalSpreadIters, res.P2PReached, err = arrivalSpread(p2p); err != nil {
		return nil, err
	}

	// Collective variant: compute + Allreduce each iteration.
	coll := make([]cluster.Program, n)
	for r := range coll {
		coll[r] = cluster.Program{
			Body: []cluster.Instr{
				cluster.Compute{Seconds: k.CoreSeconds, Bytes: k.Bytes},
				cluster.Allreduce{Bytes: 8},
			},
			Iters: iters,
		}
	}
	if res.CollectiveArrivalSpreadIters, res.CollectiveReached, err = arrivalSpread(coll); err != nil {
		return nil, err
	}
	return res, nil
}
