package experiments

import "testing"

func TestCollectiveBarrier(t *testing.T) {
	res, err := CollectiveBarrier()
	if err != nil {
		t.Fatal(err)
	}
	// Point-to-point: the wave needs many iterations to cross 32 ranks.
	if res.P2PArrivalSpreadIters < 5 {
		t.Errorf("p2p arrival spread = %v iterations, want a traveling wave",
			res.P2PArrivalSpreadIters)
	}
	// Collective: everyone is hit within roughly one iteration.
	if res.CollectiveArrivalSpreadIters > 1.5 {
		t.Errorf("collective arrival spread = %v iterations, want ≈ 0 (barrier)",
			res.CollectiveArrivalSpreadIters)
	}
	if res.CollectiveReached < 25 {
		t.Errorf("collective wave reached only %d ranks", res.CollectiveReached)
	}
	if res.CollectiveArrivalSpreadIters*3 > res.P2PArrivalSpreadIters {
		t.Errorf("no clear contrast: p2p %v vs collective %v",
			res.P2PArrivalSpreadIters, res.CollectiveArrivalSpreadIters)
	}
}
