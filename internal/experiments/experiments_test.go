package experiments

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestFig1aPotentials(t *testing.T) {
	res, err := Fig1aPotentials(5, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	tanh, desync := res.Rows[0], res.Rows[1]
	if tanh.Name != "tanh" {
		t.Errorf("first row = %q", tanh.Name)
	}
	// The tanh potential has no positive zero in (0.05, 10].
	if tanh.MeasuredZero != 0 {
		t.Errorf("tanh zero = %v, want none", tanh.MeasuredZero)
	}
	// The desync potential's first positive zero is at 2σ/3 ≈ 3.333.
	if math.Abs(desync.MeasuredZero-10.0/3) > 1e-6 {
		t.Errorf("desync zero = %v, want %v", desync.MeasuredZero, 10.0/3)
	}
	if math.Abs(desync.MeasuredZero-desync.StableZero) > 1e-6 {
		t.Error("measured and analytic zeros disagree")
	}
	// Saturation at ±1 beyond the horizon.
	if y := desync.Ys[len(desync.Ys)-1]; y != 1 {
		t.Errorf("V(10) = %v, want 1", y)
	}
	if _, err := Fig1aPotentials(0, 256); err == nil {
		t.Error("want error for sigma <= 0")
	}
}

func TestFig1bScalability(t *testing.T) {
	res, err := Fig1bScalability(cluster.Meggie(1), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	byName := map[string]E2Curve{}
	for _, c := range res.Curves {
		byName[c.Kernel] = c
	}
	stream, sch, pi := byName["STREAM"], byName["SlowSchoenauer"], byName["PISOLVER"]
	// The paper's Fig. 1(b) ordering: STREAM saturates first, Schönauer
	// later, PISOLVER never.
	if stream.SaturationProcs == 0 || sch.SaturationProcs == 0 {
		t.Fatalf("memory-bound kernels must saturate: %d %d",
			stream.SaturationProcs, sch.SaturationProcs)
	}
	if !(stream.SaturationProcs < sch.SaturationProcs) {
		t.Errorf("saturation order wrong: STREAM %d, Schönauer %d",
			stream.SaturationProcs, sch.SaturationProcs)
	}
	if pi.SaturationProcs != 0 {
		t.Errorf("PISOLVER must not saturate, got %d", pi.SaturationProcs)
	}
	// Both memory-bound plateaus sit at the socket bandwidth.
	last := func(c E2Curve) float64 { return c.Points[len(c.Points)-1].BandwidthMBs }
	if math.Abs(last(stream)-53000) > 2000 {
		t.Errorf("STREAM plateau = %v MB/s", last(stream))
	}
	if math.Abs(last(sch)-53000) > 2000 {
		t.Errorf("Schönauer plateau = %v MB/s", last(sch))
	}
}

func TestFig2PanelScalable(t *testing.T) {
	row, err := RunFig2Panel(DefaultFig2([]int{-1, 1}, true))
	if err != nil {
		t.Fatal(err)
	}
	// MPI side: idle wave at ≈ 1 rank/iteration, full resynchronization.
	if row.MPI.WaveSpeed < 0.8 || row.MPI.WaveSpeed > 1.3 {
		t.Errorf("MPI wave speed = %v, want ≈ 1 rank/iter", row.MPI.WaveSpeed)
	}
	if row.MPI.PostSpread > 0.1 {
		t.Errorf("scalable MPI post-spread = %v, want ≈ 0 (resync)", row.MPI.PostSpread)
	}
	// Model side: wave propagates, system resynchronizes.
	if !row.Model.Resynced {
		t.Error("model did not resynchronize")
	}
	if row.Model.WaveSpeed <= 0 {
		t.Error("model wave did not propagate")
	}
	if row.Model.AsymptoticSpread > 0.1 {
		t.Errorf("model asymptotic spread = %v", row.Model.AsymptoticSpread)
	}
}

func TestFig2PanelBottlenecked(t *testing.T) {
	p := DefaultFig2([]int{-1, 1}, false)
	row, err := RunFig2Panel(p)
	if err != nil {
		t.Fatal(err)
	}
	// MPI side: idle wave decays but a computational wavefront remains.
	if row.MPI.PostSpread < 0.5 {
		t.Errorf("MPI post-spread = %v, want a residual wavefront", row.MPI.PostSpread)
	}
	if row.MPI.PostAdjacentSkew <= 0 {
		t.Error("MPI adjacent skew must be finite in the wavefront")
	}
	// Socket bandwidth pinned at the Meggie limit.
	if math.Abs(row.MPI.SocketBandwidthGBs-53) > 2 {
		t.Errorf("socket bandwidth = %v GB/s", row.MPI.SocketBandwidthGBs)
	}
	// Model side: no resync; adjacent gaps settle at the stable zero
	// 2σ/3.
	if row.Model.Resynced {
		t.Error("bottlenecked model must not resynchronize")
	}
	want := 2 * p.Sigma / 3
	if math.Abs(row.Model.MeanAbsGap-want) > 0.1 {
		t.Errorf("model gap = %v, want 2σ/3 = %v", row.Model.MeanAbsGap, want)
	}
	if !row.Model.FreqLocked {
		t.Error("wavefront must be frequency-locked")
	}
}

func TestWaveSpeedVsCoupling(t *testing.T) {
	res, err := WaveSpeedVsCoupling([]float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model) != 3 {
		t.Fatalf("model points = %d", len(res.Model))
	}
	free, weak, strong := res.Model[0], res.Model[1], res.Model[2]
	// βκ ≈ 0: free processes — no wave.
	if free.Propagated {
		t.Error("free processes must not propagate a wave")
	}
	// Speed grows with coupling (§5.1.1).
	if !weak.Propagated || !strong.Propagated {
		t.Fatalf("waves must propagate at βκ ≥ 1: %+v %+v", weak, strong)
	}
	if strong.Speed <= weak.Speed {
		t.Errorf("speed(βκ=4) = %v not above speed(βκ=1) = %v",
			strong.Speed, weak.Speed)
	}
	// MPI side: on the one-sided d=+1 stencil, eager reaches only the
	// consumer side of the chain, rendezvous (β=2) both sides.
	if len(res.MPI) != 3 {
		t.Fatalf("MPI points = %d", len(res.MPI))
	}
	eagerOne, rendOne := res.MPI[1], res.MPI[2]
	if rendOne.Reached < eagerOne.Reached+8 {
		t.Errorf("rendezvous reached %d ranks, eager %d — want two-sided propagation",
			rendOne.Reached, eagerOne.Reached)
	}
}

func TestStiffnessSweep(t *testing.T) {
	res, err := StiffnessSweep([]float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.SigmaSweep {
		// Settled gaps track the analytic 2σ/3 within 15%.
		if math.Abs(pt.MeanAbsGap-pt.PredictedGap) > 0.15*pt.PredictedGap {
			t.Errorf("σ=%v: gap %v, predicted %v", pt.Sigma, pt.MeanAbsGap, pt.PredictedGap)
		}
	}
	// Larger σ → larger gaps (stronger desynchronization).
	if res.SigmaSweep[1].MeanAbsGap <= res.SigmaSweep[0].MeanAbsGap {
		t.Error("gap must grow with σ")
	}
	// §5.2.2: the stiffer topology propagates delays faster in the traces
	// and settles with smaller gaps in the model.
	if res.Stiffness.MPISpeedRatio <= 1.5 {
		t.Errorf("MPI speed ratio = %v, want > 1.5 (paper: ≈3)", res.Stiffness.MPISpeedRatio)
	}
	if res.Stiffness.ModelGapRatio >= 1 {
		t.Errorf("model gap ratio = %v, want < 1", res.Stiffness.ModelGapRatio)
	}
}

func TestKuramotoBaseline(t *testing.T) {
	res, err := KuramotoBaseline([]float64{0.2, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transition[1].R <= res.Transition[0].R {
		t.Error("order parameter must grow across the transition")
	}
	if res.WeakCouplingSlips == 0 {
		t.Error("weak coupling must show phase slips")
	}
	// All-to-all coupling reaches every rank essentially at once; the ±1
	// ring needs many periods. The paper's "synchronizing barrier"
	// argument requires a large contrast.
	if res.AllToAllArrivalSpread*5 > res.NeighborArrivalSpread {
		t.Errorf("arrival spreads: all-to-all %v vs ±1 %v — want strong contrast",
			res.AllToAllArrivalSpread, res.NeighborArrivalSpread)
	}
}

func TestFig1bSuperMUCNG(t *testing.T) {
	// The artifact appendix reports the second system: same Fig. 1(b)
	// shape on the 24-core, 100 GB/s Skylake socket, with saturation
	// points scaled by the machine balance.
	res, err := Fig1bScalability(cluster.SuperMUCNG(1), 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E2Curve{}
	for _, c := range res.Curves {
		byName[c.Kernel] = c
	}
	stream, sch, pi := byName["STREAM"], byName["SlowSchoenauer"], byName["PISOLVER"]
	if stream.SaturationProcs == 0 || sch.SaturationProcs == 0 {
		t.Fatal("memory-bound kernels must saturate on SuperMUC-NG too")
	}
	if !(stream.SaturationProcs < sch.SaturationProcs) {
		t.Errorf("saturation order: STREAM %d, Schönauer %d",
			stream.SaturationProcs, sch.SaturationProcs)
	}
	if pi.SaturationProcs != 0 {
		t.Errorf("PISOLVER saturated at %d", pi.SaturationProcs)
	}
	// Plateau at the 100 GB/s socket limit.
	last := stream.Points[len(stream.Points)-1].BandwidthMBs
	if math.Abs(last-100000) > 3000 {
		t.Errorf("STREAM plateau = %v MB/s, want ≈ 100000", last)
	}
}

func TestFig2AllParallelConsistency(t *testing.T) {
	// The sweep-parallel Fig2All must return the four panels in order and
	// agree with the deterministic physics of the serial runners.
	rows, err := Fig2All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantLabels := []string{
		"d=[-1 1] scalable", "d=[-1 1] bottlenecked",
		"d=[-2 -1 1] scalable", "d=[-2 -1 1] bottlenecked",
	}
	for i, r := range rows {
		if r.Label != wantLabels[i] {
			t.Errorf("row %d label = %q, want %q", i, r.Label, wantLabels[i])
		}
	}
	// Scalable panels resync, bottlenecked don't; gaps at 2σ/3 for (b).
	if !rows[0].Model.Resynced || !rows[2].Model.Resynced {
		t.Error("scalable panels must resync")
	}
	if rows[1].Model.Resynced || rows[3].Model.Resynced {
		t.Error("bottlenecked panels must not resync")
	}
	if math.Abs(rows[1].Model.MeanAbsGap-1.0) > 0.1 {
		t.Errorf("panel (b) gap = %v, want 1.0", rows[1].Model.MeanAbsGap)
	}
	// Stiffer topology: faster MPI wave in (c) than (a).
	if rows[2].MPI.WaveSpeed <= rows[0].MPI.WaveSpeed {
		t.Errorf("(c) wave %v not above (a) wave %v",
			rows[2].MPI.WaveSpeed, rows[0].MPI.WaveSpeed)
	}
}
