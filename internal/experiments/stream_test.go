package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestDesyncSweepStreamMatchesMaterialized checks the streaming sweep's
// per-point summaries against the same points computed the materialized
// way (Run + AsymptoticGaps), bitwise — the sweep-level counterpart of the
// core streaming determinism test.
func TestDesyncSweepStreamMatchesMaterialized(t *testing.T) {
	sigmas := []float64{1.0, 1.6}
	res, err := DesyncSweepStream(10, sigmas, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(sigmas) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(sigmas))
	}
	for i, sigma := range sigmas {
		cfg, err := streamPointConfig(10, sigma)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := m.Run(300, 301)
		if err != nil {
			t.Fatal(err)
		}
		gaps := mat.AsymptoticGaps(0.1)
		var want float64
		for _, g := range gaps {
			want += math.Abs(g)
		}
		want /= float64(len(gaps))
		pt := res.Points[i]
		if pt.Sigma != sigma {
			t.Errorf("point %d: sigma %v, want %v", i, pt.Sigma, sigma)
		}
		if pt.MeanAbsGap != want {
			t.Errorf("σ=%v: streamed mean gap %v, materialized %v (not bitwise equal)",
				sigma, pt.MeanAbsGap, want)
		}
		if got, wantSpread := pt.AsymptoticSpread, mat.AsymptoticSpread(0.1); got != wantSpread {
			t.Errorf("σ=%v: streamed spread %v, materialized %v", sigma, got, wantSpread)
		}
		// The settled gaps must still track the stable zero 2σ/3.
		if math.Abs(pt.MeanAbsGap-pt.StableZero) > 0.15*pt.StableZero {
			t.Errorf("σ=%v: gap %v strays from stable zero %v", sigma, pt.MeanAbsGap, pt.StableZero)
		}
	}
}
