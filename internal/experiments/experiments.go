// Package experiments contains one driver per figure and quantitative
// claim of the paper's evaluation (see DESIGN.md's experiment index).
// Every driver returns structured rows/series that the pomexp command
// prints and plots and that bench_test.go regenerates under testing.B.
//
//	E1  Fig. 1(a)  potential shapes
//	E2  Fig. 1(b)  socket scalability of the three kernels
//	E3  Fig. 2(a,c) scalable code: idle wave, decay, resynchronization
//	E4  Fig. 2(b,d) bottlenecked code: idle wave + computational wavefront
//	E5  §5.1.1     idle-wave speed vs. coupling βκ
//	E6  §5.2.2     stiffness: 3× speed, reduced phase spread, 2σ/3 gaps
//	E7  §2.2.2     plain-Kuramoto baseline (why KM is unsuitable)
package experiments

import (
	"fmt"

	"repro/internal/potential"
)

// E1Row is one sampled potential curve of Fig. 1(a).
type E1Row struct {
	Name   string
	Xs, Ys []float64
	// StableZero is the analytic first stable zero (0 for tanh, 2σ/3 for
	// the desync potential).
	StableZero float64
	// MeasuredZero is the first positive zero found numerically (NaN-free:
	// 0 when none exists in range).
	MeasuredZero float64
}

// E1Result reproduces Fig. 1(a).
type E1Result struct {
	Sigma float64
	Rows  []E1Row
}

// Fig1aPotentials samples the scalable (tanh) and bottlenecked (σ-horizon)
// potentials over Δθ ∈ [−10, 10] with σ = 5, as in Fig. 1(a), and locates
// the desync potential's first positive zero.
func Fig1aPotentials(sigma float64, n int) (*E1Result, error) {
	if sigma <= 0 || n < 16 {
		return nil, fmt.Errorf("experiments: invalid Fig1a parameters")
	}
	res := &E1Result{Sigma: sigma}
	for _, p := range []potential.Potential{potential.Tanh{}, potential.NewDesync(sigma)} {
		xs, ys := potential.Sample(p, -10, 10, n)
		row := E1Row{Name: p.Name(), Xs: xs, Ys: ys}
		if a, ok := p.(potential.Analyzable); ok {
			row.StableZero = a.StableZero()
		}
		zeros := potential.FindZeros(p, 0.05, 10, 4*n, 1e-10)
		if len(zeros) > 0 {
			row.MeasuredZero = zeros[0]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
