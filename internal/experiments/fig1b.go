package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/kernels"
)

// E2Curve is one kernel's socket scaling series of Fig. 1(b).
type E2Curve struct {
	Kernel string
	Points []kernels.ScalabilityPoint
	// SaturationProcs is the process count where the curve reaches 95% of
	// its plateau (0 = scalable, never saturates).
	SaturationProcs int
}

// E2Result reproduces Fig. 1(b).
type E2Result struct {
	Machine string
	Curves  []E2Curve
}

// Fig1bScalability measures the aggregate memory bandwidth of STREAM, the
// slow Schönauer triad, and PISOLVER for 1…maxProcs processes on one
// socket of the given machine.
func Fig1bScalability(mc cluster.MachineConfig, maxProcs, iters int) (*E2Result, error) {
	res := &E2Result{Machine: mc.Name}
	for _, k := range kernels.All() {
		pts, err := kernels.SocketScalability(mc, k, maxProcs, iters)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig1b %s: %w", k.Name, err)
		}
		res.Curves = append(res.Curves, E2Curve{
			Kernel:          k.Name,
			Points:          pts,
			SaturationProcs: kernels.SaturationPoint(pts, 0.95),
		})
	}
	return res, nil
}
