package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// E10Point is one parameter point of a streaming σ sweep: the O(N) summary
// a worker returns instead of a trajectory.
type E10Point struct {
	// Sigma is the interaction horizon of this point's desync potential.
	Sigma float64
	// MeanAbsGap is the settled mean |adjacent gap|; in the developed
	// wavefront it tracks the potential's stable zero 2σ/3.
	MeanAbsGap float64
	// StableZero is the analytic 2σ/3 reference.
	StableZero float64
	// AsymptoticSpread is the settled phase spread.
	AsymptoticSpread float64
	// Resynced reports whether the point returned to lockstep instead of
	// developing a wavefront.
	Resynced bool
}

// E10Result is the streaming σ sweep: the batch-mode counterpart of the
// paper's interactive exploration, sized for very large grids because no
// point ever materializes a trajectory.
type E10Result struct {
	// N is the oscillator count per point.
	N int
	// Points are the per-σ summaries, in grid order.
	Points []E10Point
}

// streamPointConfig builds the per-point model configuration of the
// streaming σ sweep (the TestParallelSigmaSweep scenario: a perturbed
// desynchronizing chain with a one-off delay).
func streamPointConfig(n int, sigma float64) (core.Config, error) {
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		N: n, TComp: 0.8, TComm: 0.2,
		Potential:   potential.NewDesync(sigma),
		Topology:    tp,
		Init:        core.RandomPhases,
		PerturbSeed: 5,
		PerturbAmp:  0.02,
		LocalNoise:  noise.Delay{Rank: n / 3, Start: 10, Duration: 1, Extra: 50},
	}, nil
}

// DesyncSweepStream sweeps the interaction horizon σ in streaming mode:
// every worker integrates its point through core.Model.RunStream and
// returns only the accumulated Summary, so the sweep's memory is O(N) per
// point regardless of tEnd/nSamples — the pattern examples/megasweep
// scales to 10⁵ points.
func DesyncSweepStream(n int, sigmas []float64, workers int) (*E10Result, error) {
	if n < 2 || len(sigmas) == 0 {
		return nil, fmt.Errorf("experiments: invalid streaming sweep parameters")
	}
	res := &E10Result{N: n, Points: make([]E10Point, len(sigmas))}
	err := sweep.RunReduce(context.Background(), len(sigmas), workers,
		func(i int) float64 { return sigmas[i] },
		func(_ context.Context, sigma float64) (*core.Summary, error) {
			cfg, err := streamPointConfig(n, sigma)
			if err != nil {
				return nil, err
			}
			m, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return m.RunSummary(300, 301, 0.1, 0.1)
		},
		func(i int, sigma float64, s *core.Summary) {
			res.Points[i] = E10Point{
				Sigma:            sigma,
				MeanAbsGap:       s.MeanAbsGap,
				StableZero:       2 * sigma / 3,
				AsymptoticSpread: s.AsymptoticSpread,
				Resynced:         s.Resynced,
			}
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}
