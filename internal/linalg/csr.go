package linalg

import (
	"math"
	"sort"
)

// CSR is a compressed sparse row matrix. Topology matrices of parallel
// programs are extremely sparse (a handful of communication partners per
// rank), so the oscillator model's coupling sum is evaluated through this
// structure rather than a dense N×N matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
}

// coo is one coordinate-format triplet used during assembly.
type coo struct {
	i, j int
	v    float64
}

// Builder accumulates triplets and assembles a CSR matrix. Duplicate
// entries are summed, matching the usual sparse-assembly convention.
type Builder struct {
	rows, cols int
	entries    []coo
}

// NewBuilder returns a builder for an r×c sparse matrix.
func NewBuilder(r, c int) *Builder {
	if r <= 0 || c <= 0 {
		panic("linalg: NewBuilder with non-positive dimensions")
	}
	return &Builder{rows: r, cols: c}
}

// Add accumulates v at (i, j). Out-of-range indices panic: topology
// construction bugs should fail loudly.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic("linalg: Builder.Add index out of range")
	}
	b.entries = append(b.entries, coo{i, j, v})
}

// Build assembles the CSR matrix, summing duplicates and dropping explicit
// zeros.
func (b *Builder) Build() *CSR {
	sort.SliceStable(b.entries, func(x, y int) bool {
		if b.entries[x].i != b.entries[y].i {
			return b.entries[x].i < b.entries[y].i
		}
		return b.entries[x].j < b.entries[y].j
	})
	m := &CSR{rows: b.rows, cols: b.cols, rowPtr: make([]int, b.rows+1)}
	for k := 0; k < len(b.entries); {
		e := b.entries[k]
		v := e.v
		k++
		for k < len(b.entries) && b.entries[k].i == e.i && b.entries[k].j == e.j {
			v += b.entries[k].v
			k++
		}
		if v == 0 {
			continue
		}
		m.colIdx = append(m.colIdx, e.j)
		m.values = append(m.values, v)
		m.rowPtr[e.i+1] = len(m.values)
	}
	// Fill gaps for empty rows.
	for i := 1; i <= b.rows; i++ {
		if m.rowPtr[i] < m.rowPtr[i-1] {
			m.rowPtr[i] = m.rowPtr[i-1]
		}
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *CSR) Dims() (r, c int) { return m.rows, m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.values) }

// At returns element (i, j), zero when absent. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.colIdx[lo:hi], j)
	if lo+idx < hi && m.colIdx[lo+idx] == j {
		return m.values[lo+idx]
	}
	return 0
}

// Row iterates over the nonzeros of row i, calling fn(col, value).
func (m *CSR) Row(i int, fn func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.values[k])
	}
}

// RowNNZ returns the number of nonzeros in row i (the degree of
// oscillator i in a topology matrix).
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// MulVec computes dst = M·x, allocating dst when nil.
func (m *CSR) MulVec(dst, x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, ErrShape
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	}
	if len(dst) != m.rows {
		return nil, ErrShape
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.values[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return dst, nil
}

// ToDense expands the matrix; intended for tests and small topologies.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		m.Row(i, func(j int, v float64) { d.Set(i, j, v) })
	}
	return d
}

// IsSymmetric reports whether M equals Mᵀ within tol. Communication
// topologies with matched send/recv pairs are symmetric.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	sym := true
	for i := 0; i < m.rows && sym; i++ {
		m.Row(i, func(j int, v float64) {
			if math.Abs(v-m.At(j, i)) > tol {
				sym = false
			}
		})
	}
	return sym
}

// RowPtr returns the CSR row-offset array (length rows+1): the nonzeros
// of row i occupy positions RowPtr()[i] to RowPtr()[i+1] of ColIdx().
// The slice is shared with the matrix and must be treated as read-only.
func (m *CSR) RowPtr() []int { return m.rowPtr }

// ColIdx returns the packed column-index array of the nonzeros, row-major.
// The slice is shared with the matrix and must be treated as read-only.
func (m *CSR) ColIdx() []int { return m.colIdx }

// Neighbors returns, for every row, the column indices of its nonzeros.
// For a topology matrix this is each rank's communication partner list.
func (m *CSR) Neighbors() [][]int {
	out := make([][]int, m.rows)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		out[i] = append([]int(nil), m.colIdx[lo:hi]...)
	}
	return out
}
