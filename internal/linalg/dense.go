// Package linalg provides the small dense and sparse matrix types used for
// topology matrices and coupling computations in the oscillator model.
// Only stdlib is used; the row-major dense layout and CSR sparse layout
// follow the usual HPC conventions.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape reports incompatible matrix/vector dimensions.
var ErrShape = errors.New("linalg: incompatible shapes")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r×c zero matrix. It panics for non-positive sizes.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic("linalg: NewDense with non-positive dimensions")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds a matrix from a slice of rows; all rows must have the
// same length.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, ErrShape
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: ragged row %d: %w", i, ErrShape)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes dst = M·x. dst may be nil (allocated) but must not alias
// x. It returns an error on shape mismatch.
func (m *Dense) MulVec(dst, x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, ErrShape
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	}
	if len(dst) != m.rows {
		return nil, ErrShape
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst, nil
}

// Transpose returns a new transposed matrix.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// IsSymmetric reports whether the matrix equals its transpose to within
// tol. Non-square matrices are never symmetric.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Frobenius returns the Frobenius norm.
func (m *Dense) Frobenius() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RowSums returns the vector of row sums; for a 0/1 topology matrix this is
// the out-degree of each oscillator.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// NNZ counts entries with |v| > tol.
func (m *Dense) NNZ(tol float64) int {
	n := 0
	for _, v := range m.data {
		if math.Abs(v) > tol {
			n++
		}
	}
	return n
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
