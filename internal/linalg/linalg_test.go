package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At failed")
	}
	if m.At(0, 0) != 0 {
		t.Error("zero init failed")
	}
}

func TestNewDenseFrom(t *testing.T) {
	m, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Error("NewDenseFrom layout wrong")
	}
	if _, err := NewDenseFrom([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("want error for ragged rows")
	}
	if _, err := NewDenseFrom(nil); err == nil {
		t.Error("want error for empty input")
	}
}

func TestDenseMulVec(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := m.MulVec(nil, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if _, err := m.MulVec(nil, []float64{1}); err == nil {
		t.Error("want shape error")
	}
	if _, err := m.MulVec(make([]float64, 2), []float64{1, 1}); err == nil {
		t.Error("want dst shape error")
	}
}

func TestDenseTransposeInvolution(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.Transpose().Transpose()
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tt.At(i, j) != m.At(i, j) {
				t.Fatal("transpose not an involution")
			}
		}
	}
}

func TestDenseSymmetry(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{0, 1}, {1, 0}})
	if !m.IsSymmetric(0) {
		t.Error("symmetric matrix not detected")
	}
	m.Set(0, 1, 2)
	if m.IsSymmetric(0) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := NewDense(2, 3)
	if rect.IsSymmetric(0) {
		t.Error("rectangular matrix cannot be symmetric")
	}
}

func TestDenseFrobeniusRowSumsNNZ(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{3, 0}, {0, 4}})
	if m.Frobenius() != 5 {
		t.Errorf("Frobenius = %v", m.Frobenius())
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 4 {
		t.Errorf("RowSums = %v", rs)
	}
	if m.NNZ(0) != 2 {
		t.Errorf("NNZ = %d", m.NNZ(0))
	}
}

func TestCSRBuildAndAt(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 2, 1)
	b.Add(2, 1, 1)
	m := b.Build()
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(1, 0) != 1 || m.At(1, 2) != 1 || m.At(1, 1) != 0 {
		t.Error("At values wrong")
	}
	if m.RowNNZ(1) != 2 || m.RowNNZ(0) != 1 {
		t.Error("RowNNZ wrong")
	}
	if !m.IsSymmetric(0) {
		t.Error("ring topology must be symmetric")
	}
}

func TestCSRDuplicatesSummedZerosDropped(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 5)
	b.Add(1, 1, -5)
	m := b.Build()
	if m.At(0, 0) != 3 {
		t.Errorf("duplicate sum = %v", m.At(0, 0))
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want cancelled entry dropped", m.NNZ())
	}
}

func TestCSREmptyRows(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(2, 3, 7)
	m := b.Build()
	for _, i := range []int{0, 1, 3} {
		if m.RowNNZ(i) != 0 {
			t.Errorf("row %d should be empty", i)
		}
	}
	if m.At(2, 3) != 7 {
		t.Error("lone entry lost")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(20)
		b := NewBuilder(n, n)
		for k := 0; k < 3*n; k++ {
			b.Add(r.Intn(n), r.Intn(n), r.Uniform(-2, 2))
		}
		m := b.Build()
		d := m.ToDense()
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Uniform(-1, 1)
		}
		ys, err1 := m.MulVec(nil, x)
		yd, err2 := d.MulVec(nil, x)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range ys {
			if math.Abs(ys[i]-yd[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSRNeighbors(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 1)
	b.Add(2, 0, 1)
	m := b.Build()
	nb := m.Neighbors()
	if len(nb[0]) != 2 || nb[0][0] != 1 || nb[0][1] != 2 {
		t.Errorf("neighbors[0] = %v", nb[0])
	}
	if len(nb[1]) != 0 {
		t.Errorf("neighbors[1] = %v", nb[1])
	}
}

func TestCSRMulVecShapeErrors(t *testing.T) {
	m := NewBuilder(2, 2).Build()
	if _, err := m.MulVec(nil, []float64{1}); err == nil {
		t.Error("want shape error for x")
	}
	if _, err := m.MulVec(make([]float64, 3), []float64{1, 2}); err == nil {
		t.Error("want shape error for dst")
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}
