package continuum

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// Front is a measured continuum wavefront: the per-sample position of
// the leading (rightmost) steep gradient, plus the fitted front motion —
// the continuum analogue of core.WaveFront.
type Front struct {
	// Ts are the sample times and Positions the per-sample front
	// positions (NaN where no gradient exceeded the threshold).
	Ts, Positions []float64
	// Detected counts samples with a detected front.
	Detected int
	// Velocity is the fitted d(position)/dt (signed; positive moves
	// toward larger x) and Speed its magnitude.
	Velocity, Speed float64
	// R2 is the goodness of the position-vs-time fit.
	R2 float64
}

// frontPosition returns the position of the rightmost forward pair whose
// gap magnitude |θ(x+a) − θ(x)| exceeds eps — the midpoint of the pair —
// or NaN when the field is everywhere flatter than eps. Forward pairs
// mirror Result.GradientField (no periodic wrap pair), so the tracker
// and the materialized gradient views agree on what counts as steep.
func frontPosition(g Grid, th []float64, eps float64) float64 {
	for i := len(th) - 2; i >= 0; i-- {
		if math.Abs(th[i+1]-th[i]) > eps {
			return g.X(i) + 0.5*g.A
		}
	}
	return math.NaN()
}

// measureFront fits the detected front positions against time and fills
// in the Front summary. It is the single fit implementation behind both
// the materialized and the streaming paths, which is what makes the two
// bitwise-identical.
func measureFront(ts, positions []float64) (Front, error) {
	f := Front{Ts: ts, Positions: positions}
	var xs, ys []float64
	for k, p := range positions {
		if math.IsNaN(p) {
			continue
		}
		xs = append(xs, ts[k])
		ys = append(ys, p)
		f.Detected++
	}
	if len(xs) < 3 {
		return f, errors.New("continuum: front detected in fewer than 3 samples")
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return f, err
	}
	f.Velocity = fit.Slope
	f.Speed = math.Abs(fit.Slope)
	f.R2 = fit.R2
	return f, nil
}

// MeasureFrontRows measures the front over materialized sample rows on
// the given grid: per row the rightmost steep forward pair (threshold
// eps; 0 selects 0.15), then a position-vs-time line fit. It is the
// reference implementation the streaming FrontTracker is pinned against
// bitwise, and works for any phase field rows — a POM chain measures
// through it with a unit-spacing grid.
func MeasureFrontRows(g Grid, ts []float64, rows [][]float64, eps float64) (Front, error) {
	if len(ts) != len(rows) {
		return Front{}, errors.New("continuum: ts and rows length mismatch")
	}
	if eps <= 0 {
		eps = 0.15
	}
	positions := make([]float64, len(rows))
	for k, th := range rows {
		positions[k] = frontPosition(g, th, eps)
	}
	return measureFront(append([]float64(nil), ts...), positions)
}

// FrontTimeline returns the per-sample front position of the result
// (NaN where no gap exceeds eps; 0 selects 0.15).
func (r *Result) FrontTimeline(eps float64) []float64 {
	if eps <= 0 {
		eps = 0.15
	}
	out := make([]float64, len(r.Theta))
	for k, th := range r.Theta {
		out[k] = frontPosition(r.Grid, th, eps)
	}
	return out
}

// MeasureFront measures the computational wavefront of a materialized
// continuum result — see MeasureFrontRows.
func (r *Result) MeasureFront(eps float64) (Front, error) {
	return MeasureFrontRows(r.Grid, r.Ts, r.Theta, eps)
}

// FrontTracker measures the continuum wavefront online — the streaming
// counterpart of Result.MeasureFront, analogous to core.WaveDetector:
// each sample row is reduced to one front position as it streams by, so
// no trajectory is ever materialized. Memory is O(nSamples) scalars
// (two floats per sample), independent of the grid size M. Finish
// returns the Front that MeasureFront computes on the materialized run,
// bit for bit.
//
// The zero value tracks on a unit-spacing grid adopted from the stream
// width at Begin — the right reading for discrete families (one rank
// per spacing); set Grid explicitly to track in physical continuum
// coordinates.
type FrontTracker struct {
	// Grid is the spatial grid; a zero Grid adopts {M: n, A: 1} at Begin.
	Grid Grid
	// Eps is the gap threshold; 0 selects 0.15.
	Eps float64

	width   int
	ts, pos []float64
}

// Begin implements sim.Sink.
func (f *FrontTracker) Begin(n, nSamples int) {
	if f.Grid.M == 0 {
		f.Grid = Grid{M: n, A: 1}
	}
	f.width = n
	if cap(f.ts) < nSamples {
		f.ts = make([]float64, 0, nSamples)
		f.pos = make([]float64, 0, nSamples)
	}
	f.ts, f.pos = f.ts[:0], f.pos[:0]
}

// Sample implements sim.Sink.
func (f *FrontTracker) Sample(t float64, theta []float64) {
	eps := f.Eps
	if eps <= 0 {
		eps = 0.15
	}
	f.ts = append(f.ts, t)
	f.pos = append(f.pos, frontPosition(f.Grid, theta, eps))
}

// Finish fits the accumulated front positions and returns the Front that
// MeasureFrontRows computes on the materialized rows.
func (f *FrontTracker) Finish() (Front, error) {
	if f.width != f.Grid.M {
		return Front{}, errors.New("continuum: stream width does not match tracker grid")
	}
	return measureFront(
		append([]float64(nil), f.ts...),
		append([]float64(nil), f.pos...),
	)
}
