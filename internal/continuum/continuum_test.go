package continuum

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/potential"
	"repro/internal/sim"
)

func TestGridValidation(t *testing.T) {
	if err := (Grid{M: 2, A: 1}).Validate(); err == nil {
		t.Error("want error for M < 3")
	}
	if err := (Grid{M: 10, A: 0}).Validate(); err == nil {
		t.Error("want error for A <= 0")
	}
	g := Grid{M: 10, A: 0.5}
	if g.Length() != 5 {
		t.Errorf("Length = %v", g.Length())
	}
	if g.X(4) != 2 {
		t.Errorf("X(4) = %v", g.X(4))
	}
}

func TestGridBoundaries(t *testing.T) {
	ring := Grid{M: 5, A: 1, Periodic: true}
	if ring.left(0) != 4 || ring.right(4) != 0 {
		t.Error("periodic wrap broken")
	}
	open := Grid{M: 5, A: 1}
	if open.left(0) != 1 || open.right(4) != 3 {
		t.Error("Neumann mirror broken")
	}
}

func TestDiffusivitySign(t *testing.T) {
	g := Grid{M: 16, A: 1}
	sync := Field{Grid: g, Potential: potential.Tanh{}, K: 2}
	if d := sync.Diffusivity(); math.Abs(d-2) > 1e-4 {
		t.Errorf("tanh diffusivity = %v, want k·a²·V'(0) = 2", d)
	}
	desync := Field{Grid: g, Potential: potential.NewDesync(1.5), K: 2}
	if d := desync.Diffusivity(); d >= 0 {
		t.Errorf("desync diffusivity = %v, want negative (anti-diffusion)", d)
	}
}

func TestSolveValidation(t *testing.T) {
	f := Field{Grid: Grid{M: 8, A: 1}, Potential: potential.Tanh{}, K: 1}
	if _, err := f.Solve(make([]float64, 4), 1, 10); err == nil {
		t.Error("want length-mismatch error")
	}
	if _, err := f.Solve(make([]float64, 8), 0, 10); err == nil {
		t.Error("want tEnd error")
	}
	bad := f
	bad.Potential = nil
	if _, err := bad.Solve(make([]float64, 8), 1, 10); err == nil {
		t.Error("want nil-potential error")
	}
}

// TestHeatKernelSpreading verifies the linear PDE against the textbook
// heat kernel: a localized lag packet's second moment grows as 2Dt.
func TestHeatKernelSpreading(t *testing.T) {
	g := Grid{M: 201, A: 1, Periodic: false}
	f := Field{Grid: g, Potential: potential.Tanh{}, K: 1, Linear: true}
	d := f.Diffusivity()

	// Initial condition: θ = 0 everywhere except a localized lag bump in
	// the middle (the delayed region runs behind).
	theta0 := make([]float64, g.M)
	for i := range theta0 {
		x := g.X(i) - g.X(g.M/2)
		theta0[i] = -2 * math.Exp(-x*x/(2*4)) // lag packet, var₀ = 4
	}
	res, err := f.Solve(theta0, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	m0 := res.SecondMoment(0, mathx.TwoPi)
	mEnd := res.SecondMoment(len(res.Ts)-1, mathx.TwoPi)
	growth := mEnd - m0
	want := 2 * d * 20
	if math.Abs(growth-want)/want > 0.15 {
		t.Errorf("second moment grew %v, want ≈ 2Dt = %v", growth, want)
	}
}

// TestLinearContinuumFlattens is the continuum resynchronization: any
// initial lag profile decays to a flat field under positive diffusivity.
func TestLinearContinuumFlattens(t *testing.T) {
	// The q = 2π/M mode decays at rate D·q²; M = 16 with D = 2 gives
	// rate ≈ 0.31, so 50 time units flatten it completely.
	g := Grid{M: 16, A: 1, Periodic: true}
	f := Field{Grid: g, Potential: potential.Tanh{}, K: 2, Linear: true}
	theta0 := make([]float64, g.M)
	for i := range theta0 {
		theta0[i] = math.Sin(2 * math.Pi * float64(i) / float64(g.M))
	}
	res, err := f.Solve(theta0, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	spread := res.SpreadTimeline()
	if spread[0] < 1.9 {
		t.Fatalf("initial spread = %v", spread[0])
	}
	if last := spread[len(spread)-1]; last > 0.01 {
		t.Errorf("final spread = %v, want ≈ 0 (flattened)", last)
	}
}

// TestNonlinearMatchesLinearForSmallGradients checks the Taylor-expansion
// correspondence: for small-amplitude fields both flux forms evolve the
// same way.
func TestNonlinearMatchesLinearForSmallGradients(t *testing.T) {
	g := Grid{M: 48, A: 1, Periodic: true}
	theta0 := make([]float64, g.M)
	for i := range theta0 {
		theta0[i] = 0.01 * math.Sin(2*math.Pi*float64(i)/float64(g.M))
	}
	run := func(linear bool) []float64 {
		f := Field{Grid: g, Potential: potential.Tanh{}, K: 2, Linear: linear}
		res, err := f.Solve(theta0, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.Theta[len(res.Theta)-1]
	}
	lin := run(true)
	non := run(false)
	for i := range lin {
		if math.Abs(lin[i]-non[i]) > 1e-5 {
			t.Fatalf("flux forms diverge at %d: %v vs %v", i, lin[i], non[i])
		}
	}
}

// TestAntiDiffusionSelectsGradient is the continuum computational
// wavefront: with the desynchronizing potential the flat state is
// unstable and the nonlinear flux selects a·|θ_x| at the potential's
// stable zero 2σ/3.
func TestAntiDiffusionSelectsGradient(t *testing.T) {
	sigma := 1.5
	pot := potential.NewDesync(sigma)
	g := Grid{M: 32, A: 1, Periodic: false}
	f := Field{Grid: g, Potential: pot, K: 2}
	theta0 := make([]float64, g.M)
	for i := range theta0 {
		// Small deterministic seed perturbation.
		theta0[i] = 0.01 * math.Sin(7*float64(i))
	}
	res, err := f.Solve(theta0, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	grad := res.GradientField(len(res.Ts) - 1)
	want := pot.StableZero()
	for i, gp := range grad {
		if math.Abs(math.Abs(gp)-want) > 0.15 {
			t.Errorf("gap at %d = %v, want ±%v", i, gp, want)
		}
	}
}

// TestDelayPacketDiffusesNotBallistic contrasts the continuum limit with
// the discrete traces: under the linear PDE a delay spreads ~√t.
func TestDelayPacketDiffusesNotBallistic(t *testing.T) {
	g := Grid{M: 161, A: 1, Periodic: false}
	f := Field{Grid: g, Potential: potential.Tanh{}, K: 2, Linear: true}
	theta0 := make([]float64, g.M)
	theta0[g.M/2] = -5 // point lag
	res, err := f.Solve(theta0, 64, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Width (sqrt of second moment) at t=16 and t=64 should scale by ≈2
	// (√4), not 4 (ballistic).
	kAt := func(tt float64) int {
		for k, ts := range res.Ts {
			if ts >= tt {
				return k
			}
		}
		return len(res.Ts) - 1
	}
	w16 := math.Sqrt(res.SecondMoment(kAt(16), mathx.TwoPi))
	w64 := math.Sqrt(res.SecondMoment(kAt(64), mathx.TwoPi))
	ratio := w64 / w16
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("width ratio = %v, want ≈ 2 (diffusive √t scaling)", ratio)
	}
}

// TestOmegaFieldInjectsDelay exercises the ω(x, t) hook: a slow region
// builds up lag relative to the rest.
func TestOmegaFieldInjectsDelay(t *testing.T) {
	g := Grid{M: 33, A: 1, Periodic: true}
	f := Field{
		Grid: g, Potential: potential.Tanh{}, K: 0.5,
		Omega: func(x, tt float64) float64 {
			if tt < 5 && math.Abs(x-16) < 2 {
				return mathx.TwoPi * 0.5 // half speed in the middle early on
			}
			return mathx.TwoPi
		},
	}
	res, err := f.Solve(make([]float64, g.M), 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	lag := res.Lag(len(res.Ts)-1, mathx.TwoPi)
	if lag[16] <= lag[0] {
		t.Errorf("slow region lag %v not above far-field %v", lag[16], lag[0])
	}
}

// TestValidationRejectsNonFinite is the regression test for the
// input-validation hole: a NaN lattice spacing or a NaN/Inf coupling
// passed every sign check before the fix and produced a silently
// poisoned field (NaN coordinates, NaN flux) instead of an error.
func TestValidationRejectsNonFinite(t *testing.T) {
	if err := (Grid{M: 10, A: math.NaN()}).Validate(); err == nil {
		t.Error("want error for NaN lattice spacing")
	}
	if err := (Grid{M: 10, A: math.Inf(1)}).Validate(); err == nil {
		t.Error("want error for infinite lattice spacing")
	}
	g := Grid{M: 8, A: 1}
	for _, k := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		f := Field{Grid: g, Potential: potential.Tanh{}, K: k}
		if _, err := f.Solve(make([]float64, 8), 1, 5); err == nil {
			t.Errorf("want error for coupling %v", k)
		}
	}
}

// TestSolveStreamMatchesSolve pins the unified-runtime port: the rows
// streamed through sim.RunStream are bit-for-bit the rows Solve
// materializes, and the shared SpreadAccumulator timeline reproduces
// SpreadTimeline exactly.
func TestSolveStreamMatchesSolve(t *testing.T) {
	g := Grid{M: 24, A: 1, Periodic: true}
	f := Field{Grid: g, Potential: potential.Tanh{}, K: 2, Linear: true}
	theta0 := make([]float64, g.M)
	for i := range theta0 {
		theta0[i] = math.Sin(2 * math.Pi * float64(i) / float64(g.M))
	}
	res, err := f.Solve(theta0, 12, 25)
	if err != nil {
		t.Fatal(err)
	}
	spread := &sim.SpreadAccumulator{KeepTimeline: true}
	k := 0
	_, err = f.SolveStream(theta0, 12, 25, sim.Tee(spread, sim.SinkFunc(func(tt float64, y []float64) {
		if math.Float64bits(tt) != math.Float64bits(res.Ts[k]) {
			t.Fatalf("sample %d time %v differs from materialized %v", k, tt, res.Ts[k])
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(res.Theta[k][i]) {
				t.Fatalf("sample %d component %d differs", k, i)
			}
		}
		k++
	})))
	if err != nil {
		t.Fatal(err)
	}
	if k != len(res.Ts) {
		t.Fatalf("streamed %d rows, materialized %d", k, len(res.Ts))
	}
	want := res.SpreadTimeline()
	if len(spread.Timeline) != len(want) {
		t.Fatalf("spread timeline %d entries, want %d", len(spread.Timeline), len(want))
	}
	for i := range want {
		if math.Float64bits(spread.Timeline[i]) != math.Float64bits(want[i]) {
			t.Fatalf("spread[%d] differs: %v vs %v", i, spread.Timeline[i], want[i])
		}
	}
}
