package continuum

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/topology"
)

// frontField builds a desynchronizing field with a pulse seed: the
// anti-diffusive regime where a sharpening front actually develops.
func frontField() (*Field, []float64) {
	f := &Field{
		Grid:      Grid{M: 64, A: 1},
		Potential: potential.NewDesync(1.2),
		K:         2,
	}
	theta0 := make([]float64, 64)
	for i := range theta0 {
		d := (f.Grid.X(i) - 20) / 3
		theta0[i] = -2 * math.Exp(-d*d)
	}
	return f, theta0
}

// TestFrontTrackerMatchesMeasureFront is the bitwise pin of the
// streaming tracker against the materialized reference on a continuum
// run: same per-sample positions, same fit, bit for bit.
func TestFrontTrackerMatchesMeasureFront(t *testing.T) {
	const tEnd, nSamples, eps = 30.0, 121, 0.15
	f, theta0 := frontField()

	res, err := f.Solve(theta0, tEnd, nSamples)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.MeasureFront(eps)
	if err != nil {
		t.Fatal(err)
	}

	tracker := &FrontTracker{Grid: f.Grid, Eps: eps}
	if _, err := f.SolveStream(theta0, tEnd, nSamples, tracker); err != nil {
		t.Fatal(err)
	}
	got, err := tracker.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if got.Detected != want.Detected || got.Detected < 3 {
		t.Fatalf("detected %d vs %d (need >= 3)", got.Detected, want.Detected)
	}
	if len(got.Positions) != len(want.Positions) {
		t.Fatalf("positions length %d vs %d", len(got.Positions), len(want.Positions))
	}
	for k := range want.Positions {
		if math.Float64bits(got.Positions[k]) != math.Float64bits(want.Positions[k]) {
			t.Fatalf("position %d: %v vs %v", k, got.Positions[k], want.Positions[k])
		}
	}
	for name, pair := range map[string][2]float64{
		"velocity": {got.Velocity, want.Velocity},
		"speed":    {got.Speed, want.Speed},
		"r2":       {got.R2, want.R2},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Errorf("%s: streamed %v, materialized %v", name, pair[0], pair[1])
		}
	}
	// The timeline view agrees with the fitted positions.
	tl := res.FrontTimeline(eps)
	for k := range tl {
		if math.Float64bits(tl[k]) != math.Float64bits(want.Positions[k]) {
			t.Fatalf("FrontTimeline diverges at %d", k)
		}
	}
}

// TestFrontTrackerFlatField checks the no-front path: a flat field never
// crosses the threshold and Finish reports a clean error.
func TestFrontTrackerFlatField(t *testing.T) {
	f := &Field{Grid: Grid{M: 16, A: 1}, Potential: potential.Tanh{}, K: 1}
	tracker := &FrontTracker{Grid: f.Grid}
	if _, err := f.SolveStream(make([]float64, 16), 5, 21, tracker); err != nil {
		t.Fatal(err)
	}
	if _, err := tracker.Finish(); err == nil {
		t.Error("flat field: want a too-few-samples error")
	}
}

// frontPOMConfig builds a POM chain with a one-off delay: the launched
// idle wave is the moving steep-gap structure the tracker follows.
func frontPOMConfig(t *testing.T, dde bool, workers int) core.Config {
	t.Helper()
	tp, err := topology.NextNeighbor(32, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		N:          32,
		TComp:      0.8,
		TComm:      0.2,
		Potential:  potential.Tanh{},
		Topology:   tp,
		LocalNoise: noise.Delay{Rank: 0, Start: 10, Duration: 2, Extra: 100},
		Workers:    workers,
	}
	if dde {
		cfg.InteractionNoise = noise.ConstantLag{Lag: 0.05}
	}
	return cfg
}

// TestFrontTrackerMatchesRowsPOM pins the tracker across families and
// solver paths: for a POM idle wave at Workers = 1 and 4, ODE and DDE,
// the streamed Front equals MeasureFrontRows over the materialized rows
// on the unit-spacing grid (one rank per lattice site).
func TestFrontTrackerMatchesRowsPOM(t *testing.T) {
	const tEnd, nSamples, eps = 60.0, 241, 0.15
	for _, tc := range []struct {
		name    string
		dde     bool
		workers int
	}{
		{"ode/workers1", false, 1},
		{"ode/workers4", false, 4},
		{"dde/workers1", true, 1},
		{"dde/workers4", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mMat, err := core.New(frontPOMConfig(t, tc.dde, tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			res, err := mMat.Run(tEnd, nSamples)
			if err != nil {
				t.Fatal(err)
			}
			g := Grid{M: 32, A: 1}
			want, wantErr := MeasureFrontRows(g, res.Ts, res.Theta, eps)

			mStr, err := core.New(frontPOMConfig(t, tc.dde, tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			tracker := &FrontTracker{Grid: g, Eps: eps}
			if _, err := sim.RunStream(mStr, tEnd, nSamples, tracker); err != nil {
				t.Fatal(err)
			}
			got, gotErr := tracker.Finish()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: rows %v, streamed %v", wantErr, gotErr)
			}
			if wantErr != nil {
				t.Fatalf("POM wave not detected: %v", wantErr)
			}
			if got.Detected != want.Detected || got.Detected < 3 {
				t.Fatalf("detected %d vs %d", got.Detected, want.Detected)
			}
			for k := range want.Positions {
				if math.Float64bits(got.Positions[k]) != math.Float64bits(want.Positions[k]) {
					t.Fatalf("position %d: %v vs %v", k, got.Positions[k], want.Positions[k])
				}
			}
			if math.Float64bits(got.Speed) != math.Float64bits(want.Speed) ||
				math.Float64bits(got.R2) != math.Float64bits(want.R2) {
				t.Fatalf("fit differs: speed %v vs %v, r2 %v vs %v",
					got.Speed, want.Speed, got.R2, want.R2)
			}
		})
	}
}

// TestFrontTrackerZeroValueAdoptsUnitGrid checks the zero-value
// convenience: Begin adopts a unit-spacing grid of the stream width.
func TestFrontTrackerZeroValueAdoptsUnitGrid(t *testing.T) {
	f, theta0 := frontField()
	tracker := &FrontTracker{}
	if _, err := f.SolveStream(theta0, 10, 41, tracker); err != nil {
		t.Fatal(err)
	}
	if tracker.Grid.M != 64 || tracker.Grid.A != 1 {
		t.Fatalf("adopted grid %+v", tracker.Grid)
	}
	if _, err := tracker.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}
