// Package continuum implements the continuum limit of the physical
// oscillator model, which the paper's §6 poses as future work ("if a
// well-defined continuum limit of the model can be found, it could be
// useful in hardware-software co-design").
//
// Replacing the rank index by a continuous coordinate x with lattice
// spacing a, the ±1-stencil coupling term of Eq. (2) becomes
//
//	k·[V(θ(x+a)−θ(x)) + V(θ(x−a)−θ(x))]
//	  = k·a²·V'(0)·θ_xx + O(a⁴)        (small-gradient expansion)
//
// so the field θ(x, t) obeys, to leading order, a reaction–diffusion
// equation θ_t = ω(x, t) + D·θ_xx with D = k·a²·V'(0):
//
//   - the synchronizing potential (V'(0) > 0) yields ordinary diffusion —
//     idle waves spread out and decay, the field flattens
//     (resynchronization);
//   - the desynchronizing potential (V'(0) < 0) yields *anti-diffusion* —
//     the flat state is unstable and the full nonlinear flux selects a
//     finite gradient with a·|θ_x| at the potential's stable zero: the
//     continuum computational wavefront.
//
// Two right-hand sides are provided: Linear (the leading-order PDE) and
// Nonlinear (the full finite-difference flux, which remains well-posed in
// the anti-diffusive regime because the potential saturates).
//
// A Field bound to an initial state (Field.System) implements sim.System,
// so continuum relaxation studies route through the same unified runtime
// as the discrete models: SolveStream drives the shared accumulator
// sinks, and the sweep/archive machinery works over continuum points
// unchanged.
package continuum

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/ode"
	"repro/internal/potential"
	"repro/internal/sim"
)

// Grid is a uniform 1-D spatial grid.
type Grid struct {
	// M is the number of grid points.
	M int
	// A is the lattice spacing (distance between neighboring points; in
	// the discrete-model correspondence, one MPI rank per spacing).
	A float64
	// Periodic selects ring (true) or zero-flux Neumann (false)
	// boundaries.
	Periodic bool
}

// Validate reports configuration errors.
func (g Grid) Validate() error {
	if g.M < 3 {
		return errors.New("continuum: need at least 3 grid points")
	}
	// NaN fails the <= comparison, so check it explicitly: a NaN spacing
	// would silently poison every coordinate and the diffusivity.
	if !(g.A > 0) || math.IsInf(g.A, 0) {
		return fmt.Errorf("continuum: lattice spacing must be positive and finite, got %v", g.A)
	}
	return nil
}

// Length returns the domain length M·a.
func (g Grid) Length() float64 { return float64(g.M) * g.A }

// X returns the coordinate of grid point i.
func (g Grid) X(i int) float64 { return float64(i) * g.A }

// left and right return neighbor indices under the boundary rule.
func (g Grid) left(i int) int {
	if i > 0 {
		return i - 1
	}
	if g.Periodic {
		return g.M - 1
	}
	return 1 // Neumann mirror
}

func (g Grid) right(i int) int {
	if i < g.M-1 {
		return i + 1
	}
	if g.Periodic {
		return 0
	}
	return g.M - 2 // Neumann mirror
}

// Field is a continuum POM configuration.
type Field struct {
	Grid Grid
	// Omega is the local natural frequency field ω(x, t); nil means the
	// constant 2π (unit period everywhere).
	Omega func(x, t float64) float64
	// Potential is V; required for the nonlinear flux, and its V'(0)
	// defines the linear diffusivity.
	Potential potential.Potential
	// K is the per-partner coupling strength k.
	K float64
	// Linear selects the leading-order PDE θ_t = ω + D θ_xx instead of
	// the full nonlinear flux.
	Linear bool
	// Atol and Rtol are solver tolerances (defaults 1e-8/1e-6).
	Atol, Rtol float64
}

// Diffusivity returns D = k·a²·V'(0) of the leading-order PDE.
func (f *Field) Diffusivity() float64 {
	const h = 1e-6
	dv0 := (f.Potential.Eval(h) - f.Potential.Eval(-h)) / (2 * h)
	return f.K * f.Grid.A * f.Grid.A * dv0
}

// rhs evaluates the time derivative of the field.
func (f *Field) rhs(t float64, th, dth []float64) {
	g := f.Grid
	omega := func(x float64) float64 {
		if f.Omega == nil {
			return mathx.TwoPi
		}
		return f.Omega(x, t)
	}
	if f.Linear {
		d := f.Diffusivity() / (g.A * g.A)
		for i := 0; i < g.M; i++ {
			lap := th[g.left(i)] + th[g.right(i)] - 2*th[i]
			dth[i] = omega(g.X(i)) + d*lap
		}
		return
	}
	for i := 0; i < g.M; i++ {
		coupling := f.Potential.Eval(th[g.left(i)]-th[i]) +
			f.Potential.Eval(th[g.right(i)]-th[i])
		dth[i] = omega(g.X(i)) + f.K*coupling
	}
}

// Result is a completed continuum integration.
type Result struct {
	Grid  Grid
	Ts    []float64
	Theta [][]float64
	Stats ode.Stats
}

// FieldSystem is a Field bound to an initial state — the sim.System view
// of the continuum model that Solve, SolveStream, and the scenario
// registry integrate through the unified runtime.
type FieldSystem struct {
	f      *Field
	theta0 []float64
}

// System validates the field configuration and binds it to theta0,
// returning the sim.System the unified runtime integrates.
func (f *Field) System(theta0 []float64) (*FieldSystem, error) {
	if err := f.Grid.Validate(); err != nil {
		return nil, err
	}
	if f.Potential == nil {
		return nil, errors.New("continuum: nil potential")
	}
	if f.K < 0 {
		return nil, errors.New("continuum: negative coupling")
	}
	// A NaN/Inf coupling passes the sign check but produces a NaN field on
	// the very first right-hand-side call; reject it at the boundary.
	if math.IsNaN(f.K) || math.IsInf(f.K, 0) {
		return nil, fmt.Errorf("continuum: non-finite coupling %v", f.K)
	}
	if len(theta0) != f.Grid.M {
		return nil, fmt.Errorf("continuum: theta0 has %d points, grid %d", len(theta0), f.Grid.M)
	}
	return &FieldSystem{f: f, theta0: append([]float64(nil), theta0...)}, nil
}

// Dim implements sim.System.
func (s *FieldSystem) Dim() int { return s.f.Grid.M }

// InitialState implements sim.System.
func (s *FieldSystem) InitialState() []float64 { return s.theta0 }

// Eval implements sim.System.
func (s *FieldSystem) Eval(t float64, y, dydt []float64) { s.f.rhs(t, y, dydt) }

// Solver implements sim.Tuned. Diffusion stability is handled by the
// error controller, but the step is capped against frozen-noise-style ω
// fields just as the discrete model does.
func (s *FieldSystem) Solver() sim.Solver {
	return sim.Solver{Atol: s.f.Atol, Rtol: s.f.Rtol, Hmax: 0.25}
}

// Solve integrates the field from theta0 over [0, tEnd] with nSamples
// uniform output samples through the unified sim runtime.
func (f *Field) Solve(theta0 []float64, tEnd float64, nSamples int) (*Result, error) {
	sys, err := f.System(theta0)
	if err != nil {
		return nil, err
	}
	if tEnd <= 0 {
		return nil, errors.New("continuum: tEnd must be positive")
	}
	res, err := sim.Run(sys, tEnd, nSamples)
	if err != nil {
		return nil, fmt.Errorf("continuum: %w", err)
	}
	return &Result{Grid: f.Grid, Ts: res.Ts, Theta: res.Ys, Stats: res.Stats}, nil
}

// SolveStream integrates like Solve but emits the sample rows to sink
// instead of materializing them — the constant-memory path continuum
// relaxation sweeps pair with the shared accumulator sinks.
func (f *Field) SolveStream(theta0 []float64, tEnd float64, nSamples int, sink sim.Sink) (ode.Stats, error) {
	sys, err := f.System(theta0)
	if err != nil {
		return ode.Stats{}, err
	}
	if tEnd <= 0 {
		return ode.Stats{}, errors.New("continuum: tEnd must be positive")
	}
	return sim.RunStream(sys, tEnd, nSamples, sink)
}

// Lag returns ω̄·t − θ(x, t) at sample k for the constant-ω case: the
// local delay field whose spreading is the continuum idle wave.
func (r *Result) Lag(k int, omegaBar float64) []float64 {
	out := make([]float64, len(r.Theta[k]))
	for i, th := range r.Theta[k] {
		out[i] = omegaBar*r.Ts[k] - th
	}
	return out
}

// GradientField returns the adjacent gap field θ(x+a) − θ(x) at sample k
// (forward differences, M−1 values): the continuum analogue of the
// adjacent phase gap. Forward differences are essential here — the
// anti-diffusive instability grows fastest at the zone boundary
// (wavelength 2a, the zigzag state), which a central difference reads as
// zero.
func (r *Result) GradientField(k int) []float64 {
	th := r.Theta[k]
	out := make([]float64, len(th)-1)
	for i := 0; i+1 < len(th); i++ {
		out[i] = th[i+1] - th[i]
	}
	return out
}

// SpreadTimeline returns max θ − min θ at every sample.
func (r *Result) SpreadTimeline() []float64 {
	out := make([]float64, len(r.Theta))
	for k, th := range r.Theta {
		lo, hi, err := mathx.MinMax(th)
		if err == nil {
			out[k] = hi - lo
		}
	}
	return out
}

// SecondMoment returns the variance of the lag distribution at sample k
// treating the (nonnegative) lag as a mass density — for a diffusing
// delay packet it grows as 2Dt, the textbook heat-kernel check.
func (r *Result) SecondMoment(k int, omegaBar float64) float64 {
	lag := r.Lag(k, omegaBar)
	var mass, mean float64
	for i, v := range lag {
		if v < 0 {
			v = 0
		}
		mass += v
		mean += v * r.Grid.X(i)
	}
	if mass <= 0 {
		return 0
	}
	mean /= mass
	var m2 float64
	for i, v := range lag {
		if v < 0 {
			v = 0
		}
		d := r.Grid.X(i) - mean
		m2 += v * d * d
	}
	return m2 / mass
}
