package scenario

import (
	"path/filepath"
	"testing"
)

// TestExampleConfigsBuild loads every shipped example config
// (examples/scenarios/*.json — the runnable configs SCENARIOS.md
// documents) and builds it through the registry. It also pins doc
// coverage: every registered family must ship exactly such a config, so
// adding a family without documenting a runnable scenario fails here.
func TestExampleConfigsBuild(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example configs found under examples/scenarios")
	}
	covered := make(map[string]bool)
	for _, p := range paths {
		spec, err := LoadFile(p)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		sys, tEnd, samples, err := spec.BuildSystem()
		if err != nil {
			t.Errorf("%s: build: %v", filepath.Base(p), err)
			continue
		}
		if sys.Dim() < 1 || tEnd <= 0 || samples < 2 {
			t.Errorf("%s: degenerate controls: dim=%d tEnd=%v samples=%d",
				filepath.Base(p), sys.Dim(), tEnd, samples)
		}
		fam := spec.Family
		if fam == "" {
			fam = "pom"
		}
		covered[fam] = true
	}
	for _, fam := range Families() {
		if !covered[fam] {
			t.Errorf("registered family %q ships no example config under examples/scenarios", fam)
		}
	}
}
