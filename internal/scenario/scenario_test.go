package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noise"
)

func validSpec() *Spec {
	return &Spec{
		Name:      "test",
		N:         12,
		TComp:     0.8,
		TComm:     0.2,
		Potential: PotentialSpec{Kind: "tanh"},
		Offsets:   []int{-1, 1},
	}
}

func TestValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"small n", func(s *Spec) { s.N = 1 }},
		{"zero period", func(s *Spec) { s.TComp, s.TComm = 0, 0 }},
		{"bad potential", func(s *Spec) { s.Potential.Kind = "magic" }},
		{"desync no sigma", func(s *Spec) { s.Potential = PotentialSpec{Kind: "desync"} }},
		{"empty stencil", func(s *Spec) { s.Offsets = nil }},
		{"bad init", func(s *Spec) { s.Init = "weird" }},
		{"bad jitter", func(s *Spec) { s.Jitter = &JitterSpec{Dist: "cauchy", Amp: 1} }},
		{"delay rank", func(s *Spec) { s.Delays = []DelaySpec{{Rank: 99, Duration: 1}} }},
		{"delay duration", func(s *Spec) { s.Delays = []DelaySpec{{Rank: 1, Duration: 0}} }},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestBuildDefaults(t *testing.T) {
	cfg, tEnd, samples, err := validSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N != 12 || cfg.Potential == nil || cfg.Topology == nil {
		t.Errorf("cfg incomplete: %+v", cfg)
	}
	if tEnd != 150 || samples != 601 {
		t.Errorf("defaults: tEnd=%v samples=%d", tEnd, samples)
	}
}

func TestBuildFullSpec(t *testing.T) {
	s := validSpec()
	s.Potential = PotentialSpec{Kind: "desync", Sigma: 2}
	s.Rendezvous = true
	s.GroupedWaitall = true
	s.Init = "random"
	s.PerturbAmp = 0.05
	s.Delays = []DelaySpec{{Rank: 3, Start: 10, Duration: 2}}
	s.Jitter = &JitterSpec{Dist: "uniform", Amp: 0.1, Seed: 4}
	s.CommLag = 0.05
	s.TEnd = 77
	s.Samples = 321
	cfg, tEnd, samples, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tEnd != 77 || samples != 321 {
		t.Errorf("controls: %v %v", tEnd, samples)
	}
	if cfg.LocalNoise == nil || cfg.InteractionNoise == nil {
		t.Error("noise channels not built")
	}
	// The default delay Extra is 100 periods.
	sum, ok := cfg.LocalNoise.(noise.Sum)
	if !ok || len(sum) != 2 {
		t.Fatalf("LocalNoise = %T", cfg.LocalNoise)
	}
	if d, ok := sum[0].(noise.Delay); !ok || d.Extra != 100 {
		t.Errorf("delay extra = %+v", sum[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := Fig2Panel([]int{-2, -1, 1}, false, 1.5)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != s.N || back.Potential.Sigma != 1.5 || len(back.Offsets) != 3 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Init != "random" {
		t.Errorf("init = %q", back.Init)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"n": 4, "bogus": true}`)); err == nil {
		t.Error("want error for unknown field")
	}
	if _, err := Load(strings.NewReader(`{`)); err == nil {
		t.Error("want error for malformed JSON")
	}
	if _, err := Load(strings.NewReader(`{"n": 1}`)); err == nil {
		t.Error("want validation error")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path.json"); err == nil {
		t.Error("want error for missing file")
	}
}

// TestSpecRunsEndToEnd builds and integrates a scenario, checking the
// wavefront physics still emerges from the serialized description.
func TestSpecRunsEndToEnd(t *testing.T) {
	s := validSpec()
	s.Potential = PotentialSpec{Kind: "desync", Sigma: 1.2}
	s.Init = "random"
	s.PerturbAmp = 0.02
	s.PerturbSeed = 3
	s.TEnd = 300
	s.Samples = 301
	cfg, tEnd, samples, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(tEnd, samples)
	if err != nil {
		t.Fatal(err)
	}
	gaps := res.AsymptoticGaps(0.1)
	want := 2 * 1.2 / 3
	var mean float64
	for _, g := range gaps {
		mean += math.Abs(g)
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-want) > 0.12 {
		t.Errorf("gap = %v, want %v", mean, want)
	}
}
