package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/continuum"
	"repro/internal/core"
	"repro/internal/kuramoto"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PotentialSpec selects and parameterizes the interaction potential.
type PotentialSpec struct {
	// Kind is "tanh", "desync", or "kuramoto".
	Kind string `json:"kind"`
	// Sigma is the desync interaction horizon (required for "desync").
	Sigma float64 `json:"sigma,omitempty"`
}

// validate checks the potential selection; path is the JSON path of the
// potential block ("potential", "continuum.potential", …) that failing
// fields are reported under. The sigma check is written NaN-proof
// (`!(x > 0)` rather than `x <= 0`): JSON cannot encode NaN, but Go
// callers construct specs directly and a NaN horizon would silently
// poison every potential evaluation.
func (p PotentialSpec) validate(path string) error {
	switch p.Kind {
	case "tanh", "kuramoto":
	case "desync":
		if !(p.Sigma > 0) || math.IsInf(p.Sigma, 0) {
			return fieldErrf(path+".sigma", "scenario: desync potential needs finite sigma > 0, got %v", p.Sigma)
		}
	default:
		return fieldErrf(path+".kind", "scenario: unknown potential %q", p.Kind)
	}
	return nil
}

// build returns the selected potential (validate must have passed).
func (p PotentialSpec) build() potential.Potential {
	switch p.Kind {
	case "desync":
		return potential.NewDesync(p.Sigma)
	case "kuramoto":
		return potential.KuramotoSine{}
	default:
		return potential.Tanh{}
	}
}

// DelaySpec is a one-off delay injection.
type DelaySpec struct {
	Rank     int     `json:"rank"`
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	// Extra is the additional period during the window; 0 selects 100
	// periods (an effective freeze).
	Extra float64 `json:"extra,omitempty"`
}

// JitterSpec is frozen background period noise.
type JitterSpec struct {
	// Dist is "gaussian", "uniform", or "exponential".
	Dist string `json:"dist"`
	// Amp is the distribution scale.
	Amp float64 `json:"amp"`
	// Refresh is the cell length; 0 selects one period.
	Refresh float64 `json:"refresh,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// KuramotoSpec carries the Kuramoto-family parameters of a Spec.
type KuramotoSpec struct {
	// N is the oscillator count and K the global coupling.
	N int     `json:"n"`
	K float64 `json:"k"`
	// FreqMean and FreqStd parameterize the Gaussian g(ω).
	FreqMean float64 `json:"freq_mean,omitempty"`
	FreqStd  float64 `json:"freq_std,omitempty"`
	// Seed makes frequency and phase draws reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// SpreadInitial draws initial phases uniformly on [0, 2π).
	SpreadInitial bool `json:"spread_initial,omitempty"`
}

// ContinuumSpec carries the continuum-family parameters of a Spec.
type ContinuumSpec struct {
	// M is the grid point count and A the lattice spacing.
	M int     `json:"m"`
	A float64 `json:"a"`
	// Periodic selects ring boundaries (zero-flux Neumann otherwise).
	Periodic bool `json:"periodic,omitempty"`
	// K is the per-partner coupling strength.
	K float64 `json:"k"`
	// Linear selects the leading-order PDE instead of the full flux.
	Linear bool `json:"linear,omitempty"`
	// Potential selects V (its V'(0) sets the linear diffusivity).
	Potential PotentialSpec `json:"potential"`
	// Init is "flat" (default, θ = 0 everywhere) or "pulse" (a localized
	// Gaussian lag packet — the continuum idle-wave seed).
	Init string `json:"init,omitempty"`
	// PulseAmp, PulseCenter, and PulseWidth parameterize "pulse"
	// (θ₀(x) = −Amp·exp(−((x−Center)/Width)²)); Center 0 selects the
	// domain midpoint and Width 0 selects 3 lattice spacings.
	PulseAmp    float64 `json:"pulse_amp,omitempty"`
	PulseCenter float64 `json:"pulse_center,omitempty"`
	PulseWidth  float64 `json:"pulse_width,omitempty"`
}

// Spec is a complete, serializable scenario: a model family plus its
// parameters and run controls. The top-level fields other than Name,
// Family, TEnd, and Samples are the POM-family parameters (the original
// Spec layout, so existing JSON files load unchanged); the Kuramoto and
// Continuum sub-specs carry the other families.
type Spec struct {
	// Name labels the scenario in outputs.
	Name string `json:"name"`
	// Family selects the model family: "pom" (default when empty),
	// "kuramoto", "continuum", "torus2d", "linstab", or "cluster" — or
	// any family added via RegisterFamily. SCENARIOS.md documents every
	// family's JSON surface.
	Family string `json:"family,omitempty"`
	// N is the oscillator count.
	N int `json:"n,omitempty"`
	// TComp and TComm are the phase durations.
	TComp float64 `json:"tcomp,omitempty"`
	TComm float64 `json:"tcomm,omitempty"`
	// Potential selects V. (omitzero, not omitempty: encoding/json never
	// treats a non-pointer struct as empty, so omitempty would silently
	// emit a junk `"potential": {"kind": ""}` block in non-POM specs.)
	Potential PotentialSpec `json:"potential,omitzero"`
	// Offsets is the communication stencil; Periodic wraps it.
	Offsets  []int `json:"offsets,omitempty"`
	Periodic bool  `json:"periodic,omitempty"`
	// Rendezvous selects β = 2; GroupedWaitall selects κ = max|d|.
	Rendezvous     bool `json:"rendezvous,omitempty"`
	GroupedWaitall bool `json:"grouped_waitall,omitempty"`
	// CouplingOverride replaces v_p when positive; Gain scales Eq. (2)'s
	// 1/N normalization (0 = default N).
	CouplingOverride float64 `json:"coupling_override,omitempty"`
	Gain             float64 `json:"gain,omitempty"`
	// Delays lists one-off injections; Jitter adds background noise;
	// CommLag adds a constant interaction delay τ.
	Delays  []DelaySpec `json:"delays,omitempty"`
	Jitter  *JitterSpec `json:"jitter,omitempty"`
	CommLag float64     `json:"comm_lag,omitempty"`
	// Init is "sync" (default), "desync", or "random"; PerturbAmp and
	// PerturbSeed parameterize "random".
	Init        string  `json:"init,omitempty"`
	PerturbAmp  float64 `json:"perturb_amp,omitempty"`
	PerturbSeed uint64  `json:"perturb_seed,omitempty"`
	// Kuramoto, Continuum, Torus2D, Linstab, and Cluster carry the
	// non-POM family parameters; exactly the sub-spec matching Family may
	// be set.
	Kuramoto  *KuramotoSpec  `json:"kuramoto,omitempty"`
	Continuum *ContinuumSpec `json:"continuum,omitempty"`
	Torus2D   *Torus2DSpec   `json:"torus2d,omitempty"`
	Linstab   *LinstabSpec   `json:"linstab,omitempty"`
	Cluster   *ClusterSpec   `json:"cluster,omitempty"`
	// TEnd and Samples control the integration. Zero selects the family
	// default (POM: 150 periods / 601 samples; others: 40 time units /
	// 201 samples).
	TEnd    float64 `json:"t_end,omitempty"`
	Samples int     `json:"samples,omitempty"`
}

// FamilyDef describes one registered model family: how to validate a
// Spec's family-specific section and how to build it into a sim.System
// plus run-control defaults.
type FamilyDef struct {
	// Validate checks the family-specific Spec fields.
	Validate func(s *Spec) error
	// Build constructs the sim.System (Validate has passed).
	Build func(s *Spec) (sim.System, error)
	// DefaultTEnd and DefaultSamples are used when the Spec leaves TEnd /
	// Samples zero. DefaultTEnd may inspect the spec (the POM default is
	// 150 natural periods); a built system implementing TEndSuggester
	// overrides the default with its post-build knowledge.
	DefaultTEnd    func(s *Spec) float64
	DefaultSamples int
}

// families is the model-family registry. Access is not synchronized:
// RegisterFamily is meant for init-time registration, like
// database/sql.Register.
var families = map[string]FamilyDef{}

// RegisterFamily adds (or replaces) a model family under the given name.
// It panics on an empty name or nil hooks — registration errors are
// programmer errors.
func RegisterFamily(name string, def FamilyDef) {
	if name == "" || def.Validate == nil || def.Build == nil {
		panic("scenario: RegisterFamily needs a name and Validate/Build hooks")
	}
	families[name] = def
}

// Families returns the registered family names, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// family resolves the spec's family name ("" means "pom").
func (s *Spec) family() (string, FamilyDef, error) {
	name := s.Family
	if name == "" {
		name = "pom"
	}
	def, ok := families[name]
	if !ok {
		return "", FamilyDef{}, fieldErrf("family", "scenario: unknown family %q (registered: %v)", name, Families())
	}
	return name, def, nil
}

// validateControls checks the family-independent run controls and the
// sub-spec exclusivity rule: only the section matching the resolved
// family may be set. Without the check a stray extra section would pass
// validation and then mislead anything that discriminates on section
// presence (pomsim's per-family sinks and archive params, readers of
// saved specs).
func (s *Spec) validateControls(family string) error {
	if s.TEnd < 0 || math.IsNaN(s.TEnd) || math.IsInf(s.TEnd, 0) {
		return fieldErrf("t_end", "scenario: bad t_end %v", s.TEnd)
	}
	if s.Samples < 0 {
		return fieldErrf("samples", "scenario: negative samples %d", s.Samples)
	}
	sections := []struct {
		name string
		set  bool
	}{
		{"kuramoto", s.Kuramoto != nil},
		{"continuum", s.Continuum != nil},
		{"torus2d", s.Torus2D != nil},
		{"linstab", s.Linstab != nil},
		{"cluster", s.Cluster != nil},
	}
	for _, sec := range sections {
		if sec.set && sec.name != family {
			return fieldErrf(sec.name, "scenario: family %q must not carry a %q section", family, sec.name)
		}
	}
	return nil
}

// FamilyName returns the spec's resolved family name (the empty name
// resolves to "pom"). Unknown families return the same field error as
// Validate.
func (s *Spec) FamilyName() (string, error) {
	name, _, err := s.family()
	return name, err
}

// Validate checks the spec without building it.
func (s *Spec) Validate() error {
	name, def, err := s.family()
	if err != nil {
		return err
	}
	if err := s.validateControls(name); err != nil {
		return err
	}
	return def.Validate(s)
}

// controls resolves TEnd/Samples against the family defaults.
func (s *Spec) controls(def FamilyDef) (tEnd float64, samples int) {
	tEnd = s.TEnd
	if tEnd == 0 {
		tEnd = def.DefaultTEnd(s)
	}
	samples = s.Samples
	if samples == 0 {
		samples = def.DefaultSamples
	}
	return tEnd, samples
}

// TEndSuggester is implemented by built systems that know their natural
// run length only after building — the cluster family's trace replay
// learns its makespan from the event simulation. When the spec leaves
// t_end zero, BuildSystem prefers the suggestion over the family's
// DefaultTEnd estimate. An explicit t_end always wins.
type TEndSuggester interface {
	SuggestTEnd() float64
}

// BuildSystem builds the spec into a sim.System plus run controls,
// uniformly over every registered family — the entry point the unified
// streaming/sweep/archive stack and cmd/pomsim consume. Each layer runs
// once: family resolution, control and family validation, then the
// family's Build hook.
func (s *Spec) BuildSystem() (sys sim.System, tEnd float64, samples int, err error) {
	name, def, err := s.family()
	if err != nil {
		return nil, 0, 0, err
	}
	if err := s.validateControls(name); err != nil {
		return nil, 0, 0, err
	}
	if err := def.Validate(s); err != nil {
		return nil, 0, 0, err
	}
	sys, err = def.Build(s)
	if err != nil {
		return nil, 0, 0, err
	}
	tEnd, samples = s.controls(def)
	if s.TEnd == 0 {
		if sug, ok := sys.(TEndSuggester); ok {
			if v := sug.SuggestTEnd(); v > 0 {
				tEnd = v
			}
		}
	}
	return sys, tEnd, samples, nil
}

// pomDefaultTEnd and pomDefaultSamples are the POM run-control defaults,
// shared by the registry entry and the legacy Build entry point.
func pomDefaultTEnd(s *Spec) float64 { return 150 * (s.TComp + s.TComm) }

const pomDefaultSamples = 601

func init() {
	RegisterFamily("pom", FamilyDef{
		Validate:       validatePOM,
		Build:          buildPOMSystem,
		DefaultTEnd:    pomDefaultTEnd,
		DefaultSamples: pomDefaultSamples,
	})
	RegisterFamily("kuramoto", FamilyDef{
		Validate:       validateKuramoto,
		Build:          buildKuramoto,
		DefaultTEnd:    func(*Spec) float64 { return 40 },
		DefaultSamples: 201,
	})
	RegisterFamily("continuum", FamilyDef{
		Validate:       validateContinuum,
		Build:          buildContinuum,
		DefaultTEnd:    func(*Spec) float64 { return 40 },
		DefaultSamples: 201,
	})
}

// validatePOM checks the POM-family (top-level) fields.
func validatePOM(s *Spec) error {
	if s.N < 2 {
		return fieldErrf("n", "scenario: need n >= 2, got %d", s.N)
	}
	if s.TComp+s.TComm <= 0 {
		return fieldErrf("tcomp", "scenario: need tcomp + tcomm > 0")
	}
	if err := s.Potential.validate("potential"); err != nil {
		return err
	}
	if len(s.Offsets) == 0 {
		return fieldErrf("offsets", "scenario: empty stencil")
	}
	switch s.Init {
	case "", "sync", "desync", "random":
	default:
		return fieldErrf("init", "scenario: unknown init %q", s.Init)
	}
	if err := validateJitter(s.Jitter, "jitter"); err != nil {
		return err
	}
	return validateDelays(s.Delays, s.N, "delays")
}

// validateJitter checks a jitter block (shared by the POM-like families).
func validateJitter(j *JitterSpec, path string) error {
	if j == nil {
		return nil
	}
	switch j.Dist {
	case "gaussian", "uniform", "exponential":
		return nil
	default:
		return fieldErrf(path+".dist", "scenario: unknown jitter dist %q", j.Dist)
	}
}

// validateDelays checks a delay list against the rank count (shared by
// the POM-like families).
func validateDelays(delays []DelaySpec, n int, path string) error {
	for i, d := range delays {
		if d.Rank < 0 || d.Rank >= n {
			return fieldErrf(fmt.Sprintf("%s[%d].rank", path, i), "scenario: delay %d rank %d out of range", i, d.Rank)
		}
		if d.Duration <= 0 {
			return fieldErrf(fmt.Sprintf("%s[%d].duration", path, i), "scenario: delay %d needs positive duration", i)
		}
	}
	return nil
}

// validateKuramoto checks the Kuramoto sub-spec.
func validateKuramoto(s *Spec) error {
	k := s.Kuramoto
	if k == nil {
		return fieldErrf("kuramoto", "scenario: family %q needs a kuramoto section", "kuramoto")
	}
	if k.N < 2 {
		return fieldErrf("kuramoto.n", "scenario: kuramoto needs n >= 2, got %d", k.N)
	}
	if k.K < 0 || math.IsNaN(k.K) || math.IsInf(k.K, 0) {
		return fieldErrf("kuramoto.k", "scenario: bad kuramoto coupling %v", k.K)
	}
	if k.FreqStd < 0 || math.IsNaN(k.FreqStd) || math.IsInf(k.FreqStd, 0) {
		return fieldErrf("kuramoto.freq_std", "scenario: bad kuramoto freq_std %v", k.FreqStd)
	}
	return nil
}

// validateContinuum checks the continuum sub-spec.
func validateContinuum(s *Spec) error {
	c := s.Continuum
	if c == nil {
		return fieldErrf("continuum", "scenario: family %q needs a continuum section", "continuum")
	}
	if err := (continuum.Grid{M: c.M, A: c.A, Periodic: c.Periodic}).Validate(); err != nil {
		return fieldErr("continuum.m", err)
	}
	if c.K < 0 || math.IsNaN(c.K) || math.IsInf(c.K, 0) {
		return fieldErrf("continuum.k", "scenario: bad continuum coupling %v", c.K)
	}
	if err := c.Potential.validate("continuum.potential"); err != nil {
		return err
	}
	switch c.Init {
	case "", "flat", "pulse":
	default:
		return fieldErrf("continuum.init", "scenario: unknown continuum init %q", c.Init)
	}
	if c.Init == "pulse" {
		if c.PulseAmp == 0 || math.IsNaN(c.PulseAmp) || math.IsInf(c.PulseAmp, 0) {
			return fieldErrf("continuum.pulse_amp", "scenario: continuum pulse init needs finite pulse_amp != 0, got %v", c.PulseAmp)
		}
		if math.IsNaN(c.PulseCenter) || math.IsInf(c.PulseCenter, 0) {
			return fieldErrf("continuum.pulse_center", "scenario: bad pulse_center %v", c.PulseCenter)
		}
		if c.PulseWidth < 0 || math.IsNaN(c.PulseWidth) || math.IsInf(c.PulseWidth, 0) {
			return fieldErrf("continuum.pulse_width", "scenario: pulse_width must be finite and nonnegative, got %v", c.PulseWidth)
		}
	}
	return nil
}

// Build converts a POM-family spec into a validated core.Config plus run
// controls — the original entry point, kept for callers that need the
// materialized Result paths (phase strips, SVGs, wave metrics). Non-POM
// families must go through BuildSystem.
func (s *Spec) Build() (cfg core.Config, tEnd float64, samples int, err error) {
	name, def, err := s.family()
	if err != nil {
		return core.Config{}, 0, 0, err
	}
	if name != "pom" {
		return core.Config{}, 0, 0, fmt.Errorf("scenario: Build is POM-only; family %q builds via BuildSystem", name)
	}
	// Same once-per-layer sequence as BuildSystem (Validate would resolve
	// the family a second time).
	if err = s.validateControls(name); err != nil {
		return core.Config{}, 0, 0, err
	}
	if err = def.Validate(s); err != nil {
		return core.Config{}, 0, 0, err
	}
	cfg, err = s.buildPOMConfig()
	if err != nil {
		return core.Config{}, 0, 0, err
	}
	tEnd, samples = s.controls(def)
	return cfg, tEnd, samples, nil
}

// pomParams carries the family-independent POM knobs shared by the
// chain ("pom") and torus2d families, so both assemble their core.Config
// through one code path.
type pomParams struct {
	tComp, tComm        float64
	potential           PotentialSpec
	rendezvous, grouped bool
	couplingOverride    float64
	gain                float64
	delays              []DelaySpec
	jitter              *JitterSpec
	commLag             float64
	init                string
	perturbAmp          float64
	perturbSeed         uint64
}

// config assembles the core.Config on the given topology (validation has
// already passed).
func (p pomParams) config(tp *topology.Topology) core.Config {
	cfg := core.Config{
		N:                tp.N,
		TComp:            p.tComp,
		TComm:            p.tComm,
		Potential:        p.potential.build(),
		Topology:         tp,
		CouplingOverride: p.couplingOverride,
		Gain:             p.gain,
		PerturbAmp:       p.perturbAmp,
		PerturbSeed:      p.perturbSeed,
	}
	if p.rendezvous {
		cfg.Protocol = topology.Rendezvous
	}
	if p.grouped {
		cfg.WaitMode = topology.GroupedWaitall
	}
	switch p.init {
	case "desync":
		cfg.Init = core.Desynchronized
	case "random":
		cfg.Init = core.RandomPhases
	}
	period := p.tComp + p.tComm
	var local noise.Sum
	for _, d := range p.delays {
		extra := d.Extra
		if extra == 0 {
			extra = 100 * period
		}
		local = append(local, noise.Delay{
			Rank: d.Rank, Start: d.Start, Duration: d.Duration, Extra: extra,
		})
	}
	if p.jitter != nil {
		j := noise.Jitter{Amp: p.jitter.Amp, Refresh: p.jitter.Refresh, Seed: p.jitter.Seed}
		if j.Refresh == 0 {
			j.Refresh = period
		}
		switch p.jitter.Dist {
		case "uniform":
			j.Dist = noise.UniformSym
		case "exponential":
			j.Dist = noise.Exponential
		default:
			j.Dist = noise.Gaussian
		}
		local = append(local, j)
	}
	if len(local) > 0 {
		cfg.LocalNoise = local
	}
	if p.commLag > 0 {
		cfg.InteractionNoise = noise.ConstantLag{Lag: p.commLag}
	}
	return cfg
}

// model builds the configured core.Model on the given topology.
func (p pomParams) model(tp *topology.Topology) (*core.Model, error) {
	return core.New(p.config(tp))
}

// pomParams lifts the chain-POM (top-level) fields into the shared
// parameter set.
func (s *Spec) pomParams() pomParams {
	return pomParams{
		tComp: s.TComp, tComm: s.TComm,
		potential:  s.Potential,
		rendezvous: s.Rendezvous, grouped: s.GroupedWaitall,
		couplingOverride: s.CouplingOverride, gain: s.Gain,
		delays: s.Delays, jitter: s.Jitter, commLag: s.CommLag,
		init: s.Init, perturbAmp: s.PerturbAmp, perturbSeed: s.PerturbSeed,
	}
}

// buildPOMConfig assembles the core.Config of a POM spec (validation has
// already passed).
func (s *Spec) buildPOMConfig() (core.Config, error) {
	tp, err := topology.Stencil(s.N, s.Offsets, s.Periodic)
	if err != nil {
		return core.Config{}, err
	}
	return s.pomParams().config(tp), nil
}

// buildPOMSystem builds the POM family into its sim.System (a
// *core.Model). BuildSystem has already validated the spec.
func buildPOMSystem(s *Spec) (sim.System, error) {
	cfg, err := s.buildPOMConfig()
	if err != nil {
		return nil, err
	}
	return core.New(cfg)
}

// buildKuramoto builds the Kuramoto family into its sim.System.
func buildKuramoto(s *Spec) (sim.System, error) {
	k := s.Kuramoto
	return kuramoto.New(kuramoto.Config{
		N: k.N, K: k.K,
		FreqMean: k.FreqMean, FreqStd: k.FreqStd,
		Seed: k.Seed, SpreadInitial: k.SpreadInitial,
	})
}

// buildContinuum builds the continuum family into its sim.System.
func buildContinuum(s *Spec) (sim.System, error) {
	c := s.Continuum
	f := &continuum.Field{
		Grid:      continuum.Grid{M: c.M, A: c.A, Periodic: c.Periodic},
		Potential: c.Potential.build(),
		K:         c.K,
		Linear:    c.Linear,
	}
	theta0 := make([]float64, c.M)
	if c.Init == "pulse" {
		center := c.PulseCenter
		if center == 0 {
			center = f.Grid.Length() / 2
		}
		width := c.PulseWidth
		if width == 0 {
			width = 3 * c.A
		}
		for i := range theta0 {
			d := (f.Grid.X(i) - center) / width
			theta0[i] = -c.PulseAmp * math.Exp(-d*d)
		}
	}
	return f.System(theta0)
}

// Load reads a Spec from JSON.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a Spec from a JSON file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only close
	return Load(f)
}

// Save writes the Spec as indented JSON.
func (s *Spec) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Fig2Panel returns the spec of one Fig. 2 panel, ready to save or run.
func Fig2Panel(offsets []int, scalable bool, sigma float64) *Spec {
	s := &Spec{
		Name:    "fig2",
		N:       40,
		TComp:   0.8,
		TComm:   0.2,
		Offsets: offsets,
		Delays:  []DelaySpec{{Rank: 5, Start: 50, Duration: 2.5}},
		TEnd:    400,
		Samples: 4001,
	}
	if scalable {
		s.Potential = PotentialSpec{Kind: "tanh"}
	} else {
		s.Potential = PotentialSpec{Kind: "desync", Sigma: sigma}
		s.Init = "random"
		s.PerturbAmp = 0.02
		s.PerturbSeed = 1
	}
	return s
}

// KuramotoScenario returns a ready-to-run Kuramoto-family spec — the
// baseline comparator as a serializable scenario.
func KuramotoScenario(n int, k float64, seed uint64) *Spec {
	return &Spec{
		Name:   "kuramoto",
		Family: "kuramoto",
		Kuramoto: &KuramotoSpec{
			N: n, K: k, FreqMean: 0, FreqStd: 1, Seed: seed, SpreadInitial: true,
		},
	}
}

// ContinuumScenario returns a ready-to-run continuum-family spec: a lag
// pulse relaxing (tanh) or sharpening into the wavefront (desync).
func ContinuumScenario(m int, k float64, pot PotentialSpec) *Spec {
	return &Spec{
		Name:   "continuum",
		Family: "continuum",
		Continuum: &ContinuumSpec{
			M: m, A: 1, K: k, Potential: pot,
			Init: "pulse", PulseAmp: 2,
		},
	}
}
