// Package scenario provides a JSON-serializable description of a complete
// POM experiment — the counterpart of the parameter panel in the paper's
// MATLAB GUI. A Spec can be stored next to results, loaded by cmd/pomsim,
// and built into a validated core.Config.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// PotentialSpec selects and parameterizes the interaction potential.
type PotentialSpec struct {
	// Kind is "tanh", "desync", or "kuramoto".
	Kind string `json:"kind"`
	// Sigma is the desync interaction horizon (required for "desync").
	Sigma float64 `json:"sigma,omitempty"`
}

// DelaySpec is a one-off delay injection.
type DelaySpec struct {
	Rank     int     `json:"rank"`
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	// Extra is the additional period during the window; 0 selects 100
	// periods (an effective freeze).
	Extra float64 `json:"extra,omitempty"`
}

// JitterSpec is frozen background period noise.
type JitterSpec struct {
	// Dist is "gaussian", "uniform", or "exponential".
	Dist string `json:"dist"`
	// Amp is the distribution scale.
	Amp float64 `json:"amp"`
	// Refresh is the cell length; 0 selects one period.
	Refresh float64 `json:"refresh,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// Spec is a complete, serializable POM scenario.
type Spec struct {
	// Name labels the scenario in outputs.
	Name string `json:"name"`
	// N is the oscillator count.
	N int `json:"n"`
	// TComp and TComm are the phase durations.
	TComp float64 `json:"tcomp"`
	TComm float64 `json:"tcomm"`
	// Potential selects V.
	Potential PotentialSpec `json:"potential"`
	// Offsets is the communication stencil; Periodic wraps it.
	Offsets  []int `json:"offsets"`
	Periodic bool  `json:"periodic,omitempty"`
	// Rendezvous selects β = 2; GroupedWaitall selects κ = max|d|.
	Rendezvous     bool `json:"rendezvous,omitempty"`
	GroupedWaitall bool `json:"grouped_waitall,omitempty"`
	// CouplingOverride replaces v_p when positive; Gain scales Eq. (2)'s
	// 1/N normalization (0 = default N).
	CouplingOverride float64 `json:"coupling_override,omitempty"`
	Gain             float64 `json:"gain,omitempty"`
	// Delays lists one-off injections; Jitter adds background noise;
	// CommLag adds a constant interaction delay τ.
	Delays  []DelaySpec `json:"delays,omitempty"`
	Jitter  *JitterSpec `json:"jitter,omitempty"`
	CommLag float64     `json:"comm_lag,omitempty"`
	// Init is "sync" (default), "desync", or "random"; PerturbAmp and
	// PerturbSeed parameterize "random".
	Init        string  `json:"init,omitempty"`
	PerturbAmp  float64 `json:"perturb_amp,omitempty"`
	PerturbSeed uint64  `json:"perturb_seed,omitempty"`
	// TEnd and Samples control the integration (defaults 150 / 601).
	TEnd    float64 `json:"t_end,omitempty"`
	Samples int     `json:"samples,omitempty"`
}

// Validate checks the spec without building it.
func (s *Spec) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("scenario: need n >= 2, got %d", s.N)
	}
	if s.TComp+s.TComm <= 0 {
		return fmt.Errorf("scenario: need tcomp + tcomm > 0")
	}
	switch s.Potential.Kind {
	case "tanh", "kuramoto":
	case "desync":
		if s.Potential.Sigma <= 0 {
			return fmt.Errorf("scenario: desync potential needs sigma > 0")
		}
	default:
		return fmt.Errorf("scenario: unknown potential %q", s.Potential.Kind)
	}
	if len(s.Offsets) == 0 {
		return fmt.Errorf("scenario: empty stencil")
	}
	switch s.Init {
	case "", "sync", "desync", "random":
	default:
		return fmt.Errorf("scenario: unknown init %q", s.Init)
	}
	if s.Jitter != nil {
		switch s.Jitter.Dist {
		case "gaussian", "uniform", "exponential":
		default:
			return fmt.Errorf("scenario: unknown jitter dist %q", s.Jitter.Dist)
		}
	}
	for i, d := range s.Delays {
		if d.Rank < 0 || d.Rank >= s.N {
			return fmt.Errorf("scenario: delay %d rank %d out of range", i, d.Rank)
		}
		if d.Duration <= 0 {
			return fmt.Errorf("scenario: delay %d needs positive duration", i)
		}
	}
	return nil
}

// Build converts the spec into a validated core.Config plus run controls.
func (s *Spec) Build() (cfg core.Config, tEnd float64, samples int, err error) {
	if err = s.Validate(); err != nil {
		return core.Config{}, 0, 0, err
	}
	tp, err := topology.Stencil(s.N, s.Offsets, s.Periodic)
	if err != nil {
		return core.Config{}, 0, 0, err
	}
	cfg = core.Config{
		N:                s.N,
		TComp:            s.TComp,
		TComm:            s.TComm,
		Topology:         tp,
		CouplingOverride: s.CouplingOverride,
		Gain:             s.Gain,
		PerturbAmp:       s.PerturbAmp,
		PerturbSeed:      s.PerturbSeed,
	}
	switch s.Potential.Kind {
	case "tanh":
		cfg.Potential = potential.Tanh{}
	case "desync":
		cfg.Potential = potential.NewDesync(s.Potential.Sigma)
	case "kuramoto":
		cfg.Potential = potential.KuramotoSine{}
	}
	if s.Rendezvous {
		cfg.Protocol = topology.Rendezvous
	}
	if s.GroupedWaitall {
		cfg.WaitMode = topology.GroupedWaitall
	}
	switch s.Init {
	case "desync":
		cfg.Init = core.Desynchronized
	case "random":
		cfg.Init = core.RandomPhases
	}
	period := s.TComp + s.TComm
	var local noise.Sum
	for _, d := range s.Delays {
		extra := d.Extra
		if extra == 0 {
			extra = 100 * period
		}
		local = append(local, noise.Delay{
			Rank: d.Rank, Start: d.Start, Duration: d.Duration, Extra: extra,
		})
	}
	if s.Jitter != nil {
		j := noise.Jitter{Amp: s.Jitter.Amp, Refresh: s.Jitter.Refresh, Seed: s.Jitter.Seed}
		if j.Refresh == 0 {
			j.Refresh = period
		}
		switch s.Jitter.Dist {
		case "uniform":
			j.Dist = noise.UniformSym
		case "exponential":
			j.Dist = noise.Exponential
		default:
			j.Dist = noise.Gaussian
		}
		local = append(local, j)
	}
	if len(local) > 0 {
		cfg.LocalNoise = local
	}
	if s.CommLag > 0 {
		cfg.InteractionNoise = noise.ConstantLag{Lag: s.CommLag}
	}
	tEnd = s.TEnd
	if tEnd == 0 {
		tEnd = 150 * period
	}
	samples = s.Samples
	if samples == 0 {
		samples = 601
	}
	return cfg, tEnd, samples, nil
}

// Load reads a Spec from JSON.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a Spec from a JSON file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the Spec as indented JSON.
func (s *Spec) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Fig2Panel returns the spec of one Fig. 2 panel, ready to save or run.
func Fig2Panel(offsets []int, scalable bool, sigma float64) *Spec {
	s := &Spec{
		Name:    "fig2",
		N:       40,
		TComp:   0.8,
		TComm:   0.2,
		Offsets: offsets,
		Delays:  []DelaySpec{{Rank: 5, Start: 50, Duration: 2.5}},
		TEnd:    400,
		Samples: 4001,
	}
	if scalable {
		s.Potential = PotentialSpec{Kind: "tanh"}
	} else {
		s.Potential = PotentialSpec{Kind: "desync", Sigma: sigma}
		s.Init = "random"
		s.PerturbAmp = 0.02
		s.PerturbSeed = 1
	}
	return s
}
