package scenario

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/kernels"
	"repro/internal/linstab"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file registers the non-chain model families added on top of the
// original three: the 2-D torus POM ("torus2d"), linear-stability
// parameter scans ("linstab"), and the discrete-event cluster simulator
// ("cluster"). Each follows the same recipe — a sub-spec struct on Spec,
// a Validate hook, and a Build hook returning a sim.System — which is
// the whole cost of joining the streaming / sweep / archive stack (see
// SCENARIOS.md, "Writing a new family").

// Torus2DSpec carries the torus2d-family parameters: the chain POM's
// physics on an nx×ny periodic torus with a von Neumann coupling
// neighborhood of the given radius — the domain-decomposition workload
// of examples/halo2d as a first-class scenario.
type Torus2DSpec struct {
	// NX and NY are the torus dimensions (N = nx·ny ranks).
	NX int `json:"nx"`
	NY int `json:"ny"`
	// Radius is the coupling radius (partners within Manhattan distance
	// ≤ radius); 0 selects 1, the classic 4-point halo stencil.
	Radius int `json:"radius,omitempty"`
	// TComp and TComm are the phase durations, as in the chain POM.
	TComp float64 `json:"tcomp"`
	TComm float64 `json:"tcomm"`
	// Potential selects V.
	Potential PotentialSpec `json:"potential"`
	// Rendezvous selects β = 2; GroupedWaitall selects κ = 1 (for the
	// torus the stencil has no signed offsets, so κ falls back to the
	// mean degree under separate waits).
	Rendezvous     bool `json:"rendezvous,omitempty"`
	GroupedWaitall bool `json:"grouped_waitall,omitempty"`
	// CouplingOverride replaces v_p when positive; Gain scales the 1/N
	// normalization (0 = default N).
	CouplingOverride float64 `json:"coupling_override,omitempty"`
	Gain             float64 `json:"gain,omitempty"`
	// Delays lists one-off injections (Rank indexes row-major, rank =
	// y·nx + x); Jitter adds background period noise; CommLag adds a
	// constant interaction delay τ.
	Delays  []DelaySpec `json:"delays,omitempty"`
	Jitter  *JitterSpec `json:"jitter,omitempty"`
	CommLag float64     `json:"comm_lag,omitempty"`
	// Init is "sync" (default), "desync", or "random"; PerturbAmp and
	// PerturbSeed parameterize "random".
	Init        string  `json:"init,omitempty"`
	PerturbAmp  float64 `json:"perturb_amp,omitempty"`
	PerturbSeed uint64  `json:"perturb_seed,omitempty"`
}

// CouplingRadius returns the effective coupling radius (0 selects 1) —
// the value the build uses and archives record.
func (t *Torus2DSpec) CouplingRadius() int {
	if t.Radius == 0 {
		return 1
	}
	return t.Radius
}

// LinstabSpec carries the linstab-family parameters: a linear-stability
// scan (package linstab) packaged as a replayed sim.System, so
// eigenvalue studies stream, sweep, and archive like every dynamical
// family. The scanned parameter u runs from From to To, mapped linearly
// onto run time [0, t_end]; each sample row is the eigen-threshold
// summary [λ_max, #unstable, #zero-modes] (or the full ascending
// spectrum with FullSpectrum).
type LinstabSpec struct {
	// N is the oscillator count of the analyzed chain.
	N int `json:"n"`
	// Offsets is the communication stencil (must be symmetric — the
	// spectral analysis requires a symmetric topology); Periodic wraps it.
	Offsets  []int `json:"offsets"`
	Periodic bool  `json:"periodic,omitempty"`
	// Potential selects V (its derivative builds the Jacobian).
	Potential PotentialSpec `json:"potential"`
	// K is the effective per-partner coupling; 0 selects 1.
	K float64 `json:"k,omitempty"`
	// Scan selects the swept parameter: "gap" (default) sweeps the
	// uniform wavefront gap of the analyzed state; "coupling" sweeps K
	// around a fixed state.
	Scan string `json:"scan,omitempty"`
	// From and To bound the scan (From < To, both finite).
	From float64 `json:"from"`
	To   float64 `json:"to"`
	// Points is the number of eigensolve knots; 0 selects 33. Between
	// knots the streamed rows interpolate linearly.
	Points int `json:"points,omitempty"`
	// Gap is the fixed wavefront gap of "coupling" scans; 0 selects the
	// potential's stable zero (lockstep for tanh/kuramoto).
	Gap float64 `json:"gap,omitempty"`
	// FullSpectrum streams all N eigenvalues (ascending) per row instead
	// of the 3-entry threshold summary.
	FullSpectrum bool `json:"full_spectrum,omitempty"`
}

// ScanPoints returns the effective knot count (0 selects 33).
func (l *LinstabSpec) ScanPoints() int {
	if l.Points == 0 {
		return 33
	}
	return l.Points
}

// Coupling returns the effective per-partner coupling (0 selects 1).
func (l *LinstabSpec) Coupling() float64 {
	if l.K == 0 {
		return 1
	}
	return l.K
}

// ClusterDelaySpec is a one-off extra-work injection for the cluster
// family (iteration-indexed, unlike the ODE families' time-indexed
// DelaySpec).
type ClusterDelaySpec struct {
	// Rank is the disturbed rank and Iter the zero-based iteration
	// receiving the extra work.
	Rank int `json:"rank"`
	Iter int `json:"iter"`
	// Extra is the additional nominal compute time (s).
	Extra float64 `json:"extra"`
}

// ClusterSpec carries the cluster-family parameters: a bulk-synchronous
// MPI program on the discrete-event cluster simulator, replayed as a
// phase field (cluster.TraceSystem) through the unified runtime. The
// event simulation runs once at build time; the streamed rows are
// θ_i(t) = 2π × rank i's iteration progress, so spread/gap metrics read
// in units of 2π·iterations. When t_end is 0 the run adopts the
// simulated makespan.
type ClusterSpec struct {
	// N is the rank count and Iters the iteration count per rank.
	N     int `json:"n"`
	Iters int `json:"iters"`
	// Machine selects the hardware preset: "meggie" (default) or
	// "supermuc-ng". Sockets overrides the socket count (0 = fewest
	// sockets that fit N ranks).
	Machine string `json:"machine,omitempty"`
	Sockets int    `json:"sockets,omitempty"`
	// Kernel selects the per-iteration workload: "pisolver" (default),
	// "stream", or "schoenauer". ComputeSeconds/ComputeBytes define a
	// custom kernel instead when ComputeSeconds > 0.
	Kernel         string  `json:"kernel,omitempty"`
	ComputeSeconds float64 `json:"compute_seconds,omitempty"`
	ComputeBytes   float64 `json:"compute_bytes,omitempty"`
	// Offsets is the communication stencil (default [-1, 1]); Periodic
	// wraps it into a ring.
	Offsets  []int `json:"offsets,omitempty"`
	Periodic bool  `json:"periodic,omitempty"`
	// MsgBytes is the per-message size (0 selects 1024 — eager-protocol
	// halo messages).
	MsgBytes float64 `json:"msg_bytes,omitempty"`
	// SeparateWaits issues one MPI_Wait per request instead of one
	// grouped MPI_Waitall (the κ = Σ|d| vs max|d| contrast).
	SeparateWaits bool `json:"separate_waits,omitempty"`
	// Delays lists one-off extra-work injections.
	Delays []ClusterDelaySpec `json:"delays,omitempty"`
}

// MessageBytes returns the effective per-message size (0 selects 1024).
func (c *ClusterSpec) MessageBytes() float64 {
	if c.MsgBytes == 0 {
		return 1024
	}
	return c.MsgBytes
}

// stencilOffsets returns the effective communication stencil (empty
// selects [-1, 1]).
func (c *ClusterSpec) stencilOffsets() []int {
	if len(c.Offsets) == 0 {
		return []int{-1, 1}
	}
	return c.Offsets
}

func init() {
	RegisterFamily("torus2d", FamilyDef{
		Validate:       validateTorus2D,
		Build:          buildTorus2D,
		DefaultTEnd:    torus2dDefaultTEnd,
		DefaultSamples: pomDefaultSamples,
	})
	RegisterFamily("linstab", FamilyDef{
		Validate:       validateLinstab,
		Build:          buildLinstab,
		DefaultTEnd:    func(s *Spec) float64 { return linstabTEnd(s) },
		DefaultSamples: 201,
	})
	RegisterFamily("cluster", FamilyDef{
		Validate: validateCluster,
		Build:    buildCluster,
		// The real default is the simulated makespan, adopted through the
		// TEndSuggester hook once the trace exists; this estimate only
		// feeds Spec.controls when the system declines to suggest.
		DefaultTEnd:    clusterEstimatedTEnd,
		DefaultSamples: 601,
	})
}

// torus2dDefaultTEnd mirrors the chain POM default: 150 natural periods.
func torus2dDefaultTEnd(s *Spec) float64 {
	if s.Torus2D == nil {
		return 0
	}
	return 150 * (s.Torus2D.TComp + s.Torus2D.TComm)
}

// linstabDefaultTEnd is the linstab run length: scans are replayed over
// one unit of dimensionless time unless the spec says otherwise.
const linstabDefaultTEnd = 1.0

// linstabTEnd resolves the run length a linstab spec maps its scan onto.
// It is the single resolution used by both the registered DefaultTEnd
// hook and the build-time knot spacing: the two must agree, or the
// streamed rows would correspond to the wrong scan parameter.
func linstabTEnd(s *Spec) float64 {
	if s.TEnd != 0 {
		return s.TEnd
	}
	return linstabDefaultTEnd
}

// validateTorus2D checks the torus2d sub-spec.
func validateTorus2D(s *Spec) error {
	t := s.Torus2D
	if t == nil {
		return fieldErrf("torus2d", "scenario: family %q needs a torus2d section", "torus2d")
	}
	if t.NX < 2 || t.NY < 2 {
		return fieldErrf("torus2d.nx", "scenario: torus2d needs nx, ny >= 2, got %dx%d", t.NX, t.NY)
	}
	if t.Radius < 0 || t.Radius >= t.NX+t.NY {
		return fieldErrf("torus2d.radius", "scenario: torus2d radius %d out of range for %dx%d", t.Radius, t.NX, t.NY)
	}
	if !(t.TComp+t.TComm > 0) || math.IsInf(t.TComp+t.TComm, 0) ||
		t.TComp < 0 || t.TComm < 0 {
		return fieldErrf("torus2d.tcomp", "scenario: torus2d needs tcomp + tcomm > 0 with nonnegative finite parts")
	}
	if err := t.Potential.validate("torus2d.potential"); err != nil {
		return err
	}
	switch t.Init {
	case "", "sync", "desync", "random":
	default:
		return fieldErrf("torus2d.init", "scenario: unknown init %q", t.Init)
	}
	if err := validateJitter(t.Jitter, "torus2d.jitter"); err != nil {
		return err
	}
	if err := validateDelays(t.Delays, t.NX*t.NY, "torus2d.delays"); err != nil {
		return err
	}
	if t.CommLag < 0 || math.IsNaN(t.CommLag) || math.IsInf(t.CommLag, 0) {
		return fieldErrf("torus2d.comm_lag", "scenario: bad comm_lag %v", t.CommLag)
	}
	return nil
}

// buildTorus2D builds the torus POM into its sim.System (a *core.Model
// on the torus topology).
func buildTorus2D(s *Spec) (sim.System, error) {
	t := s.Torus2D
	tp, err := topology.Torus2DRadius(t.NX, t.NY, t.CouplingRadius())
	if err != nil {
		return nil, err
	}
	p := pomParams{
		tComp: t.TComp, tComm: t.TComm,
		potential:  t.Potential,
		rendezvous: t.Rendezvous, grouped: t.GroupedWaitall,
		couplingOverride: t.CouplingOverride, gain: t.Gain,
		delays: t.Delays, jitter: t.Jitter, commLag: t.CommLag,
		init: t.Init, perturbAmp: t.PerturbAmp, perturbSeed: t.PerturbSeed,
	}
	m, err := p.model(tp)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// validateLinstab checks the linstab sub-spec.
func validateLinstab(s *Spec) error {
	l := s.Linstab
	if l == nil {
		return fieldErrf("linstab", "scenario: family %q needs a linstab section", "linstab")
	}
	if l.N < 2 {
		return fieldErrf("linstab.n", "scenario: linstab needs n >= 2, got %d", l.N)
	}
	if len(l.Offsets) == 0 {
		return fieldErrf("linstab.offsets", "scenario: linstab needs a stencil")
	}
	// The spectral analysis needs a symmetric topology; catch asymmetric
	// stencils here so Validate is a true no-build pre-flight rather than
	// letting the first eigensolve fail mid-sweep. Building the stencil
	// is the exact semantics (wrapping can symmetrize an asymmetric
	// offset list on a ring) and cheap at validation scale.
	tp, err := topology.Stencil(l.N, l.Offsets, l.Periodic)
	if err != nil {
		return fieldErr("linstab.offsets", err)
	}
	if !tp.IsSymmetric() {
		return fieldErrf("linstab.offsets", "scenario: linstab stencil %v is not symmetric (spectral analysis needs a symmetric topology)", l.Offsets)
	}
	if err := l.Potential.validate("linstab.potential"); err != nil {
		return err
	}
	if l.K < 0 || math.IsNaN(l.K) || math.IsInf(l.K, 0) {
		return fieldErrf("linstab.k", "scenario: bad linstab coupling %v", l.K)
	}
	switch l.Scan {
	case "", "gap", "coupling":
	default:
		return fieldErrf("linstab.scan", "scenario: unknown linstab scan %q", l.Scan)
	}
	if math.IsNaN(l.From) || math.IsInf(l.From, 0) ||
		math.IsNaN(l.To) || math.IsInf(l.To, 0) || !(l.To > l.From) {
		return fieldErrf("linstab.from", "scenario: linstab scan range [%v, %v] must be finite and increasing", l.From, l.To)
	}
	if l.Points != 0 && l.Points < 2 {
		return fieldErrf("linstab.points", "scenario: linstab needs points >= 2, got %d", l.Points)
	}
	if math.IsNaN(l.Gap) || math.IsInf(l.Gap, 0) {
		return fieldErrf("linstab.gap", "scenario: bad linstab gap %v", l.Gap)
	}
	return nil
}

// buildLinstab builds the scan into its sim.System (a *linstab.Scan).
// Every eigensolve runs here, once per knot; the returned system only
// replays the results.
func buildLinstab(s *Spec) (sim.System, error) {
	l := s.Linstab
	tp, err := topology.Stencil(l.N, l.Offsets, l.Periodic)
	if err != nil {
		return nil, err
	}
	pot := l.Potential.build()
	k := l.Coupling()
	row := func(cl *linstab.Classification) []float64 {
		if l.FullSpectrum {
			return cl.Eigenvalues
		}
		return linstab.SummaryRow(cl)
	}
	var eval func(u float64) ([]float64, error)
	switch l.Scan {
	case "coupling":
		gap := l.Gap
		if gap == 0 {
			if a, ok := pot.(potential.Analyzable); ok {
				gap = a.StableZero()
			}
		}
		theta := linstab.WavefrontState(l.N, gap)
		eval = func(u float64) ([]float64, error) {
			cl, err := linstab.Classify(tp, pot, theta, u)
			if err != nil {
				return nil, err
			}
			return row(cl), nil
		}
	default: // "gap"
		eval = func(u float64) ([]float64, error) {
			cl, err := linstab.Classify(tp, pot, linstab.WavefrontState(l.N, u), k)
			if err != nil {
				return nil, err
			}
			return row(cl), nil
		}
	}
	return linstab.NewScan(eval, l.From, l.To, l.ScanPoints(), linstabTEnd(s))
}

// clusterEstimatedTEnd estimates the cluster run length from the spec
// alone: iterations × nominal per-iteration compute time. The built
// TraceSystem overrides it with the exact makespan via TEndSuggester.
func clusterEstimatedTEnd(s *Spec) float64 {
	c := s.Cluster
	if c == nil {
		return 0
	}
	work, err := clusterWorkload(c)
	if err != nil {
		return 0
	}
	return float64(c.Iters) * work.Seconds
}

// clusterWorkload resolves the per-iteration workload of a cluster spec.
func clusterWorkload(c *ClusterSpec) (cluster.Workload, error) {
	if c.ComputeSeconds > 0 {
		return cluster.Workload{Seconds: c.ComputeSeconds, Bytes: c.ComputeBytes}, nil
	}
	name := c.Kernel
	if name == "" {
		name = "pisolver"
	}
	k, err := kernels.ByName(name)
	if err != nil {
		return cluster.Workload{}, err
	}
	return k.Workload(), nil
}

// clusterMachine resolves the machine preset of a cluster spec.
func clusterMachine(c *ClusterSpec) (cluster.MachineConfig, error) {
	var mc func(int) cluster.MachineConfig
	switch c.Machine {
	case "", "meggie":
		mc = cluster.Meggie
	case "supermuc", "supermuc-ng":
		mc = cluster.SuperMUCNG
	default:
		return cluster.MachineConfig{}, fmt.Errorf("scenario: unknown machine %q", c.Machine)
	}
	probe := mc(1)
	sockets := c.Sockets
	if sockets == 0 {
		sockets = (c.N + probe.CoresPerSocket - 1) / probe.CoresPerSocket
	}
	return mc(sockets), nil
}

// validateCluster checks the cluster sub-spec.
func validateCluster(s *Spec) error {
	c := s.Cluster
	if c == nil {
		return fieldErrf("cluster", "scenario: family %q needs a cluster section", "cluster")
	}
	if c.N < 2 {
		return fieldErrf("cluster.n", "scenario: cluster needs n >= 2, got %d", c.N)
	}
	if c.Iters < 1 {
		return fieldErrf("cluster.iters", "scenario: cluster needs iters >= 1, got %d", c.Iters)
	}
	if c.Sockets < 0 {
		return fieldErrf("cluster.sockets", "scenario: negative sockets %d", c.Sockets)
	}
	mc, err := clusterMachine(c)
	if err != nil {
		return fieldErr("cluster.machine", err)
	}
	if c.N > mc.Cores() {
		return fieldErrf("cluster.n", "scenario: cluster needs %d ranks but %s with %d socket(s) has %d cores",
			c.N, mc.Name, mc.Sockets, mc.Cores())
	}
	if c.ComputeSeconds < 0 || math.IsNaN(c.ComputeSeconds) || math.IsInf(c.ComputeSeconds, 0) {
		return fieldErrf("cluster.compute_seconds", "scenario: bad compute_seconds %v", c.ComputeSeconds)
	}
	if c.ComputeBytes < 0 || math.IsNaN(c.ComputeBytes) || math.IsInf(c.ComputeBytes, 0) {
		return fieldErrf("cluster.compute_bytes", "scenario: bad compute_bytes %v", c.ComputeBytes)
	}
	if _, err := clusterWorkload(c); err != nil {
		return fieldErr("cluster.kernel", err)
	}
	// Validate is the no-build pre-flight: check the (effective) stencil
	// here so a bad offset list fails before any sweep work, not from
	// the first BuildSystem mid-sweep.
	if _, err := topology.Stencil(c.N, c.stencilOffsets(), c.Periodic); err != nil {
		return fieldErr("cluster.offsets", err)
	}
	if c.MsgBytes < 0 || math.IsNaN(c.MsgBytes) || math.IsInf(c.MsgBytes, 0) {
		return fieldErrf("cluster.msg_bytes", "scenario: bad msg_bytes %v", c.MsgBytes)
	}
	for i, d := range c.Delays {
		if d.Rank < 0 || d.Rank >= c.N {
			return fieldErrf(fmt.Sprintf("cluster.delays[%d].rank", i), "scenario: cluster delay %d rank %d out of range", i, d.Rank)
		}
		if d.Iter < 0 || d.Iter >= c.Iters {
			return fieldErrf(fmt.Sprintf("cluster.delays[%d].iter", i), "scenario: cluster delay %d iter %d out of range", i, d.Iter)
		}
		if !(d.Extra > 0) || math.IsInf(d.Extra, 0) {
			return fieldErrf(fmt.Sprintf("cluster.delays[%d].extra", i), "scenario: cluster delay %d needs finite extra > 0", i)
		}
	}
	return nil
}

// buildCluster runs the discrete-event simulation and wraps its trace as
// a sim.System. The event simulation is deterministic in the spec, so
// archived records built from the returned system depend only on the
// spec — the bitwise-resume property.
func buildCluster(s *Spec) (sim.System, error) {
	c := s.Cluster
	tp, err := topology.Stencil(c.N, c.stencilOffsets(), c.Periodic)
	if err != nil {
		return nil, err
	}
	work, err := clusterWorkload(c)
	if err != nil {
		return nil, err
	}
	progs, err := cluster.BulkSynchronousWaits(tp, work, c.MessageBytes(), c.Iters, !c.SeparateWaits)
	if err != nil {
		return nil, err
	}
	mc, err := clusterMachine(c)
	if err != nil {
		return nil, err
	}
	opts := cluster.Options{}
	for _, d := range c.Delays {
		opts.Delays = append(opts.Delays, cluster.DelayInjection{
			Rank: d.Rank, Iter: d.Iter, Extra: d.Extra,
		})
	}
	engine, err := cluster.NewSim(mc, progs, opts)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run()
	if err != nil {
		return nil, err
	}
	return res.System()
}

// Torus2DScenario returns a ready-to-run torus2d spec: the halo2d story
// (desync potential on a torus, one delayed rank) as a scenario.
func Torus2DScenario(nx, ny int, sigma float64) *Spec {
	n := nx * ny
	return &Spec{
		Name:   "torus2d",
		Family: "torus2d",
		Torus2D: &Torus2DSpec{
			NX: nx, NY: ny,
			TComp: 0.8, TComm: 0.2,
			Potential:   PotentialSpec{Kind: "desync", Sigma: sigma},
			Init:        "random",
			PerturbAmp:  0.02,
			PerturbSeed: 2,
			Delays:      []DelaySpec{{Rank: n / 2, Start: 20, Duration: 2}},
		},
	}
}

// LinstabScenario returns a ready-to-run linstab spec: the wavefront-gap
// scan from lockstep to past the desync potential's stable zero.
func LinstabScenario(n int, sigma float64) *Spec {
	return &Spec{
		Name:   "linstab",
		Family: "linstab",
		Linstab: &LinstabSpec{
			N:         n,
			Offsets:   []int{-1, 1},
			Potential: PotentialSpec{Kind: "desync", Sigma: sigma},
			From:      0,
			To:        sigma, // past the stable zero 2σ/3
		},
	}
}

// ClusterScenario returns a ready-to-run cluster spec: a delayed
// PISOLVER ring, the paper's idle-wave experiment on the event
// simulator.
func ClusterScenario(n, iters int) *Spec {
	return &Spec{
		Name:   "cluster",
		Family: "cluster",
		Cluster: &ClusterSpec{
			N: n, Iters: iters, Periodic: true,
			Delays: []ClusterDelaySpec{{Rank: n / 2, Iter: iters / 4, Extra: 0.5}},
		},
	}
}
