package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// This file defines the canonical encoding of a Spec and the content
// hash derived from it — the cache key of the pomsimd result cache. Two
// JSON documents that describe the same scenario must hash identically
// no matter how they were written down; two scenarios that build
// different systems must hash differently. The canonicalization is
// purely syntactic:
//
//   - key order and whitespace vanish by decoding into the Spec struct
//     and re-marshaling (struct field order is fixed),
//   - explicitly-written default values ("periodic": false, "t_end": 0)
//     vanish through the omitempty/omitzero tags, exactly like the
//     absent field,
//   - the empty family name is resolved to its meaning, "pom",
//   - Name is dropped: it labels outputs and never reaches the built
//     system, so relabeled copies of one scenario share a cache entry.
//
// Run-control defaults (t_end 0 → family default) are deliberately NOT
// resolved into the canonical form: the cluster family's effective run
// length is only known after building (TEndSuggester), so folding
// estimated defaults in could make two differently-behaving specs hash
// equal. "t_end": 0 and an explicit t_end at the default value are
// distinct canonical specs, which is safe — the cache only ever needs
// equal specs to collide, never near-equal ones.

// canonicalized returns the spec's canonical form: a copy with the
// family name resolved and the output label dropped. The spec must
// already have validated.
func (s *Spec) canonicalized() (*Spec, error) {
	name, _, err := s.family()
	if err != nil {
		return nil, err
	}
	c := *s
	c.Name = ""
	c.Family = name
	return &c, nil
}

// CanonicalSpec validates s and returns its canonical JSON encoding:
// compact, fixed key order, defaults elided, family resolved, name
// dropped. Specs that differ only in formatting, key order, explicit
// defaults, or label produce identical bytes.
func CanonicalSpec(s *Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c, err := s.canonicalized()
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(c)
	if err != nil {
		// Unreachable for a validated spec (every field is a plain JSON
		// type), kept as an error so no caller path can panic.
		return nil, fmt.Errorf("scenario: canonical encoding: %w", err)
	}
	return b, nil
}

// CanonicalHash validates s and returns the hex SHA-256 of its
// canonical encoding — the content address of the scenario, used as
// the pomsimd result-cache key.
func CanonicalHash(s *Spec) (string, error) {
	b, err := CanonicalSpec(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CanonicalHashJSON parses a raw spec JSON document and returns its
// canonical hash. Malformed or invalid documents return an error,
// never a panic — the contract FuzzCanonicalSpec enforces.
func CanonicalHashJSON(data []byte) (string, error) {
	s, err := Load(bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	return CanonicalHash(s)
}
