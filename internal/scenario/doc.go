// Package scenario is the declarative layer of the simulation stack: a
// JSON-serializable Spec selects a model family plus its parameters and
// run controls, and builds into a sim.System through a model-agnostic
// family registry — the counterpart of the parameter panel in the
// paper's MATLAB GUI, generalized to every workload the repository
// simulates.
//
// # Families
//
// Six families are registered out of the box:
//
//   - "pom" (default when "family" is absent — every pre-registry JSON
//     file remains valid): the chain physical oscillator model, Eq. (2);
//   - "kuramoto": the all-to-all Kuramoto baseline, Eq. (1);
//   - "continuum": the §6 continuum limit (reaction–diffusion field);
//   - "torus2d": the POM on a 2-D periodic torus with a configurable
//     coupling radius — the domain-decomposition halo-exchange workload;
//   - "linstab": linear-stability parameter scans (package linstab)
//     replayed as a system, streaming eigen-threshold summaries;
//   - "cluster": the discrete-event MPI cluster simulator (package
//     cluster) replayed as a phase field via cluster.TraceSystem.
//
// A Spec validates (Validate), builds (BuildSystem → system, t_end,
// samples), and round-trips through JSON (Load / LoadFile / Save).
// Unknown-family errors list every registered name. SCENARIOS.md is the
// complete JSON reference: all fields, defaults, validation rules, and
// one runnable config per family under examples/scenarios/.
//
// # Extending
//
// New families plug in through RegisterFamily without touching this
// package's callers: provide a Validate hook, a Build hook returning a
// sim.System, and the run-control defaults. Everything layered on the
// unified runtime — streaming sinks, sweep.RunReduce, sweep.RunArchive
// with bitwise resume, cmd/pomsim — then works over the new family
// unchanged. A built system may implement TEndSuggester when its
// natural run length is only known after building (the cluster family's
// makespan). SCENARIOS.md ("Writing a new family") walks through the
// recipe.
package scenario
