package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// exampleDir is the shipped scenario corpus — one spec per family.
const exampleDir = "../../examples/scenarios"

var exampleFiles = []string{
	"pom.json", "kuramoto.json", "continuum.json",
	"torus2d.json", "linstab.json", "cluster.json",
}

func readExample(t testing.TB, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(exampleDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func hashJSON(t *testing.T, data []byte) string {
	t.Helper()
	h, err := CanonicalHashJSON(data)
	if err != nil {
		t.Fatalf("CanonicalHashJSON(%s): %v", data, err)
	}
	return h
}

// TestCanonicalHashExamples pins that every shipped example hashes, and
// that a sorted-key / reformatted rewrite of each document (decode into
// a map, re-marshal) hashes identically — key order and whitespace are
// not part of the scenario's identity.
func TestCanonicalHashExamples(t *testing.T) {
	seen := map[string]string{}
	for _, name := range exampleFiles {
		data := readExample(t, name)
		h := hashJSON(t, data)
		if prev, dup := seen[h]; dup {
			t.Errorf("%s and %s hash equal (%s) but build different systems", name, prev, h)
		}
		seen[h] = name

		// Key-order + formatting rewrite: maps marshal with sorted keys,
		// so this genuinely permutes the document.
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resorted, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashJSON(t, resorted); got != h {
			t.Errorf("%s: sorted-key rewrite hashes %s, want %s", name, got, h)
		}

		// Whitespace rewrite.
		var buf bytes.Buffer
		if err := json.Indent(&buf, data, "  ", "\t"); err != nil {
			t.Fatal(err)
		}
		if got := hashJSON(t, buf.Bytes()); got != h {
			t.Errorf("%s: indented rewrite hashes %s, want %s", name, got, h)
		}
	}
}

// TestCanonicalHashEquivalences pins the documented identities: the
// empty family resolves to "pom", the output label does not participate,
// and explicitly-written zero values hash like absent fields.
func TestCanonicalHashEquivalences(t *testing.T) {
	base := `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1]}`
	h := hashJSON(t, []byte(base))
	for desc, variant := range map[string]string{
		"explicit family": `{"family":"pom","n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1]}`,
		"relabeled":       `{"name":"anything","n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1]}`,
		"explicit zeros":  `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"periodic":false,"t_end":0,"samples":0,"comm_lag":0}`,
		"reordered":       `{"offsets":[-1,1],"potential":{"kind":"tanh"},"tcomm":0.2,"tcomp":0.8,"n":8}`,
		"number spelling": `{"n":8,"tcomp":8e-1,"tcomm":2.0e-1,"potential":{"kind":"tanh"},"offsets":[-1,1]}`,
	} {
		if got := hashJSON(t, []byte(variant)); got != h {
			t.Errorf("%s: hash %s, want %s", desc, got, h)
		}
	}
}

// TestCanonicalHashDistinguishes pins that changes that alter the built
// system change the hash.
func TestCanonicalHashDistinguishes(t *testing.T) {
	base := `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1]}`
	h := hashJSON(t, []byte(base))
	for desc, variant := range map[string]string{
		"different n":       `{"n":9,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1]}`,
		"different sigma":   `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh","sigma":2},"offsets":[-1,1]}`,
		"different stencil": `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-2,2]}`,
		"periodic":          `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"periodic":true}`,
		"explicit t_end":    `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"t_end":40}`,
	} {
		if got := hashJSON(t, []byte(variant)); got == h {
			t.Errorf("%s: hash unchanged (%s)", desc, h)
		}
	}
}

// TestCanonicalHashErrors pins that malformed and invalid documents
// error instead of hashing (or panicking).
func TestCanonicalHashErrors(t *testing.T) {
	for _, bad := range []string{
		"", "{", "[]", "123", `"x"`, "null",
		`{"zzz":1}`,             // unknown field
		`{"family":"nope"}`,     // unknown family
		`{"n":-1}`,              // invalid pom config
		`{"family":"kuramoto"}`, // missing section
	} {
		if h, err := CanonicalHashJSON([]byte(bad)); err == nil {
			t.Errorf("CanonicalHashJSON(%q) = %s, want error", bad, h)
		}
	}
}

// TestCanonicalSpecFixedPoint pins that the canonical encoding is a
// fixed point: hashing the canonical bytes reproduces the hash.
func TestCanonicalSpecFixedPoint(t *testing.T) {
	for _, name := range exampleFiles {
		data := readExample(t, name)
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := CanonicalSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		h1 := hashJSON(t, data)
		if h2 := hashJSON(t, cb); h2 != h1 {
			t.Errorf("%s: canonical bytes re-hash %s, want %s", name, h2, h1)
		}
	}
}
