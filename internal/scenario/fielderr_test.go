package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestValidationFieldPaths pins that validation failures carry the
// offending field's config path — one invalid document per family, plus
// the shared surfaces (family, run controls, nested jitter/delay
// paths). The HTTP layer surfaces these paths in its 400 bodies, so a
// path regression here is an API regression there.
func TestValidationFieldPaths(t *testing.T) {
	for _, tc := range []struct {
		name, doc, path string
	}{
		{"pom sigma", `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"desync","sigma":-1},"offsets":[-1,1]}`, "potential.sigma"},
		{"pom n", `{"n":1,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1]}`, "n"},
		{"pom delay rank", `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"delays":[{"rank":99,"start":1,"duration":1}]}`, "delays[0].rank"},
		{"pom jitter dist", `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"jitter":{"dist":"weird","amp":0.1}}`, "jitter.dist"},
		{"kuramoto n", `{"family":"kuramoto","kuramoto":{"n":1,"k":1}}`, "kuramoto.n"},
		{"continuum k", `{"family":"continuum","continuum":{"m":32,"a":0.5,"k":-1,"potential":{"kind":"tanh"}}}`, "continuum.k"},
		{"torus2d nx", `{"family":"torus2d","torus2d":{"nx":1,"ny":4,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"radius":1}}`, "torus2d.nx"},
		{"linstab range", `{"family":"linstab","linstab":{"n":8,"offsets":[-1,1],"potential":{"kind":"tanh"},"from":2,"to":1}}`, "linstab.from"},
		{"cluster iters", `{"family":"cluster","cluster":{"n":4,"iters":0}}`, "cluster.iters"},
		{"unknown family", `{"family":"nope"}`, "family"},
		{"bad samples", `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"samples":-1}`, "samples"},
	} {
		_, err := Load(bytes.NewReader([]byte(tc.doc)))
		if err == nil {
			t.Errorf("%s: document validated, want error", tc.name)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %q carries no FieldError", tc.name, err)
			continue
		}
		if fe.Path != tc.path {
			t.Errorf("%s: field path %q, want %q (error: %v)", tc.name, fe.Path, tc.path, err)
		}
		if !strings.Contains(err.Error(), "(field "+tc.path+")") {
			t.Errorf("%s: error text %q does not name the field path", tc.name, err)
		}
	}
}
