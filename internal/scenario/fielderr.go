package scenario

import "fmt"

// FieldError is a validation error tied to the spec field that caused
// it. Path names the offending field on the JSON surface SCENARIOS.md
// documents, rooted at the spec object — "potential.sigma",
// "kuramoto.n", "cluster.delays[2].rank" — so programmatic callers
// (the pomsimd HTTP API maps these to 400 responses with the field
// attached) can point at the exact input instead of parroting an
// opaque message.
type FieldError struct {
	// Path is the dotted JSON path of the offending field.
	Path string
	// Err is the underlying validation error.
	Err error
}

// Error reports the underlying message with the field path appended.
func (e *FieldError) Error() string {
	return e.Err.Error() + " (field " + e.Path + ")"
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *FieldError) Unwrap() error { return e.Err }

// fieldErrf builds a FieldError for path from a fresh formatted error.
func fieldErrf(path, format string, args ...any) error {
	return &FieldError{Path: path, Err: fmt.Errorf(format, args...)}
}

// fieldErr attaches path to an existing error. A nil error passes
// through; an error that already carries a field path is kept as-is
// (the deeper path is the more precise one).
func fieldErr(path string, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*FieldError); ok {
		return err
	}
	return &FieldError{Path: path, Err: err}
}
