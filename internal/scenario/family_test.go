package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// familySpecs returns one representative spec per registered family.
func familySpecs() map[string]*Spec {
	pom := validSpec()
	pom.TEnd = 5
	pom.Samples = 11
	kur := KuramotoScenario(16, 1.5, 7)
	kur.TEnd = 5
	kur.Samples = 11
	cont := ContinuumScenario(24, 2, PotentialSpec{Kind: "tanh"})
	cont.TEnd = 5
	cont.Samples = 11
	return map[string]*Spec{"pom": pom, "kuramoto": kur, "continuum": cont}
}

// TestFamilyRegistry checks the registry surface: all built-in families
// are present and unknown families are rejected with a clear error.
func TestFamilyRegistry(t *testing.T) {
	fams := Families()
	for _, want := range []string{"pom", "kuramoto", "continuum"} {
		found := false
		for _, f := range fams {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q not registered (have %v)", want, fams)
		}
	}
	bad := &Spec{Name: "x", Family: "ising"}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "ising") {
		t.Errorf("unknown family: err = %v", err)
	}
	if _, _, _, err := bad.BuildSystem(); err == nil {
		t.Error("BuildSystem must reject an unknown family")
	}
}

// TestFamilyRoundTrips is the satellite pin: for every family, JSON
// encode → decode → build → run 3 steps works and the decoded spec
// builds the same system (same dimension, same initial state bits).
func TestFamilyRoundTrips(t *testing.T) {
	for name, spec := range familySpecs() {
		var buf bytes.Buffer
		if err := spec.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v\njson: %s", name, err, buf.String())
		}
		sys, tEnd, samples, err := back.BuildSystem()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if tEnd != 5 || samples != 11 {
			t.Errorf("%s: run controls lost: tEnd=%v samples=%d", name, tEnd, samples)
		}
		orig, _, _, err := spec.BuildSystem()
		if err != nil {
			t.Fatalf("%s: build original: %v", name, err)
		}
		if sys.Dim() != orig.Dim() {
			t.Fatalf("%s: dimension changed across round trip: %d vs %d", name, sys.Dim(), orig.Dim())
		}
		y0, y1 := orig.InitialState(), sys.InitialState()
		for i := range y0 {
			if math.Float64bits(y0[i]) != math.Float64bits(y1[i]) {
				t.Fatalf("%s: initial state differs at %d after round trip", name, i)
			}
		}
		// Run 3 sample steps through the unified runtime.
		rows := 0
		if _, err := sim.RunStream(sys, 0.5, 3, sim.SinkFunc(func(_ float64, y []float64) {
			rows++
			for _, v := range y {
				if math.IsNaN(v) {
					t.Fatalf("%s: NaN state", name)
				}
			}
		})); err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if rows != 3 {
			t.Fatalf("%s: streamed %d rows, want 3", name, rows)
		}
	}
}

// TestFamilyDefaults checks the per-family run-control defaults.
func TestFamilyDefaults(t *testing.T) {
	kur := KuramotoScenario(8, 1, 1)
	if _, tEnd, samples, err := kur.BuildSystem(); err != nil || tEnd != 40 || samples != 201 {
		t.Errorf("kuramoto defaults: tEnd=%v samples=%d err=%v", tEnd, samples, err)
	}
	pom := validSpec()
	if _, tEnd, samples, err := pom.BuildSystem(); err != nil || tEnd != 150 || samples != 601 {
		t.Errorf("pom defaults: tEnd=%v samples=%d err=%v", tEnd, samples, err)
	}
}

// TestFamilyValidation covers the per-family sub-spec checks.
func TestFamilyValidation(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
	}{
		{"kuramoto missing section", &Spec{Family: "kuramoto"}},
		{"kuramoto small n", &Spec{Family: "kuramoto", Kuramoto: &KuramotoSpec{N: 1, K: 1}}},
		{"kuramoto NaN k", &Spec{Family: "kuramoto", Kuramoto: &KuramotoSpec{N: 4, K: math.NaN()}}},
		{"kuramoto negative std", &Spec{Family: "kuramoto", Kuramoto: &KuramotoSpec{N: 4, K: 1, FreqStd: -1}}},
		{"continuum missing section", &Spec{Family: "continuum"}},
		{"continuum tiny grid", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 2, A: 1, K: 1, Potential: PotentialSpec{Kind: "tanh"}}}},
		{"continuum bad potential", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 8, A: 1, K: 1, Potential: PotentialSpec{Kind: "magic"}}}},
		{"continuum bad init", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 8, A: 1, K: 1, Potential: PotentialSpec{Kind: "tanh"}, Init: "zigzag"}}},
		{"continuum pulse without amp", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 8, A: 1, K: 1, Potential: PotentialSpec{Kind: "tanh"}, Init: "pulse"}}},
		{"negative t_end", func() *Spec { s := KuramotoScenario(8, 1, 1); s.TEnd = -2; return s }()},
		{"NaN t_end", func() *Spec { s := KuramotoScenario(8, 1, 1); s.TEnd = math.NaN(); return s }()},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

// TestBuildIsPOMOnly pins the compatibility contract: the original Build
// entry point refuses non-POM families instead of silently returning a
// zero core.Config.
func TestBuildIsPOMOnly(t *testing.T) {
	if _, _, _, err := KuramotoScenario(8, 1, 1).Build(); err == nil ||
		!strings.Contains(err.Error(), "BuildSystem") {
		t.Errorf("Build on kuramoto family: err = %v, want a POM-only error", err)
	}
}

// TestValidationRejectsNonFinitePotentialAndPulse is the regression test
// for NaN-poisoned programmatic specs: JSON cannot carry NaN, but Go
// callers can, and before the fix a NaN sigma or pulse parameter passed
// every sign check and produced silent all-NaN runs.
func TestValidationRejectsNonFinitePotentialAndPulse(t *testing.T) {
	bad := []*Spec{
		ContinuumScenario(16, 1, PotentialSpec{Kind: "desync", Sigma: math.NaN()}),
		ContinuumScenario(16, 1, PotentialSpec{Kind: "desync", Sigma: math.Inf(1)}),
		func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Continuum.PulseAmp = math.NaN()
			return s
		}(),
		func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Continuum.PulseWidth = math.Inf(1)
			return s
		}(),
		func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Continuum.PulseCenter = math.NaN()
			return s
		}(),
		func() *Spec {
			s := validSpec()
			s.Potential = PotentialSpec{Kind: "desync", Sigma: math.NaN()}
			return s
		}(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: want validation error for non-finite parameter", i)
		}
	}
}
