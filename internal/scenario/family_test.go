package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// familySpecs returns one representative spec per registered family.
func familySpecs() map[string]*Spec {
	pom := validSpec()
	kur := KuramotoScenario(16, 1.5, 7)
	cont := ContinuumScenario(24, 2, PotentialSpec{Kind: "tanh"})
	torus := Torus2DScenario(4, 3, 1.2)
	lin := LinstabScenario(10, 1.5)
	lin.Linstab.Points = 5
	clu := ClusterScenario(6, 8)
	specs := map[string]*Spec{
		"pom": pom, "kuramoto": kur, "continuum": cont,
		"torus2d": torus, "linstab": lin, "cluster": clu,
	}
	for _, s := range specs {
		s.TEnd = 5
		s.Samples = 11
	}
	return specs
}

// TestFamilyRegistry checks the registry surface: all built-in families
// are present and unknown families are rejected with a clear error.
func TestFamilyRegistry(t *testing.T) {
	fams := Families()
	for _, want := range []string{"pom", "kuramoto", "continuum", "torus2d", "linstab", "cluster"} {
		found := false
		for _, f := range fams {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q not registered (have %v)", want, fams)
		}
	}
	bad := &Spec{Name: "x", Family: "ising"}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "ising") {
		t.Errorf("unknown family: err = %v", err)
	}
	if _, _, _, err := bad.BuildSystem(); err == nil {
		t.Error("BuildSystem must reject an unknown family")
	}
}

// TestUnknownFamilyErrorListsRegistered is the regression pin for the
// discoverability fix: an unknown-family error from BuildSystem (and
// Validate) names every registered family, so a typo in a config file
// tells the user what would have worked.
func TestUnknownFamilyErrorListsRegistered(t *testing.T) {
	_, _, _, err := (&Spec{Name: "x", Family: "ising"}).BuildSystem()
	if err == nil {
		t.Fatal("want error for unknown family")
	}
	for _, name := range Families() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered family %q", err, name)
		}
	}
}

// TestFamilyRoundTrips is the satellite pin: for every family, JSON
// encode → decode → build → run 3 steps works and the decoded spec
// builds the same system (same dimension, same initial state bits).
func TestFamilyRoundTrips(t *testing.T) {
	for name, spec := range familySpecs() {
		var buf bytes.Buffer
		if err := spec.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v\njson: %s", name, err, buf.String())
		}
		sys, tEnd, samples, err := back.BuildSystem()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if tEnd != 5 || samples != 11 {
			t.Errorf("%s: run controls lost: tEnd=%v samples=%d", name, tEnd, samples)
		}
		orig, _, _, err := spec.BuildSystem()
		if err != nil {
			t.Fatalf("%s: build original: %v", name, err)
		}
		if sys.Dim() != orig.Dim() {
			t.Fatalf("%s: dimension changed across round trip: %d vs %d", name, sys.Dim(), orig.Dim())
		}
		y0, y1 := orig.InitialState(), sys.InitialState()
		for i := range y0 {
			if math.Float64bits(y0[i]) != math.Float64bits(y1[i]) {
				t.Fatalf("%s: initial state differs at %d after round trip", name, i)
			}
		}
		// Run 3 sample steps through the unified runtime.
		rows := 0
		if _, err := sim.RunStream(sys, 0.5, 3, sim.SinkFunc(func(_ float64, y []float64) {
			rows++
			for _, v := range y {
				if math.IsNaN(v) {
					t.Fatalf("%s: NaN state", name)
				}
			}
		})); err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if rows != 3 {
			t.Fatalf("%s: streamed %d rows, want 3", name, rows)
		}
	}
}

// TestFamilyDefaults checks the per-family run-control defaults.
func TestFamilyDefaults(t *testing.T) {
	kur := KuramotoScenario(8, 1, 1)
	if _, tEnd, samples, err := kur.BuildSystem(); err != nil || tEnd != 40 || samples != 201 {
		t.Errorf("kuramoto defaults: tEnd=%v samples=%d err=%v", tEnd, samples, err)
	}
	pom := validSpec()
	if _, tEnd, samples, err := pom.BuildSystem(); err != nil || tEnd != 150 || samples != 601 {
		t.Errorf("pom defaults: tEnd=%v samples=%d err=%v", tEnd, samples, err)
	}
	torus := Torus2DScenario(4, 3, 1.2)
	if _, tEnd, samples, err := torus.BuildSystem(); err != nil || tEnd != 150 || samples != 601 {
		t.Errorf("torus2d defaults: tEnd=%v samples=%d err=%v", tEnd, samples, err)
	}
	lin := LinstabScenario(8, 1.5)
	lin.Linstab.Points = 5
	if _, tEnd, samples, err := lin.BuildSystem(); err != nil || tEnd != 1 || samples != 201 {
		t.Errorf("linstab defaults: tEnd=%v samples=%d err=%v", tEnd, samples, err)
	}
}

// TestClusterAdoptsMakespan checks the TEndSuggester hook: a cluster
// spec without t_end runs exactly to the simulated makespan, while an
// explicit t_end wins over the suggestion.
func TestClusterAdoptsMakespan(t *testing.T) {
	clu := ClusterScenario(6, 8)
	sys, tEnd, samples, err := clu.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	sug, ok := sys.(TEndSuggester)
	if !ok {
		t.Fatal("cluster system must suggest its t_end")
	}
	if tEnd != sug.SuggestTEnd() || tEnd <= 0 {
		t.Errorf("tEnd = %v, suggested makespan %v", tEnd, sug.SuggestTEnd())
	}
	if samples != 601 {
		t.Errorf("samples = %d, want 601", samples)
	}
	// The PISOLVER estimate (iters × 50 ms) is a lower bound on the
	// makespan the suggestion replaces.
	if tEnd < float64(clu.Cluster.Iters)*50e-3 {
		t.Errorf("makespan %v below the compute-only bound", tEnd)
	}

	clu.TEnd = 2.5
	if _, tEnd, _, err := clu.BuildSystem(); err != nil || tEnd != 2.5 {
		t.Errorf("explicit t_end: got %v err=%v, want 2.5", tEnd, err)
	}
}

// TestFamilyValidation covers the per-family sub-spec checks.
func TestFamilyValidation(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
	}{
		{"kuramoto missing section", &Spec{Family: "kuramoto"}},
		{"kuramoto small n", &Spec{Family: "kuramoto", Kuramoto: &KuramotoSpec{N: 1, K: 1}}},
		{"kuramoto NaN k", &Spec{Family: "kuramoto", Kuramoto: &KuramotoSpec{N: 4, K: math.NaN()}}},
		{"kuramoto negative std", &Spec{Family: "kuramoto", Kuramoto: &KuramotoSpec{N: 4, K: 1, FreqStd: -1}}},
		{"continuum missing section", &Spec{Family: "continuum"}},
		{"continuum tiny grid", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 2, A: 1, K: 1, Potential: PotentialSpec{Kind: "tanh"}}}},
		{"continuum bad potential", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 8, A: 1, K: 1, Potential: PotentialSpec{Kind: "magic"}}}},
		{"continuum bad init", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 8, A: 1, K: 1, Potential: PotentialSpec{Kind: "tanh"}, Init: "zigzag"}}},
		{"continuum pulse without amp", &Spec{Family: "continuum", Continuum: &ContinuumSpec{M: 8, A: 1, K: 1, Potential: PotentialSpec{Kind: "tanh"}, Init: "pulse"}}},
		{"negative t_end", func() *Spec { s := KuramotoScenario(8, 1, 1); s.TEnd = -2; return s }()},
		{"NaN t_end", func() *Spec { s := KuramotoScenario(8, 1, 1); s.TEnd = math.NaN(); return s }()},
		{"torus2d missing section", &Spec{Family: "torus2d"}},
		{"torus2d tiny grid", func() *Spec { s := Torus2DScenario(1, 3, 1.2); return s }()},
		{"torus2d oversized radius", func() *Spec { s := Torus2DScenario(3, 3, 1.2); s.Torus2D.Radius = 9; return s }()},
		{"torus2d zero period", func() *Spec {
			s := Torus2DScenario(3, 3, 1.2)
			s.Torus2D.TComp, s.Torus2D.TComm = 0, 0
			return s
		}()},
		{"torus2d bad potential", func() *Spec { s := Torus2DScenario(3, 3, 1.2); s.Torus2D.Potential.Kind = "magic"; return s }()},
		{"torus2d bad init", func() *Spec { s := Torus2DScenario(3, 3, 1.2); s.Torus2D.Init = "zigzag"; return s }()},
		{"torus2d delay rank", func() *Spec {
			s := Torus2DScenario(3, 3, 1.2)
			s.Torus2D.Delays = []DelaySpec{{Rank: 99, Duration: 1}}
			return s
		}()},
		{"torus2d bad jitter", func() *Spec {
			s := Torus2DScenario(3, 3, 1.2)
			s.Torus2D.Jitter = &JitterSpec{Dist: "cauchy", Amp: 1}
			return s
		}()},
		{"linstab missing section", &Spec{Family: "linstab"}},
		{"linstab small n", func() *Spec { s := LinstabScenario(1, 1.5); return s }()},
		{"linstab no stencil", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.Offsets = nil; return s }()},
		{"linstab reversed range", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.From, s.Linstab.To = 2, 1; return s }()},
		{"linstab NaN range", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.To = math.NaN(); return s }()},
		{"linstab one point", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.Points = 1; return s }()},
		{"linstab bad scan", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.Scan = "spiral"; return s }()},
		{"linstab NaN coupling", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.K = math.NaN(); return s }()},
		{"cluster missing section", &Spec{Family: "cluster"}},
		{"cluster small n", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.N = 1; return s }()},
		{"cluster zero iters", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.Iters = 0; s.Cluster.Delays = nil; return s }()},
		{"cluster bad machine", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.Machine = "cray"; return s }()},
		{"cluster bad kernel", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.Kernel = "linpack"; return s }()},
		{"cluster delay rank", func() *Spec {
			s := ClusterScenario(6, 8)
			s.Cluster.Delays = []ClusterDelaySpec{{Rank: 99, Iter: 0, Extra: 1}}
			return s
		}()},
		{"cluster delay iter", func() *Spec {
			s := ClusterScenario(6, 8)
			s.Cluster.Delays = []ClusterDelaySpec{{Rank: 1, Iter: 99, Extra: 1}}
			return s
		}()},
		{"cluster zero-extra delay", func() *Spec {
			s := ClusterScenario(6, 8)
			s.Cluster.Delays = []ClusterDelaySpec{{Rank: 1, Iter: 1}}
			return s
		}()},
		{"cluster negative msg bytes", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.MsgBytes = -1; return s }()},
		{"linstab asymmetric stencil", func() *Spec { s := LinstabScenario(8, 1.5); s.Linstab.Offsets = []int{1}; return s }()},
		{"cluster zero offset", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.Offsets = []int{0}; return s }()},
		{"cluster duplicate offset", func() *Spec { s := ClusterScenario(6, 8); s.Cluster.Offsets = []int{1, 1}; return s }()},
		{"cluster ranks exceed machine", func() *Spec {
			s := ClusterScenario(30, 8)
			s.Cluster.Sockets = 1 // 30 ranks on one 10-core Meggie socket
			s.Cluster.Delays = nil
			return s
		}()},
		{"mismatched extra section", func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Kuramoto = &KuramotoSpec{N: 8, K: 1}
			return s
		}()},
		{"pom with sub-spec section", func() *Spec {
			s := validSpec()
			s.Cluster = &ClusterSpec{N: 4, Iters: 2}
			return s
		}()},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

// TestBuildIsPOMOnly pins the compatibility contract: the original Build
// entry point refuses non-POM families instead of silently returning a
// zero core.Config.
func TestBuildIsPOMOnly(t *testing.T) {
	if _, _, _, err := KuramotoScenario(8, 1, 1).Build(); err == nil ||
		!strings.Contains(err.Error(), "BuildSystem") {
		t.Errorf("Build on kuramoto family: err = %v, want a POM-only error", err)
	}
}

// TestValidationRejectsNonFinitePotentialAndPulse is the regression test
// for NaN-poisoned programmatic specs: JSON cannot carry NaN, but Go
// callers can, and before the fix a NaN sigma or pulse parameter passed
// every sign check and produced silent all-NaN runs.
func TestValidationRejectsNonFinitePotentialAndPulse(t *testing.T) {
	bad := []*Spec{
		ContinuumScenario(16, 1, PotentialSpec{Kind: "desync", Sigma: math.NaN()}),
		ContinuumScenario(16, 1, PotentialSpec{Kind: "desync", Sigma: math.Inf(1)}),
		func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Continuum.PulseAmp = math.NaN()
			return s
		}(),
		func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Continuum.PulseWidth = math.Inf(1)
			return s
		}(),
		func() *Spec {
			s := ContinuumScenario(16, 1, PotentialSpec{Kind: "tanh"})
			s.Continuum.PulseCenter = math.NaN()
			return s
		}(),
		func() *Spec {
			s := validSpec()
			s.Potential = PotentialSpec{Kind: "desync", Sigma: math.NaN()}
			return s
		}(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: want validation error for non-finite parameter", i)
		}
	}
}
