package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fuzzSeeds are the corpus starting points: every shipped example (one
// per family) plus documents that probe the error paths.
func fuzzSeeds(t testing.TB) [][]byte {
	seeds := make([][]byte, 0, len(exampleFiles)+8)
	for _, name := range exampleFiles {
		seeds = append(seeds, readExample(t, name))
	}
	for _, s := range []string{
		"", "{", "[]", "{}", `{"family":"nope"}`, `{"n":1e999}`,
		`{"potential":{"kind":"tanh","sigma":-1}}`,
		`{"family":"cluster","cluster":{"n":4,"iters":3}}`,
	} {
		seeds = append(seeds, []byte(s))
	}
	return seeds
}

// checkCanonical is the fuzz property, shared with the seeds-only test
// below so plain `go test` exercises every seed without the fuzzer.
//
//   - CanonicalHashJSON never panics, whatever the bytes;
//   - when a document hashes, a purely-whitespace rewrite of it hashes
//     identically;
//   - the canonical encoding is a fixed point: re-hashing the canonical
//     bytes reproduces the hash (so the canonical form is itself a valid
//     spec document, and hashing is stable under canonicalization).
func checkCanonical(t *testing.T, data []byte) {
	h1, err := CanonicalHashJSON(data)
	if err != nil {
		return // malformed or invalid: an error is the correct outcome
	}

	var buf bytes.Buffer
	if err := json.Indent(&buf, data, " ", "\t"); err == nil {
		h2, err := CanonicalHashJSON(buf.Bytes())
		if err != nil {
			t.Fatalf("indented rewrite stopped hashing: %v\ndoc: %s", err, data)
		}
		if h2 != h1 {
			t.Fatalf("whitespace changed the hash: %s vs %s\ndoc: %s", h2, h1, data)
		}
	}

	s, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("document hashed but Load failed: %v\ndoc: %s", err, data)
	}
	cb, err := CanonicalSpec(s)
	if err != nil {
		t.Fatalf("document hashed but CanonicalSpec failed: %v\ndoc: %s", err, data)
	}
	h3, err := CanonicalHashJSON(cb)
	if err != nil {
		t.Fatalf("canonical bytes do not re-load: %v\ncanonical: %s", err, cb)
	}
	if h3 != h1 {
		t.Fatalf("canonicalization is not a fixed point: %s vs %s\ndoc: %s\ncanonical: %s", h3, h1, data, cb)
	}
}

// FuzzCanonicalSpec fuzzes the canonical-hash entry point with the
// example corpus as seeds. The invariants live in checkCanonical.
func FuzzCanonicalSpec(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(checkCanonical)
}

// TestFuzzCanonicalSeeds runs the fuzz property over every seed under
// plain `go test`, so the invariants hold in CI without -fuzz time.
func TestFuzzCanonicalSeeds(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		checkCanonical(t, seed)
	}
}
