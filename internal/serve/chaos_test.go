package serve_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/scenario"
	"repro/internal/serve"
)

// settleGoroutines waits for the goroutine count to drop back to at
// most base+slack, failing the test if it never does — the leak probe
// the chaos scenarios run after tearing everything down.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 { // the runtime itself jitters by a few
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines never settled: %d > base %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDuplicateHammer slams the service with concurrent
// duplicate-heavy submissions — a handful of distinct specs, many
// clients each, some disconnecting mid-stream — and pins the core
// guarantees: each distinct spec executed exactly once, every completed
// stream of one spec is byte-identical, and nothing leaks.
func TestChaosDuplicateHammer(t *testing.T) {
	base := runtime.NumGoroutine()

	srv, err := serve.New(serve.Config{
		Workers:  4,
		Clock:    serve.NewFakeClock(time.Unix(1_700_000_000, 0)),
		CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPTest(srv)

	specs := [][]byte{
		readExample(t, "kuramoto.json"),
		readExample(t, "linstab.json"),
		readExample(t, "cluster.json"),
	}
	hashes := make([]string, len(specs))
	for i, doc := range specs {
		s, err := scenario.Load(bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		if hashes[i], err = scenario.CanonicalHash(s); err != nil {
			t.Fatal(err)
		}
	}

	const clientsPerSpec = 8
	type outcome struct {
		spec int
		body []byte
		err  error
	}
	results := make(chan outcome, len(specs)*clientsPerSpec)
	var wg sync.WaitGroup
	for si := range specs {
		for c := 0; c < clientsPerSpec; c++ {
			wg.Add(1)
			go func(si, c int) {
				defer wg.Done()
				ctx := context.Background()
				disconnect := c%3 == 2 // every third client bails mid-stream
				cancel := context.CancelFunc(func() {})
				if disconnect {
					ctx, cancel = context.WithCancel(ctx)
				}
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					hs.URL+"/v1/run", bytes.NewReader(specs[si]))
				if err != nil {
					results <- outcome{si, nil, err}
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					results <- outcome{si, nil, err}
					return
				}
				defer func() { _ = resp.Body.Close() }()
				if disconnect {
					// Read a sliver, then vanish. The run must complete
					// into the cache regardless.
					_, _ = io.ReadFull(resp.Body, make([]byte, 64))
					cancel()
					results <- outcome{si, nil, nil}
					return
				}
				body, err := io.ReadAll(resp.Body)
				results <- outcome{si, body, err}
			}(si, c)
		}
	}
	wg.Wait()
	close(results)

	bodies := make(map[int][]byte)
	for out := range results {
		if out.err != nil {
			t.Fatalf("spec %d client: %v", out.spec, out.err)
		}
		if out.body == nil {
			continue // deliberate disconnect
		}
		if prev, ok := bodies[out.spec]; ok {
			if !bytes.Equal(prev, out.body) {
				t.Errorf("spec %d: two completed streams differ (%d vs %d bytes)",
					out.spec, len(prev), len(out.body))
			}
		} else {
			bodies[out.spec] = out.body
		}
	}
	if len(bodies) != len(specs) {
		t.Fatalf("completed bodies for %d specs, want %d", len(bodies), len(specs))
	}

	// The disconnected clients' runs completed into the cache: every
	// spec executed exactly once, even under 8-way duplicate fire.
	for i, h := range hashes {
		if n := srv.Executions(h); n != 1 {
			t.Errorf("spec %d executed %d times, want 1", i, n)
		}
	}

	// A fresh submit of each spec is now a pure cache hit, byte-equal to
	// the live streams.
	for si, doc := range specs {
		resp, err := http.Post(hs.URL+"/v1/run", "application/json", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Pomsimd-Cache"); got != "hit" {
			t.Errorf("spec %d post-hammer cache header %q, want hit", si, got)
		}
		if !bytes.Equal(body, bodies[si]) {
			t.Errorf("spec %d cache-hit body differs from live stream", si)
		}
	}

	hs.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// newHTTPTest wraps srv in an httptest server without registering
// cleanup — tests that probe goroutine leaks tear it down by hand.
func newHTTPTest(srv *serve.Server) *httptest.Server {
	return httptest.NewServer(srv.Handler())
}

// TestChaosCancel pins explicit cancellation: a running job canceled
// mid-stream terminates as canceled, leaves no cache entry and no
// shard litter (no poisoning), and a re-submit of the same spec
// executes fresh.
func TestChaosCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	srv, err := serve.New(serve.Config{
		Workers:  1,
		Clock:    serve.NewFakeClock(time.Unix(1_700_000_000, 0)),
		CacheDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	spec := slowSpec(t, 0)
	hash, err := scenario.CanonicalHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	j, kind, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if kind != serve.SubmitNew {
		t.Fatalf("submit kind %q, want miss", kind)
	}
	waitState(t, j, serve.StateRunning)
	// Let it stream some rows first so the cancel lands mid-record.
	deadline := time.Now().Add(30 * time.Second)
	for j.Rows() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never streamed a row")
		}
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	waitState(t, j, serve.StateCanceled)

	// No cache poisoning: no published entry, no committed shard, no
	// tmp litter.
	if rec, ok, _ := srv.CachedRecord(hash); ok || rec != nil {
		t.Error("canceled run published a cache entry")
	}
	for _, pat := range []string{archive.ShardPattern(dir), archive.TmpPattern(dir)} {
		names, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 0 {
			t.Errorf("canceled run left %v behind", names)
		}
	}

	// The same spec submitted again is a fresh execution, not a hit and
	// not a coalesce onto the dead job.
	j2, kind2, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if kind2 != serve.SubmitNew {
		t.Errorf("re-submit kind %q, want miss", kind2)
	}
	waitState(t, j2, serve.StateRunning)
	if n := srv.Executions(hash); n != 2 {
		t.Errorf("executions = %d, want 2 (canceled + fresh)", n)
	}
	j2.Cancel()
	waitState(t, j2, serve.StateCanceled)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// TestChaosCancelQueued pins that canceling a job that never reached a
// worker terminates it cleanly too.
func TestChaosCancelQueued(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Workers:  1,
		Clock:    serve.NewFakeClock(time.Unix(1_700_000_000, 0)),
		CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	jA, _, err := srv.Submit(slowSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer jA.Cancel()
	waitState(t, jA, serve.StateRunning)
	jB, _, err := srv.Submit(slowSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	jB.Cancel() // still queued behind jA
	jA.Cancel() // free the worker so it reaches jB
	waitState(t, jB, serve.StateCanceled)
}

// TestAdmissionDeterministic pins token-bucket behavior under the
// injected clock: with burst 3 and rate 1/s, exactly 3 of 10 distinct
// submissions are admitted at a frozen instant, a 2.5-second advance
// admits exactly 2 more, and the refusals carry a Retry-After estimate.
func TestAdmissionDeterministic(t *testing.T) {
	clock := serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	srv, err := serve.New(serve.Config{
		Workers:   1,
		Admission: serve.NewTokenBucket(3, 1),
		Clock:     clock,
		CacheDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	admitted, rejected := 0, 0
	var jobs []*serve.Job
	for i := 0; i < 10; i++ {
		j, _, err := srv.Submit(slowSpec(t, i))
		var rej *serve.RejectedError
		switch {
		case err == nil:
			admitted++
			jobs = append(jobs, j)
		case errors.As(err, &rej):
			rejected++
			if rej.RetryAfter <= 0 {
				t.Errorf("submission %d rejected with no Retry-After estimate", i)
			}
		default:
			t.Fatal(err)
		}
	}
	if admitted != 3 || rejected != 7 {
		t.Fatalf("frozen clock admitted %d rejected %d, want 3/7", admitted, rejected)
	}

	// 2.5 seconds → 2.5 tokens → exactly 2 more admissions, and the
	// half-token remainder prices the next Retry-After at 500ms.
	clock.Advance(2500 * time.Millisecond)
	admitted2 := 0
	var lastRej *serve.RejectedError
	for i := 10; i < 20; i++ {
		j, _, err := srv.Submit(slowSpec(t, i))
		var rej *serve.RejectedError
		switch {
		case err == nil:
			admitted2++
			jobs = append(jobs, j)
		case errors.As(err, &rej):
			lastRej = rej
		default:
			t.Fatal(err)
		}
	}
	if admitted2 != 2 {
		t.Fatalf("after advance admitted %d, want 2", admitted2)
	}
	if lastRej == nil || lastRej.RetryAfter != 500*time.Millisecond {
		t.Fatalf("retry-after %v, want 500ms", lastRej)
	}

	// Cache hits bypass admission even with the bucket empty: finish one
	// admitted job... too slow here; instead pin that rejections counted.
	snapBefore := srv.Snapshot()
	if snapBefore.Rejected != 15 {
		t.Errorf("snapshot rejected = %d, want 15", snapBefore.Rejected)
	}
	for _, j := range jobs {
		j.Cancel()
	}
}

// TestAdmissionHTTP pins the HTTP shape of a refusal: 429 with a
// Retry-After header, while a duplicate of an in-flight spec still
// coalesces past the empty bucket.
func TestAdmissionHTTP(t *testing.T) {
	clock := serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	srv, err := serve.New(serve.Config{
		Workers:   1,
		Admission: serve.NewTokenBucket(1, 1),
		Clock:     clock,
		CacheDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPTest(srv)
	defer func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// Burn the only token on a slow job.
	j, _, err := srv.Submit(slowSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Cancel()

	// A distinct spec bounces with 429 + Retry-After.
	doc := `{"n":40,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"gain":7,"t_end":400000,"samples":2001}`
	resp, err := http.Post(hs.URL+"/v1/run", "application/json", bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// The in-flight spec's duplicate coalesces — no token needed. Use
	// the job API so the request returns without waiting for the run.
	slowDoc, err := scenario.CanonicalSpec(slowSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(slowDoc))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	if err := resp2.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("coalesced submit status %d, want 202", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Pomsimd-Cache"); got != "coalesced" {
		t.Errorf("cache header %q, want coalesced", got)
	}
}
