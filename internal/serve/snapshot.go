package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is one immutable observation of the service's state. Readers
// receive a pointer to a frozen value — nothing in it mutates after
// publication, so handlers serialize it without holding any lock.
type Snapshot struct {
	// At is the injected-clock time the snapshot was built.
	At time.Time
	// QueueDepth is the number of jobs waiting for a worker.
	QueueDepth int
	// InFlight is the number of jobs currently executing.
	InFlight int
	// Jobs counts every submission accepted (including cache hits).
	Jobs int
	// Executions counts runs that actually occupied a worker.
	Executions int
	// CacheHits counts submissions answered from the result cache.
	CacheHits int
	// Coalesced counts submissions attached to an identical in-flight run.
	Coalesced int
	// Rejected counts admission refusals (HTTP 429).
	Rejected int
	// CacheEntries is the number of published cache entries.
	CacheEntries int
	// CacheHitRatio is CacheHits/Jobs (0 when no jobs yet).
	CacheHitRatio float64
	// PerFamily counts accepted submissions by scenario family.
	PerFamily map[string]int
}

// snapshotProvider serves Snapshot values with a TTL: a read inside the
// TTL returns the published pointer with a single atomic load, and the
// first read past it rebuilds under a mutex (so concurrent stale reads
// collapse into one rebuild). Staleness is judged against the injected
// Clock — there is no ticker goroutine and no wall-clock read, which
// keeps the package pomvet-clean and the rebuild cadence test-
// controllable.
type snapshotProvider struct {
	ttl   time.Duration
	build func(at time.Time) *Snapshot

	cur     atomic.Pointer[Snapshot]
	rebuild sync.Mutex
}

func newSnapshotProvider(ttl time.Duration, build func(at time.Time) *Snapshot) *snapshotProvider {
	return &snapshotProvider{ttl: ttl, build: build}
}

// get returns the current snapshot, rebuilding if the published one is
// older than the TTL at time now.
func (p *snapshotProvider) get(now time.Time) *Snapshot {
	if s := p.cur.Load(); s != nil && now.Sub(s.At) < p.ttl {
		return s
	}
	p.rebuild.Lock()
	defer p.rebuild.Unlock()
	// Re-check: another goroutine may have rebuilt while we waited.
	if s := p.cur.Load(); s != nil && now.Sub(s.At) < p.ttl {
		return s
	}
	s := p.build(now)
	p.cur.Store(s)
	return s
}
