package serve

import (
	"fmt"
	"sync"
	"time"
)

// Admission decides whether a new job may enter the queue — the
// control-plane gate between "request arrived" and "work admitted"
// (the ClusterArrival → AdmissionDecision shape). Implementations must
// be safe for concurrent use and must derive every decision from the
// passed-in time only, never from a clock of their own, so behavior is
// deterministic under an injected Clock.
//
// Cache hits and coalesced requests bypass admission: they cost a disk
// read or a buffer follow, not a worker, so throttling them would only
// punish the cheapest requests.
type Admission interface {
	// Admit reports whether one job may be admitted at time now. When
	// it refuses, retryAfter > 0 advises when capacity will exist
	// (surfaced as the HTTP Retry-After header); retryAfter == 0 means
	// the policy cannot say.
	Admit(now time.Time) (ok bool, retryAfter time.Duration)
}

// AlwaysAdmit admits every request — the policy for trusted or
// load-test deployments, and the neutral default.
type AlwaysAdmit struct{}

// Admit implements Admission.
func (AlwaysAdmit) Admit(time.Time) (bool, time.Duration) { return true, 0 }

// TokenBucket is the classic rate limiter: a bucket of burst tokens
// refilled at rate tokens/second; each admitted job consumes one. All
// state advances off the caller-supplied now, so a fixed clock yields
// exactly burst admissions no matter how requests interleave, and
// advancing the clock by Δt yields exactly floor(previous fraction +
// Δt·rate) more — the determinism the chaos suite pins.
type TokenBucket struct {
	mu     sync.Mutex
	burst  float64
	rate   float64 // tokens per second
	tokens float64
	last   time.Time
	primed bool
}

// NewTokenBucket returns a full bucket of burst tokens refilling at
// rate tokens/second. It panics on burst < 1 or a negative/non-finite
// rate — construction errors are programmer errors. rate == 0 is a
// pure burst budget that never refills.
func NewTokenBucket(burst int, rate float64) *TokenBucket {
	if burst < 1 || rate < 0 || rate != rate || rate > 1e18 {
		panic(fmt.Sprintf("serve: bad token bucket burst=%d rate=%v", burst, rate))
	}
	return &TokenBucket{burst: float64(burst), rate: rate}
}

// Admit implements Admission.
func (b *TokenBucket) Admit(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		// The bucket starts full at the first observed time; there is
		// no construction-time clock read.
		b.tokens = b.burst
		b.last = now
		b.primed = true
	}
	if d := now.Sub(b.last); d > 0 {
		b.tokens += d.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// RejectedError is the typed admission refusal: the handler layer maps
// it to HTTP 429 with Retry-After when the policy could estimate one.
type RejectedError struct {
	// RetryAfter advises when to retry; 0 means no estimate.
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("serve: admission rejected, retry after %s", e.RetryAfter)
	}
	return "serve: admission rejected"
}
