package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ErrQueueFull is returned by Submit when admission passed but the job
// queue has no room — the handler layer maps it to HTTP 503.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// SubmitKind says how a submission was satisfied.
type SubmitKind string

const (
	// SubmitNew admitted a fresh execution.
	SubmitNew SubmitKind = "miss"
	// SubmitHit answered from the result cache without executing.
	SubmitHit SubmitKind = "hit"
	// SubmitCoalesced attached the caller to an identical spec already
	// queued or running — the two share one execution and one result.
	SubmitCoalesced SubmitKind = "coalesced"
)

// Config configures a Server.
type Config struct {
	// Workers is the size of the worker fleet (default 2).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-running jobs
	// (default 16).
	QueueDepth int
	// Admission gates new executions (nil means AlwaysAdmit).
	Admission Admission
	// Clock supplies time to admission and snapshots (required).
	Clock Clock
	// CacheDir is the result-cache archive directory (required).
	CacheDir string
	// Codec selects the archive record codec (default CodecDefault).
	Codec archive.Codec
	// SnapshotTTL bounds snapshot staleness (default 1s).
	SnapshotTTL time.Duration
}

// Server runs scenario specs on a bounded worker fleet with admission
// control, request coalescing, and an archive-backed result cache. See
// doc.go for the request lifecycle.
type Server struct {
	clock Clock
	admit Admission
	cache *resultCache
	snap  *snapshotProvider

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *Job

	mu       chan struct{} // 1-buffered mutex token
	closed   bool
	seq      int
	jobs     map[string]*Job // by job id
	inflight map[string]*Job // hash → queued-or-running job
	// Counters behind mu (snapshot-visible).
	nJobs, nHits, nCoalesced, nRejected, nRunning int
	perFamily                                     map[string]int
	execCount                                     map[string]int // hash → executions started
}

// New starts a server. Callers must Close it to stop the workers and
// release the cache.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		return nil, errors.New("serve: Config.Clock is required")
	}
	if cfg.CacheDir == "" {
		return nil, errors.New("serve: Config.CacheDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Admission == nil {
		cfg.Admission = AlwaysAdmit{}
	}
	if cfg.SnapshotTTL <= 0 {
		cfg.SnapshotTTL = time.Second
	}
	cache, err := openResultCache(cfg.CacheDir, cfg.Codec)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		clock:     cfg.Clock,
		admit:     cfg.Admission,
		cache:     cache,
		ctx:       ctx,
		cancel:    cancel,
		queue:     make(chan *Job, cfg.QueueDepth),
		mu:        make(chan struct{}, 1),
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
		perFamily: make(map[string]int),
		execCount: make(map[string]int),
	}
	s.snap = newSnapshotProvider(cfg.SnapshotTTL, s.buildSnapshot)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

func (s *Server) lock()   { s.mu <- struct{}{} }
func (s *Server) unlock() { <-s.mu }

// Submit accepts a validated spec and returns the job that answers it:
// a Done-at-birth job for a cache hit, the already-in-flight job for a
// coalesced duplicate, or a freshly queued job. Admission applies only
// to the last case — hits and coalesced attaches cost no worker.
//
// The cache lookup, in-flight check, admission, and enqueue happen
// under one lock, and workers publish results and retire in-flight
// entries under the same lock, so two racing submits of one spec can
// never both start an execution.
func (s *Server) Submit(spec *scenario.Spec) (*Job, SubmitKind, error) {
	hash, err := scenario.CanonicalHash(spec)
	if err != nil {
		return nil, "", err
	}
	family, err := spec.FamilyName()
	if err != nil {
		return nil, "", err
	}
	now := s.clock.Now()

	s.lock()
	defer s.unlock()
	if s.closed {
		return nil, "", ErrClosed
	}
	if _, ok := s.cache.lookup(hash); ok {
		s.seq++
		j := newCachedJob(fmt.Sprintf("j-%06d", s.seq), hash, family, spec, now)
		s.jobs[j.ID] = j
		s.nJobs++
		s.nHits++
		s.perFamily[family]++
		return j, SubmitHit, nil
	}
	if j, ok := s.inflight[hash]; ok {
		s.nJobs++
		s.nCoalesced++
		s.perFamily[family]++
		return j, SubmitCoalesced, nil
	}
	if ok, retry := s.admit.Admit(now); !ok {
		s.nRejected++
		return nil, "", &RejectedError{RetryAfter: retry}
	}
	s.seq++
	j := newJob(s.ctx, fmt.Sprintf("j-%06d", s.seq), hash, family, spec, now)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		return nil, "", ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.inflight[hash] = j
	s.nJobs++
	s.perFamily[family]++
	return j, SubmitNew, nil
}

// Job returns the job with the given id.
func (s *Server) Job(id string) (*Job, bool) {
	s.lock()
	defer s.unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Executions returns how many executions have started for the given
// canonical hash — the chaos suite's no-duplicate-work probe.
func (s *Server) Executions(hash string) int {
	s.lock()
	defer s.unlock()
	return s.execCount[hash]
}

// Snapshot returns the current state snapshot (rebuilt lazily when the
// published one is older than the configured TTL).
func (s *Server) Snapshot() *Snapshot {
	return s.snap.get(s.clock.Now())
}

// buildSnapshot assembles an immutable snapshot; it runs under the
// provider's rebuild lock.
func (s *Server) buildSnapshot(at time.Time) *Snapshot {
	s.lock()
	defer s.unlock()
	pf := make(map[string]int, len(s.perFamily))
	for fam, n := range s.perFamily {
		pf[fam] = n
	}
	execs := 0
	for _, n := range s.execCount {
		execs += n
	}
	snap := &Snapshot{
		At:           at,
		QueueDepth:   len(s.queue),
		InFlight:     s.nRunning,
		Jobs:         s.nJobs,
		Executions:   execs,
		CacheHits:    s.nHits,
		Coalesced:    s.nCoalesced,
		Rejected:     s.nRejected,
		CacheEntries: s.cache.len(),
		PerFamily:    pf,
	}
	if snap.Jobs > 0 {
		snap.CacheHitRatio = float64(snap.CacheHits) / float64(snap.Jobs)
	}
	return snap
}

// CachedRecord reads the cached record for a hash; ok is false when the
// hash has no published entry.
func (s *Server) CachedRecord(hash string) (*archive.Record, bool, error) {
	shard, ok := s.cache.lookup(hash)
	if !ok {
		return nil, false, nil
	}
	rec, err := s.cache.read(shard)
	if err != nil {
		return nil, true, err
	}
	return rec, true, nil
}

// ResultBody returns the complete NDJSON body of a finished job. For
// executed jobs it snapshots the live buffer; for cache-hit jobs it
// renders the archived record through the same row renderer, so the
// two are byte-identical for equal specs.
func (s *Server) ResultBody(j *Job) ([]byte, error) {
	state, jerr := j.State()
	switch state {
	case StateDone:
	case StateFailed:
		return nil, fmt.Errorf("serve: job %s failed: %w", j.ID, jerr)
	case StateCanceled:
		return nil, fmt.Errorf("serve: job %s canceled", j.ID)
	default:
		return nil, fmt.Errorf("serve: job %s not finished (%s)", j.ID, state)
	}
	if j.buf != nil {
		chunk, _, _, _ := j.buf.next(0)
		out := make([]byte, len(chunk))
		copy(out, chunk)
		return out, nil
	}
	rec, ok, err := s.CachedRecord(j.Hash)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("serve: job %s: cache entry vanished", j.ID)
	}
	return RenderRecord(rec), nil
}

// RenderRecord renders an archived record to the NDJSON body its
// original run streamed. The archive round trip is bitwise-exact and
// AppendRow is deterministic, so the output equals the original bytes.
func RenderRecord(rec *archive.Record) []byte {
	var out []byte
	for k := 0; k < rec.NSamples(); k++ {
		out = AppendRow(out, rec.Ts[k], rec.Row(k))
	}
	return out
}

// Close stops accepting work, cancels in-flight jobs, waits for the
// workers to drain, and releases the cache.
func (s *Server) Close() error {
	s.lock()
	if s.closed {
		s.unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.unlock()
	s.cancel() // aborts running jobs at their next sample
	s.wg.Wait()
	return s.cache.close()
}

// worker drains the queue until the queue closes or the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			// Drain without running so queued jobs reach a terminal state
			// even when Close raced new submissions.
			for {
				select {
				case j, ok := <-s.queue:
					if !ok {
						return
					}
					s.finishCanceled(j)
				default:
					return
				}
			}
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.runJob(j)
		}
	}
}

// runAbort is the panic value the streaming sink throws to unwind a
// canceled run out of the solver loop; runJob recovers it.
type runAbort struct{}

// ndjsonSink renders solver rows into the job's broadcast buffer. It
// re-renders into its own scratch and the buffer copies again, so the
// solver's reused row slice is never retained. Sample polls the job
// context: cancellation aborts the run at row granularity via a
// runAbort panic (sim.RunStream has no context of its own).
type ndjsonSink struct {
	job     *Job
	scratch []byte
}

// Begin implements sim.Sink.
func (k *ndjsonSink) Begin(n, nSamples int) {}

// Sample implements sim.Sink. y is rendered immediately, not retained.
func (k *ndjsonSink) Sample(t float64, y []float64) {
	if k.job.ctx.Err() != nil {
		panic(runAbort{})
	}
	k.scratch = AppendRow(k.scratch[:0], t, y)
	k.job.buf.append(k.scratch)
}

// finishCanceled retires a job that was canceled before running.
func (s *Server) finishCanceled(j *Job) {
	j.setState(StateCanceled, nil)
	j.buf.close(context.Canceled)
	s.lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	s.unlock()
}

// runJob executes one queued job: build, stream into the broadcast
// buffer and a fresh cache shard, then publish shard and key (in that
// order) and retire the in-flight entry — all completion bookkeeping
// under the submit lock so a racing duplicate submit lands either on
// the in-flight job or on the cache, never in between.
func (s *Server) runJob(j *Job) {
	if j.ctx.Err() != nil {
		s.finishCanceled(j)
		return
	}
	j.setState(StateRunning, nil)
	s.lock()
	s.nRunning++
	s.execCount[j.Hash]++
	s.unlock()
	defer func() {
		s.lock()
		s.nRunning--
		s.unlock()
	}()

	err := s.execute(j)
	switch {
	case err == nil:
		j.setState(StateDone, nil)
		j.buf.close(nil)
	case errors.Is(err, context.Canceled):
		j.setState(StateCanceled, nil)
		j.buf.close(context.Canceled)
	default:
		j.setState(StateFailed, err)
		j.buf.close(err)
	}
	s.lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	s.unlock()
}

// execute runs the simulation and commits the cache entry. Any
// cancellation (explicit or server shutdown) returns context.Canceled
// with the shard aborted, so a canceled run never poisons the cache.
func (s *Server) execute(j *Job) (err error) {
	sys, tEnd, samples, err := j.Spec.BuildSystem()
	if err != nil {
		return err
	}
	w, rec, err := s.cache.begin()
	if err != nil {
		// The cache is unavailable; still run so the caller gets rows.
		w, rec = nil, nil
	}
	committed := false
	defer func() {
		if w != nil && !committed {
			_ = w.Abort()
		}
	}()

	sink := sim.Sink(&ndjsonSink{job: j})
	if rec != nil {
		sink = sim.Tee(sink, rec)
	}
	aborted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(runAbort); ok {
					aborted = true
					return
				}
				panic(r)
			}
		}()
		_, err = sim.RunStream(sys, tEnd, samples, sink)
	}()
	if aborted {
		return context.Canceled
	}
	if err != nil {
		return err
	}
	if j.ctx.Err() != nil {
		return context.Canceled
	}
	if w == nil {
		return nil
	}
	if err := rec.Finish(nil, nil); err != nil {
		return nil // result is good; cache write failed, deferred Abort cleans up
	}
	if err := w.Close(); err != nil {
		committed = true // Close cleans up its own tmp on failure
		return nil
	}
	committed = true
	s.lock()
	perr := s.cache.publish(j.Hash, w.Shard())
	s.unlock()
	_ = perr // an unpublished orphan shard is harmless; the run still answered
	return nil
}
