// Package serve is the pomsimd simulation service: the long-running
// HTTP/JSON runtime that promotes the batch CLI into a spec-in /
// stream-out server over the unified sim/scenario/archive stack.
//
// A request posts the exact scenario JSON SCENARIOS.md documents (any
// registered family). The server canonicalizes and content-hashes the
// spec (scenario.CanonicalHash), then takes the cheapest path that can
// answer it:
//
//		admission → queue → runner → cache/archive → stream
//
//	  - Cache hit: the hash is already in the archive-backed result cache,
//	    so the response is a disk read (archive shard → NDJSON), byte-
//	    identical to the body a fresh run would have produced. No worker
//	    time is spent and no admission token is consumed.
//	  - Coalesced: an identical spec is already queued or running; the
//	    request attaches to that job's live row stream instead of
//	    executing a second time. One execution per cache key, always.
//	  - Miss: the request passes admission control (token bucket or
//	    always-admit; rejections are typed 429s with Retry-After), enters
//	    the bounded job queue, and a worker integrates it through
//	    sim.RunStream. Every sample row is rendered to NDJSON once and
//	    tee'd to (a) the live broadcast buffer every attached client
//	    follows and (b) an archive.RecordWriter, so the run lands in the
//	    result cache as a side effect of streaming it.
//
// Client disconnects never cancel a running job (the run completes into
// the cache for the next caller); cancellation is explicit via the job
// API. A canceled or failed run aborts its shard (archive.Writer.Abort)
// and publishes nothing, so the cache can never hold a partial result.
//
// Determinism discipline: nothing in this package reads the wall clock.
// Admission control and observability snapshots take the time from an
// injected Clock — the serve boundary (cmd/pomsimd) owns the single
// //pomvet:allow wallclock site — and the run path itself never
// consults a clock at all, so the rows streamed for a spec are bitwise
// the rows sim.Run produces in-process (the e2e pin).
//
// Observability reads (GET /v1/stats) come from a cached immutable
// snapshot (Snapshot / snapshotProvider) rebuilt at most once per TTL,
// so status polling never contends with the run path.
package serve
