package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"

	"repro/internal/scenario"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/run              submit a spec, stream its rows (NDJSON)
//	POST   /v1/jobs             submit a spec, return the job handle
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/result stream a job's rows (NDJSON)
//	GET    /v1/stats            state snapshot
//	GET    /v1/families         registered scenario families
//	GET    /v1/healthz          liveness probe
//
// Streaming responses carry X-Pomsimd-Job and X-Pomsimd-Cache headers
// and X-Pomsimd-Status / X-Pomsimd-Rows trailers. Validation failures
// are 400 with the offending field path; admission refusals are 429
// with Retry-After; a full queue is 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/families", s.handleFamilies)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// apiError is the JSON error body. Field carries the offending config
// path (e.g. "pom.sigma") when the error is a validation failure.
type apiError struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client gone; nothing to do
}

// writeSubmitError maps a Submit (or decode) error to its HTTP shape.
func writeSubmitError(w http.ResponseWriter, err error) {
	var rej *RejectedError
	var fe *scenario.FieldError
	switch {
	case errors.As(err, &rej):
		if rej.RetryAfter > 0 {
			secs := int(math.Ceil(rej.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.As(err, &fe):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Field: fe.Path})
	default:
		// Everything else Submit can surface is a malformed or invalid
		// request document — a client error, never a 500.
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

// decodeSpec reads and validates the request body as a scenario spec.
func decodeSpec(w http.ResponseWriter, r *http.Request) (*scenario.Spec, error) {
	return scenario.Load(http.MaxBytesReader(w, r.Body, 1<<20))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(w, r)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	j, kind, err := s.Submit(spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	s.streamJob(w, r, j, string(kind))
}

// streamJob writes a job's NDJSON rows, following the live buffer for
// executing jobs and rendering the archived record for cache hits. The
// request context going away stops the stream but never the job — a
// disconnected client's run completes into the cache regardless.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *Job, kind string) {
	var cachedBody []byte
	var cachedRows int
	if j.buf == nil {
		rec, ok, err := s.CachedRecord(j.Hash)
		if err != nil || !ok {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: "serve: reading cache entry failed"})
			return
		}
		cachedBody = RenderRecord(rec)
		cachedRows = rec.NSamples()
	}

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Pomsimd-Job", j.ID)
	h.Set("X-Pomsimd-Cache", kind)
	h.Set("Trailer", "X-Pomsimd-Status, X-Pomsimd-Rows")
	w.WriteHeader(http.StatusOK)

	if cachedBody != nil {
		_, _ = w.Write(cachedBody)
		h.Set("X-Pomsimd-Status", string(StateDone))
		h.Set("X-Pomsimd-Rows", strconv.Itoa(cachedRows))
		return
	}

	flusher, _ := w.(http.Flusher)
	_, completed, _ := j.buf.follow(r.Context(), 0, func(chunk []byte) bool {
		if _, werr := w.Write(chunk); werr != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})
	status := "disconnected"
	if completed {
		state, _ := j.State()
		status = string(state)
	}
	h.Set("X-Pomsimd-Status", status)
	h.Set("X-Pomsimd-Rows", strconv.Itoa(j.buf.snapshotRows()))
}

// jobStatus is the job-API JSON shape.
type jobStatus struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	Family string `json:"family"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Rows   int    `json:"rows"`
	Error  string `json:"error,omitempty"`
}

func statusOf(j *Job) jobStatus {
	state, jerr := j.State()
	st := jobStatus{
		ID:     j.ID,
		Hash:   j.Hash,
		Family: j.Family,
		State:  string(state),
		Cached: j.Cached(),
		Rows:   j.Rows(),
	}
	if jerr != nil {
		st.Error = jerr.Error()
	}
	return st
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(w, r)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	j, kind, err := s.Submit(spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("X-Pomsimd-Cache", string(kind))
	writeJSON(w, http.StatusAccepted, statusOf(j))
}

func (s *Server) findJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "serve: unknown job " + id})
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.findJob(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.findJob(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, statusOf(j))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.findJob(w, r)
	if !ok {
		return
	}
	if state, jerr := j.State(); state == StateFailed || state == StateCanceled {
		msg := "serve: job " + j.ID + " " + string(state)
		if jerr != nil {
			msg += ": " + jerr.Error()
		}
		writeJSON(w, http.StatusConflict, apiError{Error: msg})
		return
	}
	s.streamJob(w, r, j, "replay")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"families": scenario.Families()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
