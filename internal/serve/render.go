package serve

import "strconv"

// AppendRow appends the NDJSON encoding of one sample row to dst and
// returns the extended slice:
//
//	{"t":<t>,"y":[<y0>,<y1>,…]}\n
//
// Floats render with strconv's shortest round-trip form ('g', -1), so
// the text parses back to the exact same bits and — critically — equal
// float64 inputs always render to equal bytes. That single renderer is
// what makes the service's byte-identity guarantees hold: a fresh run
// renders rows straight off the solver's reused sample buffer, a cache
// hit renders the bitwise-exact rows decoded from the archive, and the
// two bodies match byte for byte. The e2e suite renders its direct
// sim.Run reference through this same function.
func AppendRow(dst []byte, t float64, y []float64) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendFloat(dst, t, 'g', -1, 64)
	dst = append(dst, `,"y":[`...)
	for i, v := range y {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	dst = append(dst, ']', '}', '\n')
	return dst
}
