package serve

import (
	"sync"
	"time"
)

// Clock abstracts "what time is it" for the pieces of the service that
// legitimately need one: admission control and snapshot staleness. It
// is injected at construction so this package contains no wall-clock
// reads at all (the pomvet wallclock invariant) — cmd/pomsimd passes a
// real clock behind the one sanctioned //pomvet:allow wallclock site,
// and tests pass a FakeClock, which is what makes token-bucket
// behavior deterministically testable. The simulation run path never
// touches the Clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// FakeClock is a manually-advanced Clock for tests: time moves only
// when the test says so, which pins admission decisions exactly.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
