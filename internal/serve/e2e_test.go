package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
)

// exampleDir is the shipped scenario corpus — one spec per family.
const exampleDir = "../../examples/scenarios"

// families maps each registered family to its example file.
var families = map[string]string{
	"pom":       "pom.json",
	"kuramoto":  "kuramoto.json",
	"continuum": "continuum.json",
	"torus2d":   "torus2d.json",
	"linstab":   "linstab.json",
	"cluster":   "cluster.json",
}

func readExample(t testing.TB, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(exampleDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newTestServer builds a serve.Server on a temp cache dir plus an
// httptest front end, and registers cleanup for both.
func newTestServer(t testing.TB, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	}
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, hs
}

// renderSink renders solver rows through the service's own row
// renderer — the direct-run reference body for the bitwise pins.
type renderSink struct{ body []byte }

func (r *renderSink) Begin(n, nSamples int) {}
func (r *renderSink) Sample(t float64, y []float64) {
	r.body = serve.AppendRow(r.body, t, y)
}

// directBody runs the spec through sim.RunStream in-process and renders
// the reference NDJSON body.
func directBody(t *testing.T, doc []byte) ([]byte, int) {
	t.Helper()
	spec, err := scenario.Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sys, tEnd, samples, err := spec.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	sink := &renderSink{}
	if _, err := sim.RunStream(sys, tEnd, samples, sink); err != nil {
		t.Fatal(err)
	}
	return sink.body, samples
}

func postRun(t *testing.T, base string, doc []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestE2EPerFamily pins, for every family's shipped example: the
// streamed HTTP body is byte-identical to a direct in-process
// sim.RunStream of the same spec; a second submit is answered from the
// cache, again byte-identical, without a second execution.
func TestE2EPerFamily(t *testing.T) {
	srv, hs := newTestServer(t, serve.Config{Workers: 2})
	for family, file := range families {
		t.Run(family, func(t *testing.T) {
			doc := readExample(t, file)
			want, samples := directBody(t, doc)

			spec, err := scenario.Load(bytes.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			hash, err := scenario.CanonicalHash(spec)
			if err != nil {
				t.Fatal(err)
			}

			// Fresh run.
			resp := postRun(t, hs.URL, doc)
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Pomsimd-Cache"); got != "miss" {
				t.Errorf("first submit cache header %q, want miss", got)
			}
			if got := resp.Trailer.Get("X-Pomsimd-Status"); got != "done" {
				t.Errorf("trailer status %q, want done", got)
			}
			if got := resp.Trailer.Get("X-Pomsimd-Rows"); got != strconv.Itoa(samples) {
				t.Errorf("trailer rows %q, want %d", got, samples)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("streamed body diverges from direct run: %d vs %d bytes\nfirst streamed line: %.120s\nfirst direct line:   %.120s",
					len(body), len(want), firstLine(body), firstLine(want))
			}

			// Repeat: must be a cache hit, byte-identical, no re-execution.
			resp2 := postRun(t, hs.URL, doc)
			body2, err := io.ReadAll(resp2.Body)
			if err != nil {
				t.Fatal(err)
			}
			if err := resp2.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if got := resp2.Header.Get("X-Pomsimd-Cache"); got != "hit" {
				t.Errorf("second submit cache header %q, want hit", got)
			}
			if !bytes.Equal(body2, want) {
				t.Fatalf("cache-hit body diverges: %d vs %d bytes", len(body2), len(want))
			}
			if n := srv.Executions(hash); n != 1 {
				t.Errorf("executions for %s = %d, want 1", family, n)
			}

			// Every line must be a standalone JSON row.
			checkNDJSON(t, body, samples)
		})
	}
}

func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}

// checkNDJSON validates the framing: samples lines, each decoding to
// {"t": float, "y": [floats]}.
func checkNDJSON(t *testing.T, body []byte, samples int) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	if len(lines) != samples {
		t.Fatalf("body has %d lines, want %d", len(lines), samples)
	}
	var row struct {
		T float64   `json:"t"`
		Y []float64 `json:"y"`
	}
	for i, line := range lines {
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("line %d is not a JSON row: %v\n%.120s", i, err, line)
		}
		if len(row.Y) == 0 {
			t.Fatalf("line %d has empty y", i)
		}
	}
}

// TestE2EJobAPI drives the asynchronous surface: submit, poll status,
// fetch the result, and pin it against the direct run.
func TestE2EJobAPI(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{Workers: 2})
	doc := readExample(t, "kuramoto.json")
	want, _ := directBody(t, doc)

	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Family string `json:"family"`
		Hash   string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if st.ID == "" || st.Family != "kuramoto" || len(st.Hash) != 64 {
		t.Fatalf("job handle %+v", st)
	}

	// Poll until terminal (the run takes milliseconds; the deadline is
	// generous for -race CI).
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		r, err := http.Get(hs.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if err := r.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %q", st.State)
		}
		time.Sleep(time.Millisecond)
	}

	r, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", r.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("job result diverges from direct run: %d vs %d bytes", len(body), len(want))
	}

	// Unknown jobs 404.
	r404, err := http.Get(hs.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, r404.Body)
	if err := r404.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", r404.StatusCode)
	}
}

// TestE2EValidationErrors pins the bugfix surface: an invalid config in
// any family returns 400 (never 500) and names the offending field
// path in the JSON error body.
func TestE2EValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	for _, tc := range []struct {
		family, doc, field string
	}{
		{"pom", `{"n":8,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"desync","sigma":-1},"offsets":[-1,1]}`, "potential.sigma"},
		{"kuramoto", `{"family":"kuramoto","kuramoto":{"n":1,"k":1}}`, "kuramoto.n"},
		{"continuum", `{"family":"continuum","continuum":{"m":32,"a":0.5,"k":-1,"potential":{"kind":"tanh"}}}`, "continuum.k"},
		{"torus2d", `{"family":"torus2d","torus2d":{"nx":1,"ny":4,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"radius":1}}`, "torus2d.nx"},
		{"linstab", `{"family":"linstab","linstab":{"n":8,"offsets":[-1,1],"potential":{"kind":"tanh"},"from":2,"to":1}}`, "linstab.from"},
		{"cluster", `{"family":"cluster","cluster":{"n":4,"iters":0}}`, "cluster.iters"},
	} {
		t.Run(tc.family, func(t *testing.T) {
			resp := postRun(t, hs.URL, []byte(tc.doc))
			var apiErr struct {
				Error string `json:"error"`
				Field string `json:"field"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
				t.Fatal(err)
			}
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%+v)", resp.StatusCode, apiErr)
			}
			if apiErr.Field != tc.field {
				t.Errorf("field %q, want %q (error: %s)", apiErr.Field, tc.field, apiErr.Error)
			}
			if apiErr.Error == "" {
				t.Error("empty error message")
			}
		})
	}

	// Malformed JSON is also a 400, not a 500.
	resp := postRun(t, hs.URL, []byte(`{"n":`))
	_, _ = io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status %d, want 400", resp.StatusCode)
	}
}

// TestE2EStatsAndFamilies sanity-checks the observability surface.
func TestE2EStatsAndFamilies(t *testing.T) {
	clock := serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	srv, hs := newTestServer(t, serve.Config{Clock: clock, SnapshotTTL: time.Second})

	doc := readExample(t, "kuramoto.json")
	for i := 0; i < 3; i++ {
		resp := postRun(t, hs.URL, doc)
		_, _ = io.Copy(io.Discard, resp.Body)
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The first snapshot was built lazily at some earlier fake-time;
	// advance past the TTL so the next read rebuilds with the counters.
	clock.Advance(2 * time.Second)
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if snap.Jobs != 3 || snap.Executions != 1 || snap.CacheHits != 2 {
		t.Errorf("snapshot jobs=%d execs=%d hits=%d, want 3/1/2", snap.Jobs, snap.Executions, snap.CacheHits)
	}
	if snap.PerFamily["kuramoto"] != 3 {
		t.Errorf("per-family %v, want kuramoto:3", snap.PerFamily)
	}
	if want := float64(2) / 3; snap.CacheHitRatio != want {
		t.Errorf("hit ratio %v, want %v", snap.CacheHitRatio, want)
	}
	if snap.CacheEntries != 1 {
		t.Errorf("cache entries %d, want 1", snap.CacheEntries)
	}

	// The snapshot provider is cached: an immediate re-read returns the
	// same build (same At), and advancing past the TTL refreshes it.
	s1 := srv.Snapshot()
	s2 := srv.Snapshot()
	if !s1.At.Equal(s2.At) {
		t.Errorf("snapshot rebuilt inside TTL: %v vs %v", s1.At, s2.At)
	}
	clock.Advance(2 * time.Second)
	s3 := srv.Snapshot()
	if s3.At.Equal(s1.At) {
		t.Error("snapshot not rebuilt after TTL")
	}

	rf, err := http.Get(hs.URL + "/v1/families")
	if err != nil {
		t.Fatal(err)
	}
	var fams struct {
		Families []string `json:"families"`
	}
	if err := json.NewDecoder(rf.Body).Decode(&fams); err != nil {
		t.Fatal(err)
	}
	if err := rf.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if len(fams.Families) < 6 {
		t.Errorf("families %v, want all six", fams.Families)
	}
	for fam := range families {
		found := false
		for _, f := range fams.Families {
			if f == fam {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s missing from %v", fam, fams.Families)
		}
	}

	rh, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(rh.Body)
	if err := rh.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if rh.StatusCode != http.StatusOK || !strings.Contains(string(hb), "ok") {
		t.Errorf("healthz %d %q", rh.StatusCode, hb)
	}
}

// TestE2ECachePersists pins that the cache outlives the server: a new
// server over the same cache directory answers a prior run from disk.
func TestE2ECachePersists(t *testing.T) {
	dir := t.TempDir()
	doc := readExample(t, "linstab.json")
	want, _ := directBody(t, doc)

	srv1, err := serve.New(serve.Config{Clock: serve.NewFakeClock(time.Unix(0, 0)), CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	resp := postRun(t, hs1.URL, doc)
	body, _ := io.ReadAll(resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("fresh body diverges")
	}
	hs1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, hs2 := newTestServer(t, serve.Config{CacheDir: dir})
	resp2 := postRun(t, hs2.URL, doc)
	body2, _ := io.ReadAll(resp2.Body)
	if err := resp2.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if got := resp2.Header.Get("X-Pomsimd-Cache"); got != "hit" {
		t.Errorf("restarted server cache header %q, want hit", got)
	}
	if !bytes.Equal(body2, want) {
		t.Fatal("restarted cache body diverges")
	}
	spec, err := scenario.Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := scenario.CanonicalHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := srv2.Executions(hash); n != 0 {
		t.Errorf("restarted server executed %d times, want 0", n)
	}
}

// slowSpec returns a long-running POM spec (tens of seconds of solver
// work, few sample rows) distinguished by i. Tests that need a job to
// still be running while they act cancel it before finishing.
func slowSpec(t testing.TB, i int) *scenario.Spec {
	t.Helper()
	doc := fmt.Sprintf(
		`{"n":40,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"gain":%d,"t_end":400000,"samples":2001}`, i+1)
	spec, err := scenario.Load(bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// waitState polls until the job reaches state (or fails the test).
func waitState(t testing.TB, j *serve.Job, want serve.JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		state, _ := j.State()
		if state == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q waiting for %q", j.ID, state, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2EQueueFull pins the typed 503 when the queue has no room. One
// slow job occupies the single worker, a second fills the depth-1
// queue, and a third distinct submission must bounce with 503.
func TestE2EQueueFull(t *testing.T) {
	srv, hs := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})

	jA, _, err := srv.Submit(slowSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, jA, serve.StateRunning) // the queue slot is free again
	jB, _, err := srv.Submit(slowSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer jB.Cancel()
	defer jA.Cancel()

	doc := `{"n":40,"tcomp":0.8,"tcomm":0.2,"potential":{"kind":"tanh"},"offsets":[-1,1],"gain":3,"t_end":400000,"samples":2001}`
	resp := postRun(t, hs.URL, []byte(doc))
	_, _ = io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}
