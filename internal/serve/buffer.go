package serve

import (
	"context"
	"sync"
)

// rowBuffer is the live broadcast buffer of one running job: the worker
// appends rendered NDJSON row bytes, and any number of HTTP streams
// follow it concurrently at their own offsets. Appends never block on
// readers (a stalled client can never stall the simulation), and
// readers wait on a change channel so following costs nothing while no
// new rows exist. After close the full body stays readable — a client
// that attached late, or re-reads a finished job, replays from byte 0.
type rowBuffer struct {
	mu      sync.Mutex
	data    []byte
	rows    int
	changed chan struct{} // closed and replaced on every append; closed for good on close
	done    bool
	err     error // terminal status: nil, or the run's failure/cancellation
}

func newRowBuffer() *rowBuffer {
	return &rowBuffer{changed: make(chan struct{})}
}

// append copies one rendered row into the buffer and wakes followers.
// p is owned by the caller and copied, so the worker's scratch buffer
// is free to be reused (the sink buffer-reuse contract).
func (b *rowBuffer) append(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.data = append(b.data, p...)
	b.rows++
	close(b.changed)
	b.changed = make(chan struct{})
}

// close marks the stream complete (err nil) or terminated (err the
// failure or cancellation) and wakes all followers for the last time.
func (b *rowBuffer) close(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.done = true
	b.err = err
	close(b.changed)
}

// next returns the bytes past off, plus either a terminal flag or a
// channel that closes when more data (or the terminal state) arrives.
func (b *rowBuffer) next(off int) (chunk []byte, wait <-chan struct{}, done bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off > len(b.data) {
		off = len(b.data)
	}
	chunk = b.data[off:]
	if b.done {
		return chunk, nil, true, b.err
	}
	return chunk, b.changed, false, nil
}

// snapshotRows returns the rows appended so far.
func (b *rowBuffer) snapshotRows() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rows
}

// follow streams the buffer to emit from offset off until the buffer
// completes or ctx is canceled. emit must not block indefinitely; it
// returns false to stop early (write error — the client is gone).
// follow returns the final offset, whether the stream completed, and
// the buffer's terminal error when it did.
func (b *rowBuffer) follow(ctx context.Context, off int, emit func([]byte) bool) (int, bool, error) {
	for {
		chunk, wait, done, err := b.next(off)
		if len(chunk) > 0 {
			if !emit(chunk) {
				return off, false, nil
			}
			off += len(chunk)
		}
		if done {
			return off, true, err
		}
		select {
		case <-ctx.Done():
			return off, false, nil
		case <-wait:
		}
	}
}
