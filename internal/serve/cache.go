package serve

import (
	"fmt"
	"sync"

	"repro/internal/archive"
)

// resultCache is the service's archive-backed result store: one POMARC2
// shard per completed run (record 0 holds the trajectory), with a
// KeyDir mapping the canonical spec hash to the shard id. Both halves
// are durable and crash-safe on their own terms — shards commit by
// rename-on-close, the key dir appends with fsync and truncates torn
// tails on open — and the publish order (shard first, key second)
// means a crash can orphan a shard but never bind a key to data that
// does not exist.
type resultCache struct {
	dir   string
	codec archive.Codec

	mu   sync.Mutex // serializes KeyDir access and shard-id allocation
	keys *archive.KeyDir
	next int // low-water mark for CreateAny probing
}

// openResultCache opens (or initializes) the cache rooted at dir.
func openResultCache(dir string, codec archive.Codec) (*resultCache, error) {
	keys, err := archive.OpenKeyDir(dir)
	if err != nil {
		return nil, err
	}
	next, err := archive.NextShard(dir)
	if err != nil {
		_ = keys.Close()
		return nil, err
	}
	return &resultCache{dir: dir, codec: codec, keys: keys, next: next}, nil
}

// lookup returns the shard id bound to hash, if any.
func (c *resultCache) lookup(hash string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.keys.Get(hash)
	return int(idx), ok
}

// read loads the cached record for a shard id previously returned by
// lookup. The archive round trip is bitwise-exact, so rendering the
// returned record reproduces the fresh run's body byte for byte.
func (c *resultCache) read(shard int) (*archive.Record, error) {
	s, err := archive.OpenShard(archive.ShardPath(c.dir, shard))
	if err != nil {
		return nil, err
	}
	defer func() { _ = s.Close() }()
	if s.Len() != 1 {
		return nil, fmt.Errorf("serve: cache shard %d holds %d records, want 1", shard, s.Len())
	}
	return s.Read(0)
}

// begin allocates a fresh shard for a run about to execute and opens
// its single record. The writer stays invisible to readers (and to
// lookup) until publish; a canceled or failed run simply Aborts it.
func (c *resultCache) begin() (*archive.Writer, *archive.RecordWriter, error) {
	c.mu.Lock()
	from := c.next
	c.mu.Unlock()
	w, err := archive.CreateAnyWith(c.dir, from, c.codec)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	if w.Shard() >= c.next {
		c.next = w.Shard() + 1
	}
	c.mu.Unlock()
	rec, err := w.Begin(0, nil)
	if err != nil {
		_ = w.Abort()
		return nil, nil, err
	}
	return w, rec, nil
}

// publish commits a sealed shard under hash. The shard writer must
// already have Closed successfully (the data is durable before the key
// becomes visible).
func (c *resultCache) publish(hash string, shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keys.Put(hash, uint64(shard))
}

// len returns the number of published cache entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keys.Len()
}

// close releases the key dir.
func (c *resultCache) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keys.Close()
}
