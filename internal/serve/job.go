package serve

import (
	"context"
	"time"

	"repro/internal/scenario"
)

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Queued → Running → one of Done / Failed / Canceled.
// A cache-hit submission is born Done with Cached set — it never
// occupies a worker.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Job is one submitted scenario run.
type Job struct {
	// ID is the server-assigned job id ("j-000042").
	ID string
	// Hash is the canonical spec hash — the cache key.
	Hash string
	// Family is the resolved scenario family.
	Family string
	// Spec is the validated scenario.
	Spec *scenario.Spec
	// SubmittedAt is the admission-clock time of submission.
	SubmittedAt time.Time

	// ctx governs the run; cancel is the explicit-cancellation hook
	// (DELETE /v1/jobs/{id}). Client disconnects do NOT cancel ctx.
	ctx    context.Context
	cancel context.CancelFunc

	// buf is the live broadcast stream (nil for cache-hit jobs, whose
	// body reads come straight from the archive).
	buf *rowBuffer

	mu     chan struct{} // 1-buffered mutex token; held across state edits
	state  JobState
	err    error
	cached bool // answered from the result cache without executing
}

// newJob builds a queued job. The context derives from parent (the
// server's lifetime) so shutdown aborts in-flight runs.
func newJob(parent context.Context, id, hash, family string, spec *scenario.Spec, at time.Time) *Job {
	ctx, cancel := context.WithCancel(parent)
	j := &Job{
		ID: id, Hash: hash, Family: family, Spec: spec, SubmittedAt: at,
		ctx: ctx, cancel: cancel,
		buf:   newRowBuffer(),
		mu:    make(chan struct{}, 1),
		state: StateQueued,
	}
	return j
}

// newCachedJob builds the Done-at-birth record of a cache-hit
// submission, kept so the job API can report it like any other job.
func newCachedJob(id, hash, family string, spec *scenario.Spec, at time.Time) *Job {
	j := &Job{
		ID: id, Hash: hash, Family: family, Spec: spec, SubmittedAt: at,
		mu:     make(chan struct{}, 1),
		state:  StateDone,
		cached: true,
	}
	return j
}

func (j *Job) lock()   { j.mu <- struct{}{} }
func (j *Job) unlock() { <-j.mu }

// State returns the job's current state and terminal error (nil unless
// Failed).
func (j *Job) State() (JobState, error) {
	j.lock()
	defer j.unlock()
	return j.state, j.err
}

// Cached reports whether the job was answered from the result cache
// without an execution.
func (j *Job) Cached() bool {
	j.lock()
	defer j.unlock()
	return j.cached
}

// Rows returns the number of rows streamed so far (0 for cache-hit
// jobs, whose rows never pass through a live buffer).
func (j *Job) Rows() int {
	if j.buf == nil {
		return 0
	}
	return j.buf.snapshotRows()
}

// Cancel requests cancellation. Queued jobs are skipped by the worker;
// running jobs abort at their next sample row. Terminal jobs ignore it.
func (j *Job) Cancel() {
	if j.cancel != nil {
		j.cancel()
	}
}

// setState moves the job to state (with err for Failed).
func (j *Job) setState(state JobState, err error) {
	j.lock()
	defer j.unlock()
	j.state = state
	j.err = err
}

// terminal reports whether the job has finished (any of the three end
// states).
func (j *Job) terminal() bool {
	j.lock()
	defer j.unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}
