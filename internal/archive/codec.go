// Record codecs for the POMARC2 shard format.
//
// POMARC2 keeps POMARC1's framing (header · CRC'd record frames ·
// footer index · trailer) and prepends one codec byte to every record
// payload, so a single archive — and a single merge — can mix record
// generations. Two codecs exist:
//
//   - CodecRaw: the POMARC1 payload byte-for-byte (floats as raw
//     IEEE-754 bits, little-endian).
//   - CodecDelta: params/metrics/trace stay raw; the sample-row section
//     is column-delta compressed. Row 0 is stored raw; every later
//     value is XOR'd against a per-column prediction of its IEEE-754
//     bits and the XOR packed as a uvarint (the Gorilla/TSDB idiom:
//     neighbouring samples of a smooth trajectory share sign, exponent,
//     and high mantissa bits, so the XOR is small and the varint drops
//     the leading zero bytes).
//
// The prediction is second-order: pred = prev + (prev − prev2),
// evaluated in float64. Phase trajectories grow linearly in t, so the
// linear extrapolation removes the whole predictable component: on the
// megasweep corpus it cuts the mean row cost from 7.2 bytes/value
// (first-order prev-bits XOR) to 4.8, and perfectly gridded columns
// (the timestamps) collapse to one byte/value. What remains — the low
// ~30 mantissa bits — is genuine per-sample solver signal that no
// lossless code can remove; PERFORMANCE.md ("Archive compression")
// quantifies the resulting on-disk ratios. Every operation involved is
// correctly rounded per IEEE-754, so encode and decode reproduce the
// identical prediction on any conforming platform and the round trip
// is bitwise-exact — including NaN payloads and ±Inf, which bypass the
// float arithmetic entirely (see predictBits).
package archive

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec selects how record payloads are encoded inside a shard.
// The zero value means "writer default" (CodecDelta), so zero-valued
// configs — sweep.ArchiveRun, dsweep.Config — get compression without
// opting in.
type Codec uint8

const (
	// CodecDefault resolves to the writer default, CodecDelta.
	CodecDefault Codec = iota
	// CodecRaw stores floats as raw IEEE-754 bits (the POMARC1 layout).
	CodecRaw
	// CodecDelta delta-compresses the sample rows (see package comment).
	CodecDelta
)

// On-disk codec bytes (the first payload byte of every POMARC2 record).
const (
	codecByteRaw   = 0x00
	codecByteDelta = 0x01
)

// resolve maps CodecDefault to the concrete writer default.
func (c Codec) resolve() Codec {
	if c == CodecDefault {
		return CodecDelta
	}
	return c
}

// String returns the flag-friendly name ("raw", "delta").
func (c Codec) String() string {
	switch c.resolve() {
	case CodecRaw:
		return "raw"
	default:
		return "delta"
	}
}

// ParseCodec parses a codec name as written by Codec.String. The empty
// string parses to CodecDefault.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "":
		return CodecDefault, nil
	case "raw":
		return CodecRaw, nil
	case "delta":
		return CodecDelta, nil
	}
	return CodecDefault, fmt.Errorf("archive: unknown codec %q (want raw or delta)", s)
}

// wireByte returns the on-disk codec byte.
func (c Codec) wireByte() byte {
	if c.resolve() == CodecRaw {
		return codecByteRaw
	}
	return codecByteDelta
}

// codecOfByte maps an on-disk codec byte back to its Codec.
func codecOfByte(b byte) (Codec, bool) {
	switch b {
	case codecByteRaw:
		return CodecRaw, true
	case codecByteDelta:
		return CodecDelta, true
	}
	return CodecDefault, false
}

// expMask is the float64 exponent field; a value with all exponent bits
// set is an Inf or NaN.
const expMask = 0x7FF0000000000000

// predictBits extrapolates a column's next value as prev + (prev −
// prev2) in float64 and returns its IEEE-754 bits. Both operations are
// correctly rounded per IEEE-754, so the prediction is identical on
// every conforming platform; two finite inputs can overflow to ±Inf but
// never produce a NaN. When either input is non-finite the arithmetic
// could manufacture NaN bit patterns the standard leaves to the
// platform, so the predictor falls back to the previous value's bits —
// deterministic for every input, and exactly what a repeated NaN/Inf
// column wants (the XOR collapses to zero).
func predictBits(prev, prev2 uint64) uint64 {
	if prev&expMask == expMask || prev2&expMask == expMask {
		return prev
	}
	a := math.Float64frombits(prev)
	b := math.Float64frombits(prev2)
	return math.Float64bits(a + (a - b))
}

// colPred returns the prediction for row `row` (≥ 1) of one column
// given the bits of the two preceding rows. Row 1 has no second
// predecessor, so it predicts the previous bits directly (a first-order
// XOR).
func colPred(row int, prev, prev2 uint64) uint64 {
	if row == 1 {
		return prev
	}
	return predictBits(prev, prev2)
}

// appendDeltaRow appends the CodecDelta encoding of one sample row
// (time column plus len(y) state columns) to buf and returns the
// extended slice. row is the 0-based row index; prev and prev2 hold
// each column's previous and second-previous IEEE-754 bits (prev[0] is
// the time column) and are updated in place. Row 0 is stored as raw
// little-endian bits — it is the seed of every column's prediction.
func appendDeltaRow(buf []byte, row int, tBits uint64, y []float64, prev, prev2 []uint64) []byte {
	if row == 0 {
		buf = binary.LittleEndian.AppendUint64(buf, tBits)
		prev[0] = tBits
		for i, v := range y {
			b := math.Float64bits(v)
			buf = binary.LittleEndian.AppendUint64(buf, b)
			prev[i+1] = b
		}
		return buf
	}
	buf = binary.AppendUvarint(buf, tBits^colPred(row, prev[0], prev2[0]))
	prev2[0], prev[0] = prev[0], tBits
	for i, v := range y {
		b := math.Float64bits(v)
		buf = binary.AppendUvarint(buf, b^colPred(row, prev[i+1], prev2[i+1]))
		prev2[i+1], prev[i+1] = prev[i+1], b
	}
	return buf
}

// decodeDeltaRows decodes the CodecDelta row section from b into
// rec.Ts/rec.Samples (already sized to nSamples×width) and returns the
// number of payload bytes consumed. The predictor state is read back
// from the rows already decoded, so decoding needs no scratch beyond
// the output itself. Malformed input (truncated rows, overlong
// varints) returns an error, never a panic.
func decodeDeltaRows(b []byte, rec *Record, nSamples, width int) (int, error) {
	cols := 1 + width
	if len(b) < cols*8 {
		return 0, fmt.Errorf("truncated payload reading sample row 0")
	}
	off := 0
	rec.Ts[0] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	for i := 0; i < width; i++ {
		rec.Samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for k := 1; k < nSamples; k++ {
		for c := 0; c < cols; c++ {
			delta, n := binary.Uvarint(b[off:])
			if n <= 0 {
				return 0, fmt.Errorf("bad varint in sample row %d at offset %d", k, off)
			}
			off += n
			var prev, prev2 uint64
			if c == 0 {
				prev = math.Float64bits(rec.Ts[k-1])
				if k >= 2 {
					prev2 = math.Float64bits(rec.Ts[k-2])
				}
			} else {
				prev = math.Float64bits(rec.Samples[(k-1)*width+c-1])
				if k >= 2 {
					prev2 = math.Float64bits(rec.Samples[(k-2)*width+c-1])
				}
			}
			cur := colPred(k, prev, prev2) ^ delta
			if c == 0 {
				rec.Ts[k] = math.Float64frombits(cur)
			} else {
				rec.Samples[k*width+c-1] = math.Float64frombits(cur)
			}
		}
	}
	return off, nil
}

// appendRawPayload appends rec's canonical (CodecRaw, POMARC1) payload
// encoding to buf. It mirrors the Writer's streaming raw path
// byte-for-byte, so canonical bytes compare equal exactly when the
// decoded records are bitwise-identical — the codec-independent
// equality used by dsweep.Equal and pomread -compare.
func appendRawPayload(buf []byte, rec *Record) []byte {
	buf = u64(buf, rec.Index)
	buf = u32(buf, uint32(len(rec.Params)))
	buf = f64s(buf, rec.Params)
	buf = u32(buf, uint32(rec.Width))
	buf = u32(buf, uint32(rec.NSamples()))
	for k := 0; k < rec.NSamples(); k++ {
		buf = u64(buf, math64bits(rec.Ts[k]))
		buf = f64s(buf, rec.Row(k))
	}
	buf = u32(buf, uint32(len(rec.Metrics)))
	buf = f64s(buf, rec.Metrics)
	if rec.Trace == nil {
		return u32(buf, 0)
	}
	tb := rec.Trace.AppendBinary(nil)
	buf = u32(buf, uint32(len(tb)))
	return append(buf, tb...)
}
