package archive

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// KeyDir is a tiny durable string-key → point-index map stored beside
// an archive directory's shards: the content-address index of the
// pomsimd result cache (canonical spec hash → shard holding the run).
// The format is a deliberately boring append-only text log —
//
//	POMKEYS1
//	<key> <index>
//	<key> <index>
//	…
//
// — one fsync'd line per Put, so a crash can lose at most the entry
// being written, never corrupt earlier ones. Load tolerates a torn
// final line (no trailing newline) by ignoring it: the shard a torn
// entry pointed at is still committed and readable, the mapping is
// simply re-Put by the next run of the same spec. Keys must be
// non-empty and free of whitespace and control characters (hex hashes
// are). A KeyDir is not safe for concurrent use; callers serialize.
type KeyDir struct {
	path string
	f    *os.File
	m    map[string]uint64
}

// KeyDirName is the index file's name inside the archive directory.
const KeyDirName = "keys.pomidx"

const keyDirMagic = "POMKEYS1"

// OpenKeyDir opens (creating if needed) the key index of the archive
// directory dir and loads its entries. Duplicate keys keep the last
// entry — a crash between a shard's commit and its fsync'd index line
// is healed by re-putting, and last-wins makes the retry idempotent.
func OpenKeyDir(dir string) (*KeyDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	path := filepath.Join(dir, KeyDirName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	kd := &KeyDir{path: path, f: f, m: map[string]uint64{}}
	if err := kd.load(); err != nil {
		_ = f.Close() // error path: the load error is the one to report
		return nil, err
	}
	return kd, nil
}

// load replays the log into the in-memory map and positions the file
// for appending. A torn final line (missing its newline — even one
// that happens to parse) is dropped from the log so the next Put
// starts on a clean line boundary; without that, an append would fuse
// onto the torn fragment and corrupt both entries.
func (kd *KeyDir) load() error {
	data, err := os.ReadFile(kd.path)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if len(data) == 0 {
		// Fresh index: stamp the header so readers can tell an index
		// from stray files.
		if _, err := kd.f.WriteString(keyDirMagic + "\n"); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		return nil
	}
	header := keyDirMagic + "\n"
	if !strings.HasPrefix(string(data), header) {
		return fmt.Errorf("archive: %s: %w (bad key-index header)", kd.path, ErrCorrupt)
	}
	// A complete log ends in a newline; anything after the last newline
	// is a torn Put and gets cut below.
	goodEnd := int64(len(header))
	rest := data[len(header):]
	if i := bytes.LastIndexByte(rest, '\n'); i >= 0 {
		rest = rest[:i+1]
	} else {
		rest = nil
	}
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		line := string(rest[:nl])
		rest = rest[nl+1:]
		key, idx, err := parseKeyLine(line)
		if err != nil {
			// A malformed interior line means real corruption; stop
			// trusting here and truncate the rest away. The lost
			// entries' shards are still committed — the mappings
			// reappear on the next Put of the same specs.
			break
		}
		kd.m[key] = idx
		goodEnd += int64(len(line)) + 1
	}
	if goodEnd < int64(len(data)) {
		if err := kd.f.Truncate(goodEnd); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	if _, err := kd.f.Seek(goodEnd, 0); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// parseKeyLine splits "key index" and validates both halves.
func parseKeyLine(line string) (string, uint64, error) {
	key, idxStr, ok := strings.Cut(line, " ")
	if !ok || !validKey(key) {
		return "", 0, errors.New("archive: malformed key line")
	}
	idx, err := strconv.ParseUint(idxStr, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("archive: malformed key index: %w", err)
	}
	return key, idx, nil
}

// validKey reports whether key can round-trip through the line format.
func validKey(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// Get returns the index stored under key.
func (kd *KeyDir) Get(key string) (uint64, bool) {
	idx, ok := kd.m[key]
	return idx, ok
}

// Len returns the number of stored keys.
func (kd *KeyDir) Len() int { return len(kd.m) }

// Keys returns the stored keys in sorted order.
func (kd *KeyDir) Keys() []string {
	out := make([]string, 0, len(kd.m))
	for k := range kd.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Put durably appends key → index. Re-putting the same pair is a
// no-op; rebinding an existing key to a different index is an error —
// a content-addressed entry never changes what it points at, so a
// rebind attempt means the caller's dedup broke.
func (kd *KeyDir) Put(key string, index uint64) error {
	if !validKey(key) {
		return fmt.Errorf("archive: invalid key %q", key)
	}
	if prev, ok := kd.m[key]; ok {
		if prev == index {
			return nil
		}
		return fmt.Errorf("archive: key %q already maps to %d (rebind to %d refused)", key, prev, index)
	}
	line := key + " " + strconv.FormatUint(index, 10) + "\n"
	if _, err := kd.f.WriteString(line); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := kd.f.Sync(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	kd.m[key] = index
	return nil
}

// Close releases the file handle. The map stays readable; further Puts
// fail.
func (kd *KeyDir) Close() error { return kd.f.Close() }
