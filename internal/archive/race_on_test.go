//go:build race

package archive

// raceEnabled reports whether the race detector is instrumenting this
// build; absolute allocation pins skip under it (instrumentation adds
// allocations the production build does not have).
const raceEnabled = true
