// Package archive is a sharded, disk-backed record store for sweep
// output — the persistence layer of the simulation stack. Where
// sweep.RunReduce reduces every point to an online summary, an archive
// keeps the full per-point output (parameter vector, sample rows,
// summary metrics, and optionally a trace.Trace) on disk for post-hoc
// analysis, the role ITAC trace files play in the paper's workflow.
//
// # Model
//
// An archive is a directory of shard files. Each shard is written by
// exactly one goroutine (writes are lock-free), carries a CRC per
// record and a footer index, and becomes visible under its final name
// only via an atomic rename on Close — a crashed run leaves only
// complete shards plus ignorable *.tmp litter, which is what makes
// sweeps resumable: sweep.RunArchive scans the completed shards and
// skips their points. Corruption (torn writes, bit rot) surfaces as
// ErrCorrupt from the readers, never as a panic.
//
// A RecordWriter implements the streaming sim.Sink contract, so solver
// rows flow straight from the integrator's reused buffers to disk; any
// model family behind the scenario registry archives through the same
// path. Floats are stored as their IEEE-754 bits, so a round trip is
// bitwise-exact and resumed archives compare bitwise-identical to
// uninterrupted ones (pinned by tests in internal/sweep).
//
// # Shard layout and format versioning
//
// The format is versioned by the header magic. Writers produce the
// current generation, POMARC2; readers (OpenShard, OpenDir) accept
// both generations, and one directory may mix them — resume, merge,
// and comparison all work across the mix. CreateV1 still writes the
// legacy generation for byte-compatibility with old tooling.
//
// All integers are little-endian:
//
//	header   "POMARC2\n"  (legacy shards: "POMARC1\n")      (8 bytes)
//	record   [magic u32][payloadLen u32][payload][crc32c u32]  (×N)
//	footer   [magic u32][count u32][entries][crc32c u32]
//	entry    [index u64][offset u64][payloadLen u32]           (×count)
//	trailer  [footerOffset u64][magic u32]                   (12 bytes)
//
// A POMARC2 record payload leads with one codec byte (0 = raw,
// 1 = delta; see codec.go), making every record self-describing; a
// POMARC1 payload is the raw encoding with no codec byte. The raw
// payload encoding — also the canonical form ReadCanonical returns for
// any record, used for codec-independent equality:
//
//	index u64 · nParams u32 · params f64×nParams
//	width u32 · nSamples u32 · rows (t f64 · y f64×width)×nSamples
//	nMetrics u32 · metrics f64×nMetrics
//	traceLen u32 · trace bytes (trace.AppendBinary; 0 = none)
//
// The delta codec replaces only the rows section: row 0 is raw, later
// values are uvarint-packed XORs against a second-order per-column
// prediction (see the codec.go package comment for the design and
// PERFORMANCE.md "Archive compression" for measured ratios).
//
// The row section sits in the middle so a sink can stream solver rows
// straight into the shard: dimensions are known at Sink.Begin time,
// metrics and trace only after the run, and just the payload length is
// patched in afterwards. PERFORMANCE.md ("Disk-backed archive sinks")
// discusses the cost model; cmd/pomread inspects archives from the
// command line.
package archive
