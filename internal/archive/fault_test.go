package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
)

// smallRecord builds a tiny deterministic record for fault tests.
func smallRecord(index uint64) *Record {
	return &Record{
		Index:   index,
		Params:  []float64{float64(index) + 0.5},
		Width:   2,
		Ts:      []float64{0, 1},
		Samples: []float64{1, 2, 3, 4},
		Metrics: []float64{float64(index)},
	}
}

// TestCloseSyncsParentDir is the durability regression test for the
// rename-on-close path: without the directory fsync a committed shard
// can vanish on power loss. The failpoint observes that the seam runs
// exactly once per Close, after the rename.
func TestCloseSyncsParentDir(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	failpoint.Enable(SiteSyncDir, failpoint.Observe())
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(smallRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := failpoint.Hits(SiteSyncDir); got != 1 {
		t.Fatalf("parent-dir fsync ran %d times during Close, want exactly 1", got)
	}
}

// TestCloseReportsDirSyncFailureButKeepsShard: a failed directory sync
// is an error the caller must hear about, but the renamed shard is
// already committed and must never be rolled back.
func TestCloseReportsDirSyncFailureButKeepsShard(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	boom := errors.New("disk on fire")
	failpoint.Enable(SiteSyncDir, failpoint.FailAt(1, boom))
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(smallRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close error = %v, want the injected dir-sync failure", err)
	}
	if _, err := os.Stat(w.Path()); err != nil {
		t.Fatalf("committed shard missing after dir-sync failure: %v", err)
	}
	// The shard is valid: the data+rename completed before the fault.
	s, err := OpenShard(w.Path())
	if err != nil {
		t.Fatalf("committed shard unreadable: %v", err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("shard has %d records, want 1", s.Len())
	}
}

// TestInjectedWriteErrorRollsBackAndHeals: a transient write fault
// poisons only the in-flight record; rolling it back truncates the
// damage away and the writer keeps working — the recovery path sweep
// workers and the retry helper lean on.
func TestInjectedWriteErrorRollsBackAndHeals(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("transient")
	failpoint.Enable(SiteWrite, failpoint.FailAt(2, boom)) // first post-Create write
	if err := w.Append(smallRecord(7)); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want injected fault", err)
	}
	failpoint.Disable(SiteWrite)
	// The failed Append rolled its record back; the writer is healed.
	if err := w.Append(smallRecord(8)); err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := OpenShard(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("shard has %d records, want only the retried one", s.Len())
	}
	rec, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Index != 8 {
		t.Fatalf("surviving record index = %d, want 8", rec.Index)
	}
}

// TestTornWriteOnUnsealedShardPoisonsClose: a torn write that is not
// rolled back must keep the shard from sealing, so no reader ever sees
// the damage under a committed name.
func TestTornWriteOnUnsealedShardPoisonsClose(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(smallRecord(0)); err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(SiteWrite, failpoint.TearAt(1, 3, nil))
	rec, err := w.Begin(1, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	rec.Begin(1, 1)
	rec.Sample(0, []float64{1})
	if err := rec.Finish(nil, nil); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Finish error = %v, want injected tear", err)
	}
	failpoint.Disable(SiteWrite)
	if err := w.Close(); err == nil {
		t.Fatal("Close sealed a shard with an open, torn record")
	}
	if _, err := os.Stat(w.Path()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("poisoned shard became visible under its final name")
	}
}

// TestCrashLeavesTornTmpAndReadersRejectIt drives the full torn-write
// story: a simulated crash mid-write leaves a torn *.tmp exactly as a
// killed worker would; promoting that litter to a committed name (the
// one thing resume never does, simulated here directly) must surface
// ErrCorrupt from every reader, never a panic.
func TestCrashLeavesTornTmpAndReadersRejectIt(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(smallRecord(0)); err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(SiteWrite, failpoint.CrashTornAt(1, 5))
	func() {
		defer func() {
			if c, ok := failpoint.AsCrash(recover()); !ok {
				t.Fatalf("expected simulated crash, got %v", c)
			}
		}()
		_ = w.Append(smallRecord(1))
		t.Fatal("Append survived a simulated crash")
	}()
	failpoint.Disable(SiteWrite)

	tmp := filepath.Join(dir, "shard-00000.pom.tmp")
	fi, err := os.Stat(tmp)
	if err != nil {
		t.Fatalf("crash left no tmp litter: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("torn tmp is empty; expected the torn prefix on disk")
	}
	// A crashed worker's tmp never becomes visible; simulate the one
	// sequence of events resume guards against (a bogus rename) to pin
	// the reader behavior on exactly this litter.
	bad := filepath.Join(dir, "shard-00000.pom")
	if err := os.Rename(tmp, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenShard on torn shard = %v, want ErrCorrupt", err)
	}
	if _, err := OpenDir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenDir with torn shard = %v, want ErrCorrupt", err)
	}
}

// TestReadersRejectEmptyAndTruncatedShards: killed workers can leave
// zero-byte files and every possible truncation of a valid shard;
// readers must fail cleanly (ErrCorrupt or an I/O error) on all of
// them — this loop walks every prefix length of a real shard.
func TestReadersRejectEmptyAndTruncatedShards(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if err := w.Append(smallRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}

	tdir := t.TempDir()
	victim := filepath.Join(tdir, "shard-00000.pom")
	for size := 0; size < len(whole); size++ {
		if err := os.WriteFile(victim, whole[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenShard(victim)
		if err == nil {
			s.Close()
			t.Fatalf("OpenShard accepted a shard truncated to %d of %d bytes", size, len(whole))
		}
	}
	// The sweet spot: a full-length file whose tail bytes are zeroed
	// (a torn write inside a preallocated block).
	zeroed := append([]byte(nil), whole...)
	for i := len(zeroed) - 20; i < len(zeroed); i++ {
		zeroed[i] = 0
	}
	if err := os.WriteFile(victim, zeroed, 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := OpenShard(victim); err == nil {
		s.Close()
		t.Fatal("OpenShard accepted a shard with a zeroed tail")
	}
}

// TestCreateAnySkipsTakenIds: the cross-process shard-claim path walks
// past ids already committed or in progress instead of failing.
func TestCreateAnySkipsTakenIds(t *testing.T) {
	dir := t.TempDir()
	w0, err := Create(dir, 0) // id 0 in progress
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Abort()
	w1, err := Create(dir, 1) // id 1 committed
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Append(smallRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := CreateAny(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if got, want := w.Path(), filepath.Join(dir, "shard-00002.pom"); got != want {
		t.Fatalf("CreateAny claimed %s, want %s", got, want)
	}
}
