// The shard layout and the streaming write path are documented in
// doc.go; the byte-level constants in this file are the single source
// of truth for both the writer and the readers.

package archive

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"repro/internal/failpoint"
	"repro/internal/trace"
)

// Failpoint sites instrumented under the Writer (see package
// failpoint). Chaos tests enable rules here to tear writes, fail
// syncs, or simulate the process dying mid-commit; with no rule
// enabled each seam costs one atomic load.
const (
	// SiteWrite guards every logical write into a shard (header,
	// record frames, footer). Write sizes are the seam's n.
	SiteWrite = "archive/write"
	// SiteSync guards the pre-rename file fsync in Close.
	SiteSync = "archive/sync"
	// SiteRename guards the atomic rename that commits a shard.
	SiteRename = "archive/rename"
	// SiteSyncDir guards the parent-directory fsync after the rename —
	// the step that makes the committed name itself durable.
	SiteSyncDir = "archive/syncdir"
)

// math64bits keeps the encode lines short; floats are stored as their
// IEEE-754 bits so a round trip is bitwise-exact.
func math64bits(v float64) uint64 { return math.Float64bits(v) }

const (
	shardMagicV1 = "POMARC1\n"
	shardMagicV2 = "POMARC2\n"
	recordMagic  = 0x504d5243 // "PMRC"
	footerMagic  = 0x504d4958 // "PMIX"
	trailerMagic = 0x504d4654 // "PMFT"

	headerLen  = 8
	trailerLen = 12
	entryLen   = 8 + 8 + 4
)

// ErrCorrupt reports structural damage to a shard: a torn write, a
// failed CRC, or a mangled index. Readers wrap it with the shard path
// and offset; they never panic on damaged input.
var ErrCorrupt = errors.New("archive: corrupt shard")

// castagnoli is the CRC-32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one archived sweep point in decoded form.
type Record struct {
	// Index is the point's position in the sweep grid.
	Index uint64
	// Params is the point's parameter vector.
	Params []float64
	// Width is the state width N of one sample row.
	Width int
	// Ts are the sample times.
	Ts []float64
	// Samples holds the rows flattened row-major: row k is
	// Samples[k*Width : (k+1)*Width].
	Samples []float64
	// Metrics are the summary metrics (e.g. core.Summary.Vector).
	Metrics []float64
	// Trace is the optional execution trace.
	Trace *trace.Trace
}

// NSamples returns the number of sample rows.
func (r *Record) NSamples() int { return len(r.Ts) }

// Row returns sample row k (aliasing Samples).
func (r *Record) Row(k int) []float64 { return r.Samples[k*r.Width : (k+1)*r.Width] }

// shardName returns the final file name of shard id.
func shardName(id int) string { return fmt.Sprintf("shard-%05d.pom", id) }

// ShardPattern globs the completed shards of an archive directory.
func ShardPattern(dir string) string { return filepath.Join(dir, "shard-*.pom") }

// ShardPath returns the committed path of the given shard id in dir —
// the file OpenShard expects once the shard's writer has Closed.
func ShardPath(dir string, shard int) string { return filepath.Join(dir, shardName(shard)) }

// TmpPattern globs the in-progress (or crash-littered) shard files.
func TmpPattern(dir string) string { return filepath.Join(dir, "shard-*.pom.tmp") }

// NextShard returns the smallest shard id not used by any completed or
// in-progress shard in dir, so resumed runs never collide with archived
// ones. A missing directory yields 0.
func NextShard(dir string) (int, error) {
	next := 0
	for _, pat := range []string{ShardPattern(dir), TmpPattern(dir)} {
		names, err := filepath.Glob(pat)
		if err != nil {
			return 0, fmt.Errorf("archive: scanning %s: %w", dir, err)
		}
		for _, name := range names {
			var id int
			base := filepath.Base(name)
			if _, err := fmt.Sscanf(base, "shard-%05d.pom", &id); err == nil && id >= next {
				next = id + 1
			}
		}
	}
	return next, nil
}

// Writer appends records to one shard file. It is not safe for
// concurrent use — in a sweep every worker owns its own Writer, which is
// what keeps shard writes lock-free. Records become durable only at
// Close, when the footer index is written, the file synced, and the
// *.tmp name atomically renamed to the final one.
type Writer struct {
	dir     string
	shard   int    // shard id (the NNNNN of shard-NNNNN.pom)
	path    string // final path
	tmp     string // in-progress path
	f       *os.File
	bw      *bufio.Writer
	off     int64 // logical write offset (through bw)
	ents    []indexEntry
	rec     *RecordWriter // open record, if any
	buf     []byte        // encoding scratch
	version int           // shard format generation (1 or 2)
	codec   Codec         // resolved record codec (CodecRaw or CodecDelta)
	// Per-column predictor state for CodecDelta, sized by
	// RecordWriter.Begin so Sample never allocates (prev[0] is the time
	// column). Owned by the Writer so scratch survives across records.
	prev, prev2 []uint64
	werr        error // sticky injected/deferred write error
	state       writerState
}

type writerState int

const (
	writerOpen writerState = iota
	writerClosed
	writerAborted
)

type indexEntry struct {
	index  uint64
	off    int64
	length uint32
}

// Create opens a new shard writer for the given shard id inside dir
// (created if missing), writing the current format generation
// (POMARC2) with the default codec (CodecDelta). The data lands in a
// *.tmp file until Close.
func Create(dir string, shard int) (*Writer, error) {
	return CreateWith(dir, shard, CodecDefault)
}

// CreateWith is Create with an explicit record codec.
func CreateWith(dir string, shard int, codec Codec) (*Writer, error) {
	return create(dir, shard, 2, codec)
}

// CreateV1 opens a shard writer that produces the legacy POMARC1
// format (raw payloads, no codec byte). It exists so compatibility
// tests and tooling can generate previous-generation archives; new
// writes should use Create/CreateWith.
func CreateV1(dir string, shard int) (*Writer, error) {
	return create(dir, shard, 1, CodecRaw)
}

func create(dir string, shard, version int, codec Codec) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	path := filepath.Join(dir, shardName(shard))
	tmp := path + ".tmp"
	// A committed shard must never be silently overwritten by this
	// writer's rename-on-close; refuse the id up front. (The O_EXCL
	// below already serializes racing creators of the same tmp.)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("archive: shard %s already committed: %w", path, fs.ErrExist)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("archive: %w", err)
	}
	// O_EXCL: two writers racing to the same shard id (e.g. concurrent
	// archiving runs over one directory) must fail loudly here instead
	// of silently interleaving into a corrupt shard. Stale tmp files
	// from crashed runs are removed by sweep.RunArchive before it
	// allocates shard ids (TTL-gated, and live runs freshen their open
	// tmps' mtimes, so a live sharer's tmp is never touched), and
	// NextShard never reuses a live tmp's id.
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: creating shard (already being written by another run?): %w", err)
	}
	w := &Writer{
		dir: dir, shard: shard, path: path, tmp: tmp, f: f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		version: version,
		codec:   codec.resolve(),
	}
	if version == 1 {
		w.writeRaw([]byte(shardMagicV1))
	} else {
		w.writeRaw([]byte(shardMagicV2))
	}
	return w, nil
}

// CreateAny opens a new shard writer on the first free shard id >= from,
// skipping ids whose final or in-progress file already exists. This is
// the claim path for writers sharing one directory across processes:
// two workers racing NextShard both see the same "next" id, the O_EXCL
// create serializes them, and the loser simply moves to the next id
// instead of failing the run.
func CreateAny(dir string, from int) (*Writer, error) {
	return CreateAnyWith(dir, from, CodecDefault)
}

// CreateAnyWith is CreateAny with an explicit record codec.
func CreateAnyWith(dir string, from int, codec Codec) (*Writer, error) {
	if from < 0 {
		from = 0
	}
	for id := from; ; id++ {
		w, err := CreateWith(dir, id, codec)
		if err == nil {
			return w, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
	}
}

// Path returns the shard's final (post-Close) path.
func (w *Writer) Path() string { return w.path }

// Shard returns the writer's shard id — the id CreateAny settled on,
// which callers that address single-record shards by id (the pomsimd
// result cache) persist alongside their own index.
func (w *Writer) Shard() int { return w.shard }

// TmpPath returns the shard's in-progress (pre-Close) path. Runs that
// share a directory use it to keep a live writer's tmp file fresh
// (os.Chtimes) so sibling runs' age-gated litter cleanup never
// mistakes an open shard for a dead run's leftovers.
func (w *Writer) TmpPath() string { return w.tmp }

// Len returns the number of sealed records.
func (w *Writer) Len() int { return len(w.ents) }

// Codec returns the resolved record codec the writer encodes with.
func (w *Writer) Codec() Codec { return w.codec }

// writeRaw writes b to the shard and advances the logical offset. An
// injected fault at SiteWrite either poisons the writer with a sticky
// error (surfaced by Finish/Close, undone by Rollback's truncate) or —
// in crash mode — panics with *failpoint.Crashed after persisting the
// torn prefix, leaving the tmp file exactly as a dying process would.
func (w *Writer) writeRaw(b []byte) {
	if act := failpoint.Eval(SiteWrite, len(b)); !act.Pass() {
		if act.Tear {
			n := act.TearAt
			if n > len(b) {
				n = len(b)
			}
			if n > 0 {
				w.bw.Write(b[:n])
				w.off += int64(n)
			}
			_ = w.bw.Flush() // land the torn prefix so the damage is on disk
		}
		if act.Crash {
			_ = w.f.Close()
			panic(&failpoint.Crashed{Site: SiteWrite})
		}
		err := act.Err
		if err == nil {
			err = failpoint.ErrInjected
		}
		if w.werr == nil {
			w.werr = err
		}
		return
	}
	n, _ := w.bw.Write(b) // bufio defers errors to Flush; n is always len(b) until then
	w.off += int64(n)
}

// u32 appends v little-endian to the scratch buffer.
func u32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }

// u64 appends v little-endian to the scratch buffer.
func u64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

// f64s appends the float vector little-endian to the scratch buffer.
func f64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math64bits(v))
	}
	return buf
}

// Begin opens the record for point index with the given parameter
// vector and returns its streaming writer. Exactly one record can be
// open at a time; it must be sealed with Finish (or undone with
// Rollback) before the next Begin or Close.
func (w *Writer) Begin(index uint64, params []float64) (*RecordWriter, error) {
	if w.state != writerOpen {
		return nil, errors.New("archive: writer is closed")
	}
	if w.werr != nil {
		return nil, fmt.Errorf("archive: %w", w.werr)
	}
	if w.rec != nil {
		return nil, fmt.Errorf("archive: record %d still open", w.rec.index)
	}
	rw := &RecordWriter{w: w, index: index, frameOff: w.off}
	w.buf = u32(w.buf[:0], recordMagic)
	w.buf = u32(w.buf, 0) // payload length, patched by Finish
	w.writeRaw(w.buf)
	rw.payloadOff = w.off
	w.buf = w.buf[:0]
	if w.version >= 2 {
		// POMARC2 records are self-describing: the leading codec byte
		// lets one archive (or one merge) mix record generations.
		w.buf = append(w.buf, w.codec.wireByte())
	}
	w.buf = u64(w.buf, index)
	w.buf = u32(w.buf, uint32(len(params)))
	w.buf = f64s(w.buf, params)
	rw.write(w.buf)
	w.rec = rw
	return rw, nil
}

// Append writes a whole decoded record through the streaming path, so
// Append-ed and streamed records are byte-identical on disk.
func (w *Writer) Append(rec *Record) error {
	rw, err := w.Begin(rec.Index, rec.Params)
	if err != nil {
		return err
	}
	rw.Begin(rec.Width, rec.NSamples())
	for k := 0; k < rec.NSamples(); k++ {
		rw.Sample(rec.Ts[k], rec.Row(k))
	}
	if err := rw.Finish(rec.Metrics, rec.Trace); err != nil {
		_ = w.Rollback(rw)
		return err
	}
	return nil
}

// Rollback removes rec from the shard: the file is truncated back to
// the record's start and, if the record was already sealed, its index
// entry is dropped. Used by sweep workers to guarantee a failed point
// leaves no partial data behind.
func (w *Writer) Rollback(rec *RecordWriter) error {
	if w.state != writerOpen || rec == nil || rec.w != w {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := w.f.Truncate(rec.frameOff); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if _, err := w.f.Seek(rec.frameOff, 0); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	w.bw.Reset(w.f)
	w.off = rec.frameOff
	if rec.sealed {
		if n := len(w.ents); n > 0 && w.ents[n-1].index == rec.index {
			w.ents = w.ents[:n-1]
		}
	}
	if w.rec == rec {
		w.rec = nil
	}
	// The truncate removed whatever a poisoned write left behind, so a
	// sticky write error is healed here: the shard is byte-identical to
	// one that never saw the failed record, and the writer can go on.
	w.werr = nil
	rec.sealed = false
	rec.err = errors.New("archive: record rolled back")
	return nil
}

// Close seals the shard: footer index, fsync, the atomic rename that
// makes the shard visible to readers, and an fsync of the parent
// directory so the rename itself survives power loss — without that
// last step a "committed" shard can vanish when the directory's
// metadata never reaches disk. Closing with a record still open is an
// error (Rollback or Finish it first).
func (w *Writer) Close() error {
	if w.state != writerOpen {
		return errors.New("archive: writer is closed")
	}
	if w.rec != nil {
		return fmt.Errorf("archive: record %d still open", w.rec.index)
	}
	footerOff := w.off
	w.buf = u32(w.buf[:0], footerMagic)
	body := u32(nil, uint32(len(w.ents)))
	for _, e := range w.ents {
		body = u64(body, e.index)
		body = u64(body, uint64(e.off))
		body = u32(body, e.length)
	}
	w.buf = append(w.buf, body...)
	w.buf = u32(w.buf, crc32.Checksum(body, castagnoli))
	w.buf = u64(w.buf, uint64(footerOff))
	w.buf = u32(w.buf, trailerMagic)
	w.writeRaw(w.buf)
	if err := w.bw.Flush(); err != nil {
		w.fail()
		return fmt.Errorf("archive: %w", err)
	}
	if w.werr != nil {
		err := w.werr
		w.fail()
		return fmt.Errorf("archive: %w", err)
	}
	if act := failpoint.Eval(SiteSync, 0); !act.Pass() {
		if act.Crash {
			_ = w.f.Close()
			panic(&failpoint.Crashed{Site: SiteSync})
		}
		w.fail()
		return fmt.Errorf("archive: %w", act.Err)
	}
	if err := w.f.Sync(); err != nil {
		w.fail()
		return fmt.Errorf("archive: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.state = writerAborted
		_ = os.Remove(w.tmp)
		return fmt.Errorf("archive: %w", err)
	}
	if act := failpoint.Eval(SiteRename, 0); !act.Pass() {
		if act.Crash {
			panic(&failpoint.Crashed{Site: SiteRename})
		}
		w.state = writerAborted
		_ = os.Remove(w.tmp)
		return fmt.Errorf("archive: %w", act.Err)
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		w.state = writerAborted
		_ = os.Remove(w.tmp)
		return fmt.Errorf("archive: %w", err)
	}
	// The shard is committed from here on: even if the directory sync
	// fails, the renamed file must never be removed, so the writer is
	// marked closed before the durability step.
	w.state = writerClosed
	if act := failpoint.Eval(SiteSyncDir, 0); !act.Pass() {
		if act.Crash {
			panic(&failpoint.Crashed{Site: SiteSyncDir})
		}
		return fmt.Errorf("archive: syncing %s after commit: %w", w.dir, act.Err)
	}
	if err := syncDir(w.dir); err != nil {
		return fmt.Errorf("archive: syncing %s after commit: %w", w.dir, err)
	}
	return nil
}

// syncDir fsyncs a directory, making renames inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// fail abandons the underlying file after a write error.
func (w *Writer) fail() {
	_ = w.f.Close()
	_ = os.Remove(w.tmp)
	w.state = writerAborted
}

// Abort discards the shard: the *.tmp file is removed and nothing
// becomes visible to readers. Safe to call after a failed Close.
func (w *Writer) Abort() error {
	if w.state != writerOpen {
		return nil
	}
	w.state = writerAborted
	_ = w.f.Close()
	if err := os.Remove(w.tmp); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// RecordWriter streams one record into its shard. Begin and Sample
// implement core.Sink, so solver rows flow from the integrator's reused
// buffers straight to disk with no materialized trajectory; Finish
// seals the record with the summary metrics and optional trace. Errors
// during the sink callbacks (which cannot return one) are stashed and
// surfaced by Finish.
type RecordWriter struct {
	w          *Writer
	index      uint64
	frameOff   int64 // offset of the record magic
	payloadOff int64 // offset of the first payload byte
	crc        uint32

	width, nSamples, rows int
	dims                  bool
	sealed                bool
	err                   error
}

// Index returns the point index the record was opened with.
func (rw *RecordWriter) Index() uint64 { return rw.index }

// Sealed reports whether Finish completed.
func (rw *RecordWriter) Sealed() bool { return rw.sealed }

// write appends payload bytes, folding them into the record CRC.
func (rw *RecordWriter) write(b []byte) {
	rw.crc = crc32.Update(rw.crc, castagnoli, b)
	rw.w.writeRaw(b)
}

// Begin implements core.Sink: it fixes the row dimensions. It must run
// before the first Sample and at most once per record.
func (rw *RecordWriter) Begin(n, nSamples int) {
	if rw.sealed || rw.err != nil {
		rw.stash(errors.New("archive: Begin on a finished record"))
		return
	}
	if rw.dims {
		rw.stash(errors.New("archive: Begin called twice"))
		return
	}
	if n < 0 || nSamples < 0 {
		rw.stash(fmt.Errorf("archive: negative record dimensions (%d, %d)", n, nSamples))
		return
	}
	rw.dims = true
	rw.width, rw.nSamples = n, nSamples
	w := rw.w
	// Pre-size the encode scratch from the announced dimensions so the
	// per-row Sample path never regrows a buffer mid-record: the shared
	// byte scratch is held at the worst-case row encoding (uvarint needs
	// at most MaxVarintLen64 bytes per column, raw rows need 8), and the
	// delta predictor columns are (re)sized once per record.
	cols := 1 + n
	if need := cols * binary.MaxVarintLen64; cap(w.buf) < need {
		w.buf = make([]byte, 0, need)
	}
	if w.codec == CodecDelta && nSamples > 0 {
		if cap(w.prev) < cols {
			w.prev = make([]uint64, cols)
			w.prev2 = make([]uint64, cols)
		}
		w.prev = w.prev[:cols]
		w.prev2 = w.prev2[:cols]
	}
	w.buf = u32(w.buf[:0], uint32(n))
	w.buf = u32(w.buf, uint32(nSamples))
	rw.write(w.buf)
}

// Sample implements core.Sink: it appends one row. y is not retained.
func (rw *RecordWriter) Sample(t float64, y []float64) {
	if rw.err != nil {
		return
	}
	switch {
	case !rw.dims:
		rw.stash(errors.New("archive: Sample before Begin"))
	case len(y) != rw.width:
		rw.stash(fmt.Errorf("archive: row width %d, want %d", len(y), rw.width))
	case rw.rows >= rw.nSamples:
		rw.stash(fmt.Errorf("archive: more than %d sample rows", rw.nSamples))
	default:
		row := rw.rows
		rw.rows++
		w := rw.w
		if w.codec == CodecDelta {
			w.buf = appendDeltaRow(w.buf[:0], row, math64bits(t), y, w.prev, w.prev2)
		} else {
			w.buf = u64(w.buf[:0], math64bits(t))
			w.buf = f64s(w.buf, y)
		}
		rw.write(w.buf)
	}
}

// stash records the first sink-side error for Finish to report.
func (rw *RecordWriter) stash(err error) {
	if rw.err == nil {
		rw.err = err
	}
}

// Finish seals the record with the summary metrics and optional trace,
// patches the payload length, and adds the record to the shard index.
// The record stays invisible to readers until the shard's Close.
func (rw *RecordWriter) Finish(metrics []float64, tr *trace.Trace) error {
	w := rw.w
	if rw.sealed {
		return errors.New("archive: record already finished")
	}
	if w.rec != rw {
		return errors.New("archive: record is not open")
	}
	if rw.err == nil && !rw.dims {
		// A record without samples is legal: write the empty dimension
		// section through the normal path so the payload stays decodable.
		rw.Begin(0, 0)
	}
	if rw.err == nil && rw.rows != rw.nSamples {
		rw.stash(fmt.Errorf("archive: got %d of %d sample rows", rw.rows, rw.nSamples))
	}
	if rw.err != nil {
		return rw.err
	}
	w.buf = u32(w.buf[:0], uint32(len(metrics)))
	w.buf = f64s(w.buf, metrics)
	if tr == nil {
		w.buf = u32(w.buf, 0)
	} else {
		tb := tr.AppendBinary(nil)
		if int64(len(tb)) > math.MaxUint32 {
			rw.stash(fmt.Errorf("archive: embedded trace of %d bytes exceeds the format limit", len(tb)))
			return rw.err
		}
		w.buf = u32(w.buf, uint32(len(tb)))
		w.buf = append(w.buf, tb...)
	}
	rw.write(w.buf)
	payloadLen := w.off - rw.payloadOff
	if payloadLen > math.MaxUint32 {
		// The 4-byte length prefix cannot frame this record; report it
		// instead of writing a wrapped length that every read rejects.
		rw.stash(fmt.Errorf("archive: record payload of %d bytes exceeds the 4 GiB format limit", payloadLen))
		return rw.err
	}
	w.buf = u32(w.buf[:0], rw.crc)
	w.writeRaw(w.buf)
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if w.werr != nil {
		// A write anywhere in this record was poisoned; report it so
		// the caller rolls the record back (which truncates the damage
		// away and heals the writer).
		return fmt.Errorf("archive: %w", w.werr)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(payloadLen))
	if _, err := w.f.WriteAt(lenBuf[:], rw.frameOff+4); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	w.ents = append(w.ents, indexEntry{index: rw.index, off: rw.frameOff, length: uint32(payloadLen)})
	w.rec = nil
	rw.sealed = true
	return nil
}
