package archive

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestKeyDirRoundTrip pins the basic contract: puts are visible, survive
// a close/reopen cycle, and re-putting an identical pair is a no-op.
func TestKeyDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kd, err := OpenKeyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	puts := map[string]uint64{"aaa": 0, "bbb": 7, "ccc": 12345678901234}
	for k, v := range puts {
		if err := kd.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := kd.Put("bbb", 7); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	if kd.Len() != 3 {
		t.Fatalf("Len = %d, want 3", kd.Len())
	}
	if err := kd.Close(); err != nil {
		t.Fatal(err)
	}

	kd2, err := OpenKeyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = kd2.Close() }()
	for k, want := range puts {
		got, ok := kd2.Get(k)
		if !ok || got != want {
			t.Errorf("Get(%q) = %d, %v after reload; want %d, true", k, got, ok, want)
		}
	}
	if keys := kd2.Keys(); len(keys) != 3 || keys[0] != "aaa" || keys[2] != "ccc" {
		t.Errorf("Keys = %v, want sorted [aaa bbb ccc]", keys)
	}
}

// TestKeyDirRebindRefused pins the content-address invariant: a key can
// never change what it points at.
func TestKeyDirRebindRefused(t *testing.T) {
	kd, err := OpenKeyDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = kd.Close() }()
	if err := kd.Put("deadbeef", 1); err != nil {
		t.Fatal(err)
	}
	err = kd.Put("deadbeef", 2)
	if err == nil || !strings.Contains(err.Error(), "rebind") {
		t.Fatalf("rebind Put = %v, want refusal", err)
	}
	if got, _ := kd.Get("deadbeef"); got != 1 {
		t.Fatalf("after refused rebind Get = %d, want 1", got)
	}
}

// TestKeyDirInvalidKeys pins key validation: empty, spaced, and
// control-character keys are refused before touching the log.
func TestKeyDirInvalidKeys(t *testing.T) {
	kd, err := OpenKeyDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = kd.Close() }()
	for _, key := range []string{"", "a b", "a\nb", "a\tb", "\x7f"} {
		if err := kd.Put(key, 0); err == nil {
			t.Errorf("Put(%q) accepted, want error", key)
		}
	}
	if kd.Len() != 0 {
		t.Fatalf("Len = %d after refused puts, want 0", kd.Len())
	}
}

// TestKeyDirTornTail simulates a crash mid-append: a final line without
// its newline is dropped on reload and the log heals so new puts land
// on a clean boundary.
func TestKeyDirTornTail(t *testing.T) {
	dir := t.TempDir()
	kd, err := OpenKeyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := kd.Put("good", 1); err != nil {
		t.Fatal(err)
	}
	if err := kd.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the log: append a partial entry with no trailing newline.
	path := filepath.Join(dir, KeyDirName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("torn 9"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	kd2, err := OpenKeyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kd2.Get("torn"); ok {
		t.Error("torn entry survived reload")
	}
	if got, ok := kd2.Get("good"); !ok || got != 1 {
		t.Errorf("good entry lost: got %d, %v", got, ok)
	}
	// The heal must leave the log appendable: a new put and another
	// reload round-trip cleanly.
	if err := kd2.Put("after", 2); err != nil {
		t.Fatal(err)
	}
	if err := kd2.Close(); err != nil {
		t.Fatal(err)
	}
	kd3, err := OpenKeyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = kd3.Close() }()
	if got, ok := kd3.Get("after"); !ok || got != 2 {
		t.Errorf("post-heal entry lost: got %d, %v", got, ok)
	}
	if kd3.Len() != 2 {
		t.Errorf("Len = %d, want 2", kd3.Len())
	}
}

// TestKeyDirBadHeader pins that a non-index file is rejected, not
// silently treated as empty.
func TestKeyDirBadHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, KeyDirName), []byte("NOTKEYS\nx 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKeyDir(dir); err == nil {
		t.Fatal("OpenKeyDir accepted a bad header")
	}
}
