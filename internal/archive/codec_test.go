package archive

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// specialRecord builds a record whose rows hit every IEEE-754 corner
// the codec must round-trip bitwise: NaNs with distinct payloads, ±Inf,
// subnormals, signed zeros, sign flips, and exact powers of two (where
// an XOR against a near-miss prediction spans the exponent boundary).
func specialRecord(index uint64) *Record {
	vals := []float64{
		0, math.Copysign(0, -1),
		math.NaN(),
		math.Float64frombits(0x7FF8000000000001), // NaN, different payload
		math.Float64frombits(0xFFF0000000000123), // negative signalling-ish NaN
		math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64,
		1.0, 2.0, 4.0, -1.0,
		1.0000000000000002, // 1 + ulp
	}
	const width = 3
	nSamples := len(vals)
	rec := &Record{Index: index, Width: width, Params: []float64{math.Pi}}
	rec.Ts = make([]float64, nSamples)
	rec.Samples = make([]float64, nSamples*width)
	for k := 0; k < nSamples; k++ {
		rec.Ts[k] = float64(k) * 0.25
		for i := 0; i < width; i++ {
			rec.Samples[k*width+i] = vals[(k+i*5)%len(vals)]
		}
	}
	rec.Metrics = []float64{math.Inf(1), math.NaN()}
	return rec
}

// TestCodecRoundTripAllVariants runs the record round-trip property
// over every format variant, with both random records and the
// special-value record, pinning decode(encode(rows)) bitwise-identical.
func TestCodecRoundTripAllVariants(t *testing.T) {
	for _, v := range formatVariants {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			dir := t.TempDir()
			w, err := v.create(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			const n = 25
			want := make([]*Record, n)
			for i := 0; i < n; i++ {
				if i%5 == 4 {
					want[i] = specialRecord(uint64(i))
				} else {
					want[i] = randRecord(rng, uint64(i))
				}
				if err := w.Append(want[i]); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			a, err := OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			for i := 0; i < n; i++ {
				got, err := a.Read(uint64(i))
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !recordsEqual(got, want[i]) {
					t.Fatalf("record %d changed through %s round trip:\n got %+v\nwant %+v",
						i, v.name, got, want[i])
				}
			}
		})
	}
}

// TestCanonicalEqualAcrossCodecs pins the cross-generation equality
// story: the same records archived as delta, raw, and legacy POMARC1
// yield identical ReadCanonical bytes, even though the on-disk payloads
// differ, and the delta payloads really are smaller on smooth rows.
func TestCanonicalEqualAcrossCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := make([]*Record, 8)
	for i := range recs {
		recs[i] = randRecord(rng, uint64(i))
	}
	recs[3] = specialRecord(3)

	type opened struct {
		name string
		a    *Archive
	}
	var archives []opened
	for _, v := range formatVariants {
		dir := t.TempDir()
		w, err := v.create(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		a, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		archives = append(archives, opened{v.name, a})
	}
	for _, rec := range recs {
		ref, err := archives[0].a.ReadCanonical(rec.Index)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range archives[1:] {
			got, err := o.a.ReadCanonical(rec.Index)
			if err != nil {
				t.Fatalf("%s: %v", o.name, err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("record %d: canonical bytes differ between %s and %s",
					rec.Index, archives[0].name, o.name)
			}
		}
		// v1 canonical bytes are the raw payload itself; the v2 raw
		// codec stores them behind one codec byte.
		rawPayload, err := archives[1].a.ReadRaw(rec.Index)
		if err != nil {
			t.Fatal(err)
		}
		if len(rawPayload) != len(ref)+1 || !bytes.Equal(rawPayload[1:], ref) {
			t.Fatalf("record %d: raw codec payload is not codec byte + canonical bytes", rec.Index)
		}
	}
}

// TestMixedGenerationDir pins that one directory can mix POMARC1 and
// POMARC2 shards of either codec: OpenDir reads all of them and Iter
// sees every point.
func TestMixedGenerationDir(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dir := t.TempDir()
	for s, v := range formatVariants {
		w, err := v.create(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := w.Append(randRecord(rng, uint64(s*4+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != 12 {
		t.Fatalf("mixed-generation archive has %d points, want 12", a.Len())
	}
	seen := 0
	if err := a.Iter(func(*Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 12 {
		t.Fatalf("Iter visited %d of 12 records", seen)
	}
}

// TestShardVersionAndRecordCodec pins the format metadata surfaced to
// tools (pomread -stats): header version and per-record codec byte.
func TestShardVersionAndRecordCodec(t *testing.T) {
	wantCodec := map[string]Codec{"delta": CodecDelta, "raw": CodecRaw, "v1": CodecRaw}
	wantVer := map[string]int{"delta": 2, "raw": 2, "v1": 1}
	for _, v := range formatVariants {
		dir := t.TempDir()
		path := writeTestShardWith(t, dir, v.create)
		s, err := OpenShard(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != wantVer[v.name] {
			t.Errorf("%s: version %d, want %d", v.name, s.Version(), wantVer[v.name])
		}
		for k := 0; k < s.Len(); k++ {
			c, err := s.RecordCodec(k)
			if err != nil {
				t.Fatal(err)
			}
			if c != wantCodec[v.name] {
				t.Errorf("%s: record %d codec %v, want %v", v.name, k, c, wantCodec[v.name])
			}
		}
		s.Close()
	}
}

// TestDeltaCompressesSmoothRows is the compression smoke test: a
// linear-in-t trajectory (the post-locking shape) must shrink several-
// fold under CodecDelta relative to CodecRaw.
func TestDeltaCompressesSmoothRows(t *testing.T) {
	const width, nSamples = 8, 201
	rec := &Record{Index: 0, Width: width}
	rec.Ts = make([]float64, nSamples)
	rec.Samples = make([]float64, nSamples*width)
	for k := 0; k < nSamples; k++ {
		tt := float64(k) * 0.2
		rec.Ts[k] = tt
		for i := 0; i < width; i++ {
			rec.Samples[k*width+i] = 2*math.Pi*tt + 0.8*float64(i)
		}
	}
	size := func(codec Codec) int64 {
		dir := t.TempDir()
		w, err := CreateWith(dir, 0, codec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(filepath.Join(dir, shardName(0)))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	raw, delta := size(CodecRaw), size(CodecDelta)
	if delta*3 > raw {
		t.Errorf("smooth trajectory compressed %d -> %d bytes (< 3x)", raw, delta)
	}
}

// TestParseCodec pins the flag surface.
func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"", CodecDefault, true},
		{"raw", CodecRaw, true},
		{"delta", CodecDelta, true},
		{"zstd", CodecDefault, false},
	} {
		got, err := ParseCodec(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v", tc.in, got, err)
		}
	}
	if CodecDefault.String() != "delta" || CodecRaw.String() != "raw" {
		t.Errorf("codec names: default=%q raw=%q", CodecDefault.String(), CodecRaw.String())
	}
}

// TestRecordEncodeSteadyStateAllocs pins the streaming encoder's
// steady-state allocation budget for both codecs: after warm-up, one
// full record (Begin → rows → Finish) costs exactly the RecordWriter
// struct — one allocation — independent of the row shape, because
// RecordWriter.Begin pre-sizes every scratch buffer from (n, nSamples).
func TestRecordEncodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates absolute allocation counts")
	}
	for _, codec := range []Codec{CodecRaw, CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			for _, shape := range []struct{ width, nSamples int }{{2, 3}, {8, 201}} {
				w, err := CreateWith(t.TempDir(), 0, codec)
				if err != nil {
					t.Fatal(err)
				}
				defer w.Abort()
				row := make([]float64, shape.width)
				next := uint64(0)
				writeOne := func() {
					rw, err := w.Begin(next, nil)
					if err != nil {
						t.Fatal(err)
					}
					next++
					rw.Begin(shape.width, shape.nSamples)
					for k := 0; k < shape.nSamples; k++ {
						for i := range row {
							row[i] = float64(k) * 0.25
						}
						rw.Sample(float64(k), row)
					}
					if err := rw.Finish(nil, nil); err != nil {
						t.Fatal(err)
					}
				}
				// Warm-up grows the shard's index-entry slice past the
				// measured window, so the pin sees only per-record cost.
				for i := 0; i < 48; i++ {
					writeOne()
				}
				best := math.Inf(1)
				for rep := 0; rep < 3; rep++ {
					if a := testing.AllocsPerRun(16, writeOne); a < best {
						best = a
					}
				}
				if best > 1 {
					t.Errorf("codec %v shape %dx%d: %.1f allocs per record in steady state, want <= 1",
						codec, shape.width, shape.nSamples, best)
				}
			}
		})
	}
}
