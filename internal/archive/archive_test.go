package archive

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// The streaming record writer is the archive's core.Sink adapter:
// solver rows flow from RunStream straight to the shard.
var _ core.Sink = (*RecordWriter)(nil)

// randRecord builds a random record in canonical (flattened) form.
func randRecord(rng *rand.Rand, index uint64) *Record {
	rec := &Record{Index: index}
	if n := rng.Intn(5); n > 0 {
		rec.Params = make([]float64, n)
		for i := range rec.Params {
			rec.Params[i] = rng.NormFloat64()
		}
	}
	rec.Width = rng.Intn(7)
	nSamples := rng.Intn(20)
	if rec.Width == 0 {
		nSamples = 0 // zero-width rows carry no information; keep canonical
	}
	if nSamples > 0 {
		rec.Ts = make([]float64, nSamples)
		rec.Samples = make([]float64, nSamples*rec.Width)
		for k := range rec.Ts {
			rec.Ts[k] = float64(k) + rng.Float64()
		}
		for i := range rec.Samples {
			rec.Samples[i] = rng.NormFloat64()
		}
	}
	if n := rng.Intn(4); n > 0 {
		rec.Metrics = make([]float64, n)
		for i := range rec.Metrics {
			rec.Metrics[i] = rng.NormFloat64()
		}
	}
	if rng.Intn(3) == 0 {
		tr := trace.NewTrace(1 + rng.Intn(3))
		for r := 0; r < tr.N(); r++ {
			at := rng.Float64()
			for s := 0; s < rng.Intn(4); s++ {
				d := 0.1 + rng.Float64()
				tr.Record(r, trace.SpanKind(s%2), at, at+d)
				at += d
			}
			tr.MarkIterEnd(r, at+1)
		}
		rec.Trace = tr
	}
	return rec
}

// recordsEqual compares two records bitwise (floats by their IEEE bits).
func recordsEqual(a, b *Record) bool {
	bitsEq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	return a.Index == b.Index && a.Width == b.Width &&
		bitsEq(a.Params, b.Params) && bitsEq(a.Ts, b.Ts) &&
		bitsEq(a.Samples, b.Samples) && bitsEq(a.Metrics, b.Metrics) &&
		reflect.DeepEqual(a.Trace, b.Trace)
}

// TestRoundTripProperty is the record-format property test: N random
// records written across two shards read back bitwise-equal, including
// embedded traces, through both random access and iteration.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	const n = 40
	want := make([]*Record, n)
	writers := [2]*Writer{}
	for s := range writers {
		w, err := Create(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		writers[s] = w
	}
	for i := 0; i < n; i++ {
		want[i] = randRecord(rng, uint64(i))
		if err := writers[i%2].Append(want[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != n {
		t.Fatalf("archive has %d points, want %d", a.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, err := a.Read(uint64(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !recordsEqual(got, want[i]) {
			t.Fatalf("record %d changed through round trip:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	seen := 0
	err = a.Iter(func(rec *Record) error {
		if rec.Index != uint64(seen) {
			t.Fatalf("Iter out of order: got %d at position %d", rec.Index, seen)
		}
		seen++
		return nil
	})
	if err != nil || seen != n {
		t.Fatalf("Iter: %v after %d records", err, seen)
	}
}

// TestStreamedMatchesAppend pins that the streaming sink path and the
// whole-record Append path produce byte-identical payloads.
func TestStreamedMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rec := randRecord(rng, 3)
	dirA, dirB := t.TempDir(), t.TempDir()

	wa, err := Create(dirA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := wa.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}

	wb, err := Create(dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := wb.Begin(rec.Index, rec.Params)
	if err != nil {
		t.Fatal(err)
	}
	rw.Begin(rec.Width, rec.NSamples()) // the core.Sink entry points
	for k := 0; k < rec.NSamples(); k++ {
		rw.Sample(rec.Ts[k], rec.Row(k))
	}
	if err := rw.Finish(rec.Metrics, rec.Trace); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}

	sa, err := OpenShard(filepath.Join(dirA, shardName(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := OpenShard(filepath.Join(dirB, shardName(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	pa, err1 := sa.ReadRaw(0)
	pb, err2 := sb.ReadRaw(0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(pa, pb) {
		t.Error("streamed and appended payloads differ")
	}
}

// formatVariants enumerates every way a shard can be written: the two
// POMARC2 codecs plus the legacy POMARC1 format. Corruption sweeps and
// round-trip properties run over all of them.
var formatVariants = []struct {
	name   string
	create func(dir string, shard int) (*Writer, error)
}{
	{"delta", func(dir string, shard int) (*Writer, error) { return CreateWith(dir, shard, CodecDelta) }},
	{"raw", func(dir string, shard int) (*Writer, error) { return CreateWith(dir, shard, CodecRaw) }},
	{"v1", CreateV1},
}

// writeTestShard writes a 3-record shard and returns its path.
func writeTestShard(t *testing.T, dir string) string {
	return writeTestShardWith(t, dir, Create)
}

func writeTestShardWith(t *testing.T, dir string, create func(string, int) (*Writer, error)) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	w, err := create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := randRecord(rng, uint64(i))
		rec.Width, rec.Ts, rec.Samples = 2, []float64{0, 1}, []float64{1, 2, 3, 4}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w.Path()
}

// TestTornWrite truncates a shard at every byte boundary and asserts the
// reader reports corruption (or reads cleanly, never panics) — the
// torn-write half of the format's crash-safety story, for every format
// variant (both POMARC2 codecs and legacy POMARC1).
func TestTornWrite(t *testing.T) {
	for _, v := range formatVariants {
		t.Run(v.name, func(t *testing.T) {
			path := writeTestShardWith(t, t.TempDir(), v.create)
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			scratch := t.TempDir()
			cut := filepath.Join(scratch, shardName(0))
			for size := 0; size < len(good); size++ {
				if err := os.WriteFile(cut, good[:size], 0o644); err != nil {
					t.Fatal(err)
				}
				s, err := OpenShard(cut)
				if err == nil {
					s.Close()
					t.Fatalf("truncation to %d of %d bytes accepted", size, len(good))
				}
				if !errors.Is(err, ErrCorrupt) && size > 0 {
					t.Fatalf("truncation to %d: error %v does not wrap ErrCorrupt", size, err)
				}
			}
		})
	}
}

// TestBitRot flips bytes in the record payloads and the footer: index
// loading or record reads must fail with ErrCorrupt, never panic — the
// CRC runs over the compressed payload, so damage inside a delta row
// surfaces exactly like damage inside a raw one.
func TestBitRot(t *testing.T) {
	for _, v := range formatVariants {
		t.Run(v.name, func(t *testing.T) {
			path := writeTestShardWith(t, t.TempDir(), v.create)
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			scratch := t.TempDir()
			for pos := headerLen; pos < len(good); pos += 7 {
				bad := append([]byte(nil), good...)
				bad[pos] ^= 0x41
				target := filepath.Join(scratch, shardName(0))
				if err := os.WriteFile(target, bad, 0o644); err != nil {
					t.Fatal(err)
				}
				s, err := OpenShard(target)
				if err != nil {
					continue // index-level damage detected at open
				}
				for k := 0; k < s.Len(); k++ {
					if _, err := s.Read(k); err != nil && !errors.Is(err, ErrCorrupt) {
						t.Errorf("flip at %d: record %d error %v does not wrap ErrCorrupt", pos, k, err)
					}
				}
				s.Close()
			}
		})
	}
}

func TestRollback(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// An unfinished record rolls back...
	rw, err := w.Begin(7, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rw.Begin(2, 5)
	rw.Sample(0, []float64{3, 4})
	if err := w.Rollback(rw); err != nil {
		t.Fatal(err)
	}
	// ...a sealed one rolls back too...
	rw2, err := w.Begin(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw2.Finish([]float64{9}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Rollback(rw2); err != nil {
		t.Fatal(err)
	}
	// ...and a fresh record written afterwards is all that remains.
	if err := w.Append(&Record{Index: 9, Metrics: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != 1 || !a.Has(9) || a.Has(7) || a.Has(8) {
		t.Errorf("after rollbacks archive holds %v", a.Indices())
	}
}

func TestShortSampleStreamRejected(t *testing.T) {
	w, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := w.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rw.Begin(2, 3)
	rw.Sample(0, []float64{1, 2}) // only 1 of 3 promised rows
	if err := rw.Finish(nil, nil); err == nil {
		t.Error("short sample stream accepted")
	}
	if err := w.Rollback(rw); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortLeavesNoFiles(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("abort left %d files behind", len(ents))
	}
}

func TestNextShard(t *testing.T) {
	dir := t.TempDir()
	if id, err := NextShard(dir); err != nil || id != 0 {
		t.Fatalf("empty dir: %d, %v", id, err)
	}
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// An in-progress tmp shard reserves its id too.
	if err := os.WriteFile(filepath.Join(dir, shardName(3)+".tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if id, err := NextShard(dir); err != nil || id != 4 {
		t.Fatalf("NextShard = %d, %v; want 4", id, err)
	}
}

// TestRecordWithoutSamples pins the params+metrics-only record shape: a
// point function that never drives the sink still produces a payload
// the reader accepts (regression: the empty dimension section used to
// be skipped entirely, mis-aligning every later field).
func TestRecordWithoutSamples(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := w.Begin(4, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Finish([]float64{9, 8}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rec, err := a.Read(4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Width != 0 || rec.NSamples() != 0 || len(rec.Params) != 3 || len(rec.Metrics) != 2 {
		t.Errorf("sample-less record decoded wrong: %+v", rec)
	}
}

// TestDecodeOverflowingDimensions feeds decodePayload a crafted payload
// whose (width, nSamples) product overflows the naive bounds check: it
// must error, not reach make() and panic.
func TestDecodeOverflowingDimensions(t *testing.T) {
	var b []byte
	b = u64(b, 0)          // index
	b = u32(b, 0)          // nParams
	b = u32(b, 1<<29-1)    // width
	b = u32(b, 0xffffffff) // nSamples: rowBytes*nSamples wraps negative
	b = u32(b, 0)          // nMetrics
	b = u32(b, 0)          // traceLen
	if _, err := decodeRawPayload(b); err == nil {
		t.Fatal("overflowing dimensions accepted")
	}
	if _, err := decodeDeltaPayload(b); err == nil {
		t.Fatal("overflowing dimensions accepted by the delta codec")
	}
	// And a merely-huge pair that fits in int64 but not the payload.
	b2 := append([]byte(nil), b[:12]...)
	b2 = u32(b2, 1000)
	b2 = u32(b2, 1000)
	b2 = u32(b2, 0)
	b2 = u32(b2, 0)
	if _, err := decodeRawPayload(b2); err == nil {
		t.Fatal("oversized dimensions accepted")
	}
	if _, err := decodeDeltaPayload(b2); err == nil {
		t.Fatal("oversized dimensions accepted by the delta codec")
	}
}

// TestCreateRefusesLiveTmp pins the O_EXCL guard: a second writer on
// the same shard id fails loudly instead of interleaving writes.
func TestCreateRefusesLiveTmp(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if w2, err := Create(dir, 0); err == nil {
		w2.Abort()
		t.Fatal("second writer on the same shard id accepted")
	}
}

func TestDuplicateIndexAcrossShards(t *testing.T) {
	dir := t.TempDir()
	for s := 0; s < 2; s++ {
		w, err := Create(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(&Record{Index: 5}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenDir(dir); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate point index accepted: %v", err)
	}
}
