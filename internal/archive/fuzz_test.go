package archive

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecodePayload throws arbitrary bytes at the record decoder for
// both format generations. The decoder must classify every input as
// either a record or an error — it must never panic, and it must never
// allocate absurdly (the dimension bounds checks run before any make).
func FuzzDecodePayload(f *testing.F) {
	rec := specialRecord(7)
	f.Add(appendRawPayload(nil, rec))
	f.Add(append([]byte{codecByteRaw}, appendRawPayload(nil, rec)...))
	f.Add(encodeDeltaFuzzSeed(rec))
	f.Add([]byte{})
	f.Add([]byte{codecByteDelta})
	f.Add([]byte{0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, version := range []int{1, 2} {
			if _, err := decodePayload(b, version); err != nil {
				continue // malformed input rejected, as it should be
			}
		}
	})
}

// encodeDeltaFuzzSeed builds a well-formed CodecDelta payload for rec,
// reusing the writer's own row encoder.
func encodeDeltaFuzzSeed(rec *Record) []byte {
	buf := []byte{codecByteDelta}
	buf = u64(buf, rec.Index)
	buf = u32(buf, uint32(len(rec.Params)))
	buf = f64s(buf, rec.Params)
	buf = u32(buf, uint32(rec.Width))
	buf = u32(buf, uint32(rec.NSamples()))
	cols := 1 + rec.Width
	prev := make([]uint64, cols)
	prev2 := make([]uint64, cols)
	for k := 0; k < rec.NSamples(); k++ {
		buf = appendDeltaRow(buf, k, math64bits(rec.Ts[k]), rec.Row(k), prev, prev2)
	}
	buf = u32(buf, uint32(len(rec.Metrics)))
	buf = f64s(buf, rec.Metrics)
	return u32(buf, 0)
}

// FuzzDeltaRoundTrip drives the delta row codec with fuzz-chosen bit
// patterns — any float64 including NaN payloads, ±Inf, and subnormals —
// and pins that decode(encode(rows)) reproduces the exact bits.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(2), binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1))))
	f.Add(uint8(3), uint8(9), []byte{})
	f.Fuzz(func(t *testing.T, w, n uint8, raw []byte) {
		width := int(w%8) + 1
		nSamples := int(n%32) + 1
		// Expand the fuzz bytes into row values: each value takes its
		// bits from an 8-byte window of raw (cycled), so the corpus
		// reaches every float64 class.
		bitsAt := func(j int) uint64 {
			if len(raw) == 0 {
				return uint64(j) * 0x9E3779B97F4A7C15
			}
			var b [8]byte
			for i := range b {
				b[i] = raw[(j*8+i)%len(raw)]
			}
			return binary.LittleEndian.Uint64(b[:])
		}
		ts := make([]float64, nSamples)
		samples := make([]float64, nSamples*width)
		for k := 0; k < nSamples; k++ {
			ts[k] = math.Float64frombits(bitsAt(k * (width + 1)))
			for i := 0; i < width; i++ {
				samples[k*width+i] = math.Float64frombits(bitsAt(k*(width+1) + 1 + i))
			}
		}

		cols := 1 + width
		prev := make([]uint64, cols)
		prev2 := make([]uint64, cols)
		var buf []byte
		for k := 0; k < nSamples; k++ {
			buf = appendDeltaRow(buf, k, math.Float64bits(ts[k]), samples[k*width:(k+1)*width], prev, prev2)
		}

		dec := &Record{
			Ts:      make([]float64, nSamples),
			Samples: make([]float64, nSamples*width),
			Width:   width,
		}
		consumed, err := decodeDeltaRows(buf, dec, nSamples, width)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		if consumed != len(buf) {
			t.Fatalf("decoded %d of %d encoded bytes", consumed, len(buf))
		}
		for k := 0; k < nSamples; k++ {
			if math.Float64bits(dec.Ts[k]) != math.Float64bits(ts[k]) {
				t.Fatalf("row %d: time bits changed through round trip", k)
			}
			for i := 0; i < width; i++ {
				if math.Float64bits(dec.Samples[k*width+i]) != math.Float64bits(samples[k*width+i]) {
					t.Fatalf("row %d col %d: %x -> %x", k, i,
						math.Float64bits(samples[k*width+i]), math.Float64bits(dec.Samples[k*width+i]))
				}
			}
		}
	})
}

// TestFuzzSeedsRoundTrip runs the seed corpus of FuzzDecodePayload as a
// plain test, pinning that a hand-assembled delta payload decodes to
// the record it encodes (guards the seed builder itself).
func TestFuzzSeedsRoundTrip(t *testing.T) {
	rec := specialRecord(7)
	got, err := decodePayload(encodeDeltaFuzzSeed(rec), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, rec) {
		t.Fatalf("delta fuzz seed decoded to a different record")
	}
	canon, err := decodePayload(appendRawPayload(nil, rec), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(canon, rec) {
		t.Fatalf("raw fuzz seed decoded to a different record")
	}
	if !bytes.Equal(appendRawPayload(nil, got), appendRawPayload(nil, canon)) {
		t.Fatalf("canonical bytes differ between codec paths")
	}
}
