//go:build !race

package archive

const raceEnabled = false
