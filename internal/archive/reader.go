package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/trace"
)

// Shard is one completed shard file opened for reading. Reads go
// through ReadAt, so a Shard is safe for concurrent readers.
type Shard struct {
	// Path is the shard file path.
	Path    string
	f       *os.File
	size    int64
	version int // format generation from the header magic (1 or 2)
	ents    []indexEntry
}

// OpenShard opens and validates one shard file: header magic, trailer,
// and footer index CRC. Damaged shards (torn writes, truncation, bit
// rot) return an error wrapping ErrCorrupt — never a panic.
func OpenShard(path string) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	s := &Shard{Path: path, f: f}
	if err := s.loadIndex(); err != nil {
		_ = f.Close() // the index error is the one worth reporting
		return nil, err
	}
	return s, nil
}

// corrupt builds a shard-corruption error with context.
func (s *Shard) corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrCorrupt, s.Path, fmt.Sprintf(format, args...))
}

// loadIndex parses the trailer and footer into the entry table.
func (s *Shard) loadIndex() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	s.size = fi.Size()
	if s.size < headerLen+trailerLen+4+4+4 {
		return s.corrupt("file too short (%d bytes)", s.size)
	}
	var head [headerLen]byte
	if _, err := s.f.ReadAt(head[:], 0); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	switch string(head[:]) {
	case shardMagicV1:
		s.version = 1
	case shardMagicV2:
		s.version = 2
	default:
		return s.corrupt("bad header magic")
	}
	var tail [trailerLen]byte
	if _, err := s.f.ReadAt(tail[:], s.size-trailerLen); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if binary.LittleEndian.Uint32(tail[8:]) != trailerMagic {
		return s.corrupt("bad trailer magic (torn write?)")
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	// Footer: magic u32 + count u32 + entries + crc u32.
	if footerOff < headerLen || footerOff > s.size-trailerLen-12 {
		return s.corrupt("footer offset %d out of range", footerOff)
	}
	footer := make([]byte, s.size-trailerLen-footerOff)
	if _, err := s.f.ReadAt(footer, footerOff); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if binary.LittleEndian.Uint32(footer[:4]) != footerMagic {
		return s.corrupt("bad footer magic")
	}
	body := footer[4 : len(footer)-4]
	wantCRC := binary.LittleEndian.Uint32(footer[len(footer)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return s.corrupt("footer checksum mismatch")
	}
	count := int(binary.LittleEndian.Uint32(body[:4]))
	if count < 0 || len(body) != 4+count*entryLen {
		return s.corrupt("footer entry count %d does not match footer size", count)
	}
	s.ents = make([]indexEntry, count)
	for k := 0; k < count; k++ {
		e := body[4+k*entryLen:]
		ent := indexEntry{
			index:  binary.LittleEndian.Uint64(e[:8]),
			off:    int64(binary.LittleEndian.Uint64(e[8:16])),
			length: binary.LittleEndian.Uint32(e[16:20]),
		}
		// The record frame [magic+len | payload | crc] must fit between
		// the header and the footer.
		end := ent.off + 8 + int64(ent.length) + 4
		if ent.off < headerLen || end > footerOff {
			return s.corrupt("record %d at offset %d overruns the data area", ent.index, ent.off)
		}
		s.ents[k] = ent
	}
	return nil
}

// Close releases the shard's file handle.
func (s *Shard) Close() error { return s.f.Close() }

// Len returns the number of records in the shard.
func (s *Shard) Len() int { return len(s.ents) }

// Version returns the shard's format generation: 1 for POMARC1
// (raw payloads), 2 for POMARC2 (codec byte per record).
func (s *Shard) Version() int { return s.version }

// Size returns the shard file size in bytes.
func (s *Shard) Size() int64 { return s.size }

// Indices returns the point indices stored in the shard, in write order.
func (s *Shard) Indices() []uint64 {
	out := make([]uint64, len(s.ents))
	for k, e := range s.ents {
		out[k] = e.index
	}
	return out
}

// ReadRaw returns the k-th record's CRC-verified payload bytes exactly
// as stored: for POMARC2 that includes the leading codec byte and any
// delta compression. Two same-codec archives hold bitwise-identical
// data exactly when their ReadRaw payloads match; for comparisons that
// must span codecs or format generations use ReadCanonical.
func (s *Shard) ReadRaw(k int) ([]byte, error) {
	if k < 0 || k >= len(s.ents) {
		return nil, fmt.Errorf("archive: record %d out of range [0, %d)", k, len(s.ents))
	}
	e := s.ents[k]
	frame := make([]byte, 8+int(e.length)+4)
	if _, err := s.f.ReadAt(frame, e.off); err != nil {
		return nil, s.corrupt("record %d: %v", e.index, err)
	}
	if binary.LittleEndian.Uint32(frame[:4]) != recordMagic {
		return nil, s.corrupt("record %d: bad record magic", e.index)
	}
	if binary.LittleEndian.Uint32(frame[4:8]) != e.length {
		return nil, s.corrupt("record %d: frame length disagrees with index", e.index)
	}
	payload := frame[8 : 8+e.length]
	wantCRC := binary.LittleEndian.Uint32(frame[8+e.length:])
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, s.corrupt("record %d: payload checksum mismatch", e.index)
	}
	return payload, nil
}

// Read decodes the k-th record of the shard.
func (s *Shard) Read(k int) (*Record, error) {
	payload, err := s.ReadRaw(k)
	if err != nil {
		return nil, err
	}
	rec, err := decodePayload(payload, s.version)
	if err != nil {
		return nil, s.corrupt("record %d: %v", s.ents[k].index, err)
	}
	return rec, nil
}

// ReadCanonical returns the k-th record's payload re-encoded in the
// canonical raw (POMARC1) layout, independent of the codec or format
// generation it was stored with. Two archives hold bitwise-identical
// data exactly when their ReadCanonical payloads match — even when one
// is delta-compressed and the other raw or legacy.
func (s *Shard) ReadCanonical(k int) ([]byte, error) {
	payload, err := s.ReadRaw(k)
	if err != nil {
		return nil, err
	}
	if s.version == 1 {
		return payload, nil
	}
	if len(payload) == 0 {
		return nil, s.corrupt("record %d: empty payload", s.ents[k].index)
	}
	if payload[0] == codecByteRaw {
		return payload[1:], nil
	}
	rec, err := decodePayload(payload, s.version)
	if err != nil {
		return nil, s.corrupt("record %d: %v", s.ents[k].index, err)
	}
	return appendRawPayload(nil, rec), nil
}

// RecordCodec returns the codec the k-th record was stored with.
// POMARC1 records report CodecRaw.
func (s *Shard) RecordCodec(k int) (Codec, error) {
	if k < 0 || k >= len(s.ents) {
		return CodecDefault, fmt.Errorf("archive: record %d out of range [0, %d)", k, len(s.ents))
	}
	if s.version == 1 {
		return CodecRaw, nil
	}
	e := s.ents[k]
	if e.length == 0 {
		return CodecDefault, s.corrupt("record %d: empty payload", e.index)
	}
	var b [1]byte
	if _, err := s.f.ReadAt(b[:], e.off+8); err != nil {
		return CodecDefault, s.corrupt("record %d: %v", e.index, err)
	}
	c, ok := codecOfByte(b[0])
	if !ok {
		return CodecDefault, s.corrupt("record %d: unknown codec byte 0x%02x", e.index, b[0])
	}
	return c, nil
}

// payloadReader is a bounds-checked little-endian decoder; the first
// out-of-range read poisons it so decodePayload stays panic-free on
// corrupt input.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("truncated payload reading %s at offset %d", what, p.off)
	}
}

func (p *payloadReader) u32(what string) uint32 {
	if p.err != nil {
		return 0
	}
	if p.off+4 > len(p.b) {
		p.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) u64(what string) uint64 {
	if p.err != nil {
		return 0
	}
	if p.off+8 > len(p.b) {
		p.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

// f64s decodes count floats, guarding the allocation against corrupt
// counts that exceed the remaining payload (the division keeps the
// check overflow-free for any u32-derived count).
func (p *payloadReader) f64s(count int, what string) []float64 {
	if p.err != nil {
		return nil
	}
	if count < 0 || count > (len(p.b)-p.off)/8 {
		p.fail(what)
		return nil
	}
	if count == 0 {
		return nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.off:]))
		p.off += 8
	}
	return out
}

// decodePayload decodes one record payload (the inverse of the
// RecordWriter stream) according to the shard format generation:
// POMARC1 payloads are raw, POMARC2 payloads lead with a codec byte.
func decodePayload(b []byte, version int) (*Record, error) {
	if version == 1 {
		return decodeRawPayload(b)
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("empty payload")
	}
	switch b[0] {
	case codecByteRaw:
		return decodeRawPayload(b[1:])
	case codecByteDelta:
		return decodeDeltaPayload(b[1:])
	}
	return nil, fmt.Errorf("unknown codec byte 0x%02x", b[0])
}

// decodeHead reads the sections ahead of the row data (index, params,
// dimensions), which both codecs store raw.
func decodeHead(p *payloadReader, rec *Record) (width, nSamples int) {
	rec.Index = p.u64("index")
	rec.Params = p.f64s(int(p.u32("param count")), "params")
	width = int(p.u32("width"))
	nSamples = int(p.u32("sample count"))
	return width, nSamples
}

// decodeTail reads the metric and trace sections, which both codecs
// store raw, and verifies the payload is fully consumed.
func decodeTail(p *payloadReader, rec *Record) error {
	b := p.b
	rec.Metrics = p.f64s(int(p.u32("metric count")), "metrics")
	traceLen := int(p.u32("trace length"))
	if p.err == nil && traceLen > 0 {
		if p.off+traceLen > len(b) {
			p.fail("trace")
		} else {
			tr, err := trace.DecodeBinary(b[p.off : p.off+traceLen])
			if err != nil {
				return fmt.Errorf("embedded trace: %w", err)
			}
			rec.Trace = tr
			p.off += traceLen
		}
	}
	if p.err != nil {
		return p.err
	}
	if p.off != len(b) {
		return fmt.Errorf("payload has %d trailing bytes", len(b)-p.off)
	}
	return nil
}

// decodeRawPayload decodes a CodecRaw (or POMARC1) payload body.
func decodeRawPayload(b []byte) (*Record, error) {
	p := &payloadReader{b: b}
	rec := &Record{}
	width, nSamples := decodeHead(p, rec)
	if p.err == nil {
		// Division-based bounds check: a crafted (width, nSamples) pair
		// must not overflow into a passing product and reach make().
		rem := len(b) - p.off
		rowFloats := 1 + width
		if width < 0 || nSamples < 0 ||
			(nSamples > 0 && (rowFloats > rem/8 || nSamples > rem/(8*rowFloats))) {
			p.fail("sample rows")
		}
	}
	if p.err == nil {
		rec.Width = width
		if nSamples > 0 {
			rec.Ts = make([]float64, nSamples)
			rec.Samples = make([]float64, nSamples*width)
			for k := 0; k < nSamples; k++ {
				rec.Ts[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[p.off:]))
				p.off += 8
				for i := 0; i < width; i++ {
					rec.Samples[k*width+i] = math.Float64frombits(binary.LittleEndian.Uint64(b[p.off:]))
					p.off += 8
				}
			}
		}
	}
	if err := decodeTail(p, rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// decodeDeltaPayload decodes a CodecDelta payload body.
func decodeDeltaPayload(b []byte) (*Record, error) {
	p := &payloadReader{b: b}
	rec := &Record{}
	width, nSamples := decodeHead(p, rec)
	if p.err == nil {
		// Bounds before allocation: row 0 is raw (8 bytes per column)
		// and every later row needs at least one varint byte per column,
		// so a crafted (width, nSamples) pair fails here, overflow-free,
		// instead of reaching make(). cols ≤ rem/8 keeps cols*8 ≤ rem,
		// so the second division's numerator cannot go negative.
		rem := len(b) - p.off
		cols := 1 + width
		if width < 0 || nSamples < 0 ||
			(nSamples > 0 && (cols > rem/8 || nSamples-1 > (rem-cols*8)/cols)) {
			p.fail("sample rows")
		}
	}
	if p.err == nil {
		rec.Width = width
		if nSamples > 0 {
			rec.Ts = make([]float64, nSamples)
			rec.Samples = make([]float64, nSamples*width)
			n, err := decodeDeltaRows(b[p.off:], rec, nSamples, width)
			if err != nil {
				return nil, err
			}
			p.off += n
		}
	}
	if err := decodeTail(p, rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// recordLoc addresses one record inside an open Archive.
type recordLoc struct {
	shard int
	slot  int
}

// Archive is a directory of completed shards opened for reading, with a
// point-index lookup spanning all of them.
type Archive struct {
	shards []*Shard
	locs   map[uint64]recordLoc
}

// OpenDir opens every completed shard in dir. In-progress *.tmp files
// are ignored (they are crash litter by construction); a damaged shard
// or a point index appearing in two shards is an error.
func OpenDir(dir string) (*Archive, error) {
	names, err := filepath.Glob(ShardPattern(dir))
	if err != nil {
		return nil, fmt.Errorf("archive: scanning %s: %w", dir, err)
	}
	sort.Strings(names)
	a := &Archive{locs: make(map[uint64]recordLoc)}
	for _, name := range names {
		s, err := OpenShard(name)
		if err != nil {
			_ = a.Close() // the open error is the one worth reporting
			return nil, err
		}
		a.shards = append(a.shards, s)
		si := len(a.shards) - 1
		for slot, e := range s.ents {
			if prev, dup := a.locs[e.index]; dup {
				_ = a.Close() // the corruption error is the one worth reporting
				return nil, fmt.Errorf("%w: point %d appears in both %s and %s",
					ErrCorrupt, e.index, a.shards[prev.shard].Path, name)
			}
			a.locs[e.index] = recordLoc{shard: si, slot: slot}
		}
	}
	return a, nil
}

// Close releases all shard handles.
func (a *Archive) Close() error {
	var first error
	for _, s := range a.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shards returns the opened shards (do not close them individually).
func (a *Archive) Shards() []*Shard { return a.shards }

// Len returns the total number of archived points.
func (a *Archive) Len() int { return len(a.locs) }

// Has reports whether point index is archived.
func (a *Archive) Has(index uint64) bool {
	_, ok := a.locs[index]
	return ok
}

// Indices returns all archived point indices in ascending order.
func (a *Archive) Indices() []uint64 {
	out := make([]uint64, 0, len(a.locs))
	for idx := range a.locs {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Read decodes the record of point index.
func (a *Archive) Read(index uint64) (*Record, error) {
	loc, ok := a.locs[index]
	if !ok {
		return nil, fmt.Errorf("archive: point %d not archived", index)
	}
	return a.shards[loc.shard].Read(loc.slot)
}

// ReadRaw returns the CRC-verified payload bytes of point index (see
// Shard.ReadRaw).
func (a *Archive) ReadRaw(index uint64) ([]byte, error) {
	loc, ok := a.locs[index]
	if !ok {
		return nil, fmt.Errorf("archive: point %d not archived", index)
	}
	return a.shards[loc.shard].ReadRaw(loc.slot)
}

// ReadCanonical returns the canonical (codec-independent) payload bytes
// of point index (see Shard.ReadCanonical).
func (a *Archive) ReadCanonical(index uint64) ([]byte, error) {
	loc, ok := a.locs[index]
	if !ok {
		return nil, fmt.Errorf("archive: point %d not archived", index)
	}
	return a.shards[loc.shard].ReadCanonical(loc.slot)
}

// Iter streams every archived record to fn in ascending point order,
// stopping at the first error.
func (a *Archive) Iter(fn func(*Record) error) error {
	for _, idx := range a.Indices() {
		rec, err := a.Read(idx)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}
