//go:build !amd64

package mathx

// useSinVector is false off amd64: SinInto runs the scalar fast path.
const useSinVector = false

// sinIntoVector is never called when useSinVector is false.
func sinIntoVector(dst, x *float64, n int) bool { panic("mathx: no vector sine kernel") }
