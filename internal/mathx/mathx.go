// Package mathx provides small numerical helpers shared across the POM
// repository: angle arithmetic, grids, interpolation, and safe floating
// point comparisons. Everything is allocation-conscious and pure.
package mathx

import (
	"errors"
	"math"
)

// TwoPi is 2π, the period of one compute–communicate cycle in phase space.
const TwoPi = 2 * math.Pi

// ErrEmptyInput reports that a slice argument was empty where at least one
// element is required.
var ErrEmptyInput = errors.New("mathx: empty input")

// Sign returns -1, 0 or +1 according to the sign of x. NaN maps to 0.
func Sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// Clamp limits x to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// WrapPi wraps an angle to the half-open interval (-π, π].
func WrapPi(theta float64) float64 {
	w := math.Mod(theta, TwoPi)
	switch {
	case w > math.Pi:
		w -= TwoPi
	case w <= -math.Pi:
		w += TwoPi
	}
	return w
}

// Wrap2Pi wraps an angle to the half-open interval [0, 2π).
func Wrap2Pi(theta float64) float64 {
	w := math.Mod(theta, TwoPi)
	if w < 0 {
		w += TwoPi
	}
	return w
}

// Linspace fills dst with n evenly spaced points from a to b inclusive and
// returns it. If dst is nil or too short a new slice is allocated. n must be
// at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	dst := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range dst {
		dst[i] = a + float64(i)*step
	}
	dst[n-1] = b // avoid accumulated rounding at the right edge
	return dst
}

// AlmostEqual reports whether a and b agree to within tol either absolutely
// or relative to the larger magnitude.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// Lerp linearly interpolates between a and b with parameter t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Interp1 evaluates the piecewise-linear interpolant through (xs, ys) at x.
// xs must be strictly increasing. Outside the domain the boundary value is
// returned (constant extrapolation).
func Interp1(xs, ys []float64, x float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrEmptyInput
	}
	n := len(xs)
	if x <= xs[0] {
		return ys[0], nil
	}
	if x >= xs[n-1] {
		return ys[n-1], nil
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return Lerp(ys[lo], ys[hi], t), nil
}

// MaxAbs returns the maximum absolute value in xs, or 0 for empty input.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// MinMax returns the minimum and maximum of xs. It returns ErrEmptyInput
// for an empty slice.
//
//pomvet:allocfree
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptyInput
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Sum returns the Kahan-compensated sum of xs. Compensated summation keeps
// long accumulations (phase averages over many solver steps) accurate.
func Sum(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Norm2 returns the Euclidean norm of xs with overflow-safe scaling.
func Norm2(xs []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range xs {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum norm of xs.
func NormInf(xs []float64) float64 { return MaxAbs(xs) }

// ScaledNorm returns the RMS norm of err scaled component-wise by
// tol_i = atol + rtol*max(|y0_i|, |y1_i|), the standard error norm used by
// adaptive ODE step controllers (Hairer–Nørsett–Wanner II.4).
//
//pomvet:allocfree
func ScaledNorm(errv, y0, y1 []float64, atol, rtol float64) float64 {
	n := len(errv)
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		sc := atol + rtol*math.Max(math.Abs(y0[i]), math.Abs(y1[i]))
		e := errv[i] / sc
		s += e * e
	}
	return math.Sqrt(s / float64(n))
}

// Unwrap removes 2π jumps from a phase sequence in place and returns it,
// mirroring numpy.unwrap. The first element is unchanged.
func Unwrap(theta []float64) []float64 {
	if len(theta) < 2 {
		return theta
	}
	offset := 0.0
	prev := theta[0]
	for i := 1; i < len(theta); i++ {
		raw := theta[i]
		d := raw - prev
		if d > math.Pi {
			offset -= TwoPi * math.Ceil((d-math.Pi)/TwoPi)
		} else if d < -math.Pi {
			offset += TwoPi * math.Ceil((-d-math.Pi)/TwoPi)
		}
		prev = raw
		theta[i] = raw + offset
	}
	return theta
}

// Diff fills dst with the first differences of xs (len(xs)-1 values) and
// returns it. A nil dst allocates.
func Diff(dst, xs []float64) []float64 {
	if len(xs) < 2 {
		return dst[:0]
	}
	if cap(dst) < len(xs)-1 {
		dst = make([]float64, len(xs)-1)
	}
	dst = dst[:len(xs)-1]
	for i := 1; i < len(xs); i++ {
		dst[i-1] = xs[i] - xs[i-1]
	}
	return dst
}

// ArgMax returns the index of the largest element of xs, or -1 when empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of xs, or -1 when empty.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
