package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSign(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{3.2, 1}, {-0.1, -1}, {0, 0}, {math.Inf(1), 1}, {math.Inf(-1), -1},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Sign(c.in); got != c.want {
			t.Errorf("Sign(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestClampPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	Clamp(0, 2, 1)
}

func TestWrapPiRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		w := WrapPi(x)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrap2PiRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		w := Wrap2Pi(x)
		return w >= 0 && w < TwoPi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapPiIdentityOnPrincipal(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 1, 3} {
		if got := WrapPi(x); math.Abs(got-x) > 1e-12 {
			t.Errorf("WrapPi(%v) = %v, want identity", x, got)
		}
	}
}

func TestWrapEquivalenceModulo(t *testing.T) {
	// Wrapped angle must differ from the original by a multiple of 2π.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			return true
		}
		k := (x - WrapPi(x)) / TwoPi
		return math.Abs(k-math.Round(k)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Error("right endpoint must be exact")
	}
}

func TestInterp1(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 0}
	got, err := Interp1(xs, ys, 0.5)
	if err != nil || got != 5 {
		t.Errorf("Interp1 mid = %v, %v", got, err)
	}
	got, _ = Interp1(xs, ys, -1)
	if got != 0 {
		t.Errorf("left extrapolation = %v", got)
	}
	got, _ = Interp1(xs, ys, 3)
	if got != 0 {
		t.Errorf("right extrapolation = %v", got)
	}
	if _, err := Interp1(nil, nil, 0); err == nil {
		t.Error("want error for empty input")
	}
}

func TestInterp1HitsKnots(t *testing.T) {
	xs := Linspace(0, 10, 11)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	for i, x := range xs {
		got, err := Interp1(xs, ys, x)
		if err != nil || math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("knot %d: got %v want %v", i, got, ys[i])
		}
	}
}

func TestKahanSum(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	xs := make([]float64, 0, 10_000_001)
	xs = append(xs, 1)
	for i := 0; i < 10_000_000; i++ {
		xs = append(xs, 1e-16)
	}
	got := Sum(xs)
	want := 1 + 1e-9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Kahan Sum = %.18f, want %.18f", got, want)
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	xs := []float64{1e300, 1e300}
	got := Norm2(xs)
	want := math.Sqrt2 * 1e300
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestNorm2MatchesNaive(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		xs := []float64{a, b, c}
		naive := math.Sqrt(a*a + b*b + c*c)
		return AlmostEqual(Norm2(xs), naive, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledNorm(t *testing.T) {
	errv := []float64{1e-7, 1e-7}
	y := []float64{1, 1}
	got := ScaledNorm(errv, y, y, 1e-8, 1e-7)
	// scale = 1e-8 + 1e-7 = 1.08e-7 per component; err/scale ≈ 0.9259
	want := 1e-7 / (1e-8 + 1e-7)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ScaledNorm = %v, want %v", got, want)
	}
	if ScaledNorm(nil, nil, nil, 1, 1) != 0 {
		t.Error("empty ScaledNorm must be 0")
	}
}

func TestUnwrapMonotone(t *testing.T) {
	// A linearly growing phase sampled after wrapping must unwrap back to
	// (a shifted copy of) the line.
	n := 200
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = WrapPi(0.3 * float64(i))
	}
	un := Unwrap(raw)
	for i := 1; i < n; i++ {
		d := un[i] - un[i-1]
		if math.Abs(d-0.3) > 1e-9 {
			t.Fatalf("step %d: unwrapped increment %v, want 0.3", i, d)
		}
	}
}

func TestDiff(t *testing.T) {
	d := Diff(nil, []float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(d) != len(want) {
		t.Fatalf("len = %d", len(d))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Diff[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if got := Diff(nil, []float64{1}); len(got) != 0 {
		t.Error("Diff of single element must be empty")
	}
}

func TestArgMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 2}
	if ArgMax(xs) != 2 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty ArgMax/ArgMin must be -1")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{2, -5, 9})
	if err != nil || lo != -5 || hi != 9 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("want error on empty")
	}
}

func TestMeanAndMaxAbs(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean failed")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if MaxAbs([]float64{-4, 3}) != 4 {
		t.Error("MaxAbs failed")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(2, 4, 0.5) != 3 {
		t.Error("Lerp midpoint")
	}
	if Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Error("Lerp endpoints")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-12) {
		t.Error("relative equality failed")
	}
	if AlmostEqual(1, 2, 1e-12) {
		t.Error("unequal values compared equal")
	}
	if !AlmostEqual(0, 0, 0) {
		t.Error("exact equality failed")
	}
}
