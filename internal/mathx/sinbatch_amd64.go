//go:build amd64

package mathx

import "math"

// useSinVector gates the packed AVX2 sine kernel; it requires the CPU to
// support AVX2 and the OS to have enabled YMM state.
var useSinVector = sinHasAVX2()

// sinVecTab is the broadcast float64 constant table of the packed kernel
// (each constant repeated across one 32-byte lane group). The offsets are
// hard-coded in sinbatch_amd64.s — keep the order in sync.
var sinVecTab [20 * 4]float64

// sinVecTabI32 holds the packed int32 constants for the octant logic,
// 16-byte groups: [1 1 1 1], [7 7 7 7], [3 3 3 3], [2 2 2 2].
var sinVecTabI32 = [16]int32{
	1, 1, 1, 1,
	7, 7, 7, 7,
	3, 3, 3, 3,
	2, 2, 2, 2,
}

func init() {
	scalars := [20]float64{
		4 / math.Pi,
		sinPI4A, sinPI4B, sinPI4C,
		sinCoeff[0], sinCoeff[1], sinCoeff[2], sinCoeff[3], sinCoeff[4], sinCoeff[5],
		cosCoeff[0], cosCoeff[1], cosCoeff[2], cosCoeff[3], cosCoeff[4], cosCoeff[5],
		0.5,
		1.0,
		math.Float64frombits(0x7FFFFFFFFFFFFFFF), // abs mask
		sinReduceThreshold,
	}
	for i, s := range scalars {
		for l := 0; l < 4; l++ {
			sinVecTab[i*4+l] = s
		}
	}
}

// sinIntoVector evaluates n (a multiple of 4) sines with the packed AVX2
// kernel. Per lane it performs exactly the scalar operation sequence
// (multiply/add/subtract, no FMA), so results are bit-identical to the
// scalar fast path. It reports true when every lane stayed inside the
// fast reduction range; otherwise the caller must patch the out-of-range
// elements with math.Sin (their dst lanes hold garbage).
//
//go:noescape
func sinIntoVector(dst, x *float64, n int) bool

// sinHasAVX2 reports AVX2 plus OS-enabled YMM state via CPUID/XGETBV.
func sinHasAVX2() bool
