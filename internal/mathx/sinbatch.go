package mathx

import "math"

// Batched sine evaluation for the oscillator model's hot path.
//
// SinInto replicates the portable Cephes algorithm of math.Sin (Cody–Waite
// three-part π/4 range reduction plus the classic sin/cos minimax
// polynomials). On amd64 with AVX2 the packed kernel in sinbatch_amd64.s
// evaluates four lanes per iteration with exactly the scalar operation
// sequence per lane (multiply/add/subtract only, no FMA contraction), so
// results are bit-for-bit identical to math.Sin's portable path; elsewhere
// a straight-line scalar loop with the same property runs. Arguments
// outside the fast reduction range (|x| ≥ 2²⁹) plus NaN/±Inf fall back to
// math.Sin itself in a patch pass.

// Pi/4 split into three parts for extended-precision modular arithmetic,
// and the polynomial coefficients, from Cephes cmath (Moshier), as used
// by the Go standard library.
const (
	sinPI4A = 7.85398125648498535156e-1  // 0x3fe921fb40000000
	sinPI4B = 3.77489470793079817668e-8  // 0x3e64442d00000000
	sinPI4C = 2.69515142907905952645e-15 // 0x3ce8469898cc5170

	// sinReduceThreshold is the maximum |x| the Cody–Waite reduction
	// handles; beyond it math.Sin's Payne–Hanek path takes over.
	sinReduceThreshold = 1 << 29
)

var sinCoeff = [...]float64{
	1.58962301576546568060e-10,
	-2.50507477628578072866e-8,
	2.75573136213857245213e-6,
	-1.98412698295895385996e-4,
	8.33333333332211858878e-3,
	-1.66666666666666307295e-1,
}

var cosCoeff = [...]float64{
	-1.13585365213876817300e-11,
	2.08757008419747316778e-9,
	-2.75573141792967388112e-7,
	2.48015872888517045348e-5,
	-1.38888888888730564116e-3,
	4.16666666666665929218e-2,
}

// SinInto writes sin(x[i]) into dst[i] for every i. dst and x must have
// equal length and may alias.
func SinInto(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mathx: SinInto length mismatch")
	}
	n := len(x)
	i := 0
	clean := true
	if useSinVector && n >= 4 {
		nv := n &^ 3
		clean = sinIntoVector(&dst[0], &x[0], nv)
		i = nv
	}
	needSlow := sinIntoScalar(dst[i:n], x[i:n])
	if !clean || needSlow {
		for i, v := range x {
			if a := math.Abs(v); !(a < sinReduceThreshold) {
				dst[i] = math.Sin(v)
			}
		}
	}
}

// sinIntoScalar is the portable fast path: one straight-line loop, no
// function calls (calls would spill the loop state and stall the
// pipeline). It reports whether any element needs the math.Sin fallback
// (those are left unwritten for the caller's patch pass).
func sinIntoScalar(dst, x []float64) bool {
	dst = dst[:len(x)] // bounds-check elimination hint
	needSlow := false
	for i, v := range x {
		if v == 0 { // preserve ±0 exactly
			dst[i] = v
			continue
		}
		sign := false
		if v < 0 {
			v = -v
			sign = true
		}
		if !(v < sinReduceThreshold) { // also catches NaN and ±Inf
			needSlow = true
			continue
		}
		j := uint64(v * (4 / math.Pi)) // octant of x/(Pi/4)
		y := float64(j)
		if j&1 == 1 { // map zeros to origin
			j++
			y++
		}
		j &= 7
		z := ((v - y*sinPI4A) - y*sinPI4B) - y*sinPI4C
		if j > 3 { // reflect in x axis
			sign = !sign
			j -= 4
		}
		zz := z * z
		var r float64
		if j == 1 || j == 2 {
			r = 1.0 - 0.5*zz + zz*zz*((((((cosCoeff[0]*zz)+cosCoeff[1])*zz+cosCoeff[2])*zz+cosCoeff[3])*zz+cosCoeff[4])*zz+cosCoeff[5])
		} else {
			r = z + z*zz*((((((sinCoeff[0]*zz)+sinCoeff[1])*zz+sinCoeff[2])*zz+sinCoeff[3])*zz+sinCoeff[4])*zz+sinCoeff[5])
		}
		if sign {
			r = -r
		}
		dst[i] = r
	}
	return needSlow
}
