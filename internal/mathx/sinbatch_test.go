package mathx

import (
	"math"
	"testing"
)

// TestSinIntoMatchesMathSin asserts bitwise agreement with math.Sin over
// dense sweeps of the ranges the oscillator model produces (phase
// differences within a few hundred radians), the reduction corners, and
// the special cases.
func TestSinIntoMatchesMathSin(t *testing.T) {
	var xs []float64
	for x := -700.0; x <= 700.0; x += 0.0137 {
		xs = append(xs, x)
	}
	corners := []float64{
		0, math.Copysign(0, -1), 1e-300, -1e-300,
		math.Pi / 4, -math.Pi / 4, math.Pi / 2, math.Pi, 2 * math.Pi,
		1 << 28, 1<<29 - 1, 1 << 29, 1 << 30, 1e12, -1e12,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	xs = append(xs, corners...)
	got := make([]float64, len(xs))
	SinInto(got, xs)
	for i, x := range xs {
		want := math.Sin(x)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("SinInto(%g) = %v (bits %#x), math.Sin = %v (bits %#x)",
				x, got[i], math.Float64bits(got[i]), want, math.Float64bits(want))
		}
	}
}

// TestSinIntoAliasing asserts in-place evaluation is supported, including
// the tricky case where out-of-fast-range elements (|x| ≥ 2²⁹, NaN, Inf)
// sit inside vector lane groups: the kernel must not clobber the aliased
// input before the math.Sin patch pass re-reads it.
func TestSinIntoAliasing(t *testing.T) {
	cases := [][]float64{
		{-2, -1, 0, 1, 2},
		{0.1, 1 << 30, 0.2, 0.3, 0.4, -5e12, 0.5, 0.6}, // huge args in lane groups
		{math.NaN(), 1 << 29, math.Inf(1), -0.7, 0.8, math.Inf(-1), 1e300, -1e300},
	}
	for _, src := range cases {
		want := make([]float64, len(src))
		for i, v := range src {
			want[i] = math.Sin(v)
		}
		buf := append([]float64(nil), src...)
		SinInto(buf, buf)
		for i := range buf {
			if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
				t.Fatalf("in-place SinInto(%g) = %v, math.Sin = %v", src[i], buf[i], want[i])
			}
		}
	}
}

func BenchmarkSinInto(b *testing.B) {
	xs := make([]float64, 2048)
	for i := range xs {
		xs[i] = 0.37 * float64(i%157)
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SinInto(dst, xs)
	}
}

func BenchmarkMathSinLoop(b *testing.B) {
	xs := make([]float64, 2048)
	for i := range xs {
		xs[i] = 0.37 * float64(i%157)
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			dst[j] = math.Sin(x)
		}
	}
}
