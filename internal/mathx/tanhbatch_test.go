package mathx

import (
	"math"
	"testing"
)

// TestTanhIntoMatchesMathTanh asserts bitwise agreement with math.Tanh
// over a dense sweep spanning all three algorithm branches (rational,
// exponential, saturated) plus the special cases — the same pin pattern
// as TestSinIntoMatchesMathSin.
func TestTanhIntoMatchesMathTanh(t *testing.T) {
	var xs []float64
	for x := -50.0; x <= 50.0; x += 0.0137 {
		xs = append(xs, x)
	}
	corners := []float64{
		0, math.Copysign(0, -1), 1e-300, -1e-300,
		0.625, -0.625, math.Nextafter(0.625, 0), -math.Nextafter(0.625, 0),
		44.0148459655565, -44.0148459655565, // MAXLOG/2 neighborhood
		44.015, 45, 100, -100, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	xs = append(xs, corners...)
	got := make([]float64, len(xs))
	TanhInto(got, xs)
	for i, x := range xs {
		want := math.Tanh(x)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("TanhInto(%g) = %v (bits %#x), math.Tanh = %v (bits %#x)",
				x, got[i], math.Float64bits(got[i]), want, math.Float64bits(want))
		}
	}
}

// TestTanhIntoAliasing asserts in-place evaluation is supported,
// including mid-range elements interleaved with fast-branch ones: the
// fast branches overwrite aliased inputs with values in [-1, 1], which
// is exactly why the mid-range branch evaluates in place rather than in
// a deferred patch pass (see tanhbatch.go).
func TestTanhIntoAliasing(t *testing.T) {
	cases := [][]float64{
		{-2, -1, 0, 1, 2},
		{0.1, 0.7, 0.2, 5, 0.4, -3, 0.5, 50}, // exp-branch args interleaved
		{math.NaN(), 0.625, math.Inf(1), -0.7, 0.8, math.Inf(-1), 1e300, -1e300},
	}
	for _, src := range cases {
		want := make([]float64, len(src))
		for i, v := range src {
			want[i] = math.Tanh(v)
		}
		buf := append([]float64(nil), src...)
		TanhInto(buf, buf)
		for i := range buf {
			if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
				t.Fatalf("in-place TanhInto(%g) = %v, math.Tanh = %v", src[i], buf[i], want[i])
			}
		}
	}
}

func BenchmarkTanhInto(b *testing.B) {
	// Near-lockstep distribution: the rational branch dominates, as in a
	// synchronizing POM run.
	xs := make([]float64, 2048)
	for i := range xs {
		xs[i] = 0.0006 * float64(i%1024)
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TanhInto(dst, xs)
	}
}

func BenchmarkMathTanhLoop(b *testing.B) {
	xs := make([]float64, 2048)
	for i := range xs {
		xs[i] = 0.0006 * float64(i%1024)
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			dst[j] = math.Tanh(x)
		}
	}
}
