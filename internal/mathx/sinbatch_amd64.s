//go:build amd64

#include "textflag.h"

// func sinIntoVector(dst, x *float64, n int) bool
//
// Packed (4-wide AVX2) Cephes sine: per lane the exact operation sequence
// of the scalar fast path in sinbatch.go — Cody–Waite three-part π/4
// reduction, the sin/cos minimax polynomials, sign/reflection carried as
// XOR masks — using only VMULPD/VADDPD/VSUBPD (no FMA contraction), so
// each lane's result is bit-identical to the scalar code. Lanes with
// |x| ≥ 2²⁹ or NaN/Inf produce garbage that the Go caller patches with
// math.Sin; their occurrence is accumulated into the boolean result
// ("true" = no such lane).
//
// Constant tables (see sinbatch_amd64.go):
//   sinVecTab    float64×4 groups: 0 M4PI, 32 PI4A, 64 PI4B, 96 PI4C,
//                128..288 sin coeffs S0..S5, 320..480 cos coeffs C0..C5,
//                512 0.5, 544 1.0, 576 absMask, 608 reduceThreshold
//   sinVecTabI32 int32×4 groups: 0 [1], 16 [7], 32 [3], 48 [2]
TEXT ·sinIntoVector(SB), NOSPLIT, $0-25
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	LEAQ ·sinVecTab(SB), R8
	LEAQ ·sinVecTabI32(SB), R9

	VMOVUPD 576(R8), Y13     // absMask
	VMOVUPD 608(R8), Y14     // reduce threshold
	VPCMPEQD Y15, Y15, Y15   // okAcc = all ones

	XORQ AX, AX              // element index

loop:
	CMPQ AX, CX
	JGE  done
	VMOVUPD (SI)(AX*8), Y0   // x
	VANDPD  Y13, Y0, Y1      // av = |x|
	VANDNPD Y0, Y13, Y2      // sign = x & ^absMask
	VCMPPD  $0x11, Y14, Y1, Y3 // ok = av < threshold (LT_OQ: NaN -> false)
	VPAND   Y3, Y15, Y15     // okAcc &= ok

	// Octant: j = int32(trunc(av * 4/Pi)); j += j&1; y = float64(j); j &= 7
	VMULPD  0(R8), Y1, Y4
	VCVTTPD2DQY Y4, X5       // j (4 x int32, truncated)
	VMOVDQU 0(R9), X6        // [1 1 1 1]
	VPAND   X6, X5, X7
	VPADDD  X7, X5, X5       // j += j & 1
	VCVTDQ2PD X5, Y4         // y = float64(j), exact (j < 2^30)
	VMOVDQU 16(R9), X6       // [7 7 7 7]
	VPAND   X6, X5, X5       // j &= 7

	// z = ((av - y*PI4A) - y*PI4B) - y*PI4C
	VMULPD  32(R8), Y4, Y6
	VSUBPD  Y6, Y1, Y7
	VMULPD  64(R8), Y4, Y6
	VSUBPD  Y6, Y7, Y7
	VMULPD  96(R8), Y4, Y6
	VSUBPD  Y6, Y7, Y7       // z

	// Reflection: octants 4..7 flip the sign; j &= 3
	VMOVDQU 32(R9), X6       // [3 3 3 3]
	VPCMPGTD X6, X5, X8      // j > 3
	VPMOVSXDQ X8, Y9
	VANDNPD Y9, Y13, Y10     // sign bit where reflected
	VXORPD  Y10, Y2, Y2      // sign ^= reflection
	VPAND   X6, X5, X5       // j &= 3

	VMULPD  Y7, Y7, Y8       // zz = z*z

	// Sine kernel: rs = z + z*zz*((((((S0*zz)+S1)*zz+S2)*zz+S3)*zz+S4)*zz+S5)
	VMULPD  128(R8), Y8, Y10
	VADDPD  160(R8), Y10, Y10
	VMULPD  Y8, Y10, Y10
	VADDPD  192(R8), Y10, Y10
	VMULPD  Y8, Y10, Y10
	VADDPD  224(R8), Y10, Y10
	VMULPD  Y8, Y10, Y10
	VADDPD  256(R8), Y10, Y10
	VMULPD  Y8, Y10, Y10
	VADDPD  288(R8), Y10, Y10
	VMULPD  Y8, Y7, Y11      // z*zz
	VMULPD  Y10, Y11, Y10    // (z*zz)*p
	VADDPD  Y7, Y10, Y10     // rs

	// Cosine kernel: rc = 1.0 - 0.5*zz + zz*zz*((((((C0*zz)+C1)*zz+C2)*zz+C3)*zz+C4)*zz+C5)
	VMULPD  320(R8), Y8, Y11
	VADDPD  352(R8), Y11, Y11
	VMULPD  Y8, Y11, Y11
	VADDPD  384(R8), Y11, Y11
	VMULPD  Y8, Y11, Y11
	VADDPD  416(R8), Y11, Y11
	VMULPD  Y8, Y11, Y11
	VADDPD  448(R8), Y11, Y11
	VMULPD  Y8, Y11, Y11
	VADDPD  480(R8), Y11, Y11
	VMULPD  Y8, Y8, Y12      // zz*zz
	VMULPD  Y11, Y12, Y11    // (zz*zz)*q
	VMULPD  512(R8), Y8, Y12 // 0.5*zz
	VMOVUPD 544(R8), Y6      // 1.0
	VSUBPD  Y12, Y6, Y12     // 1.0 - 0.5*zz
	VADDPD  Y11, Y12, Y11    // rc

	// Select the cosine kernel for octants 1 and 2, then apply the sign.
	VMOVDQU 0(R9), X6        // [1 1 1 1]
	VPCMPEQD X6, X5, X7      // j == 1
	VMOVDQU 48(R9), X6       // [2 2 2 2]
	VPCMPEQD X6, X5, X4      // j == 2
	VPOR    X4, X7, X7
	VPMOVSXDQ X7, Y9
	VANDPD  Y9, Y11, Y11     // rc where cos
	VANDNPD Y10, Y9, Y10     // rs where sin
	VORPD   Y11, Y10, Y10
	VXORPD  Y2, Y10, Y10
	// Lanes outside the fast range keep the original argument (dst may
	// alias x, and the caller's math.Sin patch pass reads it back).
	VANDPD  Y3, Y10, Y10     // result where ok
	VANDNPD Y0, Y3, Y6       // original x where not ok
	VORPD   Y6, Y10, Y10
	VMOVUPD Y10, (DI)(AX*8)

	ADDQ $4, AX
	JMP  loop

done:
	VMOVMSKPD Y15, AX        // 4 bits, one per lane of okAcc
	CMPL AX, $0xF
	SETEQ ret+24(FP)
	VZEROUPPER
	RET

// func sinHasAVX2() bool
TEXT ·sinHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8 // OSXSAVE | AVX
	CMPL R8, $(1<<27 | 1<<28)
	JNE  novec
	XORL CX, CX
	XGETBV
	ANDL $6, AX               // XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  novec
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX          // AVX2
	JZ   novec
	MOVB $1, ret+0(FP)
	RET
novec:
	MOVB $0, ret+0(FP)
	RET
