package mathx

import "math"

// Batched hyperbolic tangent for the synchronizing potential's hot path
// (potential.Tanh's EvalInto), completing the ROADMAP follow-on to the
// batched sine kernel.
//
// TanhInto replicates the portable Cephes algorithm of math.Tanh (the
// Cody–Waite rational x + x³·P(x²)/Q(x²) for |x| < 0.625, saturation to
// ±1 beyond log(2¹²⁷)/2) as one straight-line loop with no function
// calls, so results are bit-for-bit identical to per-element math.Tanh.
// The |x| < 0.625 branch — the near-lockstep phase differences that
// dominate synchronizing runs — and the saturated tail are evaluated
// inline; only the mid-range exponential branch (0.625 ≤ |x| ≤ 44) falls
// back to math.Tanh itself, called in place (not in a deferred patch
// pass — see TanhInto for why aliasing rules that out here).

// Rational coefficients from Cephes cmath (Moshier), as used by the Go
// standard library.
var tanhP = [...]float64{
	-9.64399179425052238628e-1,
	-9.92877231001918586564e1,
	-1.61468768441708447952e3,
}

var tanhQ = [...]float64{
	1.12811678491632931402e2,
	2.23548839060100448583e3,
	4.84406305325125486048e3,
}

// tanhSaturate is log(2¹²⁷)/2: beyond it tanh is ±1 to double precision
// (math.Tanh's MAXLOG/2 cutoff).
const tanhSaturate = 8.8029691931113054295988e+01 / 2

// TanhInto writes tanh(x[i]) into dst[i] for every i. dst and x must have
// equal length and may alias (in-place evaluation is legal). The
// mid-range exponential branch calls math.Tanh in place rather than in a
// deferred patch pass: under aliasing the fast branches overwrite their
// inputs with values that themselves land in [0.625, 1], so a re-scan
// could not tell outputs from unprocessed arguments.
func TanhInto(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mathx: TanhInto length mismatch")
	}
	dst = dst[:len(x)] // bounds-check elimination hint
	for i, v := range x {
		z := math.Abs(v)
		switch {
		case z > tanhSaturate: // also ±Inf
			if v < 0 {
				dst[i] = -1
			} else {
				dst[i] = 1
			}
		case z >= 0.625: // mid-range: 1 − 2/(e²ᶻ+1) needs Exp
			dst[i] = math.Tanh(v)
		default: // covers NaN (both range checks fail; the rational is NaN)
			if v == 0 {
				dst[i] = v // preserve ±0 exactly
				continue
			}
			s := v * v
			dst[i] = v + v*s*((tanhP[0]*s+tanhP[1])*s+tanhP[2])/(((s+tanhQ[0])*s+tanhQ[1])*s+tanhQ[2])
		}
	}
}
