// Package linstab performs linear stability analysis of the physical
// oscillator model's steady states — the tool for the paper's §6 open
// question of whether the symmetry-breaking transition of bottlenecked
// programs is connected to a Goldstone mode.
//
// Linearizing Eq. (2) around a frequency-locked state θ* (all oscillators
// advancing at a common rate, constant gaps) gives δθ' = J·δθ with
//
//	J_ij = k·T_ij·V'(θ*_j − θ*_i)   (i ≠ j),
//	J_ii = −k·Σ_j T_ij·V'(θ*_j − θ*_i),
//
// where k is the effective per-partner coupling. For odd potentials V the
// derivative V' is even, so J is symmetric whenever the topology is; its
// spectrum classifies the state:
//
//   - all eigenvalues < 0 except a single zero → linearly stable, with the
//     zero eigenvalue the global phase shift (the Goldstone mode of the
//     broken time-translation/phase symmetry);
//   - any positive eigenvalue → unstable (lockstep under the
//     desynchronizing potential).
//
// Eigenvalues are computed with the cyclic Jacobi rotation method —
// slow but simple, robust, and exact enough for the N ≤ a-few-hundred
// systems of interest.
package linstab

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/potential"
	"repro/internal/topology"
)

// DerivStep is the central-difference step used to evaluate V'.
const DerivStep = 1e-6

// Jacobian builds the linearization of the POM around the phase
// configuration theta. k is the effective per-partner coupling
// (Model.Coupling()). The topology must be symmetric, otherwise the
// Jacobi eigensolver below would not apply; asymmetric stencils return an
// error.
func Jacobian(tp *topology.Topology, pot potential.Potential, theta []float64, k float64) (*linalg.Dense, error) {
	if tp == nil || pot == nil {
		return nil, errors.New("linstab: nil topology or potential")
	}
	n := tp.N
	if len(theta) != n {
		return nil, fmt.Errorf("linstab: theta has %d entries, topology %d", len(theta), n)
	}
	if !tp.IsSymmetric() {
		return nil, errors.New("linstab: topology must be symmetric for spectral analysis")
	}
	dV := func(d float64) float64 {
		return (pot.Eval(d+DerivStep) - pot.Eval(d-DerivStep)) / (2 * DerivStep)
	}
	j := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		var diag float64
		tp.T.Row(i, func(jj int, v float64) {
			w := k * v * dV(theta[jj]-theta[i])
			j.Set(i, jj, w)
			diag -= w
		})
		j.Set(i, i, diag)
	}
	return j, nil
}

// SymEig computes all eigenvalues of a symmetric matrix with the cyclic
// Jacobi method, returned in ascending order. It returns an error when
// the matrix is not square or not symmetric (tolerance scaled to the
// matrix norm), or when the iteration fails to converge.
func SymEig(m *linalg.Dense) ([]float64, error) {
	r, c := m.Dims()
	if r != c {
		return nil, errors.New("linstab: matrix not square")
	}
	scale := m.Frobenius()
	if !m.IsSymmetric(1e-9 * math.Max(scale, 1)) {
		return nil, errors.New("linstab: matrix not symmetric")
	}
	a := m.Clone()
	n := r
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-12*math.Max(scale, 1) {
			eigs := make([]float64, n)
			for i := range eigs {
				eigs[i] = a.At(i, i)
			}
			sort.Float64s(eigs)
			return eigs, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				// Rotation angle (Golub & Van Loan §8.5).
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				// Apply the rotation to rows/cols p and q.
				for i := 0; i < n; i++ {
					aip, aiq := a.At(i, p), a.At(i, q)
					a.Set(i, p, cth*aip-sth*aiq)
					a.Set(i, q, sth*aip+cth*aiq)
				}
				for i := 0; i < n; i++ {
					api, aqi := a.At(p, i), a.At(q, i)
					a.Set(p, i, cth*api-sth*aqi)
					a.Set(q, i, sth*api+cth*aqi)
				}
			}
		}
	}
	return nil, errors.New("linstab: Jacobi iteration did not converge")
}

// Classification summarizes the stability of a steady state.
type Classification struct {
	// Eigenvalues in ascending order.
	Eigenvalues []float64
	// ZeroModes counts eigenvalues with |λ| ≤ ZeroTol·scale: the neutral
	// directions. A frequency-locked POM state always has at least one —
	// the uniform phase shift.
	ZeroModes int
	// Unstable counts strictly positive eigenvalues.
	Unstable int
	// Stable reports Unstable == 0 and ZeroModes == 1: linearly stable up
	// to the Goldstone mode.
	Stable bool
	// MaxEigenvalue is the largest eigenvalue (growth rate of the most
	// unstable mode, or the slowest relaxation rate when negative).
	MaxEigenvalue float64
}

// ZeroTol is the relative tolerance classifying an eigenvalue as a zero
// mode.
const ZeroTol = 1e-7

// Classify computes and classifies the spectrum of the POM linearization
// around theta.
func Classify(tp *topology.Topology, pot potential.Potential, theta []float64, k float64) (*Classification, error) {
	j, err := Jacobian(tp, pot, theta, k)
	if err != nil {
		return nil, err
	}
	eigs, err := SymEig(j)
	if err != nil {
		return nil, err
	}
	scale := math.Max(j.Frobenius(), 1e-30)
	cl := &Classification{Eigenvalues: eigs}
	for _, l := range eigs {
		switch {
		case math.Abs(l) <= ZeroTol*scale:
			cl.ZeroModes++
		case l > 0:
			cl.Unstable++
		}
	}
	cl.MaxEigenvalue = eigs[len(eigs)-1]
	cl.Stable = cl.Unstable == 0 && cl.ZeroModes == 1
	return cl, nil
}

// LockstepState returns the synchronized configuration θ = 0.
func LockstepState(n int) []float64 { return make([]float64, n) }

// WavefrontState returns the uniform-gap configuration θ_i = i·gap — the
// developed computational wavefront when gap is the potential's stable
// zero.
func WavefrontState(n int, gap float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * gap
	}
	return out
}
