package linstab

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/potential"
	"repro/internal/topology"
)

func TestSymEigDiagonal(t *testing.T) {
	m, _ := linalg.NewDenseFrom([][]float64{
		{3, 0, 0}, {0, -1, 0}, {0, 0, 7},
	})
	eigs, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 3, 7}
	for i := range want {
		if math.Abs(eigs[i]-want[i]) > 1e-10 {
			t.Errorf("eig[%d] = %v, want %v", i, eigs[i], want[i])
		}
	}
}

func TestSymEig2x2Analytic(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m, _ := linalg.NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	eigs, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eigs[0]-1) > 1e-10 || math.Abs(eigs[1]-3) > 1e-10 {
		t.Errorf("eigs = %v, want [1 3]", eigs)
	}
}

func TestSymEigRingLaplacian(t *testing.T) {
	// The N-ring Laplacian (diag 2, neighbors −1) has eigenvalues
	// 2 − 2cos(2πk/N), k = 0…N−1.
	n := 8
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2)
		m.Set(i, (i+1)%n, -1)
		m.Set(i, (i-1+n)%n, -1)
	}
	eigs, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for k := 0; k < n; k++ {
		want = append(want, 2-2*math.Cos(2*math.Pi*float64(k)/float64(n)))
	}
	// Sort analytic values.
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[j] < want[i] {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	for i := range want {
		if math.Abs(eigs[i]-want[i]) > 1e-9 {
			t.Errorf("eig[%d] = %v, want %v", i, eigs[i], want[i])
		}
	}
}

func TestSymEigRejectsNonSymmetric(t *testing.T) {
	m, _ := linalg.NewDenseFrom([][]float64{{1, 2}, {0, 1}})
	if _, err := SymEig(m); err == nil {
		t.Error("want error for non-symmetric input")
	}
	r := linalg.NewDense(2, 3)
	if _, err := SymEig(r); err == nil {
		t.Error("want error for non-square input")
	}
}

func TestJacobianValidation(t *testing.T) {
	tp, _ := topology.NextNeighbor(6, true)
	if _, err := Jacobian(nil, potential.Tanh{}, make([]float64, 6), 1); err == nil {
		t.Error("want nil-topology error")
	}
	if _, err := Jacobian(tp, potential.Tanh{}, make([]float64, 4), 1); err == nil {
		t.Error("want length-mismatch error")
	}
	asym, _ := topology.NextPlusNextNext(6, true)
	if _, err := Jacobian(asym, potential.Tanh{}, make([]float64, 6), 1); err == nil {
		t.Error("want asymmetric-topology error")
	}
}

func TestLockstepStableUnderTanh(t *testing.T) {
	// Synchronized state, tanh potential: stable with exactly one zero
	// mode (the global phase shift).
	tp, _ := topology.NextNeighbor(12, true)
	cl, err := Classify(tp, potential.Tanh{}, LockstepState(12), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Stable {
		t.Errorf("lockstep+tanh must be stable: %+v", cl)
	}
	if cl.ZeroModes != 1 {
		t.Errorf("zero modes = %d, want 1", cl.ZeroModes)
	}
	if cl.Unstable != 0 {
		t.Errorf("unstable modes = %d", cl.Unstable)
	}
}

func TestLockstepUnstableUnderDesync(t *testing.T) {
	// Synchronized state, desynchronizing potential: V'(0) < 0 flips the
	// Laplacian sign — every non-uniform mode grows (§5.2.2: "any slight
	// disturbance blows up").
	tp, _ := topology.NextNeighbor(12, true)
	cl, err := Classify(tp, potential.NewDesync(1.5), LockstepState(12), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Stable {
		t.Error("lockstep+desync must be unstable")
	}
	if cl.Unstable != 11 { // all modes except the phase shift
		t.Errorf("unstable modes = %d, want 11", cl.Unstable)
	}
	if cl.MaxEigenvalue <= 0 {
		t.Errorf("max eigenvalue = %v, want > 0", cl.MaxEigenvalue)
	}
}

func TestWavefrontStableWithGoldstoneMode(t *testing.T) {
	// The developed computational wavefront (gaps at 2σ/3) under the
	// desynchronizing potential: linearly stable with exactly one zero
	// eigenvalue — the Goldstone mode of the broken symmetry. This is the
	// answer to the paper's §6 open question within the model.
	sigma := 1.5
	pot := potential.NewDesync(sigma)
	tp, _ := topology.NextNeighbor(16, false) // open chain admits the tilt
	state := WavefrontState(16, pot.StableZero())
	cl, err := Classify(tp, pot, state, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Stable {
		t.Errorf("wavefront must be stable: unstable=%d zeros=%d max=%v",
			cl.Unstable, cl.ZeroModes, cl.MaxEigenvalue)
	}
	if cl.ZeroModes != 1 {
		t.Errorf("Goldstone count = %d, want exactly 1", cl.ZeroModes)
	}
}

func TestWavefrontUnstableAtWrongGap(t *testing.T) {
	// A tilt at the potential's *unstable* zero (the origin-side branch,
	// e.g. gap = 4σ/3 where V' < 0 inside the horizon… use a gap inside
	// (0, 2σ/3) region where V' < 0 at ±gap) must be unstable.
	sigma := 1.5
	pot := potential.NewDesync(sigma)
	tp, _ := topology.NextNeighbor(12, false)
	// gap = 0.2: V'(0.2) < 0 (still on the descending branch).
	cl, err := Classify(tp, pot, WavefrontState(12, 0.2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Unstable == 0 {
		t.Error("tilt on the repulsive branch must be unstable")
	}
}

func TestRelaxationRateGrowsWithCoupling(t *testing.T) {
	tp, _ := topology.NextNeighbor(10, true)
	rate := func(k float64) float64 {
		cl, err := Classify(tp, potential.Tanh{}, LockstepState(10), k)
		if err != nil {
			t.Fatal(err)
		}
		// Slowest non-zero relaxation rate: second-largest eigenvalue.
		return -cl.Eigenvalues[len(cl.Eigenvalues)-2]
	}
	if !(rate(4) > rate(1)) {
		t.Errorf("relaxation rate must grow with coupling: %v vs %v", rate(4), rate(1))
	}
}

func TestClassifyKuramotoLockstep(t *testing.T) {
	// sin potential at lockstep behaves like tanh (V'(0) = 1): stable.
	tp, _ := topology.NextNeighbor(8, true)
	cl, err := Classify(tp, potential.KuramotoSine{}, LockstepState(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Stable {
		t.Error("Kuramoto lockstep with identical frequencies must be stable")
	}
}

func TestWavefrontStateHelper(t *testing.T) {
	s := WavefrontState(4, 0.5)
	want := []float64{0, 0.5, 1, 1.5}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("state[%d] = %v", i, s[i])
		}
	}
}
