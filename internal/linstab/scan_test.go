package linstab

import (
	"math"
	"testing"

	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/topology"
)

// gapScan builds the canonical scan: the wavefront state's uniform gap
// swept from lockstep (0) to the desync potential's stable zero.
func gapScan(t *testing.T, points int, tEnd float64) (*Scan, *topology.Topology, potential.Potential) {
	t.Helper()
	tp, err := topology.NextNeighbor(16, false)
	if err != nil {
		t.Fatal(err)
	}
	pot := potential.NewDesync(1.5)
	eval := func(u float64) ([]float64, error) {
		cl, err := Classify(tp, pot, WavefrontState(tp.N, u), 1)
		if err != nil {
			return nil, err
		}
		return SummaryRow(cl), nil
	}
	s, err := NewScan(eval, 0, pot.StableZero(), points, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	return s, tp, pot
}

// TestNewScanValidation covers the constructor error paths.
func TestNewScanValidation(t *testing.T) {
	ok := func(u float64) ([]float64, error) { return []float64{u}, nil }
	cases := []struct {
		name string
		call func() (*Scan, error)
	}{
		{"nil eval", func() (*Scan, error) { return NewScan(nil, 0, 1, 5, 1) }},
		{"one point", func() (*Scan, error) { return NewScan(ok, 0, 1, 1, 1) }},
		{"empty range", func() (*Scan, error) { return NewScan(ok, 1, 1, 5, 1) }},
		{"reversed range", func() (*Scan, error) { return NewScan(ok, 2, 1, 5, 1) }},
		{"NaN range", func() (*Scan, error) { return NewScan(ok, math.NaN(), 1, 5, 1) }},
		{"zero tEnd", func() (*Scan, error) { return NewScan(ok, 0, 1, 5, 0) }},
		{"width change", func() (*Scan, error) {
			n := 0
			return NewScan(func(u float64) ([]float64, error) {
				n++
				return make([]float64, n), nil
			}, 0, 1, 3, 1)
		}},
		{"non-finite value", func() (*Scan, error) {
			return NewScan(func(u float64) ([]float64, error) {
				return []float64{math.Inf(1)}, nil
			}, 0, 1, 3, 1)
		}},
	}
	for _, c := range cases {
		if _, err := c.call(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestScanReplaysClassification integrates the scan through the unified
// runtime and checks every sample row against a direct classification at
// the corresponding parameter: the replay is the scan, to solver
// accuracy, and the stability transition (lockstep unstable → wavefront
// stable under the desync potential) is visible in the streamed rows.
func TestScanReplaysClassification(t *testing.T) {
	const points, tEnd = 41, 1.0
	s, tp, pot := gapScan(t, points, tEnd)
	if s.Dim() != 3 {
		t.Fatalf("summary scan dim = %d, want 3", s.Dim())
	}

	res, err := sim.Run(s, tEnd, points) // samples aligned with knots
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range res.Ys {
		u := s.Param(res.Ts[k])
		cl, err := Classify(tp, pot, WavefrontState(tp.N, u), 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := SummaryRow(cl)
		for i := range ref {
			if math.Abs(row[i]-ref[i]) > 1e-4 {
				t.Fatalf("sample %d field %d: replay %v, direct %v", k, i, row[i], ref[i])
			}
		}
	}

	// Physics: lockstep is unstable (all non-Goldstone modes grow),
	// the developed wavefront at the stable zero is stable.
	first, last := res.Ys[0], res.Ys[len(res.Ys)-1]
	if first[1] != float64(tp.N-1) {
		t.Errorf("lockstep unstable count = %v, want %d", first[1], tp.N-1)
	}
	if math.Round(last[1]) != 0 {
		t.Errorf("wavefront unstable count = %v, want 0", last[1])
	}
	if first[0] <= 0 || last[0] > 1e-7 {
		t.Errorf("max eigenvalue: lockstep %v (want > 0), wavefront %v (want <= 0)", first[0], last[0])
	}
}

// TestScanFullSpectrumRows checks a full-spectrum scan: rows are the
// ascending eigenvalues, and the replayed initial state is exact.
func TestScanFullSpectrumRows(t *testing.T) {
	tp, err := topology.NextNeighbor(8, false)
	if err != nil {
		t.Fatal(err)
	}
	pot := potential.Tanh{}
	eval := func(u float64) ([]float64, error) {
		j, err := Jacobian(tp, pot, WavefrontState(tp.N, u), 1)
		if err != nil {
			return nil, err
		}
		return SymEig(j)
	}
	s, err := NewScan(eval, 0, 0.5, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 8 {
		t.Fatalf("dim = %d", s.Dim())
	}
	direct, err := eval(0)
	if err != nil {
		t.Fatal(err)
	}
	y0 := s.InitialState()
	for i := range direct {
		if math.Float64bits(y0[i]) != math.Float64bits(direct[i]) {
			t.Fatalf("initial spectrum differs at %d", i)
		}
	}
	for i := 1; i < len(y0); i++ {
		if y0[i] < y0[i-1] {
			t.Fatal("spectrum rows must be ascending")
		}
	}
}
