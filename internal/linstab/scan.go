package linstab

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Scan is a linear-stability parameter scan packaged as a sim.System, so
// eigenvalue studies ride the same streaming / sweep / archive stack as
// the dynamical families: sweep.RunReduce reduces scans with O(state)
// memory, sweep.RunArchive persists and resumes them, and cmd/pomsim
// runs them from a scenario JSON.
//
// The scan maps run time t ∈ [0, tEnd] linearly onto the scanned
// parameter u ∈ [From, To]. The per-knot rows (the eigen-threshold
// summary [λ_max, #unstable, #zero-modes], or the full ascending
// spectrum) are precomputed on a uniform knot grid by NewScan; the
// System replays their piecewise-linear interpolant through the ODE
// runtime by exposing the exact piecewise-constant derivative. Knots are
// where the physics happens — the eigensolves run once, at Build time —
// and the replay reproduces the interpolant to ~1e-5 absolute (solver
// quadrature across the derivative jumps at knots; see Solver). The
// initial row is exact by construction.
type Scan struct {
	from, to float64
	tEnd     float64
	h        float64     // knot spacing in t
	vals     [][]float64 // vals[k] is the row at knot k
}

// NewScan precomputes a scan: eval is called at points uniform values of
// the scan parameter u from from to to (inclusive) and must return rows
// of a fixed width. tEnd is the run length the scan is replayed over
// (the scenario layer passes the resolved run control).
func NewScan(eval func(u float64) ([]float64, error), from, to float64, points int, tEnd float64) (*Scan, error) {
	if eval == nil {
		return nil, errors.New("linstab: nil scan evaluator")
	}
	if points < 2 {
		return nil, fmt.Errorf("linstab: scan needs at least 2 points, got %d", points)
	}
	if !(to > from) || math.IsInf(from, 0) || math.IsInf(to, 0) {
		return nil, fmt.Errorf("linstab: scan range [%v, %v] must be finite and increasing", from, to)
	}
	if !(tEnd > 0) || math.IsInf(tEnd, 0) {
		return nil, fmt.Errorf("linstab: scan tEnd must be positive and finite, got %v", tEnd)
	}
	s := &Scan{
		from: from, to: to, tEnd: tEnd,
		h:    tEnd / float64(points-1),
		vals: make([][]float64, points),
	}
	for k := 0; k < points; k++ {
		u := from + (to-from)*float64(k)/float64(points-1)
		if k == points-1 {
			u = to
		}
		row, err := eval(u)
		if err != nil {
			return nil, fmt.Errorf("linstab: scan point %d (u=%v): %w", k, u, err)
		}
		if len(row) == 0 || (k > 0 && len(row) != len(s.vals[0])) {
			return nil, fmt.Errorf("linstab: scan rows must have one fixed nonzero width")
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("linstab: non-finite scan value at point %d", k)
			}
		}
		s.vals[k] = row
	}
	return s, nil
}

// Param returns the scan parameter u corresponding to run time t.
func (s *Scan) Param(t float64) float64 {
	return s.from + (s.to-s.from)*t/s.tEnd
}

// TEnd returns the run length the scan was built for.
func (s *Scan) TEnd() float64 { return s.tEnd }

// Dim implements sim.System.
func (s *Scan) Dim() int { return len(s.vals[0]) }

// InitialState implements sim.System: the row at the scan start.
func (s *Scan) InitialState() []float64 { return s.vals[0] }

// Eval implements sim.System: the derivative of the piecewise-linear
// knot interpolant, constant within each knot interval.
func (s *Scan) Eval(t float64, _, dydt []float64) {
	k := int(t / s.h)
	if k < 0 {
		k = 0
	}
	if k >= len(s.vals)-1 {
		k = len(s.vals) - 2
	}
	lo, hi := s.vals[k], s.vals[k+1]
	for i := range dydt {
		dydt[i] = (hi[i] - lo[i]) / s.h
	}
}

// Solver implements sim.Tuned: the step is capped at a quarter of the
// knot spacing. A derivative jump that falls between two quadrature
// nodes of a step is invisible to the embedded error estimate (both
// orders integrate the same wrong constant), so the cap — not the
// tolerance — is what bounds the per-knot replay error; at h/4 the
// accumulated deviation from the exact interpolant stays ~1e-5 over
// tens of knots.
func (s *Scan) Solver() sim.Solver {
	return sim.Solver{Atol: 1e-9, Rtol: 1e-9, Hmax: s.h / 4}
}

// SummaryRow returns the eigen-threshold summary row of a classified
// state: [λ_max, #unstable, #zero-modes]. This is the 3-wide row layout
// scan systems stream by default.
func SummaryRow(cl *Classification) []float64 {
	return []float64{cl.MaxEigenvalue, float64(cl.Unstable), float64(cl.ZeroModes)}
}
