package ode

import (
	"errors"
	"sort"
)

// Past gives delay-differential right-hand sides access to the solution
// history. Times before the initial time evaluate the prehistory function;
// times inside the integrated range evaluate dense output; times beyond the
// last accepted step extrapolate the final segment (the standard treatment
// of vanishing delays in explicit DDE solvers).
type Past interface {
	// Eval returns state component j at time t.
	Eval(j int, t float64) float64
}

// DelayFunc is the right-hand side of a delay differential equation
// y'(t) = f(t, y(t), y(past)).
type DelayFunc func(t float64, y []float64, past Past, dydt []float64)

// History stores accepted dense segments and the prehistory function. It
// implements Past.
type History struct {
	t0   float64
	pre  func(j int, t float64) float64
	segs []*DenseSegment
	// Pool, when non-nil, receives the segments Compact retires, so the
	// solver can reuse them instead of allocating fresh ones each step.
	Pool *SegmentPool
}

// NewHistory creates a history starting at t0 with the given prehistory
// (used for t <= t0). A nil prehistory holds the initial state constant;
// it must be set before the first Eval via SetPrehistory or Push.
func NewHistory(t0 float64, prehistory func(j int, t float64) float64) *History {
	return &History{t0: t0, pre: prehistory}
}

// SetPrehistory replaces the prehistory function.
func (h *History) SetPrehistory(pre func(j int, t float64) float64) { h.pre = pre }

// Push appends an accepted dense segment. Segments must be contiguous and
// increasing in time.
func (h *History) Push(seg *DenseSegment) { h.segs = append(h.segs, seg) }

// Len returns the number of stored segments.
func (h *History) Len() int { return len(h.segs) }

// End returns the time up to which the history is known.
func (h *History) End() float64 {
	if len(h.segs) == 0 {
		return h.t0
	}
	return h.segs[len(h.segs)-1].End()
}

// Eval implements Past.
func (h *History) Eval(j int, t float64) float64 {
	if t <= h.t0 || len(h.segs) == 0 {
		if h.pre != nil {
			return h.pre(j, t)
		}
		if len(h.segs) > 0 {
			return h.segs[0].EvalComponent(j, h.t0)
		}
		return 0
	}
	// Binary search for the segment containing t; extrapolate the last
	// segment for t beyond the known range (vanishing delay).
	idx := sort.Search(len(h.segs), func(i int) bool { return h.segs[i].End() >= t })
	if idx >= len(h.segs) {
		idx = len(h.segs) - 1
	}
	return h.segs[idx].EvalComponent(j, t)
}

// Compact drops segments that end before tmin, bounding memory for long
// integrations with bounded delays. Dropped segments are recycled through
// the history's Pool when one is attached.
func (h *History) Compact(tmin float64) {
	cut := 0
	for cut < len(h.segs)-1 && h.segs[cut].End() < tmin {
		cut++
	}
	if cut > 0 {
		if h.Pool != nil {
			for _, seg := range h.segs[:cut] {
				h.Pool.Put(seg)
			}
		}
		h.segs = append(h.segs[:0], h.segs[cut:]...)
	}
}

// DDEOptions configures SolveDDE. Sample plans are validated exactly
// like SolveOptions: strictly increasing times inside [t0, t1] and a
// nonnegative NSamples, or a clear error before integration starts.
type DDEOptions struct {
	// SampleTs requests output at these increasing times.
	SampleTs []float64
	// SampleAt and NSamples define a virtual sample plan; see
	// SolveOptions.SampleAt.
	SampleAt func(k int) float64
	// NSamples is the number of samples SampleAt produces.
	NSamples int
	// SampleFunc streams output rows instead of materializing them; see
	// SolveOptions.SampleFunc.
	SampleFunc func(t float64, y []float64)
	// Prehistory defines y(t) for t <= t0; nil holds y0 constant.
	Prehistory func(j int, t float64) float64
	// MaxDelay, when positive, lets the history discard segments older
	// than t − MaxDelay − safety, bounding memory.
	MaxDelay float64
}

// SolveDDE integrates the delay system y' = f(t, y, past) from t0 to t1
// using the adaptive DOPRI5 core with dense-output history (method of
// steps). Delays need not be constant; state-dependent and vanishing
// delays are handled by dense-output extrapolation of the newest segment.
func (s *DOPRI5) SolveDDE(f DelayFunc, y0 []float64, t0, t1 float64, opt DDEOptions) (*Result, error) {
	if len(y0) == 0 {
		return nil, errors.New("ode: empty state")
	}
	pre := opt.Prehistory
	if pre == nil {
		init := append([]float64(nil), y0...)
		pre = func(j int, _ float64) float64 { return init[j] }
	}
	hist := NewHistory(t0, pre)
	// Segments retired from the bounded history window feed the pool the
	// solver draws fresh segments from: once the window is full the
	// per-step segment cost drops to zero allocations.
	pool := &SegmentPool{}
	hist.Pool = pool
	wrapped := func(t float64, y, dydt []float64) { f(t, y, hist, dydt) }
	res, err := s.Solve(wrapped, y0, t0, t1, SolveOptions{
		SampleTs:   opt.SampleTs,
		SampleAt:   opt.SampleAt,
		NSamples:   opt.NSamples,
		SampleFunc: opt.SampleFunc,
		Pool:       pool,
		OnStep: func(seg *DenseSegment) {
			hist.Push(seg)
			if opt.MaxDelay > 0 {
				hist.Compact(seg.End() - 2*opt.MaxDelay)
			}
		},
	})
	return res, err
}
