package ode

import (
	"errors"
	"math"
)

// EventFunc is a scalar event indicator g(t, y); an event occurs where g
// crosses zero. It must not retain y.
type EventFunc func(t float64, y []float64) float64

// FindRoot locates a zero crossing of g inside the segment by bisection on
// the dense output, to time tolerance tol. It returns the crossing time
// and true when g changes sign across the segment; otherwise false.
func (seg *DenseSegment) FindRoot(g EventFunc, tol float64) (float64, bool) {
	if tol <= 0 {
		tol = 1e-12
	}
	buf := make([]float64, len(seg.rcont[0]))
	eval := func(t float64) float64 { return g(t, seg.Eval(t, buf)) }
	a, b := seg.T0, seg.End()
	fa, fb := eval(a), eval(b)
	switch {
	case fa == 0:
		return a, true
	case fb == 0:
		return b, true
	case fa*fb > 0 || math.IsNaN(fa) || math.IsNaN(fb):
		return 0, false
	}
	for b-a > tol {
		m := (a + b) / 2
		fm := eval(m)
		if fm == 0 {
			return m, true
		}
		if fa*fm < 0 {
			b = m
		} else {
			a, fa = m, fm
		}
	}
	return (a + b) / 2, true
}

// Event is a detected zero crossing.
type Event struct {
	// T is the crossing time.
	T float64
	// Y is the state at the crossing.
	Y []float64
}

// ErrNoEvent reports that the indicator never crossed zero on the
// integration interval.
var ErrNoEvent = errors.New("ode: no event detected")

// SolveUntilEvent integrates y' = f from t0 toward t1 and stops at the
// first zero crossing of g, returning the event and the trajectory up to
// it. When g never crosses zero the full solution is returned along with
// ErrNoEvent. The event time is resolved to tol (0 selects 1e-10·(t1−t0)).
func (s *DOPRI5) SolveUntilEvent(f Func, y0 []float64, t0, t1 float64, g EventFunc, tol float64) (*Event, *Result, error) {
	if g == nil {
		return nil, nil, errors.New("ode: nil event function")
	}
	if tol <= 0 {
		tol = 1e-10 * (t1 - t0)
	}
	var ev *Event
	res, err := s.Solve(f, y0, t0, t1, SolveOptions{
		OnStep: func(seg *DenseSegment) {
			if ev != nil {
				return
			}
			if tr, ok := seg.FindRoot(g, tol); ok {
				ev = &Event{T: tr, Y: seg.Eval(tr, nil)}
			}
		},
	})
	if err != nil {
		return nil, res, err
	}
	if ev == nil {
		return nil, res, ErrNoEvent
	}
	// Trim the recorded trajectory to the event and append the event
	// state as the final sample.
	cut := len(res.Ts)
	for k, t := range res.Ts {
		if t > ev.T {
			cut = k
			break
		}
	}
	res.Ts = append(res.Ts[:cut], ev.T)
	res.Ys = append(res.Ys[:cut], append([]float64(nil), ev.Y...))
	return ev, res, nil
}
