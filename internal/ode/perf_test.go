package ode

import (
	"math"
	"testing"
)

// decayRHS is a small nonlinear test system that keeps the adaptive
// controller stepping at a roughly constant rate.
func decayRHS(t float64, y, dydt []float64) {
	for i := range y {
		dydt[i] = math.Sin(float64(i+1)*0.1) - 0.3*y[i]
	}
}

// solveAllocs returns the allocation count of one Solve over [0, tEnd]
// with nSamples output points.
func solveAllocs(t *testing.T, tEnd float64, nSamples int) float64 {
	t.Helper()
	y0 := make([]float64, 32)
	samples := make([]float64, nSamples)
	for i := range samples {
		samples[i] = tEnd * float64(i+1) / float64(nSamples)
	}
	s := NewDOPRI5(1e-8, 1e-6)
	s.Hmax = 0.25
	var runErr error
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := s.Solve(decayRHS, y0, 0, tEnd, SolveOptions{SampleTs: samples}); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return allocs
}

// ddeAllocs is solveAllocs for the delay path: a constant-lag feedback
// system whose history window stays bounded, so retired segments recycle
// through the pool.
func ddeAllocs(t *testing.T, tEnd float64, nSamples int) float64 {
	t.Helper()
	const tau = 0.5
	f := func(t float64, y []float64, past Past, dydt []float64) {
		for i := range y {
			dydt[i] = -0.5*past.Eval(i, t-tau) + 0.1
		}
	}
	y0 := make([]float64, 16)
	samples := make([]float64, nSamples)
	for i := range samples {
		samples[i] = tEnd * float64(i+1) / float64(nSamples)
	}
	s := NewDOPRI5(1e-8, 1e-6)
	s.Hmax = 0.25
	var runErr error
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := s.SolveDDE(f, y0, 0, tEnd, DDEOptions{SampleTs: samples, MaxDelay: tau}); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return allocs
}

// TestSolveSteadyStateAllocs asserts that accepted DOPRI5 steps cost no
// allocations once the solver scratch is warm: integrating twice as far
// (twice the steps, same sample count) must not allocate more.
func TestSolveSteadyStateAllocs(t *testing.T) {
	base := solveAllocs(t, 50, 64)
	long := solveAllocs(t, 100, 64)
	if long > base {
		t.Fatalf("per-step allocations remain: 50-unit solve %v allocs, 100-unit solve %v allocs",
			base, long)
	}
}

// TestSolveDDESteadyStateAllocs asserts the same for the delay path: with
// a bounded history window, segments recycle through the pool and longer
// integrations allocate nothing extra per step.
func TestSolveDDESteadyStateAllocs(t *testing.T) {
	base := ddeAllocs(t, 50, 64)
	long := ddeAllocs(t, 100, 64)
	if long > base {
		t.Fatalf("per-step allocations remain in DDE path: 50-unit solve %v allocs, 100-unit solve %v allocs",
			base, long)
	}
}
