package ode

import (
	"strings"
	"testing"
)

// Regression tests for sample-plan validation: before the checks, a
// negative NSamples silently disabled the plan (materializing every
// accepted step), a non-increasing SampleAt dropped or duplicated rows,
// and a plan outside [t0, t1] emitted extrapolated garbage — all without
// any error. Each case must now fail fast with a clear message.

func decayRHS1(_ float64, y, dydt []float64) { dydt[0] = -y[0] }

func delayRHS1(_ float64, y []float64, past Past, dydt []float64) {
	dydt[0] = -past.Eval(0, 0)
}

func TestSolveRejectsNegativeNSamples(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-6)
	_, err := s.Solve(decayRHS1, []float64{1}, 0, 1, SolveOptions{
		SampleAt: func(k int) float64 { return float64(k) }, NSamples: -3,
	})
	if err == nil || !strings.Contains(err.Error(), "NSamples") {
		t.Fatalf("err = %v, want a negative-NSamples error", err)
	}
	// Negative NSamples is rejected even without a SampleAt plan: it is
	// always a caller bug, never a way to spell "no plan".
	if _, err := s.Solve(decayRHS1, []float64{1}, 0, 1, SolveOptions{NSamples: -1}); err == nil {
		t.Fatal("negative NSamples without a plan accepted")
	}
}

func TestSolveRejectsNonIncreasingPlan(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-6)
	plateau := []float64{0, 0.5, 0.5, 1}
	if _, err := s.Solve(decayRHS1, []float64{1}, 0, 1, SolveOptions{SampleTs: plateau}); err == nil {
		t.Fatal("plateau SampleTs accepted")
	}
	_, err := s.Solve(decayRHS1, []float64{1}, 0, 1, SolveOptions{
		SampleAt: func(k int) float64 { return 0.5 - 0.1*float64(k) }, NSamples: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "not increasing") {
		t.Fatalf("err = %v, want a non-increasing-plan error", err)
	}
}

func TestSolveRejectsPlanOutsideInterval(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-6)
	cases := []SolveOptions{
		{SampleTs: []float64{-0.5, 0.5}},
		{SampleTs: []float64{0.5, 1.5}},
		{SampleAt: func(k int) float64 { return 2 * float64(k) }, NSamples: 3},
	}
	for i, opt := range cases {
		_, err := s.Solve(decayRHS1, []float64{1}, 0, 1, opt)
		if err == nil || !strings.Contains(err.Error(), "outside") {
			t.Errorf("case %d: err = %v, want an out-of-interval error", i, err)
		}
	}
}

// TestSolveDDEValidatesPlans checks the DDE driver inherits the same
// validation (it delegates to Solve).
func TestSolveDDEValidatesPlans(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-6)
	if _, err := s.SolveDDE(delayRHS1, []float64{1}, 0, 1, DDEOptions{NSamples: -1}); err == nil {
		t.Error("negative NSamples accepted by SolveDDE")
	}
	if _, err := s.SolveDDE(delayRHS1, []float64{1}, 0, 1, DDEOptions{
		SampleTs: []float64{0.5, 0.25},
	}); err == nil {
		t.Error("non-increasing SampleTs accepted by SolveDDE")
	}
	if _, err := s.SolveDDE(delayRHS1, []float64{1}, 0, 1, DDEOptions{
		SampleAt: func(k int) float64 { return 1 + float64(k) }, NSamples: 2,
	}); err == nil {
		t.Error("out-of-interval plan accepted by SolveDDE")
	}
}

// TestSolveAcceptsBoundarySamples pins the valid extreme: samples
// exactly at t0 and t1 remain legal (the uniform grids core builds
// include both endpoints).
func TestSolveAcceptsBoundarySamples(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-6)
	res, err := s.Solve(decayRHS1, []float64{1}, 0, 1, SolveOptions{SampleTs: []float64{0, 0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The t0 sample is recorded by the initial row; the plan then skips it.
	if len(res.Ts) != 3 || res.Ts[0] != 0 || res.Ts[2] != 1 {
		t.Fatalf("Ts = %v", res.Ts)
	}
}
