package ode

import (
	"math"
	"testing"
)

func TestHistoryPrehistoryAndSegments(t *testing.T) {
	hist := NewHistory(0, func(_ int, tt float64) float64 { return 2 * tt })
	if got := hist.Eval(0, -3); got != -6 {
		t.Errorf("prehistory Eval = %v", got)
	}
	if hist.End() != 0 {
		t.Errorf("empty End = %v", hist.End())
	}
	// Integrate y' = 1 and check history interpolation hits the line.
	s := NewDOPRI5(1e-9, 1e-9)
	f := func(_ float64, _, dydt []float64) { dydt[0] = 1 }
	_, err := s.Solve(f, []float64{0}, 0, 2, SolveOptions{
		OnStep: func(seg *DenseSegment) { hist.Push(seg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() == 0 {
		t.Fatal("no segments pushed")
	}
	for _, tt := range []float64{0.1, 0.77, 1.5, 2.0} {
		if got := hist.Eval(0, tt); math.Abs(got-tt) > 1e-8 {
			t.Errorf("Eval(%v) = %v, want %v", tt, got, tt)
		}
	}
	// Extrapolation beyond the last segment continues the line.
	if got := hist.Eval(0, 2.01); math.Abs(got-2.01) > 1e-6 {
		t.Errorf("extrapolated Eval = %v", got)
	}
}

func TestHistoryCompact(t *testing.T) {
	hist := NewHistory(0, nil)
	s := NewDOPRI5(1e-6, 1e-6)
	f := func(_ float64, _, dydt []float64) { dydt[0] = 1 }
	_, err := s.Solve(f, []float64{0}, 0, 10, SolveOptions{
		OnStep: func(seg *DenseSegment) { hist.Push(seg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	before := hist.Len()
	hist.Compact(9.5)
	if hist.Len() >= before && before > 1 {
		t.Errorf("Compact did not drop segments: %d -> %d", before, hist.Len())
	}
	// Recent history must still be valid.
	if got := hist.Eval(0, 9.9); math.Abs(got-9.9) > 1e-6 {
		t.Errorf("post-Compact Eval = %v", got)
	}
}

// TestSolveDDELinear integrates y'(t) = -y(t-1) with constant prehistory
// y(t) = 1 for t <= 0. On [0, 1] the exact solution is y = 1 - t; on
// [1, 2] it is y = 1 - t + (t-1)²/2 (method of steps).
func TestSolveDDELinear(t *testing.T) {
	s := NewDOPRI5(1e-9, 1e-9)
	f := func(tt float64, _ []float64, past Past, dydt []float64) {
		dydt[0] = -past.Eval(0, tt-1)
	}
	res, err := s.SolveDDE(f, []float64{1}, 0, 2, DDEOptions{
		SampleTs: []float64{0.5, 1.0, 1.5, 2.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := func(tt float64) float64 {
		if tt <= 1 {
			return 1 - tt
		}
		return 1 - tt + (tt-1)*(tt-1)/2
	}
	for k, tt := range res.Ts {
		if math.Abs(res.Ys[k][0]-exact(tt)) > 1e-6 {
			t.Errorf("y(%v) = %v, want %v", tt, res.Ys[k][0], exact(tt))
		}
	}
}

// TestSolveDDEZeroDelayMatchesODE checks that a DDE with τ = 0 reproduces
// the plain ODE solution (vanishing-delay extrapolation path).
func TestSolveDDEZeroDelayMatchesODE(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-8)
	f := func(tt float64, y []float64, past Past, dydt []float64) {
		dydt[0] = -past.Eval(0, tt) // τ = 0: reads "now" through history
	}
	res, err := s.SolveDDE(f, []float64{1}, 0, 3, DDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Last()[0], math.Exp(-3); math.Abs(got-want) > 1e-4 {
		t.Errorf("zero-delay DDE y(3) = %v, want %v", got, want)
	}
}

func TestSolveDDEPrehistoryDefault(t *testing.T) {
	// With nil Prehistory the initial state is held constant for t <= t0.
	s := NewDOPRI5(1e-9, 1e-9)
	f := func(tt float64, _ []float64, past Past, dydt []float64) {
		dydt[0] = past.Eval(0, tt-5) // always reads prehistory on [0,2]
	}
	res, err := s.SolveDDE(f, []float64{3}, 0, 2, DDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// y' = 3 constant → y(2) = 3 + 6 = 9.
	if got := res.Last()[0]; math.Abs(got-9) > 1e-7 {
		t.Errorf("y(2) = %v, want 9", got)
	}
}

func TestSolveDDEMaxDelayCompaction(t *testing.T) {
	s := NewDOPRI5(1e-6, 1e-6)
	f := func(tt float64, y []float64, past Past, dydt []float64) {
		dydt[0] = -past.Eval(0, tt-0.5)
	}
	res, err := s.SolveDDE(f, []float64{1}, 0, 50, DDEOptions{MaxDelay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Solution of y' = -y(t-1/2) oscillates with decaying amplitude; it
	// must remain bounded and finite.
	if got := res.Last()[0]; math.IsNaN(got) || math.Abs(got) > 1 {
		t.Errorf("long DDE run diverged: %v", got)
	}
}

func TestSolveDDEEmptyState(t *testing.T) {
	s := NewDOPRI5(1e-6, 1e-6)
	if _, err := s.SolveDDE(func(float64, []float64, Past, []float64) {}, nil, 0, 1, DDEOptions{}); err == nil {
		t.Error("want error for empty state")
	}
}
