package ode

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Dormand–Prince 5(4) Butcher tableau (Hairer, Nørsett, Wanner, Solving
// Ordinary Differential Equations I, Table 5.2) with the first-same-as-last
// (FSAL) property: the 7th stage of an accepted step is the 1st stage of
// the next.
const (
	c2, c3, c4, c5 = 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9

	a21 = 1.0 / 5
	a31 = 3.0 / 40
	a32 = 9.0 / 40
	a41 = 44.0 / 45
	a42 = -56.0 / 15
	a43 = 32.0 / 9
	a51 = 19372.0 / 6561
	a52 = -25360.0 / 2187
	a53 = 64448.0 / 6561
	a54 = -212.0 / 729
	a61 = 9017.0 / 3168
	a62 = -355.0 / 33
	a63 = 46732.0 / 5247
	a64 = 49.0 / 176
	a65 = -5103.0 / 18656
	a71 = 35.0 / 384
	a73 = 500.0 / 1113
	a74 = 125.0 / 192
	a75 = -2187.0 / 6784
	a76 = 11.0 / 84

	// e_i = b5_i − b4_i: coefficients of the embedded error estimate.
	e1 = 71.0 / 57600
	e3 = -71.0 / 16695
	e4 = 71.0 / 1920
	e5 = -17253.0 / 339200
	e6 = 22.0 / 525
	e7 = -1.0 / 40

	// Dense-output coefficients for the 4th-order continuous extension.
	d1 = -12715105075.0 / 11282082432
	d3 = 87487479700.0 / 32700410799
	d4 = -10690763975.0 / 1880347072
	d5 = 701980252875.0 / 199316789632
	d6 = -1453857185.0 / 822651844
	d7 = 69997945.0 / 29380423
)

// DOPRI5 is an adaptive Dormand–Prince 5(4) integrator with dense output.
// The zero value is not usable; call NewDOPRI5.
type DOPRI5 struct {
	// Atol and Rtol are the absolute and relative error tolerances of the
	// embedded error estimate.
	Atol, Rtol float64
	// H0 is the initial step size; 0 selects one automatically.
	H0 float64
	// Hmax caps the step size; 0 means no cap beyond the interval length.
	Hmax float64
	// Hmin rejects the integration when the controller underflows below it.
	Hmin float64
	// MaxSteps aborts runaway integrations.
	MaxSteps int
	// Beta enables the PI stabilization term (0.04–0.08 typical; 0 gives
	// the plain I controller).
	Beta float64

	k1, k2, k3, k4, k5, k6, k7 []float64
	ytmp, yerr                 []float64
	y, ynew, ysmp              []float64

	// scratchSeg is the dense segment reused across steps when the caller
	// does not retain dense output (no KeepDense, OnStep, or Pool).
	scratchSeg DenseSegment
}

// NewDOPRI5 returns an integrator with the given tolerances and sensible
// controller defaults.
func NewDOPRI5(atol, rtol float64) *DOPRI5 {
	return &DOPRI5{Atol: atol, Rtol: rtol, MaxSteps: 10_000_000, Beta: 0.04}
}

// DenseSegment is the continuous extension of one accepted step over
// [T0, T0+H]. Eval provides 4th-order accurate values anywhere inside the
// step (and extrapolates outside, which the DDE driver uses for vanishing
// delays).
type DenseSegment struct {
	T0, H float64
	// rcont holds the five interpolation coefficient vectors, carved out
	// of one shared backing array so a segment costs two allocations at
	// most — and zero when recycled through a SegmentPool.
	rcont   [5][]float64
	backing []float64
}

// reserve sizes the interpolation vectors for dimension n, reusing the
// backing array when it is already large enough.
func (seg *DenseSegment) reserve(n int) {
	if cap(seg.backing) < 5*n {
		seg.backing = make([]float64, 5*n)
	}
	b := seg.backing[:5*n]
	for i := range seg.rcont {
		seg.rcont[i] = b[i*n : (i+1)*n : (i+1)*n]
	}
}

// SegmentPool recycles DenseSegments so long integrations that discard
// old history (the DDE driver's Compact) reach a steady state with no
// per-step allocations. The zero value is ready to use.
type SegmentPool struct{ free []*DenseSegment }

// Get returns a segment sized for dimension n, reusing a recycled one
// when available.
func (p *SegmentPool) Get(n int) *DenseSegment {
	if m := len(p.free); m > 0 {
		seg := p.free[m-1]
		p.free = p.free[:m-1]
		seg.reserve(n)
		return seg
	}
	seg := &DenseSegment{}
	seg.reserve(n)
	return seg
}

// Put returns a segment to the pool. The caller must not use it again.
func (p *SegmentPool) Put(seg *DenseSegment) {
	if seg != nil {
		p.free = append(p.free, seg)
	}
}

// Eval writes the interpolated state at time t into dst and returns it.
//
//pomvet:allocfree
func (seg *DenseSegment) Eval(t float64, dst []float64) []float64 {
	n := len(seg.rcont[0])
	if cap(dst) < n {
		dst = make([]float64, n) //pomvet:allow allocfree first-use resize only; the solver hands pre-sized sample buffers on the steady-state path
	}
	dst = dst[:n]
	th := (t - seg.T0) / seg.H
	th1 := 1 - th
	for i := 0; i < n; i++ {
		dst[i] = seg.rcont[0][i] + th*(seg.rcont[1][i]+th1*(seg.rcont[2][i]+th*(seg.rcont[3][i]+th1*seg.rcont[4][i])))
	}
	return dst
}

// EvalComponent interpolates a single state component at time t.
//
//pomvet:allocfree
func (seg *DenseSegment) EvalComponent(j int, t float64) float64 {
	th := (t - seg.T0) / seg.H
	th1 := 1 - th
	return seg.rcont[0][j] + th*(seg.rcont[1][j]+th1*(seg.rcont[2][j]+th*(seg.rcont[3][j]+th1*seg.rcont[4][j])))
}

// End returns the segment's right endpoint.
func (seg *DenseSegment) End() float64 { return seg.T0 + seg.H }

// SolveOptions configures a DOPRI5 integration run.
type SolveOptions struct {
	// SampleTs requests output at these times (must be strictly
	// increasing and lie in [t0, t1] — validated by Solve); when nil,
	// every accepted step is recorded.
	SampleTs []float64
	// SampleAt, together with NSamples > 0, requests output at the
	// increasing times SampleAt(0) … SampleAt(NSamples−1) without
	// materializing the time grid — the O(1)-memory sample plan streaming
	// consumers pair with SampleFunc. Ignored when SampleTs is set.
	SampleAt func(k int) float64
	// NSamples is the number of samples SampleAt produces.
	NSamples int
	// SampleFunc, when non-nil, streams every output row to the callback
	// instead of materializing it in Result.Ts/Ys: the result carries only
	// the work statistics and the run's memory is independent of the
	// sample count. The y slice is solver-owned and reused between calls;
	// implementations must not retain it.
	SampleFunc func(t float64, y []float64)
	// KeepDense retains all dense segments in the returned result.
	KeepDense bool
	// OnStep, when non-nil, is invoked after every accepted step with the
	// segment for that step (used by the DDE history).
	OnStep func(seg *DenseSegment)
	// Pool, when non-nil, supplies the dense segments handed to OnStep /
	// KeepDense. Pair it with a consumer that recycles retired segments
	// (the DDE history's Compact) to make long runs allocation-free.
	Pool *SegmentPool
}

// Result bundles the solution, work statistics, and (optionally) the dense
// segments of an integration.
type Result struct {
	Solution
	Stats Stats
	Dense []*DenseSegment
}

// ErrStepSizeUnderflow reports that the controller could not meet the
// tolerance with a step above Hmin.
var ErrStepSizeUnderflow = errors.New("ode: step size underflow")

// ErrTooManySteps reports that MaxSteps was exceeded.
var ErrTooManySteps = errors.New("ode: too many steps")

// Solve integrates y' = f(t, y) from t0 to t1 starting at y0.
func (s *DOPRI5) Solve(f Func, y0 []float64, t0, t1 float64, opt SolveOptions) (*Result, error) {
	if t1 < t0 {
		return nil, errors.New("ode: Solve needs t1 >= t0")
	}
	n := len(y0)
	if n == 0 {
		return nil, errors.New("ode: empty state")
	}
	s.alloc(n)
	res := &Result{}

	s.y = grow(s.y, n)
	copy(s.y, y0)
	s.ynew = grow(s.ynew, n)
	y, ynew := s.y, s.ynew
	t := t0

	// The sample plan is either an explicit grid (SampleTs) or a virtual
	// one (SampleAt), evaluated lazily so streaming runs hold no grid.
	if opt.NSamples < 0 {
		return nil, fmt.Errorf("ode: negative NSamples %d", opt.NSamples)
	}
	hasPlan := opt.SampleTs != nil
	nSamp := len(opt.SampleTs)
	sampleAt := func(k int) float64 { return opt.SampleTs[k] }
	if !hasPlan && opt.SampleAt != nil && opt.NSamples > 0 {
		hasPlan = true
		nSamp = opt.NSamples
		sampleAt = opt.SampleAt
	}
	// A bad plan — non-increasing times or samples outside [t0, t1] —
	// would silently produce corrupt output (rows skipped, duplicated, or
	// extrapolated); reject it up front. The scan evaluates the virtual
	// plan once ahead of time, which costs O(nSamp) arithmetic and no
	// allocations.
	if hasPlan {
		if err := checkSamplePlan(nSamp, sampleAt, t0, t1); err != nil {
			return nil, err
		}
	}

	// With a known sample plan the output rows are carved out of one
	// arena allocation instead of one allocation per sample. A streaming
	// consumer (SampleFunc) bypasses materialization entirely: rows are
	// handed over straight from the solver buffers and never stored.
	var arena []float64
	arenaNext := 0
	if hasPlan && opt.SampleFunc == nil {
		rows := nSamp + 1
		arena = make([]float64, rows*n)
		res.Ts = make([]float64, 0, rows)
		res.Ys = make([][]float64, 0, rows)
	}
	sampleIdx := 0
	record := func(tt float64, v []float64) {
		if opt.SampleFunc != nil {
			opt.SampleFunc(tt, v)
			return
		}
		res.Ts = append(res.Ts, tt)
		var row []float64
		if arena != nil {
			row = arena[arenaNext : arenaNext+n : arenaNext+n]
			arenaNext += n
		} else {
			row = make([]float64, n)
		}
		copy(row, v)
		res.Ys = append(res.Ys, row)
	}
	record(t0, y)
	// Skip any requested samples that coincide with t0.
	for sampleIdx < nSamp && sampleAt(sampleIdx) <= t0 {
		sampleIdx++
	}

	hmax := t1 - t0
	if s.Hmax > 0 && s.Hmax < hmax {
		hmax = s.Hmax
	}
	h := s.H0
	if h <= 0 {
		h = s.initialStep(f, t0, y, t1)
	}
	h = math.Min(h, hmax)

	f(t, y, s.k1) // first stage; FSAL recycles k7 afterwards
	res.Stats.Evals++

	// retain: the caller keeps segments beyond the current step, so each
	// accepted step needs its own (pooled or fresh) segment. Otherwise the
	// solver-local scratch segment is reused, and no segment is built at
	// all when nothing consumes dense output.
	retain := opt.KeepDense || opt.OnStep != nil
	needDense := retain || hasPlan

	errOld := 1e-4
	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000_000
	}

	for t < t1 {
		if res.Stats.Steps >= maxSteps {
			return res, fmt.Errorf("%w (t=%g of %g)", ErrTooManySteps, t, t1)
		}
		if t+h > t1 {
			h = t1 - t
		}
		res.Stats.Steps++

		errNorm := s.step(f, t, y, h, ynew)
		res.Stats.Evals += 6

		if errNorm <= 1 { // accept
			res.Stats.Accepted++
			var seg *DenseSegment
			if needDense {
				switch {
				case opt.Pool != nil:
					seg = opt.Pool.Get(n)
				case retain:
					seg = &DenseSegment{}
					seg.reserve(n)
				default:
					seg = &s.scratchSeg
					seg.reserve(n)
				}
				s.fillDense(seg, t, h, y, ynew)
				if opt.OnStep != nil {
					opt.OnStep(seg)
				}
				if opt.KeepDense {
					res.Dense = append(res.Dense, seg)
				}
			}
			tNew := t + h
			if !hasPlan {
				record(tNew, ynew)
			} else {
				for sampleIdx < nSamp {
					ts := sampleAt(sampleIdx)
					if ts > tNew+1e-14 {
						break
					}
					record(ts, seg.Eval(ts, s.ysmp))
					sampleIdx++
				}
			}
			// FSAL: k7 of the accepted step becomes k1 of the next.
			s.k1, s.k7 = s.k7, s.k1
			y, ynew = ynew, y
			t = tNew

			// PI controller (Hairer II.4): err^(-0.2+beta) * errold^beta.
			fac := math.Pow(errNorm, -(0.2-s.Beta*0.75)) * math.Pow(errOld, s.Beta)
			fac = mathx.Clamp(0.9*fac, 0.2, 10)
			h = math.Min(h*fac, hmax)
			errOld = math.Max(errNorm, 1e-4)
		} else { // reject
			res.Stats.Rejected++
			fac := mathx.Clamp(0.9*math.Pow(errNorm, -0.2), 0.1, 1)
			h *= fac
			if s.Hmin > 0 && h < s.Hmin || h < 1e-14*math.Max(1, math.Abs(t)) {
				return res, fmt.Errorf("%w at t=%g (h=%g)", ErrStepSizeUnderflow, t, h)
			}
		}
	}
	return res, nil
}

// checkSamplePlan validates a sample plan: every time must lie inside
// the integration interval and the sequence must be strictly increasing.
func checkSamplePlan(n int, at func(int) float64, t0, t1 float64) error {
	prev := math.Inf(-1)
	for k := 0; k < n; k++ {
		ts := at(k)
		if math.IsNaN(ts) || ts < t0 || ts > t1 {
			return fmt.Errorf("ode: sample %d at t=%g lies outside [%g, %g]", k, ts, t0, t1)
		}
		if ts <= prev {
			return fmt.Errorf("ode: sample plan not increasing: sample %d at t=%g after t=%g", k, ts, prev)
		}
		prev = ts
	}
	return nil
}

// step performs one trial step of size h from (t, y) into ynew and returns
// the scaled error norm. k1 must hold f(t, y) on entry; k2..k7 are filled.
//
//pomvet:allocfree
func (s *DOPRI5) step(f Func, t float64, y []float64, h float64, ynew []float64) float64 {
	n := len(y)
	for i := 0; i < n; i++ {
		s.ytmp[i] = y[i] + h*a21*s.k1[i]
	}
	f(t+c2*h, s.ytmp, s.k2)
	for i := 0; i < n; i++ {
		s.ytmp[i] = y[i] + h*(a31*s.k1[i]+a32*s.k2[i])
	}
	f(t+c3*h, s.ytmp, s.k3)
	for i := 0; i < n; i++ {
		s.ytmp[i] = y[i] + h*(a41*s.k1[i]+a42*s.k2[i]+a43*s.k3[i])
	}
	f(t+c4*h, s.ytmp, s.k4)
	for i := 0; i < n; i++ {
		s.ytmp[i] = y[i] + h*(a51*s.k1[i]+a52*s.k2[i]+a53*s.k3[i]+a54*s.k4[i])
	}
	f(t+c5*h, s.ytmp, s.k5)
	for i := 0; i < n; i++ {
		s.ytmp[i] = y[i] + h*(a61*s.k1[i]+a62*s.k2[i]+a63*s.k3[i]+a64*s.k4[i]+a65*s.k5[i])
	}
	f(t+h, s.ytmp, s.k6)
	for i := 0; i < n; i++ {
		ynew[i] = y[i] + h*(a71*s.k1[i]+a73*s.k3[i]+a74*s.k4[i]+a75*s.k5[i]+a76*s.k6[i])
	}
	f(t+h, ynew, s.k7)
	for i := 0; i < n; i++ {
		s.yerr[i] = h * (e1*s.k1[i] + e3*s.k3[i] + e4*s.k4[i] + e5*s.k5[i] + e6*s.k6[i] + e7*s.k7[i])
	}
	return mathx.ScaledNorm(s.yerr, y, ynew, s.Atol, s.Rtol)
}

// fillDense writes the continuous extension of the step just accepted
// into seg, whose interpolation vectors must already be sized (reserve).
//
//pomvet:allocfree
func (s *DOPRI5) fillDense(seg *DenseSegment, t, h float64, y, ynew []float64) {
	n := len(y)
	seg.T0, seg.H = t, h
	for i := 0; i < n; i++ {
		ydiff := ynew[i] - y[i]
		bspl := h*s.k1[i] - ydiff
		seg.rcont[0][i] = y[i]
		seg.rcont[1][i] = ydiff
		seg.rcont[2][i] = bspl
		seg.rcont[3][i] = ydiff - h*s.k7[i] - bspl
		seg.rcont[4][i] = h * (d1*s.k1[i] + d3*s.k3[i] + d4*s.k4[i] + d5*s.k5[i] + d6*s.k6[i] + d7*s.k7[i])
	}
}

// initialStep implements Hairer's automatic initial step heuristic. It
// borrows the k2/k3/ytmp stage buffers as scratch (alloc must have run;
// the stages are overwritten by the first step anyway).
func (s *DOPRI5) initialStep(f Func, t0 float64, y0 []float64, t1 float64) float64 {
	n := len(y0)
	f0 := s.k2
	f(t0, y0, f0)
	var d0, dY float64
	for i := 0; i < n; i++ {
		sc := s.Atol + s.Rtol*math.Abs(y0[i])
		d0 += (y0[i] / sc) * (y0[i] / sc)
		dY += (f0[i] / sc) * (f0[i] / sc)
	}
	d0 = math.Sqrt(d0 / float64(n))
	dY = math.Sqrt(dY / float64(n))
	h0 := 1e-6
	if d0 >= 1e-5 && dY >= 1e-5 {
		h0 = 0.01 * d0 / dY
	}
	h0 = math.Min(h0, t1-t0)

	y1 := s.ytmp
	f1 := s.k3
	for i := 0; i < n; i++ {
		y1[i] = y0[i] + h0*f0[i]
	}
	f(t0+h0, y1, f1)
	var d2 float64
	for i := 0; i < n; i++ {
		sc := s.Atol + s.Rtol*math.Abs(y0[i])
		df := (f1[i] - f0[i]) / sc
		d2 += df * df
	}
	d2 = math.Sqrt(d2/float64(n)) / h0
	der := math.Max(dY, d2)
	var h1 float64
	if der <= 1e-15 {
		h1 = math.Max(1e-6, h0*1e-3)
	} else {
		h1 = math.Pow(0.01/der, 0.2)
	}
	return math.Min(math.Min(100*h0, h1), t1-t0)
}

func (s *DOPRI5) alloc(n int) {
	s.k1 = grow(s.k1, n)
	s.k2 = grow(s.k2, n)
	s.k3 = grow(s.k3, n)
	s.k4 = grow(s.k4, n)
	s.k5 = grow(s.k5, n)
	s.k6 = grow(s.k6, n)
	s.k7 = grow(s.k7, n)
	s.ytmp = grow(s.ytmp, n)
	s.yerr = grow(s.yerr, n)
	s.ysmp = grow(s.ysmp, n)
}
