package ode

import (
	"math"
	"testing"
)

// streamCollector records every streamed row so tests can compare the
// callback path against the materialized one.
type streamCollector struct {
	ts []float64
	ys [][]float64
}

func (c *streamCollector) sample(t float64, y []float64) {
	c.ts = append(c.ts, t)
	c.ys = append(c.ys, append([]float64(nil), y...))
}

// TestSolveSampleFuncMatchesMaterialized pins the streaming contract: the
// rows handed to SampleFunc are bitwise identical to the rows a
// materializing Solve stores, and the streamed result retains nothing.
func TestSolveSampleFuncMatchesMaterialized(t *testing.T) {
	// Mildly coupled nonlinear system: enough structure that any
	// divergence between the two record paths would show.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0] - 0.1*y[1]
		dydt[2] = math.Sin(y[0]) - 0.2*y[2]
	}
	y0 := []float64{1, 0, 0.5}
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = 10 * float64(i) / 100
	}

	mat, err := NewDOPRI5(1e-8, 1e-6).Solve(f, y0, 0, 10, SolveOptions{SampleTs: samples})
	if err != nil {
		t.Fatal(err)
	}
	var col streamCollector
	str, err := NewDOPRI5(1e-8, 1e-6).Solve(f, y0, 0, 10, SolveOptions{
		SampleTs:   samples,
		SampleFunc: col.sample,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The virtual sample plan (SampleAt) must visit the same times.
	var colAt streamCollector
	if _, err := NewDOPRI5(1e-8, 1e-6).Solve(f, y0, 0, 10, SolveOptions{
		SampleAt:   func(k int) float64 { return samples[k] },
		NSamples:   len(samples),
		SampleFunc: colAt.sample,
	}); err != nil {
		t.Fatal(err)
	}

	if len(str.Ts) != 0 || len(str.Ys) != 0 {
		t.Errorf("streaming run materialized %d rows", len(str.Ys))
	}
	if str.Stats != mat.Stats {
		t.Errorf("stats diverged: streamed %v, materialized %v", str.Stats, mat.Stats)
	}
	if len(col.ts) != len(mat.Ts) {
		t.Fatalf("streamed %d rows, materialized %d", len(col.ts), len(mat.Ts))
	}
	for k := range mat.Ts {
		if col.ts[k] != mat.Ts[k] {
			t.Fatalf("row %d: streamed t=%v, materialized t=%v", k, col.ts[k], mat.Ts[k])
		}
		for i := range mat.Ys[k] {
			if col.ys[k][i] != mat.Ys[k][i] {
				t.Fatalf("row %d comp %d: streamed %v, materialized %v",
					k, i, col.ys[k][i], mat.Ys[k][i])
			}
		}
		if colAt.ts[k] != mat.Ts[k] || colAt.ys[k][0] != mat.Ys[k][0] {
			t.Fatalf("row %d: virtual sample plan diverged", k)
		}
	}
}

// TestSolveDDESampleFuncMatchesMaterialized is the delay-path counterpart.
func TestSolveDDESampleFuncMatchesMaterialized(t *testing.T) {
	const tau = 0.3
	f := func(t float64, y []float64, past Past, dydt []float64) {
		dydt[0] = -past.Eval(0, t-tau)
		dydt[1] = y[0] - 0.5*past.Eval(1, t-tau)
	}
	y0 := []float64{1, 0.2}
	samples := make([]float64, 81)
	for i := range samples {
		samples[i] = 8 * float64(i) / 80
	}
	opts := DDEOptions{SampleTs: samples, MaxDelay: tau}

	mat, err := NewDOPRI5(1e-8, 1e-6).SolveDDE(f, y0, 0, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	var col streamCollector
	opts.SampleFunc = col.sample
	str, err := NewDOPRI5(1e-8, 1e-6).SolveDDE(f, y0, 0, 8, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(str.Ys) != 0 {
		t.Errorf("streaming DDE run materialized %d rows", len(str.Ys))
	}
	if len(col.ts) != len(mat.Ts) {
		t.Fatalf("streamed %d rows, materialized %d", len(col.ts), len(mat.Ts))
	}
	for k := range mat.Ts {
		if col.ts[k] != mat.Ts[k] {
			t.Fatalf("row %d: streamed t=%v, materialized t=%v", k, col.ts[k], mat.Ts[k])
		}
		for i := range mat.Ys[k] {
			if col.ys[k][i] != mat.Ys[k][i] {
				t.Fatalf("row %d comp %d: streamed %v, materialized %v",
					k, i, col.ys[k][i], mat.Ys[k][i])
			}
		}
	}
}

// TestSolveSampleFuncSteadyStateAllocs checks the streaming path allocates
// nothing per sample beyond the solver's own step machinery: a no-op sink
// over many samples costs no more allocations than the sample count.
func TestSolveSampleFuncSteadyStateAllocs(t *testing.T) {
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	s := NewDOPRI5(1e-8, 1e-6)
	sink := func(float64, []float64) {}
	run := func() {
		if _, err := s.Solve(f, []float64{1, 0}, 0, 50, SolveOptions{
			SampleAt:   func(k int) float64 { return 50 * float64(k) / 10000 },
			NSamples:   10001,
			SampleFunc: sink,
		}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the solver buffers
	allocs := testing.AllocsPerRun(3, run)
	// The materialized path would allocate the ~10001-row arena plus the
	// slice headers; the streamed path must stay near zero.
	if allocs > 16 {
		t.Errorf("streaming solve allocated %v objects per run, want ~0", allocs)
	}
}
