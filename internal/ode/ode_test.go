package ode

import (
	"math"
	"testing"
)

// expDecay is y' = -y with solution y(t) = y0·e^{-t}.
func expDecay(_ float64, y, dydt []float64) {
	for i := range y {
		dydt[i] = -y[i]
	}
}

// harmonic is the 2-D oscillator y” = -y written as a first-order system.
func harmonic(_ float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}

func TestFixedSolveExpDecay(t *testing.T) {
	for _, tc := range []struct {
		stepper Stepper
		tol     float64
	}{
		{&Euler{}, 2e-2},
		{&Heun{}, 2e-4},
		{&RK4{}, 1e-8},
	} {
		sol, err := FixedSolve(expDecay, tc.stepper, []float64{1}, 0, 2, 1e-3, 100)
		if err != nil {
			t.Fatalf("%s: %v", tc.stepper.Name(), err)
		}
		got := sol.Last()[0]
		want := math.Exp(-2)
		if math.Abs(got-want) > tc.tol {
			t.Errorf("%s: y(2) = %v, want %v ± %v", tc.stepper.Name(), got, want, tc.tol)
		}
	}
}

// convergenceOrder estimates the observed order of a stepper by halving h.
func convergenceOrder(t *testing.T, st Stepper) float64 {
	t.Helper()
	errAt := func(h float64) float64 {
		sol, err := FixedSolve(harmonic, st, []float64{1, 0}, 0, 1, h, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(sol.Last()[0] - math.Cos(1))
	}
	e1, e2 := errAt(0.01), errAt(0.005)
	return math.Log2(e1 / e2)
}

func TestConvergenceOrders(t *testing.T) {
	for _, tc := range []struct {
		st   Stepper
		want float64
	}{
		{&Euler{}, 1},
		{&Heun{}, 2},
		{&RK4{}, 4},
	} {
		got := convergenceOrder(t, tc.st)
		if math.Abs(got-tc.want) > 0.25 {
			t.Errorf("%s: observed order %.2f, want %.0f", tc.st.Name(), got, tc.want)
		}
		if tc.st.Order() != int(tc.want) {
			t.Errorf("%s: Order() = %d", tc.st.Name(), tc.st.Order())
		}
	}
}

func TestFixedSolveErrors(t *testing.T) {
	if _, err := FixedSolve(expDecay, &RK4{}, []float64{1}, 0, 1, 0, 1); err == nil {
		t.Error("want error for h = 0")
	}
	if _, err := FixedSolve(expDecay, &RK4{}, []float64{1}, 1, 0, 0.1, 1); err == nil {
		t.Error("want error for t1 < t0")
	}
}

func TestFixedSolveLandsOnT1(t *testing.T) {
	sol, err := FixedSolve(expDecay, &RK4{}, []float64{1}, 0, 1, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if last := sol.Ts[len(sol.Ts)-1]; last != 1 {
		t.Errorf("final time = %v, want exactly 1", last)
	}
}

func TestSolutionComponentAndAt(t *testing.T) {
	sol := &Solution{
		Ts: []float64{0, 1, 2},
		Ys: [][]float64{{0, 10}, {1, 20}, {4, 30}},
	}
	c0 := sol.Component(0)
	if c0[2] != 4 {
		t.Errorf("Component = %v", c0)
	}
	v := sol.At(0.5, nil)
	if v[0] != 0.5 || v[1] != 15 {
		t.Errorf("At(0.5) = %v", v)
	}
	if v := sol.At(-1, nil); v[0] != 0 {
		t.Error("left clamp failed")
	}
	if v := sol.At(5, nil); v[0] != 4 {
		t.Error("right clamp failed")
	}
	var empty Solution
	if empty.At(0, nil) != nil || empty.Last() != nil {
		t.Error("empty solution should return nil")
	}
}

func TestDOPRI5Accuracy(t *testing.T) {
	s := NewDOPRI5(1e-10, 1e-10)
	res, err := s.Solve(harmonic, []float64{1, 0}, 0, 10, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Last()
	if math.Abs(got[0]-math.Cos(10)) > 1e-7 || math.Abs(got[1]+math.Sin(10)) > 1e-7 {
		t.Errorf("y(10) = %v, want (cos10, -sin10)", got)
	}
	if res.Stats.Accepted == 0 || res.Stats.Evals == 0 {
		t.Error("stats not populated")
	}
}

func TestDOPRI5ToleranceControlsError(t *testing.T) {
	run := func(tol float64) (errv float64, steps int) {
		s := NewDOPRI5(tol, tol)
		res, err := s.Solve(harmonic, []float64{1, 0}, 0, 10, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Last()[0] - math.Cos(10)), res.Stats.Accepted
	}
	eLoose, nLoose := run(1e-4)
	eTight, nTight := run(1e-9)
	if eTight >= eLoose {
		t.Errorf("tight tol error %g not below loose %g", eTight, eLoose)
	}
	if nTight <= nLoose {
		t.Errorf("tight tol used %d steps, loose %d — expected more work", nTight, nLoose)
	}
}

func TestDOPRI5SampleTs(t *testing.T) {
	s := NewDOPRI5(1e-9, 1e-9)
	want := []float64{0, 1, 2, 3, 4, 5}
	res, err := s.Solve(expDecay, []float64{1}, 0, 5, SolveOptions{SampleTs: want})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ts) != len(want) {
		t.Fatalf("got %d samples (%v), want %d", len(res.Ts), res.Ts, len(want))
	}
	for k, ts := range want {
		if math.Abs(res.Ts[k]-ts) > 1e-12 {
			t.Errorf("sample %d at %v, want %v", k, res.Ts[k], ts)
		}
		if math.Abs(res.Ys[k][0]-math.Exp(-ts)) > 1e-7 {
			t.Errorf("y(%v) = %v, want %v", ts, res.Ys[k][0], math.Exp(-ts))
		}
	}
}

func TestDOPRI5DenseOutputAccuracy(t *testing.T) {
	s := NewDOPRI5(1e-9, 1e-9)
	res, err := s.Solve(harmonic, []float64{1, 0}, 0, 5, SolveOptions{KeepDense: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dense) == 0 {
		t.Fatal("no dense segments kept")
	}
	for _, seg := range res.Dense {
		for _, th := range []float64{0.1, 0.5, 0.9} {
			tt := seg.T0 + th*seg.H
			v := seg.Eval(tt, nil)
			if math.Abs(v[0]-math.Cos(tt)) > 1e-6 {
				t.Fatalf("dense eval at %v: %v, want %v", tt, v[0], math.Cos(tt))
			}
		}
	}
}

func TestDOPRI5FSALConsistency(t *testing.T) {
	// A stiff-ish nonlinear problem exercises accept/reject sequences; the
	// result must still match the analytic solution of y' = y² with
	// y(0) = -1: y(t) = -1/(1+t).
	riccati := func(_ float64, y, dydt []float64) { dydt[0] = y[0] * y[0] }
	s := NewDOPRI5(1e-10, 1e-10)
	res, err := s.Solve(riccati, []float64{-1}, 0, 9, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := -1.0 / 10
	if got := res.Last()[0]; math.Abs(got-want) > 1e-8 {
		t.Errorf("y(9) = %v, want %v", got, want)
	}
}

func TestDOPRI5MaxSteps(t *testing.T) {
	s := NewDOPRI5(1e-12, 1e-12)
	s.MaxSteps = 3
	_, err := s.Solve(harmonic, []float64{1, 0}, 0, 100, SolveOptions{})
	if err == nil {
		t.Fatal("want ErrTooManySteps")
	}
}

func TestDOPRI5TimeDependentRHS(t *testing.T) {
	// y' = cos(t), y(0) = 0 → y = sin(t). Verifies t is threaded through
	// the stages correctly (c_i coefficients).
	f := func(tt float64, _, dydt []float64) { dydt[0] = math.Cos(tt) }
	s := NewDOPRI5(1e-10, 1e-10)
	res, err := s.Solve(f, []float64{0}, 0, 7, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Last()[0]; math.Abs(got-math.Sin(7)) > 1e-8 {
		t.Errorf("y(7) = %v, want sin(7) = %v", got, math.Sin(7))
	}
}

func BenchmarkDOPRI5Harmonic(b *testing.B) {
	s := NewDOPRI5(1e-8, 1e-8)
	y0 := []float64{1, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(harmonic, y0, 0, 10, SolveOptions{SampleTs: []float64{10}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRK4Harmonic(b *testing.B) {
	st := &RK4{}
	y0 := []float64{1, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FixedSolve(harmonic, st, y0, 0, 10, 1e-3, 1<<30); err != nil {
			b.Fatal(err)
		}
	}
}
