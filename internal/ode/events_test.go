package ode

import (
	"errors"
	"math"
	"testing"
)

func TestSolveUntilEventHarmonicZeroCrossing(t *testing.T) {
	// cos(t) crosses zero first at t = π/2.
	s := NewDOPRI5(1e-10, 1e-10)
	g := func(_ float64, y []float64) float64 { return y[0] }
	ev, res, err := s.SolveUntilEvent(harmonic, []float64{1, 0}, 0, 10, g, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.T-math.Pi/2) > 1e-8 {
		t.Errorf("event at %v, want π/2 = %v", ev.T, math.Pi/2)
	}
	if math.Abs(ev.Y[0]) > 1e-8 {
		t.Errorf("state at event: y0 = %v, want 0", ev.Y[0])
	}
	// The trajectory must end exactly at the event.
	if last := res.Ts[len(res.Ts)-1]; last != ev.T {
		t.Errorf("trajectory ends at %v, want %v", last, ev.T)
	}
	for _, ts := range res.Ts[:len(res.Ts)-1] {
		if ts > ev.T {
			t.Errorf("sample %v beyond event", ts)
		}
	}
}

func TestSolveUntilEventThreshold(t *testing.T) {
	// Exponential decay hits 0.5 at t = ln 2.
	s := NewDOPRI5(1e-10, 1e-10)
	g := func(_ float64, y []float64) float64 { return y[0] - 0.5 }
	ev, _, err := s.SolveUntilEvent(expDecay, []float64{1}, 0, 5, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.T-math.Ln2) > 1e-8 {
		t.Errorf("event at %v, want ln2 = %v", ev.T, math.Ln2)
	}
}

func TestSolveUntilEventNone(t *testing.T) {
	s := NewDOPRI5(1e-8, 1e-8)
	g := func(_ float64, y []float64) float64 { return y[0] + 10 } // never zero
	_, res, err := s.SolveUntilEvent(expDecay, []float64{1}, 0, 2, g, 0)
	if !errors.Is(err, ErrNoEvent) {
		t.Fatalf("err = %v, want ErrNoEvent", err)
	}
	if res == nil || len(res.Ts) == 0 {
		t.Error("full trajectory must still be returned")
	}
	if _, _, err := s.SolveUntilEvent(expDecay, []float64{1}, 0, 1, nil, 0); err == nil {
		t.Error("want error for nil event function")
	}
}

func TestFindRootOutsideSegment(t *testing.T) {
	s := NewDOPRI5(1e-9, 1e-9)
	res, err := s.Solve(expDecay, []float64{1}, 0, 1, SolveOptions{KeepDense: true})
	if err != nil {
		t.Fatal(err)
	}
	seg := res.Dense[0]
	// y stays positive on the first segment: no root for y - 2.
	if _, ok := seg.FindRoot(func(_ float64, y []float64) float64 { return y[0] - 2 }, 0); ok {
		t.Error("found a root that does not exist")
	}
	// Root at segment start when g(a) == 0.
	y0 := seg.Eval(seg.T0, nil)[0]
	tr, ok := seg.FindRoot(func(_ float64, y []float64) float64 { return y[0] - y0 }, 0)
	if !ok || tr != seg.T0 {
		t.Errorf("boundary root: %v %v", tr, ok)
	}
}
