// Package ode implements the explicit initial-value-problem solvers used to
// integrate the physical oscillator model: fixed-step Euler, Heun and
// classic Runge–Kutta 4 methods, and an adaptive Dormand–Prince 5(4) pair
// with dense output and PI step-size control — the same integrator family
// as MATLAB's ode45, which the paper's artifact uses. A delay-differential
// driver (dde.go) supports the model's interaction-noise delay term
// θ_j(t − τ_ij(t)).
package ode

import (
	"errors"
	"fmt"
)

// Func is the right-hand side of an autonomous-in-form ODE system
// y' = f(t, y). Implementations must write the derivative into dydt and
// must not retain y or dydt.
type Func func(t float64, y, dydt []float64)

// Solution is a trajectory sampled at increasing times. Ys[k] is the state
// at Ts[k].
type Solution struct {
	Ts []float64
	Ys [][]float64
}

// Component extracts the time series of state component i.
func (s *Solution) Component(i int) []float64 {
	out := make([]float64, len(s.Ys))
	for k, y := range s.Ys {
		out[k] = y[i]
	}
	return out
}

// Last returns the final state, or nil for an empty solution.
func (s *Solution) Last() []float64 {
	if len(s.Ys) == 0 {
		return nil
	}
	return s.Ys[len(s.Ys)-1]
}

// At linearly interpolates the solution at time t (clamped to the sampled
// range). It is a convenience for analysis code; integration-grade accuracy
// comes from dense output inside the adaptive solver.
func (s *Solution) At(t float64, dst []float64) []float64 {
	n := len(s.Ts)
	if n == 0 {
		return nil
	}
	dim := len(s.Ys[0])
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]
	switch {
	case t <= s.Ts[0]:
		copy(dst, s.Ys[0])
	case t >= s.Ts[n-1]:
		copy(dst, s.Ys[n-1])
	default:
		lo, hi := 0, n-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if s.Ts[mid] <= t {
				lo = mid
			} else {
				hi = mid
			}
		}
		u := (t - s.Ts[lo]) / (s.Ts[hi] - s.Ts[lo])
		for i := 0; i < dim; i++ {
			dst[i] = s.Ys[lo][i] + u*(s.Ys[hi][i]-s.Ys[lo][i])
		}
	}
	return dst
}

// Stepper advances a state by one fixed step of size h. Implementations are
// the classic single-step explicit methods.
type Stepper interface {
	// Step writes y(t+h) into ynew given y(t). y and ynew must not alias.
	Step(f Func, t float64, y []float64, h float64, ynew []float64)
	// Order returns the convergence order of the method.
	Order() int
	// Name returns a short identifier.
	Name() string
}

// Euler is the explicit first-order Euler method.
type Euler struct{ k []float64 }

// Step implements Stepper.
func (e *Euler) Step(f Func, t float64, y []float64, h float64, ynew []float64) {
	e.k = grow(e.k, len(y))
	f(t, y, e.k)
	for i := range y {
		ynew[i] = y[i] + h*e.k[i]
	}
}

// Order implements Stepper.
func (e *Euler) Order() int { return 1 }

// Name implements Stepper.
func (e *Euler) Name() string { return "euler" }

// Heun is the explicit two-stage second-order trapezoidal method.
type Heun struct{ k1, k2, tmp []float64 }

// Step implements Stepper.
func (hn *Heun) Step(f Func, t float64, y []float64, h float64, ynew []float64) {
	n := len(y)
	hn.k1 = grow(hn.k1, n)
	hn.k2 = grow(hn.k2, n)
	hn.tmp = grow(hn.tmp, n)
	f(t, y, hn.k1)
	for i := 0; i < n; i++ {
		hn.tmp[i] = y[i] + h*hn.k1[i]
	}
	f(t+h, hn.tmp, hn.k2)
	for i := 0; i < n; i++ {
		ynew[i] = y[i] + 0.5*h*(hn.k1[i]+hn.k2[i])
	}
}

// Order implements Stepper.
func (hn *Heun) Order() int { return 2 }

// Name implements Stepper.
func (hn *Heun) Name() string { return "heun" }

// RK4 is the classic four-stage fourth-order Runge–Kutta method.
type RK4 struct{ k1, k2, k3, k4, tmp []float64 }

// Step implements Stepper.
func (r *RK4) Step(f Func, t float64, y []float64, h float64, ynew []float64) {
	n := len(y)
	r.k1 = grow(r.k1, n)
	r.k2 = grow(r.k2, n)
	r.k3 = grow(r.k3, n)
	r.k4 = grow(r.k4, n)
	r.tmp = grow(r.tmp, n)

	f(t, y, r.k1)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k1[i]
	}
	f(t+0.5*h, r.tmp, r.k2)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k2[i]
	}
	f(t+0.5*h, r.tmp, r.k3)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + h*r.k3[i]
	}
	f(t+h, r.tmp, r.k4)
	for i := 0; i < n; i++ {
		ynew[i] = y[i] + h/6*(r.k1[i]+2*r.k2[i]+2*r.k3[i]+r.k4[i])
	}
}

// Order implements Stepper.
func (r *RK4) Order() int { return 4 }

// Name implements Stepper.
func (r *RK4) Name() string { return "rk4" }

// FixedSolve integrates y' = f from t0 to t1 with constant step h using the
// given stepper, recording every sampleEvery-th step (1 records all). The
// final point is always recorded.
func FixedSolve(f Func, stepper Stepper, y0 []float64, t0, t1, h float64, sampleEvery int) (*Solution, error) {
	if h <= 0 {
		return nil, errors.New("ode: FixedSolve needs h > 0")
	}
	if t1 < t0 {
		return nil, errors.New("ode: FixedSolve needs t1 >= t0")
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	nSteps := int((t1-t0)/h + 0.5)
	if nSteps < 1 {
		nSteps = 1
	}
	dim := len(y0)
	sol := &Solution{}
	y := append([]float64(nil), y0...)
	ynew := make([]float64, dim)
	record := func(t float64, v []float64) {
		sol.Ts = append(sol.Ts, t)
		sol.Ys = append(sol.Ys, append([]float64(nil), v...))
	}
	record(t0, y)
	t := t0
	for s := 1; s <= nSteps; s++ {
		// Shrink the last step to land exactly on t1.
		step := h
		if s == nSteps {
			step = t1 - t
		}
		stepper.Step(f, t, y, step, ynew)
		y, ynew = ynew, y
		t = t0 + float64(s)*h
		if s == nSteps {
			t = t1
		}
		if s%sampleEvery == 0 || s == nSteps {
			record(t, y)
		}
	}
	return sol, nil
}

// grow returns buf resized to n, reallocating only when needed.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Stats reports the work performed by an adaptive integration.
type Stats struct {
	Steps, Accepted, Rejected int
	Evals                     int
}

// String renders the statistics compactly.
func (s Stats) String() string {
	return fmt.Sprintf("steps=%d accepted=%d rejected=%d evals=%d",
		s.Steps, s.Accepted, s.Rejected, s.Evals)
}
