package noise

import (
	"math"
	"testing"
)

func TestNone(t *testing.T) {
	var n None
	if n.Zeta(3, 1.5) != 0 || n.Tau(1, 2, 0.5) != 0 || n.Max() != 0 {
		t.Error("None must be silent")
	}
}

func TestJitterFrozenWithinCell(t *testing.T) {
	j := Jitter{Dist: Gaussian, Amp: 0.1, Refresh: 1, Seed: 5}
	// Same rank, same cell → identical value regardless of sub-cell time.
	a := j.Zeta(2, 3.1)
	b := j.Zeta(2, 3.9)
	if a != b {
		t.Errorf("jitter not frozen within cell: %v vs %v", a, b)
	}
	// Different cells differ (with overwhelming probability).
	c := j.Zeta(2, 4.1)
	if a == c {
		t.Error("jitter identical across cells")
	}
	// Different ranks differ.
	d := j.Zeta(3, 3.1)
	if a == d {
		t.Error("jitter identical across ranks")
	}
}

func TestJitterDeterministicAcrossInstances(t *testing.T) {
	j1 := Jitter{Dist: UniformSym, Amp: 0.2, Refresh: 0.5, Seed: 42}
	j2 := Jitter{Dist: UniformSym, Amp: 0.2, Refresh: 0.5, Seed: 42}
	for i := 0; i < 10; i++ {
		for _, tt := range []float64{0, 0.3, 1.7, 9.99} {
			if j1.Zeta(i, tt) != j2.Zeta(i, tt) {
				t.Fatalf("same-seed instances disagree at (%d, %v)", i, tt)
			}
		}
	}
	j3 := Jitter{Dist: UniformSym, Amp: 0.2, Refresh: 0.5, Seed: 43}
	if j1.Zeta(0, 0) == j3.Zeta(0, 0) {
		t.Error("different seeds should differ")
	}
}

func TestJitterDistributionsMoments(t *testing.T) {
	const cells = 20000
	moments := func(j Jitter) (mean, std float64) {
		var s, s2 float64
		for c := 0; c < cells; c++ {
			z := j.Zeta(0, float64(c)+0.5)
			s += z
			s2 += z * z
		}
		mean = s / cells
		std = math.Sqrt(s2/cells - mean*mean)
		return mean, std
	}
	g := Jitter{Dist: Gaussian, Amp: 0.5, Refresh: 1, Seed: 1}
	m, s := moments(g)
	if math.Abs(m) > 0.02 || math.Abs(s-0.5) > 0.02 {
		t.Errorf("gaussian jitter mean=%v std=%v", m, s)
	}
	u := Jitter{Dist: UniformSym, Amp: 0.6, Refresh: 1, Seed: 2}
	m, s = moments(u)
	if math.Abs(m) > 0.02 || math.Abs(s-0.6/math.Sqrt(3)) > 0.02 {
		t.Errorf("uniform jitter mean=%v std=%v", m, s)
	}
	e := Jitter{Dist: Exponential, Amp: 0.3, Refresh: 1, Seed: 3}
	m, _ = moments(e)
	if math.Abs(m-0.3) > 0.02 {
		t.Errorf("exponential jitter mean=%v, want 0.3", m)
	}
	for c := 0; c < 1000; c++ {
		if e.Zeta(0, float64(c)) < 0 {
			t.Fatal("exponential jitter must be nonnegative")
		}
	}
}

func TestJitterGuard(t *testing.T) {
	j := Jitter{Dist: Gaussian, Amp: 100, Refresh: 1, Seed: 4, MinPeriodGuard: 0.9}
	for c := 0; c < 1000; c++ {
		if z := j.Zeta(1, float64(c)); z < -0.9 {
			t.Fatalf("guard violated: %v", z)
		}
	}
}

func TestJitterZeroAmp(t *testing.T) {
	j := Jitter{Dist: Gaussian, Amp: 0, Refresh: 1}
	if j.Zeta(0, 5) != 0 {
		t.Error("zero amplitude must be silent")
	}
	j = Jitter{Dist: Gaussian, Amp: 1, Refresh: 0}
	if j.Zeta(0, 5) != 0 {
		t.Error("zero refresh must be silent")
	}
}

func TestImbalance(t *testing.T) {
	im := Imbalance{Extra: map[int]float64{2: 0.25}}
	if im.Zeta(2, 0) != 0.25 || im.Zeta(2, 99) != 0.25 {
		t.Error("imbalance must be static")
	}
	if im.Zeta(1, 0) != 0 {
		t.Error("unlisted ranks must be unaffected")
	}
}

func TestDelayWindow(t *testing.T) {
	d := Delay{Rank: 5, Start: 10, Duration: 2, Extra: 100}
	if d.Zeta(5, 9.99) != 0 {
		t.Error("before window")
	}
	if d.Zeta(5, 10) != 100 || d.Zeta(5, 11.99) != 100 {
		t.Error("inside window")
	}
	if d.Zeta(5, 12) != 0 {
		t.Error("window end is exclusive")
	}
	if d.Zeta(4, 11) != 0 {
		t.Error("other ranks unaffected")
	}
}

func TestDelayLostPhase(t *testing.T) {
	// Extra → ∞ limit: the oscillator is frozen for Duration, losing
	// Duration·2π/P of phase.
	d := Delay{Rank: 0, Start: 0, Duration: 3, Extra: 1e12}
	period := 2.0
	want := 3.0 * 2 * math.Pi / period
	if got := d.LostPhase(period); math.Abs(got-want) > 1e-6 {
		t.Errorf("LostPhase = %v, want %v", got, want)
	}
	// Extra = 0 loses nothing.
	d0 := Delay{Duration: 3, Extra: 0}
	if d0.LostPhase(period) != 0 {
		t.Error("zero Extra must lose no phase")
	}
}

func TestSumComposes(t *testing.T) {
	s := Sum{
		Imbalance{Extra: map[int]float64{1: 0.5}},
		Delay{Rank: 1, Start: 0, Duration: 10, Extra: 2},
	}
	if got := s.Zeta(1, 5); got != 2.5 {
		t.Errorf("Sum = %v, want 2.5", got)
	}
	if got := s.Zeta(0, 5); got != 0 {
		t.Errorf("Sum unaffected rank = %v", got)
	}
}

func TestCommJitterBoundsAndFrozen(t *testing.T) {
	c := CommJitter{MinDelay: 0.1, MaxDelay: 0.4, Refresh: 1, Seed: 9}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for _, tt := range []float64{0.2, 5.7, 33.3} {
				tau := c.Tau(i, j, tt)
				if tau < 0.1 || tau > 0.4 {
					t.Fatalf("tau out of bounds: %v", tau)
				}
				if tau != c.Tau(i, j, tt) {
					t.Fatal("tau not deterministic")
				}
			}
		}
	}
	if c.Tau(1, 2, 0.1) != c.Tau(1, 2, 0.9) {
		t.Error("tau not frozen within cell")
	}
	if c.Max() != 0.4 {
		t.Errorf("Max = %v", c.Max())
	}
}

func TestCommJitterPairAsymmetry(t *testing.T) {
	// τ_ij and τ_ji are distinct streams (directional communication).
	c := CommJitter{MinDelay: 0, MaxDelay: 1, Refresh: 1, Seed: 11}
	same := 0
	for cell := 0; cell < 100; cell++ {
		if c.Tau(1, 2, float64(cell)) == c.Tau(2, 1, float64(cell)) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("τ_12 == τ_21 in %d cells", same)
	}
}

func TestConstantLag(t *testing.T) {
	c := ConstantLag{Lag: 0.25}
	if c.Tau(3, 4, 100) != 0.25 || c.Max() != 0.25 {
		t.Error("ConstantLag broken")
	}
}
