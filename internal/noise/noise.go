// Package noise implements the two noise channels of the physical
// oscillator model (paper §3.1):
//
//   - process-local noise ζ_i(t): a jitter added to the compute–communicate
//     period of oscillator i, which models OS noise and load imbalance and
//     implements the paper's one-off delay injections (extra workload on
//     one rank);
//   - interaction noise τ_ij(t): a random delay on the phase information an
//     oscillator receives from partner j, modeling varying communication
//     time (the delay term θ_j(t−τ_ij(t)) of Eq. 2).
//
// All processes are *frozen noise*: deterministic functions of (rank, t)
// built by hashing the cell index of a refresh grid. A right-hand side
// evaluated repeatedly at nearby times by an adaptive ODE solver therefore
// sees a consistent, piecewise-constant signal — injecting fresh random
// numbers per evaluation would break the embedded error estimate.
package noise

import (
	"math"

	"repro/internal/stats"
)

// Local is a process-local noise process ζ_i(t), in the same time units as
// the oscillator period.
type Local interface {
	// Zeta returns ζ_i(t) for oscillator i at time t.
	Zeta(i int, t float64) float64
}

// Interaction is an interaction noise process τ_ij(t) ≥ 0.
type Interaction interface {
	// Tau returns the communication delay τ_ij(t) applied to the phase
	// oscillator i reads from partner j.
	Tau(i, j int, t float64) float64
	// Max returns an upper bound on the delay, used to bound the DDE
	// history window (0 means no delay anywhere).
	Max() float64
}

// None is the absence of noise on both channels.
type None struct{}

// Zeta implements Local.
func (None) Zeta(int, float64) float64 { return 0 }

// Tau implements Interaction.
func (None) Tau(int, int, float64) float64 { return 0 }

// Max implements Interaction.
func (None) Max() float64 { return 0 }

// hash64 mixes a cell key into 64 well-distributed bits (SplitMix64
// finalizer over a seeded combination).
func hash64(seed uint64, i int, cell int64, salt uint64) uint64 {
	z := seed ^ 0x9e3779b97f4a7c15
	z ^= uint64(i+1) * 0xbf58476d1ce4e5b9
	z ^= uint64(cell) * 0x94d049bb133111eb
	z ^= salt * 0xd6e8feb86659fd93
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashUniform returns a deterministic uniform in (0, 1) for the cell.
func hashUniform(seed uint64, i int, cell int64, salt uint64) float64 {
	u := float64(hash64(seed, i, cell, salt)>>11) / (1 << 53)
	// Keep strictly inside (0,1) for inverse-CDF transforms.
	if u <= 0 {
		u = 0.5 / (1 << 53)
	}
	return u
}

// Dist selects the jitter amplitude distribution.
type Dist int

const (
	// Gaussian draws ζ ~ N(0, σ²) (clamped below so the period stays
	// positive).
	Gaussian Dist = iota
	// UniformSym draws ζ ~ U(−a, a).
	UniformSym
	// Exponential draws ζ ~ Exp(1/a) − so strictly positive slowdowns with
	// mean a, the common model for OS noise.
	Exponential
)

// Jitter is frozen per-process period noise: within each refresh interval
// of length Refresh the value is constant; across cells and ranks it is
// independent.
type Jitter struct {
	// Dist selects the distribution family.
	Dist Dist
	// Amp is the distribution scale: σ for Gaussian, half-width for
	// UniformSym, mean for Exponential.
	Amp float64
	// Refresh is the cell length in time units (typically one period).
	Refresh float64
	// Seed makes the stream reproducible.
	Seed uint64
	// MinPeriodGuard bounds ζ from below (> −period) so the oscillator
	// frequency stays positive; the POM driver sets it automatically.
	MinPeriodGuard float64
}

// Zeta implements Local.
func (j Jitter) Zeta(i int, t float64) float64 {
	if j.Amp == 0 || j.Refresh <= 0 {
		return 0
	}
	cell := int64(math.Floor(t / j.Refresh))
	u := hashUniform(j.Seed, i, cell, 0x5eed)
	var z float64
	switch j.Dist {
	case UniformSym:
		z = j.Amp * (2*u - 1)
	case Exponential:
		z = -j.Amp * math.Log(1-u)
	default:
		z = j.Amp * stats.InvNormalCDF(u)
	}
	if j.MinPeriodGuard > 0 && z < -j.MinPeriodGuard {
		z = -j.MinPeriodGuard
	}
	return z
}

// Imbalance is static per-rank load imbalance: ζ_i(t) = Extra[i] for all t.
// It models ranks with permanently larger work share.
type Imbalance struct {
	// Extra is the per-rank additional period; missing ranks get 0.
	Extra map[int]float64
}

// Zeta implements Local.
func (im Imbalance) Zeta(i int, _ float64) float64 { return im.Extra[i] }

// Delay is a one-off delay injection: rank Rank runs with an inflated
// period during [Start, Start+Duration], losing approximately Lost() phase
// — the oscillator analogue of the paper's "extra workload performed by
// the 5th MPI process" that launches an idle wave.
type Delay struct {
	// Rank is the delayed oscillator index.
	Rank int
	// Start is the beginning of the delay window.
	Start float64
	// Duration is the window length.
	Duration float64
	// Extra is the additional period during the window. Large Extra
	// relative to the base period effectively freezes the oscillator.
	Extra float64
}

// Zeta implements Local.
func (d Delay) Zeta(i int, t float64) float64 {
	if i == d.Rank && t >= d.Start && t < d.Start+d.Duration {
		return d.Extra
	}
	return 0
}

// LostPhase returns the phase the delayed oscillator loses relative to an
// undisturbed one with base period P: Duration·2π·(1/P − 1/(P+Extra)).
func (d Delay) LostPhase(period float64) float64 {
	return d.Duration * 2 * math.Pi * (1/period - 1/(period+d.Extra))
}

// Sum composes several local noise processes additively.
type Sum []Local

// Zeta implements Local.
func (s Sum) Zeta(i int, t float64) float64 {
	var z float64
	for _, n := range s {
		z += n.Zeta(i, t)
	}
	return z
}

// CommJitter is frozen interaction noise: τ_ij(t) uniform in
// [Min, Max] per (i, j, cell), refreshed every Refresh time units.
type CommJitter struct {
	// MinDelay and MaxDelay bound the uniform delay.
	MinDelay, MaxDelay float64
	// Refresh is the cell length.
	Refresh float64
	// Seed makes the stream reproducible.
	Seed uint64
}

// Tau implements Interaction.
func (c CommJitter) Tau(i, j int, t float64) float64 {
	if c.MaxDelay <= 0 || c.Refresh <= 0 {
		return 0
	}
	cell := int64(math.Floor(t / c.Refresh))
	u := hashUniform(c.Seed, i*1_000_003+j, cell, 0x7a0)
	return c.MinDelay + (c.MaxDelay-c.MinDelay)*u
}

// Max implements Interaction.
func (c CommJitter) Max() float64 { return c.MaxDelay }

// ConstantLag applies the same delay to every interaction — the simplest
// model of a fixed network latency expressed in phase-information lag.
type ConstantLag struct {
	// Lag is the constant τ ≥ 0.
	Lag float64
}

// Tau implements Interaction.
func (c ConstantLag) Tau(int, int, float64) float64 { return c.Lag }

// Max implements Interaction.
func (c ConstantLag) Max() float64 { return c.Lag }
