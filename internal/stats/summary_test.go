package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("want error for empty input")
	}
	s, err := Summarize([]float64{3})
	if err != nil || s.Std != 0 || s.Mean != 3 {
		t.Errorf("single sample: %+v err=%v", s, err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			// Bound magnitudes so interpolation between order statistics
			// cannot overflow — physical quantities here are O(1..1e6).
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.1, 0.5, 0.99, 1.0, 2.5}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 0.1
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[3] != 1 { // 0.99
		t.Errorf("bin 3 = %d", h.Counts[3])
	}
}

func TestHistogramModeAndErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 1, 0, 4); err == nil {
		t.Error("want error for hi <= lo")
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("want error for nbins <= 0")
	}
	h, _ := NewHistogram([]float64{0.55, 0.6, 0.1}, 0, 1, 2)
	if m := h.Mode(); math.Abs(m-0.75) > 1e-12 {
		t.Errorf("Mode = %v, want 0.75", m)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if fit.StdErrSlope > 1e-9 {
		t.Errorf("StdErrSlope = %v, want ~0", fit.StdErrSlope)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := NewRNG(41)
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = -3*xs[i] + 7 + r.NormalMS(0, 0.5)
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+3) > 0.05 {
		t.Errorf("Slope = %v, want ≈ -3", fit.Slope)
	}
	if math.Abs(fit.Intercept-7) > 0.5 {
		t.Errorf("Intercept = %v, want ≈ 7", fit.Intercept)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("want error for vertical line")
	}
}

func TestAutoCorrelation(t *testing.T) {
	// Period-4 signal has autocorrelation 1 at lag 4.
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 4)
	}
	ac, err := AutoCorrelation(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ac[0]-1) > 1e-12 {
		t.Errorf("lag-0 autocorrelation = %v", ac[0])
	}
	if ac[4] < 0.85 {
		t.Errorf("lag-4 autocorrelation = %v, want near 1", ac[4])
	}
	if ac[2] > -0.85 {
		t.Errorf("lag-2 autocorrelation = %v, want near -1", ac[2])
	}
}

func TestAutoCorrelationEdges(t *testing.T) {
	if _, err := AutoCorrelation(nil, 3); err == nil {
		t.Error("want error on empty input")
	}
	ac, err := AutoCorrelation([]float64{5, 5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ac[0] != 1 {
		t.Error("constant signal lag-0 must be 1 by convention")
	}
}
