package stats

import (
	"errors"
	"math"
	"sort"

	"repro/internal/mathx"
)

// ErrInsufficientData reports too few samples for the requested statistic.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std, Var     float64
	Min, Max           float64
	Median, Q1, Q3     float64
	Skewness, Kurtosis float64 // excess kurtosis
}

// Summarize computes descriptive statistics of xs. The input is not
// modified. It returns ErrInsufficientData for an empty sample; Std/Var are
// zero for a single sample.
func Summarize(xs []float64) (Summary, error) {
	n := len(xs)
	if n == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{N: n}
	s.Mean = mathx.Mean(xs)
	s.Min, s.Max, _ = mathx.MinMax(xs)

	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	if n > 1 {
		s.Var = m2 / float64(n-1)
		s.Std = math.Sqrt(s.Var)
	}
	if m2 > 0 {
		nn := float64(n)
		s.Skewness = (m3 / nn) / math.Pow(m2/nn, 1.5)
		s.Kurtosis = (m4/nn)/math.Pow(m2/nn, 2) - 3
	}

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	return s, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation between order statistics (type-7, the
// numpy default). It panics on an empty slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if n == 1 {
		return sorted[0]
	}
	q = mathx.Clamp(q, 0, 1)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	return mathx.Lerp(sorted[lo], sorted[hi], pos-float64(lo))
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram bins xs into nbins equal-width bins over [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid histogram parameters")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			b := int((x - lo) / w)
			if b >= nbins { // guard against rounding at the top edge
				b = nbins - 1
			}
			h.Counts[b]++
		}
	}
	return h, nil
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(best)+0.5)*w
}

// LinearFit holds the result of an ordinary least squares line fit
// y ≈ Slope*x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// StdErrSlope is the standard error of the slope estimate.
	StdErrSlope float64
}

// FitLine performs an ordinary least-squares straight-line fit. It is used
// to estimate idle-wave propagation speed from (arrival time, rank) points.
// At least two distinct x values are required.
func FitLine(xs, ys []float64) (LinearFit, error) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := mathx.Mean(xs), mathx.Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit (all x equal)")
	}
	fit := LinearFit{Slope: sxy / sxx}
	fit.Intercept = my - fit.Slope*mx
	var ssRes float64
	for i := 0; i < n; i++ {
		r := ys[i] - (fit.Intercept + fit.Slope*xs[i])
		ssRes += r * r
	}
	if syy > 0 {
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1
	}
	if n > 2 {
		fit.StdErrSlope = math.Sqrt(ssRes / float64(n-2) / sxx)
	}
	return fit, nil
}

// AutoCorrelation returns the normalized autocorrelation of xs at the given
// lags (lag 0 maps to 1). Used to detect periodic idle-wave echoes.
func AutoCorrelation(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, ErrInsufficientData
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := mathx.Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	out := make([]float64, maxLag+1)
	if denom == 0 {
		out[0] = 1
		return out, nil
	}
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		out[lag] = s / denom
	}
	return out, nil
}
