// Package stats provides the deterministic random number generation,
// probability distributions, and statistical analysis used throughout the
// POM repository. All generators are explicitly seeded so that every
// experiment in the paper reproduction is bit-for-bit repeatable.
package stats

import "math"

// RNG is a xoshiro256** pseudo-random generator (Blackman & Vigna). It is
// small, fast, passes BigCrush, and — unlike math/rand's global state — is
// a value that can be embedded per-process in the simulators so that noise
// streams of different MPI ranks are independent and reproducible.
type RNG struct {
	s [4]uint64
	// spare caches the second normal deviate from the Marsaglia polar
	// transform.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed nonzero state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state deterministically from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	r.hasSpare = false
}

// Split returns a new generator whose stream is independent of r's for all
// practical purposes. It is used to hand each simulated MPI rank its own
// noise stream derived from one experiment seed.
func (r *RNG) Split(stream uint64) *RNG {
	return NewRNG(r.Uint64() ^ (stream * 0x9e3779b97f4a7c15) ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Uniform returns a uniform sample in [a, b).
func (r *RNG) Uniform(a, b float64) float64 { return a + (b-a)*r.Float64() }

// Normal returns a standard normal deviate using the Marsaglia polar
// method (no trig, numerically robust in the tails we use).
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormalMS returns a normal deviate with the given mean and standard
// deviation.
func (r *RNG) NormalMS(mean, sigma float64) float64 {
	return mean + sigma*r.Normal()
}

// Exponential returns an exponential deviate with the given rate λ > 0
// (mean 1/λ).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with rate <= 0")
	}
	u := r.Float64()
	// 1-u is in (0, 1]; Log of it is finite.
	return -math.Log(1-u) / rate
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalMS(mu, sigma))
}

// Pareto returns a Pareto(alpha, xm) deviate; heavy-tailed noise used to
// model rare long OS interruptions.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("stats: Pareto needs alpha, xm > 0")
	}
	u := 1 - r.Float64() // (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// Shuffle permutes the first n integers with Fisher–Yates and calls swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
