package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 6; v++ {
		if c := seen[v]; c < 9000 || c > 11000 {
			t.Errorf("Intn(6) value %d count %d, want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sum2, sum3 float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sum2 += x * x
		sum3 += x * x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	skew := sum3 / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("normal third moment = %v", skew)
	}
}

func TestNormalMS(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalMS(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("NormalMS mean = %v, want 5", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	rate := 4.0
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exponential mean = %v, want %v", mean, 1/rate)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestParetoSupport(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 10000; i++ {
		if x := r.Pareto(2, 1.5); x < 1.5 {
			t.Fatalf("Pareto deviate %v below xm", x)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 10000; i++ {
		if x := r.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal deviate %v not positive", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(37)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(-2, 3)
		if x < -2 || x >= 3 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}
