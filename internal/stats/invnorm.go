package stats

import "math"

// InvNormalCDF returns the inverse of the standard normal cumulative
// distribution function (the probit function) using Acklam's rational
// approximation refined by one Halley step, giving ~1e-15 relative
// accuracy. It converts a single uniform deviate into a normal deviate
// deterministically, which the frozen-noise processes require (hash → u →
// z without consuming a generator stream).
func InvNormalCDF(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}

	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}

	// One Halley refinement using erfc.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
