package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInvNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},   // Φ(1)
		{0.15865525393145705, -1}, // Φ(-1)
		{0.9772498680518208, 2},   // Φ(2)
		{0.9986501019683699, 3},   // Φ(3)
	}
	for _, c := range cases {
		if got := InvNormalCDF(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("InvNormalCDF(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestInvNormalCDFRoundTrip(t *testing.T) {
	// Φ(Φ⁻¹(p)) == p across the domain, including the tail branches.
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		z := InvNormalCDF(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvNormalCDFEdges(t *testing.T) {
	if !math.IsInf(InvNormalCDF(0), -1) {
		t.Error("p=0 must give -Inf")
	}
	if !math.IsInf(InvNormalCDF(1), 1) {
		t.Error("p=1 must give +Inf")
	}
	if !math.IsNaN(InvNormalCDF(-0.5)) || !math.IsNaN(InvNormalCDF(1.5)) {
		t.Error("out-of-range p must give NaN")
	}
	if !math.IsNaN(InvNormalCDF(math.NaN())) {
		t.Error("NaN must propagate")
	}
}

func TestInvNormalCDFSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3, 0.45} {
		if d := InvNormalCDF(p) + InvNormalCDF(1-p); math.Abs(d) > 1e-9 {
			t.Errorf("symmetry violated at p=%v: %v", p, d)
		}
	}
}
