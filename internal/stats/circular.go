package stats

import (
	"math"

	"repro/internal/mathx"
)

// OrderParameter returns the Kuramoto order parameter r ∈ [0, 1] and the
// mean phase ψ of a set of oscillator phases:
//
//	r·e^{iψ} = (1/N) Σ_j e^{iθ_j}
//
// r = 1 means perfect synchrony, r ≈ 0 a uniformly spread (incoherent or
// perfectly desynchronized) phase distribution. This is the classic global
// synchrony measure used to compare POM against the plain Kuramoto model.
//
//pomvet:allocfree
func OrderParameter(theta []float64) (r, psi float64) {
	n := len(theta)
	if n == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, th := range theta {
		s, c := math.Sincos(th)
		sy += s
		sx += c
	}
	sx /= float64(n)
	sy /= float64(n)
	return math.Hypot(sx, sy), math.Atan2(sy, sx)
}

// PhaseSpread returns the maximum pairwise spread max θ − min θ of an
// unwrapped phase vector. For POM (non-periodic potentials, unwrapped
// phases) this is the natural desynchronization measure: zero in lockstep,
// and settling at (N−1)·2σ/3 in the fully developed computational
// wavefront of the desynchronizing potential.
//
//pomvet:allocfree
func PhaseSpread(theta []float64) float64 {
	lo, hi, err := mathx.MinMax(theta)
	if err != nil {
		return 0
	}
	return hi - lo
}

// AdjacentDiffs fills dst with θ_{i+1} − θ_i and returns it.
func AdjacentDiffs(dst, theta []float64) []float64 {
	return mathx.Diff(dst, theta)
}

// CircularMean returns the circular mean angle of the sample in (-π, π].
func CircularMean(theta []float64) float64 {
	_, psi := OrderParameter(theta)
	return psi
}

// CircularVariance returns 1 − r, a [0, 1] dispersion measure of phases on
// the circle.
func CircularVariance(theta []float64) float64 {
	r, _ := OrderParameter(theta)
	return 1 - r
}

// LocalOrderParameter returns the order parameter restricted to each
// oscillator's neighborhood defined by neighbor lists. It distinguishes
// locally synchronized traveling waves (high local, low global order) from
// global synchrony. neighbors[i] lists the indices coupled to i.
func LocalOrderParameter(theta []float64, neighbors [][]int) []float64 {
	out := make([]float64, len(theta))
	buf := make([]float64, 0, 8)
	for i := range theta {
		buf = buf[:0]
		buf = append(buf, theta[i])
		for _, j := range neighbors[i] {
			if j >= 0 && j < len(theta) {
				buf = append(buf, theta[j])
			}
		}
		r, _ := OrderParameter(buf)
		out[i] = r
	}
	return out
}
