package stats

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestOrderParameterSync(t *testing.T) {
	theta := []float64{0.7, 0.7, 0.7, 0.7}
	r, psi := OrderParameter(theta)
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1 for identical phases", r)
	}
	if math.Abs(psi-0.7) > 1e-12 {
		t.Errorf("psi = %v, want 0.7", psi)
	}
}

func TestOrderParameterUniformSpread(t *testing.T) {
	// N phases uniformly around the circle: r must vanish.
	n := 16
	theta := make([]float64, n)
	for i := range theta {
		theta[i] = mathx.TwoPi * float64(i) / float64(n)
	}
	r, _ := OrderParameter(theta)
	if r > 1e-12 {
		t.Errorf("r = %v, want 0 for uniform spread", r)
	}
}

func TestOrderParameterEmpty(t *testing.T) {
	r, psi := OrderParameter(nil)
	if r != 0 || psi != 0 {
		t.Errorf("empty: r=%v psi=%v", r, psi)
	}
}

func TestOrderParameterAntipodal(t *testing.T) {
	r, _ := OrderParameter([]float64{0, math.Pi})
	if r > 1e-12 {
		t.Errorf("antipodal pair r = %v, want 0", r)
	}
}

func TestPhaseSpread(t *testing.T) {
	if got := PhaseSpread([]float64{1, 3, 2}); got != 2 {
		t.Errorf("PhaseSpread = %v", got)
	}
	if got := PhaseSpread(nil); got != 0 {
		t.Errorf("empty PhaseSpread = %v", got)
	}
	if got := PhaseSpread([]float64{5}); got != 0 {
		t.Errorf("single PhaseSpread = %v", got)
	}
}

func TestCircularMeanAndVariance(t *testing.T) {
	// Phases tightly clustered around π have mean near π even though the
	// arithmetic mean of wrapped representatives could be 0.
	theta := []float64{math.Pi - 0.1, math.Pi + 0.1, -math.Pi + 0.05}
	m := CircularMean(theta)
	if d := math.Abs(mathx.WrapPi(m - math.Pi)); d > 0.1 {
		t.Errorf("CircularMean = %v, want near π", m)
	}
	if v := CircularVariance(theta); v < 0 || v > 0.1 {
		t.Errorf("CircularVariance = %v, want small", v)
	}
}

func TestAdjacentDiffs(t *testing.T) {
	d := AdjacentDiffs(nil, []float64{0, 2, 3})
	if len(d) != 2 || d[0] != 2 || d[1] != 1 {
		t.Errorf("AdjacentDiffs = %v", d)
	}
}

func TestLocalOrderParameter(t *testing.T) {
	// Traveling wave: adjacent phases differ by a small constant, so local
	// order stays high while global order is low.
	n := 32
	theta := make([]float64, n)
	for i := range theta {
		theta[i] = mathx.TwoPi * float64(i) / float64(n)
	}
	neighbors := make([][]int, n)
	for i := range neighbors {
		neighbors[i] = []int{(i - 1 + n) % n, (i + 1) % n}
	}
	local := LocalOrderParameter(theta, neighbors)
	global, _ := OrderParameter(theta)
	for i, l := range local {
		if l < 0.95 {
			t.Errorf("local order at %d = %v, want near 1", i, l)
		}
	}
	if global > 0.05 {
		t.Errorf("global order = %v, want near 0", global)
	}
}

func TestLocalOrderParameterIgnoresBadIndices(t *testing.T) {
	theta := []float64{0, 0}
	neighbors := [][]int{{1, 99, -1}, {0}}
	local := LocalOrderParameter(theta, neighbors)
	if math.Abs(local[0]-1) > 1e-12 {
		t.Errorf("local[0] = %v", local[0])
	}
}
