package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

func TestRunOrderedResults(t *testing.T) {
	params := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	pts, err := Run(context.Background(), params, 4,
		func(_ context.Context, p float64) (float64, error) { return p * p, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.Index != i || pt.Param != params[i] {
			t.Fatalf("point %d out of order: %+v", i, pt)
		}
		if pt.Result != params[i]*params[i] {
			t.Errorf("result[%d] = %v", i, pt.Result)
		}
	}
	vals, err := Results(pts)
	if err != nil || len(vals) != 8 {
		t.Fatalf("Results: %v %v", vals, err)
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	pts, err := Run(context.Background(), []int{}, 2,
		func(_ context.Context, p int) (int, error) { return p, nil })
	if err != nil || len(pts) != 0 {
		t.Errorf("empty sweep: %v %v", pts, err)
	}
	if _, err := Run[int, int](context.Background(), []int{1}, 1, nil); err == nil {
		t.Error("want error for nil fn")
	}
}

func TestRunErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	params := make([]int, 64)
	for i := range params {
		params[i] = i
	}
	pts, err := Run(context.Background(), params, 2,
		func(ctx context.Context, p int) (int, error) {
			ran.Add(1)
			if p == 3 {
				return 0, boom
			}
			// Give cancellation a chance to take effect.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return p, nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if pts[3].Err == nil {
		t.Error("failing point must carry its error")
	}
	if _, err := Results(pts); err == nil {
		t.Error("Results must fail on a failed sweep")
	}
	if ran.Load() == 64 {
		t.Log("note: all points ran before cancellation (scheduling-dependent)")
	}
}

func TestRunRespectsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, _ := Run(ctx, []int{1, 2, 3}, 2,
		func(ctx context.Context, p int) (int, error) {
			return 0, ctx.Err()
		})
	for _, pt := range pts {
		if pt.Err == nil {
			t.Error("points under a canceled context must fail")
		}
	}
}

// TestRunPanicDoesNotDeadlock is the regression test for the
// panicking-worker deadlock: before the panic guard, a panicking fn killed
// its worker goroutine, the feeder blocked on the unbuffered idx channel
// once every worker had died, and Run never returned. The test runs Run in
// a goroutine and fails (instead of hanging the suite) if it stalls.
func TestRunPanicDoesNotDeadlock(t *testing.T) {
	params := make([]int, 16)
	for i := range params {
		params[i] = i
	}
	type outcome struct {
		pts []Point[int, int]
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		pts, err := Run(context.Background(), params, 2,
			func(_ context.Context, p int) (int, error) {
				panic(fmt.Sprintf("boom %d", p))
			})
		done <- outcome{pts, err}
	}()
	var got outcome
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep.Run deadlocked on panicking points")
	}
	if got.err == nil || !strings.Contains(got.err.Error(), "panicked") {
		t.Fatalf("err = %v, want a surfaced panic", got.err)
	}
	for _, pt := range got.pts {
		if pt.Err == nil {
			t.Errorf("point %d: panic sweep must not report success", pt.Index)
		}
	}
}

// TestRunPanicCancelsRemainingPoints checks a single panicking point
// behaves like an erroring one: the sweep cancels and the panic is
// attributed to its point.
func TestRunPanicCancelsRemainingPoints(t *testing.T) {
	params := make([]int, 32)
	for i := range params {
		params[i] = i
	}
	pts, err := Run(context.Background(), params, 2,
		func(ctx context.Context, p int) (int, error) {
			if p == 3 {
				panic("lone panic")
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return p * p, nil
		})
	if err == nil || !strings.Contains(err.Error(), "lone panic") {
		t.Fatalf("err = %v, want the recovered panic", err)
	}
	if pts[3].Err == nil || !strings.Contains(pts[3].Err.Error(), "panicked") {
		t.Errorf("point 3 must carry the panic error, got %v", pts[3].Err)
	}
}

func TestRunReduceSum(t *testing.T) {
	const n = 100
	var sum int64
	seen := make([]bool, n)
	err := RunReduce(context.Background(), n, 4,
		func(i int) int { return i },
		func(_ context.Context, p int) (int, error) { return p * p, nil },
		func(i int, p, r int) {
			// reduce is serialized: plain writes are safe here.
			if seen[i] {
				t.Errorf("point %d reduced twice", i)
			}
			seen[i] = true
			if r != p*p {
				t.Errorf("point %d: result %d", i, r)
			}
			sum += int64(r)
		})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i * i)
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("point %d never reduced", i)
		}
	}
}

func TestRunReduceErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	err := RunReduce(context.Background(), 64, 2,
		func(i int) int { return i },
		func(ctx context.Context, p int) (int, error) {
			if p == 5 {
				return 0, boom
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return p, nil
		},
		func(int, int, int) {})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunReducePanicCancels(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- RunReduce(context.Background(), 16, 2,
			func(i int) int { return i },
			func(_ context.Context, p int) (int, error) { panic("reduce-mode boom") },
			func(int, int, int) {})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("err = %v, want a surfaced panic", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunReduce deadlocked on panicking points")
	}
}

func TestRunReducePanicInReduceCancels(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- RunReduce(context.Background(), 16, 2,
			func(i int) int { return i },
			func(_ context.Context, p int) (int, error) { return p, nil },
			func(int, int, int) { panic("reducer boom") })
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "reduce panicked") {
			t.Fatalf("err = %v, want the surfaced reduce panic", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunReduce hung on a panicking reducer")
	}
}

func TestRunReduceValidation(t *testing.T) {
	if err := RunReduce[int, int](context.Background(), 3, 1, nil,
		func(_ context.Context, p int) (int, error) { return p, nil }, nil); err == nil {
		t.Error("want error for nil gen")
	}
	if err := RunReduce[int, int](context.Background(), 3, 1,
		func(i int) int { return i }, nil, nil); err == nil {
		t.Error("want error for nil fn")
	}
	if err := RunReduce(context.Background(), 0, 1,
		func(i int) int { return i },
		func(_ context.Context, p int) (int, error) { return p, nil },
		nil); err != nil {
		t.Errorf("empty sweep: %v", err)
	}
}

func TestGrid1(t *testing.T) {
	g := Grid1(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-15 {
			t.Errorf("g[%d] = %v", i, g[i])
		}
	}
	if len(Grid1(0, 1, 0)) != 0 {
		t.Error("n=0 grid must be empty")
	}
	if g := Grid1(3, 9, 1); len(g) != 1 || g[0] != 3 {
		t.Error("single-point grid")
	}
}

func TestGrid2(t *testing.T) {
	g := Grid2([]float64{1, 2}, []float64{10, 20, 30})
	if len(g) != 6 {
		t.Fatalf("len = %d", len(g))
	}
	if g[0] != (Pair{1, 10}) || g[5] != (Pair{2, 30}) {
		t.Errorf("grid order wrong: %v", g)
	}
}

// TestParallelSigmaSweep runs a real model sweep in parallel and checks
// the settled gaps still track 2σ/3 — the concurrency does not perturb
// determinism because each point owns its model.
func TestParallelSigmaSweep(t *testing.T) {
	sigmas := []float64{0.8, 1.2, 1.6, 2.0}
	pts, err := Run(context.Background(), sigmas, 4,
		func(_ context.Context, sigma float64) (float64, error) {
			tp, err := topology.NextNeighbor(10, false)
			if err != nil {
				return 0, err
			}
			cfg := core.Config{
				N: 10, TComp: 0.8, TComm: 0.2,
				Potential:   potential.NewDesync(sigma),
				Topology:    tp,
				Init:        core.RandomPhases,
				PerturbSeed: 5,
				PerturbAmp:  0.02,
				LocalNoise:  noise.Delay{Rank: 3, Start: 10, Duration: 1, Extra: 50},
			}
			m, err := core.New(cfg)
			if err != nil {
				return 0, err
			}
			res, err := m.Run(300, 301)
			if err != nil {
				return 0, err
			}
			gaps := res.AsymptoticGaps(0.1)
			var mean float64
			for _, g := range gaps {
				mean += math.Abs(g)
			}
			return mean / float64(len(gaps)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		want := 2 * sigmas[i] / 3
		if math.Abs(pt.Result-want) > 0.15*want {
			t.Errorf("σ=%v: gap %v, want %v", sigmas[i], pt.Result, want)
		}
	}
}
