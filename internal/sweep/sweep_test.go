package sweep

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

func TestRunOrderedResults(t *testing.T) {
	params := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	pts, err := Run(context.Background(), params, 4,
		func(_ context.Context, p float64) (float64, error) { return p * p, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.Index != i || pt.Param != params[i] {
			t.Fatalf("point %d out of order: %+v", i, pt)
		}
		if pt.Result != params[i]*params[i] {
			t.Errorf("result[%d] = %v", i, pt.Result)
		}
	}
	vals, err := Results(pts)
	if err != nil || len(vals) != 8 {
		t.Fatalf("Results: %v %v", vals, err)
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	pts, err := Run(context.Background(), []int{}, 2,
		func(_ context.Context, p int) (int, error) { return p, nil })
	if err != nil || len(pts) != 0 {
		t.Errorf("empty sweep: %v %v", pts, err)
	}
	if _, err := Run[int, int](context.Background(), []int{1}, 1, nil); err == nil {
		t.Error("want error for nil fn")
	}
}

func TestRunErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	params := make([]int, 64)
	for i := range params {
		params[i] = i
	}
	pts, err := Run(context.Background(), params, 2,
		func(ctx context.Context, p int) (int, error) {
			ran.Add(1)
			if p == 3 {
				return 0, boom
			}
			// Give cancellation a chance to take effect.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return p, nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if pts[3].Err == nil {
		t.Error("failing point must carry its error")
	}
	if _, err := Results(pts); err == nil {
		t.Error("Results must fail on a failed sweep")
	}
	if ran.Load() == 64 {
		t.Log("note: all points ran before cancellation (scheduling-dependent)")
	}
}

func TestRunRespectsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, _ := Run(ctx, []int{1, 2, 3}, 2,
		func(ctx context.Context, p int) (int, error) {
			return 0, ctx.Err()
		})
	for _, pt := range pts {
		if pt.Err == nil {
			t.Error("points under a canceled context must fail")
		}
	}
}

func TestGrid1(t *testing.T) {
	g := Grid1(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-15 {
			t.Errorf("g[%d] = %v", i, g[i])
		}
	}
	if len(Grid1(0, 1, 0)) != 0 {
		t.Error("n=0 grid must be empty")
	}
	if g := Grid1(3, 9, 1); len(g) != 1 || g[0] != 3 {
		t.Error("single-point grid")
	}
}

func TestGrid2(t *testing.T) {
	g := Grid2([]float64{1, 2}, []float64{10, 20, 30})
	if len(g) != 6 {
		t.Fatalf("len = %d", len(g))
	}
	if g[0] != (Pair{1, 10}) || g[5] != (Pair{2, 30}) {
		t.Errorf("grid order wrong: %v", g)
	}
}

// TestParallelSigmaSweep runs a real model sweep in parallel and checks
// the settled gaps still track 2σ/3 — the concurrency does not perturb
// determinism because each point owns its model.
func TestParallelSigmaSweep(t *testing.T) {
	sigmas := []float64{0.8, 1.2, 1.6, 2.0}
	pts, err := Run(context.Background(), sigmas, 4,
		func(_ context.Context, sigma float64) (float64, error) {
			tp, err := topology.NextNeighbor(10, false)
			if err != nil {
				return 0, err
			}
			cfg := core.Config{
				N: 10, TComp: 0.8, TComm: 0.2,
				Potential:   potential.NewDesync(sigma),
				Topology:    tp,
				Init:        core.RandomPhases,
				PerturbSeed: 5,
				PerturbAmp:  0.02,
				LocalNoise:  noise.Delay{Rank: 3, Start: 10, Duration: 1, Extra: 50},
			}
			m, err := core.New(cfg)
			if err != nil {
				return 0, err
			}
			res, err := m.Run(300, 301)
			if err != nil {
				return 0, err
			}
			gaps := res.AsymptoticGaps(0.1)
			var mean float64
			for _, g := range gaps {
				mean += math.Abs(g)
			}
			return mean / float64(len(gaps)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		want := 2 * sigmas[i] / 3
		if math.Abs(pt.Result-want) > 0.15*want {
			t.Errorf("σ=%v: gap %v, want %v", sigmas[i], pt.Result, want)
		}
	}
}
