package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/failpoint"
)

// testGen derives a small parameter vector from the point index.
func testGen(i int) []float64 { return []float64{float64(i), 0.5 * float64(i)} }

// testPoint writes a deterministic synthetic record for point i: a
// 3-sample, width-2 "trajectory" plus two metrics. Byte-for-byte
// reproducible, which the resume tests rely on.
func testPoint(_ context.Context, i int, params []float64, rec *archive.RecordWriter) error {
	rec.Begin(2, 3)
	for k := 0; k < 3; k++ {
		t := float64(k)
		rec.Sample(t, []float64{params[0] + t, params[1] - t})
	}
	return rec.Finish([]float64{float64(i), -float64(i)}, nil)
}

func mustNoTmpFiles(t *testing.T, dir string) {
	t.Helper()
	tmps, err := filepath.Glob(archive.TmpPattern(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("truncated shard files left behind: %v", tmps)
	}
}

func TestRunArchiveCompletes(t *testing.T) {
	dir := t.TempDir()
	const n = 20
	stats, err := RunArchive(context.Background(), dir, n, 4, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != n || stats.Skipped != 0 || stats.Shards < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	mustNoTmpFiles(t, dir)
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != n {
		t.Fatalf("archive holds %d points, want %d", a.Len(), n)
	}
	for i := 0; i < n; i++ {
		rec, err := a.Read(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Width != 2 || rec.NSamples() != 3 || rec.Params[0] != float64(i) ||
			rec.Metrics[0] != float64(i) || rec.Row(1)[0] != float64(i)+1 {
			t.Fatalf("record %d content wrong: %+v", i, rec)
		}
	}
}

// TestRunArchiveResume interrupts a sweep by context cancellation, then
// resumes it: the second call must skip every archived point, run only
// the missing ones, and complete the archive.
func TestRunArchiveResume(t *testing.T) {
	dir := t.TempDir()
	const n = 32
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := RunArchive(ctx, dir, n, 4, testGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			if ran.Add(1) == 8 {
				cancel() // simulate the interrupt mid-sweep
			}
			return testPoint(ctx, i, params, rec)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	mustNoTmpFiles(t, dir)
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	already := a.Len()
	a.Close()
	if already == 0 || already == n {
		t.Fatalf("interrupt archived %d of %d points; the test needs a partial archive", already, n)
	}

	var resumed atomic.Int64
	stats, err := RunArchive(context.Background(), dir, n, 4, testGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			resumed.Add(1)
			return testPoint(ctx, i, params, rec)
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != already || stats.Archived != n-already {
		t.Fatalf("resume stats = %+v, want %d skipped / %d archived", stats, already, n-already)
	}
	if int(resumed.Load()) != n-already {
		t.Fatalf("resume ran %d points, want %d", resumed.Load(), n-already)
	}
	a, err = archive.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != n {
		t.Fatalf("resumed archive holds %d points, want %d", a.Len(), n)
	}
}

// TestRunArchiveResumeBitwiseIdentical is the acceptance pin: an
// interrupted-then-resumed archive reads back record-for-record
// bitwise-identical to an uninterrupted one, regardless of worker
// count and shard layout.
func TestRunArchiveResumeBitwiseIdentical(t *testing.T) {
	const n = 24
	interrupted := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := RunArchive(ctx, interrupted, n, 3, testGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			if ran.Add(1) == 6 {
				cancel()
			}
			return testPoint(ctx, i, params, rec)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunArchive(context.Background(), interrupted, n, 5, testGen, testPoint); err != nil {
		t.Fatal(err)
	}

	clean := t.TempDir()
	if _, err := RunArchive(context.Background(), clean, n, 2, testGen, testPoint); err != nil {
		t.Fatal(err)
	}

	ai, err := archive.OpenDir(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	defer ai.Close()
	ac, err := archive.OpenDir(clean)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if ai.Len() != n || ac.Len() != n {
		t.Fatalf("archives hold %d / %d points, want %d", ai.Len(), ac.Len(), n)
	}
	for i := 0; i < n; i++ {
		pi, err1 := ai.ReadRaw(uint64(i))
		pc, err2 := ac.ReadRaw(uint64(i))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(pi, pc) {
			t.Fatalf("record %d differs between resumed and uninterrupted archives", i)
		}
	}
}

// TestRunArchiveErrorCleansUp checks the error path: a failing point
// cancels the sweep, its partial record is rolled back, the workers'
// shards are sealed (completed points survive for resume), and no
// *.tmp files remain.
func TestRunArchiveErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	const n = 16
	boom := errors.New("boom")
	_, err := RunArchive(context.Background(), dir, n, 2, testGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			if i == 5 {
				// Fail after streaming a partial row section: the rollback
				// must erase it from the shard.
				rec.Begin(2, 3)
				rec.Sample(0, []float64{1, 2})
				return boom
			}
			return testPoint(ctx, i, params, rec)
		})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 5") {
		t.Fatalf("err = %v, want point 5: boom", err)
	}
	mustNoTmpFiles(t, dir)
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatalf("sealed shards must stay readable after an error: %v", err)
	}
	if a.Has(5) {
		t.Error("failed point must not be archived")
	}
	a.Close()

	// The archive resumes cleanly once the point is fixed.
	stats, err := RunArchive(context.Background(), dir, n, 2, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped+stats.Archived != n || stats.Archived < 1 {
		t.Fatalf("resume after error: stats = %+v", stats)
	}
}

func TestRunArchivePanicRollsBack(t *testing.T) {
	dir := t.TempDir()
	_, err := RunArchive(context.Background(), dir, 8, 2, testGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			if i == 3 {
				rec.Begin(1, 2)
				rec.Sample(0, []float64{1})
				panic("mid-record boom")
			}
			return testPoint(ctx, i, params, rec)
		})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a surfaced panic", err)
	}
	mustNoTmpFiles(t, dir)
	if a, err := archive.OpenDir(dir); err != nil {
		t.Fatalf("archive unreadable after panic: %v", err)
	} else {
		if a.Has(3) {
			t.Error("panicked point must not be archived")
		}
		a.Close()
	}
}

func TestRunArchiveUnsealedRecordIsAnError(t *testing.T) {
	dir := t.TempDir()
	_, err := RunArchive(context.Background(), dir, 4, 1, testGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			return nil // never calls Finish
		})
	if err == nil || !strings.Contains(err.Error(), "Finish") {
		t.Fatalf("err = %v, want an unsealed-record error", err)
	}
	mustNoTmpFiles(t, dir)
}

// TestRunArchiveRemovesStaleTmp simulates crash litter: a *.tmp shard
// from a dead run — older than the stale TTL — must be removed and its
// id reused safely.
func TestRunArchiveRemovesStaleTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "shard-00000.pom.tmp")
	if err := os.WriteFile(stale, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-DefaultStaleTmpTTL - time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := RunArchive(context.Background(), dir, 6, 2, testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale tmp shard not removed")
	}
	mustNoTmpFiles(t, dir)
}

// TestRunArchiveSparesFreshTmp is the shared-directory regression test:
// a young *.tmp presumably belongs to a live worker in another process
// and must survive someone else's run untouched, with its shard id
// left alone.
func TestRunArchiveSparesFreshTmp(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "shard-00000.pom.tmp")
	if err := os.WriteFile(live, []byte("live worker's open shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunArchive(context.Background(), dir, 6, 2, testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(live)
	if err != nil {
		t.Fatalf("live tmp was removed by a sharing run: %v", err)
	}
	if string(data) != "live worker's open shard" {
		t.Fatal("live tmp was modified by a sharing run")
	}
	// The sharing run must not have claimed the live tmp's shard id.
	if _, err := os.Stat(filepath.Join(dir, "shard-00000.pom")); !os.IsNotExist(err) {
		t.Error("sharing run committed a shard over the live worker's id")
	}
}

// TestRunArchiveSlowPointSurvivesSiblingCleanup pins the keepalive
// half of the shared-directory contract: a worker whose current point
// computes for longer than the stale-tmp TTL must keep its open tmp
// shard looking alive, so a sibling run's TTL-gated cleanup (same TTL,
// as the lease protocol guarantees) neither deletes the file out from
// under the live writer nor reuses its shard id.
func TestRunArchiveSlowPointSurvivesSiblingCleanup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-millisecond keepalive test")
	}
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond
	started := make(chan struct{})
	release := make(chan struct{})
	slowPoint := func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
		close(started)
		<-release
		return testPoint(ctx, i, params, rec)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ArchiveRun{Dir: dir, Lo: 0, Hi: 1, Workers: 1, StaleTmpAfter: ttl}.
			Run(context.Background(), testGen, slowPoint)
		done <- err
	}()
	<-started
	// Let the slow worker's open tmp sit well past the TTL; only the
	// keepalive's mtime refresh keeps it looking alive.
	time.Sleep(2 * ttl)
	// A sibling over the neighboring range runs the same TTL-gated
	// cleanup on arrival — it must spare the live tmp.
	if _, err := (ArchiveRun{Dir: dir, Lo: 1, Hi: 3, Workers: 1, StaleTmpAfter: ttl}).
		Run(context.Background(), testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slow worker failed after sibling's cleanup pass: %v", err)
	}
	mustNoTmpFiles(t, dir)
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatalf("archive corrupt after shared-directory run: %v", err)
	}
	defer a.Close()
	if a.Len() != 3 {
		t.Fatalf("archive holds %d points, want 3", a.Len())
	}
}

// TestArchiveRunRangeMode: an ArchiveRun bounded to [lo, hi) archives
// exactly that range and resumes within it, which is what lets a
// lease-coordinated worker run only its leased slice of the sweep.
func TestArchiveRunRangeMode(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	run := ArchiveRun{Dir: dir, Lo: 4, Hi: 10, Workers: 2}
	stats, err := run.Run(ctx, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 6 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v, want 6 archived", stats)
	}
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Indices()
	a.Close()
	if len(got) != 6 || got[0] != 4 || got[5] != 9 {
		t.Fatalf("archived indices %v, want exactly 4..9", got)
	}
	// A neighboring range neither redoes nor disturbs the first one.
	stats, err = ArchiveRun{Dir: dir, Lo: 0, Hi: 6, Workers: 2}.Run(ctx, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 4 || stats.Skipped != 2 {
		t.Fatalf("overlapping range stats = %+v, want 4 archived / 2 resumed", stats)
	}
}

// TestArchiveRunCrashLeavesLitterAndResumes drives the in-process
// crash story end to end: a simulated worker death mid-sweep leaves a
// torn tmp and an error, and a later run over the same directory
// archives exactly the missing points, bitwise-identical to an
// uninterrupted sweep.
func TestArchiveRunCrashLeavesLitterAndResumes(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	ctx := context.Background()

	failpoint.Enable(archive.SiteWrite, failpoint.CrashTornAt(40, 7))
	_, err := ArchiveRun{Dir: dir, Hi: 12, Workers: 2}.Run(ctx, testGen, testPoint)
	var crashed *failpoint.Crashed
	if !errors.As(err, &crashed) {
		t.Fatalf("err = %v, want the simulated crash", err)
	}
	failpoint.Reset()
	tmps, _ := filepath.Glob(archive.TmpPattern(dir))
	if len(tmps) == 0 {
		t.Fatal("crash left no tmp litter")
	}

	// Resume with litter cleanup forced on (everything counts as stale).
	stats, err := ArchiveRun{Dir: dir, Hi: 12, Workers: 3, StaleTmpAfter: time.Nanosecond}.Run(ctx, testGen, testPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived+stats.Skipped != 12 {
		t.Fatalf("resume stats = %+v, want full coverage of 12 points", stats)
	}
	mustNoTmpFiles(t, dir)

	// Bitwise pin against an undisturbed reference sweep.
	refDir := t.TempDir()
	if _, err := RunArchive(ctx, refDir, 12, 1, testGen, testPoint); err != nil {
		t.Fatal(err)
	}
	compareArchives(t, dir, refDir, 12)
}

// compareArchives asserts the two directories hold records 0..n-1 with
// bitwise-identical payloads.
func compareArchives(t *testing.T, aDir, bDir string, n int) {
	t.Helper()
	a, err := archive.OpenDir(aDir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := archive.OpenDir(bDir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Len() != n || b.Len() != n {
		t.Fatalf("archive sizes %d vs %d, want %d", a.Len(), b.Len(), n)
	}
	for i := 0; i < n; i++ {
		pa, err := a.ReadRaw(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.ReadRaw(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Fatalf("point %d differs between archives", i)
		}
	}
}

func TestRunArchiveValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := RunArchive(context.Background(), dir, 3, 1, nil, testPoint); err == nil {
		t.Error("want error for nil gen")
	}
	if _, err := RunArchive(context.Background(), dir, 3, 1, testGen, nil); err == nil {
		t.Error("want error for nil fn")
	}
	if _, err := RunArchive(context.Background(), "", 3, 1, testGen, testPoint); err == nil {
		t.Error("want error for empty dir")
	}
	if stats, err := RunArchive(context.Background(), dir, 0, 1, testGen, testPoint); err != nil || stats.Archived != 0 {
		t.Errorf("empty sweep: %+v, %v", stats, err)
	}
}

// TestRunReduceRealErrorBeatsCancelEcho is the regression test for the
// racy cancellation errors: a point failing for a real reason
// concurrently with the context cancel must be the reported error every
// time — before the fix, whichever worker first echoed "context
// canceled" could claim the error slot.
func TestRunReduceRealErrorBeatsCancelEcho(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := RunReduce(ctx, 16, 4,
			func(i int) int { return i },
			func(ctx context.Context, p int) (int, error) {
				if p == 0 {
					cancel() // the cancel races the real failure below
					return 0, errors.New("boom")
				}
				<-ctx.Done()
				return 0, ctx.Err()
			},
			func(int, int, int) {})
		if err == nil || !strings.Contains(err.Error(), "point 0") || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("trial %d: err = %v, want the real point-0 failure", trial, err)
		}
		cancel()
	}
}

// TestRunReduceExternalCancelReturnsCtxErr pins the other half: a sweep
// canceled purely from outside reports plain context.Canceled, not an
// arbitrary point's echo of it.
func TestRunReduceExternalCancelReturnsCtxErr(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := RunReduce(ctx, 16, 4,
			func(i int) int { return i },
			func(ctx context.Context, p int) (int, error) {
				cancel()
				<-ctx.Done()
				return 0, ctx.Err()
			},
			func(int, int, int) {})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		if strings.Contains(err.Error(), "point") {
			t.Fatalf("trial %d: external cancel attributed to a point: %v", trial, err)
		}
		cancel()
	}
}

// TestRunExternalCancelDeterministic covers the same property for the
// slice-based Run.
func TestRunExternalCancelDeterministic(t *testing.T) {
	params := make([]int, 16)
	for i := range params {
		params[i] = i
	}
	for trial := 0; trial < 25; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Run(ctx, params, 4,
			func(ctx context.Context, p int) (int, error) {
				if p == 0 {
					cancel()
					return 0, fmt.Errorf("real failure")
				}
				<-ctx.Done()
				return 0, ctx.Err()
			})
		if err == nil || !strings.Contains(err.Error(), "real failure") {
			t.Fatalf("trial %d: err = %v, want the real point failure", trial, err)
		}
		cancel()
	}
}
