// Package sweep runs embarrassingly parallel parameter studies across a
// worker pool — the batch-mode counterpart of the paper's interactive
// MATLAB exploration, generalized over every model family behind the
// scenario registry. Three batch modes trade memory for retention:
//
//   - Run materializes every point's result in input order — the simple
//     mode for small grids whose outputs fit in memory.
//   - RunReduce streams: point i's parameter comes from a generator,
//     each completed result is handed to a serialized reducer, and
//     nothing else is retained — live memory is O(workers), which is
//     what makes million-point studies with per-point streaming
//     summaries (sim.RunSummary) feasible.
//   - RunArchive persists: every point's full output — sample rows
//     included — streams into a sharded disk archive (package archive).
//     Each worker owns one shard, so record writes are lock-free, and
//     the sweep is resumable: completed shards are scanned and their
//     points skipped, so re-running after a crash or cancel archives
//     exactly the missing work. Record payloads depend only on
//     (index, params, fn) — never on worker count or interruption
//     history — so a resumed archive is bitwise-identical
//     record-for-record to an uninterrupted one (pinned by tests for
//     the POM, Kuramoto, torus2d, linstab, and cluster families).
//
// All modes share the same failure discipline: workers are
// panic-guarded (a panicking point becomes a per-point error instead of
// a deadlock), the first genuine error cancels outstanding work
// deterministically (cancellation echoes never win the race), and an
// externally canceled sweep returns plain ctx.Err(). Grid1 / Grid2
// build the usual parameter grids. PERFORMANCE.md quantifies the memory
// and throughput trade-offs of the three modes.
package sweep
