package sweep

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/archive"
	"repro/internal/kuramoto"
	"repro/internal/sim"
)

// kuramotoPoint archives one Kuramoto coupling-sweep point through the
// unified sim runtime: the trajectory rows stream into the record (the
// RecordWriter is a sim.Sink) while the shared accumulators reduce them
// to the standard metric vector. Deterministic in (i, params) only,
// which the bitwise resume pin relies on.
func kuramotoPoint(_ context.Context, _ int, params []float64, rec *archive.RecordWriter) error {
	m, err := kuramoto.New(kuramoto.Config{
		N: 12, K: params[0], FreqMean: 0, FreqStd: 1, Seed: 42, SpreadInitial: true,
	})
	if err != nil {
		return err
	}
	sum, err := sim.RunSummaryTo(m, 6, 25, 0, 0, rec)
	if err != nil {
		return err
	}
	return rec.Finish(sum.Vector(), nil)
}

// kuramotoGen maps point i onto a coupling grid around the transition.
func kuramotoGen(i int) []float64 { return []float64{0.2 + 0.25*float64(i)} }

// TestRunArchiveKuramotoSmoke is the non-POM archive smoke test: a
// Kuramoto coupling sweep archives through the same RunArchive path the
// POM uses, and the records read back with trajectories and metrics.
func TestRunArchiveKuramotoSmoke(t *testing.T) {
	dir := t.TempDir()
	const n = 8
	stats, err := RunArchive(context.Background(), dir, n, 3, kuramotoGen, kuramotoPoint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != n {
		t.Fatalf("stats = %+v", stats)
	}
	mustNoTmpFiles(t, dir)
	a, err := archive.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != n {
		t.Fatalf("archive holds %d points, want %d", a.Len(), n)
	}
	for i := 0; i < n; i++ {
		rec, err := a.Read(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Width != 12 || rec.NSamples() != 25 {
			t.Fatalf("record %d: width %d samples %d, want 12 x 25", i, rec.Width, rec.NSamples())
		}
		if rec.Params[0] != kuramotoGen(i)[0] {
			t.Fatalf("record %d params = %v", i, rec.Params)
		}
		if len(rec.Metrics) != 8 {
			t.Fatalf("record %d metrics = %v, want the 8-entry Summary vector", i, rec.Metrics)
		}
		// FinalOrder (layout index 3) is a valid order parameter.
		if r := rec.Metrics[3]; r < 0 || r > 1+1e-9 {
			t.Fatalf("record %d final order = %v", i, r)
		}
	}
}

// TestRunArchiveKuramotoResumeBitwise is the acceptance pin for the
// unified runtime: a sweep.RunArchive over a non-POM family, interrupted
// and resumed with different worker counts, reads back record-for-record
// bitwise-identical to an uninterrupted archive.
func TestRunArchiveKuramotoResumeBitwise(t *testing.T) {
	const n = 10
	interrupted := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := RunArchive(ctx, interrupted, n, 3, kuramotoGen,
		func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			if ran.Add(1) == 4 {
				cancel()
			}
			return kuramotoPoint(ctx, i, params, rec)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if _, err := RunArchive(context.Background(), interrupted, n, 2, kuramotoGen, kuramotoPoint); err != nil {
		t.Fatal(err)
	}

	clean := t.TempDir()
	if _, err := RunArchive(context.Background(), clean, n, 4, kuramotoGen, kuramotoPoint); err != nil {
		t.Fatal(err)
	}

	ai, err := archive.OpenDir(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	defer ai.Close()
	ac, err := archive.OpenDir(clean)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if ai.Len() != n || ac.Len() != n {
		t.Fatalf("archives hold %d / %d points, want %d", ai.Len(), ac.Len(), n)
	}
	for i := 0; i < n; i++ {
		pi, err1 := ai.ReadRaw(uint64(i))
		pc, err2 := ac.ReadRaw(uint64(i))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(pi, pc) {
			t.Fatalf("kuramoto record %d differs between resumed and uninterrupted archives", i)
		}
	}
}
